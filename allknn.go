package vsmartjoin

// Batch all-k-nearest-neighbors: the MapReduce counterpart of
// QueryKNN, answering the neighbor question for every entity at once
// through internal/knn's partition-and-refine pipeline. Entity IDs are
// renumbered by ascending name rank before the run, so the pipeline's
// ID tie-breaks are name tie-breaks — each list comes back in the same
// canonical (distance, name) order the online path produces, and the
// differential suite gates the two against each other entity by
// entity.

import (
	"errors"
	"fmt"
	"sort"

	"vsmartjoin/internal/knn"
	"vsmartjoin/internal/mr"
	"vsmartjoin/internal/multiset"
	"vsmartjoin/internal/records"
	"vsmartjoin/internal/similarity"
)

// KNNStats summarizes the simulated cluster cost of an AllKNN run.
type KNNStats struct {
	// TotalSeconds is the simulated wall time of the pipeline; Jobs is
	// its MapReduce step count.
	TotalSeconds float64
	Jobs         int
	// GroupsProbed and GroupsPruned count the refine stage's per-entity
	// decisions about foreign cardinality groups: pruned groups were
	// excluded by the distance lower bound alone.
	GroupsProbed int64
	GroupsPruned int64
	// SpilledBytes is the shuffle volume spilled to disk across all jobs
	// (0 unless Options.ShuffleBufferBytes forced spilling).
	SpilledBytes int64
}

// KNNResult is the outcome of AllKNN.
type KNNResult struct {
	// Neighbors maps every entity to its k nearest entities, nearest
	// first, names ascending on distance ties. A list is shorter than k
	// only when the dataset holds fewer than k other entities.
	Neighbors map[string][]Neighbor
	// Stats is the simulated cluster cost.
	Stats KNNStats
}

// AllKNN computes every entity's exact k nearest entities under the
// distance 1 − similarity. Entities sharing no element sit at distance
// exactly 1 and legitimately fill lists when fewer than k entities
// overlap — the same population the online QueryKNN pads with.
//
// Options is interpreted as for AllPairs, except that Threshold,
// Algorithm, StopWordQ, and ShardC do not apply to the kNN pipeline
// and are ignored.
func AllKNN(d *Dataset, k int, opts Options) (*KNNResult, error) {
	if d == nil || len(d.sets) == 0 {
		return nil, errors.New("vsmartjoin: empty dataset")
	}
	if k <= 0 {
		return nil, fmt.Errorf("vsmartjoin: k must be positive, got %d", k)
	}
	measureName := opts.Measure
	if measureName == "" {
		measureName = "ruzicka"
	}
	measure, err := similarity.ByName(measureName)
	if err != nil {
		return nil, err
	}
	machines := opts.Machines
	if machines == 0 {
		machines = 16
	}
	mem := opts.MemPerMachine
	if mem == 0 {
		mem = 1 << 30
	}
	cluster := mr.NewCluster(machines, mem)
	cluster.ShuffleBufferBytes = opts.ShuffleBufferBytes
	if opts.HadoopCompat {
		// The kNN jobs never rely on secondary keys, so Hadoop semantics
		// only flip the cluster flag — results are identical.
		cluster = cluster.Hadoop()
	}

	// Renumber entities by ascending name rank: the pipeline breaks
	// distance ties by ID, and rank IDs make that exactly the public
	// name order — no per-list re-sorting, no order divergence from the
	// online path.
	rev := d.nameTable()
	names := make([]string, 0, len(d.sets))
	for _, m := range d.sets {
		names = append(names, rev[m.ID])
	}
	sort.Strings(names)
	rank := make(map[string]multiset.ID, len(names))
	for i, n := range names {
		rank[n] = multiset.ID(i + 1)
	}
	byRank := make(map[multiset.ID]string, len(names))
	for n, id := range rank {
		byRank[id] = n
	}
	renumbered := make([]multiset.Multiset, 0, len(d.sets))
	var empties []string // entities with no elements never enter the pipeline
	for _, m := range d.sets {
		if len(m.Entries) == 0 {
			empties = append(empties, rev[m.ID])
			continue
		}
		renumbered = append(renumbered, multiset.Multiset{ID: rank[rev[m.ID]], Entries: m.Entries})
	}
	sort.Strings(empties)

	out := &KNNResult{Neighbors: make(map[string][]Neighbor, len(names))}
	if len(renumbered) > 0 {
		input := records.BuildInput("knn-input", renumbered, 4*machines)
		res, err := knn.AllKNN(cluster, input, knn.Config{Measure: measure, K: k})
		if err != nil {
			return nil, err
		}
		out.Stats = KNNStats{
			TotalSeconds: res.Stats.TotalSeconds,
			Jobs:         len(res.Stats.Jobs),
			GroupsProbed: res.Stats.Counter(knn.CounterGroupsProbed),
			GroupsPruned: res.Stats.Counter(knn.CounterGroupsPruned),
		}
		for _, j := range res.Stats.Jobs {
			out.Stats.SpilledBytes += j.SpilledBytes
		}
		for id, list := range res.Lists {
			ns := make([]Neighbor, 0, min(len(list)+len(empties), k))
			for _, n := range list {
				ns = append(ns, Neighbor{Entity: byRank[n.ID], Distance: n.Dist})
			}
			// Empty entities are at distance exactly 1 from everything, like
			// any non-overlapping entity; fold them into the canonical order.
			ns = append(ns, padNeighbors(empties, "", k)...)
			SortNeighborsByName(ns)
			if len(ns) > k {
				ns = ns[:k]
			}
			out.Neighbors[byRank[id]] = ns
		}
	}
	// An empty entity is at distance 1 from every other entity, so its k
	// nearest are simply the k smallest names besides its own.
	for _, name := range empties {
		ns := padNeighbors(names, name, k)
		out.Neighbors[name] = ns
	}
	return out, nil
}

// padNeighbors returns the first k of pool (ascending, self excluded)
// as distance-1 neighbors. pool must be sorted.
func padNeighbors(pool []string, self string, k int) []Neighbor {
	ns := make([]Neighbor, 0, min(len(pool), k))
	for _, n := range pool {
		if n == self {
			continue
		}
		if len(ns) == k {
			break
		}
		ns = append(ns, Neighbor{Entity: n, Distance: 1})
	}
	//lint:vsmart-allow canonicalorder a constant-distance list in ascending name order is canonical by construction; callers folding it into a mixed list re-sort
	return ns
}
