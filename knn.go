package vsmartjoin

// Online k-nearest-neighbor queries: the distance-ordered counterpart
// of QueryTopK under d = 1 − similarity. The inner index only surfaces
// entities sharing at least one element with the query (overlap ⇒
// sim > 0 ⇒ d < 1 strictly); when fewer than k overlap, the public
// layer pads the list to k with non-overlapping entities, all at
// distance exactly 1, in ascending name order — the two populations
// never interleave in the canonical (distance, name) order, so the pad
// is a pure suffix. Batch AllKNN (allknn.go) answers the same question
// for every entity at once through the MapReduce pipeline; the two are
// gated against each other in the differential suite.

import (
	"fmt"
	"sort"

	"vsmartjoin/internal/index"
)

// Neighbor is one kNN query result: an indexed entity at distance
// 1 − similarity from the query. Results are always ordered
// canonically: distance ascending, entity name ascending on ties —
// name-based tie-breaking for the same reproducibility reason as
// Match: every deployment shape answers byte-identically.
type Neighbor struct {
	Entity   string  `json:"entity"`
	Distance float64 `json:"distance"`
}

// worsePublicNeighbor is the canonical public kNN comparator: a ranks
// below b on greater distance, or on greater entity name at equal
// distances. Entity names are unique, so this is a total order.
func worsePublicNeighbor(a, b Neighbor) bool {
	if a.Distance != b.Distance {
		return a.Distance > b.Distance
	}
	return a.Entity > b.Entity
}

// SortNeighborsByName orders neighbors nearest first under the
// canonical public ordering (distance ascending, entity name ascending
// on ties). Index queries return already-sorted results; the function
// is exported for callers merging neighbor lists from several sources —
// the cluster router's scatter-gather kNN merge is built on it.
func SortNeighborsByName(ns []Neighbor) {
	sort.Slice(ns, func(i, j int) bool { return worsePublicNeighbor(ns[j], ns[i]) })
}

// QueryKNN returns the k nearest indexed entities to the query
// multiset under distance 1 − similarity, nearest first (entity name
// ascending on ties). The list is shorter than k only when fewer than
// k entities are indexed. Like every query, the pass runs through the
// planned per-shard strategy and the answer is independent of it.
func (ix *Index) QueryKNN(counts map[string]uint32, k int) []Neighbor {
	if k <= 0 {
		return nil
	}
	var ks *keyScratch
	var gen uint64
	if ix.cache != nil {
		ks = getKeyScratch()
		ks.knnKey(ix.measure.Name(), counts, k)
		gen = ix.gen.Load() // before the query, like QueryThreshold
		if res, ok := ix.cache.getKNN(ks.b, gen); ok {
			putKeyScratch(ks)
			return res
		}
	}
	out := ix.knnQuery(ix.buildQuery(counts), k, "")
	if ix.cache != nil {
		ix.cache.putKNN(ks.b, gen, out)
		putKeyScratch(ks)
	}
	return out
}

// QueryKNNEntity runs QueryKNN with an indexed entity as the query;
// the entity itself is excluded from its own neighbor list.
func (ix *Index) QueryKNNEntity(entity string, k int) ([]Neighbor, error) {
	if k <= 0 {
		return nil, nil
	}
	var ks *keyScratch
	var gen uint64
	if ix.cache != nil {
		ks = getKeyScratch()
		ks.knnEntityKey(ix.measure.Name(), entity, k)
		gen = ix.gen.Load() // before the lookup AND the query
		if res, ok := ix.cache.getKNN(ks.b, gen); ok {
			putKeyScratch(ks)
			return res, nil
		}
	}
	ix.mu.RLock()
	id, ok := ix.byName[entity]
	ix.mu.RUnlock()
	if !ok {
		if ix.cache != nil {
			putKeyScratch(ks)
		}
		return nil, fmt.Errorf("vsmartjoin: entity %q not indexed", entity)
	}
	out := ix.knnQuery(ix.queryByID(id), k, entity)
	if ix.cache != nil {
		ix.cache.putKNN(ks.b, gen, out)
		putKeyScratch(ks)
	}
	return out, nil
}

// knnQuery is the shared kNN read path: the inner fan-out (whose
// rising k-th-distance floor is QueryTopK's rising similarity floor,
// since d = 1 − sim is order-reversing), boundary-tie canonicalization,
// name resolution, and the non-overlap pad. self names the query's own
// entity when it is indexed, so the pad never returns it.
func (ix *Index) knnQuery(q index.Query, k int, self string) []Neighbor {
	bp := matchBufPool.Get().(*queryBuf)
	start, timed := bp.sample()
	// Probe for k+1: the extra neighbor is a tie detector, exactly as in
	// QueryTopK. If the k-th and (k+1)-th distances differ (or fewer than
	// k+1 overlap), no tied entity was evicted at the boundary and the
	// inner selection is already canonical.
	ns := ix.inner.QueryKNNInto(q, k+1, bp.ns[:0])
	if len(ns) == k+1 && ns[k-1].Dist == ns[k].Dist {
		// Ties straddle the boundary and the inner index broke them by
		// entity ID; refetch everything at or nearer the boundary distance
		// and let the canonical sort pick by name. The re-query runs in
		// similarity space — dist ≤ boundary ⟺ sim ≥ 1 − boundary — and
		// the threshold path's inclusion tolerance absorbs the float
		// round-trip of converting the boundary back.
		boundary := ns[k-1].Dist
		ms := ix.inner.QueryThresholdInto(q, 1-boundary, bp.ms[:0])
		ns = ns[:0]
		for _, m := range ms {
			ns = append(ns, index.Neighbor{ID: m.ID, Dist: 1 - m.Sim})
		}
		bp.ms = ms
	}
	out := ix.resolveKNN(ns)
	bp.ns = ns
	matchBufPool.Put(bp)
	if timed {
		ix.queryLatency.ObserveSince(start)
	}
	if len(out) > k {
		out = out[:k]
	}
	if len(out) < k {
		// Fewer than k entities overlap the query, so out already holds
		// every overlapping one; fill with non-overlapping entities, all
		// tied at distance exactly 1, in their canonical (name) order.
		out = ix.padKNN(out, k, self)
	}
	return out
}

// resolveKNN translates ID neighbors back to entity names and re-sorts
// them under the canonical public ordering (distance ascending, name
// ascending on ties) — the inner index breaks ties by entity ID, which
// is meaningless outside one process. Neighbors whose entity was
// removed between the query and the lookup are dropped.
func (ix *Index) resolveKNN(ns []index.Neighbor) []Neighbor {
	out := make([]Neighbor, 0, len(ns))
	ix.mu.RLock()
	for _, n := range ns {
		if name, ok := ix.names[n.ID]; ok {
			out = append(out, Neighbor{Entity: name, Distance: n.Dist})
		}
	}
	ix.mu.RUnlock()
	SortNeighborsByName(out)
	return out
}

// padKNN appends the first k−len(out) indexed entities not already in
// out (and not the query's own entity) in ascending name order, each at
// distance 1. Runs only when the overlap population is exhausted, so
// the sort cost sits on an inherently small-result path.
func (ix *Index) padKNN(out []Neighbor, k int, self string) []Neighbor {
	need := k - len(out)
	seen := make(map[string]bool, len(out)+1)
	for _, n := range out {
		seen[n.Entity] = true
	}
	if self != "" {
		seen[self] = true
	}
	ix.mu.RLock()
	names := make([]string, 0, len(ix.byName))
	for name := range ix.byName {
		if !seen[name] {
			names = append(names, name)
		}
	}
	ix.mu.RUnlock()
	sort.Strings(names)
	if len(names) > need {
		names = names[:need]
	}
	for _, name := range names {
		out = append(out, Neighbor{Entity: name, Distance: 1})
	}
	//lint:vsmart-allow canonicalorder the pad is a pure suffix: every prior entry overlaps the query (dist < 1 strictly), the appended names are all at dist exactly 1 in ascending name order
	return out
}
