package vsmartjoin_test

// The cluster differential harness: a Cluster of real vsmartjoind
// nodes (in-process, internal/httpd over real Indexes) must answer
// every query BYTE-IDENTICALLY to a single merged Index oracle fed the
// same mutations — across partition counts, replica counts, measures,
// after churn, and with a replica killed. This is the gate that makes
// "scatter-gather merge is exact" a tested property instead of a
// design claim.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"testing"

	"vsmartjoin"
	"vsmartjoin/internal/httpd"
)

var clusterDiffMeasures = []string{"ruzicka", "jaccard", "dice", "cosine"}

// clusterEntities builds a deterministic corpus with deliberate
// structure: a shared alphabet small enough to force overlaps, a few
// exact-duplicate multisets (similarity ties, the canonical-ordering
// stress), and per-entity unique elements (out-of-alphabet queries).
func clusterEntities(rng *rand.Rand, n int) map[string]map[string]uint32 {
	out := make(map[string]map[string]uint32, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("e%03d", i)
		m := make(map[string]uint32)
		for j, k := 0, 2+rng.Intn(6); j < k; j++ {
			m[fmt.Sprintf("w%d", rng.Intn(24))] = uint32(1 + rng.Intn(4))
		}
		if i%7 == 0 {
			m[fmt.Sprintf("uniq%d", i)] = 2
		}
		out[name] = m
	}
	// Exact duplicates: every "dupN" shares one multiset, so whole tie
	// groups cross the top-k boundary.
	for i := 0; i < 6; i++ {
		out[fmt.Sprintf("dup%d", i)] = map[string]uint32{"w1": 3, "w2": 1, "tie": 2}
	}
	return out
}

// clusterUnderTest is one running topology plus its oracle.
type clusterUnderTest struct {
	cluster *vsmartjoin.Cluster
	oracle  *vsmartjoin.Index
	servers [][]*httptest.Server
}

// startCluster spins up partitions×replicas node daemons (each a real
// Index behind the real node handler) and a router over them, plus a
// single-Index oracle.
func startCluster(t *testing.T, measure string, partitions, replicas int) *clusterUnderTest {
	t.Helper()
	cut := &clusterUnderTest{}
	var topo [][]string
	for p := 0; p < partitions; p++ {
		var row []*httptest.Server
		var addrs []string
		for r := 0; r < replicas; r++ {
			ix, err := vsmartjoin.NewIndex(vsmartjoin.IndexOptions{Measure: measure})
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(httpd.NewNode(ix, httpd.Options{}))
			t.Cleanup(ts.Close)
			row = append(row, ts)
			addrs = append(addrs, ts.URL)
		}
		cut.servers = append(cut.servers, row)
		topo = append(topo, addrs)
	}
	c, err := vsmartjoin.NewCluster(vsmartjoin.ClusterOptions{
		Nodes: topo, HealthEvery: -1, RepairEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	cut.cluster = c
	cut.oracle, err = vsmartjoin.NewIndex(vsmartjoin.IndexOptions{Measure: measure})
	if err != nil {
		t.Fatal(err)
	}
	return cut
}

func (cut *clusterUnderTest) add(t *testing.T, entity string, counts map[string]uint32) {
	t.Helper()
	if err := cut.cluster.Add(entity, counts); err != nil {
		t.Fatalf("cluster add %q: %v", entity, err)
	}
	if err := cut.oracle.Add(entity, counts); err != nil {
		t.Fatal(err)
	}
}

func (cut *clusterUnderTest) remove(t *testing.T, entity string) {
	t.Helper()
	removed, err := cut.cluster.Remove(entity)
	if err != nil {
		t.Fatalf("cluster remove %q: %v", entity, err)
	}
	want, err := cut.oracle.Remove(entity)
	if err != nil {
		t.Fatal(err)
	}
	if removed != want {
		t.Fatalf("remove %q: cluster %v, oracle %v", entity, removed, want)
	}
}

// mustMatch demands byte-identical JSON between a cluster answer and
// the oracle's — value equality would already be strong, byte equality
// also pins the canonical ordering and float encoding.
func mustMatch(t *testing.T, tag string, got, want []vsmartjoin.Match, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("%s: %v", tag, err)
	}
	gj, jerr := json.Marshal(got)
	if jerr != nil {
		t.Fatal(jerr)
	}
	wj, jerr := json.Marshal(want)
	if jerr != nil {
		t.Fatal(jerr)
	}
	if !bytes.Equal(gj, wj) {
		t.Fatalf("%s:\ncluster %s\noracle  %s", tag, gj, wj)
	}
}

// mustMatchNeighbors is mustMatch for kNN answers.
func mustMatchNeighbors(t *testing.T, tag string, got, want []vsmartjoin.Neighbor, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("%s: %v", tag, err)
	}
	gj, jerr := json.Marshal(got)
	if jerr != nil {
		t.Fatal(jerr)
	}
	wj, jerr := json.Marshal(want)
	if jerr != nil {
		t.Fatal(jerr)
	}
	if !bytes.Equal(gj, wj) {
		t.Fatalf("%s:\ncluster %s\noracle  %s", tag, gj, wj)
	}
}

// compare runs the full probe battery: element-map threshold queries
// (several thresholds including 0 and 1), top-k at and around tie
// boundaries, kNN (including the empty query, legal only on the kNN
// path, where every entity is a distance-1 neighbor), and
// entity-relative queries in both similarity and distance form.
func (cut *clusterUnderTest) compare(t *testing.T, tag string, probes []map[string]uint32, entityProbes []string) {
	t.Helper()
	for pi, probe := range probes {
		for _, thr := range []float64{0, 0.35, 0.6, 1} {
			got, err := cut.cluster.QueryThreshold(probe, thr)
			want, werr := cut.oracle.QueryThreshold(probe, thr)
			if werr != nil {
				t.Fatal(werr)
			}
			mustMatch(t, fmt.Sprintf("%s probe %d threshold %v", tag, pi, thr), got, want, err)
		}
		for _, k := range []int{1, 2, 5, 10, 1000} {
			got, err := cut.cluster.QueryTopK(probe, k)
			want := cut.oracle.QueryTopK(probe, k)
			mustMatch(t, fmt.Sprintf("%s probe %d topk %d", tag, pi, k), got, want, err)
		}
	}
	knnProbes := append([]map[string]uint32{{}}, probes...)
	for pi, probe := range knnProbes {
		for _, k := range []int{1, 5, 50} {
			got, err := cut.cluster.QueryKNN(probe, k)
			want := cut.oracle.QueryKNN(probe, k)
			mustMatchNeighbors(t, fmt.Sprintf("%s probe %d knn %d", tag, pi, k), got, want, err)
		}
	}
	for _, entity := range entityProbes {
		for _, thr := range []float64{0, 0.5} {
			got, err := cut.cluster.QueryEntity(entity, thr)
			want, werr := cut.oracle.QueryEntity(entity, thr)
			if werr != nil {
				t.Fatal(werr)
			}
			mustMatch(t, fmt.Sprintf("%s entity %q threshold %v", tag, entity, thr), got, want, err)
		}
		for _, k := range []int{1, 5, 50} {
			got, err := cut.cluster.QueryKNNEntity(entity, k)
			want, werr := cut.oracle.QueryKNNEntity(entity, k)
			if werr != nil {
				t.Fatal(werr)
			}
			mustMatchNeighbors(t, fmt.Sprintf("%s entity %q knn %d", tag, entity, k), got, want, err)
		}
	}
}

// TestClusterDifferential is the acceptance gate: {1,3} partitions ×
// {1,2} replicas × four measures, compared against the oracle after
// initial load, after churn (removals and upserts), and — when
// replicas allow it — after killing one node.
func TestClusterDifferential(t *testing.T) {
	for _, measure := range clusterDiffMeasures {
		for _, partitions := range []int{1, 3} {
			for _, replicas := range []int{1, 2} {
				name := fmt.Sprintf("%s/p%d/r%d", measure, partitions, replicas)
				t.Run(name, func(t *testing.T) {
					runClusterDifferential(t, measure, partitions, replicas)
				})
			}
		}
	}
}

func runClusterDifferential(t *testing.T, measure string, partitions, replicas int) {
	rng := rand.New(rand.NewSource(1789))
	cut := startCluster(t, measure, partitions, replicas)
	entities := clusterEntities(rng, 40)
	names := make([]string, 0, len(entities))
	for name := range entities {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cut.add(t, name, entities[name])
	}

	probes := []map[string]uint32{
		{"w1": 3, "w2": 1, "tie": 2},  // the duplicate multiset: maximal ties
		{"w0": 1, "w1": 2, "w3": 1},   // generic overlap
		{"w5": 4},                     // single element
		{"never-indexed": 7, "w2": 1}, // partially out-of-alphabet
		{"totally-unknown": 1},        // fully out-of-alphabet
		entities[names[3]],            // an indexed entity's exact multiset
	}
	entityProbes := []string{names[0], "dup0", names[17]}
	cut.compare(t, "initial", probes, entityProbes)

	// Churn: remove a third, upsert a third with fresh contents, add a
	// few new entities (including a new duplicate of the tie group).
	for i, name := range names {
		switch i % 3 {
		case 0:
			cut.remove(t, name)
		case 1:
			fresh := make(map[string]uint32)
			for j, k := 0, 1+rng.Intn(5); j < k; j++ {
				fresh[fmt.Sprintf("w%d", rng.Intn(24))] = uint32(1 + rng.Intn(4))
			}
			cut.add(t, name, fresh)
		}
	}
	cut.add(t, "late-dup", map[string]uint32{"w1": 3, "w2": 1, "tie": 2})
	cut.remove(t, "no-such-entity") // both sides: not indexed
	cut.compare(t, "churn", probes, []string{names[1], "late-dup"})

	// Kill one replica: queries must stay exact through failover. With
	// a single replica the partition would (correctly) become
	// unavailable, which TestClusterPartitionLossFailsQueries covers.
	if replicas >= 2 {
		cut.servers[0][0].Close()
		cut.compare(t, "one node killed", probes, []string{"late-dup"})
		// And again with the router's health table aware of the death.
		cut.cluster.CheckHealth()
		cut.compare(t, "one node killed, health known", probes, []string{"late-dup"})
	}
}

// TestClusterPartitionLossFailsQueries: losing the only replica of a
// partition must fail queries loudly (ErrClusterUnavailable), never
// return the surviving partitions' partial answer.
func TestClusterPartitionLossFailsQueries(t *testing.T) {
	cut := startCluster(t, "ruzicka", 2, 1)
	for i := 0; i < 8; i++ {
		cut.add(t, fmt.Sprintf("e%d", i), map[string]uint32{"x": 1, fmt.Sprintf("y%d", i): 2})
	}
	cut.servers[1][0].Close()
	_, err := cut.cluster.QueryThreshold(map[string]uint32{"x": 1}, 0)
	if !errors.Is(err, vsmartjoin.ErrClusterUnavailable) {
		t.Fatalf("want ErrClusterUnavailable, got %v", err)
	}
	// Writes to the dead partition fail too; writes to the live one work.
	var deadName, liveName string
	for i := 0; deadName == "" || liveName == ""; i++ {
		name := fmt.Sprintf("probe%d", i)
		if vsmartjoin.PartitionOfEntity(name, 2) == 1 {
			deadName = name
		} else {
			liveName = name
		}
	}
	if err := cut.cluster.Add(deadName, map[string]uint32{"z": 1}); !errors.Is(err, vsmartjoin.ErrClusterUnavailable) {
		t.Fatalf("write to dead partition: %v", err)
	}
	if err := cut.cluster.Add(liveName, map[string]uint32{"z": 1}); err != nil {
		t.Fatalf("write to live partition: %v", err)
	}
}

// TestClusterCarvedBulkBuild: BuildClusterFiles → per-node OpenIndex →
// cluster over the opened nodes answers byte-identically to an oracle
// built from the same dataset — the bulk cold-start path for a whole
// cluster, including that carving and routing agree on ownership.
func TestClusterCarvedBulkBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	entities := clusterEntities(rng, 30)
	d := vsmartjoin.NewDataset()
	oracle, err := vsmartjoin.NewIndex(vsmartjoin.IndexOptions{Measure: "jaccard"})
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(entities))
	for name := range entities {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		d.Add(name, entities[name])
		if err := oracle.Add(name, entities[name]); err != nil {
			t.Fatal(err)
		}
	}

	const partitions = 3
	dir := filepath.Join(t.TempDir(), "cluster")
	opts := vsmartjoin.IndexOptions{Measure: "jaccard", Shards: 2, Dir: dir}
	cs, err := vsmartjoin.BuildClusterFiles(d, opts, partitions)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, bs := range cs.Nodes {
		total += bs.Entities
	}
	if total != int64(len(names)) {
		t.Fatalf("carve wrote %d entities, want %d", total, len(names))
	}

	var topo [][]string
	for p := 0; p < partitions; p++ {
		ix, err := vsmartjoin.OpenIndex(vsmartjoin.IndexOptions{
			Measure: "jaccard", Dir: filepath.Join(dir, vsmartjoin.NodeDirName(p)),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ix.Close() })
		ts := httptest.NewServer(httpd.NewNode(ix, httpd.Options{}))
		t.Cleanup(ts.Close)
		topo = append(topo, []string{ts.URL})
	}
	c, err := vsmartjoin.NewCluster(vsmartjoin.ClusterOptions{Nodes: topo, HealthEvery: -1, RepairEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	cut := &clusterUnderTest{cluster: c, oracle: oracle}
	cut.compare(t, "carved", []map[string]uint32{
		{"w1": 3, "w2": 1, "tie": 2},
		{"w0": 1, "w4": 2},
		entities[names[5]],
	}, []string{names[0], "dup1"})

	// The carved cluster keeps accepting writes: further churn through
	// the router stays oracle-exact.
	cut.add(t, "post-carve", map[string]uint32{"w1": 2, "fresh": 1})
	cut.remove(t, names[2])
	cut.compare(t, "carved+churn", []map[string]uint32{{"w1": 3, "w2": 1, "tie": 2}}, []string{"post-carve"})
}
