package vsmartjoin

// The query result cache. Serving workloads are zipf-skewed: a few head
// queries repeat constantly while the long tail is seen once, so a small
// bounded LRU in front of the probe→prune→verify pipeline absorbs the
// head at near-zero cost. Correctness comes from generation stamping,
// not timers: every Add/Remove bumps the index generation, each cached
// answer is stamped with the generation read BEFORE its query ran, and
// a lookup only hits when the stamp equals the current generation. A
// mutation racing a fill can therefore only cause a false miss (the
// stale entry is evicted on its next lookup) — never a stale hit — so
// the differential harnesses keep proving byte-identical answers with
// the cache on.
import (
	"container/list"
	"encoding/binary"
	"math"
	"slices"
	"sync"
	"sync/atomic"
)

// defaultCacheSize is the result-cache capacity when IndexOptions leaves
// CacheSize at 0. Sized for the head of a zipf-skewed query population:
// with s ≈ 1.4 the top ~1k distinct queries cover the large majority of
// a skewed stream.
const defaultCacheSize = 1024

// queryCache is a bounded LRU over canonicalized query keys. All state
// sits behind one mutex — lookups copy in and out, so the critical
// section is short and the cache never holds a reference a caller could
// mutate.
type queryCache struct {
	mu    sync.Mutex
	cap   int
	lru   *list.List // front = most recently used; values are *cacheEntry
	byKey map[string]*list.Element

	hits   atomic.Int64
	misses atomic.Int64
}

// cacheEntry is one cached answer, stamped with the index generation
// current when its query began. Exactly one of res/kres is set — the
// key's kind byte decides which query family it answers, so a key can
// never be read back as the wrong type.
type cacheEntry struct {
	key  string
	gen  uint64
	res  []Match
	kres []Neighbor
}

func newQueryCache(capacity int) *queryCache {
	return &queryCache{
		cap:   capacity,
		lru:   list.New(),
		byKey: make(map[string]*list.Element, capacity),
	}
}

// get returns a copy of the cached answer for key if one exists and was
// computed at the given generation. A stale entry (any other generation)
// is evicted and reads as a miss. The key is raw bytes so the lookup
// stays allocation-free: Go elides the string conversion in a map index
// expression, and only put materializes the string.
func (c *queryCache) get(key []byte, gen uint64) ([]Match, bool) {
	c.mu.Lock()
	el, ok := c.byKey[string(key)]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	if ent.gen != gen {
		c.lru.Remove(el)
		delete(c.byKey, ent.key)
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	c.lru.MoveToFront(el)
	res := slices.Clone(ent.res)
	c.mu.Unlock()
	c.hits.Add(1)
	//lint:vsmart-allow canonicalorder entries are stored already-canonical and cloned verbatim; order is preserved
	return res, true
}

// put stores a copy of res under key, stamped with gen (the generation
// read before the query ran — see the package comment above for why a
// racing mutation then yields a false miss, never a stale hit), and
// evicts least-recently-used entries beyond capacity.
func (c *queryCache) put(key []byte, gen uint64, res []Match) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[string(key)]; ok {
		ent := el.Value.(*cacheEntry)
		ent.gen = gen
		ent.res = slices.Clone(res)
		c.lru.MoveToFront(el)
		return
	}
	k := string(key)
	c.byKey[k] = c.lru.PushFront(&cacheEntry{key: k, gen: gen, res: slices.Clone(res)})
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.byKey, back.Value.(*cacheEntry).key)
	}
}

// getKNN and putKNN are get and put for kNN answers; the 'N'/'M' kind
// bytes keep their keys disjoint from the Match-typed families, so an
// entry is always read back as the type it was stored with.
func (c *queryCache) getKNN(key []byte, gen uint64) ([]Neighbor, bool) {
	c.mu.Lock()
	el, ok := c.byKey[string(key)]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	if ent.gen != gen {
		c.lru.Remove(el)
		delete(c.byKey, ent.key)
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	c.lru.MoveToFront(el)
	res := slices.Clone(ent.kres)
	c.mu.Unlock()
	c.hits.Add(1)
	//lint:vsmart-allow canonicalorder entries are stored already-canonical and cloned verbatim; order is preserved
	return res, true
}

func (c *queryCache) putKNN(key []byte, gen uint64, res []Neighbor) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[string(key)]; ok {
		ent := el.Value.(*cacheEntry)
		ent.gen = gen
		ent.kres = slices.Clone(res)
		c.lru.MoveToFront(el)
		return
	}
	k := string(key)
	c.byKey[k] = c.lru.PushFront(&cacheEntry{key: k, gen: gen, kres: slices.Clone(res)})
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.byKey, back.Value.(*cacheEntry).key)
	}
}

// len reports the number of live entries (stale ones included until
// their next lookup evicts them).
func (c *queryCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Cache key layout: a kind byte ('T' threshold, 'K' top-k, 'E'
// entity-relative, 'N' kNN, 'M' entity-relative kNN), the measure name
// (NUL-terminated — measure names
// never contain NUL), the query parameter, then the canonicalized query.
// Element names are length-prefixed so adjacent names cannot alias, and
// sorted so the key is independent of map iteration order — two maps
// holding the same multiset always build the same key.
//
// Keys are built into pooled scratch buffers so the cache hit path does
// not allocate for key construction; the key string is materialized only
// when put inserts a new entry.

type keyScratch struct {
	b     []byte
	names []string
}

var keyScratchPool = sync.Pool{New: func() any { return new(keyScratch) }}

func getKeyScratch() *keyScratch   { return keyScratchPool.Get().(*keyScratch) }
func putKeyScratch(ks *keyScratch) { keyScratchPool.Put(ks) }

func (ks *keyScratch) appendCounts(counts map[string]uint32) {
	names := ks.names[:0]
	for name, c := range counts {
		if c > 0 { // zero counts are ignored by queries, so they can't split keys
			names = append(names, name)
		}
	}
	slices.Sort(names)
	b := ks.b
	for _, name := range names {
		b = binary.BigEndian.AppendUint32(b, uint32(len(name)))
		b = append(b, name...)
		b = binary.BigEndian.AppendUint32(b, counts[name])
	}
	ks.b, ks.names = b, names
}

func (ks *keyScratch) header(kind byte, measure string, param uint64) {
	b := ks.b[:0]
	b = append(b, kind)
	b = append(b, measure...)
	b = append(b, 0)
	ks.b = binary.BigEndian.AppendUint64(b, param)
}

func (ks *keyScratch) thresholdKey(measure string, counts map[string]uint32, t float64) {
	ks.header('T', measure, math.Float64bits(t))
	ks.appendCounts(counts)
}

func (ks *keyScratch) topKKey(measure string, counts map[string]uint32, k int) {
	ks.header('K', measure, uint64(k))
	ks.appendCounts(counts)
}

func (ks *keyScratch) entityKey(measure, entity string, t float64) {
	ks.header('E', measure, math.Float64bits(t))
	ks.b = append(ks.b, entity...)
}

func (ks *keyScratch) knnKey(measure string, counts map[string]uint32, k int) {
	ks.header('N', measure, uint64(k))
	ks.appendCounts(counts)
}

func (ks *keyScratch) knnEntityKey(measure, entity string, k int) {
	ks.header('M', measure, uint64(k))
	ks.b = append(ks.b, entity...)
}
