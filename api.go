package vsmartjoin

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"vsmartjoin/internal/core"
	"vsmartjoin/internal/graph"
	"vsmartjoin/internal/mr"
	"vsmartjoin/internal/multiset"
	"vsmartjoin/internal/records"
	"vsmartjoin/internal/similarity"
)

// Algorithm names accepted by Options.Algorithm.
const (
	// AlgorithmOnlineAggregation joins Uni(Mi) in one MR step using
	// secondary keys (the fastest; rejected in Hadoop-compatible mode).
	AlgorithmOnlineAggregation = "online-aggregation"
	// AlgorithmLookup joins through an in-memory side table (fast, but the
	// table must fit in per-machine memory).
	AlgorithmLookup = "lookup"
	// AlgorithmSharding splits entities by underlying cardinality around
	// parameter C (scalable on skewed data; Hadoop-compatible).
	AlgorithmSharding = "sharding"
)

// Measure names accepted by Options.Measure: "ruzicka", "jaccard", "dice",
// "set-dice", "cosine", "set-cosine", "vector-cosine", "overlap".

// Dataset accumulates entities for a join. Entities and elements are
// strings, interned internally; use AddByID for pre-numbered data.
type Dataset struct {
	dict     *multiset.Dict
	names    map[multiset.ID]string
	byName   map[string]int // entity name → index into sets
	sets     []multiset.Multiset
	nextID   multiset.ID
	numbered bool
}

// NewDataset returns an empty dataset.
func NewDataset() *Dataset {
	return &Dataset{
		dict:   multiset.NewDict(),
		names:  make(map[multiset.ID]string),
		byName: make(map[string]int),
		nextID: 1,
	}
}

// Add registers an entity with its element multiplicities. Adding the
// same entity name twice merges the multiplicities.
func (d *Dataset) Add(entity string, counts map[string]uint32) {
	idx, ok := d.byName[entity]
	if !ok {
		id := d.nextID
		d.nextID++
		idx = len(d.sets)
		d.byName[entity] = idx
		d.names[id] = entity
		d.sets = append(d.sets, multiset.Multiset{ID: id})
	}
	// Intern in sorted name order: element IDs (and with them record
	// encodings, partition hashes, and simulated costs) must not depend on
	// Go's randomized map iteration, or identical runs would report
	// different stats.
	elems := make([]string, 0, len(counts))
	for elem, c := range counts {
		if c == 0 {
			continue
		}
		elems = append(elems, elem)
	}
	sort.Strings(elems)
	entries := d.sets[idx].Entries
	for _, elem := range elems {
		entries = append(entries, multiset.Entry{Elem: d.dict.Intern(elem), Count: counts[elem]})
	}
	d.sets[idx] = multiset.New(d.sets[idx].ID, entries)
}

// AddSet registers an entity as a set (all multiplicities 1).
func (d *Dataset) AddSet(entity string, elements []string) {
	counts := make(map[string]uint32, len(elements))
	for _, e := range elements {
		counts[e] = 1
	}
	d.Add(entity, counts)
}

// AddByID registers a pre-numbered entity. Mixing Add and AddByID in one
// dataset is not supported.
func (d *Dataset) AddByID(entity uint64, counts map[uint64]uint32) {
	d.numbered = true
	entries := make([]multiset.Entry, 0, len(counts))
	for e, c := range counts {
		entries = append(entries, multiset.Entry{Elem: multiset.Elem(e), Count: c})
	}
	d.sets = append(d.sets, multiset.New(multiset.ID(entity), entries))
}

// Len reports the number of entities.
func (d *Dataset) Len() int { return len(d.sets) }

// Each calls fn for every entity in insertion order with its name and
// element multiplicities, stopping early if fn returns false. Numbered
// (AddByID) entities get the same synthesized names and "#<elem>"
// element strings BuildIndex and AllPairs report for them. The counts
// map is freshly built per call and may be retained by fn.
func (d *Dataset) Each(fn func(entity string, counts map[string]uint32) bool) {
	for _, m := range d.sets {
		name, ok := d.names[m.ID]
		if !ok {
			name = fmt.Sprintf("%d", uint64(m.ID))
		}
		counts := make(map[string]uint32, len(m.Entries))
		for _, e := range m.Entries {
			// Named datasets intern through d.dict; numbered (AddByID)
			// datasets have no string alphabet, so synthesize one. Branch
			// on the dataset kind, not on Name() == "" — the empty string
			// is a legitimate interned element name.
			var elem string
			if d.numbered {
				elem = fmt.Sprintf("#%d", uint64(e.Elem))
			} else {
				elem = d.dict.Name(e.Elem)
			}
			counts[elem] += e.Count
		}
		if !fn(name, counts) {
			return
		}
	}
}

// DefaultThreshold is the similarity cut-off used when Options.Threshold
// is negative (unset).
const DefaultThreshold = 0.5

// Options configures AllPairs.
type Options struct {
	// Measure is the similarity measure name (default "ruzicka").
	Measure string
	// Threshold is the similarity cut-off t in [0, 1]. Zero is a valid
	// threshold (emit every pair with any similarity); pass a negative
	// value for the default (DefaultThreshold). Values above 1 or NaN are
	// rejected.
	Threshold float64
	// Algorithm selects the joining algorithm (default online-aggregation,
	// or sharding when HadoopCompat is set).
	Algorithm string
	// Machines sets the simulated cluster size (default 16).
	Machines int
	// MemPerMachine is the simulated per-machine memory budget in bytes
	// (default 1 GiB, the paper's setting).
	MemPerMachine int64
	// ShuffleBufferBytes caps how many shuffle bytes each map task buffers
	// in memory before spilling sorted runs to disk; reducers then stream
	// a k-way merge of the runs. 0 (the default) keeps the whole shuffle
	// in memory. Results are identical either way.
	ShuffleBufferBytes int64
	// HadoopCompat disables secondary-key support, as on Hadoop.
	HadoopCompat bool
	// StopWordQ, when positive, drops elements shared by more than q
	// entities before joining.
	StopWordQ int
	// ShardC overrides the Sharding split parameter C.
	ShardC int
}

// Pair is one similar pair of entities.
type Pair struct {
	A, B       string
	Similarity float64
}

// Stats summarizes the simulated cluster cost of a run.
type Stats struct {
	// JoiningSeconds and SimilaritySeconds split the simulated time by
	// phase; TotalSeconds is their sum.
	JoiningSeconds    float64
	SimilaritySeconds float64
	TotalSeconds      float64
	// Jobs is the number of MapReduce steps executed.
	Jobs int
	// CandidateTuples counts the pair tuples Similarity1 emitted;
	// OutputPairs counts the final pairs.
	CandidateTuples int64
	OutputPairs     int64
	// SpilledBytes is the shuffle volume spilled to disk across all jobs
	// (0 unless Options.ShuffleBufferBytes forced spilling).
	SpilledBytes int64
}

// Result is the outcome of AllPairs.
type Result struct {
	// Pairs are the similar pairs, sorted by entity names.
	Pairs []Pair
	// Stats is the simulated cluster cost.
	Stats Stats

	ids []records.Pair
	rev map[multiset.ID]string
}

// Communities clusters the similar pairs into connected components —
// the paper's community-discovery post-processing. Components are sorted
// largest first; members are entity names.
func (r *Result) Communities() [][]string {
	comps := graph.Communities(r.ids)
	out := make([][]string, len(comps))
	for i, c := range comps {
		names := make([]string, len(c))
		for j, id := range c {
			names[j] = r.rev[id]
		}
		sort.Strings(names)
		out[i] = names
	}
	return out
}

// AllPairs finds every pair of entities with similarity at or above the
// threshold, exactly.
func AllPairs(d *Dataset, opts Options) (*Result, error) {
	if d == nil || len(d.sets) == 0 {
		return nil, errors.New("vsmartjoin: empty dataset")
	}
	measureName := opts.Measure
	if measureName == "" {
		measureName = "ruzicka"
	}
	measure, err := similarity.ByName(measureName)
	if err != nil {
		return nil, err
	}
	threshold := opts.Threshold
	if threshold < 0 {
		threshold = DefaultThreshold
	}
	if math.IsNaN(threshold) || threshold > 1 {
		return nil, fmt.Errorf("vsmartjoin: threshold %v outside [0, 1] (negative selects the default %v)",
			opts.Threshold, DefaultThreshold)
	}
	machines := opts.Machines
	if machines == 0 {
		machines = 16
	}
	mem := opts.MemPerMachine
	if mem == 0 {
		mem = 1 << 30
	}
	algName := opts.Algorithm
	if algName == "" {
		if opts.HadoopCompat {
			algName = AlgorithmSharding
		} else {
			algName = AlgorithmOnlineAggregation
		}
	}
	var alg core.Algorithm
	switch algName {
	case AlgorithmOnlineAggregation:
		alg = core.OnlineAggregation
	case AlgorithmLookup:
		alg = core.Lookup
	case AlgorithmSharding:
		alg = core.Sharding
	default:
		return nil, fmt.Errorf("vsmartjoin: unknown algorithm %q", algName)
	}

	cluster := mr.NewCluster(machines, mem)
	cluster.ShuffleBufferBytes = opts.ShuffleBufferBytes
	if opts.HadoopCompat {
		cluster = cluster.Hadoop()
	}
	input := records.BuildInput("input", d.sets, 4*machines)
	res, err := core.Join(cluster, input, core.Config{
		Measure:   measure,
		Threshold: threshold,
		Algorithm: alg,
		ShardC:    opts.ShardC,
		StopWordQ: opts.StopWordQ,
	})
	if err != nil {
		return nil, err
	}

	out := &Result{ids: res.Pairs, rev: d.nameTable()}
	out.Stats = Stats{
		JoiningSeconds:    res.JoiningStats.TotalSeconds,
		SimilaritySeconds: res.SimilarityStats.TotalSeconds,
		TotalSeconds:      res.Stats.TotalSeconds,
		Jobs:              len(res.Stats.Jobs),
		CandidateTuples:   res.Stats.Counter(core.CounterCandidateTuples),
		OutputPairs:       res.Stats.Counter(core.CounterOutputPairs),
	}
	for _, j := range res.Stats.Jobs {
		out.Stats.SpilledBytes += j.SpilledBytes
	}
	for _, p := range res.Pairs {
		a, b := out.rev[p.A], out.rev[p.B]
		if a > b {
			a, b = b, a
		}
		out.Pairs = append(out.Pairs, Pair{A: a, B: b, Similarity: p.Sim})
	}
	sort.Slice(out.Pairs, func(i, j int) bool {
		if out.Pairs[i].A != out.Pairs[j].A {
			return out.Pairs[i].A < out.Pairs[j].A
		}
		return out.Pairs[i].B < out.Pairs[j].B
	})
	return out, nil
}

// nameTable maps IDs back to entity names (synthesized for AddByID data).
func (d *Dataset) nameTable() map[multiset.ID]string {
	rev := make(map[multiset.ID]string, len(d.sets))
	for _, m := range d.sets {
		if n, ok := d.names[m.ID]; ok {
			rev[m.ID] = n
		} else {
			rev[m.ID] = fmt.Sprintf("%d", uint64(m.ID))
		}
	}
	return rev
}

// Similarity computes the similarity of two entities directly — a
// convenience for spot checks and tests.
func Similarity(measure string, a, b map[string]uint32) (float64, error) {
	m, err := similarity.ByName(measure)
	if err != nil {
		return 0, err
	}
	dict := multiset.NewDict()
	build := func(id multiset.ID, counts map[string]uint32) multiset.Multiset {
		entries := make([]multiset.Entry, 0, len(counts))
		for e, c := range counts {
			entries = append(entries, multiset.Entry{Elem: dict.Intern(e), Count: c})
		}
		return multiset.New(id, entries)
	}
	return similarity.Exact(m, build(1, a), build(2, b)), nil
}
