package vsmartjoin

// Durability and sharding gates at the public-API level, reusing the
// api_diff_test.go harness (randomEntities + exact-match comparison):
//
//   - crash recovery: an Index with a Dir, killed at arbitrary points
//     (including a torn final WAL frame), must reopen into a state that
//     answers every query exactly like an uninterrupted in-memory
//     oracle that saw the same mutations;
//   - sharding: for shard counts {1, 3, 8}, every query must match the
//     single-shard index exactly — same matches, same scores, same
//     top-k order.

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// tearWALTail appends a partial frame to one shard's current WAL file
// under the data dir, simulating a process killed mid-append. The shard
// is chosen at random: any shard's log must recover from a torn tail.
func tearWALTail(t *testing.T, dir string, rng *rand.Rand) {
	t.Helper()
	var wals []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasPrefix(d.Name(), "wal-") {
			wals = append(wals, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(wals) == 0 {
		t.Fatal("no wal file to tear")
	}
	sort.Strings(wals) // deterministic order under the seeded rng
	f, err := os.OpenFile(wals[rng.Intn(len(wals))], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// A frame header claiming more payload than follows: garbage length
	// byte, bogus checksum, and a few bytes of a record that never
	// finished hitting the disk.
	torn := []byte{0x40, 0xde, 0xad, 0xbe, 0xef}
	for i := 0; i < rng.Intn(8); i++ {
		torn = append(torn, byte(rng.Intn(256)))
	}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
}

// mustAgree compares a recovered/sharded index against the oracle on
// Len plus threshold and top-k probes, demanding exact equality of
// matches, scores, and order.
func mustAgree(t *testing.T, tag string, got, oracle *Index, probes []map[string]uint32) {
	t.Helper()
	if g, w := got.Len(), oracle.Len(); g != w {
		t.Fatalf("%s: len %d, oracle %d", tag, g, w)
	}
	for pi, probe := range probes {
		for _, thr := range []float64{0, 0.3, 0.7} {
			g, err := got.QueryThreshold(probe, thr)
			if err != nil {
				t.Fatal(err)
			}
			w, err := oracle.QueryThreshold(probe, thr)
			if err != nil {
				t.Fatal(err)
			}
			if len(g) != len(w) {
				t.Fatalf("%s probe %d t=%v: %d matches, oracle %d\ngot    %v\noracle %v", tag, pi, thr, len(g), len(w), g, w)
			}
			for i := range g {
				if g[i] != w[i] {
					t.Fatalf("%s probe %d t=%v match %d: got %v oracle %v", tag, pi, thr, i, g[i], w[i])
				}
			}
		}
		g, w := got.QueryTopK(probe, 5), oracle.QueryTopK(probe, 5)
		if len(g) != len(w) {
			t.Fatalf("%s probe %d topk: %d vs %d", tag, pi, len(g), len(w))
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("%s probe %d topk %d: got %v oracle %v", tag, pi, i, g[i], w[i])
			}
		}
	}
}

// TestCrashRecoveryDifferential interleaves Add/Remove/Query on a
// durable sharded index and an in-memory oracle, hard-stops the durable
// one (abandoned without Close, WAL tail torn mid-frame), reopens it,
// and requires the recovered index to answer exactly like the oracle.
// The tight SnapshotEvery forces several snapshot rotations along the
// way, so recovery exercises snapshot-load + log-replay, not just one.
func TestCrashRecoveryDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	dir := t.TempDir()
	opts := IndexOptions{Measure: "ruzicka", Dir: dir, Shards: 3, SnapshotEvery: 17}
	durable, err := NewIndex(opts)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := NewIndex(IndexOptions{Measure: "ruzicka"})
	if err != nil {
		t.Fatal(err)
	}

	randomCounts := func() map[string]uint32 {
		counts := make(map[string]uint32)
		base := rng.Intn(24)
		for j := 0; j < 1+rng.Intn(7); j++ {
			var elem int
			if j%2 == 0 {
				elem = (base + rng.Intn(4)) % 24
			} else {
				elem = rng.Intn(24)
			}
			counts[fmt.Sprintf("e%d", elem)] += uint32(1 + rng.Intn(3))
		}
		return counts
	}
	var probes []map[string]uint32
	for i := 0; i < 6; i++ {
		probes = append(probes, randomCounts())
	}

	for round := 0; round < 5; round++ {
		for op := 0; op < 60; op++ {
			name := fmt.Sprintf("entity-%02d", rng.Intn(40))
			if rng.Float64() < 0.3 {
				dr, err := durable.Remove(name)
				if err != nil {
					t.Fatal(err)
				}
				or, err := oracle.Remove(name)
				if err != nil {
					t.Fatal(err)
				}
				if dr != or {
					t.Fatalf("round %d op %d: Remove(%s) %v, oracle %v", round, op, name, dr, or)
				}
			} else {
				counts := randomCounts()
				if err := durable.Add(name, counts); err != nil {
					t.Fatal(err)
				}
				if err := oracle.Add(name, counts); err != nil {
					t.Fatal(err)
				}
			}
		}
		mustAgree(t, fmt.Sprintf("round %d pre-crash", round), durable, oracle, probes)

		// Hard stop: no Close, no final snapshot, and a torn frame at the
		// WAL tail as if the process died mid-append.
		tearWALTail(t, dir, rng)
		durable, err = NewIndex(opts)
		if err != nil {
			t.Fatalf("round %d: reopen: %v", round, err)
		}
		mustAgree(t, fmt.Sprintf("round %d recovered", round), durable, oracle, probes)
	}

	// Graceful path: Close writes a final snapshot; reopening replays no
	// log at all and must still agree.
	if err := durable.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := NewIndex(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	mustAgree(t, "after graceful close", reopened, oracle, probes)
}

// TestDurableMutationsAfterClose: a closed index refuses mutations but
// keeps serving queries.
func TestDurableMutationsAfterClose(t *testing.T) {
	dir := t.TempDir()
	ix, err := NewIndex(IndexOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Add("a", map[string]uint32{"x": 1}); err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if err := ix.Add("b", map[string]uint32{"y": 1}); err == nil {
		t.Fatal("add after close should fail")
	}
	if err := ix.Snapshot(); err == nil {
		t.Fatal("snapshot after close should fail")
	}
	got, err := ix.QueryThreshold(map[string]uint32{"x": 1}, 0.5)
	if err != nil || len(got) != 1 {
		t.Fatalf("query after close: %v %v", got, err)
	}
}

// TestDurableOptionValidation covers the new IndexOptions surface.
func TestDurableOptionValidation(t *testing.T) {
	if _, err := NewIndex(IndexOptions{Shards: -1}); err == nil {
		t.Fatal("negative shards should fail")
	}
	if _, err := NewIndex(IndexOptions{Shards: 5000}); err == nil {
		t.Fatal("absurd shard count should fail")
	}
	vol, err := NewIndex(IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := vol.Snapshot(); err == nil {
		t.Fatal("snapshot of a volatile index should fail")
	}
	if err := vol.Close(); err != nil {
		t.Fatalf("closing a volatile index is a no-op: %v", err)
	}

	// Reopening under a different measure is refused once a snapshot
	// exists — replaying it would silently change every score.
	dir := t.TempDir()
	ix, err := NewIndex(IndexOptions{Measure: "ruzicka", Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Add("a", map[string]uint32{"x": 1}); err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewIndex(IndexOptions{Measure: "jaccard", Dir: dir}); err == nil {
		t.Fatal("measure mismatch should fail")
	}
}

// TestDifferentialShardedIndex is the public sharded gate: for shard
// counts {1, 3, 8} the full query surface must match the single-shard
// index exactly, before and after churn.
func TestDifferentialShardedIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	entities := randomEntities(rng, 40, 28, 8, 4)
	d := datasetOf(entities)
	single, err := BuildIndex(d, IndexOptions{Measure: "ruzicka", Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	var probes []map[string]uint32
	for _, counts := range entities {
		probes = append(probes, counts)
		if len(probes) == 8 {
			break
		}
	}
	for _, shards := range []int{1, 3, 8} {
		sharded, err := BuildIndex(d, IndexOptions{Measure: "ruzicka", Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if got := sharded.Stats().Shards; got != shards {
			t.Fatalf("stats report %d shards, want %d", got, shards)
		}
		mustAgree(t, fmt.Sprintf("shards=%d", shards), sharded, single, probes)

		// Churn both the same way, then compare again.
		i := 0
		for name := range entities {
			switch i % 3 {
			case 0:
				if _, err := sharded.Remove(name); err != nil {
					t.Fatal(err)
				}
				if _, err := single.Remove(name); err != nil {
					t.Fatal(err)
				}
			case 1:
				counts := map[string]uint32{fmt.Sprintf("e%d", i%28): uint32(i%4 + 1)}
				if err := sharded.Add(name, counts); err != nil {
					t.Fatal(err)
				}
				if err := single.Add(name, counts); err != nil {
					t.Fatal(err)
				}
			}
			i++
		}
		mustAgree(t, fmt.Sprintf("shards=%d churned", shards), sharded, single, probes)

		// Rebuild the single oracle for the next shard width (the churn
		// above mutated it).
		single, err = BuildIndex(d, IndexOptions{Measure: "ruzicka", Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
	}
}
