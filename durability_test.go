package vsmartjoin

// Durability and sharding gates at the public-API level, reusing the
// api_diff_test.go harness (randomEntities + exact-match comparison):
//
//   - crash recovery: an Index with a Dir, killed at arbitrary points
//     (including a torn final WAL frame), must reopen into a state that
//     answers every query exactly like an uninterrupted in-memory
//     oracle that saw the same mutations;
//   - sharding: for shard counts {1, 3, 8}, every query must match the
//     single-shard index exactly — same matches, same scores, same
//     top-k order.

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"testing"
	"time"
)

// walPaths lists every shard WAL file under the data dir (via
// bulk_test.go's walFiles), sorted for deterministic selection under a
// seeded rng.
func walPaths(t *testing.T, dir string) []string {
	t.Helper()
	var wals []string
	for path := range walFiles(t, dir) {
		wals = append(wals, path)
	}
	sort.Strings(wals)
	return wals
}

// tearWALTail appends a partial frame to one shard's current WAL file
// under the data dir, simulating a process killed mid-append. The shard
// is chosen at random: any shard's log must recover from a torn tail.
func tearWALTail(t *testing.T, dir string, rng *rand.Rand) {
	t.Helper()
	wals := walPaths(t, dir)
	if len(wals) == 0 {
		t.Fatal("no wal file to tear")
	}
	f, err := os.OpenFile(wals[rng.Intn(len(wals))], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// A frame header claiming more payload than follows: garbage length
	// byte, bogus checksum, and a few bytes of a record that never
	// finished hitting the disk.
	torn := []byte{0x40, 0xde, 0xad, 0xbe, 0xef}
	for i := 0; i < rng.Intn(8); i++ {
		torn = append(torn, byte(rng.Intn(256)))
	}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
}

// mustAgree compares a recovered/sharded index against the oracle on
// Len plus threshold and top-k probes, demanding exact equality of
// matches, scores, and order.
func mustAgree(t *testing.T, tag string, got, oracle *Index, probes []map[string]uint32) {
	t.Helper()
	if g, w := got.Len(), oracle.Len(); g != w {
		t.Fatalf("%s: len %d, oracle %d", tag, g, w)
	}
	for pi, probe := range probes {
		for _, thr := range []float64{0, 0.3, 0.7} {
			g, err := got.QueryThreshold(probe, thr)
			if err != nil {
				t.Fatal(err)
			}
			w, err := oracle.QueryThreshold(probe, thr)
			if err != nil {
				t.Fatal(err)
			}
			if len(g) != len(w) {
				t.Fatalf("%s probe %d t=%v: %d matches, oracle %d\ngot    %v\noracle %v", tag, pi, thr, len(g), len(w), g, w)
			}
			for i := range g {
				if g[i] != w[i] {
					t.Fatalf("%s probe %d t=%v match %d: got %v oracle %v", tag, pi, thr, i, g[i], w[i])
				}
			}
		}
		g, w := got.QueryTopK(probe, 5), oracle.QueryTopK(probe, 5)
		if len(g) != len(w) {
			t.Fatalf("%s probe %d topk: %d vs %d", tag, pi, len(g), len(w))
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("%s probe %d topk %d: got %v oracle %v", tag, pi, i, g[i], w[i])
			}
		}
	}
}

// TestCrashRecoveryDifferential interleaves Add/Remove/Query on a
// durable sharded index and an in-memory oracle, hard-stops the durable
// one (abandoned without Close, WAL tail torn mid-frame), reopens it,
// and requires the recovered index to answer exactly like the oracle.
// The tight SnapshotEvery forces several snapshot rotations along the
// way, so recovery exercises snapshot-load + log-replay, not just one.
func TestCrashRecoveryDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	dir := t.TempDir()
	opts := IndexOptions{Measure: "ruzicka", Dir: dir, Shards: 3, SnapshotEvery: 17}
	durable, err := NewIndex(opts)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := NewIndex(IndexOptions{Measure: "ruzicka"})
	if err != nil {
		t.Fatal(err)
	}

	randomCounts := func() map[string]uint32 {
		counts := make(map[string]uint32)
		base := rng.Intn(24)
		for j := 0; j < 1+rng.Intn(7); j++ {
			var elem int
			if j%2 == 0 {
				elem = (base + rng.Intn(4)) % 24
			} else {
				elem = rng.Intn(24)
			}
			counts[fmt.Sprintf("e%d", elem)] += uint32(1 + rng.Intn(3))
		}
		return counts
	}
	var probes []map[string]uint32
	for i := 0; i < 6; i++ {
		probes = append(probes, randomCounts())
	}

	for round := 0; round < 5; round++ {
		for op := 0; op < 60; op++ {
			name := fmt.Sprintf("entity-%02d", rng.Intn(40))
			if rng.Float64() < 0.3 {
				dr, err := durable.Remove(name)
				if err != nil {
					t.Fatal(err)
				}
				or, err := oracle.Remove(name)
				if err != nil {
					t.Fatal(err)
				}
				if dr != or {
					t.Fatalf("round %d op %d: Remove(%s) %v, oracle %v", round, op, name, dr, or)
				}
			} else {
				counts := randomCounts()
				if err := durable.Add(name, counts); err != nil {
					t.Fatal(err)
				}
				if err := oracle.Add(name, counts); err != nil {
					t.Fatal(err)
				}
			}
		}
		mustAgree(t, fmt.Sprintf("round %d pre-crash", round), durable, oracle, probes)

		// Hard stop: no Close, no final snapshot, and a torn frame at the
		// WAL tail as if the process died mid-append.
		tearWALTail(t, dir, rng)
		durable, err = NewIndex(opts)
		if err != nil {
			t.Fatalf("round %d: reopen: %v", round, err)
		}
		mustAgree(t, fmt.Sprintf("round %d recovered", round), durable, oracle, probes)
	}

	// Graceful path: Close writes a final snapshot; reopening replays no
	// log at all and must still agree.
	if err := durable.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := NewIndex(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	mustAgree(t, "after graceful close", reopened, oracle, probes)
}

// TestDurableMutationsAfterClose: a closed index refuses mutations but
// keeps serving queries.
func TestDurableMutationsAfterClose(t *testing.T) {
	dir := t.TempDir()
	ix, err := NewIndex(IndexOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Add("a", map[string]uint32{"x": 1}); err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if err := ix.Add("b", map[string]uint32{"y": 1}); err == nil {
		t.Fatal("add after close should fail")
	}
	if err := ix.Snapshot(); err == nil {
		t.Fatal("snapshot after close should fail")
	}
	got, err := ix.QueryThreshold(map[string]uint32{"x": 1}, 0.5)
	if err != nil || len(got) != 1 {
		t.Fatalf("query after close: %v %v", got, err)
	}
}

// TestDurableOptionValidation covers the new IndexOptions surface.
func TestDurableOptionValidation(t *testing.T) {
	if _, err := NewIndex(IndexOptions{Shards: -1}); err == nil {
		t.Fatal("negative shards should fail")
	}
	if _, err := NewIndex(IndexOptions{Shards: 5000}); err == nil {
		t.Fatal("absurd shard count should fail")
	}
	vol, err := NewIndex(IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := vol.Snapshot(); err == nil {
		t.Fatal("snapshot of a volatile index should fail")
	}
	if err := vol.Close(); err != nil {
		t.Fatalf("closing a volatile index is a no-op: %v", err)
	}

	// Reopening under a different measure is refused once a snapshot
	// exists — replaying it would silently change every score.
	dir := t.TempDir()
	ix, err := NewIndex(IndexOptions{Measure: "ruzicka", Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Add("a", map[string]uint32{"x": 1}); err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewIndex(IndexOptions{Measure: "jaccard", Dir: dir}); err == nil {
		t.Fatal("measure mismatch should fail")
	}
}

// TestDifferentialShardedIndex is the public sharded gate: for shard
// counts {1, 3, 8} the full query surface must match the single-shard
// index exactly, before and after churn.
func TestDifferentialShardedIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	entities := randomEntities(rng, 40, 28, 8, 4)
	d := datasetOf(entities)
	single, err := BuildIndex(d, IndexOptions{Measure: "ruzicka", Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	var probes []map[string]uint32
	for _, counts := range entities {
		probes = append(probes, counts)
		if len(probes) == 8 {
			break
		}
	}
	for _, shards := range []int{1, 3, 8} {
		sharded, err := BuildIndex(d, IndexOptions{Measure: "ruzicka", Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if got := sharded.Stats().Shards; got != shards {
			t.Fatalf("stats report %d shards, want %d", got, shards)
		}
		mustAgree(t, fmt.Sprintf("shards=%d", shards), sharded, single, probes)

		// Churn both the same way, then compare again.
		i := 0
		for name := range entities {
			switch i % 3 {
			case 0:
				if _, err := sharded.Remove(name); err != nil {
					t.Fatal(err)
				}
				if _, err := single.Remove(name); err != nil {
					t.Fatal(err)
				}
			case 1:
				counts := map[string]uint32{fmt.Sprintf("e%d", i%28): uint32(i%4 + 1)}
				if err := sharded.Add(name, counts); err != nil {
					t.Fatal(err)
				}
				if err := single.Add(name, counts); err != nil {
					t.Fatal(err)
				}
			}
			i++
		}
		mustAgree(t, fmt.Sprintf("shards=%d churned", shards), sharded, single, probes)

		// Rebuild the single oracle for the next shard width (the churn
		// above mutated it).
		single, err = BuildIndex(d, IndexOptions{Measure: "ruzicka", Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// indexAgrees is mustAgree's non-fatal twin: it reports whether two
// indexes answer identically instead of failing the test, so torn-batch
// recovery can search for WHICH prefix of a batch survived.
func indexAgrees(got, oracle *Index, probes []map[string]uint32) bool {
	if got.Len() != oracle.Len() {
		return false
	}
	for _, probe := range probes {
		for _, thr := range []float64{0, 0.5} {
			g, err1 := got.QueryThreshold(probe, thr)
			w, err2 := oracle.QueryThreshold(probe, thr)
			if err1 != nil || err2 != nil || len(g) != len(w) {
				return false
			}
			for i := range g {
				if g[i] != w[i] {
					return false
				}
			}
		}
	}
	return true
}

// TestCrashRecoveryMidGroupCommit kills a DurabilitySync index in the
// middle of a group commit: a batch has been written to the WAL but the
// crash shears off an arbitrary byte suffix of it, emulating every torn
// write a mid-fsync kill can leave. The contract under test is the
// group-commit acknowledgement boundary — everything acknowledged
// before the batch (the base) must survive every cut, and the recovered
// state must always equal base + some prefix of the torn batch, never a
// subset with holes and never invented records.
func TestCrashRecoveryMidGroupCommit(t *testing.T) {
	dir := t.TempDir()
	opts := IndexOptions{Measure: "ruzicka", Dir: dir, Shards: 1, SnapshotEvery: -1,
		Durability: DurabilitySync, GroupCommitWindow: 50 * time.Microsecond}
	ix, err := NewIndex(opts)
	if err != nil {
		t.Fatal(err)
	}

	// Acknowledged base: once AddBatch returns under DurabilitySync the
	// fsync happened, so no cut below may lose any of it.
	base := make([]BatchEntry, 0, 16)
	for i := 0; i < 16; i++ {
		base = append(base, BatchEntry{
			Entity:   fmt.Sprintf("base-%02d", i),
			Elements: map[string]uint32{fmt.Sprintf("b%d", i%8): uint32(i + 1), "shared": 1},
		})
	}
	if err := ix.AddBatch(base); err != nil {
		t.Fatal(err)
	}
	wals := walPaths(t, dir)
	if len(wals) != 1 {
		t.Fatalf("want exactly one wal file, got %v", wals)
	}
	fi, err := os.Stat(wals[0])
	if err != nil {
		t.Fatal(err)
	}
	baseSize := fi.Size()

	// The doomed batch: half overwrite base entities, half are new, and
	// each carries a unique element so every prefix length is
	// distinguishable by queries.
	tail := make([]BatchEntry, 0, 10)
	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("tail-%02d", i)
		if i%2 == 0 {
			name = fmt.Sprintf("base-%02d", i)
		}
		tail = append(tail, BatchEntry{
			Entity:   name,
			Elements: map[string]uint32{fmt.Sprintf("t%d", i): uint32(i + 1), "shared": 2},
		})
	}
	if err := ix.AddBatch(tail); err != nil {
		t.Fatal(err)
	}
	// Crash here: ix is abandoned without Close, and the final batch's
	// bytes are sheared off a few at a time below.

	oracles := make([]*Index, len(tail)+1)
	for j := range oracles {
		o, err := NewIndex(IndexOptions{Measure: "ruzicka"})
		if err != nil {
			t.Fatal(err)
		}
		if err := o.AddBatch(base); err != nil {
			t.Fatal(err)
		}
		if err := o.AddBatch(tail[:j]); err != nil {
			t.Fatal(err)
		}
		oracles[j] = o
	}
	probes := []map[string]uint32{{"shared": 1}, {"b0": 1, "b4": 2}}
	for i := range tail {
		probes = append(probes, map[string]uint32{fmt.Sprintf("t%d", i): 1})
	}

	rng := rand.New(rand.NewSource(96))
	lastJ := len(tail)
	for round := 0; ; round++ {
		fi, err := os.Stat(wals[0])
		if err != nil {
			t.Fatal(err)
		}
		cur := fi.Size()
		if round > 0 {
			// Cut relative to the CURRENT size: recovery may itself have
			// repaired the file down to a frame boundary, and truncating to
			// a stale larger offset would zero-pad instead of shearing.
			if cur <= baseSize {
				break
			}
			cut := cur - int64(1+rng.Intn(40))
			if cut < baseSize {
				cut = baseSize
			}
			if err := os.Truncate(wals[0], cut); err != nil {
				t.Fatal(err)
			}
		}
		re, err := NewIndex(opts)
		if err != nil {
			t.Fatalf("round %d: reopen: %v", round, err)
		}
		j := -1
		for cand := lastJ; cand >= 0; cand-- {
			if indexAgrees(re, oracles[cand], probes) {
				j = cand
				break
			}
		}
		if j < 0 {
			t.Fatalf("round %d: recovered state matches no prefix base+tail[:j], j <= %d — acknowledged data lost or holes in the batch", round, lastJ)
		}
		if round == 0 && j != len(tail) {
			t.Fatalf("uncut log recovered only %d of %d batch entries", j, len(tail))
		}
		lastJ = j
		// re is deliberately leaked: Close would snapshot and rotate,
		// destroying the very log bytes the next cut is about to shear.
	}
	if lastJ != 0 {
		t.Fatalf("log cut back to the acknowledged base still recovered %d tail entries", lastJ)
	}
}

// TestCrashRecoveryConcurrentBatches hammers a DurabilitySync index
// with concurrent batched writers — AddAsync storms, RemoveBatch,
// AddBatch — racing lock-free readers, then hard-stops it (no Close,
// torn WAL tail) and requires the reopened index to answer exactly like
// an oracle holding every acknowledged mutation. Writers own disjoint
// entity spaces so the final state is deterministic; each writer reads
// every AddAsync acknowledgement before touching the same entities
// synchronously, which is the ordering contract the async pipeline
// documents. Run under -race this is also the batched write path's
// data-race gate.
func TestCrashRecoveryConcurrentBatches(t *testing.T) {
	dir := t.TempDir()
	opts := IndexOptions{Measure: "ruzicka", Dir: dir, Shards: 3, SnapshotEvery: 29,
		Durability: DurabilitySync, GroupCommitWindow: 100 * time.Microsecond}
	ix, err := NewIndex(opts)
	if err != nil {
		t.Fatal(err)
	}

	const writers = 4
	const perWriter = 32
	const rounds = 4
	name := func(w, i int) string { return fmt.Sprintf("w%d-%03d", w, i) }
	elems := func(w, i, round int) map[string]uint32 {
		return map[string]uint32{
			fmt.Sprintf("el%d", (w*7+i)%24):     uint32(round + 1),
			fmt.Sprintf("el%d", (i*3+round)%24): uint32(i%5 + 1),
			"shared":                            uint32(w + 1),
		}
	}

	errs := make(chan error, writers+2)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}
	done := make(chan struct{})
	var readerWG, writerWG sync.WaitGroup

	// Readers race the writers on the lock-free query path.
	for r := 0; r < 2; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			probe := map[string]uint32{"shared": 1, fmt.Sprintf("el%d", r): 2}
			for {
				select {
				case <-done:
					return
				default:
				}
				if _, err := ix.QueryThreshold(probe, 0.3); err != nil {
					fail(err)
					return
				}
				ix.QueryTopK(probe, 3)
			}
		}(r)
	}

	finals := make([]map[string]map[string]uint32, writers)
	for w := 0; w < writers; w++ {
		finals[w] = make(map[string]map[string]uint32, perWriter)
		writerWG.Add(1)
		go func(w int, final map[string]map[string]uint32) {
			defer writerWG.Done()
			for round := 0; round < rounds; round++ {
				// Async upsert storm over the whole key space; every ack is
				// read before any synchronous op touches the same entities.
				acks := make([]<-chan error, 0, perWriter)
				for i := 0; i < perWriter; i++ {
					acks = append(acks, ix.AddAsync(name(w, i), elems(w, i, round)))
				}
				for _, c := range acks {
					if err := <-c; err != nil {
						fail(err)
						return
					}
				}
				for i := 0; i < perWriter; i++ {
					final[name(w, i)] = elems(w, i, round)
				}
				// Thin out a sliding window, then batch half of it back.
				var victims []string
				for i := round; i < perWriter; i += 4 {
					victims = append(victims, name(w, i))
				}
				if _, err := ix.RemoveBatch(victims); err != nil {
					fail(err)
					return
				}
				for _, v := range victims {
					delete(final, v)
				}
				var back []BatchEntry
				for k, v := range victims {
					if k%2 == 0 {
						e := elems(w, k, round)
						back = append(back, BatchEntry{Entity: v, Elements: e})
						final[v] = e
					}
				}
				if err := ix.AddBatch(back); err != nil {
					fail(err)
					return
				}
			}
		}(w, finals[w])
	}
	writerWG.Wait()
	close(done)
	readerWG.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// Hard stop: abandon without Close. Every mutation above was
	// acknowledged, so under DurabilitySync all of it must survive the
	// torn frame a mid-append kill leaves behind.
	rng := rand.New(rand.NewSource(97))
	tearWALTail(t, dir, rng)
	recovered, err := NewIndex(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()

	oracle, err := NewIndex(IndexOptions{Measure: "ruzicka"})
	if err != nil {
		t.Fatal(err)
	}
	for _, final := range finals {
		// Writers own disjoint entity spaces, so apply order across
		// writers cannot matter; within a writer only the final value of
		// each surviving entity does.
		names := make([]string, 0, len(final))
		for n := range final {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			if err := oracle.Add(n, final[n]); err != nil {
				t.Fatal(err)
			}
		}
	}
	probes := []map[string]uint32{
		{"shared": 1},
		{"el0": 1, "el7": 2},
		{"el3": 1, "shared": 2},
		elems(1, 3, rounds-1),
	}
	mustAgree(t, "recovered after concurrent batched writes", recovered, oracle, probes)
}
