package vsmartjoin

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vsmartjoin/internal/index"
	"vsmartjoin/internal/metrics"
	"vsmartjoin/internal/multiset"
	"vsmartjoin/internal/planner"
	"vsmartjoin/internal/shard"
	"vsmartjoin/internal/similarity"
	"vsmartjoin/internal/wal"
)

// ErrNotDurable is returned by Index.Snapshot on an index opened
// without a Dir: there is nowhere to snapshot to.
var ErrNotDurable = errors.New("vsmartjoin: index has no durability directory")

// ErrIndexClosed is returned by mutations and snapshots after Close.
var ErrIndexClosed = errors.New("vsmartjoin: index is closed")

// ErrNoIndex is returned by OpenIndex when the directory holds no index
// (missing, empty, or never built). NewIndex treats the same situation
// as "create a fresh one".
var ErrNoIndex = errors.New("vsmartjoin: directory holds no index")

// defaultSnapshotEvery is the automatic snapshot cadence: the number of
// mutations logged to one shard after which that shard cuts a snapshot
// and truncates its write-ahead log.
const defaultSnapshotEvery = 4096

// maxShards bounds IndexOptions.Shards: past this the fan-out overhead
// of a query dwarfs any lock-contention win.
const maxShards = 1024

// defaultGroupCommitWindow is how long the group committer waits after
// the first pending record for neighbors to pile onto the same fsync
// (DurabilitySync only). Small enough to stay invisible next to the
// fsync itself, large enough to absorb a burst of concurrent writers.
const defaultGroupCommitWindow = 200 * time.Microsecond

// defaultMutationQueueDepth bounds each async mutation queue: a full
// queue makes AddAsync block (backpressure), never drop.
const defaultMutationQueueDepth = 1024

// applierDrainMax caps how many queued mutations one applier drains
// into a single applyBatch call — the batch each shard applies under
// one lock acquisition, and the batch one WAL AppendBatch covers.
const applierDrainMax = 256

// Durability selects how a durable index acknowledges mutations.
type Durability int

const (
	// DurabilityOS (the default) pushes every WAL record to the
	// operating system before the mutation is acknowledged but fsyncs
	// only at snapshots and Close: a process crash loses nothing, a
	// machine crash can lose the un-fsynced tail of each shard's log.
	DurabilityOS Durability = iota
	// DurabilitySync acknowledges a mutation only after an fsync covers
	// its WAL record. Fsyncs are group-committed: a committer goroutine
	// coalesces the fsyncs of concurrent mutations into one, so the
	// per-mutation cost is an fsync amortized over every write in the
	// same commit window, not an fsync each. Requires Dir.
	DurabilitySync
)

// IndexOptions configures NewIndex, OpenIndex, BuildIndex, and
// BuildIndexFiles.
type IndexOptions struct {
	// Measure is the similarity measure name (default "ruzicka"); it is
	// fixed for the life of the index because posting-list pruning bounds
	// are measure-specific. For a durable index the measure is recorded
	// in every snapshot and reopening under a different one is refused.
	Measure string

	// Shards is the number of hash-partitioned sub-indexes (default 1,
	// maximum 1024). Entities are routed to shards by their ID, queries
	// fan out to all shards in parallel and merge, and mutations lock
	// only the owning shard — identical results to one shard, but
	// writers stop serializing against the whole dataset. Shard counts
	// around GOMAXPROCS are a good default for write-heavy loads; a
	// read-only index gains little from sharding.
	//
	// For a durable index the shard count is part of the on-disk layout
	// (one log directory per shard). Opening an existing data dir with
	// Shards == 0 adopts the count found on disk; a nonzero count that
	// disagrees with the disk is refused, since the routing hash would
	// scatter entities away from the files that hold them.
	Shards int

	// Dir, when non-empty, makes the index durable: every Add/Remove is
	// appended to the owning shard's write-ahead log under Dir before it
	// is applied, and periodic snapshots truncate the logs. NewIndex
	// recovers the prior state (snapshot load + log replay, tolerating a
	// torn final frame) from a Dir that already holds one; OpenIndex
	// does the same but refuses to start fresh. Empty means fully
	// in-memory. The layout under Dir is one subdirectory per shard
	// ("shard-000", ...), each holding one snap-<gen>/wal-<gen>
	// generation — the same files the bulk builder (BuildIndexFiles)
	// writes, so a batch-built dir and a serving-written dir are
	// interchangeable.
	Dir string

	// SnapshotEvery is the number of mutations logged to one shard
	// between automatic snapshots of that shard (default 4096). Negative
	// disables automatic snapshots — the logs then grow until Snapshot
	// or Close. Ignored without Dir.
	SnapshotEvery int

	// Durability selects the acknowledgement contract of a durable
	// index (requires Dir): DurabilityOS (default) never fsyncs until a
	// snapshot, DurabilitySync group-commits an fsync before every
	// acknowledgement. Ignored without Dir.
	Durability Durability

	// GroupCommitWindow is how long the group committer waits after the
	// first pending WAL record for more to join the same fsync
	// (DurabilitySync only; default 200µs, negative commits
	// immediately). A longer window batches harder under bursty load at
	// the cost of per-mutation latency.
	GroupCommitWindow time.Duration

	// MutationQueueDepth bounds each of the per-shard async mutation
	// queues behind AddAsync (default 1024). A full queue blocks the
	// next AddAsync until the applier drains — backpressure, not loss.
	MutationQueueDepth int

	// CacheSize bounds the query result cache: a per-index LRU over
	// canonicalized queries ((measure, query elements, t or k) keys)
	// that short-circuits repeated queries — the head of a zipf-skewed
	// query population — without ever serving a stale answer: every
	// Add/Remove bumps the index generation and a cached entry only hits
	// while its stamped generation is current. 0 means the default
	// (1024 entries); negative disables caching entirely. Hit/miss
	// traffic is reported by IndexStats.CacheHits/CacheMisses.
	CacheSize int

	// Strategy selects the per-partition query strategy: "auto" (or
	// empty, the default) installs the adaptive planner, which decides
	// per shard from ingest-time statistics (entity count, token-
	// frequency skew, cardinality distribution) among "prefix" (the
	// inverted-index prefix-filter probe), "lsh" (MinHash-bucket-seeded
	// floor, then an exact sweep), and "brute" (straight scan). Naming
	// one of the three pins every shard to it. Every strategy returns
	// byte-identical results — the choice is purely a cost decision.
	// Current per-shard decisions are reported by IndexStats.Plans.
	Strategy string

	// BuildShuffleBufferBytes caps per-map-task shuffle memory of the
	// offline BuildIndexFiles job before sorted runs spill to disk
	// (0 = all in memory); see Options.ShuffleBufferBytes for the
	// mechanism. It tunes only the bulk build, never the index the
	// files open into, and is ignored by NewIndex/OpenIndex/BuildIndex.
	BuildShuffleBufferBytes int64
}

// Match is one online query result. Results are always ordered
// canonically: decreasing similarity, entity name ascending on ties.
// Name-based tie-breaking (rather than internal entity IDs) is what
// makes results reproducible across every deployment shape — a single
// index, a sharded one, and a Cluster of independent nodes (each with
// its own private ID space) all answer byte-identically.
type Match struct {
	Entity     string  `json:"entity"`
	Similarity float64 `json:"similarity"`
}

// worsePublicMatch is the canonical public result comparator: a ranks
// below b on lower similarity, or on greater entity name at equal
// similarities. Entity names are unique, so this is a total order.
func worsePublicMatch(a, b Match) bool {
	if a.Similarity != b.Similarity {
		return a.Similarity < b.Similarity
	}
	return a.Entity > b.Entity
}

// SortMatchesByName orders matches best first under the canonical
// public ordering (similarity descending, entity name ascending on
// ties). Index queries return already-sorted results; the function is
// exported for callers merging match lists from several sources — the
// cluster router's scatter-gather merge is built on it.
func SortMatchesByName(ms []Match) {
	sort.Slice(ms, func(i, j int) bool { return worsePublicMatch(ms[j], ms[i]) })
}

// IndexStats snapshots the size and traffic counters of an Index; see
// the field docs on internal/index.Stats for the pruning pipeline the
// Probes → Candidates → Verified → Results funnel describes. Entities,
// Adds, Removes and the query counters are global; Elements and
// Postings are summed across shards (an element present in several
// shards counts once per shard). Generation is the highest write-ahead
// log generation across shards (0 for a volatile index); bulk-built
// directories open at generation 1.
type IndexStats struct {
	Measure    string `json:"measure"`
	Shards     int    `json:"shards"`
	Generation uint64 `json:"generation"`
	Entities   int    `json:"entities"`
	Elements   int    `json:"elements"`
	Postings   int    `json:"postings"`

	// Strategy is the configured IndexOptions.Strategy ("auto" unless
	// pinned); Plans is each shard's current planner decision, in shard
	// order — under "auto" these can diverge per shard as the partition
	// statistics diverge.
	Strategy string   `json:"strategy"`
	Plans    []string `json:"plans"`

	Adds        int64 `json:"adds"`
	Removes     int64 `json:"removes"`
	Compactions int64 `json:"compactions"`

	Queries      int64 `json:"queries"`
	Probes       int64 `json:"probes"`
	Candidates   int64 `json:"candidates"`
	LengthPruned int64 `json:"length_pruned"`
	Verified     int64 `json:"verified"`
	Results      int64 `json:"results"`

	// CacheHits/CacheMisses count result-cache traffic (both zero when
	// the cache is disabled via CacheSize < 0); CacheEntries is the
	// current number of cached answers. A cache hit bypasses the inner
	// index entirely, so it advances none of the funnel counters
	// (Queries included) — with the cache on, public query traffic is
	// CacheHits + CacheMisses and the funnel keeps describing real
	// pruning work.
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	CacheEntries int   `json:"cache_entries"`

	// Latency digests of the serving path, in nanoseconds. QueryLatency
	// covers uncached public queries end to end, sampled one query in
	// eight so the timing stays off the hot path (cache hits are counted
	// above but never timed); MergeLatency is the cross-shard merge step
	// of multi-shard fan-outs; WALAppend/WALFsync are durability stalls
	// merged across the per-shard logs (empty for a volatile index);
	// WALCommitWait is how long acknowledged mutations waited for their
	// group commit (DurabilitySync only). Full-resolution histograms
	// back Index.Metrics and GET /metrics.
	QueryLatency  LatencySummary `json:"query_latency"`
	MergeLatency  LatencySummary `json:"merge_latency"`
	WALAppend     LatencySummary `json:"wal_append"`
	WALFsync      LatencySummary `json:"wal_fsync"`
	WALCommitWait LatencySummary `json:"wal_commit_wait"`

	// Write-batching telemetry. WALBatchSize is the records-per-
	// AppendBatch distribution; WALGroupCommitSize is records per fsync
	// (the group-commit amortization factor); WALRecords and WALFsyncs
	// are the totals whose ratio is the fsyncs-per-mutation cost;
	// MutationQueueDepth is the number of AddAsync mutations currently
	// queued behind the appliers (0 when the pipeline has never run).
	WALBatchSize       SizeSummary `json:"wal_batch_size"`
	WALGroupCommitSize SizeSummary `json:"wal_group_commit_size"`
	WALRecords         int64       `json:"wal_records"`
	WALFsyncs          int64       `json:"wal_fsyncs"`
	MutationQueueDepth int         `json:"mutation_queue_depth"`
}

// Index is the online counterpart of AllPairs: an incremental inverted
// similarity index serving threshold and top-k queries against a live
// dataset. Entities can be added and removed at any time, concurrently
// with queries; see internal/index for the data structure and locking
// design, internal/shard for the hash-partitioned fan-out, and
// internal/wal for the durability layer. Use AllPairs for periodic full
// joins and an Index for interactive lookups against the same entities.
type Index struct {
	measure similarity.Measure
	inner   *shard.Set
	// strategy is the configured IndexOptions.Strategy (Auto unless
	// pinned); immutable after construction. The live per-shard
	// decisions are read from the shards via inner.Plans().
	strategy planner.Strategy

	// mu guards the name tables and serializes logged mutations against
	// snapshots; the shards have their own locks, always nested inside
	// mu, so the nesting cannot deadlock.
	mu     sync.RWMutex
	dict   *multiset.Dict
	byName map[string]multiset.ID
	names  map[multiset.ID]string
	nextID multiset.ID

	logs          []*wal.Log // nil for a volatile index; one per shard otherwise
	snapshotEvery int
	logged        []int // per-shard mutations since that shard's snapshot; guarded by mu
	closed        bool

	// Async mutation pipeline (AddAsync): bounded queues drained by one
	// applier goroutine each, started lazily on the first AddAsync so an
	// index that never uses the pipe never spawns it. queues and
	// pipeStopped are guarded by mu; pipeWG tracks in-flight enqueues so
	// Close can drain the pipe without racing a send into a closed
	// channel; applierWG tracks the applier goroutines themselves.
	durability  Durability
	gcWindow    time.Duration
	queueDepth  int
	pipeOnce    sync.Once
	queues      []chan mutation
	pipeStopped bool
	pipeWG      sync.WaitGroup
	applierWG   sync.WaitGroup

	// gen counts mutations; every Add/Remove bumps it, invalidating all
	// result-cache entries stamped with an earlier value. cache is nil
	// when IndexOptions.CacheSize is negative.
	gen   atomic.Uint64
	cache *queryCache

	// queryLatency times uncached public queries end to end (probe,
	// verify, resolve), sampled one query in eight per pooled query
	// buffer (queryBuf.sample) so neither the clock reads nor the
	// histogram's shared counters ride the hot path. The stamp is taken
	// only after a cache miss — hits are counted by the cache, not
	// timed here.
	queryLatency metrics.Histogram
}

// NewIndex returns an index configured by opts. With a Dir it opens (or
// creates) the durability directory and recovers any prior state, so a
// killed process restarts into exactly the entities it had indexed.
func NewIndex(opts IndexOptions) (*Index, error) {
	return newIndex(opts, true)
}

// OpenIndex opens an existing durable index — typically one built
// offline by BuildIndexFiles or vsmartjoin -build-index. It behaves
// exactly like NewIndex with the same options except that a directory
// holding no index is ErrNoIndex instead of a fresh empty index, so a
// misspelled path cannot silently serve nothing. A freshly bulk-built
// dir opens with zero WAL records to replay: the snapshots load through
// the sealed bulk path and the index is immediately ready for queries
// and for further durable Add/Remove.
func OpenIndex(opts IndexOptions) (*Index, error) {
	if opts.Dir == "" {
		return nil, errors.New("vsmartjoin: OpenIndex requires Dir")
	}
	return newIndex(opts, false)
}

func newIndex(opts IndexOptions, create bool) (*Index, error) {
	name := opts.Measure
	if name == "" {
		name = "ruzicka"
	}
	m, err := similarity.ByName(name)
	if err != nil {
		return nil, err
	}
	if opts.Shards < 0 || opts.Shards > maxShards {
		return nil, fmt.Errorf("vsmartjoin: shard count %d outside [1, %d]", opts.Shards, maxShards)
	}
	shards := opts.Shards
	if opts.Dir != "" {
		diskShards, err := wal.CountShardDirs(opts.Dir)
		if err != nil {
			return nil, fmt.Errorf("vsmartjoin: open index dir: %w", err)
		}
		if diskShards == 0 && !create {
			return nil, fmt.Errorf("%w: %s", ErrNoIndex, opts.Dir)
		}
		if diskShards > 0 {
			if shards == 0 {
				shards = diskShards
			} else if shards != diskShards {
				return nil, fmt.Errorf("vsmartjoin: %s holds %d shards, options ask for %d",
					opts.Dir, diskShards, shards)
			}
		}
	}
	if shards == 0 {
		shards = 1
	}
	snapshotEvery := opts.SnapshotEvery
	if snapshotEvery == 0 {
		snapshotEvery = defaultSnapshotEvery
	}
	switch opts.Durability {
	case DurabilityOS, DurabilitySync:
	default:
		return nil, fmt.Errorf("vsmartjoin: unknown durability %d", opts.Durability)
	}
	if opts.Durability == DurabilitySync && opts.Dir == "" {
		return nil, errors.New("vsmartjoin: DurabilitySync requires Dir")
	}
	gcWindow := opts.GroupCommitWindow
	if gcWindow == 0 {
		gcWindow = defaultGroupCommitWindow
	}
	queueDepth := opts.MutationQueueDepth
	if queueDepth <= 0 {
		queueDepth = defaultMutationQueueDepth
	}
	strategy, err := planner.Parse(opts.Strategy)
	if err != nil {
		return nil, fmt.Errorf("vsmartjoin: %w", err)
	}
	ix := &Index{
		measure:       m,
		inner:         shard.New(m, shards),
		strategy:      strategy,
		dict:          multiset.NewDict(),
		byName:        make(map[string]multiset.ID),
		names:         make(map[multiset.ID]string),
		nextID:        1,
		snapshotEvery: snapshotEvery,
		durability:    opts.Durability,
		gcWindow:      gcWindow,
		queueDepth:    queueDepth,
	}
	// Plan wiring happens before any entity lands (openLogs below bulk-
	// loads recovered state), so recovery and live ingest replan through
	// the same deterministic path.
	if strategy == planner.Auto {
		ix.inner.SetPlanner(planner.Heuristic{})
	} else {
		ix.inner.SetStrategy(strategy)
	}
	cacheSize := opts.CacheSize
	if cacheSize == 0 {
		cacheSize = defaultCacheSize
	}
	if cacheSize > 0 {
		ix.cache = newQueryCache(cacheSize)
	}
	if opts.Dir != "" {
		if err := ix.openLogs(opts.Dir); err != nil {
			for _, l := range ix.logs {
				if l != nil {
					//lint:vsmart-allow walerr best-effort cleanup on the constructor's error path; the openLogs error is what the caller gets
					l.Close()
				}
			}
			return nil, fmt.Errorf("vsmartjoin: open index dir: %w", err)
		}
	}
	return ix, nil
}

// recovered is one live entity reconstructed from a shard's files.
type recovered struct {
	id   multiset.ID
	name string
	set  multiset.Multiset
}

// openLogs recovers every shard's log directory under dir and
// bulk-loads the result. Each shard's snapshot + WAL replays into
// shard-local tables first (cheap maps, no index structures), because
// only within one shard are events totally ordered; the shard-local
// live sets are then merged into the global name tables and fed through
// the sealed internal/index bulk path in one pass per shard. A name
// claimed by two shards — possible only when a machine crash loses one
// shard's un-fsynced WAL tail while a later record in another shard
// survived — resolves to the higher entity ID: IDs are assigned
// monotonically, so the higher one is always the more recent add.
// The index is not yet shared, so no locking is needed here.
func (ix *Index) openLogs(dir string) error {
	n := ix.inner.Shards()
	ix.logs = make([]*wal.Log, n)
	ix.logged = make([]int, n)
	perShard := make([][]recovered, n)
	for i := 0; i < n; i++ {
		local := make(map[multiset.ID]recovered)
		localByName := make(map[string]multiset.ID)
		apply := func(rec wal.Record, inSnapshot bool) error {
			switch rec.Op {
			case wal.OpAdd:
				id := multiset.ID(rec.ID)
				if id == 0 {
					return fmt.Errorf("recover: entity %q has no ID", rec.Entity)
				}
				if shard.ShardOf(id, n) != i {
					return fmt.Errorf("recover: entity %d routes to shard %d but its record is in %s (was the index built with a different shard count?)",
						id, shard.ShardOf(id, n), wal.ShardDirName(i))
				}
				if old, ok := localByName[rec.Entity]; ok && old != id {
					if inSnapshot {
						return fmt.Errorf("recover: %s: snapshot holds entity %q twice (IDs %d and %d)",
							wal.ShardDirName(i), rec.Entity, old, id)
					}
					// Within one ordered log this means the remove that
					// freed the name was lost; the newer add supersedes it.
					delete(local, old)
				}
				local[id] = recovered{id: id, name: rec.Entity, set: multiset.New(id, ix.internElements(rec.Elements))}
				localByName[rec.Entity] = id
			case wal.OpRemove:
				if id, ok := localByName[rec.Entity]; ok {
					delete(local, id)
					delete(localByName, rec.Entity)
				}
			default:
				return fmt.Errorf("recover: unknown wal op %d", rec.Op)
			}
			return nil
		}
		var walOpts []wal.Option
		if ix.durability == DurabilitySync {
			walOpts = append(walOpts, wal.WithGroupCommit(ix.gcWindow))
		}
		l, err := wal.Open(filepath.Join(dir, wal.ShardDirName(i)), ix.measure.Name(),
			func(rec wal.Record) error { return apply(rec, true) },
			func(rec wal.Record) error { return apply(rec, false) },
			walOpts...)
		if err != nil {
			return err
		}
		ix.logs[i] = l
		perShard[i] = make([]recovered, 0, len(local))
		for _, r := range local {
			perShard[i] = append(perShard[i], r)
		}
		sort.Slice(perShard[i], func(a, b int) bool { return perShard[i][a].id < perShard[i][b].id })
	}

	// Cross-shard merge: resolve duplicate names (higher ID wins), then
	// bulk-load each shard's survivors and build the global name tables.
	owner := make(map[string]multiset.ID)
	for _, shardEnts := range perShard {
		for _, r := range shardEnts {
			if old, ok := owner[r.name]; !ok || r.id > old {
				owner[r.name] = r.id
			}
		}
	}
	var conflicted []int
	for i, shardEnts := range perShard {
		sets := make([]multiset.Multiset, 0, len(shardEnts))
		stale := false
		for _, r := range shardEnts {
			if owner[r.name] != r.id {
				stale = true
				continue // superseded by a newer add in another shard
			}
			sets = append(sets, r.set)
			ix.byName[r.name] = r.id
			ix.names[r.id] = r.name
			if r.id >= ix.nextID {
				ix.nextID = r.id + 1
			}
		}
		if err := ix.inner.At(i).BulkLoad(sets); err != nil {
			return err
		}
		if stale {
			conflicted = append(conflicted, i)
		}
	}
	// A shard that held a superseded entry resolved it in memory only;
	// its files still contain the stale add, which would resurrect if
	// the winning entity were later removed and this shard never
	// snapshotted again. Rewrite such shards now, while the resolution
	// is known. (The index is not yet shared, so the no-lock call to
	// the *Locked helper is safe.)
	for _, si := range conflicted {
		if err := ix.snapshotShardLocked(si); err != nil {
			return err
		}
	}
	return nil
}

// BuildIndex bulk-loads every entity of a Dataset into a fresh index
// through the incremental Add path. For a durable index this WAL-logs
// every entity one by one — use BuildIndexFiles + OpenIndex to
// materialize a large corpus as snapshot files instead.
func BuildIndex(d *Dataset, opts IndexOptions) (*Index, error) {
	ix, err := NewIndex(opts)
	if err != nil {
		return nil, err
	}
	if d == nil {
		return ix, nil
	}
	var addErr error
	d.Each(func(name string, counts map[string]uint32) bool {
		addErr = ix.Add(name, counts)
		return addErr == nil
	})
	if addErr != nil {
		return nil, addErr
	}
	return ix, nil
}

// internElements interns WAL element names into index entries, dropping
// zero counts (multiset.New merges duplicates and sorts).
func (ix *Index) internElements(elems []wal.Element) []multiset.Entry {
	entries := make([]multiset.Entry, 0, len(elems))
	for _, el := range elems {
		if el.Count == 0 {
			continue
		}
		entries = append(entries, multiset.Entry{Elem: ix.dict.Intern(el.Name), Count: el.Count})
	}
	return entries
}

// walAddRecord builds the logged form of an Add: element names sorted,
// zero counts dropped, so identical mutations always encode identically.
func walAddRecord(id multiset.ID, entity string, counts map[string]uint32) wal.Record {
	names := make([]string, 0, len(counts))
	for name, c := range counts {
		if c > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	elems := make([]wal.Element, len(names))
	for i, name := range names {
		elems[i] = wal.Element{Name: name, Count: counts[name]}
	}
	return wal.Record{Op: wal.OpAdd, ID: uint64(id), Entity: entity, Elements: elems}
}

// applyRemoveLocked deletes from the name tables and the owning shard.
func (ix *Index) applyRemoveLocked(entity string) bool {
	id, ok := ix.byName[entity]
	if !ok {
		return false
	}
	delete(ix.byName, entity)
	delete(ix.names, id)
	return ix.inner.Remove(id)
}

// Add indexes an entity with its element multiplicities, replacing any
// previous entity of the same name (upsert semantics — unlike
// Dataset.Add, which merges). Zero counts are ignored. On a durable
// index the mutation is appended to the owning shard's write-ahead log
// first; if the append fails the in-memory index is left untouched and
// the error is returned — an append error always means the mutation
// did NOT happen (automatic snapshot trouble is reported by
// Snapshot/Close instead). Under DurabilitySync, Add additionally
// waits — outside the index lock, so queries and other writers keep
// flowing — until a group-committed fsync covers the record; an error
// from that wait means the mutation is applied in memory but NOT
// guaranteed durable. A volatile Add never fails.
//
// The inner insert happens under the name-table lock: if it didn't, a
// concurrent Remove of the same name could run between the two steps and
// leave a nameless ghost entity in the inner index.
func (ix *Index) Add(entity string, counts map[string]uint32) error {
	ix.mu.Lock()
	if ix.closed {
		ix.mu.Unlock()
		return ErrIndexClosed
	}
	// The ID is fixed before the WAL append: routing is a hash of the
	// ID, so the record must land in the shard log it will replay from.
	id, known := ix.byName[entity]
	if !known {
		id = ix.nextID
	}
	si := shard.ShardOf(id, ix.inner.Shards())
	var wait func() error
	if ix.logs != nil {
		var err error
		wait, err = ix.logs[si].AppendDeferred(walAddRecord(id, entity, counts))
		if err != nil {
			ix.mu.Unlock()
			return fmt.Errorf("vsmartjoin: add %q: %w", entity, err)
		}
	}
	if !known {
		ix.nextID++
		ix.byName[entity] = id
		ix.names[id] = entity
	}
	entries := make([]multiset.Entry, 0, len(counts))
	for elem, c := range counts {
		if c == 0 {
			continue
		}
		entries = append(entries, multiset.Entry{Elem: ix.dict.Intern(elem), Count: c})
	}
	ix.inner.Add(multiset.New(id, entries))
	ix.gen.Add(1) // invalidate cached answers computed before this add
	ix.maybeSnapshotLocked(si)
	ix.mu.Unlock()
	if wait != nil {
		if err := wait(); err != nil {
			return fmt.Errorf("vsmartjoin: add %q: commit: %w", entity, err)
		}
	}
	return nil
}

// Remove deletes an entity by name, reporting whether it was indexed.
// The removal of a name that is not indexed is a no-op and is not
// logged. Like Add, the WAL append happens before the in-memory
// mutation; an append error (never for a volatile index) means the
// removal did not happen, and a DurabilitySync commit-wait error means
// it is applied but not guaranteed durable.
func (ix *Index) Remove(entity string) (bool, error) {
	ix.mu.Lock()
	if ix.closed {
		ix.mu.Unlock()
		return false, ErrIndexClosed
	}
	id, ok := ix.byName[entity]
	if !ok {
		ix.mu.Unlock()
		return false, nil
	}
	si := shard.ShardOf(id, ix.inner.Shards())
	var wait func() error
	if ix.logs != nil {
		var err error
		wait, err = ix.logs[si].AppendDeferred(wal.Record{Op: wal.OpRemove, Entity: entity})
		if err != nil {
			ix.mu.Unlock()
			return false, fmt.Errorf("vsmartjoin: remove %q: %w", entity, err)
		}
	}
	removed := ix.applyRemoveLocked(entity)
	ix.gen.Add(1) // invalidate cached answers computed before this remove
	ix.maybeSnapshotLocked(si)
	ix.mu.Unlock()
	if wait != nil {
		if err := wait(); err != nil {
			return removed, fmt.Errorf("vsmartjoin: remove %q: commit: %w", entity, err)
		}
	}
	return removed, nil
}

// BatchEntry is one entity of an AddBatch: a name with its element
// multiplicities, the same shape Add takes.
type BatchEntry struct {
	Entity   string
	Elements map[string]uint32
}

// AddBatch upserts a batch of entities through the batched mutation
// pipeline: one WAL AppendBatch per touched shard (one write and, under
// DurabilitySync, one group-committed fsync covering the whole shard
// group), one shard-lock acquisition per touched shard, and repeated
// upserts of the same entity within the batch coalesced last-write-wins
// before they ever reach the log. Entries are applied in order;
// relative order across different entities is preserved per shard.
//
// On error the batch may be partially applied at shard granularity: the
// entries routed to a shard whose WAL append failed did not happen,
// entries on other shards did (and a DurabilitySync commit-wait error
// means applied but not guaranteed durable, as with Add).
func (ix *Index) AddBatch(entries []BatchEntry) error {
	if len(entries) == 0 {
		return nil
	}
	muts := make([]mutation, len(entries))
	for i, e := range entries {
		muts[i] = mutation{entity: e.Entity, counts: e.Elements}
	}
	_, err := ix.applyBatch(muts)
	return err
}

// RemoveBatch deletes a batch of entities by name with AddBatch's
// batching, ordering, and failure semantics, reporting how many were
// present and removed. Names not indexed are no-ops and are not logged.
func (ix *Index) RemoveBatch(entities []string) (int, error) {
	if len(entities) == 0 {
		return 0, nil
	}
	muts := make([]mutation, len(entities))
	for i, e := range entities {
		muts[i] = mutation{remove: true, entity: e}
	}
	applied, err := ix.applyBatch(muts)
	removed := 0
	for _, ok := range applied {
		if ok {
			removed++
		}
	}
	return removed, err
}

// AddAsync enqueues an upsert on the async mutation pipeline and
// returns immediately with a 1-buffered channel that receives the
// mutation's outcome exactly once: nil after the upsert is applied (and
// under DurabilitySync, durable), or the error that rejected it. The
// pipeline batches queued mutations per shard and applies each batch
// under one lock acquisition with one WAL append — under a write storm
// this is the highest-throughput path. Mutations of the same entity
// are applied in AddAsync call order; a full queue blocks AddAsync
// (backpressure) rather than dropping. Discarding the returned channel
// discards the error with it — callers that care about durability must
// read it (the batchorder analyzer flags a dropped result).
func (ix *Index) AddAsync(entity string, counts map[string]uint32) <-chan error {
	errc := make(chan error, 1)
	ix.mu.Lock()
	if ix.closed || ix.pipeStopped {
		ix.mu.Unlock()
		errc <- ErrIndexClosed
		return errc
	}
	ix.pipeOnce.Do(ix.startPipeLocked)
	q := ix.queues[queueOf(entity, len(ix.queues))]
	ix.pipeWG.Add(1)
	ix.mu.Unlock()
	// The send happens outside mu: a full queue must block this caller,
	// not every reader and writer of the index.
	q <- mutation{entity: entity, counts: counts, errc: errc}
	ix.pipeWG.Done()
	return errc
}

// mutation is one queued or batched write: an upsert (counts) or a
// removal. errc, when non-nil, receives the mutation's outcome exactly
// once (AddAsync); synchronous batch callers read the joined error from
// applyBatch instead.
type mutation struct {
	remove bool
	entity string
	counts map[string]uint32
	errc   chan error
}

// queueOf routes an entity name to an async mutation queue (FNV-1a).
// Routing by name — not by shard of the ID, which is only known once
// the ID is assigned under the lock — still guarantees what ordering
// needs: every mutation of one entity lands in the same queue, FIFO.
func queueOf(entity string, n int) int {
	if n < 2 {
		return 0
	}
	h := uint64(14695981039346656037)
	for i := 0; i < len(entity); i++ {
		h ^= uint64(entity[i])
		h *= 1099511628211
	}
	return int(h % uint64(n))
}

// startPipeLocked spawns the async mutation pipeline: one bounded
// queue and one applier per shard width. Caller holds ix.mu (via the
// pipeOnce in AddAsync), so startup cannot race Close's pipeStopped
// check.
func (ix *Index) startPipeLocked() {
	ix.queues = make([]chan mutation, ix.inner.Shards())
	for i := range ix.queues {
		ix.queues[i] = make(chan mutation, ix.queueDepth)
		ix.applierWG.Add(1)
		go ix.applier(ix.queues[i])
	}
}

// applier drains one async mutation queue: each wakeup batches
// everything currently queued (up to applierDrainMax) into a single
// applyBatch call, so a backed-up queue is applied with one lock
// acquisition and one WAL append instead of one per mutation. Exits
// when the queue closes.
func (ix *Index) applier(q chan mutation) {
	defer ix.applierWG.Done()
	batch := make([]mutation, 0, applierDrainMax)
	for first := range q {
		batch = append(batch[:0], first)
	drain:
		for len(batch) < applierDrainMax {
			select {
			case more, ok := <-q:
				if !ok {
					break drain
				}
				batch = append(batch, more)
			default:
				break drain
			}
		}
		// applyBatch acks every mutation through its errc; the joined
		// error is the synchronous callers' view and has no reader here.
		ix.applyBatch(batch) //nolint — acks flow through each mutation's errc
	}
}

// applyBatch is the one batched write path AddBatch, RemoveBatch, and
// the async appliers share. Under a single ix.mu acquisition it
// resolves entity IDs in order (simulating the name-table effects of
// earlier ops in the same batch), coalesces superseded upserts
// last-write-wins (an upsert later overwritten in the same batch, with
// no intervening remove, never reaches the WAL), appends each touched
// shard's records with one AppendBatch, and applies every op whose
// shard append succeeded — WAL-append-before-apply, per shard, exactly
// like the single-op path. DurabilitySync commit waits run after the
// lock drops: visibility before durability, acknowledgement after the
// fsync. The returned slice reports per-mutation whether state
// actually changed (false for no-op removes, coalesced-away upserts,
// and failed shards).
func (ix *Index) applyBatch(muts []mutation) ([]bool, error) {
	if len(muts) == 0 {
		return nil, nil
	}
	ix.mu.Lock()
	if ix.closed {
		ix.mu.Unlock()
		for _, m := range muts {
			if m.errc != nil {
				m.errc <- ErrIndexClosed
			}
		}
		return nil, ErrIndexClosed
	}
	n := ix.inner.Shards()

	// Pass 1: resolve IDs and in-batch name-table effects in order.
	// overlay maps names touched by this batch to their current in-batch
	// ID (0 after an in-batch remove); lastAdd supports the LWW
	// coalescing — a remove is a barrier, so only upserts with no
	// intervening remove coalesce.
	type resolved struct {
		skip bool // no-op remove, or upsert superseded within the batch
		id   multiset.ID
		si   int
	}
	res := make([]resolved, len(muts))
	overlay := make(map[string]multiset.ID, len(muts))
	lastAdd := make(map[string]int, len(muts))
	for i, m := range muts {
		id, inBatch := overlay[m.entity]
		present := id != 0 // an in-batch 0 is the remove tombstone
		if !inBatch {
			id, present = ix.byName[m.entity]
		}
		if m.remove {
			if !present {
				res[i].skip = true
				continue
			}
			overlay[m.entity] = 0
			delete(lastAdd, m.entity)
			res[i] = resolved{id: id, si: shard.ShardOf(id, n)}
			continue
		}
		if !present {
			// A burned ID on a failed shard append leaves a harmless gap:
			// recovery derives nextID from the highest ID it replays.
			id = ix.nextID
			ix.nextID++
		}
		overlay[m.entity] = id
		if prev, ok := lastAdd[m.entity]; ok {
			res[prev].skip = true // superseded: last write wins
		}
		lastAdd[m.entity] = i
		res[i] = resolved{id: id, si: shard.ShardOf(id, n)}
	}

	// Pass 2: one WAL AppendBatch per touched shard, still under ix.mu
	// so the record order of each shard's log matches the apply order
	// and cannot interleave with a snapshot cut. The commit waits are
	// collected and paid after the lock drops.
	shardErr := map[int]error{}
	waits := map[int]func() error{}
	if ix.logs != nil {
		recs := map[int][]wal.Record{}
		for i, m := range muts {
			if res[i].skip {
				continue
			}
			if m.remove {
				recs[res[i].si] = append(recs[res[i].si], wal.Record{Op: wal.OpRemove, Entity: m.entity})
			} else {
				recs[res[i].si] = append(recs[res[i].si], walAddRecord(res[i].id, m.entity, m.counts))
			}
		}
		for si, rs := range recs {
			wait, err := ix.logs[si].AppendBatchDeferred(rs)
			if err != nil {
				shardErr[si] = fmt.Errorf("vsmartjoin: batch append %s: %w", wal.ShardDirName(si), err)
				continue
			}
			waits[si] = wait
		}
	}

	// Pass 3: apply, in original batch order, every op whose shard
	// append succeeded — name tables inline, shard structures grouped so
	// each shard pays one lock acquisition via index.ApplyBatch.
	applied := make([]bool, len(muts))
	ops := map[int][]index.BatchOp{}
	loggedN := map[int]int{}
	for i, m := range muts {
		r := res[i]
		if r.skip || shardErr[r.si] != nil {
			continue
		}
		if m.remove {
			delete(ix.byName, m.entity)
			delete(ix.names, r.id)
			ops[r.si] = append(ops[r.si], index.BatchOp{Remove: true, ID: r.id})
		} else {
			ix.byName[m.entity] = r.id
			ix.names[r.id] = m.entity
			ops[r.si] = append(ops[r.si], index.BatchOp{Set: multiset.New(r.id, ix.internCounts(m.counts))})
		}
		applied[i] = true
		loggedN[r.si]++
	}
	for si, group := range ops {
		ix.inner.At(si).ApplyBatch(group)
	}
	if len(ops) > 0 {
		ix.gen.Add(1) // one generation bump invalidates the cache for the whole batch
	}
	if ix.logs != nil {
		for si, cnt := range loggedN {
			ix.noteLoggedLocked(si, cnt)
		}
	}
	ix.mu.Unlock()

	// Pass 4: durability waits (outside every lock), then per-mutation
	// acknowledgement. A coalesced-away upsert shares its winner's shard
	// and therefore its winner's outcome.
	for si, wait := range waits {
		if err := wait(); err != nil {
			shardErr[si] = fmt.Errorf("vsmartjoin: batch commit %s: %w", wal.ShardDirName(si), err)
		}
	}
	var errs []error
	for si := range shardErr {
		errs = append(errs, shardErr[si])
	}
	err := errors.Join(errs...)
	for i, m := range muts {
		if m.errc == nil {
			continue
		}
		r := res[i]
		if r.skip && m.remove {
			m.errc <- nil // removing an absent name is a successful no-op
			continue
		}
		m.errc <- shardErr[r.si]
	}
	return applied, err
}

// internCounts interns a counts map into sorted multiset entries,
// dropping zero counts — the map-shaped twin of internElements. Caller
// holds ix.mu (Intern mutates the dictionary).
func (ix *Index) internCounts(counts map[string]uint32) []multiset.Entry {
	entries := make([]multiset.Entry, 0, len(counts))
	for elem, c := range counts {
		if c == 0 {
			continue
		}
		entries = append(entries, multiset.Entry{Elem: ix.dict.Intern(elem), Count: c})
	}
	return entries
}

// maybeSnapshotLocked counts a mutation logged to shard si and cuts
// that shard's snapshot once the cadence is reached. A snapshot failure
// is NOT the mutation's failure — the record is already durably logged
// and applied — so the cadence counter is simply left unreset: the
// shard retries on its next mutation, and Close retries every shard
// whose counter is still positive, surfacing a persistent failure
// there. Caller holds ix.mu.
func (ix *Index) maybeSnapshotLocked(si int) { ix.noteLoggedLocked(si, 1) }

// noteLoggedLocked is maybeSnapshotLocked for n mutations at once — the
// batched write path logs a whole shard group before applying it and
// advances the cadence in one step.
func (ix *Index) noteLoggedLocked(si, n int) {
	if ix.logs == nil || n == 0 {
		return
	}
	ix.logged[si] += n
	if ix.snapshotEvery < 0 || ix.logged[si] < ix.snapshotEvery {
		return
	}
	if err := ix.snapshotShardLocked(si); err != nil {
		return
	}
	ix.logged[si] = 0
}

// snapshotShardLocked writes shard si's snapshot and truncates its log.
// Caller holds ix.mu, which quiesces all mutations (they all take
// ix.mu), so the shard iteration is an atomic view.
func (ix *Index) snapshotShardLocked(si int) error {
	err := ix.logs[si].Snapshot(func(emit func(wal.Record) error) error {
		var emitErr error
		ix.inner.At(si).Range(func(m multiset.Multiset) bool {
			elems := make([]wal.Element, len(m.Entries))
			for i, e := range m.Entries {
				elems[i] = wal.Element{Name: ix.dict.Name(e.Elem), Count: e.Count}
			}
			emitErr = emit(wal.Record{Op: wal.OpAdd, ID: uint64(m.ID), Entity: ix.names[m.ID], Elements: elems})
			return emitErr == nil
		})
		return emitErr
	})
	if err != nil {
		return fmt.Errorf("vsmartjoin: snapshot %s: %w", wal.ShardDirName(si), err)
	}
	return nil
}

// snapshotLocked cuts every shard's snapshot. Caller holds ix.mu.
func (ix *Index) snapshotLocked() error {
	for si := range ix.logs {
		if err := ix.snapshotShardLocked(si); err != nil {
			return err
		}
		ix.logged[si] = 0
	}
	return nil
}

// Snapshot forces a full snapshot and log truncation of every shard on
// a durable index, regardless of the SnapshotEvery cadence. It returns
// ErrNotDurable on a volatile index and ErrIndexClosed after Close;
// any other error is a real persistence failure (a shard whose
// automatic snapshot failed keeps its cadence counter, so it is retried
// here, on its next mutation, and at Close until one succeeds).
func (ix *Index) Snapshot() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.logs == nil {
		return ErrNotDurable
	}
	if ix.closed {
		return ErrIndexClosed
	}
	return ix.snapshotLocked()
}

// Close drains the async mutation pipeline (every mutation already
// enqueued by AddAsync is applied and acknowledged; later AddAsync
// calls are refused), then writes a final snapshot of every shard with
// mutations logged since its last one and closes the write-ahead logs.
// Further mutations fail; queries keep working against the in-memory
// state. Closing a volatile or already-closed index is a no-op for the
// durability state, but still drains the pipeline.
func (ix *Index) Close() error {
	// Phase 1: stop the pipeline. pipeStopped turns AddAsync away before
	// the queues close (an enqueue into a closed channel would panic);
	// pipeWG covers enqueues that passed the check before we flipped it.
	ix.mu.Lock()
	stopping := !ix.pipeStopped && ix.queues != nil
	ix.pipeStopped = true
	ix.mu.Unlock()
	if stopping {
		ix.pipeWG.Wait() // in-flight enqueues land in the queues
		for _, q := range ix.queues {
			close(q)
		}
		ix.applierWG.Wait() // appliers drain and ack everything queued
	}

	// Phase 2: persist and close the durability state.
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.logs == nil || ix.closed {
		return nil
	}
	ix.closed = true
	// A shard whose automatic snapshot failed kept its logged count > 0,
	// so the retry below either persists it (the old failure is moot) or
	// fails afresh and is reported here.
	var first error
	for si, l := range ix.logs {
		if ix.logged[si] > 0 {
			if err := ix.snapshotShardLocked(si); err != nil && first == nil {
				first = err
			}
		}
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Len reports the number of indexed entities.
func (ix *Index) Len() int { return ix.inner.Len() }

// Generation reports the highest write-ahead log generation across
// shards, or 0 for a volatile index. A bulk-built directory opens at
// generation 1; every snapshot rotation advances the cut shard.
func (ix *Index) Generation() uint64 {
	ix.mu.RLock()
	logs := ix.logs
	ix.mu.RUnlock()
	var gen uint64
	for _, l := range logs {
		if g := l.Gen(); g > gen {
			gen = g
		}
	}
	return gen
}

// buildQuery maps query element names into the index alphabet without
// interning them. Unknown elements can match nothing, but they still count
// toward the query's cardinalities (every measure's denominator), so they
// are folded into the query's Extra stats.
func (ix *Index) buildQuery(counts map[string]uint32) index.Query {
	// Map iteration order is irrelevant here: Extra accumulation is
	// commutative and multiset.New sorts the entries by element.
	var q index.Query
	entries := make([]multiset.Entry, 0, len(counts))
	ix.mu.RLock()
	for elem, c := range counts {
		if c == 0 {
			continue
		}
		if id, ok := ix.dict.Lookup(elem); ok {
			entries = append(entries, multiset.Entry{Elem: id, Count: c})
		} else {
			q.Extra.AccumulateUni(c)
		}
	}
	ix.mu.RUnlock()
	q.Set = multiset.New(0, entries)
	return q
}

// resolve translates ID matches back to entity names and re-sorts them
// under the canonical public ordering (similarity descending, name
// ascending on ties) — the inner index breaks ties by entity ID, which
// is meaningless outside one process. Matches whose entity was removed
// between the query and the lookup are dropped.
func (ix *Index) resolve(ms []index.Match) []Match {
	out := make([]Match, 0, len(ms))
	ix.mu.RLock()
	for _, m := range ms {
		if name, ok := ix.names[m.ID]; ok {
			out = append(out, Match{Entity: name, Similarity: m.Sim})
		}
	}
	ix.mu.RUnlock()
	SortMatchesByName(out)
	return out
}

// queryBuf is the pooled per-query state of the public read path: the
// internal-match staging buffer (the inner Into query fills it, resolve
// translates it into public matches, and it never reaches a caller, so
// pooling is safe) plus a latency-sampling tick. Query latency is
// observed on one query in eight per buffer: the two clock reads and
// the histogram's shared-cacheline bump leave the hot path seven times
// out of eight, keeping the uncached read at its pre-instrumentation
// cost, while the sampled digest still converges on the steady-state
// distribution (sampling is unbiased — the tick has no correlation
// with query difficulty).
type queryBuf struct {
	ms   []index.Match
	ns   []index.Neighbor
	tick uint8
}

// sample advances the buffer's tick and stamps the clock on the queries
// it elects to time: the first query through a fresh buffer (so a
// lightly used index still populates the digest), then every eighth.
func (b *queryBuf) sample() (metrics.Stamp, bool) {
	b.tick++
	if b.tick&7 != 1 {
		return metrics.Stamp{}, false
	}
	return metrics.Now(), true
}

var matchBufPool = sync.Pool{New: func() any { return new(queryBuf) }}

// QueryThreshold returns every indexed entity whose similarity to the
// query multiset is at least t, in the canonical order (decreasing
// similarity, entity name ascending on ties). A zero t returns every
// entity sharing at least one element with the query — the same overlap
// convention as AllPairs.
func (ix *Index) QueryThreshold(counts map[string]uint32, t float64) ([]Match, error) {
	if err := checkThreshold(t); err != nil {
		return nil, err
	}
	var ks *keyScratch
	var gen uint64
	if ix.cache != nil {
		ks = getKeyScratch()
		ks.thresholdKey(ix.measure.Name(), counts, t)
		// The generation is read BEFORE the query runs: a mutation racing
		// the fill leaves a stale stamp behind, so the entry can only be
		// a false miss later, never a stale hit.
		gen = ix.gen.Load()
		if res, ok := ix.cache.get(ks.b, gen); ok {
			putKeyScratch(ks)
			return res, nil
		}
	}
	bp := matchBufPool.Get().(*queryBuf)
	start, timed := bp.sample()
	ms := ix.inner.QueryThresholdInto(ix.buildQuery(counts), t, bp.ms[:0])
	out := ix.resolve(ms)
	bp.ms = ms
	matchBufPool.Put(bp)
	if timed {
		ix.queryLatency.ObserveSince(start)
	}
	if ix.cache != nil {
		ix.cache.put(ks.b, gen, out)
		putKeyScratch(ks)
	}
	return out, nil
}

// QueryEntity runs QueryThreshold with an indexed entity as the query;
// the entity itself is excluded from the results.
func (ix *Index) QueryEntity(entity string, t float64) ([]Match, error) {
	if err := checkThreshold(t); err != nil {
		return nil, err
	}
	var ks *keyScratch
	var gen uint64
	if ix.cache != nil {
		ks = getKeyScratch()
		ks.entityKey(ix.measure.Name(), entity, t)
		gen = ix.gen.Load() // before the lookup AND the query, like QueryThreshold
		if res, ok := ix.cache.get(ks.b, gen); ok {
			putKeyScratch(ks)
			return res, nil
		}
	}
	ix.mu.RLock()
	id, ok := ix.byName[entity]
	ix.mu.RUnlock()
	if !ok {
		if ix.cache != nil {
			putKeyScratch(ks)
		}
		return nil, fmt.Errorf("vsmartjoin: entity %q not indexed", entity)
	}
	bp := matchBufPool.Get().(*queryBuf)
	start, timed := bp.sample()
	ms := ix.inner.QueryThresholdInto(ix.queryByID(id), t, bp.ms[:0])
	out := ix.resolve(ms)
	bp.ms = ms
	matchBufPool.Put(bp)
	if timed {
		ix.queryLatency.ObserveSince(start)
	}
	if ix.cache != nil {
		ix.cache.put(ks.b, gen, out)
		putKeyScratch(ks)
	}
	return out, nil
}

// QueryTopK returns the k most similar indexed entities, best first
// under the canonical order (decreasing similarity, entity name
// ascending on ties). When more than k entities tie at the k-th best
// similarity, the ones with the smallest names win — the inner index
// breaks that tie by entity ID, so a boundary re-query at the k-th
// similarity re-selects among the tied entities by name. That keeps
// top-k selection a pure function of the indexed (name, multiset)
// pairs, independent of insertion order, shard count, and — for the
// cluster router, whose nodes each run a private ID space — of how the
// entities are partitioned across nodes.
func (ix *Index) QueryTopK(counts map[string]uint32, k int) []Match {
	if k <= 0 {
		return nil
	}
	var ks *keyScratch
	var gen uint64
	if ix.cache != nil {
		ks = getKeyScratch()
		ks.topKKey(ix.measure.Name(), counts, k)
		gen = ix.gen.Load() // before the query, like QueryThreshold
		if res, ok := ix.cache.get(ks.b, gen); ok {
			putKeyScratch(ks)
			return res
		}
	}
	q := ix.buildQuery(counts)
	bp := matchBufPool.Get().(*queryBuf)
	start, timed := bp.sample()
	// Probe for k+1: the extra result is a tie detector. If the k-th and
	// (k+1)-th best similarities differ (or fewer than k+1 exist), no tied
	// entity was evicted at the boundary and the heap's selection is
	// already the canonical one — the common case, served by one pass.
	ms := ix.inner.QueryTopKInto(q, k+1, bp.ms[:0])
	if len(ms) == k+1 && ms[k-1].Sim == ms[k].Sim {
		// Ties straddle the boundary, and the heap broke them by entity
		// ID; fetch every entity at or above the boundary similarity and
		// let the canonical sort pick by name. The buffer is reused from
		// the top: the boundary similarity is captured first, and the
		// re-query only appends, never reads the old contents.
		boundary := ms[k-1].Sim
		ms = ix.inner.QueryThresholdInto(q, boundary, ms[:0])
	}
	out := ix.resolve(ms)
	bp.ms = ms
	matchBufPool.Put(bp)
	if timed {
		ix.queryLatency.ObserveSince(start)
	}
	if len(out) > k {
		out = out[:k]
	}
	if ix.cache != nil {
		ix.cache.put(ks.b, gen, out)
		putKeyScratch(ks)
	}
	return out
}

// Elements returns a copy of an indexed entity's current element
// multiplicities, or ok == false if the entity is not indexed. The
// cluster router uses it (via the daemon's GET /entity endpoint) to
// turn an entity-relative query into an element query it can scatter
// to the other partitions.
func (ix *Index) Elements(entity string) (counts map[string]uint32, ok bool) {
	ix.mu.RLock()
	id, ok := ix.byName[entity]
	ix.mu.RUnlock()
	if !ok {
		return nil, false
	}
	m := ix.inner.Snapshot(id)
	if len(m.Entries) == 0 {
		// Either the entity was legitimately indexed empty, or it was
		// removed between the name lookup and the snapshot — re-check so
		// a vanished entity reads as not-found, not as empty.
		ix.mu.RLock()
		_, ok = ix.byName[entity]
		ix.mu.RUnlock()
		if !ok {
			return nil, false
		}
	}
	counts = make(map[string]uint32, len(m.Entries))
	ix.mu.RLock()
	for _, e := range m.Entries {
		counts[ix.dict.Name(e.Elem)] += e.Count
	}
	ix.mu.RUnlock()
	return counts, true
}

// queryByID rebuilds a query from an indexed entity's current multiset.
// The probe carries the entity's own ID so the index skips the self-pair.
func (ix *Index) queryByID(id multiset.ID) index.Query {
	// The inner index owns the authoritative multiset; query it back via a
	// threshold-0 self lookup would be circular, so re-read from postings
	// is avoided by keeping this translation here: QueryEntity is only a
	// convenience, a removed-in-between entity just yields no matches.
	return index.Query{Set: ix.inner.Snapshot(id)}
}

// Stats returns a snapshot of the index counters.
func (ix *Index) Stats() IndexStats {
	s := ix.inner.Stats()
	m := ix.Metrics()
	var cacheHits, cacheMisses int64
	var cacheEntries int
	if ix.cache != nil {
		cacheHits = ix.cache.hits.Load()
		cacheMisses = ix.cache.misses.Load()
		cacheEntries = ix.cache.len()
	}
	plans := ix.inner.Plans()
	planNames := make([]string, len(plans))
	for i, p := range plans {
		planNames[i] = p.String()
	}
	return IndexStats{
		Measure:            ix.measure.Name(),
		Shards:             ix.inner.Shards(),
		Generation:         ix.Generation(),
		Strategy:           ix.strategy.String(),
		Plans:              planNames,
		Entities:           s.Entities,
		Elements:           s.Elements,
		Postings:           s.Postings,
		Adds:               s.Adds,
		Removes:            s.Removes,
		Compactions:        s.Compactions,
		Queries:            s.Queries,
		Probes:             s.Probes,
		Candidates:         s.Candidates,
		LengthPruned:       s.LengthPruned,
		Verified:           s.Verified,
		Results:            s.Results,
		CacheHits:          cacheHits,
		CacheMisses:        cacheMisses,
		CacheEntries:       cacheEntries,
		QueryLatency:       summarize(m.Query),
		MergeLatency:       summarize(m.Merge),
		WALAppend:          summarize(m.WALAppend),
		WALFsync:           summarize(m.WALFsync),
		WALCommitWait:      summarize(m.WALCommitWait),
		WALBatchSize:       summarizeSize(m.WALBatch),
		WALGroupCommitSize: summarizeSize(m.WALGroupCommit),
		WALRecords:         m.WALRecords,
		WALFsyncs:          m.WALFsyncs,
		MutationQueueDepth: ix.queueBacklog(),
	}
}

// queueBacklog sums the AddAsync mutations currently sitting in the
// pipeline queues — an instantaneous gauge, racing the appliers by
// nature.
func (ix *Index) queueBacklog() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	n := 0
	for _, q := range ix.queues {
		n += len(q)
	}
	return n
}

// checkThreshold applies the same threshold convention as AllPairs, except
// that the online API has no "default" sentinel: the caller always states
// the cut-off explicitly.
func checkThreshold(t float64) error {
	if t != t || t < 0 || t > 1 {
		return fmt.Errorf("vsmartjoin: threshold %v outside [0, 1]", t)
	}
	return nil
}
