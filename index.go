package vsmartjoin

import (
	"fmt"
	"sync"

	"vsmartjoin/internal/index"
	"vsmartjoin/internal/multiset"
	"vsmartjoin/internal/similarity"
)

// IndexOptions configures NewIndex and BuildIndex.
type IndexOptions struct {
	// Measure is the similarity measure name (default "ruzicka"); it is
	// fixed for the life of the index because posting-list pruning bounds
	// are measure-specific.
	Measure string
}

// Match is one online query result.
type Match struct {
	Entity     string
	Similarity float64
}

// IndexStats snapshots the size and traffic counters of an Index; see
// the field docs on internal/index.Stats for the pruning pipeline the
// Probes → Candidates → Verified → Results funnel describes.
type IndexStats struct {
	Measure  string `json:"measure"`
	Entities int    `json:"entities"`
	Elements int    `json:"elements"`
	Postings int    `json:"postings"`

	Adds        int64 `json:"adds"`
	Removes     int64 `json:"removes"`
	Compactions int64 `json:"compactions"`

	Queries      int64 `json:"queries"`
	Probes       int64 `json:"probes"`
	Candidates   int64 `json:"candidates"`
	LengthPruned int64 `json:"length_pruned"`
	Verified     int64 `json:"verified"`
	Results      int64 `json:"results"`
}

// Index is the online counterpart of AllPairs: an incremental inverted
// similarity index serving threshold and top-k queries against a live
// dataset. Entities can be added and removed at any time, concurrently
// with queries; see internal/index for the data structure and locking
// design. Use AllPairs for periodic full joins and an Index for
// interactive lookups against the same entities.
type Index struct {
	measure similarity.Measure
	inner   *index.Index

	// mu guards the name tables only; the inner index has its own lock.
	mu     sync.RWMutex
	dict   *multiset.Dict
	byName map[string]multiset.ID
	names  map[multiset.ID]string
	nextID multiset.ID
}

// NewIndex returns an empty online index.
func NewIndex(opts IndexOptions) (*Index, error) {
	name := opts.Measure
	if name == "" {
		name = "ruzicka"
	}
	m, err := similarity.ByName(name)
	if err != nil {
		return nil, err
	}
	return &Index{
		measure: m,
		inner:   index.New(m),
		dict:    multiset.NewDict(),
		byName:  make(map[string]multiset.ID),
		names:   make(map[multiset.ID]string),
		nextID:  1,
	}, nil
}

// BuildIndex bulk-loads every entity of a Dataset into a fresh index.
func BuildIndex(d *Dataset, opts IndexOptions) (*Index, error) {
	ix, err := NewIndex(opts)
	if err != nil {
		return nil, err
	}
	if d == nil {
		return ix, nil
	}
	for _, m := range d.sets {
		name, ok := d.names[m.ID]
		if !ok {
			name = fmt.Sprintf("%d", uint64(m.ID))
		}
		counts := make(map[string]uint32, len(m.Entries))
		for _, e := range m.Entries {
			// Named datasets intern through d.dict; numbered (AddByID)
			// datasets have no string alphabet, so synthesize one. Branch
			// on the dataset kind, not on Name() == "" — the empty string
			// is a legitimate interned element name.
			var elem string
			if d.numbered {
				elem = fmt.Sprintf("#%d", uint64(e.Elem))
			} else {
				elem = d.dict.Name(e.Elem)
			}
			counts[elem] += e.Count
		}
		ix.Add(name, counts)
	}
	return ix, nil
}

// Add indexes an entity with its element multiplicities, replacing any
// previous entity of the same name (upsert semantics — unlike
// Dataset.Add, which merges). Zero counts are ignored.
//
// The inner insert happens under the name-table lock: if it didn't, a
// concurrent Remove of the same name could run between the two steps and
// leave a nameless ghost entity in the inner index. The inner index's own
// lock always nests inside ix.mu, so the nesting cannot deadlock.
func (ix *Index) Add(entity string, counts map[string]uint32) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	id, ok := ix.byName[entity]
	if !ok {
		id = ix.nextID
		ix.nextID++
		ix.byName[entity] = id
		ix.names[id] = entity
	}
	entries := make([]multiset.Entry, 0, len(counts))
	for elem, c := range counts {
		if c == 0 {
			continue
		}
		entries = append(entries, multiset.Entry{Elem: ix.dict.Intern(elem), Count: c})
	}
	ix.inner.Add(multiset.New(id, entries))
}

// Remove deletes an entity by name, reporting whether it was indexed. The
// inner removal stays under the name-table lock for the same reason as in
// Add: both mutations of the two tables must be atomic as a pair.
func (ix *Index) Remove(entity string) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	id, ok := ix.byName[entity]
	if !ok {
		return false
	}
	delete(ix.byName, entity)
	delete(ix.names, id)
	return ix.inner.Remove(id)
}

// Len reports the number of indexed entities.
func (ix *Index) Len() int { return ix.inner.Len() }

// buildQuery maps query element names into the index alphabet without
// interning them. Unknown elements can match nothing, but they still count
// toward the query's cardinalities (every measure's denominator), so they
// are folded into the query's Extra stats.
func (ix *Index) buildQuery(counts map[string]uint32) index.Query {
	// Map iteration order is irrelevant here: Extra accumulation is
	// commutative and multiset.New sorts the entries by element.
	var q index.Query
	entries := make([]multiset.Entry, 0, len(counts))
	ix.mu.RLock()
	for elem, c := range counts {
		if c == 0 {
			continue
		}
		if id, ok := ix.dict.Lookup(elem); ok {
			entries = append(entries, multiset.Entry{Elem: id, Count: c})
		} else {
			q.Extra.AccumulateUni(c)
		}
	}
	ix.mu.RUnlock()
	q.Set = multiset.New(0, entries)
	return q
}

// resolve translates ID matches back to entity names. Matches whose
// entity was removed between the query and the lookup are dropped.
func (ix *Index) resolve(ms []index.Match) []Match {
	out := make([]Match, 0, len(ms))
	ix.mu.RLock()
	for _, m := range ms {
		if name, ok := ix.names[m.ID]; ok {
			out = append(out, Match{Entity: name, Similarity: m.Sim})
		}
	}
	ix.mu.RUnlock()
	return out
}

// QueryThreshold returns every indexed entity whose similarity to the
// query multiset is at least t, sorted by decreasing similarity (entity
// ID order on ties). A zero t returns every entity sharing at least one
// element with the query — the same overlap convention as AllPairs.
func (ix *Index) QueryThreshold(counts map[string]uint32, t float64) ([]Match, error) {
	if err := checkThreshold(t); err != nil {
		return nil, err
	}
	return ix.resolve(ix.inner.QueryThreshold(ix.buildQuery(counts), t)), nil
}

// QueryEntity runs QueryThreshold with an indexed entity as the query;
// the entity itself is excluded from the results.
func (ix *Index) QueryEntity(entity string, t float64) ([]Match, error) {
	if err := checkThreshold(t); err != nil {
		return nil, err
	}
	ix.mu.RLock()
	id, ok := ix.byName[entity]
	ix.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("vsmartjoin: entity %q not indexed", entity)
	}
	ms := ix.inner.QueryThreshold(ix.queryByID(id), t)
	return ix.resolve(ms), nil
}

// QueryTopK returns the k most similar indexed entities, best first.
func (ix *Index) QueryTopK(counts map[string]uint32, k int) []Match {
	return ix.resolve(ix.inner.QueryTopK(ix.buildQuery(counts), k))
}

// queryByID rebuilds a query from an indexed entity's current multiset.
// The probe carries the entity's own ID so the index skips the self-pair.
func (ix *Index) queryByID(id multiset.ID) index.Query {
	// The inner index owns the authoritative multiset; query it back via a
	// threshold-0 self lookup would be circular, so re-read from postings
	// is avoided by keeping this translation here: QueryEntity is only a
	// convenience, a removed-in-between entity just yields no matches.
	return index.Query{Set: ix.inner.Snapshot(id)}
}

// Stats returns a snapshot of the index counters.
func (ix *Index) Stats() IndexStats {
	s := ix.inner.Stats()
	return IndexStats{
		Measure:      ix.measure.Name(),
		Entities:     s.Entities,
		Elements:     s.Elements,
		Postings:     s.Postings,
		Adds:         s.Adds,
		Removes:      s.Removes,
		Compactions:  s.Compactions,
		Queries:      s.Queries,
		Probes:       s.Probes,
		Candidates:   s.Candidates,
		LengthPruned: s.LengthPruned,
		Verified:     s.Verified,
		Results:      s.Results,
	}
}

// checkThreshold applies the same threshold convention as AllPairs, except
// that the online API has no "default" sentinel: the caller always states
// the cut-off explicitly.
func checkThreshold(t float64) error {
	if t != t || t < 0 || t > 1 {
		return fmt.Errorf("vsmartjoin: threshold %v outside [0, 1]", t)
	}
	return nil
}
