package vsmartjoin

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"vsmartjoin/internal/index"
	"vsmartjoin/internal/multiset"
	"vsmartjoin/internal/shard"
	"vsmartjoin/internal/similarity"
	"vsmartjoin/internal/wal"
)

// ErrNotDurable is returned by Index.Snapshot on an index opened
// without a Dir: there is nowhere to snapshot to.
var ErrNotDurable = errors.New("vsmartjoin: index has no durability directory")

// ErrIndexClosed is returned by mutations and snapshots after Close.
var ErrIndexClosed = errors.New("vsmartjoin: index is closed")

// defaultSnapshotEvery is the automatic snapshot cadence: the number of
// logged mutations after which a durable index cuts a snapshot and
// truncates its write-ahead log.
const defaultSnapshotEvery = 4096

// maxShards bounds IndexOptions.Shards: past this the fan-out overhead
// of a query dwarfs any lock-contention win.
const maxShards = 1024

// IndexOptions configures NewIndex and BuildIndex.
type IndexOptions struct {
	// Measure is the similarity measure name (default "ruzicka"); it is
	// fixed for the life of the index because posting-list pruning bounds
	// are measure-specific. For a durable index the measure is recorded
	// in every snapshot and reopening under a different one is refused.
	Measure string

	// Shards is the number of hash-partitioned sub-indexes (default 1,
	// maximum 1024). Entities are routed to shards by their ID, queries
	// fan out to all shards in parallel and merge, and mutations lock
	// only the owning shard — identical results to one shard, but
	// writers stop serializing against the whole dataset. Shard counts
	// around GOMAXPROCS are a good default for write-heavy loads; a
	// read-only index gains little from sharding.
	Shards int

	// Dir, when non-empty, makes the index durable: every Add/Remove is
	// appended to a write-ahead log under Dir before it is applied, and
	// periodic snapshots truncate the log. NewIndex recovers the prior
	// state (snapshot load + log replay, tolerating a torn final frame)
	// from a Dir that already holds one. Empty means fully in-memory.
	Dir string

	// SnapshotEvery is the number of logged mutations between automatic
	// snapshots (default 4096). Negative disables automatic snapshots —
	// the log then grows until Snapshot or Close. Ignored without Dir.
	SnapshotEvery int
}

// Match is one online query result.
type Match struct {
	Entity     string
	Similarity float64
}

// IndexStats snapshots the size and traffic counters of an Index; see
// the field docs on internal/index.Stats for the pruning pipeline the
// Probes → Candidates → Verified → Results funnel describes. Entities,
// Adds, Removes and the query counters are global; Elements and
// Postings are summed across shards (an element present in several
// shards counts once per shard).
type IndexStats struct {
	Measure  string `json:"measure"`
	Shards   int    `json:"shards"`
	Entities int    `json:"entities"`
	Elements int    `json:"elements"`
	Postings int    `json:"postings"`

	Adds        int64 `json:"adds"`
	Removes     int64 `json:"removes"`
	Compactions int64 `json:"compactions"`

	Queries      int64 `json:"queries"`
	Probes       int64 `json:"probes"`
	Candidates   int64 `json:"candidates"`
	LengthPruned int64 `json:"length_pruned"`
	Verified     int64 `json:"verified"`
	Results      int64 `json:"results"`
}

// Index is the online counterpart of AllPairs: an incremental inverted
// similarity index serving threshold and top-k queries against a live
// dataset. Entities can be added and removed at any time, concurrently
// with queries; see internal/index for the data structure and locking
// design, internal/shard for the hash-partitioned fan-out, and
// internal/wal for the durability layer. Use AllPairs for periodic full
// joins and an Index for interactive lookups against the same entities.
type Index struct {
	measure similarity.Measure
	inner   *shard.Set

	// mu guards the name tables and serializes logged mutations against
	// snapshots; the shards have their own locks, always nested inside
	// mu, so the nesting cannot deadlock.
	mu     sync.RWMutex
	dict   *multiset.Dict
	byName map[string]multiset.ID
	names  map[multiset.ID]string
	nextID multiset.ID

	log           *wal.Log // nil for a volatile index
	snapshotEvery int
	logged        int   // mutations since the last snapshot; guarded by mu
	snapErr       error // last automatic-snapshot failure; guarded by mu
	closed        bool
}

// NewIndex returns an index configured by opts. With a Dir it opens (or
// creates) the durability directory and recovers any prior state, so a
// killed process restarts into exactly the entities it had indexed.
func NewIndex(opts IndexOptions) (*Index, error) {
	name := opts.Measure
	if name == "" {
		name = "ruzicka"
	}
	m, err := similarity.ByName(name)
	if err != nil {
		return nil, err
	}
	shards := opts.Shards
	if shards == 0 {
		shards = 1
	}
	if shards < 0 || shards > maxShards {
		return nil, fmt.Errorf("vsmartjoin: shard count %d outside [1, %d]", opts.Shards, maxShards)
	}
	snapshotEvery := opts.SnapshotEvery
	if snapshotEvery == 0 {
		snapshotEvery = defaultSnapshotEvery
	}
	ix := &Index{
		measure:       m,
		inner:         shard.New(m, shards),
		dict:          multiset.NewDict(),
		byName:        make(map[string]multiset.ID),
		names:         make(map[multiset.ID]string),
		nextID:        1,
		snapshotEvery: snapshotEvery,
	}
	if opts.Dir != "" {
		// Recovery replays into the same apply path live mutations use.
		// The index is not yet shared, so no locking is needed here.
		l, err := wal.Open(opts.Dir, m.Name(), func(rec wal.Record) error {
			switch rec.Op {
			case wal.OpAdd:
				ix.applyAddLocked(rec.Entity, ix.internElements(rec.Elements))
			case wal.OpRemove:
				ix.applyRemoveLocked(rec.Entity)
			default:
				return fmt.Errorf("vsmartjoin: recover: unknown wal op %d", rec.Op)
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("vsmartjoin: open index dir: %w", err)
		}
		ix.log = l
	}
	return ix, nil
}

// BuildIndex bulk-loads every entity of a Dataset into a fresh index.
func BuildIndex(d *Dataset, opts IndexOptions) (*Index, error) {
	ix, err := NewIndex(opts)
	if err != nil {
		return nil, err
	}
	if d == nil {
		return ix, nil
	}
	for _, m := range d.sets {
		name, ok := d.names[m.ID]
		if !ok {
			name = fmt.Sprintf("%d", uint64(m.ID))
		}
		counts := make(map[string]uint32, len(m.Entries))
		for _, e := range m.Entries {
			// Named datasets intern through d.dict; numbered (AddByID)
			// datasets have no string alphabet, so synthesize one. Branch
			// on the dataset kind, not on Name() == "" — the empty string
			// is a legitimate interned element name.
			var elem string
			if d.numbered {
				elem = fmt.Sprintf("#%d", uint64(e.Elem))
			} else {
				elem = d.dict.Name(e.Elem)
			}
			counts[elem] += e.Count
		}
		if err := ix.Add(name, counts); err != nil {
			return nil, err
		}
	}
	return ix, nil
}

// internElements interns WAL element names into index entries, dropping
// zero counts (multiset.New merges duplicates and sorts).
func (ix *Index) internElements(elems []wal.Element) []multiset.Entry {
	entries := make([]multiset.Entry, 0, len(elems))
	for _, el := range elems {
		if el.Count == 0 {
			continue
		}
		entries = append(entries, multiset.Entry{Elem: ix.dict.Intern(el.Name), Count: el.Count})
	}
	return entries
}

// walAddRecord builds the logged form of an Add: element names sorted,
// zero counts dropped, so identical mutations always encode identically.
func walAddRecord(entity string, counts map[string]uint32) wal.Record {
	names := make([]string, 0, len(counts))
	for name, c := range counts {
		if c > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	elems := make([]wal.Element, len(names))
	for i, name := range names {
		elems[i] = wal.Element{Name: name, Count: counts[name]}
	}
	return wal.Record{Op: wal.OpAdd, Entity: entity, Elements: elems}
}

// applyAddLocked upserts into the name tables and the owning shard.
// Caller holds ix.mu (or owns the index exclusively, during recovery).
func (ix *Index) applyAddLocked(entity string, entries []multiset.Entry) {
	id, ok := ix.byName[entity]
	if !ok {
		id = ix.nextID
		ix.nextID++
		ix.byName[entity] = id
		ix.names[id] = entity
	}
	ix.inner.Add(multiset.New(id, entries))
}

// applyRemoveLocked deletes from the name tables and the owning shard.
func (ix *Index) applyRemoveLocked(entity string) bool {
	id, ok := ix.byName[entity]
	if !ok {
		return false
	}
	delete(ix.byName, entity)
	delete(ix.names, id)
	return ix.inner.Remove(id)
}

// Add indexes an entity with its element multiplicities, replacing any
// previous entity of the same name (upsert semantics — unlike
// Dataset.Add, which merges). Zero counts are ignored. On a durable
// index the mutation is appended to the write-ahead log first; if the
// append fails the in-memory index is left untouched and the error is
// returned — a returned error always means the mutation did NOT happen
// (automatic snapshot trouble is reported by Snapshot/Close instead).
// A volatile Add never fails.
//
// The inner insert happens under the name-table lock: if it didn't, a
// concurrent Remove of the same name could run between the two steps and
// leave a nameless ghost entity in the inner index.
func (ix *Index) Add(entity string, counts map[string]uint32) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.closed {
		return ErrIndexClosed
	}
	if ix.log != nil {
		if err := ix.log.Append(walAddRecord(entity, counts)); err != nil {
			return fmt.Errorf("vsmartjoin: add %q: %w", entity, err)
		}
	}
	entries := make([]multiset.Entry, 0, len(counts))
	for elem, c := range counts {
		if c == 0 {
			continue
		}
		entries = append(entries, multiset.Entry{Elem: ix.dict.Intern(elem), Count: c})
	}
	ix.applyAddLocked(entity, entries)
	ix.maybeSnapshotLocked()
	return nil
}

// Remove deletes an entity by name, reporting whether it was indexed.
// The removal of a name that is not indexed is a no-op and is not
// logged. Like Add, the WAL append happens before the in-memory
// mutation, and a returned error (never for a volatile index) means
// the removal did not happen — it reports log trouble, not absence.
func (ix *Index) Remove(entity string) (bool, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.closed {
		return false, ErrIndexClosed
	}
	if _, ok := ix.byName[entity]; !ok {
		return false, nil
	}
	if ix.log != nil {
		if err := ix.log.Append(wal.Record{Op: wal.OpRemove, Entity: entity}); err != nil {
			return false, fmt.Errorf("vsmartjoin: remove %q: %w", entity, err)
		}
	}
	removed := ix.applyRemoveLocked(entity)
	ix.maybeSnapshotLocked()
	return removed, nil
}

// maybeSnapshotLocked counts a logged mutation and cuts a snapshot once
// the cadence is reached. A snapshot failure is NOT the mutation's
// failure — the record is already durably logged and applied — so it is
// remembered (surfaced by the next explicit Snapshot or Close) and the
// cadence counter is left unreset, which retries the snapshot on the
// next mutation. Caller holds ix.mu.
func (ix *Index) maybeSnapshotLocked() {
	if ix.log == nil {
		return
	}
	ix.logged++
	if ix.snapshotEvery < 0 || ix.logged < ix.snapshotEvery {
		return
	}
	ix.snapErr = ix.snapshotLocked()
}

// snapshotLocked writes a full snapshot and truncates the log. Caller
// holds ix.mu, which quiesces all mutations (they all take ix.mu), so
// the shard iteration is an atomic view.
func (ix *Index) snapshotLocked() error {
	err := ix.log.Snapshot(func(emit func(wal.Record) error) error {
		var emitErr error
		ix.inner.Range(func(m multiset.Multiset) bool {
			elems := make([]wal.Element, len(m.Entries))
			for i, e := range m.Entries {
				elems[i] = wal.Element{Name: ix.dict.Name(e.Elem), Count: e.Count}
			}
			emitErr = emit(wal.Record{Op: wal.OpAdd, Entity: ix.names[m.ID], Elements: elems})
			return emitErr == nil
		})
		return emitErr
	})
	if err != nil {
		return fmt.Errorf("vsmartjoin: snapshot: %w", err)
	}
	ix.logged = 0
	ix.snapErr = nil // the durable state is current again
	return nil
}

// Snapshot forces a full snapshot and log truncation on a durable
// index, regardless of the SnapshotEvery cadence. It returns
// ErrNotDurable on a volatile index and ErrIndexClosed after Close;
// any other error is a real persistence failure (an earlier automatic
// snapshot that failed keeps being retried here and on every mutation
// until one succeeds).
func (ix *Index) Snapshot() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.log == nil {
		return ErrNotDurable
	}
	if ix.closed {
		return ErrIndexClosed
	}
	return ix.snapshotLocked()
}

// Close writes a final snapshot (if any mutations were logged since the
// last one) and closes the write-ahead log. Further mutations fail;
// queries keep working against the in-memory state. Closing a volatile
// or already-closed index is a no-op.
func (ix *Index) Close() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.log == nil || ix.closed {
		return nil
	}
	ix.closed = true
	var first error
	if ix.logged > 0 {
		first = ix.snapshotLocked()
	}
	if err := ix.log.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// Len reports the number of indexed entities.
func (ix *Index) Len() int { return ix.inner.Len() }

// buildQuery maps query element names into the index alphabet without
// interning them. Unknown elements can match nothing, but they still count
// toward the query's cardinalities (every measure's denominator), so they
// are folded into the query's Extra stats.
func (ix *Index) buildQuery(counts map[string]uint32) index.Query {
	// Map iteration order is irrelevant here: Extra accumulation is
	// commutative and multiset.New sorts the entries by element.
	var q index.Query
	entries := make([]multiset.Entry, 0, len(counts))
	ix.mu.RLock()
	for elem, c := range counts {
		if c == 0 {
			continue
		}
		if id, ok := ix.dict.Lookup(elem); ok {
			entries = append(entries, multiset.Entry{Elem: id, Count: c})
		} else {
			q.Extra.AccumulateUni(c)
		}
	}
	ix.mu.RUnlock()
	q.Set = multiset.New(0, entries)
	return q
}

// resolve translates ID matches back to entity names. Matches whose
// entity was removed between the query and the lookup are dropped.
func (ix *Index) resolve(ms []index.Match) []Match {
	out := make([]Match, 0, len(ms))
	ix.mu.RLock()
	for _, m := range ms {
		if name, ok := ix.names[m.ID]; ok {
			out = append(out, Match{Entity: name, Similarity: m.Sim})
		}
	}
	ix.mu.RUnlock()
	return out
}

// QueryThreshold returns every indexed entity whose similarity to the
// query multiset is at least t, sorted by decreasing similarity (entity
// ID order on ties). A zero t returns every entity sharing at least one
// element with the query — the same overlap convention as AllPairs.
func (ix *Index) QueryThreshold(counts map[string]uint32, t float64) ([]Match, error) {
	if err := checkThreshold(t); err != nil {
		return nil, err
	}
	return ix.resolve(ix.inner.QueryThreshold(ix.buildQuery(counts), t)), nil
}

// QueryEntity runs QueryThreshold with an indexed entity as the query;
// the entity itself is excluded from the results.
func (ix *Index) QueryEntity(entity string, t float64) ([]Match, error) {
	if err := checkThreshold(t); err != nil {
		return nil, err
	}
	ix.mu.RLock()
	id, ok := ix.byName[entity]
	ix.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("vsmartjoin: entity %q not indexed", entity)
	}
	ms := ix.inner.QueryThreshold(ix.queryByID(id), t)
	return ix.resolve(ms), nil
}

// QueryTopK returns the k most similar indexed entities, best first.
func (ix *Index) QueryTopK(counts map[string]uint32, k int) []Match {
	return ix.resolve(ix.inner.QueryTopK(ix.buildQuery(counts), k))
}

// queryByID rebuilds a query from an indexed entity's current multiset.
// The probe carries the entity's own ID so the index skips the self-pair.
func (ix *Index) queryByID(id multiset.ID) index.Query {
	// The inner index owns the authoritative multiset; query it back via a
	// threshold-0 self lookup would be circular, so re-read from postings
	// is avoided by keeping this translation here: QueryEntity is only a
	// convenience, a removed-in-between entity just yields no matches.
	return index.Query{Set: ix.inner.Snapshot(id)}
}

// Stats returns a snapshot of the index counters.
func (ix *Index) Stats() IndexStats {
	s := ix.inner.Stats()
	return IndexStats{
		Measure:      ix.measure.Name(),
		Shards:       ix.inner.Shards(),
		Entities:     s.Entities,
		Elements:     s.Elements,
		Postings:     s.Postings,
		Adds:         s.Adds,
		Removes:      s.Removes,
		Compactions:  s.Compactions,
		Queries:      s.Queries,
		Probes:       s.Probes,
		Candidates:   s.Candidates,
		LengthPruned: s.LengthPruned,
		Verified:     s.Verified,
		Results:      s.Results,
	}
}

// checkThreshold applies the same threshold convention as AllPairs, except
// that the online API has no "default" sentinel: the caller always states
// the cut-off explicitly.
func checkThreshold(t float64) error {
	if t != t || t < 0 || t > 1 {
		return fmt.Errorf("vsmartjoin: threshold %v outside [0, 1]", t)
	}
	return nil
}
