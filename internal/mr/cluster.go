package mr

import (
	"errors"
	"fmt"
)

// Engine capability and failure errors. These model the environment
// constraints the paper reports: Hadoop's missing secondary keys, the 1 GB
// per-machine memory budget, and the scheduler killing tasks that exceed
// the 48-hour deadline.
var (
	// ErrSecondaryKeys is returned when a job that requires secondary-key
	// sorted reduce lists is submitted to a cluster that does not support
	// them (Hadoop-compatible mode).
	ErrSecondaryKeys = errors.New("mr: job requires secondary keys, unsupported by this cluster")
	// ErrOutOfMemory is returned when a task reserves more memory than the
	// per-machine budget (the paper's thrashing/failure condition).
	ErrOutOfMemory = errors.New("mr: per-machine memory budget exceeded")
	// ErrTaskKilled is returned when a single task's simulated time exceeds
	// the scheduler deadline (the paper's VCL mappers were killed at 48 h).
	ErrTaskKilled = errors.New("mr: task exceeded scheduler deadline and was killed")
)

// CostModel holds the coefficients of the simulated-time accounting, in
// seconds. Absolute values are arbitrary; only ratios shape the results.
type CostModel struct {
	// JobStartup is charged once per MapReduce job (scheduling, binary
	// distribution, task setup). The paper notes start/stop time hampers
	// scaling at high machine counts.
	JobStartup float64
	// TaskOverhead is charged per task (map or reduce).
	TaskOverhead float64
	// CPUPerRecord is charged for every record read, emitted, combined, or
	// reduced.
	CPUPerRecord float64
	// IOPerByte is charged for every byte read from or written to the
	// distributed file system by a task.
	IOPerByte float64
	// NetPerByte is charged for every shuffled byte; the transfer is
	// parallel across machines.
	NetPerByte float64
	// SideLoadPerByte is charged on every machine that must load a
	// side-input table at stage start (the Lookup algorithm's fixed
	// overhead).
	SideLoadPerByte float64
	// MaxTaskSeconds kills any single task whose simulated time exceeds it.
	MaxTaskSeconds float64
}

// DefaultCostModel returns coefficients calibrated so that the scaled
// datasets in internal/experiments reproduce the shapes of the paper's
// figures.
func DefaultCostModel() CostModel {
	return CostModel{
		JobStartup:      12.0,
		TaskOverhead:    0.02,
		CPUPerRecord:    12e-6,
		IOPerByte:       60e-9,
		NetPerByte:      240e-9,
		SideLoadPerByte: 500e-9,
		MaxTaskSeconds:  172_800, // 48 h
	}
}

// ClusterConfig describes the simulated cluster a job runs on.
type ClusterConfig struct {
	// Machines is the number of worker machines (the x-axis of Figs 5–6).
	Machines int
	// MemPerMachine is the per-machine memory budget in (simulated) bytes;
	// the paper allowed 1 GB.
	MemPerMachine int64
	// SupportsSecondaryKeys selects Google-MR semantics (true) or
	// Hadoop-compatible semantics (false).
	SupportsSecondaryKeys bool
	// ShuffleBufferBytes caps how many shuffle bytes a map task may buffer
	// in memory before spilling sorted runs to disk; the reduce stage then
	// streams each partition through a k-way merge of the spilled and
	// in-memory runs. 0 (the default) keeps the whole shuffle in memory.
	// Results are identical in both modes; spilling only bounds memory and
	// charges the extra disk I/O to the cost model.
	ShuffleBufferBytes int64
	// Cost is the simulated-time model.
	Cost CostModel
}

// Validate checks the configuration for sanity.
func (c ClusterConfig) Validate() error {
	if c.Machines < 1 {
		return fmt.Errorf("mr: cluster needs at least 1 machine, got %d", c.Machines)
	}
	if c.MemPerMachine <= 0 {
		return fmt.Errorf("mr: MemPerMachine must be positive, got %d", c.MemPerMachine)
	}
	if c.ShuffleBufferBytes < 0 {
		return fmt.Errorf("mr: ShuffleBufferBytes must be >= 0, got %d", c.ShuffleBufferBytes)
	}
	return nil
}

// NewCluster returns a ClusterConfig with the default cost model, the given
// machine count and memory budget, and secondary-key support enabled.
func NewCluster(machines int, memPerMachine int64) ClusterConfig {
	return ClusterConfig{
		Machines:              machines,
		MemPerMachine:         memPerMachine,
		SupportsSecondaryKeys: true,
		Cost:                  DefaultCostModel(),
	}
}

// Hadoop returns a copy of the config with secondary-key support disabled,
// mimicking the publicly available MapReduce implementation.
func (c ClusterConfig) Hadoop() ClusterConfig {
	c.SupportsSecondaryKeys = false
	return c
}

// assignTasks distributes per-task costs over machines with a greedy
// least-loaded policy (deterministic: tasks in index order, ties to the
// lowest machine id) and returns the per-machine totals.
func assignTasks(costs []float64, machines int) []float64 {
	load := make([]float64, machines)
	for _, c := range costs {
		best := 0
		for m := 1; m < machines; m++ {
			if load[m] < load[best] {
				best = m
			}
		}
		load[best] += c
	}
	return load
}

func maxOf(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
