package mr

import (
	"fmt"
	"testing"

	"vsmartjoin/internal/mrfs"
)

// spillCluster returns a cluster whose map tasks may buffer at most cap
// shuffle bytes in memory.
func spillCluster(machines int, cap int64) ClusterConfig {
	cl := testCluster(machines)
	cl.ShuffleBufferBytes = cap
	return cl
}

// bigWordInput generates enough lines that a small spill cap forces many
// spill rounds in every map task.
func bigWordInput(parts, lines int) *mrfs.Dataset {
	recs := make([]mrfs.Record, lines)
	for i := range recs {
		recs[i] = mrfs.Record{
			Key: []byte(fmt.Sprintf("line%d", i)),
			Val: []byte(fmt.Sprintf("w%d w%d w%d w%d", i%13, i%7, i%29, i%3)),
		}
	}
	return mrfs.FromRecords("lines", recs, parts)
}

// runSorted executes the job and returns the output in deterministic
// (Key, Sec, Val) order.
func runSorted(t *testing.T, cl ClusterConfig, job Job) ([]mrfs.Record, JobStats) {
	t.Helper()
	out, stats, err := Run(cl, job)
	if err != nil {
		t.Fatal(err)
	}
	return out.Sorted(), stats
}

func assertSameRecords(t *testing.T, got, want []mrfs.Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("record count: got %d want %d", len(got), len(want))
	}
	for i := range got {
		if mrfs.Less(got[i], want[i]) || mrfs.Less(want[i], got[i]) {
			t.Fatalf("record %d differs: got %q/%q/%q want %q/%q/%q", i,
				got[i].Key, got[i].Sec, got[i].Val, want[i].Key, want[i].Sec, want[i].Val)
		}
	}
}

// TestSpillMatchesInMemory asserts that forcing the shuffle to spill
// produces exactly the records of the all-in-memory run, and that the
// spill really happened and was charged.
func TestSpillMatchesInMemory(t *testing.T) {
	job := Job{
		Name:    "wordcount",
		Input:   bigWordInput(4, 600),
		Mapper:  wordCountMapper,
		Reducer: sumReducer,
	}
	mem, memStats := runSorted(t, testCluster(4), job)
	if memStats.Spills != 0 || memStats.SpilledBytes != 0 {
		t.Fatalf("in-memory run spilled: %d rounds, %d bytes", memStats.Spills, memStats.SpilledBytes)
	}
	spill, spillStats := runSorted(t, spillCluster(4, 256), job)
	if spillStats.Spills == 0 || spillStats.SpilledBytes == 0 {
		t.Fatalf("capped run did not spill: %+v", spillStats)
	}
	assertSameRecords(t, spill, mem)
	if spillStats.ReduceOutRecs != memStats.ReduceOutRecs {
		t.Fatalf("reduce out: %d vs %d", spillStats.ReduceOutRecs, memStats.ReduceOutRecs)
	}
}

// TestSpillWithCombiner exercises the spill path's per-run combining: the
// reducer still sees every partial sum and totals must match.
func TestSpillWithCombiner(t *testing.T) {
	job := Job{
		Name:     "wordcount-combined",
		Input:    bigWordInput(3, 400),
		Mapper:   wordCountMapper,
		Combiner: sumReducer,
		Reducer:  sumReducer,
	}
	mem, _ := runSorted(t, testCluster(3), job)
	spill, stats := runSorted(t, spillCluster(3, 128), job)
	if stats.Spills == 0 {
		t.Fatal("no spill happened")
	}
	assertSameRecords(t, spill, mem)
	// Per-spill combining must still shrink the shuffle below the raw
	// mapper output.
	if stats.CombineOutRecs >= stats.MapOutRecords {
		t.Fatalf("combiner ineffective: %d combined vs %d mapped", stats.CombineOutRecs, stats.MapOutRecords)
	}
}

// TestSpillMapOnly covers the map-only (nil Reducer) passthrough over the
// merged stream.
func TestSpillMapOnly(t *testing.T) {
	job := Job{
		Name:   "passthrough",
		Input:  bigWordInput(3, 200),
		Mapper: wordCountMapper,
	}
	mem, _ := runSorted(t, testCluster(3), job)
	spill, stats := runSorted(t, spillCluster(3, 100), job)
	if stats.Spills == 0 {
		t.Fatal("no spill happened")
	}
	assertSameRecords(t, spill, mem)
}

// TestSpillSecondaryKeys asserts the merge preserves secondary-key order
// for reducers that depend on it.
func TestSpillSecondaryKeys(t *testing.T) {
	recs := make([]mrfs.Record, 300)
	for i := range recs {
		recs[i] = mrfs.Record{Key: []byte(fmt.Sprintf("r%d", i)), Val: []byte("x")}
	}
	input := mrfs.FromRecords("in", recs, 3)
	mapper := MapperFunc(func(_ *TaskContext, rec mrfs.Record, emit Emitter) error {
		// Reverse-ish secondary keys so sortedness comes from the shuffle,
		// not emission order.
		emit.EmitSec([]byte("g"), []byte(fmt.Sprintf("s%09d", 300-len(rec.Key)-int(rec.Key[1]))), rec.Key)
		return nil
	})
	reducer := ReducerFunc(func(_ *TaskContext, key []byte, values *Values, emit Emitter) error {
		prev := ""
		for {
			v, ok := values.Next()
			if !ok {
				break
			}
			if s := string(v.Sec); s < prev {
				return fmt.Errorf("secondary keys out of order: %q after %q", s, prev)
			} else {
				prev = s
			}
		}
		emit.Emit(key, []byte("ok"))
		return nil
	})
	job := Job{Name: "secsort", Input: input, Mapper: mapper, Reducer: reducer, UsesSecondaryKeys: true}
	mem, _ := runSorted(t, testCluster(3), job)
	spill, stats := runSorted(t, spillCluster(3, 64), job)
	if stats.Spills == 0 {
		t.Fatal("no spill happened")
	}
	assertSameRecords(t, spill, mem)
}

// TestSpillCompaction forces far more spill runs per partition than the
// merge fan-in cap, so the reduce stage must pre-merge segments into
// intermediate runs — and the output must still match the in-memory run.
func TestSpillCompaction(t *testing.T) {
	job := Job{
		Name:    "wordcount",
		Input:   bigWordInput(1, 2500), // one map task: all runs land in the same task's run list
		Mapper:  wordCountMapper,
		Reducer: sumReducer,
	}
	mem, _ := runSorted(t, testCluster(2), job)
	spill, stats := runSorted(t, spillCluster(2, 64), job)
	if stats.Spills <= maxMergeFanIn {
		t.Fatalf("want > %d spill rounds to exercise compaction, got %d", maxMergeFanIn, stats.Spills)
	}
	assertSameRecords(t, spill, mem)
}

// TestSpillCostAccounting asserts spilled bytes are charged to task I/O on
// both sides of the shuffle, so a spilling run simulates slower than the
// in-memory run of the same job.
func TestSpillCostAccounting(t *testing.T) {
	job := Job{
		Name:    "wordcount",
		Input:   bigWordInput(4, 600),
		Mapper:  wordCountMapper,
		Reducer: sumReducer,
	}
	_, memStats := runSorted(t, testCluster(4), job)
	_, spillStats := runSorted(t, spillCluster(4, 256), job)

	var mapSpill, reduceSpill int64
	for _, io := range spillStats.Profile.MapTasks {
		mapSpill += io.SpillIO
	}
	for _, io := range spillStats.Profile.ReduceTasks {
		reduceSpill += io.SpillIO
	}
	if mapSpill != spillStats.SpilledBytes {
		t.Fatalf("map SpillIO %d != SpilledBytes %d", mapSpill, spillStats.SpilledBytes)
	}
	// Every spilled byte is read back at least once; run compaction may
	// re-read and re-write on top.
	if reduceSpill < spillStats.SpilledBytes {
		t.Fatalf("reduce SpillIO %d (read back) < SpilledBytes %d (written)", reduceSpill, spillStats.SpilledBytes)
	}
	if spillStats.TotalSeconds <= memStats.TotalSeconds {
		t.Fatalf("spilling should cost simulated time: %v <= %v", spillStats.TotalSeconds, memStats.TotalSeconds)
	}
}

// TestSpillValidation rejects a negative cap.
func TestSpillValidation(t *testing.T) {
	cl := spillCluster(2, -1)
	_, _, err := Run(cl, Job{Name: "bad", Input: bigWordInput(1, 2), Mapper: wordCountMapper})
	if err == nil {
		t.Fatal("negative ShuffleBufferBytes accepted")
	}
}

// TestSpillDeterministic runs the spilling engine repeatedly and asserts
// byte-identical output and identical cost accounting.
func TestSpillDeterministic(t *testing.T) {
	job := Job{
		Name:     "wordcount",
		Input:    bigWordInput(4, 500),
		Mapper:   wordCountMapper,
		Combiner: sumReducer,
		Reducer:  sumReducer,
	}
	first, firstStats := runSorted(t, spillCluster(4, 200), job)
	for run := 1; run < 3; run++ {
		got, stats := runSorted(t, spillCluster(4, 200), job)
		assertSameRecords(t, got, first)
		if stats.TotalSeconds != firstStats.TotalSeconds {
			t.Fatalf("run %d: simulated time differs: %v vs %v", run, stats.TotalSeconds, firstStats.TotalSeconds)
		}
		if stats.SpilledBytes != firstStats.SpilledBytes || stats.Spills != firstStats.Spills {
			t.Fatalf("run %d: spill accounting differs", run)
		}
	}
}
