package mr

import (
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"sort"
	"sync"

	"vsmartjoin/internal/mrfs"
)

// Job describes one MapReduce execution.
type Job struct {
	// Name labels the job in stats and errors.
	Name string
	// Input is the dataset to map over; each partition is one map task.
	Input *mrfs.Dataset
	// Mapper transforms input records. Required.
	Mapper Mapper
	// Combiner, when non-nil, is a dedicated combiner applied to each map
	// task's output before the shuffle (the paper uses dedicated combiners
	// in every aggregation).
	Combiner Reducer
	// Reducer folds grouped values. When nil the job is map-only: mapper
	// output is shuffled into partitions and written out unreduced.
	Reducer Reducer
	// NumReducers sets the reduce task count (defaults to the cluster's
	// machine count).
	NumReducers int
	// UsesSecondaryKeys declares that the reducer depends on value lists
	// sorted by secondary key. Hadoop-compatible clusters reject such jobs.
	UsesSecondaryKeys bool
	// SideInputs are loaded into every task's context at stage start;
	// their bytes are charged to memory and to per-machine load time.
	SideInputs map[string]*mrfs.Dataset
	// SideInputsAtReduce also loads side inputs for reduce tasks
	// (default: map tasks only, the common pattern).
	SideInputsAtReduce bool
	// OutputName names the result dataset.
	OutputName string
}

// TaskIO captures the raw, cost-model-independent work quantities of one
// task, so calibration can re-price a run under any coefficients.
type TaskIO struct {
	InRecords, OutRecords int64
	InBytes, OutBytes     int64
	ExtraIO               int64 // bytes re-read (rewinds, explicit charges)
	ExtraCPU              int64 // record-equivalents from ChargeCompute
	CombineRecords        int64 // records passed through a dedicated combiner
	SpillIO               int64 // shuffle-spill bytes written (map) or read back (reduce)
}

// Cost prices the task under a cost model.
func (t TaskIO) Cost(cm CostModel) float64 {
	return cm.TaskOverhead +
		float64(t.InBytes+t.OutBytes+t.ExtraIO+t.SpillIO)*cm.IOPerByte +
		float64(t.InRecords+t.OutRecords+t.ExtraCPU+t.CombineRecords)*cm.CPUPerRecord
}

// CostProfile captures the machine-count- and coefficient-independent work
// of one job run, so the simulated time can be re-evaluated for any
// cluster width (the x-axis sweeps of Figs 5–6) or cost model without
// re-executing the join.
type CostProfile struct {
	MapTasks       []TaskIO
	ReduceTasks    []TaskIO
	ShuffleBytes   int64
	ShuffleRecords int64
	SideBytes      int64
	SideAtReduce   bool
}

// JobTimes is the simulated wall-clock breakdown of one job at a given
// machine count.
type JobTimes struct {
	Startup, Map, Shuffle, Reduce, Total float64
}

func taskCosts(tasks []TaskIO, cm CostModel) []float64 {
	out := make([]float64, len(tasks))
	for i, t := range tasks {
		out[i] = t.Cost(cm)
	}
	return out
}

// Evaluate computes the job's simulated times on w machines under cm.
func (p *CostProfile) Evaluate(w int, cm CostModel) JobTimes {
	var t JobTimes
	t.Startup = cm.JobStartup
	t.Map = maxOf(assignTasks(taskCosts(p.MapTasks, cm), w))
	if p.SideBytes > 0 {
		// Every machine loads the side table once at stage start — a fixed
		// overhead independent of the machine count.
		t.Map += float64(p.SideBytes) * cm.SideLoadPerByte
	}
	t.Shuffle = float64(p.ShuffleBytes)*cm.NetPerByte/float64(w) +
		float64(p.ShuffleRecords)*cm.CPUPerRecord/float64(w)
	t.Reduce = maxOf(assignTasks(taskCosts(p.ReduceTasks, cm), w))
	if p.SideAtReduce && p.SideBytes > 0 {
		t.Reduce += float64(p.SideBytes) * cm.SideLoadPerByte
	}
	t.Total = t.Startup + t.Map + t.Shuffle + t.Reduce
	return t
}

// JobStats reports the simulated cost and volume of one job run.
type JobStats struct {
	Name        string
	Machines    int
	MapTasks    int
	ReduceTasks int

	// Profile allows re-evaluating the times at other machine counts.
	Profile CostProfile

	MapInRecords   int64
	MapOutRecords  int64 // before combining
	CombineOutRecs int64 // records after combining (== MapOutRecords when no combiner)
	ShuffleBytes   int64
	SpilledBytes   int64 // file bytes written to shuffle-spill segments
	Spills         int   // spill rounds across all map tasks
	ReduceOutRecs  int64
	OutputBytes    int64
	Counters       map[string]int64

	// Simulated seconds.
	StartupSeconds    float64
	MapSeconds        float64 // slowest machine's map time
	ShuffleSeconds    float64
	ReduceSeconds     float64 // slowest machine's reduce time
	TotalSeconds      float64
	SlowestMapTask    float64
	SlowestReduceTask float64
}

func (s JobStats) String() string {
	return fmt.Sprintf("%s: %.1fs sim (map %.1f, shuffle %.1f, reduce %.1f) mapIn=%d shuffle=%dB out=%d",
		s.Name, s.TotalSeconds, s.MapSeconds, s.ShuffleSeconds, s.ReduceSeconds,
		s.MapInRecords, s.ShuffleBytes, s.ReduceOutRecs)
}

// partitionOf routes a key to a reduce partition.
func partitionOf(key []byte, n int) int {
	h := fnv.New32a()
	h.Write(key)
	return int(h.Sum32() % uint32(n))
}

// bufEmitter partitions emitted tuples into per-reducer buffers, copying
// all byte slices (callers reuse their encode buffers). When a spill cap
// is set, buffers that grow past it are flushed to sorted on-disk segment
// runs (see spill.go); with cap == 0 everything stays in memory.
type bufEmitter struct {
	parts   [][]mrfs.Record
	n       int64 // records emitted
	byteSum int64 // bytes emitted (pre-combine, cumulative)

	// Spill state. cap == 0 disables spilling entirely.
	cap          int64
	dir          string
	task         int
	ctx          *TaskContext
	job          Job
	curBytes     int64      // bytes currently buffered in memory
	runs         [][]string // per partition: spilled segment paths, in spill order
	spills       int
	spilledRecs  int64
	spilledBytes int64 // file bytes written to segments
	combineOut   int64 // records after combining (filled by finish/spill)
	outBytes     int64 // post-combine record bytes (shuffle volume)
	err          error // first spill failure, surfaced after Map returns
}

func newBufEmitter(numParts int, ctx *TaskContext, job Job) *bufEmitter {
	return &bufEmitter{
		parts: make([][]mrfs.Record, numParts),
		runs:  make([][]string, numParts),
		ctx:   ctx,
		job:   job,
	}
}

// newSpillEmitter returns an emitter that spills to dir when more than cap
// bytes are buffered.
func newSpillEmitter(numParts int, cap int64, dir string, task int, ctx *TaskContext, job Job) *bufEmitter {
	e := newBufEmitter(numParts, ctx, job)
	e.cap, e.dir, e.task = cap, dir, task
	return e
}

func cloneBytes(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

func (e *bufEmitter) add(key, sec, val []byte) {
	if e.err != nil {
		return
	}
	r := mrfs.Record{Key: cloneBytes(key), Sec: cloneBytes(sec), Val: cloneBytes(val)}
	p := partitionOf(r.Key, len(e.parts))
	e.parts[p] = append(e.parts[p], r)
	e.n++
	e.byteSum += r.Size()
	e.curBytes += r.Size()
	if e.cap > 0 && e.curBytes > e.cap {
		e.err = e.spill()
	}
}

func (e *bufEmitter) Emit(key, val []byte)         { e.add(key, nil, val) }
func (e *bufEmitter) EmitSec(key, sec, val []byte) { e.add(key, sec, val) }

// listEmitter appends tuples to a flat list (reduce output, combiner
// output capture).
type listEmitter struct {
	out     []mrfs.Record
	byteSum int64
}

func (e *listEmitter) add(key, sec, val []byte) {
	r := mrfs.Record{Key: cloneBytes(key), Sec: cloneBytes(sec), Val: cloneBytes(val)}
	e.out = append(e.out, r)
	e.byteSum += r.Size()
}

func (e *listEmitter) Emit(key, val []byte)         { e.add(key, nil, val) }
func (e *listEmitter) EmitSec(key, sec, val []byte) { e.add(key, sec, val) }

// taskResult carries a finished map task's buffers and cost inputs.
type taskResult struct {
	parts       [][]mrfs.Record // in-memory output (sorted runs in spill mode)
	runs        [][]string      // spilled segment paths per partition
	inRecords   int64
	inBytes     int64
	outRecords  int64 // pre-combine
	combineOut  int64
	outBytes    int64 // post-combine (spilled to shuffle)
	spills      int
	spilledRecs int64
	spillBytes  int64 // file bytes written to spill segments
	extraIO     int64
	extraCPU    int64
}

// Run executes the job on the simulated cluster and returns the output
// dataset plus its cost statistics.
func Run(cluster ClusterConfig, job Job) (*mrfs.Dataset, JobStats, error) {
	stats := JobStats{Name: job.Name, Machines: cluster.Machines}
	if err := cluster.Validate(); err != nil {
		return nil, stats, err
	}
	if job.Mapper == nil {
		return nil, stats, fmt.Errorf("mr: job %q has no mapper", job.Name)
	}
	if job.Input == nil {
		return nil, stats, fmt.Errorf("mr: job %q has no input", job.Name)
	}
	if job.UsesSecondaryKeys && !cluster.SupportsSecondaryKeys {
		return nil, stats, fmt.Errorf("mr: job %q: %w", job.Name, ErrSecondaryKeys)
	}
	numReducers := job.NumReducers
	if numReducers <= 0 {
		numReducers = cluster.Machines
	}
	counters := NewCounters()

	sideBytes := int64(0)
	for _, d := range job.SideInputs {
		sideBytes += d.Bytes()
	}

	// ---- Map stage ----
	// Side inputs load once, at stage start, before any record is mapped —
	// the paper's rule for keeping map functions pure. Mapper state derived
	// here is read-only during the parallel tasks.
	if s, ok := job.Mapper.(Setupper); ok {
		setupCtx := &TaskContext{
			JobName:   job.Name,
			TaskIndex: -1,
			Counters:  counters,
			Side:      job.SideInputs,
			memBudget: cluster.MemPerMachine,
		}
		if sideBytes > 0 {
			if err := setupCtx.Reserve(sideBytes); err != nil {
				return nil, stats, fmt.Errorf("mr: job %q loading side inputs (%d bytes): %w",
					job.Name, sideBytes, err)
			}
		}
		if err := s.Setup(setupCtx); err != nil {
			return nil, stats, fmt.Errorf("mr: job %q map setup: %w", job.Name, err)
		}
	}
	mapTasks := job.Input.Partitions
	stats.MapTasks = len(mapTasks)
	results := make([]*taskResult, len(mapTasks))
	spillCap := cluster.ShuffleBufferBytes
	var spillDir string
	if spillCap > 0 {
		dir, derr := os.MkdirTemp("", "vsmartjoin-shuffle-")
		if derr != nil {
			return nil, stats, fmt.Errorf("mr: job %q: creating spill dir: %w", job.Name, derr)
		}
		spillDir = dir
		defer os.RemoveAll(spillDir)
	}
	err := parallelFor(len(mapTasks), func(t int) error {
		ctx := &TaskContext{
			JobName:   job.Name,
			TaskIndex: t,
			Counters:  counters,
			Side:      job.SideInputs,
			memBudget: cluster.MemPerMachine,
		}
		if sideBytes > 0 {
			if err := ctx.Reserve(sideBytes); err != nil {
				return fmt.Errorf("mr: job %q map task %d loading side inputs (%d bytes): %w",
					job.Name, t, sideBytes, err)
			}
		}
		var em *bufEmitter
		if spillCap > 0 {
			em = newSpillEmitter(numReducers, spillCap, spillDir, t, ctx, job)
		} else {
			em = newBufEmitter(numReducers, ctx, job)
		}
		res := &taskResult{}
		cm := cluster.Cost
		for _, rec := range mapTasks[t] {
			res.inRecords++
			res.inBytes += rec.Size()
			if err := job.Mapper.Map(ctx, rec, em); err != nil {
				return fmt.Errorf("mr: job %q map task %d: %w", job.Name, t, err)
			}
			if em.err != nil {
				return em.err
			}
			// The scheduler kills tasks that run past the deadline — check
			// incrementally so runaway replication (e.g. the VCL kernel
			// map) is stopped mid-flight rather than fully materialized.
			if cm.MaxTaskSeconds > 0 {
				running := cm.TaskOverhead +
					float64(res.inBytes)*cm.IOPerByte +
					float64(res.inRecords+em.n+ctx.extraCPU)*cm.CPUPerRecord +
					float64(em.byteSum)*cm.IOPerByte
				if running > cm.MaxTaskSeconds {
					return fmt.Errorf("mr: job %q: map task %d ran %.0fs (deadline %.0fs): %w",
						job.Name, t, running, cm.MaxTaskSeconds, ErrTaskKilled)
				}
			}
		}
		res.outRecords = em.n
		res.extraIO = ctx.extraIO
		res.extraCPU = ctx.extraCPU
		// Dedicated combiner and (in spill mode) run preparation: finish
		// combines each partition of this task's output and, under a spill
		// cap, leaves the leftovers as sorted merge runs.
		if err := em.finish(); err != nil {
			return err
		}
		res.combineOut = em.combineOut
		res.outBytes = em.outBytes
		res.parts = em.parts
		res.runs = em.runs
		res.spills = em.spills
		res.spilledRecs = em.spilledRecs
		res.spillBytes = em.spilledBytes
		results[t] = res
		return nil
	})
	if err != nil {
		return nil, stats, err
	}

	// ---- Shuffle: gather per-reducer groups ----
	// With no spill cap, partitions are concatenated and sorted in memory
	// (the historical path). Under a cap, every map task already produced
	// sorted runs — in-memory leftovers plus on-disk segments — and the
	// reduce stage merges them instead.
	reduceInput := make([][]mrfs.Record, numReducers)
	var shuffleBytes, shuffleRecords int64
	for _, res := range results {
		stats.MapInRecords += res.inRecords
		stats.MapOutRecords += res.outRecords
		stats.CombineOutRecs += res.combineOut
		stats.SpilledBytes += res.spillBytes
		stats.Spills += res.spills
		if spillCap <= 0 {
			for p := range res.parts {
				reduceInput[p] = append(reduceInput[p], res.parts[p]...)
			}
		}
		shuffleBytes += res.outBytes
		shuffleRecords += res.spilledRecs
		for p := range res.parts {
			shuffleRecords += int64(len(res.parts[p]))
		}
	}
	stats.ShuffleBytes = shuffleBytes

	if spillCap <= 0 {
		// Sort each reduce partition by (key, sec, val) — the shuffle's
		// grouping and secondary-key ordering.
		err = parallelFor(numReducers, func(p int) error {
			rows := reduceInput[p]
			sort.Slice(rows, func(i, j int) bool { return mrfs.Less(rows[i], rows[j]) })
			return nil
		})
		if err != nil {
			return nil, stats, err
		}
	}

	// ---- Reduce stage ----
	if job.Reducer != nil {
		if s, ok := job.Reducer.(Setupper); ok {
			setupCtx := &TaskContext{
				JobName:   job.Name,
				TaskIndex: -1,
				Counters:  counters,
				memBudget: cluster.MemPerMachine,
			}
			if job.SideInputsAtReduce {
				setupCtx.Side = job.SideInputs
				if sideBytes > 0 {
					if err := setupCtx.Reserve(sideBytes); err != nil {
						return nil, stats, fmt.Errorf("mr: job %q reduce side inputs: %w", job.Name, err)
					}
				}
			}
			if err := s.Setup(setupCtx); err != nil {
				return nil, stats, fmt.Errorf("mr: job %q reduce setup: %w", job.Name, err)
			}
		}
	}
	out := mrfs.NewDataset(job.OutputName, numReducers)
	stats.ReduceTasks = numReducers
	reduceIOs := make([]TaskIO, numReducers)
	cm := cluster.Cost
	err = parallelFor(numReducers, func(p int) error {
		ctx := &TaskContext{
			JobName:   job.Name,
			TaskIndex: p,
			Counters:  counters,
			memBudget: cluster.MemPerMachine,
		}
		if job.SideInputsAtReduce && sideBytes > 0 {
			ctx.Side = job.SideInputs
			if err := ctx.Reserve(sideBytes); err != nil {
				return fmt.Errorf("mr: job %q reduce task %d loading side inputs: %w", job.Name, p, err)
			}
		}
		// The partition's sorted record stream: the sorted in-memory slice,
		// or a k-way merge over the map tasks' spilled and leftover runs.
		var it recordIter
		var segRead int64
		if spillCap > 0 {
			its, rerr := partitionRuns(results, p, spillDir, &segRead)
			if rerr != nil {
				return fmt.Errorf("mr: job %q reduce task %d: %w", job.Name, p, rerr)
			}
			m, merr := newMergeIter(its)
			if merr != nil {
				return fmt.Errorf("mr: job %q reduce task %d: %w", job.Name, p, merr)
			}
			defer m.close()
			it = m
		} else {
			it = &sliceIter{rows: reduceInput[p]}
		}
		em := &listEmitter{}
		var inRecords, inBytes int64
		if job.Reducer == nil {
			// Map-only job: pass shuffled records through.
			for {
				r, ok, rerr := it.next()
				if rerr != nil {
					return fmt.Errorf("mr: job %q reduce task %d: %w", job.Name, p, rerr)
				}
				if !ok {
					break
				}
				inRecords++
				inBytes += r.Size()
				em.out = append(em.out, r)
				em.byteSum += r.Size()
			}
		} else {
			n, b, rerr := reduceGroups(ctx, job, cm, it, em)
			if rerr != nil {
				return rerr
			}
			inRecords, inBytes = n, b
		}
		out.Partitions[p] = em.out
		reduceIOs[p] = TaskIO{
			InRecords:  inRecords,
			OutRecords: int64(len(em.out)),
			InBytes:    inBytes,
			OutBytes:   em.byteSum,
			ExtraIO:    ctx.extraIO,
			ExtraCPU:   ctx.extraCPU,
			SpillIO:    segRead,
		}
		return nil
	})
	if err != nil {
		return nil, stats, err
	}
	stats.OutputBytes = out.Bytes()
	stats.ReduceOutRecs = out.NumRecords()
	stats.Counters = counters.Snapshot()

	// Re-stripe the output across partitions, modelling block placement in
	// the distributed file system: a downstream job's map splits follow
	// file blocks, not the key grouping of the reducers that wrote them.
	// Without this, one reducer's key-locality would skew the next job's
	// map tasks — a locality real MapReduce inputs do not have.
	striped := mrfs.NewDataset(job.OutputName, numReducers)
	idx := 0
	for p := range out.Partitions {
		for _, r := range out.Partitions[p] {
			striped.Partitions[idx%numReducers] = append(striped.Partitions[idx%numReducers], r)
			idx++
		}
	}
	out = striped

	// ---- Cost accounting ----
	mapIOs := make([]TaskIO, len(results))
	for t, res := range results {
		mapIOs[t] = TaskIO{
			InRecords:  res.inRecords,
			OutRecords: res.outRecords,
			InBytes:    res.inBytes,
			OutBytes:   res.outBytes,
			ExtraIO:    res.extraIO,
			ExtraCPU:   res.extraCPU,
			SpillIO:    res.spillBytes,
		}
		if job.Combiner != nil {
			mapIOs[t].CombineRecords = res.outRecords // combine pass
		}
	}
	stats.Profile = CostProfile{
		MapTasks:       mapIOs,
		ReduceTasks:    reduceIOs,
		ShuffleBytes:   shuffleBytes,
		ShuffleRecords: shuffleRecords,
		SideBytes:      sideBytes,
		SideAtReduce:   job.SideInputsAtReduce,
	}
	stats.SlowestMapTask = maxOf(taskCosts(mapIOs, cm))
	stats.SlowestReduceTask = maxOf(taskCosts(reduceIOs, cm))
	if cm.MaxTaskSeconds > 0 {
		if stats.SlowestMapTask > cm.MaxTaskSeconds {
			return nil, stats, fmt.Errorf("mr: job %q: map task ran %.0fs (deadline %.0fs): %w",
				job.Name, stats.SlowestMapTask, cm.MaxTaskSeconds, ErrTaskKilled)
		}
		if stats.SlowestReduceTask > cm.MaxTaskSeconds {
			return nil, stats, fmt.Errorf("mr: job %q: reduce task ran %.0fs (deadline %.0fs): %w",
				job.Name, stats.SlowestReduceTask, cm.MaxTaskSeconds, ErrTaskKilled)
		}
	}

	times := stats.Profile.Evaluate(cluster.Machines, cm)
	stats.StartupSeconds = times.Startup
	stats.MapSeconds = times.Map
	stats.ShuffleSeconds = times.Shuffle
	stats.ReduceSeconds = times.Reduce
	stats.TotalSeconds = times.Total

	return out, stats, nil
}

// combinePartition groups one map task's partition buffer by key and runs
// the dedicated combiner over each group.
func combinePartition(ctx *TaskContext, job Job, rows []mrfs.Record) ([]mrfs.Record, int64, error) {
	if len(rows) == 0 {
		return rows, 0, nil
	}
	sort.Slice(rows, func(i, j int) bool { return mrfs.Less(rows[i], rows[j]) })
	em := &listEmitter{}
	start := 0
	for i := 1; i <= len(rows); i++ {
		if i < len(rows) && bytesEqual(rows[i].Key, rows[start].Key) {
			continue
		}
		group := rows[start:i]
		vals := makeValues(group)
		if err := job.Combiner.Reduce(ctx, group[0].Key, vals, em); err != nil {
			return nil, 0, fmt.Errorf("mr: job %q combiner: %w", job.Name, err)
		}
		ctx.extraIO += vals.bytes * int64(vals.rewinds)
		start = i
	}
	return em.out, int64(len(em.out)), nil
}

// reduceGroups walks a sorted reduce record stream, slicing it into
// per-key groups and invoking the reducer on each; only one group is
// materialized at a time, so a merged (spilled) partition never has to fit
// in memory. The scheduler deadline is checked between groups so a runaway
// reduce task is killed mid-flight. It returns the record and byte counts
// consumed from the stream.
func reduceGroups(ctx *TaskContext, job Job, cm CostModel, it recordIter, em Emitter) (int64, int64, error) {
	var inRecords, inBytes int64
	listEm, _ := em.(*listEmitter)
	var group []mrfs.Record
	flush := func() error {
		if len(group) == 0 {
			return nil
		}
		vals := makeValues(group)
		if err := job.Reducer.Reduce(ctx, group[0].Key, vals, em); err != nil {
			return fmt.Errorf("mr: job %q reduce: %w", job.Name, err)
		}
		ctx.extraIO += vals.bytes * int64(vals.rewinds)
		inRecords += int64(len(group))
		if cm.MaxTaskSeconds > 0 && listEm != nil {
			running := cm.TaskOverhead +
				float64(inRecords+int64(len(listEm.out))+ctx.extraCPU)*cm.CPUPerRecord +
				float64(listEm.byteSum)*cm.IOPerByte +
				float64(ctx.extraIO)*cm.IOPerByte
			if running > cm.MaxTaskSeconds {
				return fmt.Errorf("mr: job %q: reduce task %d ran %.0fs (deadline %.0fs): %w",
					job.Name, ctx.TaskIndex, running, cm.MaxTaskSeconds, ErrTaskKilled)
			}
		}
		group = group[:0]
		return nil
	}
	for {
		r, ok, err := it.next()
		if err != nil {
			return inRecords, inBytes, fmt.Errorf("mr: job %q reduce task %d: %w", job.Name, ctx.TaskIndex, err)
		}
		if !ok {
			break
		}
		inBytes += r.Size()
		if len(group) > 0 && !bytesEqual(r.Key, group[0].Key) {
			if err := flush(); err != nil {
				return inRecords, inBytes, err
			}
		}
		group = append(group, r)
	}
	if err := flush(); err != nil {
		return inRecords, inBytes, err
	}
	return inRecords, inBytes, nil
}

func makeValues(group []mrfs.Record) *Values {
	vals := &Values{rows: make([]Value, len(group))}
	for i, r := range group {
		vals.rows[i] = Value{Sec: r.Sec, Val: r.Val}
		vals.bytes += r.Size()
	}
	return vals
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// parallelFor runs f(0..n-1) on a bounded worker pool, returning the first
// error (by lowest index, for determinism).
func parallelFor(n int, f func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = f(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
