package mr

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"vsmartjoin/internal/mrfs"
)

func testCluster(machines int) ClusterConfig {
	return NewCluster(machines, 1<<20)
}

// wordCountInput builds a dataset of lines.
func wordCountInput(parts int, lines ...string) *mrfs.Dataset {
	recs := make([]mrfs.Record, len(lines))
	for i, l := range lines {
		recs[i] = mrfs.Record{Key: []byte(fmt.Sprintf("line%d", i)), Val: []byte(l)}
	}
	return mrfs.FromRecords("lines", recs, parts)
}

var wordCountMapper = MapperFunc(func(_ *TaskContext, rec mrfs.Record, emit Emitter) error {
	for _, w := range strings.Fields(string(rec.Val)) {
		emit.Emit([]byte(w), []byte("1"))
	}
	return nil
})

var sumReducer = ReducerFunc(func(_ *TaskContext, key []byte, values *Values, emit Emitter) error {
	total := 0
	for {
		v, ok := values.Next()
		if !ok {
			break
		}
		n, err := strconv.Atoi(string(v.Val))
		if err != nil {
			return err
		}
		total += n
	}
	emit.Emit(key, []byte(strconv.Itoa(total)))
	return nil
})

func runWordCount(t *testing.T, combiner Reducer, machines int) map[string]int {
	t.Helper()
	out, _, err := Run(testCluster(machines), Job{
		Name:     "wordcount",
		Input:    wordCountInput(3, "a b a", "c a b", "c c c c"),
		Mapper:   wordCountMapper,
		Combiner: combiner,
		Reducer:  sumReducer,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, r := range out.Sorted() {
		n, _ := strconv.Atoi(string(r.Val))
		got[string(r.Key)] = n
	}
	return got
}

func TestWordCount(t *testing.T) {
	got := runWordCount(t, nil, 4)
	want := map[string]int{"a": 3, "b": 2, "c": 5}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("word %q: got %d want %d (all: %v)", k, got[k], v, got)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("extra words: %v", got)
	}
}

func TestCombinerDoesNotChangeResult(t *testing.T) {
	plain := runWordCount(t, nil, 4)
	combined := runWordCount(t, sumReducer, 4)
	if len(plain) != len(combined) {
		t.Fatalf("combiner changed result: %v vs %v", plain, combined)
	}
	for k, v := range plain {
		if combined[k] != v {
			t.Fatalf("combiner changed %q: %d vs %d", k, combined[k], v)
		}
	}
}

func TestCombinerReducesShuffleVolume(t *testing.T) {
	lines := make([]string, 50)
	for i := range lines {
		lines[i] = "x x x x x x x x"
	}
	in := wordCountInput(2, lines...)
	_, s1, err := Run(testCluster(4), Job{Name: "nc", Input: in, Mapper: wordCountMapper, Reducer: sumReducer})
	if err != nil {
		t.Fatal(err)
	}
	_, s2, err := Run(testCluster(4), Job{Name: "wc", Input: in, Mapper: wordCountMapper, Combiner: sumReducer, Reducer: sumReducer})
	if err != nil {
		t.Fatal(err)
	}
	if s2.ShuffleBytes >= s1.ShuffleBytes {
		t.Fatalf("combiner did not shrink shuffle: %d vs %d", s2.ShuffleBytes, s1.ShuffleBytes)
	}
	if s2.CombineOutRecs >= s1.MapOutRecords {
		t.Fatalf("combiner did not shrink records: %d vs %d", s2.CombineOutRecs, s1.MapOutRecords)
	}
}

func TestDeterministicOutputAcrossRuns(t *testing.T) {
	var prev string
	for i := 0; i < 3; i++ {
		out, _, err := Run(testCluster(5), Job{
			Name:    "det",
			Input:   wordCountInput(4, "q w e r t y", "a s d f g h", "z x c v b n", "q a z w s x"),
			Mapper:  wordCountMapper,
			Reducer: sumReducer,
		})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, r := range out.Sorted() {
			fmt.Fprintf(&sb, "%s=%s;", r.Key, r.Val)
		}
		if i > 0 && sb.String() != prev {
			t.Fatalf("run %d differs:\n%s\nvs\n%s", i, sb.String(), prev)
		}
		prev = sb.String()
	}
}

func TestSecondaryKeyOrdering(t *testing.T) {
	// Emit values with secondary keys 2,0,1 and check the reducer sees
	// them sorted 0,1,2.
	in := wordCountInput(1, "only")
	mapper := MapperFunc(func(_ *TaskContext, _ mrfs.Record, emit Emitter) error {
		emit.EmitSec([]byte("k"), []byte{2}, []byte("two"))
		emit.EmitSec([]byte("k"), []byte{0}, []byte("zero"))
		emit.EmitSec([]byte("k"), []byte{1}, []byte("one"))
		return nil
	})
	var seen []string
	reducer := ReducerFunc(func(_ *TaskContext, _ []byte, values *Values, emit Emitter) error {
		for {
			v, ok := values.Next()
			if !ok {
				break
			}
			seen = append(seen, string(v.Val))
		}
		emit.Emit([]byte("k"), []byte("done"))
		return nil
	})
	_, _, err := Run(testCluster(1), Job{
		Name: "sec", Input: in, Mapper: mapper, Reducer: reducer, UsesSecondaryKeys: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"zero", "one", "two"}
	if strings.Join(seen, ",") != strings.Join(want, ",") {
		t.Fatalf("secondary order: got %v want %v", seen, want)
	}
}

func TestHadoopRejectsSecondaryKeys(t *testing.T) {
	_, _, err := Run(testCluster(2).Hadoop(), Job{
		Name:              "sec",
		Input:             wordCountInput(1, "x"),
		Mapper:            wordCountMapper,
		Reducer:           sumReducer,
		UsesSecondaryKeys: true,
	})
	if !errors.Is(err, ErrSecondaryKeys) {
		t.Fatalf("want ErrSecondaryKeys, got %v", err)
	}
	// Without the declaration the same job runs fine on Hadoop mode.
	_, _, err = Run(testCluster(2).Hadoop(), Job{
		Name: "nosec", Input: wordCountInput(1, "x"), Mapper: wordCountMapper, Reducer: sumReducer,
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGroupingOneReducerCallPerKey(t *testing.T) {
	in := wordCountInput(4, "a b", "a c", "b c", "a a a")
	calls := NewCounters()
	reducer := ReducerFunc(func(ctx *TaskContext, key []byte, values *Values, emit Emitter) error {
		ctx.Counters.Inc("calls:" + string(key))
		return sumReducer(ctx, key, values, emit)
	})
	_, stats, err := Run(testCluster(3), Job{Name: "g", Input: in, Mapper: wordCountMapper, Reducer: reducer})
	if err != nil {
		t.Fatal(err)
	}
	_ = calls
	for _, k := range []string{"a", "b", "c"} {
		if stats.Counters["calls:"+k] != 1 {
			t.Fatalf("key %q reduced %d times", k, stats.Counters["calls:"+k])
		}
	}
}

func TestMapOnlyJob(t *testing.T) {
	out, stats, err := Run(testCluster(2), Job{
		Name:   "maponly",
		Input:  wordCountInput(2, "a b", "c"),
		Mapper: wordCountMapper,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRecords() != 3 {
		t.Fatalf("records: got %d want 3", out.NumRecords())
	}
	if stats.ReduceOutRecs != 3 {
		t.Fatalf("stats: %+v", stats)
	}
}

func TestOOMOnReserve(t *testing.T) {
	cl := NewCluster(2, 100) // tiny budget
	mapper := MapperFunc(func(ctx *TaskContext, rec mrfs.Record, emit Emitter) error {
		if err := ctx.Reserve(1000); err != nil {
			return err
		}
		return nil
	})
	_, _, err := Run(cl, Job{Name: "oom", Input: wordCountInput(1, "x"), Mapper: mapper})
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("want ErrOutOfMemory, got %v", err)
	}
}

func TestOOMOnSideInputs(t *testing.T) {
	big := mrfs.NewDataset("table", 1)
	for i := 0; i < 100; i++ {
		big.Append(0, mrfs.Record{Key: []byte("key"), Val: make([]byte, 64)})
	}
	cl := NewCluster(2, 1000) // budget smaller than table
	_, _, err := Run(cl, Job{
		Name:       "side-oom",
		Input:      wordCountInput(1, "x"),
		Mapper:     wordCountMapper,
		SideInputs: map[string]*mrfs.Dataset{"table": big},
	})
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("want ErrOutOfMemory, got %v", err)
	}
}

func TestSideInputsAvailableInSetup(t *testing.T) {
	table := mrfs.NewDataset("table", 1)
	table.Append(0, mrfs.Record{Key: []byte("a"), Val: []byte("42")})
	type lookupMapper struct {
		MapperFunc
	}
	loaded := NewCounters()
	var m Mapper = &setupMapper{loaded: loaded}
	out, _, err := Run(testCluster(1), Job{
		Name:       "side",
		Input:      wordCountInput(1, "a"),
		Mapper:     m,
		SideInputs: map[string]*mrfs.Dataset{"table": table},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = lookupMapper{}
	if loaded.Get("setups") != 1 {
		t.Fatalf("setup ran %d times", loaded.Get("setups"))
	}
	recs := out.Sorted()
	if len(recs) != 1 || string(recs[0].Val) != "42" {
		t.Fatalf("lookup output wrong: %v", recs)
	}
}

type setupMapper struct {
	loaded *Counters
	table  map[string]string
}

func (m *setupMapper) Setup(ctx *TaskContext) error {
	m.loaded.Inc("setups")
	m.table = map[string]string{}
	for _, r := range ctx.Side["table"].All() {
		m.table[string(r.Key)] = string(r.Val)
	}
	return nil
}

func (m *setupMapper) Map(_ *TaskContext, rec mrfs.Record, emit Emitter) error {
	for _, w := range strings.Fields(string(rec.Val)) {
		emit.Emit([]byte(w), []byte(m.table[w]))
	}
	return nil
}

func TestTaskDeadlineKill(t *testing.T) {
	cl := testCluster(1)
	cl.Cost.MaxTaskSeconds = 1e-9 // absurd deadline: everything gets killed
	_, _, err := Run(cl, Job{Name: "kill", Input: wordCountInput(1, "x"), Mapper: wordCountMapper, Reducer: sumReducer})
	if !errors.Is(err, ErrTaskKilled) {
		t.Fatalf("want ErrTaskKilled, got %v", err)
	}
}

func TestRewindChargesIO(t *testing.T) {
	in := wordCountInput(1, "k k k")
	reducer := ReducerFunc(func(_ *TaskContext, key []byte, values *Values, emit Emitter) error {
		for r := 0; r < 5; r++ {
			values.Rewind()
			for {
				if _, ok := values.Next(); !ok {
					break
				}
			}
		}
		emit.Emit(key, []byte("x"))
		return nil
	})
	_, withRewind, err := Run(testCluster(1), Job{Name: "rw", Input: in, Mapper: wordCountMapper, Reducer: reducer})
	if err != nil {
		t.Fatal(err)
	}
	_, plain, err := Run(testCluster(1), Job{Name: "rw0", Input: in, Mapper: wordCountMapper, Reducer: ReducerFunc(
		func(_ *TaskContext, key []byte, values *Values, emit Emitter) error {
			emit.Emit(key, []byte("x"))
			return nil
		})})
	if err != nil {
		t.Fatal(err)
	}
	if withRewind.SlowestReduceTask <= plain.SlowestReduceTask {
		t.Fatalf("rewinds should cost: %v vs %v", withRewind.SlowestReduceTask, plain.SlowestReduceTask)
	}
}

func TestMoreMachinesReduceSimulatedTime(t *testing.T) {
	lines := make([]string, 64)
	for i := range lines {
		lines[i] = strings.Repeat(fmt.Sprintf("w%d ", i%17), 30)
	}
	in := wordCountInput(64, lines...)
	_, s2, err := Run(testCluster(2), Job{Name: "m2", Input: in, Mapper: wordCountMapper, Reducer: sumReducer, NumReducers: 64})
	if err != nil {
		t.Fatal(err)
	}
	_, s16, err := Run(testCluster(16), Job{Name: "m16", Input: in, Mapper: wordCountMapper, Reducer: sumReducer, NumReducers: 64})
	if err != nil {
		t.Fatal(err)
	}
	if s16.TotalSeconds >= s2.TotalSeconds {
		t.Fatalf("16 machines not faster: %.3f vs %.3f", s16.TotalSeconds, s2.TotalSeconds)
	}
}

func TestSkewedKeyBottlenecksOneReducer(t *testing.T) {
	// One giant key dominates: adding machines barely helps the reduce
	// makespan — the effect behind the paper's Similarity1 analysis.
	lines := make([]string, 40)
	for i := range lines {
		lines[i] = strings.Repeat("hot ", 200)
	}
	in := wordCountInput(40, lines...)
	_, s4, err := Run(testCluster(4), Job{Name: "s4", Input: in, Mapper: wordCountMapper, Reducer: sumReducer, NumReducers: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, s32, err := Run(testCluster(32), Job{Name: "s32", Input: in, Mapper: wordCountMapper, Reducer: sumReducer, NumReducers: 32})
	if err != nil {
		t.Fatal(err)
	}
	if s32.SlowestReduceTask < s4.SlowestReduceTask*0.9 {
		t.Fatalf("skewed reduce should not parallelize: %.4f vs %.4f",
			s32.SlowestReduceTask, s4.SlowestReduceTask)
	}
}

func TestValidationErrors(t *testing.T) {
	if _, _, err := Run(ClusterConfig{Machines: 0, MemPerMachine: 1}, Job{}); err == nil {
		t.Fatal("want machine validation error")
	}
	if _, _, err := Run(testCluster(1), Job{Name: "nomapper", Input: wordCountInput(1, "x")}); err == nil {
		t.Fatal("want no-mapper error")
	}
	if _, _, err := Run(testCluster(1), Job{Name: "noinput", Mapper: wordCountMapper}); err == nil {
		t.Fatal("want no-input error")
	}
}

func TestMapErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	mapper := MapperFunc(func(_ *TaskContext, _ mrfs.Record, _ Emitter) error { return boom })
	_, _, err := Run(testCluster(1), Job{Name: "err", Input: wordCountInput(1, "x"), Mapper: mapper})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
}

func TestReduceErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	reducer := ReducerFunc(func(_ *TaskContext, _ []byte, _ *Values, _ Emitter) error { return boom })
	_, _, err := Run(testCluster(1), Job{Name: "err", Input: wordCountInput(1, "x"), Mapper: wordCountMapper, Reducer: reducer})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
}

func TestCountersMergeAcrossTasks(t *testing.T) {
	mapper := MapperFunc(func(ctx *TaskContext, rec mrfs.Record, emit Emitter) error {
		ctx.Counters.Inc("records")
		emit.Emit(rec.Key, rec.Val)
		return nil
	})
	_, stats, err := Run(testCluster(3), Job{
		Name: "cnt", Input: wordCountInput(5, "a", "b", "c", "d", "e", "f", "g"), Mapper: mapper,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Counters["records"] != 7 {
		t.Fatalf("counter: got %d want 7", stats.Counters["records"])
	}
}

func TestCountersAPI(t *testing.T) {
	c := NewCounters()
	c.Inc("a")
	c.Add("b", 5)
	if c.Get("a") != 1 || c.Get("b") != 5 || c.Get("zz") != 0 {
		t.Fatal("Get wrong")
	}
	d := NewCounters()
	d.Add("a", 2)
	c.Merge(d)
	if c.Get("a") != 3 {
		t.Fatal("Merge wrong")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names: %v", names)
	}
}

func TestPipelineStats(t *testing.T) {
	var p PipelineStats
	p.Add(JobStats{Name: "j1", TotalSeconds: 2, Counters: map[string]int64{"x": 1}})
	p.Add(JobStats{Name: "j2", TotalSeconds: 3, Counters: map[string]int64{"x": 2}})
	if p.TotalSeconds != 5 {
		t.Fatalf("TotalSeconds: %v", p.TotalSeconds)
	}
	if got := p.Counter("x"); got != 3 {
		t.Fatalf("Counter: %d", got)
	}
	j, ok := p.Job("j2")
	if !ok || j.TotalSeconds != 3 {
		t.Fatal("Job lookup wrong")
	}
	if _, ok := p.Job("nope"); ok {
		t.Fatal("Job should miss")
	}
	var q PipelineStats
	q.Add(JobStats{Name: "j3", TotalSeconds: 1})
	p.Merge(q)
	if p.TotalSeconds != 6 || len(p.Jobs) != 3 {
		t.Fatal("Merge wrong")
	}
	if p.String() == "" {
		t.Fatal("String empty")
	}
}

func TestAssignTasksGreedy(t *testing.T) {
	loads := assignTasks([]float64{5, 1, 1, 1, 1, 1}, 2)
	// greedy by index: 5→m0, then 1s→m1,m1,m1,m1,m1 → [5,5]
	if loads[0] != 5 || loads[1] != 5 {
		t.Fatalf("loads: %v", loads)
	}
	if m := maxOf(loads); m != 5 {
		t.Fatalf("maxOf: %v", m)
	}
}

func TestSideLoadIsFixedOverhead(t *testing.T) {
	table := mrfs.NewDataset("table", 1)
	for i := 0; i < 1000; i++ {
		table.Append(0, mrfs.Record{Key: []byte(fmt.Sprintf("k%04d", i)), Val: []byte("v")})
	}
	run := func(machines int) JobStats {
		cl := NewCluster(machines, 1<<30)
		_, stats, err := Run(cl, Job{
			Name:       "side",
			Input:      wordCountInput(machines, "a b c d e f"),
			Mapper:     wordCountMapper,
			Reducer:    sumReducer,
			SideInputs: map[string]*mrfs.Dataset{"table": table},
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	s2 := run(2)
	s16 := run(16)
	side := float64(table.Bytes()) * DefaultCostModel().SideLoadPerByte
	if s2.MapSeconds < side || s16.MapSeconds < side {
		t.Fatalf("side load missing from map time: %v %v (side=%v)", s2.MapSeconds, s16.MapSeconds, side)
	}
}
