package mr

import (
	"container/heap"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"vsmartjoin/internal/mrfs"
)

// Spill-to-disk shuffle. When ClusterConfig.ShuffleBufferBytes is set, a
// map task's emitter bounds its in-memory buffer: whenever the buffered
// bytes exceed the cap, every partition's buffer is sorted (and combined,
// when the job has a dedicated combiner) and written out as one sorted
// run per (map task, reduce partition) segment file. The reduce stage then
// streams each partition through a k-way merge of its runs instead of
// materializing and sorting the whole partition in memory.
//
// Because runs are sorted by the total order (key, sec, val) and equal
// records are byte-identical, the merged stream of a combiner-less job is
// byte-for-byte the sequence an in-memory concatenate-and-sort produces.
// With a dedicated combiner, combining happens once per spill run, so the
// reducer may see several partial records per key where the in-memory
// path delivers one — shuffle volumes and combine counts then differ, and
// only the final reduce output (and determinism) is identical across the
// two modes.

// spill writes every buffered partition out as sorted segment files and
// resets the in-memory buffers.
func (e *bufEmitter) spill() error {
	job := e.job
	spillIdx := e.spills
	for p := range e.parts {
		rows := e.parts[p]
		if len(rows) == 0 {
			continue
		}
		rows, combined, err := e.prepareRun(rows)
		if err != nil {
			return err
		}
		e.combineOut += combined
		path := filepath.Join(e.dir, fmt.Sprintf("map%04d-spill%04d-part%04d.seg", e.task, spillIdx, p))
		w, err := mrfs.CreateSegment(path)
		if err != nil {
			return fmt.Errorf("mr: job %q map task %d: %w", job.Name, e.task, err)
		}
		for _, r := range rows {
			if err := w.Write(r); err != nil {
				w.Close()
				return fmt.Errorf("mr: job %q map task %d: %w", job.Name, e.task, err)
			}
			e.outBytes += r.Size()
		}
		if err := w.Close(); err != nil {
			return fmt.Errorf("mr: job %q map task %d: %w", job.Name, e.task, err)
		}
		e.runs[p] = append(e.runs[p], path)
		e.spilledRecs += int64(len(rows))
		e.spilledBytes += w.Bytes()
		e.parts[p] = nil
	}
	e.spills++
	e.curBytes = 0
	return nil
}

// prepareRun sorts one partition buffer and, when the job has a dedicated
// combiner, combines it; the returned rows are sorted by (key, sec, val)
// so they form a valid merge run.
func (e *bufEmitter) prepareRun(rows []mrfs.Record) ([]mrfs.Record, int64, error) {
	if e.job.Combiner == nil {
		sort.Slice(rows, func(i, j int) bool { return mrfs.Less(rows[i], rows[j]) })
		return rows, int64(len(rows)), nil
	}
	combined, n, err := combinePartition(e.ctx, e.job, rows)
	if err != nil {
		return nil, 0, err
	}
	sort.Slice(combined, func(i, j int) bool { return mrfs.Less(combined[i], combined[j]) })
	return combined, n, nil
}

// finish completes a map task's shuffle output. With no spill cap it
// combines each partition in place (the historical in-memory behavior);
// under a cap it turns the leftover buffers into sorted in-memory runs so
// the reduce merge can consume them alongside the on-disk segments.
func (e *bufEmitter) finish() error {
	if e.cap <= 0 {
		if e.job.Combiner == nil {
			e.combineOut = e.n
		} else {
			for p := range e.parts {
				combined, n, err := combinePartition(e.ctx, e.job, e.parts[p])
				if err != nil {
					return err
				}
				e.parts[p] = combined
				e.combineOut += n
			}
		}
		for p := range e.parts {
			for _, r := range e.parts[p] {
				e.outBytes += r.Size()
			}
		}
		return nil
	}
	for p := range e.parts {
		rows, combined, err := e.prepareRun(e.parts[p])
		if err != nil {
			return err
		}
		e.combineOut += combined
		e.parts[p] = rows
		for _, r := range rows {
			e.outBytes += r.Size()
		}
	}
	return nil
}

// recordIter streams one sorted run of records.
type recordIter interface {
	next() (mrfs.Record, bool, error)
	close() error
}

// sliceIter iterates an in-memory sorted run.
type sliceIter struct {
	rows []mrfs.Record
	i    int
}

func (s *sliceIter) next() (mrfs.Record, bool, error) {
	if s.i >= len(s.rows) {
		return mrfs.Record{}, false, nil
	}
	r := s.rows[s.i]
	s.i++
	return r, true, nil
}

func (s *sliceIter) close() error { return nil }

// segmentIter iterates a spilled on-disk run, tracking the file bytes read
// so the reduce task can be charged for re-reading spilled data.
type segmentIter struct {
	r    *mrfs.SegmentReader
	read *int64
}

func (s *segmentIter) next() (mrfs.Record, bool, error) {
	before := s.r.Bytes()
	rec, ok, err := s.r.Next()
	*s.read += s.r.Bytes() - before
	return rec, ok, err
}

func (s *segmentIter) close() error { return s.r.Close() }

// mergeItem is one heap entry of the k-way merge.
type mergeItem struct {
	rec mrfs.Record
	src int
	it  recordIter
}

type mergeHeap []mergeItem

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if mrfs.Less(h[i].rec, h[j].rec) {
		return true
	}
	if mrfs.Less(h[j].rec, h[i].rec) {
		return false
	}
	return h[i].src < h[j].src // equal records: stable by run index
}
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(mergeItem)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// mergeIter merges sorted runs into one globally sorted stream.
type mergeIter struct {
	h   mergeHeap
	its []recordIter
}

// newMergeIter primes a merge over the given runs. It takes ownership of
// the iterators; all of them are closed together by close().
func newMergeIter(its []recordIter) (*mergeIter, error) {
	m := &mergeIter{its: its}
	for i, it := range its {
		rec, ok, err := it.next()
		if err != nil {
			m.close()
			return nil, err
		}
		if ok {
			m.h = append(m.h, mergeItem{rec: rec, src: i, it: it})
		}
	}
	heap.Init(&m.h)
	return m, nil
}

func (m *mergeIter) next() (mrfs.Record, bool, error) {
	if len(m.h) == 0 {
		return mrfs.Record{}, false, nil
	}
	top := m.h[0]
	rec, ok, err := top.it.next()
	if err != nil {
		return mrfs.Record{}, false, err
	}
	if ok {
		m.h[0] = mergeItem{rec: rec, src: top.src, it: top.it}
		heap.Fix(&m.h, 0)
	} else {
		heap.Pop(&m.h)
	}
	return top.rec, true, nil
}

func (m *mergeIter) close() error {
	var first error
	for _, it := range m.its {
		if err := it.close(); err != nil && first == nil {
			first = err
		}
	}
	m.its = nil
	return first
}

// maxMergeFanIn caps how many segment files a single merge keeps open at
// once. A heavily spilling job can leave mapTasks × spillRounds runs per
// partition; merging them in one pass would exhaust file descriptors at
// exactly the scales spilling exists for, so wider run sets are first
// compacted into intermediate segments, maxMergeFanIn at a time.
const maxMergeFanIn = 64

// partitionRuns assembles the sorted runs of one reduce partition across
// all finished map tasks: the in-memory leftovers plus every spilled
// segment. Run sets wider than maxMergeFanIn are pre-merged on disk.
// readBytes accumulates the spill I/O performed (segment bytes read, plus
// intermediate merge reads and writes).
func partitionRuns(results []*taskResult, p int, dir string, readBytes *int64) ([]recordIter, error) {
	var paths []string
	var its []recordIter
	for _, res := range results {
		if len(res.parts[p]) > 0 {
			its = append(its, &sliceIter{rows: res.parts[p]})
		}
		paths = append(paths, res.runs[p]...)
	}
	paths, err := compactRuns(dir, p, paths, readBytes)
	if err != nil {
		return nil, err
	}
	for _, path := range paths {
		r, err := mrfs.OpenSegment(path)
		if err != nil {
			for _, it := range its {
				it.close()
			}
			return nil, err
		}
		its = append(its, &segmentIter{r: r, read: readBytes})
	}
	return its, nil
}

// compactRuns repeatedly merges batches of maxMergeFanIn segment files
// into larger intermediate segments until at most maxMergeFanIn remain,
// deleting each batch's inputs to bound disk usage. Merging sorted runs
// yields a sorted run, so the final k-way merge output is unchanged.
func compactRuns(dir string, p int, paths []string, ioBytes *int64) ([]string, error) {
	for round := 0; len(paths) > maxMergeFanIn; round++ {
		var next []string
		for start := 0; start < len(paths); start += maxMergeFanIn {
			end := start + maxMergeFanIn
			if end > len(paths) {
				end = len(paths)
			}
			batch := paths[start:end]
			if len(batch) == 1 {
				next = append(next, batch[0])
				continue
			}
			out := filepath.Join(dir, fmt.Sprintf("compact-part%04d-round%02d-%06d.seg", p, round, start))
			if err := mergeSegments(batch, out, ioBytes); err != nil {
				return nil, err
			}
			next = append(next, out)
		}
		paths = next
	}
	return paths, nil
}

// mergeSegments merges the sorted runs in paths into a single sorted
// segment at outPath, removing the inputs afterwards. The bytes read and
// written are added to ioBytes.
func mergeSegments(paths []string, outPath string, ioBytes *int64) error {
	var read int64
	var its []recordIter
	for _, path := range paths {
		r, err := mrfs.OpenSegment(path)
		if err != nil {
			for _, it := range its {
				it.close()
			}
			return err
		}
		its = append(its, &segmentIter{r: r, read: &read})
	}
	m, err := newMergeIter(its)
	if err != nil {
		return err
	}
	defer m.close()
	w, err := mrfs.CreateSegment(outPath)
	if err != nil {
		return err
	}
	for {
		rec, ok, err := m.next()
		if err != nil {
			w.Close()
			return err
		}
		if !ok {
			break
		}
		if err := w.Write(rec); err != nil {
			w.Close()
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	*ioBytes += read + w.Bytes()
	for _, path := range paths {
		os.Remove(path)
	}
	return nil
}
