package mr

import "fmt"

// PipelineStats aggregates the per-job stats of a multi-step run — the
// quantity plotted on the y-axes of the paper's Figs 4–7.
type PipelineStats struct {
	Jobs         []JobStats
	TotalSeconds float64
}

// Add appends one job's stats.
func (p *PipelineStats) Add(s JobStats) {
	p.Jobs = append(p.Jobs, s)
	p.TotalSeconds += s.TotalSeconds
}

// Merge appends all of another pipeline's stats.
func (p *PipelineStats) Merge(o PipelineStats) {
	p.Jobs = append(p.Jobs, o.Jobs...)
	p.TotalSeconds += o.TotalSeconds
}

// Job returns the stats of the named job, if present.
func (p *PipelineStats) Job(name string) (JobStats, bool) {
	for _, j := range p.Jobs {
		if j.Name == name {
			return j, true
		}
	}
	return JobStats{}, false
}

// Counter sums the named counter over all jobs.
func (p *PipelineStats) Counter(name string) int64 {
	var total int64
	for _, j := range p.Jobs {
		total += j.Counters[name]
	}
	return total
}

func (p *PipelineStats) String() string {
	s := fmt.Sprintf("pipeline: %.1fs simulated over %d jobs\n", p.TotalSeconds, len(p.Jobs))
	for _, j := range p.Jobs {
		s += "  " + j.String() + "\n"
	}
	return s
}
