package mr

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"vsmartjoin/internal/mrfs"
)

func TestEmptyInputProducesEmptyOutput(t *testing.T) {
	out, stats, err := Run(testCluster(2), Job{
		Name:    "empty",
		Input:   mrfs.NewDataset("empty", 3),
		Mapper:  wordCountMapper,
		Reducer: sumReducer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRecords() != 0 {
		t.Fatalf("records: %d", out.NumRecords())
	}
	if stats.TotalSeconds <= 0 {
		t.Fatal("even empty jobs pay startup")
	}
}

func TestMapperEmittingNothing(t *testing.T) {
	mapper := MapperFunc(func(_ *TaskContext, _ mrfs.Record, _ Emitter) error { return nil })
	out, _, err := Run(testCluster(2), Job{
		Name: "silent", Input: wordCountInput(2, "a b c"), Mapper: mapper, Reducer: sumReducer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRecords() != 0 {
		t.Fatalf("records: %d", out.NumRecords())
	}
}

func TestCombinerMayChangeKey(t *testing.T) {
	// A combiner that rewrites keys must still produce correct grouping:
	// the engine re-partitions combiner output.
	mapper := MapperFunc(func(_ *TaskContext, rec mrfs.Record, emit Emitter) error {
		emit.Emit([]byte("temp"), rec.Val)
		return nil
	})
	combiner := ReducerFunc(func(_ *TaskContext, _ []byte, values *Values, emit Emitter) error {
		n := 0
		for {
			if _, ok := values.Next(); !ok {
				break
			}
			n++
		}
		emit.Emit([]byte("final"), []byte(fmt.Sprintf("%d", n)))
		return nil
	})
	reducer := ReducerFunc(func(_ *TaskContext, key []byte, values *Values, emit Emitter) error {
		total := 0
		for {
			v, ok := values.Next()
			if !ok {
				break
			}
			var n int
			fmt.Sscanf(string(v.Val), "%d", &n)
			total += n
		}
		emit.Emit(key, []byte(fmt.Sprintf("%d", total)))
		return nil
	})
	out, _, err := Run(testCluster(3), Job{
		Name: "rekey", Input: wordCountInput(4, "a", "b", "c", "d", "e"),
		Mapper: mapper, Combiner: combiner, Reducer: reducer,
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := out.Sorted()
	if len(recs) != 1 || string(recs[0].Key) != "final" || string(recs[0].Val) != "5" {
		t.Fatalf("rekeyed combine wrong: %v", recs)
	}
}

func TestSingleReducer(t *testing.T) {
	out, _, err := Run(testCluster(4), Job{
		Name: "r1", Input: wordCountInput(4, "a b", "c d", "e f"),
		Mapper: wordCountMapper, Reducer: sumReducer, NumReducers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumPartitions() != 1 || out.NumRecords() != 6 {
		t.Fatalf("single reducer: %d parts %d recs", out.NumPartitions(), out.NumRecords())
	}
}

func TestOutputRestriping(t *testing.T) {
	// Reduce output must be striped across partitions (block placement),
	// not key-grouped: a single hot key's records must not all land in one
	// output partition... they are single records here, so instead check
	// that partitions are balanced when one reducer produces everything.
	mapper := MapperFunc(func(_ *TaskContext, rec mrfs.Record, emit Emitter) error {
		emit.Emit([]byte("k"), rec.Val) // all records to one reducer
		return nil
	})
	reducer := ReducerFunc(func(_ *TaskContext, _ []byte, values *Values, emit Emitter) error {
		i := 0
		for {
			if _, ok := values.Next(); !ok {
				break
			}
			emit.Emit([]byte(fmt.Sprintf("out-%d", i)), nil)
			i++
		}
		return nil
	})
	lines := make([]string, 40)
	for i := range lines {
		lines[i] = "x"
	}
	out, _, err := Run(testCluster(4), Job{
		Name: "stripe", Input: wordCountInput(4, lines...), Mapper: mapper, Reducer: reducer, NumReducers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for p, part := range out.Partitions {
		if len(part) != 10 {
			t.Fatalf("partition %d has %d records, want 10 (striping broken)", p, len(part))
		}
	}
}

func TestReduceDeadlineKillMidTask(t *testing.T) {
	// A reducer that emits quadratically must be killed between groups.
	mapper := MapperFunc(func(_ *TaskContext, rec mrfs.Record, emit Emitter) error {
		emit.Emit(rec.Key, rec.Val)
		return nil
	})
	reducer := ReducerFunc(func(_ *TaskContext, key []byte, _ *Values, emit Emitter) error {
		for i := 0; i < 5000; i++ {
			emit.Emit(key, []byte(strings.Repeat("x", 64)))
		}
		return nil
	})
	cl := testCluster(1)
	cl.Cost.MaxTaskSeconds = 0.5
	lines := make([]string, 50)
	for i := range lines {
		lines[i] = fmt.Sprintf("line-%d", i)
	}
	_, _, err := Run(cl, Job{Name: "boom", Input: wordCountInput(4, lines...), Mapper: mapper, Reducer: reducer, NumReducers: 2})
	if !errors.Is(err, ErrTaskKilled) {
		t.Fatalf("want ErrTaskKilled, got %v", err)
	}
}

func TestMapDeadlineKillMidTask(t *testing.T) {
	mapper := MapperFunc(func(_ *TaskContext, rec mrfs.Record, emit Emitter) error {
		for i := 0; i < 2000; i++ {
			emit.Emit(rec.Key, []byte(strings.Repeat("y", 64)))
		}
		return nil
	})
	cl := testCluster(1)
	cl.Cost.MaxTaskSeconds = 0.5
	lines := make([]string, 64)
	for i := range lines {
		lines[i] = "z"
	}
	_, _, err := Run(cl, Job{Name: "boom", Input: wordCountInput(2, lines...), Mapper: mapper})
	if !errors.Is(err, ErrTaskKilled) {
		t.Fatalf("want ErrTaskKilled, got %v", err)
	}
}

func TestCostProfileReEvaluation(t *testing.T) {
	_, stats, err := Run(testCluster(4), Job{
		Name: "prof", Input: wordCountInput(8, "a b c", "d e f", "a d", "b e"),
		Mapper: wordCountMapper, Reducer: sumReducer, NumReducers: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	cm := DefaultCostModel()
	t500 := stats.Profile.Evaluate(500, cm)
	t1 := stats.Profile.Evaluate(1, cm)
	if t1.Total <= t500.Total {
		t.Fatalf("1 machine should be slower: %v vs %v", t1.Total, t500.Total)
	}
	// Consistency: Run's own stats equal Evaluate at the cluster size.
	tOwn := stats.Profile.Evaluate(4, cm)
	if tOwn.Total != stats.TotalSeconds {
		t.Fatalf("profile inconsistent with stats: %v vs %v", tOwn.Total, stats.TotalSeconds)
	}
	// Re-pricing with a different model changes the number.
	cm2 := cm
	cm2.CPUPerRecord *= 10
	if stats.Profile.Evaluate(4, cm2).Total <= tOwn.Total {
		t.Fatal("re-pricing had no effect")
	}
}

func TestTaskIOCost(t *testing.T) {
	cm := CostModel{TaskOverhead: 1, CPUPerRecord: 2, IOPerByte: 3}
	io := TaskIO{InRecords: 1, OutRecords: 2, InBytes: 4, OutBytes: 5, ExtraIO: 6, ExtraCPU: 7, CombineRecords: 8}
	want := 1 + float64(4+5+6)*3 + float64(1+2+7+8)*2
	if got := io.Cost(cm); got != want {
		t.Fatalf("cost: %v want %v", got, want)
	}
}

func TestValuesBytesAndLen(t *testing.T) {
	in := wordCountInput(1, "k k k")
	reducer := ReducerFunc(func(_ *TaskContext, key []byte, values *Values, emit Emitter) error {
		if values.Len() != 3 {
			t.Errorf("Len: %d", values.Len())
		}
		if values.Bytes() <= 0 {
			t.Errorf("Bytes: %d", values.Bytes())
		}
		emit.Emit(key, nil)
		return nil
	})
	if _, _, err := Run(testCluster(1), Job{Name: "v", Input: in, Mapper: wordCountMapper, Reducer: reducer}); err != nil {
		t.Fatal(err)
	}
}
