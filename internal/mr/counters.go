package mr

import (
	"sort"
	"sync"
)

// Counters is a set of named monotonic counters shared by all tasks of a
// job (the MapReduce counter facility). It is safe for concurrent use.
type Counters struct {
	mu sync.Mutex
	m  map[string]int64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{m: make(map[string]int64)}
}

// Add increments counter name by delta.
func (c *Counters) Add(name string, delta int64) {
	c.mu.Lock()
	c.m[name] += delta
	c.mu.Unlock()
}

// Inc increments counter name by one.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Get returns the current value of counter name.
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// Names returns the sorted counter names.
func (c *Counters) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.m))
	for k := range c.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Merge folds another counter set into c.
func (c *Counters) Merge(other *Counters) {
	for k, v := range other.Snapshot() {
		c.Add(k, v)
	}
}
