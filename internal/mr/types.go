// Package mr is a deterministic in-process MapReduce engine with a cluster
// cost model. Jobs really execute — mappers, dedicated combiners, a
// hash-partitioned shuffle with (key, secondary-key) sorting, and reducers
// over grouped value lists — while the engine accounts the simulated
// wall-clock a shared-nothing cluster of W machines would have spent:
// per-task CPU and I/O, shuffle bytes, side-input loads, slowest-machine
// makespans, per-machine memory budgets, and scheduler kill deadlines.
//
// The programming model follows the paper's §2: map:
// ⟨key1,value1⟩ → (⟨key2,value2⟩)*, reduce: ⟨key2,(value2)*⟩ → (value3)*,
// optional secondary keys (Google MR only), dedicated combiners, side-input
// loading at stage start, and rewindable reduce value lists.
package mr

import (
	"vsmartjoin/internal/mrfs"
)

// Emitter receives the output tuples of a map or reduce function.
type Emitter interface {
	// Emit outputs a ⟨key, value⟩ tuple. Byte slices are copied.
	Emit(key, val []byte)
	// EmitSec outputs a ⟨key, secondary-key, value⟩ tuple. The shuffle
	// delivers each reducer's value list sorted by the secondary key.
	EmitSec(key, sec, val []byte)
}

// Mapper transforms one input record into zero or more output tuples. Map
// functions must be pure and deterministic (the fault-tolerance contract).
type Mapper interface {
	Map(ctx *TaskContext, rec mrfs.Record, emit Emitter) error
}

// MapperFunc adapts a function to the Mapper interface.
type MapperFunc func(ctx *TaskContext, rec mrfs.Record, emit Emitter) error

// Map implements Mapper.
func (f MapperFunc) Map(ctx *TaskContext, rec mrfs.Record, emit Emitter) error {
	return f(ctx, rec, emit)
}

// Reducer folds the value list of one key into zero or more outputs.
// The same interface serves dedicated combiners.
type Reducer interface {
	Reduce(ctx *TaskContext, key []byte, values *Values, emit Emitter) error
}

// ReducerFunc adapts a function to the Reducer interface.
type ReducerFunc func(ctx *TaskContext, key []byte, values *Values, emit Emitter) error

// Reduce implements Reducer.
func (f ReducerFunc) Reduce(ctx *TaskContext, key []byte, values *Values, emit Emitter) error {
	return f(ctx, key, values, emit)
}

// Setupper is an optional extension: Setup runs once per task before the
// first record, after side inputs are loaded. Mappers use it to build
// lookup tables from side inputs.
type Setupper interface {
	Setup(ctx *TaskContext) error
}

// Value is one entry of a reduce value list.
type Value struct {
	Sec []byte // secondary key (empty unless EmitSec was used)
	Val []byte
}

// Values iterates a reduce value list. It supports Rewind, the capability
// the chunked Similarity1 reducer relies on; every rewind re-charges the
// list's I/O cost, modelling the re-scan of spilled data.
type Values struct {
	rows    []Value
	pos     int
	bytes   int64 // encoded size of the list
	rewinds int   // accounted by the engine
}

// Next returns the next value, or ok=false at the end of the list.
func (v *Values) Next() (Value, bool) {
	if v.pos >= len(v.rows) {
		return Value{}, false
	}
	out := v.rows[v.pos]
	v.pos++
	return out, true
}

// Rewind restarts iteration from the beginning of the list. The simulated
// cost of re-reading the list is charged to the task.
func (v *Values) Rewind() {
	v.pos = 0
	v.rewinds++
}

// Len reports the number of values in the list.
func (v *Values) Len() int { return len(v.rows) }

// Bytes reports the encoded size of the list.
func (v *Values) Bytes() int64 { return v.bytes }

// TaskContext carries per-task state: the memory accountant, counters, and
// side inputs. A fresh context is created for every task.
type TaskContext struct {
	// JobName identifies the running job.
	JobName string
	// TaskIndex is the map or reduce task number.
	TaskIndex int
	// Counters aggregates job-wide counters.
	Counters *Counters
	// Side holds the side-input datasets declared by the job, keyed by
	// name. Loading cost and memory are charged automatically.
	Side map[string]*mrfs.Dataset

	memBudget int64
	memUsed   int64
	extraIO   int64 // bytes re-read due to Rewind etc.
	extraCPU  int64 // record-equivalents of in-task compute (ChargeCompute)
}

// Reserve accounts bytes of task-local memory (lookup tables, buffered
// value lists). It fails with ErrOutOfMemory when the per-machine budget
// would be exceeded — the simulation of thrashing/OOM.
func (c *TaskContext) Reserve(bytes int64) error {
	if c.memUsed+bytes > c.memBudget {
		return ErrOutOfMemory
	}
	c.memUsed += bytes
	return nil
}

// Release returns bytes reserved earlier.
func (c *TaskContext) Release(bytes int64) {
	c.memUsed -= bytes
	if c.memUsed < 0 {
		c.memUsed = 0
	}
}

// MemUsed reports the currently reserved memory.
func (c *TaskContext) MemUsed() int64 { return c.memUsed }

// MemBudget reports the per-machine memory budget.
func (c *TaskContext) MemBudget() int64 { return c.memBudget }

// ChargeIO adds extra simulated I/O bytes to the running task (used for
// explicit re-scans beyond the engine's own accounting).
func (c *TaskContext) ChargeIO(bytes int64) { c.extraIO += bytes }

// ChargeCompute adds in-task CPU work equivalent to processing n records —
// for work the engine cannot see from record counts alone, such as the
// pairwise similarity computations inside the VCL kernel reducer.
func (c *TaskContext) ChargeCompute(n int64) { c.extraCPU += n }

// IdentityMapper passes records through unchanged — the paper's
// mapSimilarity2.
type IdentityMapper struct{}

// Map implements Mapper.
func (IdentityMapper) Map(_ *TaskContext, rec mrfs.Record, emit Emitter) error {
	if len(rec.Sec) > 0 {
		emit.EmitSec(rec.Key, rec.Sec, rec.Val)
	} else {
		emit.Emit(rec.Key, rec.Val)
	}
	return nil
}
