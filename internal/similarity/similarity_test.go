package similarity

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vsmartjoin/internal/multiset"
)

func ms(id multiset.ID, pairs ...uint64) multiset.Multiset {
	entries := make([]multiset.Entry, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		entries = append(entries, multiset.Entry{Elem: multiset.Elem(pairs[i]), Count: uint32(pairs[i+1])})
	}
	return multiset.New(id, entries)
}

func randomMS(rng *rand.Rand, id multiset.ID) multiset.Multiset {
	n := rng.Intn(10)
	entries := make([]multiset.Entry, 0, n)
	for i := 0; i < n; i++ {
		entries = append(entries, multiset.Entry{
			Elem:  multiset.Elem(rng.Intn(12)),
			Count: uint32(rng.Intn(6)),
		})
	}
	return multiset.New(id, entries)
}

func TestUniOf(t *testing.T) {
	m := ms(1, 1, 3, 2, 4)
	u := UniOf(m)
	if u.Card != 7 || u.UCard != 2 || u.SumSq != 9+16 {
		t.Fatalf("UniOf wrong: %+v", u)
	}
}

func TestConjOf(t *testing.T) {
	a := ms(1, 1, 3, 2, 4, 9, 1)
	b := ms(2, 2, 2, 9, 5)
	c := ConjOf(a, b)
	if c.SumMin != 2+1 || c.SumProd != 8+5 || c.Common != 2 {
		t.Fatalf("ConjOf wrong: %+v", c)
	}
}

func TestRuzickaKnownValues(t *testing.T) {
	a := ms(1, 1, 2, 2, 2)
	b := ms(2, 1, 1, 2, 3)
	// min: 1+2=3; union: 4+4-3=5
	got := Exact(Ruzicka{}, a, b)
	if math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("ruzicka: got %v want 0.6", got)
	}
}

func TestRuzickaEqualsMinOverMax(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		a, b := randomMS(rng, 1), randomMS(rng, 2)
		inter := multiset.IntersectionCardinality(a, b)
		union := multiset.UnionCardinality(a, b)
		want := 0.0
		if union > 0 {
			want = float64(inter) / float64(union)
		}
		got := Exact(Ruzicka{}, a, b)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d: got %v want %v", trial, got, want)
		}
	}
}

func TestJaccardOnSets(t *testing.T) {
	a := multiset.FromSet(1, []multiset.Elem{1, 2, 3, 4})
	b := multiset.FromSet(2, []multiset.Elem{3, 4, 5, 6})
	got := Exact(Jaccard{}, a, b)
	if math.Abs(got-2.0/6.0) > 1e-12 {
		t.Fatalf("jaccard: got %v want 1/3", got)
	}
	// On sets, Ruzicka == Jaccard.
	if r := Exact(Ruzicka{}, a, b); math.Abs(r-got) > 1e-12 {
		t.Fatalf("ruzicka %v != jaccard %v on sets", r, got)
	}
}

func TestDiceAndCosineOnSets(t *testing.T) {
	a := multiset.FromSet(1, []multiset.Elem{1, 2, 3})
	b := multiset.FromSet(2, []multiset.Elem{2, 3, 4, 5})
	d := Exact(SetDice{}, a, b)
	if math.Abs(d-2*2.0/7.0) > 1e-12 {
		t.Fatalf("set dice: got %v", d)
	}
	c := Exact(SetCosine{}, a, b)
	if math.Abs(c-2.0/math.Sqrt(12)) > 1e-12 {
		t.Fatalf("set cosine: got %v", c)
	}
	// On sets, multiset variants coincide with set variants.
	if md := Exact(MultisetDice{}, a, b); math.Abs(md-d) > 1e-12 {
		t.Fatalf("multiset dice %v != set dice %v on sets", md, d)
	}
	if mc := Exact(MultisetCosine{}, a, b); math.Abs(mc-c) > 1e-12 {
		t.Fatalf("multiset cosine %v != set cosine %v on sets", mc, c)
	}
}

func TestVectorCosine(t *testing.T) {
	a := ms(1, 1, 3, 2, 4)
	b := ms(2, 1, 6, 2, 8)
	// parallel vectors → cosine 1
	got := Exact(VectorCosine{}, a, b)
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("parallel cosine: got %v want 1", got)
	}
	c := ms(3, 9, 5)
	if got := Exact(VectorCosine{}, a, c); got != 0 {
		t.Fatalf("orthogonal cosine: got %v want 0", got)
	}
}

func TestOverlap(t *testing.T) {
	a := ms(1, 1, 2)
	b := ms(2, 1, 5, 9, 3)
	got := Exact(Overlap{}, a, b)
	if math.Abs(got-1) > 1e-12 { // min(2,5)=2, min card=2 → 1
		t.Fatalf("overlap: got %v want 1", got)
	}
}

func TestRangeAndSymmetryAllMeasures(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		a, b := randomMS(rng, 1), randomMS(rng, 2)
		for _, m := range All() {
			sab := Exact(m, a, b)
			sba := Exact(m, b, a)
			if math.Abs(sab-sba) > 1e-12 {
				t.Fatalf("%s not commutative: %v vs %v", m.Name(), sab, sba)
			}
			if sab < 0 || sab > 1+1e-12 {
				t.Fatalf("%s out of range: %v (a=%v b=%v)", m.Name(), sab, a, b)
			}
		}
	}
}

func TestSelfSimilarityIsOne(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		a := randomMS(rng, 1)
		if a.Cardinality() == 0 {
			continue
		}
		for _, m := range All() {
			if got := Exact(m, a, a); math.Abs(got-1) > 1e-12 {
				t.Fatalf("%s self-similarity: got %v want 1 (a=%v)", m.Name(), got, a)
			}
		}
	}
}

func TestEmptyEntities(t *testing.T) {
	empty := ms(1)
	other := ms(2, 1, 1)
	for _, m := range All() {
		if got := Exact(m, empty, other); got != 0 {
			t.Fatalf("%s with empty: got %v want 0", m.Name(), got)
		}
		if got := Exact(m, empty, empty); got != 0 {
			t.Fatalf("%s both empty: got %v want 0", m.Name(), got)
		}
	}
}

func TestPartialsAreAdditive(t *testing.T) {
	f := func(counts []uint8) bool {
		var whole UniStats
		var left, right UniStats
		for i, c := range counts {
			f := uint32(c)%7 + 1
			whole.AccumulateUni(f)
			if i%2 == 0 {
				left.AccumulateUni(f)
			} else {
				right.AccumulateUni(f)
			}
		}
		merged := left
		merged.Add(right)
		return merged == whole
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestConjPartialsAreAdditive(t *testing.T) {
	f := func(pairs []uint16) bool {
		var whole, left, right ConjStats
		for i, p := range pairs {
			fi, fj := uint32(p%13)+1, uint32(p/13%11)+1
			whole.AccumulateConj(fi, fj)
			if i%2 == 0 {
				left.AccumulateConj(fi, fj)
			} else {
				right.AccumulateConj(fi, fj)
			}
		}
		merged := left
		merged.Add(right)
		return merged == whole
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestByName(t *testing.T) {
	for _, m := range All() {
		got, err := ByName(m.Name())
		if err != nil {
			t.Fatalf("ByName(%q): %v", m.Name(), err)
		}
		if got.Name() != m.Name() {
			t.Fatalf("ByName(%q) returned %q", m.Name(), got.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown measure")
	}
}

// Jaccard of expanded sets equals Ruzicka — cross-check at the measure level.
func TestRuzickaViaExpansion(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		a, b := randomMS(rng, 1), randomMS(rng, 2)
		ea := expandToSet(a, 1)
		eb := expandToSet(b, 2)
		want := Exact(Jaccard{}, ea, eb)
		got := Exact(Ruzicka{}, a, b)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d: ruzicka %v vs expanded jaccard %v", trial, got, want)
		}
	}
}

func expandToSet(m multiset.Multiset, id multiset.ID) multiset.Multiset {
	var elems []multiset.Elem
	for _, x := range multiset.Expand(m) {
		// Encode (elem, copy) into one Elem value; alphabet is tiny in tests.
		elems = append(elems, x.Elem*1000+multiset.Elem(x.Copy))
	}
	return multiset.FromSet(id, elems)
}
