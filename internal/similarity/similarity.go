// Package similarity implements the Nominal Similarity Measures (NSMs)
// supported by the join framework, expressed over the two kinds of partial
// results the paper classifies:
//
//   - Unilateral partials Uni(Mi) — computable by scanning one entity.
//     All supported measures draw from UniStats{Card, UCard, SumSq}.
//   - Conjunctive partials Conj(Mi,Mj) — computable by scanning the
//     intersection U(Mi ∩ Mj). All supported measures draw from
//     ConjStats{SumMin, SumProd, Common}.
//
// Both structures are component-wise sums over elements, so they can be
// accumulated incrementally (and by MapReduce combiners). Disjunctive
// partials (needing a scan of the union, e.g. Σ|fi−fj|) are deliberately
// out of scope, exactly as in the paper; see internal/nsm for the formal
// classification.
package similarity

import (
	"fmt"
	"math"

	"vsmartjoin/internal/multiset"
)

// UniStats are the unilateral partial results of one entity.
// They are additive over elements: each element ⟨ak, f⟩ contributes
// (f, 1, f²).
type UniStats struct {
	Card  uint64 // |Mi| = Σ f
	UCard uint64 // |U(Mi)| = Σ 1
	SumSq uint64 // Σ f² (for vector cosine norms)
}

// AccumulateUni folds one element multiplicity into u.
func (u *UniStats) AccumulateUni(f uint32) {
	u.Card += uint64(f)
	u.UCard++
	u.SumSq += uint64(f) * uint64(f)
}

// Add merges another partial UniStats (combiner step).
func (u *UniStats) Add(v UniStats) {
	u.Card += v.Card
	u.UCard += v.UCard
	u.SumSq += v.SumSq
}

// UniOf computes UniStats with a single scan over the entity.
func UniOf(m multiset.Multiset) UniStats {
	var u UniStats
	for _, e := range m.Entries {
		u.AccumulateUni(e.Count)
	}
	return u
}

// ConjStats are the conjunctive partial results of a pair of entities.
// They are additive over shared elements: each shared element with
// multiplicities (fi, fj) contributes (min(fi,fj), fi·fj, 1).
type ConjStats struct {
	SumMin  uint64 // |Mi ∩ Mj| = Σ min(fi,fj)
	SumProd uint64 // Σ fi·fj (dot product)
	Common  uint64 // |U(Mi) ∩ U(Mj)| = Σ 1
}

// AccumulateConj folds one shared element into c.
func (c *ConjStats) AccumulateConj(fi, fj uint32) {
	if fi < fj {
		c.SumMin += uint64(fi)
	} else {
		c.SumMin += uint64(fj)
	}
	c.SumProd += uint64(fi) * uint64(fj)
	c.Common++
}

// Add merges another partial ConjStats (combiner step).
func (c *ConjStats) Add(d ConjStats) {
	c.SumMin += d.SumMin
	c.SumProd += d.SumProd
	c.Common += d.Common
}

// ConjOf computes ConjStats with a merge scan over the two entities'
// intersection.
func ConjOf(a, b multiset.Multiset) ConjStats {
	var c ConjStats
	i, j := 0, 0
	for i < len(a.Entries) && j < len(b.Entries) {
		switch {
		case a.Entries[i].Elem < b.Entries[j].Elem:
			i++
		case a.Entries[i].Elem > b.Entries[j].Elem:
			j++
		default:
			c.AccumulateConj(a.Entries[i].Count, b.Entries[j].Count)
			i++
			j++
		}
	}
	return c
}

// Measure is a commutative Nominal Similarity Measure computable from
// unilateral and conjunctive partial results — the F() of the paper's
// Eqn 1, specialized to the generic partials above.
type Measure interface {
	// Name is a stable identifier ("ruzicka", "dice", ...).
	Name() string
	// Sim combines the partials into the similarity value in [0, 1].
	Sim(a, b UniStats, c ConjStats) float64
}

// Exact computes Sim(a, b) directly from the two entities. It is the
// reference implementation used by sequential algorithms and tests.
func Exact(m Measure, a, b multiset.Multiset) float64 {
	return m.Sim(UniOf(a), UniOf(b), ConjOf(a, b))
}

// Ruzicka is the multiset generalization of Jaccard:
// |Mi∩Mj| / |Mi∪Mj| = Σmin / (|Mi|+|Mj|−Σmin).
type Ruzicka struct{}

func (Ruzicka) Name() string { return "ruzicka" }

func (Ruzicka) Sim(a, b UniStats, c ConjStats) float64 {
	denom := a.Card + b.Card - c.SumMin
	if denom == 0 {
		return 0
	}
	return float64(c.SumMin) / float64(denom)
}

// Jaccard is the set Jaccard similarity |U(Si)∩U(Sj)| / |U(Si)∪U(Sj)|,
// computed on underlying sets (multiplicities ignored).
type Jaccard struct{}

func (Jaccard) Name() string { return "jaccard" }

func (Jaccard) Sim(a, b UniStats, c ConjStats) float64 {
	denom := a.UCard + b.UCard - c.Common
	if denom == 0 {
		return 0
	}
	return float64(c.Common) / float64(denom)
}

// MultisetDice is 2·|Mi∩Mj| / (|Mi|+|Mj|).
type MultisetDice struct{}

func (MultisetDice) Name() string { return "dice" }

func (MultisetDice) Sim(a, b UniStats, c ConjStats) float64 {
	denom := a.Card + b.Card
	if denom == 0 {
		return 0
	}
	return 2 * float64(c.SumMin) / float64(denom)
}

// SetDice is 2·|U∩| / (|U(Si)|+|U(Sj)|).
type SetDice struct{}

func (SetDice) Name() string { return "set-dice" }

func (SetDice) Sim(a, b UniStats, c ConjStats) float64 {
	denom := a.UCard + b.UCard
	if denom == 0 {
		return 0
	}
	return 2 * float64(c.Common) / float64(denom)
}

// MultisetCosine is |Mi∩Mj| / sqrt(|Mi|·|Mj|), the multiset cosine of the
// paper (via the expanded set representation).
type MultisetCosine struct{}

func (MultisetCosine) Name() string { return "cosine" }

func (MultisetCosine) Sim(a, b UniStats, c ConjStats) float64 {
	denom := math.Sqrt(float64(a.Card) * float64(b.Card))
	if denom == 0 {
		return 0
	}
	return float64(c.SumMin) / denom
}

// SetCosine is |U∩| / sqrt(|U(Si)|·|U(Sj)|).
type SetCosine struct{}

func (SetCosine) Name() string { return "set-cosine" }

func (SetCosine) Sim(a, b UniStats, c ConjStats) float64 {
	denom := math.Sqrt(float64(a.UCard) * float64(b.UCard))
	if denom == 0 {
		return 0
	}
	return float64(c.Common) / denom
}

// VectorCosine is the standard vector cosine Σ fi·fj / (‖Mi‖₂·‖Mj‖₂),
// treating multiplicities as non-negative coordinates.
type VectorCosine struct{}

func (VectorCosine) Name() string { return "vector-cosine" }

func (VectorCosine) Sim(a, b UniStats, c ConjStats) float64 {
	// √(x·y), not √x·√y: the single correctly-rounded square root makes
	// Sim(a,a) exactly 1 (√(s²) == s for any float s), and the product
	// cannot overflow float64 (each factor is at most 2⁶⁴ ≈ 1.8e19).
	denom := math.Sqrt(float64(a.SumSq) * float64(b.SumSq))
	if denom == 0 {
		return 0
	}
	return float64(c.SumProd) / denom
}

// Overlap is |Mi∩Mj| / min(|Mi|,|Mj|), the multiset overlap coefficient.
type Overlap struct{}

func (Overlap) Name() string { return "overlap" }

func (Overlap) Sim(a, b UniStats, c ConjStats) float64 {
	denom := min(a.Card, b.Card)
	if denom == 0 {
		return 0
	}
	return float64(c.SumMin) / float64(denom)
}

// ByName resolves a measure identifier to its implementation.
func ByName(name string) (Measure, error) {
	switch name {
	case "ruzicka":
		return Ruzicka{}, nil
	case "jaccard":
		return Jaccard{}, nil
	case "dice":
		return MultisetDice{}, nil
	case "set-dice":
		return SetDice{}, nil
	case "cosine":
		return MultisetCosine{}, nil
	case "set-cosine":
		return SetCosine{}, nil
	case "vector-cosine":
		return VectorCosine{}, nil
	case "overlap":
		return Overlap{}, nil
	default:
		return nil, fmt.Errorf("similarity: unknown measure %q", name)
	}
}

// All returns every built-in measure, for table-driven tests.
func All() []Measure {
	return []Measure{
		Ruzicka{}, Jaccard{}, MultisetDice{}, SetDice{},
		MultisetCosine{}, SetCosine{}, VectorCosine{}, Overlap{},
	}
}
