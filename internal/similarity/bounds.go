package similarity

import "math"

// This file derives the pruning bounds the online index (internal/index)
// uses to skip candidates without computing conjunctive partials. Both
// bounds are functions of unilateral stats only, so an inverted index can
// evaluate them from its per-entity UniStats table before touching the
// entities themselves.
//
// Every bound below follows from two facts about ConjStats:
//
//   - SumMin ≤ min(a.Card, b.Card), Common ≤ min(a.UCard, b.UCard), and
//     SumProd ≤ √(a.SumSq · b.SumSq) (Cauchy–Schwarz);
//   - every supported measure is nondecreasing in its conjunctive
//     component, so substituting the component's maximum yields an upper
//     bound on the similarity.
//
// Unknown measures get the trivial bound 1, which disables pruning but
// never loses results.

// SimUpperBound returns an upper bound on m.Sim(a, b, c) over every
// ConjStats c consistent with the unilateral stats — the index's length
// (size) filter: if the bound is below the threshold, no overlap pattern
// can make the pair similar enough.
func SimUpperBound(m Measure, a, b UniStats) float64 {
	switch m.(type) {
	case Ruzicka:
		// SumMin ≤ min(Card); denominator ≥ max(Card).
		return ratio(min(a.Card, b.Card), max(a.Card, b.Card))
	case Jaccard:
		return ratio(min(a.UCard, b.UCard), max(a.UCard, b.UCard))
	case MultisetDice:
		return 2 * ratio(min(a.Card, b.Card), a.Card+b.Card)
	case SetDice:
		return 2 * ratio(min(a.UCard, b.UCard), a.UCard+b.UCard)
	case MultisetCosine:
		// SumMin/√(ab) ≤ min/√(ab) = √(min/max).
		return math.Sqrt(ratio(min(a.Card, b.Card), max(a.Card, b.Card)))
	case SetCosine:
		return math.Sqrt(ratio(min(a.UCard, b.UCard), max(a.UCard, b.UCard)))
	case VectorCosine:
		// Norms alone cannot bound the cosine below 1: any two parallel
		// vectors have cosine 1 regardless of their lengths.
		if a.SumSq == 0 || b.SumSq == 0 {
			return 0
		}
		return 1
	case Overlap:
		// A candidate fully contained in the other entity reaches 1 at any
		// size, so sizes prune nothing beyond emptiness.
		if a.Card == 0 || b.Card == 0 {
			return 0
		}
		return 1
	default:
		return 1
	}
}

// ResidualUpperBound returns an upper bound on Sim(q, c) over every
// candidate c whose common elements with q all lie in a residual portion
// of q with stats r (r ≤ q component-wise) — the index's prefix filter.
// Probing q's posting lists in decreasing-multiplicity order, the index
// may stop as soon as the bound for the unprobed tail drops below the
// threshold: any entity not yet seen overlaps q only inside that tail.
func ResidualUpperBound(m Measure, q, r UniStats) float64 {
	switch m.(type) {
	case Ruzicka:
		// SumMin ≤ r.Card and c.Card ≥ SumMin make the denominator ≥ q.Card.
		return ratio(r.Card, q.Card)
	case Jaccard:
		return ratio(r.UCard, q.UCard)
	case MultisetDice:
		// 2x/(q.Card+x) is increasing in x = SumMin ≤ r.Card.
		return 2 * ratio(r.Card, q.Card+r.Card)
	case SetDice:
		return 2 * ratio(r.UCard, q.UCard+r.UCard)
	case MultisetCosine:
		// x/√(q.Card·x) = √(x/q.Card) is increasing in x = SumMin ≤ r.Card.
		return math.Sqrt(ratio(r.Card, q.Card))
	case SetCosine:
		return math.Sqrt(ratio(r.UCard, q.UCard))
	case VectorCosine:
		// Cauchy–Schwarz over the residual coordinates:
		// SumProd ≤ √(r.SumSq)·‖c‖, so Sim ≤ √(r.SumSq/q.SumSq).
		return math.Sqrt(ratio(r.SumSq, q.SumSq))
	case Overlap:
		// A candidate of cardinality SumMin ≤ r.Card still reaches 1.
		if r.Card == 0 || q.Card == 0 {
			return 0
		}
		return 1
	default:
		return 1
	}
}

// Sub removes a previously accumulated partial from u (the residual update
// of the index's prefix probe). Callers must only subtract stats that were
// accumulated into u.
func (u *UniStats) Sub(v UniStats) {
	u.Card -= v.Card
	u.UCard -= v.UCard
	u.SumSq -= v.SumSq
}

func ratio(num, denom uint64) float64 {
	if denom == 0 {
		return 0
	}
	return float64(num) / float64(denom)
}
