package similarity

// Property tests over randomized multisets: the algebraic invariants every
// measure must satisfy, agreement between the streamed partial-result path
// (UniStats/ConjStats accumulated element-wise, merged combiner-style) and
// the Exact reference, and soundness of the pruning bounds the online
// index relies on.

import (
	"math"
	"math/rand"
	"testing"

	"vsmartjoin/internal/multiset"
)

func randomMultiset(rng *rand.Rand, id multiset.ID, alphabet, maxLen, maxCount int) multiset.Multiset {
	l := 1 + rng.Intn(maxLen)
	entries := make([]multiset.Entry, l)
	for j := range entries {
		entries[j] = multiset.Entry{
			Elem:  multiset.Elem(rng.Intn(alphabet)),
			Count: uint32(1 + rng.Intn(maxCount)),
		}
	}
	return multiset.New(id, entries)
}

// pairCases yields overlapping and disjoint random pairs.
func pairCases(rng *rand.Rand, n int) [][2]multiset.Multiset {
	out := make([][2]multiset.Multiset, 0, n)
	for i := 0; i < n; i++ {
		a := randomMultiset(rng, 1, 24, 12, 6)
		var b multiset.Multiset
		if i%4 == 0 {
			// Force disjointness by shifting the alphabet.
			b = randomMultiset(rng, 2, 24, 12, 6)
			for j := range b.Entries {
				b.Entries[j].Elem += 1000
			}
		} else {
			b = randomMultiset(rng, 2, 24, 12, 6)
		}
		out = append(out, [2]multiset.Multiset{a, b})
	}
	return out
}

func TestPropertySymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, pair := range pairCases(rng, 200) {
		a, b := pair[0], pair[1]
		for _, m := range All() {
			if sab, sba := Exact(m, a, b), Exact(m, b, a); sab != sba {
				t.Fatalf("%s: Sim(a,b)=%v != Sim(b,a)=%v\na=%v\nb=%v", m.Name(), sab, sba, a, b)
			}
		}
	}
}

func TestPropertySelfSimilarityIsOne(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for i := 0; i < 100; i++ {
		a := randomMultiset(rng, 1, 20, 10, 5)
		for _, m := range All() {
			if sim := Exact(m, a, a); sim != 1 {
				t.Fatalf("%s: Sim(a,a)=%v for nonempty %v", m.Name(), sim, a)
			}
		}
	}
	// Empty sets define similarity 0, not NaN.
	empty := multiset.Multiset{ID: 9}
	for _, m := range All() {
		if sim := Exact(m, empty, empty); sim != 0 || math.IsNaN(sim) {
			t.Fatalf("%s: Sim(∅,∅)=%v", m.Name(), sim)
		}
	}
}

func TestPropertyRange(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for _, pair := range pairCases(rng, 300) {
		a, b := pair[0], pair[1]
		for _, m := range All() {
			sim := Exact(m, a, b)
			if math.IsNaN(sim) || sim < 0 || sim > 1+1e-12 {
				t.Fatalf("%s: Sim=%v outside [0,1]\na=%v\nb=%v", m.Name(), sim, a, b)
			}
		}
	}
}

// streamedSim recomputes Sim through the incremental path: unilateral
// stats accumulated one element at a time and merged from two halves (the
// combiner step), conjunctive stats accumulated per shared element.
func streamedSim(m Measure, a, b multiset.Multiset) float64 {
	stream := func(s multiset.Multiset) UniStats {
		var lo, hi UniStats
		for i, e := range s.Entries {
			if i%2 == 0 {
				lo.AccumulateUni(e.Count)
			} else {
				hi.AccumulateUni(e.Count)
			}
		}
		lo.Add(hi)
		return lo
	}
	var lo, hi ConjStats
	i := 0
	for _, ea := range a.Entries {
		if c := b.Count(ea.Elem); c > 0 {
			if i%2 == 0 {
				lo.AccumulateConj(ea.Count, c)
			} else {
				hi.AccumulateConj(ea.Count, c)
			}
			i++
		}
	}
	lo.Add(hi)
	return m.Sim(stream(a), stream(b), lo)
}

func TestPropertyStreamedAgreesWithExact(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	for _, pair := range pairCases(rng, 200) {
		a, b := pair[0], pair[1]
		for _, m := range All() {
			exact, streamed := Exact(m, a, b), streamedSim(m, a, b)
			if exact != streamed {
				t.Fatalf("%s: streamed %v != exact %v\na=%v\nb=%v", m.Name(), streamed, exact, a, b)
			}
		}
	}
}

// TestPropertyUpperBoundSound: the length filter may never cut below the
// true similarity.
func TestPropertyUpperBoundSound(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	for _, pair := range pairCases(rng, 300) {
		a, b := pair[0], pair[1]
		ua, ub := UniOf(a), UniOf(b)
		for _, m := range All() {
			sim, bound := Exact(m, a, b), SimUpperBound(m, ua, ub)
			if sim > bound+1e-12 {
				t.Fatalf("%s: Sim=%v exceeds SimUpperBound=%v\na=%v\nb=%v", m.Name(), sim, bound, a, b)
			}
		}
	}
}

// TestPropertyResidualBoundSound: for any split of the query into a probed
// prefix and an unprobed residual, a candidate overlapping only the
// residual may never exceed ResidualUpperBound — the prefix filter's
// correctness condition.
func TestPropertyResidualBoundSound(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	for trial := 0; trial < 200; trial++ {
		q := randomMultiset(rng, 1, 20, 12, 6)
		cut := rng.Intn(len(q.Entries) + 1)
		// Residual = entries[cut:]; a candidate confined to it.
		var residual UniStats
		for _, e := range q.Entries[cut:] {
			residual.AccumulateUni(e.Count)
		}
		entries := make([]multiset.Entry, 0, len(q.Entries)-cut+2)
		for _, e := range q.Entries[cut:] {
			// Candidate multiplicities vary both ways around the query's.
			c := uint32(rng.Intn(int(e.Count)*2) + 1)
			entries = append(entries, multiset.Entry{Elem: e.Elem, Count: c})
		}
		// Extra candidate-only elements outside the query alphabet.
		for j := 0; j < rng.Intn(3); j++ {
			entries = append(entries, multiset.Entry{
				Elem:  multiset.Elem(5000 + rng.Intn(10)),
				Count: uint32(1 + rng.Intn(6)),
			})
		}
		cand := multiset.New(2, entries)
		qUni := UniOf(q)
		for _, m := range All() {
			sim, bound := Exact(m, q, cand), ResidualUpperBound(m, qUni, residual)
			if sim > bound+1e-12 {
				t.Fatalf("%s: candidate confined to residual has Sim=%v > bound=%v\nq=%v cut=%d\ncand=%v",
					m.Name(), sim, bound, q, cut, cand)
			}
		}
	}
}

// TestUniStatsSub pins the residual-update arithmetic.
func TestUniStatsSub(t *testing.T) {
	var total, part UniStats
	for _, c := range []uint32{3, 1, 4, 1, 5} {
		total.AccumulateUni(c)
	}
	for _, c := range []uint32{4, 1} {
		part.AccumulateUni(c)
	}
	got := total
	got.Sub(part)
	want := UniStats{Card: 3 + 1 + 5, UCard: 3, SumSq: 9 + 1 + 25}
	if got != want {
		t.Fatalf("sub: %+v want %+v", got, want)
	}
}

// TestBoundsUnknownMeasureDefaultsToOne: unknown measures must disable
// pruning, not break it.
func TestBoundsUnknownMeasureDefaultsToOne(t *testing.T) {
	type custom struct{ Measure }
	m := custom{Ruzicka{}}
	u := UniStats{Card: 3, UCard: 2, SumSq: 5}
	if SimUpperBound(m, u, u) != 1 || ResidualUpperBound(m, u, u) != 1 {
		t.Fatal("unknown measure must bound at 1")
	}
}
