package build

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"vsmartjoin/internal/multiset"
	"vsmartjoin/internal/shard"
	"vsmartjoin/internal/wal"
)

func corpus(n int) []Entity {
	out := make([]Entity, n)
	for i := range out {
		out[i] = Entity{
			ID:   uint64(i + 1),
			Name: fmt.Sprintf("entity-%03d", i),
			Elements: []wal.Element{
				{Name: fmt.Sprintf("e%d", i%7), Count: uint32(i%3 + 1)},
				{Name: "shared", Count: 1},
			},
		}
	}
	return out
}

// loadShard reopens one shard dir through the wal and returns its
// records, separating snapshot body from WAL tail.
func loadShard(t *testing.T, dir string, measure string) (snap, tail []wal.Record) {
	t.Helper()
	l, err := wal.Open(dir, measure,
		func(rec wal.Record) error { snap = append(snap, rec); return nil },
		func(rec wal.Record) error { tail = append(tail, rec); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return snap, tail
}

func TestBuildWritesLoadableShards(t *testing.T) {
	const shards = 4
	ents := corpus(37)
	dir := filepath.Join(t.TempDir(), "idx")
	stats, err := Build(Entities(ents), Options{Dir: dir, Measure: "ruzicka", Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Entities != int64(len(ents)) || stats.Shards != shards || stats.Deduped != 0 {
		t.Fatalf("stats %+v", stats)
	}
	if n, err := wal.CountShardDirs(dir); err != nil || n != shards {
		t.Fatalf("CountShardDirs = %d, %v", n, err)
	}

	byID := map[uint64]Entity{}
	for _, e := range ents {
		byID[e.ID] = e
	}
	var total int
	for i := 0; i < shards; i++ {
		snap, tail := loadShard(t, filepath.Join(dir, wal.ShardDirName(i)), "ruzicka")
		if len(tail) != 0 {
			t.Fatalf("shard %d has %d WAL records to replay, want 0", i, len(tail))
		}
		var prev uint64
		for _, rec := range snap {
			if rec.Op != wal.OpAdd {
				t.Fatalf("shard %d: op %d in snapshot", i, rec.Op)
			}
			if rec.ID <= prev {
				t.Fatalf("shard %d: IDs not ascending (%d after %d)", i, rec.ID, prev)
			}
			prev = rec.ID
			if got := shard.ShardOf(multiset.ID(rec.ID), shards); got != i {
				t.Fatalf("entity %d in shard %d, routes to %d", rec.ID, i, got)
			}
			want := byID[rec.ID]
			if rec.Entity != want.Name || !reflect.DeepEqual(rec.Elements, want.Elements) {
				t.Fatalf("entity %d round-trip: %+v want %+v", rec.ID, rec, want)
			}
		}
		total += len(snap)
	}
	if total != len(ents) {
		t.Fatalf("shards hold %d entities, corpus has %d", total, len(ents))
	}
}

func TestBuildEmptyCorpus(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "idx")
	stats, err := Build(nil, Options{Dir: dir, Measure: "jaccard", Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Entities != 0 {
		t.Fatalf("stats %+v", stats)
	}
	// Every shard dir exists with an empty, loadable snapshot: the
	// layout records the shard count even when no entity hashed there.
	for i := 0; i < 3; i++ {
		snap, tail := loadShard(t, filepath.Join(dir, wal.ShardDirName(i)), "jaccard")
		if len(snap) != 0 || len(tail) != 0 {
			t.Fatalf("shard %d: %d snap + %d tail records", i, len(snap), len(tail))
		}
	}
}

func TestBuildDedupsByID(t *testing.T) {
	ents := []Entity{
		{ID: 1, Name: "a", Elements: []wal.Element{{Name: "x", Count: 1}}},
		{ID: 2, Name: "b", Elements: []wal.Element{{Name: "x", Count: 2}}},
		{ID: 1, Name: "a", Elements: []wal.Element{{Name: "y", Count: 3}}},
	}
	dir := filepath.Join(t.TempDir(), "idx")
	stats, err := Build(Entities(ents), Options{Dir: dir, Measure: "ruzicka", Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Entities != 2 || stats.Deduped != 1 {
		t.Fatalf("stats %+v", stats)
	}
	snap, _ := loadShard(t, filepath.Join(dir, wal.ShardDirName(0)), "ruzicka")
	if len(snap) != 2 || snap[0].ID != 1 || snap[1].ID != 2 {
		t.Fatalf("snapshot %+v", snap)
	}
	// The LAST occurrence of ID 1 wins — upsert semantics.
	if len(snap[0].Elements) != 1 || snap[0].Elements[0] != (wal.Element{Name: "y", Count: 3}) {
		t.Fatalf("dedup kept the wrong occurrence: %+v", snap[0])
	}
}

func TestBuildRefusals(t *testing.T) {
	ents := corpus(3)
	if _, err := Build(Entities(ents), Options{Measure: "ruzicka", Shards: 1}); err == nil {
		t.Fatal("missing dir accepted")
	}
	if _, err := Build(Entities(ents), Options{Dir: t.TempDir() + "/x", Shards: 1}); err == nil {
		t.Fatal("missing measure accepted")
	}
	if _, err := Build(Entities(ents), Options{Dir: t.TempDir() + "/x", Measure: "ruzicka"}); err == nil {
		t.Fatal("zero shards accepted")
	}
	// ID 0 is reserved; the job must fail and leave no index behind.
	dir := filepath.Join(t.TempDir(), "idx")
	if _, err := Build(Entities([]Entity{{ID: 0, Name: "zero"}}), Options{Dir: dir, Measure: "ruzicka", Shards: 1}); err == nil {
		t.Fatal("ID 0 accepted")
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("failed build left output behind: %v", err)
	}
	// Occupied target.
	occupied := t.TempDir()
	os.WriteFile(filepath.Join(occupied, "f"), []byte("x"), 0o644)
	if _, err := Build(Entities(ents), Options{Dir: occupied, Measure: "ruzicka", Shards: 1}); err == nil {
		t.Fatal("non-empty target accepted")
	}
}

// TestBuildSpills pins that the builder inherits the engine's
// spill-to-disk shuffle: a tiny buffer must force spilling and still
// produce byte-identical shard files.
func TestBuildSpills(t *testing.T) {
	ents := corpus(64)
	plain := filepath.Join(t.TempDir(), "plain")
	if _, err := Build(Entities(ents), Options{Dir: plain, Measure: "ruzicka", Shards: 2}); err != nil {
		t.Fatal(err)
	}
	spilled := filepath.Join(t.TempDir(), "spilled")
	// One simulated machine → few map tasks → enough records per task
	// to overflow a 256-byte buffer.
	stats, err := Build(Entities(ents), Options{Dir: spilled, Measure: "ruzicka", Shards: 2, Machines: 1, ShuffleBufferBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Job.SpilledBytes == 0 {
		t.Fatal("256-byte buffer did not spill")
	}
	for i := 0; i < 2; i++ {
		a, err := os.ReadFile(filepath.Join(plain, wal.ShardDirName(i), wal.SnapName(1)))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(spilled, wal.ShardDirName(i), wal.SnapName(1)))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("shard %d differs between spilled and in-memory shuffle", i)
		}
	}
}
