// Package build is the offline bulk index builder: it turns a corpus of
// entities into a ready-to-open durable index directory without ever
// constructing an in-memory inverted index or appending per-record WAL
// frames — the cold-start path the paper's architecture implies, where
// heavy work runs as a scalable batch job and the serving stage merely
// loads its output.
//
// The corpus streams through the internal/mr machinery as one job:
// mappers route every entity to its shard with the same splitmix64 hash
// internal/shard uses at serving time (shard.ShardOf — batch and online
// MUST agree on routing, since the per-shard files are only loadable by
// the shard that owns their entities), the shuffle groups per shard
// with (entity ID, input occurrence) secondary keys so each reduce
// group arrives ID-sorted with repeats in upsert order, and reducers
// stream their group straight into a generation-1 snapshot file
// (internal/wal.WriteSnapshot) — sorted, deduplicated, measure-stamped. Because the shuffle is the engine's,
// the builder inherits its spill-to-disk mode: a ShuffleBufferBytes cap
// bounds builder memory on corpora that outgrow it.
//
// The whole output directory materializes under a temporary name and is
// renamed into place only when every shard file is complete, so an
// interrupted build can never be mistaken for an index.
package build

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"vsmartjoin/internal/codec"
	"vsmartjoin/internal/mr"
	"vsmartjoin/internal/mrfs"
	"vsmartjoin/internal/multiset"
	"vsmartjoin/internal/shard"
	"vsmartjoin/internal/wal"
)

// Entity is one corpus entry: the entity ID the serving index will route
// and tie-break by, its name, and its element multiplicities.
type Entity struct {
	ID       uint64
	Name     string
	Elements []wal.Element
}

// Source yields the corpus one entity at a time (stopping if yield
// returns false), so the caller never materializes an intermediate
// slice of Entities: each yield is encoded straight into a job-input
// record. That encoded input is the one full copy the build holds —
// the in-process mr engine takes a materialized dataset, so peak
// memory is the caller's corpus plus its encoded form, with only the
// shuffle itself bounded by Options.ShuffleBufferBytes. The same ID
// may be yielded more than once: occurrences are sequence-stamped and
// the last one wins — upsert semantics, resolved in the reducer.
type Source func(yield func(Entity) bool)

// Entities adapts an in-memory slice to a Source.
func Entities(ents []Entity) Source {
	return func(yield func(Entity) bool) {
		for _, e := range ents {
			if !yield(e) {
				return
			}
		}
	}
}

// Options configures a bulk build.
type Options struct {
	// Dir is the output index directory. It must not exist yet (or be an
	// empty directory): the builder refuses to overwrite an index.
	Dir string
	// Measure is the canonical similarity measure name stamped into every
	// shard snapshot; opening under a different measure is refused.
	Measure string
	// Shards is the number of hash-partitioned shards to write (>= 1).
	// It becomes part of the on-disk layout.
	Shards int
	// Machines is the simulated cluster width of the build job
	// (default 16, like AllPairs).
	Machines int
	// MemPerMachine is the per-machine memory budget in bytes
	// (default 1 GiB).
	MemPerMachine int64
	// ShuffleBufferBytes caps per-map-task shuffle memory before sorted
	// runs spill to disk (0 = all in memory), exactly as in
	// vsmartjoin.Options.
	ShuffleBufferBytes int64
}

// Stats reports what a build wrote.
type Stats struct {
	// Entities is the number of entities written across all shards, after
	// deduplication.
	Entities int64
	// Deduped counts input occurrences superseded because a later one
	// carried the same ID — the upsert collapses of a corpus that
	// observes an entity more than once.
	Deduped int64
	// Shards is the shard count written.
	Shards int
	// Job is the cost accounting of the underlying MapReduce run.
	Job mr.JobStats
}

const (
	counterEntities = "build.entities"
	counterDeduped  = "build.deduped"
)

// Build writes the corpus as a durable index directory at opts.Dir:
// one shard-NNN subdirectory per shard, each holding a generation-1
// snapshot ready for vsmartjoin.OpenIndex. Every shard directory is
// written, including empty ones — the shard count is the routing
// function, so the layout must record it exactly.
func Build(src Source, opts Options) (Stats, error) {
	var stats Stats
	if opts.Dir == "" {
		return stats, errors.New("build: no output directory")
	}
	if opts.Measure == "" {
		return stats, errors.New("build: no measure name")
	}
	if opts.Shards < 1 {
		return stats, fmt.Errorf("build: shard count %d < 1", opts.Shards)
	}
	machines := opts.Machines
	if machines == 0 {
		machines = 16
	}
	mem := opts.MemPerMachine
	if mem == 0 {
		mem = 1 << 30
	}
	if err := checkTarget(opts.Dir); err != nil {
		return stats, err
	}
	tmp := opts.Dir + ".building"
	if err := os.RemoveAll(tmp); err != nil {
		return stats, fmt.Errorf("build: %w", err)
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return stats, fmt.Errorf("build: %w", err)
	}
	defer os.RemoveAll(tmp) // no-op after the final rename

	input := encodeInput(src, 4*machines)
	cluster := mr.NewCluster(machines, mem)
	cluster.ShuffleBufferBytes = opts.ShuffleBufferBytes
	_, jobStats, err := mr.Run(cluster, mr.Job{
		Name:              "bulk-index-build",
		Input:             input,
		Mapper:            mr.MapperFunc(makeShardMapper(opts.Shards)),
		Reducer:           mr.ReducerFunc(makeSnapshotReducer(tmp, opts.Measure, opts.Shards)),
		NumReducers:       opts.Shards,
		UsesSecondaryKeys: true, // reduce groups arrive ID-sorted
		OutputName:        "bulk-index-manifest",
	})
	if err != nil {
		return stats, fmt.Errorf("build: %w", err)
	}

	// Shards no entity hashed to produced no reduce group; their
	// (empty) snapshots are still part of the layout.
	for i := 0; i < opts.Shards; i++ {
		dir := filepath.Join(tmp, wal.ShardDirName(i))
		if _, err := os.Stat(filepath.Join(dir, wal.SnapName(1))); err == nil {
			continue
		}
		if err := wal.WriteSnapshot(dir, 1, opts.Measure, func(func(wal.Record) error) error { return nil }); err != nil {
			return stats, fmt.Errorf("build: %w", err)
		}
	}

	// The index only appears under its final name once complete.
	if err := os.Remove(opts.Dir); err != nil && !errors.Is(err, os.ErrNotExist) {
		return stats, fmt.Errorf("build: %w", err) // the pre-checked empty dir
	}
	if err := os.Rename(tmp, opts.Dir); err != nil {
		return stats, fmt.Errorf("build: %w", err)
	}

	stats.Entities = jobStats.Counters[counterEntities]
	stats.Deduped = jobStats.Counters[counterDeduped]
	stats.Shards = opts.Shards
	stats.Job = jobStats
	return stats, nil
}

// checkTarget refuses any existing, non-empty output path.
func checkTarget(dir string) error {
	st, err := os.Stat(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("build: %w", err)
	}
	if !st.IsDir() {
		return fmt.Errorf("build: %s exists and is not a directory", dir)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("build: %w", err)
	}
	if len(entries) > 0 {
		return fmt.Errorf("build: refusing to overwrite non-empty %s", dir)
	}
	return nil
}

// encodeInput drains the source into a striped mrfs dataset — the one
// materialized copy of the corpus the build holds. The key is the
// big-endian entity ID followed by a big-endian input sequence number:
// the shuffle's byte-lexicographic secondary-key sort then delivers
// each shard's records in (ID, occurrence) order, so numeric ID order
// for the snapshot and last-occurrence-wins for the upsert dedup both
// fall out of the sort. The value is the codec encoding of the name and
// elements.
func encodeInput(src Source, partitions int) *mrfs.Dataset {
	if src == nil {
		src = Entities(nil)
	}
	buf := codec.NewBuffer(256)
	var recs []mrfs.Record
	seq := uint64(0)
	src(func(e Entity) bool {
		key := make([]byte, 16)
		binary.BigEndian.PutUint64(key[:8], e.ID)
		binary.BigEndian.PutUint64(key[8:], seq)
		seq++
		buf.Reset()
		buf.PutString(e.Name)
		buf.PutUvarint(uint64(len(e.Elements)))
		for _, el := range e.Elements {
			buf.PutString(el.Name)
			buf.PutUint32(el.Count)
		}
		recs = append(recs, mrfs.Record{Key: key, Val: buf.Clone()})
		return true
	})
	return mrfs.FromRecords("bulk-index-input", recs, partitions)
}

// decodeEntity reverses encodeInput's value encoding.
func decodeEntity(id uint64, payload []byte) (Entity, error) {
	r := codec.NewReader(payload)
	e := Entity{ID: id, Name: r.String()}
	n := r.Uvarint()
	if r.Err() == nil && n > uint64(r.Remaining()) {
		return Entity{}, fmt.Errorf("build: entity %d claims %d elements in %d bytes", id, n, r.Remaining())
	}
	e.Elements = make([]wal.Element, 0, n)
	for i := uint64(0); i < n; i++ {
		e.Elements = append(e.Elements, wal.Element{Name: r.String(), Count: r.Uint32()})
	}
	if r.Err() != nil || !r.Done() {
		return Entity{}, fmt.Errorf("build: corrupt entity record %d: %v", id, r.Err())
	}
	return e, nil
}

// makeShardMapper returns the map function: route each entity to its
// serving shard, with the ID as the shuffle's secondary key.
func makeShardMapper(shards int) func(*mr.TaskContext, mrfs.Record, mr.Emitter) error {
	return func(_ *mr.TaskContext, rec mrfs.Record, emit mr.Emitter) error {
		if len(rec.Key) != 16 {
			return fmt.Errorf("build: input key is %d bytes, want 16", len(rec.Key))
		}
		id := binary.BigEndian.Uint64(rec.Key[:8])
		if id == 0 {
			return errors.New("build: entity ID 0 is reserved for ad-hoc queries")
		}
		var shardKey [4]byte
		binary.BigEndian.PutUint32(shardKey[:], uint32(shard.ShardOf(multiset.ID(id), shards)))
		emit.EmitSec(shardKey[:], rec.Key, rec.Val)
		return nil
	}
}

// makeSnapshotReducer returns the reduce function: each group is one
// shard's full, (ID, occurrence)-sorted entity list, streamed directly
// into that shard's generation-1 snapshot file. Repeated IDs collapse
// to the last occurrence — the secondary key ends in the input sequence
// number, so "last in sort order" is exactly upsert order — and the
// group never materializes beyond the one-record lookahead the dedup
// needs.
func makeSnapshotReducer(dir, measure string, shards int) func(*mr.TaskContext, []byte, *mr.Values, mr.Emitter) error {
	return func(ctx *mr.TaskContext, key []byte, values *mr.Values, _ mr.Emitter) error {
		if len(key) != 4 {
			return fmt.Errorf("build: shard key is %d bytes, want 4", len(key))
		}
		si := int(binary.BigEndian.Uint32(key))
		if si < 0 || si >= shards {
			return fmt.Errorf("build: shard key %d outside [0, %d)", si, shards)
		}
		shardDir := filepath.Join(dir, wal.ShardDirName(si))
		var written, deduped int64
		err := wal.WriteSnapshot(shardDir, 1, measure, func(emit func(wal.Record) error) error {
			var pending *wal.Record
			flush := func() error {
				if pending == nil {
					return nil
				}
				written++
				err := emit(*pending)
				pending = nil
				return err
			}
			for {
				v, ok := values.Next()
				if !ok {
					break
				}
				if len(v.Sec) != 16 {
					return fmt.Errorf("build: secondary key is %d bytes, want 16", len(v.Sec))
				}
				id := binary.BigEndian.Uint64(v.Sec[:8])
				if got := shard.ShardOf(multiset.ID(id), shards); got != si {
					return fmt.Errorf("build: entity %d shuffled to shard %d but routes to %d", id, si, got)
				}
				e, err := decodeEntity(id, v.Val)
				if err != nil {
					return err
				}
				if pending != nil && pending.ID == id {
					deduped++ // same ID again: the later occurrence wins
				} else if err := flush(); err != nil {
					return err
				}
				pending = &wal.Record{Op: wal.OpAdd, ID: e.ID, Entity: e.Name, Elements: e.Elements}
			}
			return flush()
		})
		if err != nil {
			return err
		}
		ctx.Counters.Add(counterEntities, written)
		ctx.Counters.Add(counterDeduped, deduped)
		return nil
	}
}
