//go:build race

package index

// The race detector multiplies every synchronization operation's cost by
// an order of magnitude; a schedule that takes seconds natively takes
// minutes under -race. Compactions fire roughly once per churn round
// (each round's removals mark more postings dead than stay live), so a
// handful of rounds still exercises slot recycling against concurrent
// queries — the full schedule adds soak time, not coverage.
const churnRounds = 20
