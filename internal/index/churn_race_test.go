package index

// Churn-vs-query schedule for the race detector: writers hammer
// Add/Remove hard enough to force repeated maybeCompactLocked rewrites
// (every removal marks postings dead, and compaction fires once dead
// postings outnumber live ones) while readers run threshold and top-k
// queries through the pooled scratch/epoch-stamped candidate path the
// whole time. Run under -race this proves the slot-recycling dedup
// machinery never reads or stamps across a concurrent slot reuse; the
// final oracle comparison proves the quiesced index still answers
// exactly.

import (
	"sync"
	"sync/atomic"
	"testing"

	"vsmartjoin/internal/multiset"
	"vsmartjoin/internal/similarity"
)

func churnSet(id, flavor int) multiset.Multiset {
	entries := make([]multiset.Entry, 0, 8)
	for j := 0; j < 8; j++ {
		elem := multiset.Elem((id*13 + flavor + j*j*5) % 257)
		entries = append(entries, multiset.Entry{Elem: elem, Count: uint32(j%4 + 1)})
	}
	return multiset.New(multiset.ID(id), entries)
}

func TestChurnWithConcurrentQueries(t *testing.T) {
	const (
		entities = 400
		writers  = 4
		readers  = 4
		rounds   = churnRounds // build-tag scaled: shorter under -race
	)
	ix := New(similarity.Ruzicka{})
	for id := 1; id <= entities; id++ {
		ix.Add(churnSet(id, 0))
	}

	var stop atomic.Bool
	var writerWG, readerWG sync.WaitGroup

	// Writers: each owns a disjoint ID stripe and cycles every entity
	// through remove → re-add with a different flavor, forcing dead
	// postings to pile up and compactions to fire while readers run.
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for r := 0; r < rounds; r++ {
				for id := 1 + w; id <= entities; id += writers {
					ix.Remove(multiset.ID(id))
					ix.Add(churnSet(id, r%7))
				}
			}
		}(w)
	}

	// Readers: threshold and top-k queries with reused buffers until the
	// writers finish. Results are only sanity-checked here (the index is
	// in flux); exactness is proven post-quiesce against the oracle.
	for g := 0; g < readers; g++ {
		readerWG.Add(1)
		go func(g int) {
			defer readerWG.Done()
			var buf []Match
			for i := 0; !stop.Load(); i++ {
				q := QueryOf(churnSet(1+(g*31+i)%entities, i%7))
				if i%2 == 0 {
					buf = ix.QueryThresholdInto(q, 0.5, buf[:0])
				} else {
					buf = ix.QueryTopKInto(q, 10, buf[:0])
				}
				for j := 1; j < len(buf); j++ {
					if worseMatch(buf[j-1], buf[j]) {
						t.Errorf("results out of canonical order: %v before %v", buf[j-1], buf[j])
						return
					}
				}
			}
		}(g)
	}

	writerWG.Wait()
	stop.Store(true)
	readerWG.Wait()

	if got := ix.Stats().Compactions; got == 0 {
		t.Fatalf("churn schedule never compacted (dead postings never outnumbered live); Stats: %+v", ix.Stats())
	}

	// Quiesced exactness: every remaining entity's threshold query must
	// match a brute-force scan over snapshots.
	for id := 1; id <= entities; id += 37 {
		q := QueryOf(ix.Snapshot(multiset.ID(id)))
		got := ix.QueryThreshold(q, 0.3)
		want := bruteForce(ix, q, 0.3)
		if len(got) != len(want) {
			t.Fatalf("id %d: %d results, oracle %d\ngot  %v\nwant %v", id, len(got), len(want), got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("id %d result %d: got %v want %v", id, i, got[i], want[i])
			}
		}
	}
}

// bruteForce answers a threshold query by scanning every indexed entity
// and verifying directly — no postings, no pruning, no scratch state.
func bruteForce(ix *Index, q Query, t float64) []Match {
	qUni := queryStats(q)
	var out []Match
	ix.Range(func(m multiset.Multiset) bool {
		if m.ID == q.Set.ID {
			return true
		}
		var uni similarity.UniStats
		for _, e := range m.Entries {
			uni.AccumulateUni(e.Count)
		}
		sim := ix.Measure().Sim(qUni, uni, similarity.ConjOf(q.Set, m))
		if sim+verifyEps >= t {
			out = append(out, Match{ID: m.ID, Sim: sim})
		}
		return true
	})
	SortMatches(out)
	return out
}
