// Package index implements the online half of the system: an incremental
// inverted index over multisets that answers threshold and top-k
// similarity queries against a live, mutable dataset.
//
// Where the batch join (internal/core) recomputes every pair from scratch
// on a simulated cluster, the index serves point lookups: per-element
// posting lists map alphabet elements to the entities containing them, a
// query probes the lists of its own elements to gather candidates, and the
// measure-derived bounds of internal/similarity prune the probe in two
// ways before exact verification:
//
//   - prefix filter: posting lists are probed in decreasing-multiplicity
//     order, and probing stops once ResidualUpperBound shows the unprobed
//     tail of the query cannot reach the threshold — entities overlapping
//     the query only in that tail are provably below it;
//   - length filter: each candidate's UniStats are checked with
//     SimUpperBound before the candidate is verified.
//
// Concurrency: a single RWMutex guards the tables. Mutations (Add, Remove,
// compaction) take the write lock; queries share the read lock, so the hot
// path never serializes reads against each other. Entities are immutable
// once inserted (Add replaces the stored record wholesale), which lets
// QueryThreshold release the lock before the exact-verification loop — the
// most expensive part of a query runs with no lock held at all. Stale
// posting entries left behind by Remove or replacement are skipped by
// pointer identity and reclaimed by an amortized compaction pass.
package index

import (
	"fmt"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"vsmartjoin/internal/lsh"
	"vsmartjoin/internal/multiset"
	"vsmartjoin/internal/planner"
	"vsmartjoin/internal/similarity"
	"vsmartjoin/internal/stats"
)

// boundEps is the slack applied when comparing pruning bounds against the
// threshold; it is looser than verifyEps so filters never drop a pair that
// verification would keep.
const boundEps = 1e-9

// verifyEps matches the ppjoin.Naive oracle's inclusion tolerance.
const verifyEps = 1e-12

// entry is one indexed entity. Entries are immutable after insertion:
// Add of an existing ID swaps in a fresh entry, so a query that captured
// the old pointer can keep verifying against a consistent snapshot.
//
// slot is the entry's index into the per-query candidate mark table: a
// small dense integer assigned under the write lock when the entry is
// created and recycled when it dies (replacement or Remove). Live
// entries always hold distinct slots, and a query deduplicates
// candidates by stamping slots with its epoch instead of inserting
// pointers into a freshly allocated map. Slot recycling cannot alias
// within one query: slots only move between entries under the write
// lock, the probe loop runs entirely inside one read-lock hold, and
// dead entries (which may share a recycled slot with a live one) are
// dropped by the identity check before any stamping happens.
type entry struct {
	set  multiset.Multiset
	uni  similarity.UniStats
	slot int32
}

// Match is one query result.
type Match struct {
	ID  multiset.ID
	Sim float64
}

// Query is a query multiset. Set holds the elements drawn from the index
// alphabet; Extra accounts elements outside it, which can match no posting
// list but still weigh into the query's cardinalities (and therefore into
// every similarity denominator).
type Query struct {
	Set   multiset.Multiset
	Extra similarity.UniStats
}

// QueryOf wraps a multiset whose elements all come from the index alphabet.
func QueryOf(m multiset.Multiset) Query { return Query{Set: m} }

// Stats is a point-in-time snapshot of index size and traffic counters.
type Stats struct {
	// Entities is the number of live entities; Elements the number of
	// distinct alphabet elements with a posting list; Postings the total
	// posting entries including tombstoned ones awaiting compaction.
	Entities int
	Elements int
	Postings int

	// Adds, Removes, Compactions count mutations since creation.
	Adds        int64
	Removes     int64
	Compactions int64

	// Queries counts lookups; the remaining counters expose how far each
	// pruning stage narrowed them: Probes is posting entries scanned,
	// Candidates is distinct live candidates gathered, LengthPruned is
	// candidates dropped by SimUpperBound, Verified is exact similarity
	// computations, Results is matches returned.
	Queries      int64
	Probes       int64
	Candidates   int64
	LengthPruned int64
	Verified     int64
	Results      int64
}

// Index is an incremental inverted similarity index. The zero value is not
// usable; construct with New.
type Index struct {
	measure similarity.Measure

	mu       sync.RWMutex
	entities map[multiset.ID]*entry
	postings map[multiset.Elem][]*entry
	// postingCount tracks total posting entries; deadPostings those whose
	// entry is no longer current. Compaction triggers when dead entries
	// outnumber live ones, keeping probe work amortized-linear.
	postingCount int
	deadPostings int
	// nextSlot is the high-water mark of the dense entry-slot space (all
	// live slots are < nextSlot); freeSlots recycles the slots of dead
	// entries so the space stays as dense as the live entity count.
	nextSlot  int32
	freeSlots []int32

	// scratch pools per-query state (probe order, candidate buffer, mark
	// table, top-k heap) so the steady-state query path allocates
	// nothing. Not guarded by mu: sync.Pool is concurrency-safe, and a
	// scratch is owned by exactly one query between Get and Put.
	scratch sync.Pool

	// Adaptive planning (internal/planner). plan is the strategy queries
	// currently run through; override pins it when not Auto; pl, when
	// non-nil, re-decides it from the partition statistics on every
	// mutation (nil — the New default — pins the Prefix path, so the
	// bare data structure behaves exactly as before SetPlanner existed).
	// cardDist tracks the live entities' cardinality distribution and
	// maxPosting the longest posting list (stale entries included);
	// lshTab is the MinHash band table maintained only while the plan is
	// LSH. All are guarded by mu: mutated under the write lock, read by
	// queries under the read lock.
	pl         planner.Planner
	override   planner.Strategy
	plan       planner.Strategy
	cardDist   stats.Dist
	maxPosting int
	lshTab     *lsh.Table

	adds        atomic.Int64
	removes     atomic.Int64
	compactions atomic.Int64
	queries     atomic.Int64
	probes      atomic.Int64
	candidates  atomic.Int64
	lenPruned   atomic.Int64
	verified    atomic.Int64
	results     atomic.Int64
}

// New returns an empty index verifying with the given measure. The
// query plan starts (and without SetPlanner/SetStrategy stays) Prefix —
// the inverted-index probe.
func New(m similarity.Measure) *Index {
	return &Index{
		measure:  m,
		entities: make(map[multiset.ID]*entry),
		postings: make(map[multiset.Elem][]*entry),
		plan:     planner.Prefix,
	}
}

// Measure reports the measure the index verifies with.
func (ix *Index) Measure() similarity.Measure { return ix.measure }

// Len reports the number of live entities.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.entities)
}

// allocSlotLocked hands out a dense mark-table slot for a new live
// entry, recycling dead entries' slots first. Caller holds the write
// lock.
func (ix *Index) allocSlotLocked() int32 {
	if n := len(ix.freeSlots); n > 0 {
		s := ix.freeSlots[n-1]
		ix.freeSlots = ix.freeSlots[:n-1]
		return s
	}
	s := ix.nextSlot
	ix.nextSlot++
	return s
}

// freeSlotLocked returns a dead entry's slot to the free list. Caller
// holds the write lock.
func (ix *Index) freeSlotLocked(e *entry) {
	ix.freeSlots = append(ix.freeSlots, e.slot)
}

// Add inserts an entity, replacing any previous entity with the same ID.
// The index takes ownership of m: callers must not mutate its entries
// afterwards (the hot insert path avoids a defensive copy; Snapshot
// clones on the way out instead).
func (ix *Index) Add(m multiset.Multiset) {
	e := &entry{set: m, uni: similarity.UniOf(m)}
	ix.mu.Lock()
	e.slot = ix.allocSlotLocked()
	if old, ok := ix.entities[m.ID]; ok {
		// The old entry's postings become stale the moment the map points
		// at the new one; count them for compaction.
		ix.deadPostings += len(old.set.Entries)
		ix.freeSlotLocked(old)
		ix.cardDist.Remove(old.uni.Card)
	}
	ix.entities[m.ID] = e
	ix.addPostingsLocked(e)
	ix.cardDist.Add(e.uni.Card)
	if ix.lshTab != nil {
		ix.lshTab.Add(uint64(m.ID), m)
	}
	ix.maybeCompactLocked()
	ix.replanLocked()
	ix.mu.Unlock()
	ix.adds.Add(1)
}

// addPostingsLocked appends a fresh entry to its element posting lists,
// maintaining the posting count and the longest-list high-water mark
// the planner's token-skew statistic reads. Caller holds the write
// lock.
func (ix *Index) addPostingsLocked(e *entry) {
	for _, ent := range e.set.Entries {
		list := append(ix.postings[ent.Elem], e)
		ix.postings[ent.Elem] = list
		if len(list) > ix.maxPosting {
			ix.maxPosting = len(list)
		}
	}
	ix.postingCount += len(e.set.Entries)
}

// BatchOp is one mutation of an ApplyBatch: an upsert of Set when
// Remove is false, a deletion of ID when it is true.
type BatchOp struct {
	Remove bool
	ID     multiset.ID       // deletion target (Remove only)
	Set    multiset.Multiset // upsert payload (Add only); the index takes ownership
}

// ApplyBatch applies ops in order under a single write-lock
// acquisition — the batched mutation path. The end state is exactly
// that of the equivalent Add/Remove sequence, but a contended write
// storm pays the lock handoff and the compaction-trigger check once
// per batch instead of once per mutation, so readers see one short
// exclusion window instead of N.
func (ix *Index) ApplyBatch(ops []BatchOp) {
	if len(ops) == 0 {
		return
	}
	var adds, removes int64
	ix.mu.Lock()
	for _, op := range ops {
		if op.Remove {
			if e, ok := ix.entities[op.ID]; ok {
				delete(ix.entities, op.ID)
				ix.deadPostings += len(e.set.Entries)
				ix.freeSlotLocked(e)
				ix.cardDist.Remove(e.uni.Card)
				if ix.lshTab != nil {
					ix.lshTab.Remove(uint64(op.ID))
				}
				removes++
			}
			continue
		}
		m := op.Set
		e := &entry{set: m, uni: similarity.UniOf(m), slot: ix.allocSlotLocked()}
		if old, ok := ix.entities[m.ID]; ok {
			ix.deadPostings += len(old.set.Entries)
			ix.freeSlotLocked(old)
			ix.cardDist.Remove(old.uni.Card)
		}
		ix.entities[m.ID] = e
		ix.addPostingsLocked(e)
		ix.cardDist.Add(e.uni.Card)
		if ix.lshTab != nil {
			ix.lshTab.Add(uint64(m.ID), m)
		}
		adds++
	}
	ix.maybeCompactLocked()
	ix.replanLocked()
	ix.mu.Unlock()
	ix.adds.Add(adds)
	ix.removes.Add(removes)
}

// BulkLoad ingests entities in strictly ascending ID order into an
// empty index — the sealed fast path a bulk-built snapshot loads
// through. Unlike repeated Add it skips the whole upsert machinery:
// no per-entity existence check, no tombstone accounting, no
// compaction-trigger evaluation, and the entity table is sized once.
// The resulting structures are exactly what the same Adds would have
// built (posting lists append in ID order either way), so queries
// answer identically. The index takes ownership of the multisets.
// A non-empty index or an ID-order violation is an error and leaves
// the index unchanged.
func (ix *Index) BulkLoad(sets []multiset.Multiset) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if len(ix.entities) != 0 || ix.postingCount != 0 {
		return fmt.Errorf("index: bulk load into a non-empty index (%d entities)", len(ix.entities))
	}
	for i := range sets {
		if sets[i].ID == 0 {
			return fmt.Errorf("index: bulk load: entity %d has ID 0 (reserved for ad-hoc queries)", i)
		}
		if i > 0 && sets[i].ID <= sets[i-1].ID {
			return fmt.Errorf("index: bulk load: IDs not strictly ascending at %d (%d after %d)",
				i, sets[i].ID, sets[i-1].ID)
		}
	}
	ix.entities = make(map[multiset.ID]*entry, len(sets))
	for _, m := range sets {
		e := &entry{set: m, uni: similarity.UniOf(m), slot: ix.allocSlotLocked()}
		ix.entities[m.ID] = e
		ix.addPostingsLocked(e)
		ix.cardDist.Add(e.uni.Card)
		if ix.lshTab != nil {
			ix.lshTab.Add(uint64(m.ID), m)
		}
	}
	ix.replanLocked()
	// Bulk-loaded entities are mutations like any other: a daemon
	// bootstrapped from snapshot files must report the entities it
	// serves in Stats.Adds (and /readyz's mutation counter), not 0.
	ix.adds.Add(int64(len(sets)))
	return nil
}

// Remove deletes the entity with the given ID, reporting whether it was
// present.
func (ix *Index) Remove(id multiset.ID) bool {
	ix.mu.Lock()
	e, ok := ix.entities[id]
	if ok {
		delete(ix.entities, id)
		ix.deadPostings += len(e.set.Entries)
		ix.freeSlotLocked(e)
		ix.cardDist.Remove(e.uni.Card)
		if ix.lshTab != nil {
			ix.lshTab.Remove(uint64(id))
		}
		ix.maybeCompactLocked()
		ix.replanLocked()
	}
	ix.mu.Unlock()
	if ok {
		ix.removes.Add(1)
	}
	return ok
}

// maybeCompactLocked rewrites every posting list without stale entries
// once they outnumber live ones. Caller holds the write lock.
func (ix *Index) maybeCompactLocked() {
	if ix.deadPostings <= ix.postingCount-ix.deadPostings {
		return
	}
	ix.maxPosting = 0
	for elem, list := range ix.postings {
		w := 0
		for _, e := range list {
			if ix.entities[e.set.ID] == e {
				list[w] = e
				w++
			}
		}
		if w == 0 {
			delete(ix.postings, elem)
			continue
		}
		ix.postings[elem] = list[:w]
		if w > ix.maxPosting {
			ix.maxPosting = w
		}
	}
	ix.postingCount -= ix.deadPostings
	ix.deadPostings = 0
	ix.compactions.Add(1)
}

// Range calls fn for every live entity in ascending ID order, stopping
// early if fn returns false. The multisets passed are the index's own
// immutable entries — callers must not mutate them. The iteration works
// over a point-in-time capture of the entity table: fn runs with no
// lock held, so it may query or mutate the index, at the price of not
// observing entities added after Range started.
func (ix *Index) Range(fn func(m multiset.Multiset) bool) {
	ix.mu.RLock()
	snap := make([]*entry, 0, len(ix.entities))
	for _, e := range ix.entities {
		snap = append(snap, e)
	}
	ix.mu.RUnlock()
	sort.Slice(snap, func(i, j int) bool { return snap[i].set.ID < snap[j].set.ID })
	for _, e := range snap {
		if !fn(e.set) {
			return
		}
	}
}

// Snapshot returns a copy of the entity's current multiset (keeping its
// ID, so querying with it skips the self-pair), or an empty multiset if
// the ID is not indexed.
func (ix *Index) Snapshot(id multiset.ID) multiset.Multiset {
	ix.mu.RLock()
	e, ok := ix.entities[id]
	ix.mu.RUnlock()
	if !ok {
		return multiset.Multiset{ID: id}
	}
	return e.set.Clone()
}

// Stats returns a snapshot of the index counters.
func (ix *Index) Stats() Stats {
	ix.mu.RLock()
	s := Stats{
		Entities: len(ix.entities),
		Elements: len(ix.postings),
		Postings: ix.postingCount,
	}
	ix.mu.RUnlock()
	s.Adds = ix.adds.Load()
	s.Removes = ix.removes.Load()
	s.Compactions = ix.compactions.Load()
	s.Queries = ix.queries.Load()
	s.Probes = ix.probes.Load()
	s.Candidates = ix.candidates.Load()
	s.LengthPruned = ix.lenPruned.Load()
	s.Verified = ix.verified.Load()
	s.Results = ix.results.Load()
	return s
}

// queryStats is the full unilateral view of a query: indexed elements plus
// out-of-alphabet extras.
func queryStats(q Query) similarity.UniStats {
	u := similarity.UniOf(q.Set)
	u.Add(q.Extra)
	return u
}

// queryScratch is the reusable per-query state: the sorted probe order,
// the gathered candidate buffer, the epoch-stamped dedup mark table,
// and the top-k heap. A scratch is owned by exactly one query between
// getScratch and putScratch; pooling them makes the steady-state query
// path allocation-free.
type queryScratch struct {
	order []multiset.Entry
	cands []*entry
	// marks[slot] == epoch iff the entry holding slot was already seen
	// by the current query; bumping epoch resets the whole table in O(1).
	marks []uint32
	epoch uint32
	heap  topkHeap
	// sig holds the query's MinHash signature when the LSH strategy is
	// active.
	sig []uint64
	// cnt accumulates the funnel counters while the read lock is held;
	// they flush to the atomics afterwards. Living inside the pooled
	// scratch (rather than being locals passed by pointer into the
	// per-strategy helpers) keeps them off the heap.
	cnt struct {
		probes, cands, lenPruned, verified int64
	}
}

// begin readies the dedup table for one probe pass over an index whose
// slot high-water mark is limit. The caller must hold (at least) the
// read lock for the whole pass: slots only migrate between entries
// under the write lock, so within one pass live slots are stable.
func (s *queryScratch) begin(limit int) {
	if cap(s.marks) < limit {
		// A fresh zeroed table is correct at any epoch > 0: no slot was
		// stamped with the current epoch yet.
		s.marks = make([]uint32, limit+limit/2+16)
	}
	s.marks = s.marks[:cap(s.marks)]
	s.epoch++
	if s.epoch == 0 { // wrapped: stale stamps could collide, wipe them
		clear(s.marks)
		s.epoch = 1
	}
}

func (ix *Index) getScratch() *queryScratch {
	if s, ok := ix.scratch.Get().(*queryScratch); ok {
		return s
	}
	return &queryScratch{}
}

// putScratch returns a scratch to the pool, dropping entry references
// so a pooled scratch cannot pin dead entities' multisets in memory.
func (ix *Index) putScratch(s *queryScratch) {
	clear(s.cands)
	s.cands = s.cands[:0]
	ix.scratch.Put(s)
}

// sortProbeOrder sorts query entries for probing: decreasing
// multiplicity first so the residual bound collapses as fast as
// possible, element ID second for determinism.
func sortProbeOrder(ord []multiset.Entry) {
	slices.SortFunc(ord, func(a, b multiset.Entry) int {
		if a.Count != b.Count {
			if a.Count > b.Count {
				return -1
			}
			return 1
		}
		if a.Elem != b.Elem {
			if a.Elem < b.Elem {
				return -1
			}
			return 1
		}
		return 0
	})
}

// gather collects the deduplicated live candidates (in s.cands) that
// survive the active strategy's filters, under the read lock. stop is
// the verification cut-off the bounds prune against. An entity whose ID
// equals the query's own ID is never a candidate (self-pairs are
// meaningless; use ID 0 for ad-hoc queries).
//
// Under the Prefix plan the query's posting lists are probed in
// decreasing-multiplicity order and probing ends once the residual
// bound shows the unprobed tail cannot reach stop. Under Brute the
// entity table is scanned outright, length-filtered only. The LSH plan
// has nothing to offer a fixed threshold — its bucket collisions seed a
// *rising* floor, and stop never rises — so it gathers like Prefix.
func (ix *Index) gather(s *queryScratch, q Query, qUni similarity.UniStats, stop float64) []*entry {
	s.cands = s.cands[:0]
	var probes, lenPruned int64

	if ix.Plan() == planner.Brute {
		return ix.gatherBrute(s, q, qUni, stop)
	}
	ix.mu.RLock()
	s.order = append(s.order[:0], q.Set.Entries...)
	sortProbeOrder(s.order)
	residual := qUni
	residual.Sub(q.Extra) // extras match nothing; they never feed postings
	s.begin(int(ix.nextSlot))
	for _, ent := range s.order {
		if similarity.ResidualUpperBound(ix.measure, qUni, residual)+boundEps < stop {
			break
		}
		for _, e := range ix.postings[ent.Elem] {
			probes++
			if e.set.ID == q.Set.ID {
				continue
			}
			if ix.entities[e.set.ID] != e {
				continue // tombstoned or replaced
			}
			if s.marks[e.slot] == s.epoch {
				continue
			}
			s.marks[e.slot] = s.epoch
			if similarity.SimUpperBound(ix.measure, qUni, e.uni)+boundEps < stop {
				lenPruned++
				continue
			}
			s.cands = append(s.cands, e)
		}
		var probed similarity.UniStats
		probed.AccumulateUni(ent.Count)
		residual.Sub(probed)
	}
	ix.mu.RUnlock()

	ix.probes.Add(probes)
	ix.candidates.Add(int64(len(s.cands)) + lenPruned)
	ix.lenPruned.Add(lenPruned)
	return s.cands
}

// gatherBrute is gather's Brute plan: a straight scan of the entity
// table, length-filtered only. The plan may have flipped to Brute
// between gather's dispatch read and this lock — harmless, the scan is
// valid under any plan.
func (ix *Index) gatherBrute(s *queryScratch, q Query, qUni similarity.UniStats, stop float64) []*entry {
	var probes, lenPruned int64
	ix.mu.RLock()
	for _, e := range ix.entities {
		probes++
		if e.set.ID == q.Set.ID {
			continue
		}
		if similarity.SimUpperBound(ix.measure, qUni, e.uni)+boundEps < stop {
			lenPruned++
			continue
		}
		s.cands = append(s.cands, e)
	}
	ix.mu.RUnlock()
	ix.probes.Add(probes)
	ix.candidates.Add(int64(len(s.cands)) + lenPruned)
	ix.lenPruned.Add(lenPruned)
	return s.cands
}

// QueryThreshold returns every indexed entity whose similarity to q is at
// least t, sorted by decreasing similarity (ID ascending on ties). The
// exact-verification loop runs after the read lock is released: entries
// are immutable, so a concurrent Add/Remove cannot corrupt the snapshot —
// it only makes the answer reflect the index as of the probe.
func (ix *Index) QueryThreshold(q Query, t float64) []Match {
	return ix.QueryThresholdInto(q, t, nil)
}

// QueryThresholdInto is QueryThreshold appending into buf (typically a
// reused buffer truncated to buf[:0]) instead of allocating the result —
// the allocation-free form the sharded fan-out and steady-state callers
// use. Only the appended region is sorted, so buf's existing contents
// are preserved untouched.
func (ix *Index) QueryThresholdInto(q Query, t float64, buf []Match) []Match {
	ix.queries.Add(1)
	if len(q.Set.Entries) == 0 {
		return buf
	}
	qUni := queryStats(q)
	s := ix.getScratch()
	cands := ix.gather(s, q, qUni, t)

	base := len(buf)
	for _, e := range cands {
		conj := similarity.ConjOf(q.Set, e.set)
		if conj.Common == 0 {
			// Only entities sharing an element qualify, even at t = 0 —
			// the threshold convention every strategy must agree on. A
			// no-op for prefix candidates (posting lists only yield
			// overlaps) but load-bearing for the brute scan.
			continue
		}
		sim := ix.measure.Sim(qUni, e.uni, conj)
		if sim+verifyEps >= t {
			buf = append(buf, Match{ID: e.set.ID, Sim: sim})
		}
	}
	ix.verified.Add(int64(len(cands)))
	ix.results.Add(int64(len(buf) - base))
	ix.putScratch(s)
	SortMatches(buf[base:])
	return buf
}

// QueryTopK returns the k most similar indexed entities, sorted by
// decreasing similarity (ID ascending on ties). Verification interleaves
// with probing so the current k-th best similarity becomes a rising
// residual-bound floor; the whole pass holds the read lock to keep the
// floor consistent with the probed snapshot.
func (ix *Index) QueryTopK(q Query, k int) []Match {
	return ix.QueryTopKInto(q, k, nil)
}

// QueryTopKInto is QueryTopK appending into buf (typically a reused
// buffer truncated to buf[:0]) instead of allocating the result. Only
// the appended region is sorted; buf's existing contents are preserved.
//
// The pass runs through the partition's planned strategy (see
// internal/planner): the prefix-filter probe, a MinHash-bucket-seeded
// sweep, or a straight scan. Every strategy yields the same k matches —
// they differ only in how fast the rising k-th-best floor is
// established.
func (ix *Index) QueryTopKInto(q Query, k int, buf []Match) []Match {
	ix.queries.Add(1)
	if k <= 0 || len(q.Set.Entries) == 0 {
		return buf
	}
	qUni := queryStats(q)
	s := ix.getScratch()
	s.heap = s.heap[:0]
	s.cnt.probes, s.cnt.cands, s.cnt.lenPruned, s.cnt.verified = 0, 0, 0, 0

	ix.mu.RLock()
	switch ix.plan {
	case planner.Brute:
		ix.topkBruteLocked(s, q, qUni, k)
	case planner.LSH:
		ix.topkLSHLocked(s, q, qUni, k)
	default:
		ix.topkPrefixLocked(s, q, qUni, k)
	}
	ix.mu.RUnlock()

	ix.probes.Add(s.cnt.probes)
	ix.candidates.Add(s.cnt.cands)
	ix.lenPruned.Add(s.cnt.lenPruned)
	ix.verified.Add(s.cnt.verified)
	base := len(buf)
	buf = append(buf, s.heap...)
	ix.putScratch(s)
	SortMatches(buf[base:])
	ix.results.Add(int64(len(buf) - base))
	return buf
}

// topkPrefixLocked is the inverted-index top-k pass: posting lists in
// decreasing-multiplicity order with the current k-th best similarity
// as a rising residual-bound floor. Caller holds the read lock for the
// whole pass so the floor stays consistent with the probed snapshot.
func (ix *Index) topkPrefixLocked(s *queryScratch, q Query, qUni similarity.UniStats, k int) {
	s.order = append(s.order[:0], q.Set.Entries...)
	sortProbeOrder(s.order)
	residual := qUni
	residual.Sub(q.Extra)
	s.begin(int(ix.nextSlot))
	for _, ent := range s.order {
		// Below k results every candidate is wanted, so the floor is 0
		// (with t=0 semantics: any overlap qualifies).
		floor := 0.0
		if len(s.heap) == k {
			floor = s.heap[0].Sim
			if similarity.ResidualUpperBound(ix.measure, qUni, residual) < floor-boundEps {
				break
			}
		}
		for _, e := range ix.postings[ent.Elem] {
			s.cnt.probes++
			if e.set.ID == q.Set.ID {
				continue
			}
			if ix.entities[e.set.ID] != e {
				continue
			}
			if s.marks[e.slot] == s.epoch {
				continue
			}
			s.marks[e.slot] = s.epoch
			s.cnt.cands++
			if len(s.heap) == k && similarity.SimUpperBound(ix.measure, qUni, e.uni) < floor-boundEps {
				s.cnt.lenPruned++
				continue
			}
			s.cnt.verified++
			//lint:vsmart-allow lockscope top-k must verify under the RLock so the rising floor keeps pruning; threshold queries verify outside it
			sim := ix.measure.Sim(qUni, e.uni, similarity.ConjOf(q.Set, e.set))
			s.heap.offer(Match{ID: e.set.ID, Sim: sim}, k)
			if len(s.heap) == k {
				floor = s.heap[0].Sim
			}
		}
		var probed similarity.UniStats
		probed.AccumulateUni(ent.Count)
		residual.Sub(probed)
	}
}

// worseMatch is the single result-ordering comparator: a ranks below b on
// lower similarity, or on higher ID at equal similarities. Threshold
// sorting, the top-k heap, and the tests all defer to it, so identical
// index states always answer identically.
func worseMatch(a, b Match) bool {
	if a.Sim != b.Sim {
		return a.Sim < b.Sim
	}
	return a.ID > b.ID
}

// SortMatches orders results best first under worseMatch. It is the one
// canonical result ordering: threshold queries, the top-k heap, and the
// sharded fan-out merge (internal/shard) all defer to it, so any
// partitioning of the same entities answers identically.
func SortMatches(ms []Match) {
	// slices.SortFunc, not sort.Slice: the latter's reflect-based swapper
	// allocates, and this runs on the allocation-free query path.
	slices.SortFunc(ms, func(a, b Match) int {
		switch {
		case worseMatch(b, a):
			return -1
		case worseMatch(a, b):
			return 1
		default:
			return 0
		}
	})
}

// MergeTopK folds per-partition top-k lists into the global top-k,
// best first — the merge step of a sharded QueryTopK fan-out. Feeding
// each partition's local top-k through the same bounded heap the
// single-index query uses preserves exactness: an entity in the global
// top-k is necessarily in its own partition's top-k.
func MergeTopK(k int, lists ...[]Match) []Match {
	if k <= 0 {
		return nil
	}
	return MergeTopKInto(k, nil, lists...)
}

// mergeHeapPool recycles the bounded heaps MergeTopKInto folds with, so
// steady-state fan-out merges stop allocating a heap per query. The
// pooled heaps are not tied to any Index: the merge only rearranges
// Match values.
var mergeHeapPool = sync.Pool{New: func() any { return new(topkHeap) }}

// MergeTopKInto is MergeTopK appending into buf (typically a reused
// buffer truncated to buf[:0]) instead of allocating the result. Only
// the appended region is sorted; buf's existing contents are preserved.
func MergeTopKInto(k int, buf []Match, lists ...[]Match) []Match {
	if k <= 0 {
		return buf
	}
	hp := mergeHeapPool.Get().(*topkHeap)
	h := (*hp)[:0]
	for _, list := range lists {
		for _, m := range list {
			h.offer(m, k)
		}
	}
	base := len(buf)
	buf = append(buf, h...)
	*hp = h
	mergeHeapPool.Put(hp)
	SortMatches(buf[base:])
	return buf
}

// topkHeap is a bounded min-heap under worseMatch, so the root is always
// the match the next better candidate should evict; among equal
// similarities the smallest IDs survive.
type topkHeap []Match

func (h topkHeap) worse(i, j int) bool { return worseMatch(h[i], h[j]) }

func (h *topkHeap) offer(m Match, k int) {
	if len(*h) < k {
		*h = append(*h, m)
		i := len(*h) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if !h.worse(i, parent) {
				break
			}
			(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
			i = parent
		}
		return
	}
	if !worseMatch((*h)[0], m) {
		return // m does not beat the current k-th best
	}
	(*h)[0] = m
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < len(*h) && h.worse(l, least) {
			least = l
		}
		if r < len(*h) && h.worse(r, least) {
			least = r
		}
		if least == i {
			return
		}
		(*h)[i], (*h)[least] = (*h)[least], (*h)[i]
		i = least
	}
}
