package index

import (
	"math/rand"
	"sort"
	"testing"

	"vsmartjoin/internal/multiset"
	"vsmartjoin/internal/planner"
	"vsmartjoin/internal/ppjoin"
	"vsmartjoin/internal/similarity"
)

// oracleKNN is the inner-layer oracle: ppjoin's sort-everything kernel
// restricted to overlapping entities — the internal contract surfaces
// only entities sharing an element with the query (dist < 1 strictly).
func oracleKNN(sets []multiset.Multiset, q multiset.Multiset, k int, m similarity.Measure) []Neighbor {
	var out []Neighbor
	for _, n := range ppjoin.KNNAgainst(q, sets, m, len(sets)) {
		if n.Dist < 1 {
			out = append(out, Neighbor{ID: n.ID, Dist: n.Dist})
		}
	}
	sort.Slice(out, func(i, j int) bool { return worseNeighbor(out[j], out[i]) })
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func neighborsEqual(a, b []Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			return false
		}
		if d := a[i].Dist - b[i].Dist; d < -1e-9 || d > 1e-9 {
			return false
		}
	}
	return true
}

// TestQueryKNNMatchesOracle gates the planned kNN pass — under every
// strategy the planner can pick — against the quadratic oracle,
// including duplicate multisets (maximal ID tie groups) and
// self-queries of every indexed entity.
func TestQueryKNNMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	sets := randomMultisets(rng, 40, 30, 8, 4)
	// Duplicates of set 0 put an ID tie group at distance 0.
	sets = append(sets,
		multiset.Multiset{ID: 100, Entries: sets[0].Entries},
		multiset.Multiset{ID: 101, Entries: sets[0].Entries},
	)
	for _, m := range similarity.All() {
		for _, strat := range []planner.Strategy{planner.Auto, planner.Prefix, planner.LSH, planner.Brute} {
			ix := buildIndex(m, sets)
			ix.SetStrategy(strat)
			for _, k := range []int{1, 5, 50} {
				for _, q := range sets {
					// The oracle excludes q's own ID like KNNAgainst does; the
					// index has no such notion, so query a fresh ID.
					probe := multiset.Multiset{ID: 9999, Entries: q.Entries}
					got := ix.QueryKNN(QueryOf(probe), k)
					want := oracleKNN(sets, probe, k, m)
					if !neighborsEqual(got, want) {
						t.Fatalf("%s strategy=%v k=%d q=%d:\n got %v\nwant %v",
							m.Name(), strat, k, q.ID, got, want)
					}
				}
			}
		}
	}
}

// TestQueryKNNIntoReusesBuffer pins the Into contract: results append
// into the provided buffer, preserving its existing contents.
func TestQueryKNNIntoReusesBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sets := randomMultisets(rng, 20, 15, 6, 3)
	m := similarity.All()[0]
	ix := buildIndex(m, sets)
	sentinel := Neighbor{ID: 777, Dist: -1}
	buf := append(make([]Neighbor, 0, 16), sentinel)
	out := ix.QueryKNNInto(QueryOf(sets[2]), 5, buf)
	if len(out) < 2 || out[0] != sentinel {
		t.Fatalf("existing buffer contents clobbered: %v", out)
	}
	fresh := ix.QueryKNN(QueryOf(sets[2]), 5)
	if !neighborsEqual(out[1:], fresh) {
		t.Fatalf("Into appended %v, QueryKNN returned %v", out[1:], fresh)
	}
	if got := ix.QueryKNNInto(QueryOf(sets[2]), 0, buf[:1]); len(got) != 1 {
		t.Fatalf("k=0 appended results: %v", got)
	}
}

// TestMergeKNN gates the fan-out merge: per-partition k-lists fold into
// the global k nearest with ties surviving by smallest ID, and
// MergeKNNInto only sorts the appended region.
func TestMergeKNN(t *testing.T) {
	a := []Neighbor{{ID: 1, Dist: 0.1}, {ID: 5, Dist: 0.5}, {ID: 9, Dist: 0.9}}
	b := []Neighbor{{ID: 2, Dist: 0.1}, {ID: 4, Dist: 0.5}, {ID: 6, Dist: 0.6}}
	got := MergeKNN(4, a, b)
	want := []Neighbor{{ID: 1, Dist: 0.1}, {ID: 2, Dist: 0.1}, {ID: 4, Dist: 0.5}, {ID: 5, Dist: 0.5}}
	if !neighborsEqual(got, want) {
		t.Fatalf("MergeKNN = %v, want %v", got, want)
	}
	if got := MergeKNN(0, a, b); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
	if got := MergeKNN(10, a); !neighborsEqual(got, a) {
		t.Fatalf("single short list changed: %v", got)
	}
	prefix := []Neighbor{{ID: 42, Dist: 0.9}}
	out := MergeKNNInto(2, prefix, b, a)
	if out[0] != prefix[0] {
		t.Fatalf("MergeKNNInto clobbered the existing buffer: %v", out)
	}
	if !neighborsEqual(out[1:], want[:2]) {
		t.Fatalf("MergeKNNInto appended %v, want %v", out[1:], want[:2])
	}
}

// TestMergeKNNMatchesGlobalSort cross-checks the bounded heap against a
// concatenate-sort-truncate reference on random per-partition lists.
func TestMergeKNNMatchesGlobalSort(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(8)
		var lists [][]Neighbor
		var all []Neighbor
		for p := 0; p < 1+rng.Intn(4); p++ {
			var list []Neighbor
			for i := 0; i < rng.Intn(2*k); i++ {
				n := Neighbor{
					ID:   multiset.ID(rng.Intn(20) + 1),
					Dist: float64(rng.Intn(5)) / 5, // coarse grid forces ties
				}
				list = append(list, n)
				all = append(all, n)
			}
			SortNeighbors(list)
			if len(list) > k {
				list = list[:k]
			}
			lists = append(lists, list)
		}
		SortNeighbors(all)
		want := all
		if len(want) > k {
			want = want[:k]
		}
		if got := MergeKNN(k, lists...); !neighborsEqual(got, want) {
			t.Fatalf("trial %d k=%d: MergeKNN %v, reference %v\nlists: %v", trial, k, got, want, lists)
		}
	}
}
