package index

import (
	"slices"
	"sync"

	"vsmartjoin/internal/multiset"
)

// This file is the online kNN surface: k-nearest-neighbor queries over
// the live index under the distance d = 1 − Sim. The key observation is
// that kNN over this distance IS top-k over the similarity — d is a
// strictly decreasing function of Sim, so "distance ascending, ID
// ascending" and "similarity descending, ID ascending" are the same
// total order, and the rising k-th-distance floor the literature prunes
// with (floor_d) is exactly the rising k-th-best similarity floor the
// top-k pass already maintains: floor_d = 1 − floor_sim. QueryKNNInto
// therefore runs the planned top-k pass (prefix probe, LSH-seeded
// sweep, or brute scan — see plan.go) and converts, inheriting every
// pruning bound, the pooled scratch, and the zero-allocation property.
//
// Scope: like the threshold queries, the internal layer only surfaces
// entities sharing at least one element with the query. Overlap means
// Sim > 0 means d < 1 strictly; a disjoint entity sits at d = 1
// exactly, so the two populations never interleave in the canonical
// order. The public layer (vsmartjoin.Index) pads short lists to k
// with disjoint entities in ascending name order — a pure suffix.

// Neighbor is one kNN result: an indexed entity at distance 1 − Sim
// from the query. Canonical order is distance ascending, ID ascending
// on ties.
type Neighbor struct {
	ID   multiset.ID
	Dist float64
}

// worseNeighbor is the single kNN ordering comparator: a ranks below b
// on greater distance, or on greater ID at equal distances. It is the
// mirror of worseMatch under d = 1 − Sim.
func worseNeighbor(a, b Neighbor) bool {
	if a.Dist != b.Dist {
		return a.Dist > b.Dist
	}
	return a.ID > b.ID
}

// SortNeighbors orders a kNN list nearest first under worseNeighbor —
// the one canonical neighbor ordering; the fan-out merge and the tests
// all defer to it.
func SortNeighbors(ns []Neighbor) {
	slices.SortFunc(ns, func(a, b Neighbor) int {
		switch {
		case worseNeighbor(b, a):
			return -1
		case worseNeighbor(a, b):
			return 1
		default:
			return 0
		}
	})
}

// QueryKNN returns the k nearest indexed entities sharing at least one
// element with q, nearest first (ID ascending on ties). The list is
// shorter than k when fewer than k entities overlap the query.
func (ix *Index) QueryKNN(q Query, k int) []Neighbor {
	return ix.QueryKNNInto(q, k, nil)
}

// QueryKNNInto is QueryKNN appending into buf (typically a reused
// buffer truncated to buf[:0]) instead of allocating the result — the
// allocation-free form the sharded fan-out uses. The pass is the
// planned top-k pass: the current k-th-best similarity floor is the
// k-th-distance floor (floor_d = 1 − floor_sim), rising as nearer
// neighbors are verified.
func (ix *Index) QueryKNNInto(q Query, k int, buf []Neighbor) []Neighbor {
	if k <= 0 {
		return buf
	}
	hp := mergeHeapPool.Get().(*topkHeap)
	ms := ix.QueryTopKInto(q, k, (*hp)[:0])
	base := len(buf)
	for _, m := range ms {
		buf = append(buf, Neighbor{ID: m.ID, Dist: 1 - m.Sim})
	}
	*hp = ms[:0]
	mergeHeapPool.Put(hp)
	// 1 − sim is order-reversing but not injective in floating point:
	// adjacent sims can round to the same distance, creating distance
	// ties that did not exist in similarity space. Re-sorting in distance
	// space re-breaks those collapsed ties by ID, which is the order the
	// contract promises (SortFunc allocates nothing, so the hot path
	// stays 0 allocs/op).
	SortNeighbors(buf[base:])
	return buf
}

// MergeKNN folds per-partition kNN lists into the global k nearest,
// nearest first — the merge step of a sharded QueryKNN fan-out. Exact
// for the same reason MergeTopK is: an entity among the global k
// nearest is necessarily among its own partition's k nearest.
func MergeKNN(k int, lists ...[]Neighbor) []Neighbor {
	if k <= 0 {
		return nil
	}
	return MergeKNNInto(k, nil, lists...)
}

// knnHeapPool recycles the bounded heaps MergeKNNInto folds with,
// mirroring mergeHeapPool on the Match side.
var knnHeapPool = sync.Pool{New: func() any { return new(knnHeap) }}

// MergeKNNInto is MergeKNN appending into buf (typically a reused
// buffer truncated to buf[:0]) instead of allocating the result. Only
// the appended region is sorted; buf's existing contents are preserved.
func MergeKNNInto(k int, buf []Neighbor, lists ...[]Neighbor) []Neighbor {
	if k <= 0 {
		return buf
	}
	hp := knnHeapPool.Get().(*knnHeap)
	h := (*hp)[:0]
	for _, list := range lists {
		for _, n := range list {
			h.offer(n, k)
		}
	}
	base := len(buf)
	buf = append(buf, h...)
	*hp = h
	knnHeapPool.Put(hp)
	SortNeighbors(buf[base:])
	return buf
}

// knnHeap is a bounded heap under worseNeighbor whose root is always
// the neighbor the next nearer candidate should evict; among equal
// distances the smallest IDs survive.
type knnHeap []Neighbor

func (h knnHeap) worse(i, j int) bool { return worseNeighbor(h[i], h[j]) }

func (h *knnHeap) offer(n Neighbor, k int) {
	if len(*h) < k {
		*h = append(*h, n)
		i := len(*h) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if !h.worse(i, parent) {
				break
			}
			(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
			i = parent
		}
		return
	}
	if !worseNeighbor((*h)[0], n) {
		return // n does not beat the current k-th nearest
	}
	(*h)[0] = n
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < len(*h) && h.worse(l, least) {
			least = l
		}
		if r < len(*h) && h.worse(r, least) {
			least = r
		}
		if least == i {
			return
		}
		(*h)[i], (*h)[least] = (*h)[least], (*h)[i]
		i = least
	}
}
