//go:build !race

package index

// Native runs are cheap enough for a long soak; see the race variant
// for why -race runs a shorter schedule.
const churnRounds = 300
