package index

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"vsmartjoin/internal/multiset"
	"vsmartjoin/internal/ppjoin"
	"vsmartjoin/internal/records"
	"vsmartjoin/internal/similarity"
)

func randomMultisets(rng *rand.Rand, n, alphabet, maxLen, maxCount int) []multiset.Multiset {
	sets := make([]multiset.Multiset, 0, n)
	for i := 0; i < n; i++ {
		l := 1 + rng.Intn(maxLen)
		entries := make([]multiset.Entry, l)
		for j := range entries {
			entries[j] = multiset.Entry{
				Elem:  multiset.Elem(rng.Intn(alphabet)),
				Count: uint32(1 + rng.Intn(maxCount)),
			}
		}
		sets = append(sets, multiset.New(multiset.ID(i+1), entries))
	}
	return sets
}

func buildIndex(m similarity.Measure, sets []multiset.Multiset) *Index {
	ix := New(m)
	for _, s := range sets {
		ix.Add(s)
	}
	return ix
}

// oracleMatches restricts the naive all-pair join to the pairs involving
// the query ID.
func oracleMatches(sets []multiset.Multiset, m similarity.Measure, t float64, id multiset.ID) map[multiset.ID]float64 {
	out := make(map[multiset.ID]float64)
	for _, p := range ppjoin.Naive(sets, m, t) {
		switch id {
		case p.A:
			out[p.B] = p.Sim
		case p.B:
			out[p.A] = p.Sim
		}
	}
	return out
}

// TestQueryThresholdMatchesNaive is the core exactness property: for every
// measure and threshold, querying each indexed entity must return exactly
// the naive oracle's pairs for that entity.
func TestQueryThresholdMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 3; trial++ {
		sets := randomMultisets(rng, 40, 30, 8, 4)
		for _, m := range similarity.All() {
			ix := buildIndex(m, sets)
			for _, thr := range []float64{0, 0.3, 0.5, 0.9} {
				for _, q := range sets {
					got := ix.QueryThreshold(QueryOf(q), thr)
					want := oracleMatches(sets, m, thr, q.ID)
					if len(got) != len(want) {
						t.Fatalf("trial %d %s t=%v q=%d: got %d matches want %d\ngot: %v\nwant: %v",
							trial, m.Name(), thr, q.ID, len(got), len(want), got, want)
					}
					for _, match := range got {
						sim, ok := want[match.ID]
						if !ok {
							t.Fatalf("trial %d %s t=%v q=%d: unexpected match %v", trial, m.Name(), thr, q.ID, match)
						}
						if d := sim - match.Sim; d < -1e-9 || d > 1e-9 {
							t.Fatalf("trial %d %s t=%v q=%d: match %d sim %v want %v",
								trial, m.Name(), thr, q.ID, match.ID, match.Sim, sim)
						}
					}
				}
			}
		}
	}
}

// TestQueryTopKMatchesSortedThreshold checks top-k against the full
// threshold-0 ranking.
func TestQueryTopKMatchesSortedThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sets := randomMultisets(rng, 50, 25, 8, 3)
	for _, m := range similarity.All() {
		ix := buildIndex(m, sets)
		for _, q := range sets[:10] {
			all := ix.QueryThreshold(QueryOf(q), 0)
			for _, k := range []int{1, 3, 10, 1000} {
				got := ix.QueryTopK(QueryOf(q), k)
				wantLen := min(k, len(all))
				if len(got) != wantLen {
					t.Fatalf("%s q=%d k=%d: got %d matches want %d", m.Name(), q.ID, k, len(got), wantLen)
				}
				for i, match := range got {
					if match != all[i] {
						t.Fatalf("%s q=%d k=%d: rank %d got %v want %v", m.Name(), q.ID, k, i, match, all[i])
					}
				}
			}
		}
	}
}

// TestAdHocQueryIncludesQueryMass verifies that a query multiset not in
// the index is still weighed correctly: its full cardinality (including
// elements absent from the index alphabet, modeled via Extra) must appear
// in the similarity denominators.
func TestAdHocQueryIncludesQueryMass(t *testing.T) {
	ix := New(similarity.Ruzicka{})
	ix.Add(multiset.FromCounts(1, map[multiset.Elem]uint32{1: 2, 2: 2}))

	// Query {1:2, 2:2} plus 4 units of unknown mass: Σmin = 4, |q| = 8,
	// |c| = 4 → Ruzicka = 4 / (8 + 4 − 4) = 0.5.
	q := Query{
		Set:   multiset.FromCounts(0, map[multiset.Elem]uint32{1: 2, 2: 2}),
		Extra: similarity.UniStats{Card: 4, UCard: 2, SumSq: 8},
	}
	got := ix.QueryThreshold(q, 0.4)
	if len(got) != 1 || got[0].Sim != 0.5 {
		t.Fatalf("matches: %v", got)
	}
	// Raising the threshold above the diluted similarity must drop it.
	if got := ix.QueryThreshold(q, 0.6); len(got) != 0 {
		t.Fatalf("diluted query matched: %v", got)
	}
}

// TestRemoveAndReplace exercises tombstone handling: removed entities must
// vanish from results, replaced entities must answer with their new
// contents, and compaction must eventually reclaim stale postings.
func TestRemoveAndReplace(t *testing.T) {
	ix := New(similarity.Jaccard{})
	a := multiset.FromSet(1, []multiset.Elem{1, 2, 3})
	b := multiset.FromSet(2, []multiset.Elem{1, 2, 3})
	ix.Add(a)
	ix.Add(b)
	if got := ix.QueryThreshold(QueryOf(a), 0.9); len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("before remove: %v", got)
	}
	if !ix.Remove(2) {
		t.Fatal("remove reported missing")
	}
	if ix.Remove(2) {
		t.Fatal("double remove reported present")
	}
	if got := ix.QueryThreshold(QueryOf(a), 0); len(got) != 0 {
		t.Fatalf("after remove: %v", got)
	}

	// Replace entity 1 with disjoint contents: old postings must not match.
	ix.Add(multiset.FromSet(1, []multiset.Elem{7, 8}))
	if got := ix.QueryThreshold(QueryOf(multiset.FromSet(0, []multiset.Elem{1, 2, 3})), 0); len(got) != 0 {
		t.Fatalf("stale postings answered: %v", got)
	}
	if got := ix.QueryThreshold(QueryOf(multiset.FromSet(0, []multiset.Elem{7, 8})), 0.9); len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("replacement missing: %v", got)
	}

	// Churn enough to force compaction and re-check correctness after it.
	for i := 0; i < 64; i++ {
		ix.Add(multiset.FromSet(99, []multiset.Elem{multiset.Elem(i), multiset.Elem(i + 1)}))
	}
	s := ix.Stats()
	if s.Compactions == 0 {
		t.Fatalf("churn did not compact: %+v", s)
	}
	if got := ix.QueryThreshold(QueryOf(multiset.FromSet(0, []multiset.Elem{63, 64})), 0.9); len(got) != 1 || got[0].ID != 99 {
		t.Fatalf("post-compaction query: %v", got)
	}
	if s.Entities != 2 {
		t.Fatalf("entities: %+v", s)
	}
}

// TestSelfPairSkipped verifies an indexed entity never matches itself.
func TestSelfPairSkipped(t *testing.T) {
	ix := New(similarity.Ruzicka{})
	m := multiset.FromCounts(5, map[multiset.Elem]uint32{1: 3})
	ix.Add(m)
	if got := ix.QueryThreshold(QueryOf(m), 0); len(got) != 0 {
		t.Fatalf("self pair: %v", got)
	}
	// The same elements under ID 0 (ad hoc) must match it.
	q := multiset.FromCounts(0, map[multiset.Elem]uint32{1: 3})
	if got := ix.QueryThreshold(QueryOf(q), 0.99); len(got) != 1 || got[0].Sim != 1 {
		t.Fatalf("ad hoc query: %v", got)
	}
}

// TestEmptyQueries covers the degenerate inputs.
func TestEmptyQueries(t *testing.T) {
	ix := New(similarity.Ruzicka{})
	ix.Add(multiset.FromSet(1, []multiset.Elem{1}))
	if got := ix.QueryThreshold(Query{}, 0); got != nil {
		t.Fatalf("empty query: %v", got)
	}
	if got := ix.QueryTopK(QueryOf(multiset.FromSet(0, []multiset.Elem{1})), 0); got != nil {
		t.Fatalf("k=0: %v", got)
	}
	if m := ix.Snapshot(9); len(m.Entries) != 0 || m.ID != 9 {
		t.Fatalf("snapshot of missing id: %v", m)
	}
}

// TestStatsFunnel sanity-checks the pruning counters move in the right
// direction: probes ≥ candidates ≥ verified ≥ results, and the prefix
// filter actually skips posting lists on high thresholds.
func TestStatsFunnel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sets := randomMultisets(rng, 60, 20, 10, 5)
	ix := buildIndex(similarity.Ruzicka{}, sets)
	for _, q := range sets {
		ix.QueryThreshold(QueryOf(q), 0.9)
	}
	s := ix.Stats()
	if s.Queries != int64(len(sets)) {
		t.Fatalf("queries: %+v", s)
	}
	if s.Candidates > s.Probes || s.Verified > s.Candidates || s.Results > s.Verified {
		t.Fatalf("funnel out of order: %+v", s)
	}
	if s.Verified != s.Candidates-s.LengthPruned {
		t.Fatalf("length filter accounting: %+v", s)
	}
}

// TestConcurrentMutationAndQuery drives Add/Remove/Query/TopK/Stats from
// many goroutines; under -race this is the data-race gate for the RWMutex
// design, and every query must still return internally consistent results
// (verified sims, sorted order).
func TestConcurrentMutationAndQuery(t *testing.T) {
	ix := New(similarity.Ruzicka{})
	const writers, readers, ops = 4, 4, 200
	seed := func(g int) []multiset.Multiset {
		rng := rand.New(rand.NewSource(int64(100 + g)))
		return randomMultisets(rng, ops, 24, 6, 3)
	}
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sets := seed(g)
			for i, s := range sets {
				// Partition IDs per writer so replacements are intentional.
				s.ID = multiset.ID(g*ops + i + 1)
				ix.Add(s)
				if i%3 == 2 {
					ix.Remove(s.ID)
				}
			}
		}(g)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sets := seed(g)
			for i, s := range sets {
				q := QueryOf(multiset.Multiset{ID: 0, Entries: s.Entries})
				var got []Match
				if i%2 == 0 {
					got = ix.QueryThreshold(q, 0.5)
				} else {
					got = ix.QueryTopK(q, 5)
				}
				for j, m := range got {
					if m.Sim < 0 || m.Sim > 1+1e-9 {
						t.Errorf("sim out of range: %v", m)
					}
					if j > 0 && worseMatch(got[j-1], m) {
						t.Errorf("results unsorted: %v", got)
					}
				}
				ix.Stats()
			}
		}(g)
	}
	wg.Wait()
	if ix.Len() == 0 {
		t.Fatal("index empty after churn")
	}
}

// TestQueryAgainstPairsOracle cross-checks with records.SamePairs shaped
// data: union of per-entity query results at a threshold reconstructs the
// naive pair set exactly.
func TestQueryAgainstPairsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	sets := randomMultisets(rng, 45, 35, 9, 4)
	for _, m := range []similarity.Measure{similarity.Ruzicka{}, similarity.VectorCosine{}} {
		ix := buildIndex(m, sets)
		const thr = 0.4
		got := make(map[records.Pair]bool)
		for _, q := range sets {
			for _, match := range ix.QueryThreshold(QueryOf(q), thr) {
				p := records.Pair{A: q.ID, B: match.ID}.Canonical()
				p.Sim = 0 // key on identity; sims already checked elsewhere
				got[p] = true
			}
		}
		want := ppjoin.Naive(sets, m, thr)
		if len(got) != len(want) {
			t.Fatalf("%s: %d pairs via queries, %d via naive", m.Name(), len(got), len(want))
		}
		for _, p := range want {
			p.Sim = 0
			if !got[p] {
				t.Fatalf("%s: missing pair %v", m.Name(), p)
			}
		}
	}
}

func BenchmarkInternalQueryThreshold(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	sets := randomMultisets(rng, 2000, 400, 20, 5)
	ix := buildIndex(similarity.Ruzicka{}, sets)
	queries := sets[:64]
	for _, thr := range []float64{0.3, 0.7} {
		b.Run(fmt.Sprintf("t=%v", thr), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ix.QueryThreshold(QueryOf(queries[i%len(queries)]), thr)
			}
		})
	}
}

// TestBulkLoadMatchesAdds: the sealed bulk constructor must produce an
// index that answers every query exactly like one built by the same
// Adds — identical matches, scores, and order.
func TestBulkLoadMatchesAdds(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	sets := randomMultisets(rng, 50, 24, 8, 4)
	m := similarity.Ruzicka{}

	added := buildIndex(m, sets)
	bulk := New(m)
	if err := bulk.BulkLoad(cloneSets(sets)); err != nil {
		t.Fatal(err)
	}
	if bulk.Len() != added.Len() {
		t.Fatalf("bulk len %d, added len %d", bulk.Len(), added.Len())
	}
	// Bulk-loaded entities count as adds: a daemon bootstrapped from
	// snapshot files serves them and must not report zero mutations.
	if got, want := bulk.Stats().Adds, added.Stats().Adds; got != want || got == 0 {
		t.Fatalf("bulk-loaded Adds = %d, incremental Adds = %d; want equal and nonzero", got, want)
	}
	for _, q := range sets[:12] {
		for _, thr := range []float64{0, 0.4, 0.8} {
			g := bulk.QueryThreshold(QueryOf(q), thr)
			w := added.QueryThreshold(QueryOf(q), thr)
			if len(g) != len(w) {
				t.Fatalf("t=%v id=%d: %d vs %d matches", thr, q.ID, len(g), len(w))
			}
			for i := range g {
				if g[i] != w[i] {
					t.Fatalf("t=%v id=%d match %d: %v vs %v", thr, q.ID, i, g[i], w[i])
				}
			}
		}
		g, w := bulk.QueryTopK(QueryOf(q), 7), added.QueryTopK(QueryOf(q), 7)
		if len(g) != len(w) {
			t.Fatalf("topk id=%d: %d vs %d", q.ID, len(g), len(w))
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("topk id=%d match %d: %v vs %v", q.ID, i, g[i], w[i])
			}
		}
	}

	// Mutations after a bulk load go through the normal paths.
	bulk.Add(multiset.New(1000, []multiset.Entry{{Elem: 1, Count: 2}}))
	added.Add(multiset.New(1000, []multiset.Entry{{Elem: 1, Count: 2}}))
	if !bulk.Remove(sets[0].ID) || !added.Remove(sets[0].ID) {
		t.Fatal("remove after bulk load")
	}
	g := bulk.QueryThreshold(QueryOf(sets[1]), 0)
	w := added.QueryThreshold(QueryOf(sets[1]), 0)
	if len(g) != len(w) {
		t.Fatalf("after churn: %d vs %d", len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("after churn match %d: %v vs %v", i, g[i], w[i])
		}
	}
}

func cloneSets(sets []multiset.Multiset) []multiset.Multiset {
	out := make([]multiset.Multiset, len(sets))
	copy(out, sets)
	return out
}

func TestBulkLoadSealed(t *testing.T) {
	m := similarity.Ruzicka{}
	one := []multiset.Multiset{multiset.New(1, []multiset.Entry{{Elem: 1, Count: 1}})}
	ix := New(m)
	if err := ix.BulkLoad(one); err != nil {
		t.Fatal(err)
	}
	if err := ix.BulkLoad(one); err == nil {
		t.Fatal("bulk load into a non-empty index accepted")
	}

	if err := New(m).BulkLoad([]multiset.Multiset{
		multiset.New(2, nil), multiset.New(2, nil),
	}); err == nil {
		t.Fatal("duplicate IDs accepted")
	}
	if err := New(m).BulkLoad([]multiset.Multiset{
		multiset.New(3, nil), multiset.New(2, nil),
	}); err == nil {
		t.Fatal("descending IDs accepted")
	}
	if err := New(m).BulkLoad([]multiset.Multiset{multiset.New(0, nil)}); err == nil {
		t.Fatal("ID 0 accepted")
	}
}
