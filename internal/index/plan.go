package index

import (
	"vsmartjoin/internal/lsh"
	"vsmartjoin/internal/multiset"
	"vsmartjoin/internal/planner"
	"vsmartjoin/internal/similarity"
)

// This file wires internal/planner into the index: the partition
// statistics the planner decides from, the replan step every mutation
// runs, and the two alternative top-k passes (brute scan, LSH-seeded
// sweep) the plan can route queries through. Every strategy answers
// byte-identically — they are candidate-generation plans, not
// approximations — so a replan can never change what a query returns,
// only what it costs.

// LSH banding for the strategy's MinHash table. 8 bands × 2 rows = 16
// hash functions; the banding S-curve crosses ~(1/8)^(1/2) ≈ 0.35, so
// moderately similar entities collide in some band with high
// probability — good floor seeds. The seed is a fixed constant: every
// partition of every deployment shape builds the identical hash family,
// part of the determinism guarantee.
const (
	lshBands = 8
	lshRows  = 2
	lshSeed  = 0x5ee0a11d00c7ab1e
)

// SetPlanner installs a statistics-driven planner and re-decides the
// partition's strategy immediately (and then again after every
// mutation). A nil planner restores the construction default: the
// Prefix path, pinned.
func (ix *Index) SetPlanner(p planner.Planner) {
	ix.mu.Lock()
	ix.pl = p
	ix.replanLocked()
	ix.mu.Unlock()
}

// SetStrategy pins the partition to one strategy regardless of its
// statistics — the IndexOptions.Strategy override. Auto clears the pin,
// handing the decision back to the installed planner (or to the Prefix
// default when none is installed).
func (ix *Index) SetStrategy(s planner.Strategy) {
	ix.mu.Lock()
	ix.override = s
	ix.replanLocked()
	ix.mu.Unlock()
}

// Plan reports the strategy queries currently run through.
func (ix *Index) Plan() planner.Strategy {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.plan
}

// PartitionStats summarizes the partition for the planner: a snapshot
// of the statistics the index maintains incrementally on every
// mutation.
func (ix *Index) PartitionStats() planner.PartitionStats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.partitionStatsLocked()
}

func (ix *Index) partitionStatsLocked() planner.PartitionStats {
	return planner.PartitionStats{
		Entities:      len(ix.entities),
		Elements:      len(ix.postings),
		Postings:      ix.postingCount - ix.deadPostings,
		MaxPostingLen: ix.maxPosting,
		CardMean:      ix.cardDist.Mean(),
		CardP90:       ix.cardDist.Quantile(0.9),
		CardMax:       ix.cardDist.Max(),
	}
}

// replanLocked re-decides the partition's strategy after a mutation or
// a SetPlanner/SetStrategy call, building the LSH table on a
// transition into LSH and dropping it on a transition away. Caller
// holds the write lock. The decision chain: a non-Auto override wins;
// otherwise an installed planner decides from the current statistics;
// otherwise Prefix (so a bare New index behaves exactly as it did
// before planning existed).
func (ix *Index) replanLocked() {
	next := planner.Prefix
	switch {
	case ix.override != planner.Auto:
		next = ix.override
	case ix.pl != nil:
		next = ix.pl.Decide(ix.partitionStatsLocked())
		if next == planner.Auto {
			next = planner.Prefix
		}
	}
	if next == ix.plan {
		return
	}
	ix.plan = next
	if next == planner.LSH {
		ix.buildLSHLocked()
	} else {
		ix.lshTab = nil
	}
}

// buildLSHLocked (re)builds the MinHash band table over the live
// entities. Runs only on a plan transition into LSH; while the plan
// stays LSH the mutation paths maintain the table incrementally.
func (ix *Index) buildLSHLocked() {
	t := lsh.NewTable(lshBands, lshRows, lshSeed)
	for id, e := range ix.entities {
		t.Add(uint64(id), e.set)
	}
	ix.lshTab = t
}

// offerTopKLocked folds one live entity into the top-k pass: dedup by
// slot mark, length-filter against the current floor, verify, offer to
// the heap. Shared by the brute and LSH passes (their candidates come
// from the entity table, so no staleness check is needed — unlike
// posting lists, it holds no tombstones). Caller holds the read lock.
func (ix *Index) offerTopKLocked(s *queryScratch, q Query, qUni similarity.UniStats, e *entry, k int) {
	s.cnt.probes++
	if e.set.ID == q.Set.ID {
		return
	}
	if s.marks[e.slot] == s.epoch {
		return
	}
	s.marks[e.slot] = s.epoch
	s.cnt.cands++
	if len(s.heap) == k {
		if similarity.SimUpperBound(ix.measure, qUni, e.uni) < s.heap[0].Sim-boundEps {
			s.cnt.lenPruned++
			return
		}
	}
	// Verified counts from here: computing the intersection IS the
	// expensive verification step, and counting it before the overlap
	// check keeps the funnel invariant (Verified == Candidates −
	// LengthPruned) identical across strategies.
	s.cnt.verified++
	conj := similarity.ConjOf(q.Set, e.set)
	if conj.Common == 0 {
		// Only entities sharing an element qualify (t=0 semantics) —
		// posting-probe candidates always do, scan candidates may not.
		return
	}
	//lint:vsmart-allow lockscope the scan passes verify under the RLock so the rising floor keeps pruning, exactly like the prefix top-k pass
	sim := ix.measure.Sim(qUni, e.uni, conj)
	s.heap.offer(Match{ID: e.set.ID, Sim: sim}, k)
}

// topkBruteLocked scans the whole entity table — the plan for
// partitions small enough that probe setup dominates. The bounded heap
// keeps the best k under the total (Sim, ID) order, so the visit order
// of the map cannot change the answer.
func (ix *Index) topkBruteLocked(s *queryScratch, q Query, qUni similarity.UniStats, k int) {
	s.begin(int(ix.nextSlot))
	for _, e := range ix.entities {
		ix.offerTopKLocked(s, q, qUni, e, k)
	}
}

// topkLSHLocked is the stop-word-resistant plan: verify the MinHash
// band-bucket collisions first — the entities most likely to be highly
// similar — so the k-th-best floor is established after O(bands)
// bucket lookups, then sweep every remaining entity under that floor.
// The sweep is what keeps the strategy exact: bucket misses are not
// losses, they just verify later (or length-prune against the floor
// the buckets seeded).
func (ix *Index) topkLSHLocked(s *queryScratch, q Query, qUni similarity.UniStats, k int) {
	if ix.lshTab == nil {
		// Unreachable in practice (replanLocked builds the table when it
		// sets the plan), but a missing table must not cost correctness.
		ix.topkPrefixLocked(s, q, qUni, k)
		return
	}
	s.begin(int(ix.nextSlot))
	s.sig = ix.lshTab.Hasher().SignatureInto(q.Set, s.sig)
	for band := 0; band < ix.lshTab.Bands(); band++ {
		for _, id := range ix.lshTab.Bucket(band, s.sig) {
			if e, ok := ix.entities[multiset.ID(id)]; ok {
				ix.offerTopKLocked(s, q, qUni, e, k)
			}
		}
	}
	for _, e := range ix.entities {
		ix.offerTopKLocked(s, q, qUni, e, k)
	}
}
