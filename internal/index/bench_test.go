package index

// Micro-benchmarks for the query hot path, at the layer the pprof pass
// optimizes: no name tables, no JSON, no sharding — just posting-list
// probes, pruning, and verification against a live Index. Run with
// -benchmem: the steady-state path is expected to stay at ~0 allocs/op
// (the Into variants append into caller-owned buffers and all per-query
// scratch state is pooled). `make bench-json` records the numbers into
// BENCH_*.json; see the Makefile for the profile-collecting variants.

import (
	"fmt"
	"testing"

	"vsmartjoin/internal/multiset"
	"vsmartjoin/internal/similarity"
)

// benchSets synthesizes n entities with quadratically skewed element
// popularity (low element IDs shared by many entities), the same shape
// the public bench harness uses: 12 elements each, counts 1..5.
func benchSets(n int) []multiset.Multiset {
	out := make([]multiset.Multiset, n)
	for i := range out {
		entries := make([]multiset.Entry, 0, 12)
		for j := 0; j < 12; j++ {
			elem := multiset.Elem((i*31 + j*j*7) % (n/2 + 64))
			entries = append(entries, multiset.Entry{Elem: elem, Count: uint32(j%5 + 1)})
		}
		out[i] = multiset.New(multiset.ID(i+1), entries)
	}
	return out
}

func benchIndex(b *testing.B, n int) (*Index, []multiset.Multiset) {
	b.Helper()
	sets := benchSets(n)
	ix := New(similarity.Ruzicka{})
	for _, m := range sets {
		ix.Add(m)
	}
	return ix, sets
}

// BenchmarkQueryThreshold measures the full probe→prune→verify pipeline
// for threshold queries. The returned matches land in a reused buffer,
// so allocs/op is the hot path's own allocation count.
func BenchmarkQueryThreshold(b *testing.B) {
	ix, sets := benchIndex(b, 10000)
	for _, t := range []float64{0.1, 0.5, 0.9} {
		b.Run(fmt.Sprintf("t=%v", t), func(b *testing.B) {
			b.ReportAllocs()
			var buf []Match
			for i := 0; i < b.N; i++ {
				buf = ix.QueryThresholdInto(QueryOf(sets[i%len(sets)]), t, buf[:0])
			}
		})
	}
}

// BenchmarkQueryTopK measures ranked queries with the rising-floor
// cutoff, results into a reused buffer.
func BenchmarkQueryTopK(b *testing.B) {
	ix, sets := benchIndex(b, 10000)
	for _, k := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			var buf []Match
			for i := 0; i < b.N; i++ {
				buf = ix.QueryTopKInto(QueryOf(sets[i%len(sets)]), k, buf[:0])
			}
		})
	}
}

// BenchmarkQueryKNN measures the inner kNN read path — distance-ordered
// selection under the rising k-th-distance floor — results into a
// reused buffer, so allocs/op is the hot path's own allocation count
// and the 0-allocs contract QueryTopKInto holds extends to kNN.
func BenchmarkQueryKNN(b *testing.B) {
	ix, sets := benchIndex(b, 10000)
	for _, k := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			var buf []Neighbor
			for i := 0; i < b.N; i++ {
				buf = ix.QueryKNNInto(QueryOf(sets[i%len(sets)]), k, buf[:0])
			}
		})
	}
}
