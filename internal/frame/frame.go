// Package frame is the one length-prefixed, checksummed record framing
// shared by every durable file in the system: MapReduce shuffle-spill
// segments (internal/mrfs), write-ahead logs and snapshots
// (internal/wal), and the bulk-built index generations (internal/build).
//
// A frame is a uvarint payload length, a fixed 4-byte CRC-32C
// (Castagnoli) of the payload, and the payload bytes. Lengths are capped
// at MaxFrameLen so a corrupt prefix fails cleanly instead of driving a
// giant allocation; writers enforce the same cap so no reader-rejected
// file can ever be produced.
//
// Two access styles cover the two kinds of caller. Writer/Reader stream
// frames through buffered file I/O for sequential producers and
// consumers (segment files). Append/Parse work over in-memory byte
// slices for callers that need offset-level control (the WAL's
// append-rewind bookkeeping and snapshot loading). ReplayFile is the one
// torn-tail recovery routine: it feeds every intact leading frame of a
// log file to a callback and truncates the file at the first torn or
// corrupt frame — the expected shape of a crash mid-append.
package frame

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// MaxFrameLen caps a single frame payload. Legitimate records everywhere
// in the system — spill tuples, WAL mutations, snapshot entities — are a
// few kilobytes, far below this bound, so a larger length prefix can
// only come from a corrupt or truncated file.
const MaxFrameLen = 1 << 24

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// headerLen is the fixed checksum width; the length prefix is variable.
const headerLen = 4

// Append frames payload onto dst: uvarint length, CRC-32C, bytes.
func Append(dst, payload []byte) ([]byte, error) {
	if len(payload) > MaxFrameLen {
		return dst, fmt.Errorf("frame: payload %d exceeds %d", len(payload), MaxFrameLen)
	}
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...), nil
}

// Parse reads one frame from data at off. It returns the payload (an
// alias into data), the offset just past the frame, and whether the
// frame was intact; a torn, oversized, or checksum-failing frame reports
// ok=false, never an error or a panic.
func Parse(data []byte, off int) (payload []byte, next int, ok bool) {
	n, w := binary.Uvarint(data[off:])
	if w <= 0 || n > MaxFrameLen {
		return nil, off, false
	}
	off += w
	if len(data)-off < headerLen+int(n) {
		return nil, off, false
	}
	want := binary.LittleEndian.Uint32(data[off:])
	payload = data[off+headerLen : off+headerLen+int(n)]
	if crc32.Checksum(payload, castagnoli) != want {
		return nil, off, false
	}
	return payload, off + headerLen + int(n), true
}

// Writer streams frames into an io.Writer through a buffer. Call Flush
// before syncing or closing the underlying file.
type Writer struct {
	w     *bufio.Writer
	hdr   [binary.MaxVarintLen64 + headerLen]byte
	bytes int64
}

// NewWriter returns a Writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

// WriteFrame appends one frame. The payload is fully buffered or
// written by the time WriteFrame returns; partial frames can only be
// left behind by a failed Flush.
func (w *Writer) WriteFrame(payload []byte) error {
	if len(payload) > MaxFrameLen {
		return fmt.Errorf("frame: payload %d exceeds %d", len(payload), MaxFrameLen)
	}
	hdr := binary.AppendUvarint(w.hdr[:0], uint64(len(payload)))
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.Checksum(payload, castagnoli))
	if _, err := w.w.Write(hdr); err != nil {
		return fmt.Errorf("frame: write: %w", err)
	}
	if _, err := w.w.Write(payload); err != nil {
		return fmt.Errorf("frame: write: %w", err)
	}
	w.bytes += int64(len(hdr) + len(payload))
	return nil
}

// Bytes reports the total file bytes framed so far (headers included).
func (w *Writer) Bytes() int64 { return w.bytes }

// Flush pushes buffered frames to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader streams frames back out of an io.Reader. Corruption — an
// oversized or truncated frame, a checksum mismatch — is an error,
// never a panic; a clean end of input is io.EOF.
type Reader struct {
	r     *bufio.Reader
	bytes int64
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16)}
}

// Next decodes the next frame and returns its payload, freshly
// allocated (it does not alias reader state). At a clean end of input it
// returns io.EOF; an EOF mid-frame is corruption and reported as such.
func (r *Reader) Next() ([]byte, error) {
	cr := &countingByteReader{r: r.r}
	n, err := binary.ReadUvarint(cr)
	if err == io.EOF && cr.n == 0 {
		return nil, io.EOF // clean end; a mid-varint EOF arrives as ErrUnexpectedEOF
	}
	if err != nil {
		return nil, fmt.Errorf("frame: read length: %w", err)
	}
	if n > MaxFrameLen {
		return nil, fmt.Errorf("frame: corrupt length %d exceeds %d", n, MaxFrameLen)
	}
	var crc [headerLen]byte
	if _, err := io.ReadFull(r.r, crc[:]); err != nil {
		return nil, fmt.Errorf("frame: truncated checksum: %w", err)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r.r, payload); err != nil {
		return nil, fmt.Errorf("frame: truncated payload: %w", err)
	}
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(crc[:]) {
		return nil, errors.New("frame: checksum mismatch")
	}
	r.bytes += int64(cr.n) + headerLen + int64(n)
	return payload, nil
}

// Bytes reports the file bytes consumed by successfully decoded frames.
func (r *Reader) Bytes() int64 { return r.bytes }

// countingByteReader counts the bytes ReadUvarint consumes, so Bytes
// stays exact even on non-minimally encoded (i.e. corrupt) prefixes.
type countingByteReader struct {
	r io.ByteReader
	n int
}

func (c *countingByteReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.n++
	}
	return b, err
}

// ErrTorn, returned by a ReplayFile callback, marks the current frame as
// the log's torn tail: replay stops, the file is truncated just before
// the frame, and ReplayFile reports success. Callers use it when a frame
// is structurally intact (the checksum matches) but its payload does not
// decode — a half-written record flushed around a crash.
var ErrTorn = errors.New("frame: torn record")

// ReplayFile feeds every intact leading frame of the file at path to fn
// in order, then truncates the file after the last accepted frame if
// anything — a torn frame, a checksum failure, or fn returning ErrTorn —
// cut the replay short. A missing file replays nothing. Any other error
// from fn aborts the replay and is returned; the file is not truncated.
func ReplayFile(path string, fn func(payload []byte) error) error {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("frame: %w", err)
	}
	good := 0
	for good < len(data) {
		payload, next, ok := Parse(data, good)
		if !ok {
			break
		}
		if err := fn(payload); err != nil {
			if errors.Is(err, ErrTorn) {
				break
			}
			return err
		}
		good = next
	}
	if good < len(data) {
		if err := os.Truncate(path, int64(good)); err != nil {
			return fmt.Errorf("frame: truncate torn tail: %w", err)
		}
	}
	return nil
}
