package frame

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestStreamRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte("hello"),
		{},
		[]byte("a longer payload with some bytes in it"),
		{0x00, 0xff, 0x7f},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, p := range payloads {
		if err := w.WriteFrame(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Bytes() != int64(buf.Len()) {
		t.Fatalf("writer counted %d bytes, file has %d", w.Bytes(), buf.Len())
	}

	r := NewReader(bytes.NewReader(buf.Bytes()))
	for i, want := range payloads {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %q want %q", i, got, want)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected clean EOF, got %v", err)
	}
	if r.Bytes() != int64(buf.Len()) {
		t.Fatalf("reader counted %d bytes, file has %d", r.Bytes(), buf.Len())
	}
}

func TestAppendParseRoundTrip(t *testing.T) {
	var data []byte
	var err error
	payloads := [][]byte{[]byte("one"), {}, []byte("three")}
	for _, p := range payloads {
		if data, err = Append(data, p); err != nil {
			t.Fatal(err)
		}
	}
	off := 0
	for i, want := range payloads {
		got, next, ok := Parse(data, off)
		if !ok {
			t.Fatalf("frame %d not intact", i)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %q want %q", i, got, want)
		}
		off = next
	}
	if off != len(data) {
		t.Fatalf("parsed %d of %d bytes", off, len(data))
	}
}

// TestStreamMatchesAppend pins that the two access styles produce and
// accept the identical byte format.
func TestStreamMatchesAppend(t *testing.T) {
	payload := []byte("cross-check")
	appended, err := Append(nil, payload)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteFrame(payload); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(appended, buf.Bytes()) {
		t.Fatalf("Append wrote % x, Writer wrote % x", appended, buf.Bytes())
	}
	got, _, ok := Parse(buf.Bytes(), 0)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Parse of Writer output: ok=%v got %q", ok, got)
	}
}

func TestOversizedRejected(t *testing.T) {
	big := make([]byte, MaxFrameLen+1)
	if _, err := Append(nil, big); err == nil {
		t.Fatal("Append accepted an oversized payload")
	}
	var buf bytes.Buffer
	if err := NewWriter(&buf).WriteFrame(big); err == nil {
		t.Fatal("WriteFrame accepted an oversized payload")
	}
	// An oversized length prefix on the read side must error without
	// allocating the claimed size.
	data := binary.AppendUvarint(nil, MaxFrameLen+1)
	if _, err := NewReader(bytes.NewReader(data)).Next(); err == nil {
		t.Fatal("Reader accepted an oversized length prefix")
	}
	if _, _, ok := Parse(data, 0); ok {
		t.Fatal("Parse accepted an oversized length prefix")
	}
}

func TestReaderCorruption(t *testing.T) {
	good, err := Append(nil, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{
		"torn-header":  good[:1],
		"torn-payload": good[:len(good)-2],
		"bad-crc": func() []byte {
			c := append([]byte{}, good...)
			c[2] ^= 0xff // inside the CRC bytes
			return c
		}(),
		"flipped-payload": func() []byte {
			c := append([]byte{}, good...)
			c[len(c)-1] ^= 0xff
			return c
		}(),
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := NewReader(bytes.NewReader(data)).Next(); err == nil || err == io.EOF {
				t.Fatalf("corrupt frame accepted: %v", err)
			}
			if _, _, ok := Parse(data, 0); ok {
				t.Fatal("Parse accepted a corrupt frame")
			}
		})
	}
}

// mustAppend frames payload onto dst, failing the test on error — tests
// must not discard framing errors any more than production code may.
func mustAppend(t *testing.T, dst []byte, payload string) []byte {
	t.Helper()
	out, err := Append(dst, []byte(payload))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func replayInto(t *testing.T, path string, fn func([]byte) error) [][]byte {
	t.Helper()
	var got [][]byte
	err := ReplayFile(path, func(p []byte) error {
		got = append(got, append([]byte{}, p...))
		if fn != nil {
			return fn(p)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestReplayFileTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	data := mustAppend(t, nil, "keep-1")
	data = mustAppend(t, data, "keep-2")
	intact := len(data)
	data = append(data, binary.AppendUvarint(nil, 40)...) // torn header
	data = append(data, 0xde, 0xad)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	got := replayInto(t, path, nil)
	if len(got) != 2 || string(got[0]) != "keep-1" || string(got[1]) != "keep-2" {
		t.Fatalf("replayed %q", got)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != int64(intact) {
		t.Fatalf("file truncated to %d, want %d", st.Size(), intact)
	}
	// Idempotent: a second replay sees the same records and no tail.
	if got = replayInto(t, path, nil); len(got) != 2 {
		t.Fatalf("second replay: %q", got)
	}
}

func TestReplayFileErrTorn(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	data := mustAppend(t, nil, "good")
	data = mustAppend(t, data, "undecodable")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var n int
	err := ReplayFile(path, func(p []byte) error {
		if string(p) == "undecodable" {
			return ErrTorn
		}
		n++
		return nil
	})
	if err != nil || n != 1 {
		t.Fatalf("err=%v n=%d", err, n)
	}
	// The rejected frame and everything after it must be gone.
	if got := replayInto(t, path, nil); len(got) != 1 || string(got[0]) != "good" {
		t.Fatalf("after ErrTorn truncation: %q", got)
	}
}

func TestReplayFileHardError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	data := mustAppend(t, nil, "x")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	if err := ReplayFile(path, func([]byte) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("hard error not surfaced: %v", err)
	}
	// The file must be left untouched on a hard error.
	if got := replayInto(t, path, nil); len(got) != 1 {
		t.Fatalf("file mutated on hard error: %q", got)
	}
}

func TestReplayFileMissing(t *testing.T) {
	if err := ReplayFile(filepath.Join(t.TempDir(), "absent"), func([]byte) error {
		t.Fatal("callback on missing file")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
