package multiset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func ms(id ID, pairs ...uint64) Multiset {
	if len(pairs)%2 != 0 {
		panic("pairs must be even")
	}
	entries := make([]Entry, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		entries = append(entries, Entry{Elem: Elem(pairs[i]), Count: uint32(pairs[i+1])})
	}
	return New(id, entries)
}

func TestNewNormalizes(t *testing.T) {
	m := New(7, []Entry{{3, 2}, {1, 1}, {3, 5}, {2, 0}, {9, 1}})
	want := []Entry{{1, 1}, {3, 7}, {9, 1}}
	if len(m.Entries) != len(want) {
		t.Fatalf("got %v want %v", m.Entries, want)
	}
	for i := range want {
		if m.Entries[i] != want[i] {
			t.Fatalf("entry %d: got %v want %v", i, m.Entries[i], want[i])
		}
	}
	if m.ID != 7 {
		t.Fatalf("ID: got %d want 7", m.ID)
	}
}

func TestCardinalities(t *testing.T) {
	m := ms(1, 10, 3, 20, 1, 30, 6)
	if got := m.Cardinality(); got != 10 {
		t.Fatalf("Cardinality: got %d want 10", got)
	}
	if got := m.UnderlyingCardinality(); got != 3 {
		t.Fatalf("UnderlyingCardinality: got %d want 3", got)
	}
}

func TestCountAndContains(t *testing.T) {
	m := ms(1, 5, 2, 10, 7)
	if m.Count(5) != 2 || m.Count(10) != 7 || m.Count(6) != 0 {
		t.Fatal("Count wrong")
	}
	if !m.Contains(5) || m.Contains(999) {
		t.Fatal("Contains wrong")
	}
}

func TestIntersectionUnion(t *testing.T) {
	a := ms(1, 1, 3, 2, 5, 4, 1)
	b := ms(2, 2, 2, 3, 3, 4, 4)
	// intersection: elem2 min(5,2)=2, elem4 min(1,4)=1 → 3
	if got := IntersectionCardinality(a, b); got != 3 {
		t.Fatalf("intersection: got %d want 3", got)
	}
	// union = |a|+|b|-int = 9+9-3 = 15
	if got := UnionCardinality(a, b); got != 15 {
		t.Fatalf("union: got %d want 15", got)
	}
}

func TestSymmetricDifference(t *testing.T) {
	a := ms(1, 1, 3, 2, 5)
	b := ms(2, 2, 2, 3, 3)
	// |3-0| + |5-2| + |0-3| = 3+3+3 = 9
	if got := SymmetricDifference(a, b); got != 9 {
		t.Fatalf("symdiff: got %d want 9", got)
	}
	// identity: |aΔb| = |a|+|b| - 2|a∩b|
	want := a.Cardinality() + b.Cardinality() - 2*IntersectionCardinality(a, b)
	if got := SymmetricDifference(a, b); got != want {
		t.Fatalf("identity violated: got %d want %d", got, want)
	}
}

func TestCommonElementsAndDot(t *testing.T) {
	a := ms(1, 1, 2, 2, 3, 7, 1)
	b := ms(2, 2, 5, 7, 2, 9, 9)
	if got := CommonElements(a, b); got != 2 {
		t.Fatalf("common: got %d want 2", got)
	}
	// dot = 3*5 + 1*2 = 17
	if got := DotProduct(a, b); got != 17 {
		t.Fatalf("dot: got %d want 17", got)
	}
}

func TestUnderlyingAndIsSet(t *testing.T) {
	m := ms(1, 1, 3, 2, 1)
	u := m.Underlying()
	if !u.IsSet() || m.IsSet() {
		t.Fatal("IsSet wrong")
	}
	if u.Cardinality() != uint64(m.UnderlyingCardinality()) {
		t.Fatal("underlying cardinality mismatch")
	}
}

func TestExpandSetRepresentation(t *testing.T) {
	m := ms(1, 4, 2, 9, 1)
	exp := Expand(m)
	if len(exp) != int(m.Cardinality()) {
		t.Fatalf("expanded size %d want %d", len(exp), m.Cardinality())
	}
	want := []ExpandedElem{{4, 1}, {4, 2}, {9, 1}}
	for i := range want {
		if exp[i] != want[i] {
			t.Fatalf("item %d: got %v want %v", i, exp[i], want[i])
		}
	}
}

// Property: Ruzicka on multisets equals Jaccard on expanded sets. This is
// the identity that lets VCL treat multisets as sets.
func TestExpandedJaccardEqualsRuzicka(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		a := randomMultiset(rng, 1)
		b := randomMultiset(rng, 2)
		ia := IntersectionCardinality(a, b)
		ua := UnionCardinality(a, b)
		// expanded intersection: count shared ExpandedElems
		ea, eb := Expand(a), Expand(b)
		shared := 0
		seen := make(map[ExpandedElem]bool, len(ea))
		for _, x := range ea {
			seen[x] = true
		}
		for _, x := range eb {
			if seen[x] {
				shared++
			}
		}
		eu := len(ea) + len(eb) - shared
		if uint64(shared) != ia || uint64(eu) != ua {
			t.Fatalf("trial %d: expanded (%d,%d) vs multiset (%d,%d)", trial, shared, eu, ia, ua)
		}
	}
}

func randomMultiset(rng *rand.Rand, id ID) Multiset {
	n := rng.Intn(12)
	entries := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		entries = append(entries, Entry{Elem: Elem(rng.Intn(10)), Count: uint32(rng.Intn(5))})
	}
	return New(id, entries)
}

func TestQuickCommutativity(t *testing.T) {
	gen := func(vals []uint8) Multiset {
		entries := make([]Entry, 0, len(vals)/2)
		for i := 0; i+1 < len(vals); i += 2 {
			entries = append(entries, Entry{Elem: Elem(vals[i] % 16), Count: uint32(vals[i+1] % 4)})
		}
		return New(1, entries)
	}
	f := func(x, y []uint8) bool {
		a, b := gen(x), gen(y)
		return IntersectionCardinality(a, b) == IntersectionCardinality(b, a) &&
			UnionCardinality(a, b) == UnionCardinality(b, a) &&
			SymmetricDifference(a, b) == SymmetricDifference(b, a) &&
			DotProduct(a, b) == DotProduct(b, a) &&
			CommonElements(a, b) == CommonElements(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSelfOperations(t *testing.T) {
	f := func(vals []uint8) bool {
		entries := make([]Entry, 0, len(vals)/2)
		for i := 0; i+1 < len(vals); i += 2 {
			entries = append(entries, Entry{Elem: Elem(vals[i]), Count: uint32(vals[i+1] % 8)})
		}
		m := New(1, entries)
		return IntersectionCardinality(m, m) == m.Cardinality() &&
			UnionCardinality(m, m) == m.Cardinality() &&
			SymmetricDifference(m, m) == 0 &&
			CommonElements(m, m) == uint64(m.UnderlyingCardinality())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFromCountsAndFromSet(t *testing.T) {
	m := FromCounts(3, map[Elem]uint32{5: 2, 1: 0, 9: 1})
	if m.UnderlyingCardinality() != 2 || m.Cardinality() != 3 {
		t.Fatalf("FromCounts wrong: %v", m)
	}
	s := FromSet(4, []Elem{7, 3, 7, 1})
	if !s.IsSet() {
		t.Fatal("FromSet should produce a set")
	}
	if s.Count(7) != 1 || s.UnderlyingCardinality() != 3 {
		t.Fatalf("FromSet should dedupe: %v", s)
	}
}

func TestEqualAndClone(t *testing.T) {
	a := ms(1, 1, 2, 3, 4)
	b := a.Clone()
	if !Equal(a, b) {
		t.Fatal("clone should be equal")
	}
	b.Entries[0].Count++
	if Equal(a, b) {
		t.Fatal("mutated clone should differ")
	}
	c := ms(2, 1, 2, 3, 4)
	if Equal(a, c) {
		t.Fatal("different IDs should differ")
	}
}

func TestDict(t *testing.T) {
	d := NewDict()
	a := d.Intern("cookie-a")
	b := d.Intern("cookie-b")
	a2 := d.Intern("cookie-a")
	if a != a2 {
		t.Fatal("intern not stable")
	}
	if a == b {
		t.Fatal("distinct strings collided")
	}
	if d.Name(a) != "cookie-a" || d.Name(b) != "cookie-b" {
		t.Fatal("Name wrong")
	}
	if d.Len() != 2 {
		t.Fatalf("Len: got %d want 2", d.Len())
	}
	if _, ok := d.Lookup("missing"); ok {
		t.Fatal("Lookup found missing")
	}
	if d.Name(Elem(99)) != "" {
		t.Fatal("Name of unknown id should be empty")
	}
}

func TestDictConcurrent(t *testing.T) {
	d := NewDict()
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 200; i++ {
				d.Intern(string(rune('a' + i%26)))
			}
			done <- true
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if d.Len() != 26 {
		t.Fatalf("Len: got %d want 26", d.Len())
	}
}
