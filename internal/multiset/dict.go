package multiset

import "sync"

// Dict interns string alphabet values (cookies, shingles, words) into dense
// Elem identifiers and remembers the reverse mapping. It is safe for
// concurrent use.
type Dict struct {
	mu      sync.RWMutex
	byName  map[string]Elem
	byID    []string
	nextID  Elem
	baseLen int
}

// NewDict returns an empty dictionary. The first interned string receives
// Elem(0).
func NewDict() *Dict {
	return &Dict{byName: make(map[string]Elem)}
}

// Intern returns the Elem for name, assigning a fresh one on first sight.
func (d *Dict) Intern(name string) Elem {
	d.mu.RLock()
	id, ok := d.byName[name]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.byName[name]; ok {
		return id
	}
	id = d.nextID
	d.nextID++
	d.byName[name] = id
	d.byID = append(d.byID, name)
	return id
}

// Lookup returns the Elem for name without interning.
func (d *Dict) Lookup(name string) (Elem, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.byName[name]
	return id, ok
}

// Name returns the string for id, or "" if id was never assigned.
func (d *Dict) Name(id Elem) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(id) < len(d.byID) {
		return d.byID[id]
	}
	return ""
}

// Len reports the number of interned strings.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.byID)
}
