// Package multiset defines the entity data model of the similarity join:
// multisets ("bags") over a numeric alphabet, their underlying sets, and the
// cardinality notions used throughout the paper.
//
// A multiset Mi is a collection of ⟨ak, fi,k⟩ pairs where ak is an alphabet
// element (cookie, shingle, dimension index, ...) and fi,k ∈ ℕ is its
// multiplicity. Sets are multisets whose multiplicities are all 1; vectors
// over a totally ordered alphabet are multisets whose multiplicities are the
// coordinates.
package multiset

import (
	"fmt"
	"sort"
)

// Elem identifies an alphabet element. String alphabets are interned into
// Elem values with a Dict.
type Elem uint64

// ID identifies a multiset (an IP address, a document, ...).
type ID uint64

// Entry is one ⟨element, multiplicity⟩ pair of a multiset.
type Entry struct {
	Elem  Elem
	Count uint32
}

// Multiset is an entity: an identifier plus its entries sorted by element.
// The zero value is an empty multiset with ID 0.
type Multiset struct {
	ID      ID
	Entries []Entry // sorted by Elem, Count > 0, no duplicate Elems
}

// New builds a normalized multiset from possibly unsorted, possibly
// duplicated entries. Duplicate elements have their multiplicities summed;
// zero-multiplicity entries are dropped.
func New(id ID, entries []Entry) Multiset {
	out := make([]Entry, 0, len(entries))
	for _, e := range entries {
		if e.Count > 0 {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Elem < out[j].Elem })
	// Merge duplicates in place.
	w := 0
	for _, e := range out {
		if w > 0 && out[w-1].Elem == e.Elem {
			out[w-1].Count += e.Count
			continue
		}
		out[w] = e
		w++
	}
	return Multiset{ID: id, Entries: out[:w]}
}

// FromCounts builds a multiset from an element→multiplicity map.
func FromCounts(id ID, counts map[Elem]uint32) Multiset {
	entries := make([]Entry, 0, len(counts))
	for e, c := range counts {
		if c > 0 {
			entries = append(entries, Entry{Elem: e, Count: c})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Elem < entries[j].Elem })
	return Multiset{ID: id, Entries: entries}
}

// FromSet builds a set (all multiplicities 1) from element values.
// Duplicate elements are deduplicated, not summed.
func FromSet(id ID, elems []Elem) Multiset {
	entries := make([]Entry, len(elems))
	for i, e := range elems {
		entries[i] = Entry{Elem: e, Count: 1}
	}
	m := New(id, entries)
	for i := range m.Entries {
		m.Entries[i].Count = 1
	}
	return m
}

// Cardinality is |Mi| = Σk fi,k, the multiset cardinality.
func (m Multiset) Cardinality() uint64 {
	var total uint64
	for _, e := range m.Entries {
		total += uint64(e.Count)
	}
	return total
}

// UnderlyingCardinality is |U(Mi)|, the number of distinct elements present.
func (m Multiset) UnderlyingCardinality() int { return len(m.Entries) }

// Count returns the multiplicity of elem (0 if absent).
func (m Multiset) Count(elem Elem) uint32 {
	i := sort.Search(len(m.Entries), func(i int) bool { return m.Entries[i].Elem >= elem })
	if i < len(m.Entries) && m.Entries[i].Elem == elem {
		return m.Entries[i].Count
	}
	return 0
}

// Contains reports whether elem appears with positive multiplicity.
func (m Multiset) Contains(elem Elem) bool { return m.Count(elem) > 0 }

// Underlying returns U(Mi): the same entries with all multiplicities 1.
func (m Multiset) Underlying() Multiset {
	entries := make([]Entry, len(m.Entries))
	for i, e := range m.Entries {
		entries[i] = Entry{Elem: e.Elem, Count: 1}
	}
	return Multiset{ID: m.ID, Entries: entries}
}

// IsSet reports whether every multiplicity is exactly 1.
func (m Multiset) IsSet() bool {
	for _, e := range m.Entries {
		if e.Count != 1 {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of m.
func (m Multiset) Clone() Multiset {
	entries := make([]Entry, len(m.Entries))
	copy(entries, m.Entries)
	return Multiset{ID: m.ID, Entries: entries}
}

// String renders a compact debug form.
func (m Multiset) String() string {
	return fmt.Sprintf("M%d%v", m.ID, m.Entries)
}

// IntersectionCardinality is |Mi ∩ Mj| = Σk min(fi,k, fj,k).
func IntersectionCardinality(a, b Multiset) uint64 {
	var total uint64
	i, j := 0, 0
	for i < len(a.Entries) && j < len(b.Entries) {
		switch {
		case a.Entries[i].Elem < b.Entries[j].Elem:
			i++
		case a.Entries[i].Elem > b.Entries[j].Elem:
			j++
		default:
			total += uint64(min(a.Entries[i].Count, b.Entries[j].Count))
			i++
			j++
		}
	}
	return total
}

// UnionCardinality is |Mi ∪ Mj| = Σk max(fi,k, fj,k).
func UnionCardinality(a, b Multiset) uint64 {
	return a.Cardinality() + b.Cardinality() - IntersectionCardinality(a, b)
}

// SymmetricDifference is |Mi Δ Mj| = Σk |fi,k − fj,k|, the one disjunctive
// partial result discussed (and deferred) by the paper. Provided for
// completeness and used by tests of the NSM classification.
func SymmetricDifference(a, b Multiset) uint64 {
	var total uint64
	i, j := 0, 0
	for i < len(a.Entries) || j < len(b.Entries) {
		switch {
		case j >= len(b.Entries) || (i < len(a.Entries) && a.Entries[i].Elem < b.Entries[j].Elem):
			total += uint64(a.Entries[i].Count)
			i++
		case i >= len(a.Entries) || a.Entries[i].Elem > b.Entries[j].Elem:
			total += uint64(b.Entries[j].Count)
			j++
		default:
			ca, cb := a.Entries[i].Count, b.Entries[j].Count
			if ca > cb {
				total += uint64(ca - cb)
			} else {
				total += uint64(cb - ca)
			}
			i++
			j++
		}
	}
	return total
}

// CommonElements is |U(Mi) ∩ U(Mj)|, the number of shared distinct elements.
func CommonElements(a, b Multiset) uint64 {
	var total uint64
	i, j := 0, 0
	for i < len(a.Entries) && j < len(b.Entries) {
		switch {
		case a.Entries[i].Elem < b.Entries[j].Elem:
			i++
		case a.Entries[i].Elem > b.Entries[j].Elem:
			j++
		default:
			total++
			i++
			j++
		}
	}
	return total
}

// DotProduct is Σk fi,k · fj,k over the shared elements.
func DotProduct(a, b Multiset) uint64 {
	var total uint64
	i, j := 0, 0
	for i < len(a.Entries) && j < len(b.Entries) {
		switch {
		case a.Entries[i].Elem < b.Entries[j].Elem:
			i++
		case a.Entries[i].Elem > b.Entries[j].Elem:
			j++
		default:
			total += uint64(a.Entries[i].Count) * uint64(b.Entries[j].Count)
			i++
			j++
		}
	}
	return total
}

// ExpandedElem is one element of the set representation of a multiset in the
// style of Chaudhuri et al.: element mi,k with multiplicity f expands into
// the distinct items ⟨ak, 1⟩ ... ⟨ak, f⟩.
type ExpandedElem struct {
	Elem Elem
	Copy uint32 // 1-based copy index
}

// Expand returns the set representation of m. The result has exactly
// Cardinality() items and is ordered by (Elem, Copy).
func Expand(m Multiset) []ExpandedElem {
	out := make([]ExpandedElem, 0, m.Cardinality())
	for _, e := range m.Entries {
		for c := uint32(1); c <= e.Count; c++ {
			out = append(out, ExpandedElem{Elem: e.Elem, Copy: c})
		}
	}
	return out
}

// Equal reports whether a and b have the same ID and identical entries.
func Equal(a, b Multiset) bool {
	if a.ID != b.ID || len(a.Entries) != len(b.Entries) {
		return false
	}
	for i := range a.Entries {
		if a.Entries[i] != b.Entries[i] {
			return false
		}
	}
	return true
}
