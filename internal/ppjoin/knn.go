package ppjoin

import (
	"vsmartjoin/internal/multiset"
	"vsmartjoin/internal/similarity"
)

// This file is the quadratic kNN kernel the batch AllKNN job
// (internal/knn) refines with: exact k-nearest lists under the distance
// 1 − Sim, computed by brute force within one partition. Unlike the
// threshold joins above, kNN has no similarity cut-off to prune with —
// an entity's k-th neighbor may share nothing with it — so
// non-overlapping pairs are NOT skipped: they sit at distance exactly 1
// and legitimately fill a list when fewer than k entities overlap.

// Neighbor is one entry of a k-nearest list: an entity at distance
// 1 − Sim from the query. Canonical order is distance ascending, ID
// ascending on ties.
type Neighbor struct {
	ID   multiset.ID
	Dist float64
}

// worseNeighbor reports whether a ranks below b: greater distance, or
// greater ID at equal distances.
func worseNeighbor(a, b Neighbor) bool {
	if a.Dist != b.Dist {
		return a.Dist > b.Dist
	}
	return a.ID > b.ID
}

// insertNeighbor folds n into a bounded ascending-sorted list of at
// most k entries, dropping the worst overflow. O(k) per insert — the
// lists here are small (k per entity) and the kernel is quadratic in
// the partition size anyway.
func insertNeighbor(list []Neighbor, n Neighbor, k int) []Neighbor {
	if len(list) == k && !worseNeighbor(list[k-1], n) {
		return list
	}
	i := len(list)
	if len(list) < k {
		list = append(list, n)
	}
	for ; i > 0 && worseNeighbor(list[i-1], n); i-- {
		if i < len(list) {
			list[i] = list[i-1]
		}
	}
	list[i] = n
	return list
}

// KNNBrute computes every set's exact k nearest neighbors among the
// other sets: for each set, the k others with the smallest 1 − Sim
// distance, ties broken by ascending ID, each list sorted in that
// canonical order. Self-pairs are excluded. Lists are shorter than k
// only when fewer than k other sets exist.
func KNNBrute(sets []multiset.Multiset, m similarity.Measure, k int) [][]Neighbor {
	out := make([][]Neighbor, len(sets))
	if k <= 0 {
		return out
	}
	unis := make([]similarity.UniStats, len(sets))
	for i, s := range sets {
		unis[i] = similarity.UniOf(s)
	}
	for i := 0; i < len(sets); i++ {
		for j := i + 1; j < len(sets); j++ {
			sim := m.Sim(unis[i], unis[j], similarity.ConjOf(sets[i], sets[j]))
			d := 1 - sim
			out[i] = insertNeighbor(out[i], Neighbor{ID: sets[j].ID, Dist: d}, k)
			out[j] = insertNeighbor(out[j], Neighbor{ID: sets[i].ID, Dist: d}, k)
		}
	}
	return out
}

// KNNAgainst computes the k nearest neighbors of one external query
// multiset among members, in the canonical order — the probe-side
// kernel of the batch job's refine phase. A member sharing the query's
// ID is skipped.
func KNNAgainst(q multiset.Multiset, members []multiset.Multiset, m similarity.Measure, k int) []Neighbor {
	if k <= 0 {
		return nil
	}
	qUni := similarity.UniOf(q)
	var out []Neighbor
	for _, mem := range members {
		if mem.ID == q.ID {
			continue
		}
		sim := m.Sim(qUni, similarity.UniOf(mem), similarity.ConjOf(q, mem))
		out = insertNeighbor(out, Neighbor{ID: mem.ID, Dist: 1 - sim}, k)
	}
	return out
}
