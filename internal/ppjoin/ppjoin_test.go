package ppjoin

import (
	"math"
	"math/rand"
	"testing"

	"vsmartjoin/internal/multiset"
	"vsmartjoin/internal/records"
	"vsmartjoin/internal/similarity"
)

func randomSets(rng *rand.Rand, n, alphabet, maxLen int) []multiset.Multiset {
	sets := make([]multiset.Multiset, n)
	for i := range sets {
		l := 1 + rng.Intn(maxLen)
		elems := make([]multiset.Elem, l)
		for j := range elems {
			elems[j] = multiset.Elem(rng.Intn(alphabet))
		}
		sets[i] = multiset.FromSet(multiset.ID(i+1), elems)
	}
	return sets
}

func randomMultisets(rng *rand.Rand, n, alphabet, maxLen, maxCount int) []multiset.Multiset {
	sets := make([]multiset.Multiset, n)
	for i := range sets {
		l := 1 + rng.Intn(maxLen)
		entries := make([]multiset.Entry, l)
		for j := range entries {
			entries[j] = multiset.Entry{
				Elem:  multiset.Elem(rng.Intn(alphabet)),
				Count: uint32(1 + rng.Intn(maxCount)),
			}
		}
		sets[i] = multiset.New(multiset.ID(i+1), entries)
	}
	return sets
}

func TestNaiveSmallKnown(t *testing.T) {
	sets := []multiset.Multiset{
		multiset.FromSet(1, []multiset.Elem{1, 2, 3, 4}),
		multiset.FromSet(2, []multiset.Elem{1, 2, 3, 5}),
		multiset.FromSet(3, []multiset.Elem{7, 8}),
	}
	out := Naive(sets, similarity.Jaccard{}, 0.5)
	if len(out) != 1 || out[0].A != 1 || out[0].B != 2 {
		t.Fatalf("naive: %v", out)
	}
	if math.Abs(out[0].Sim-0.6) > 1e-12 {
		t.Fatalf("sim: %v", out[0].Sim)
	}
}

func TestVariantsAgreeWithNaiveJaccard(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		sets := randomSets(rng, 40, 30, 12)
		for _, thr := range []float64{0.3, 0.5, 0.7, 0.9} {
			want := Naive(sets, similarity.Jaccard{}, thr)
			for _, v := range []Variant{VariantAllPairs, VariantPPJoin, VariantPPJoinPlus} {
				got, _ := JoinJaccard(sets, thr, v)
				if !records.SamePairs(got, want, 1e-9) {
					t.Fatalf("trial %d t=%v %v: got %d pairs want %d\ngot:  %v\nwant: %v",
						trial, thr, v, len(got), len(want), got, want)
				}
			}
		}
	}
}

func TestRuzickaViaExpansionAgreesWithNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		sets := randomMultisets(rng, 30, 20, 8, 4)
		for _, thr := range []float64{0.4, 0.6, 0.8} {
			want := Naive(sets, similarity.Ruzicka{}, thr)
			for _, v := range []Variant{VariantAllPairs, VariantPPJoin, VariantPPJoinPlus} {
				got, _ := JoinRuzicka(sets, thr, v)
				if !records.SamePairs(got, want, 1e-9) {
					t.Fatalf("trial %d t=%v %v: got %v want %v", trial, thr, v, got, want)
				}
			}
		}
	}
}

func TestZeroThresholdFallsBackToNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sets := randomSets(rng, 15, 10, 6)
	want := Naive(sets, similarity.Jaccard{}, 0)
	got, _ := JoinJaccard(sets, 0, VariantPPJoinPlus)
	if !records.SamePairs(got, want, 1e-9) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestPositionalFilterPrunes(t *testing.T) {
	// Construct many sets sharing one rare-ish token but nothing else:
	// PPJoin should generate fewer or equal verifications than AllPairs.
	rng := rand.New(rand.NewSource(4))
	sets := randomSets(rng, 120, 40, 14)
	_, ap := JoinJaccard(sets, 0.6, VariantAllPairs)
	_, pp := JoinJaccard(sets, 0.6, VariantPPJoin)
	if pp.Verified > ap.Verified {
		t.Fatalf("ppjoin verified more than allpairs: %d vs %d", pp.Verified, ap.Verified)
	}
	_, ppp := JoinJaccard(sets, 0.6, VariantPPJoinPlus)
	if ppp.Verified > pp.Verified {
		t.Fatalf("ppjoin+ verified more than ppjoin: %d vs %d", ppp.Verified, pp.Verified)
	}
}

func TestPrefixLen(t *testing.T) {
	// |x|=10, t=0.8 → prefix = 10 − 8 + 1 = 3.
	if got := prefixLen(10, 0.8); got != 3 {
		t.Fatalf("prefixLen(10,0.8)=%d want 3", got)
	}
	if got := prefixLen(10, 0.1); got != 10 {
		t.Fatalf("prefixLen(10,0.1)=%d want 10", got)
	}
	if got := prefixLen(0, 0.5); got != 0 {
		t.Fatalf("prefixLen(0,0.5)=%d want 0", got)
	}
	// t=1 → prefix 1: only exact duplicates share their single prefix token.
	if got := prefixLen(7, 1); got != 1 {
		t.Fatalf("prefixLen(7,1)=%d want 1", got)
	}
}

func TestOverlapThreshold(t *testing.T) {
	// sx=sy=10, t=0.5 → α = ceil(1/3·20) = 7.
	if got := overlapThreshold(10, 10, 0.5); got != 7 {
		t.Fatalf("alpha=%d want 7", got)
	}
}

func TestTokenizeFrequencyOrder(t *testing.T) {
	sets := []multiset.Multiset{
		multiset.FromSet(1, []multiset.Elem{100, 200}),
		multiset.FromSet(2, []multiset.Elem{100, 300}),
		multiset.FromSet(3, []multiset.Elem{100}),
	}
	recs := Tokenize(sets)
	// Element 100 has frequency 3 — it must be the last token everywhere.
	for _, r := range recs {
		if len(r.tokens) > 1 && r.tokens[0] >= r.tokens[len(r.tokens)-1] {
			t.Fatalf("tokens not sorted: %v", r.tokens)
		}
	}
	// The rare tokens get the small ranks.
	if recs[2].tokens[0] != 2 {
		t.Fatalf("frequency rank wrong: %v", recs[2].tokens)
	}
}

func TestSuffixFilterLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		x := sortedTokens(rng, 12)
		y := sortedTokens(rng, 12)
		// True Hamming distance of the suffix multivalue sets:
		o := overlap(x, y)
		trueH := len(x) + len(y) - 2*o
		for _, hmax := range []int{0, 2, 5, 100} {
			if got := suffixFilter(x, y, hmax, 1); got > trueH && got <= hmax {
				// It may overestimate only when it exceeds hmax (early
				// termination); a value within budget must be a valid
				// lower bound.
				t.Fatalf("suffixFilter overestimated within budget: got %d true %d hmax %d x=%v y=%v",
					got, trueH, hmax, x, y)
			}
			if got := suffixFilter(x, y, hmax, 1); got < 0 {
				t.Fatalf("negative distance")
			}
		}
	}
}

func sortedTokens(rng *rand.Rand, maxLen int) []token {
	l := rng.Intn(maxLen)
	seen := map[token]bool{}
	for len(seen) < l {
		seen[token(rng.Intn(30))] = true
	}
	out := make([]token, 0, l)
	for t := range seen {
		out = append(out, t)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func TestStatsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	sets := randomSets(rng, 60, 25, 10)
	pairs, stats := JoinJaccard(sets, 0.5, VariantPPJoin)
	if stats.Results != len(pairs) {
		t.Fatalf("Results=%d len=%d", stats.Results, len(pairs))
	}
	if stats.Candidates == 0 || stats.Verified == 0 {
		t.Fatalf("stats empty: %+v", stats)
	}
	if VariantAllPairs.String() != "allpairs" || VariantPPJoin.String() != "ppjoin" ||
		VariantPPJoinPlus.String() != "ppjoin+" {
		t.Fatal("variant names wrong")
	}
}

func TestNaiveExcludesDisjointPairs(t *testing.T) {
	sets := []multiset.Multiset{
		multiset.FromSet(1, []multiset.Elem{1}),
		multiset.FromSet(2, []multiset.Elem{2}),
	}
	out := Naive(sets, similarity.Jaccard{}, 0)
	if len(out) != 0 {
		t.Fatalf("disjoint pair emitted: %v", out)
	}
}
