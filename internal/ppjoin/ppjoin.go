// Package ppjoin implements the sequential exact set-similarity join
// algorithms the paper builds on and compares against: the naive quadratic
// join, AllPairs (Bayardo et al.), PPJoin (prefix + size + positional
// filtering), and PPJoin+ (additionally suffix filtering) — all for the
// Jaccard measure over sets, with a Ruzicka wrapper that applies them to
// multisets through the expanded set representation.
//
// These serve three roles: the reference oracle for the MapReduce
// algorithms' tests, the kernel logic reused by the VCL baseline, and a
// standalone library for in-memory joins.
package ppjoin

import (
	"math"
	"sort"

	"vsmartjoin/internal/multiset"
	"vsmartjoin/internal/records"
	"vsmartjoin/internal/similarity"
)

// Naive computes the exact all-pair join by brute force — the O(n²) ground
// truth used to validate every other algorithm.
func Naive(sets []multiset.Multiset, m similarity.Measure, t float64) []records.Pair {
	var out []records.Pair
	unis := make([]similarity.UniStats, len(sets))
	for i, s := range sets {
		unis[i] = similarity.UniOf(s)
	}
	for i := 0; i < len(sets); i++ {
		for j := i + 1; j < len(sets); j++ {
			conj := similarity.ConjOf(sets[i], sets[j])
			if conj.Common == 0 {
				// Non-overlapping pairs are never emitted by inverted-index
				// algorithms; exclude them even when Sim ≥ t is impossible
				// anyway for the supported measures.
				continue
			}
			sim := m.Sim(unis[i], unis[j], conj)
			if sim+1e-12 >= t {
				out = append(out, records.Pair{A: sets[i].ID, B: sets[j].ID, Sim: sim}.Canonical())
			}
		}
	}
	records.SortPairs(out)
	return out
}

// token is an element re-numbered by ascending global frequency, the
// canonical ordering that makes prefixes maximally selective.
type token = int32

// tokenized is a set as an ordered token array.
type tokenized struct {
	id     multiset.ID
	tokens []token
}

// Tokenize converts sets to frequency-ordered token arrays. Multiplicities
// are ignored: callers join multisets via ExpandMultisets first.
func Tokenize(sets []multiset.Multiset) []tokenized {
	freq := make(map[multiset.Elem]int)
	for _, s := range sets {
		for _, e := range s.Entries {
			freq[e.Elem]++
		}
	}
	elems := make([]multiset.Elem, 0, len(freq))
	for e := range freq {
		elems = append(elems, e)
	}
	sort.Slice(elems, func(i, j int) bool {
		if freq[elems[i]] != freq[elems[j]] {
			return freq[elems[i]] < freq[elems[j]]
		}
		return elems[i] < elems[j]
	})
	rank := make(map[multiset.Elem]token, len(elems))
	for i, e := range elems {
		rank[e] = token(i)
	}
	out := make([]tokenized, len(sets))
	for i, s := range sets {
		ts := make([]token, len(s.Entries))
		for j, e := range s.Entries {
			ts[j] = rank[e.Elem]
		}
		sort.Slice(ts, func(a, b int) bool { return ts[a] < ts[b] })
		out[i] = tokenized{id: s.ID, tokens: ts}
	}
	return out
}

// ExpandMultisets converts multisets to sets via the Chaudhuri et al.
// expansion, so Jaccard on the result equals Ruzicka on the input.
func ExpandMultisets(sets []multiset.Multiset) []multiset.Multiset {
	out := make([]multiset.Multiset, len(sets))
	for i, s := range sets {
		exp := multiset.Expand(s)
		entries := make([]multiset.Entry, len(exp))
		for j, x := range exp {
			// Pack (elem, copy) into a single element id. Copy indices are
			// bounded by the multiplicity; 2^40 distinct elements with
			// 2^24 copies is ample for any realistic workload.
			entries[j] = multiset.Entry{
				Elem:  x.Elem<<24 | multiset.Elem(x.Copy),
				Count: 1,
			}
		}
		out[i] = multiset.New(s.ID, entries)
	}
	return out
}

func ceilF(x float64) int { return int(math.Ceil(x - 1e-9)) }

// prefixLen is the Jaccard probing/indexing prefix length for a set of the
// given size: |x| − ⌈t·|x|⌉ + 1.
func prefixLen(size int, t float64) int {
	p := size - ceilF(t*float64(size)) + 1
	if p < 0 {
		return 0
	}
	if p > size {
		return size
	}
	return p
}

// overlapThreshold is the minimum raw overlap α two sets of the given
// sizes need for Jaccard ≥ t.
func overlapThreshold(sx, sy int, t float64) int {
	return ceilF(t / (1 + t) * float64(sx+sy))
}

// overlap computes |x ∩ y| for sorted token arrays.
func overlap(x, y []token) int {
	i, j, n := 0, 0, 0
	for i < len(x) && j < len(y) {
		switch {
		case x[i] < y[j]:
			i++
		case x[i] > y[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

func jaccardOf(o, sx, sy int) float64 {
	u := sx + sy - o
	if u == 0 {
		return 0
	}
	return float64(o) / float64(u)
}

// Variant selects the filtering level of the prefix-filter join family.
type Variant int

const (
	// VariantAllPairs uses prefix + size filtering only.
	VariantAllPairs Variant = iota
	// VariantPPJoin adds positional filtering.
	VariantPPJoin
	// VariantPPJoinPlus adds suffix filtering.
	VariantPPJoinPlus
)

func (v Variant) String() string {
	switch v {
	case VariantAllPairs:
		return "allpairs"
	case VariantPPJoin:
		return "ppjoin"
	case VariantPPJoinPlus:
		return "ppjoin+"
	default:
		return "variant?"
	}
}

// Stats reports the work a join did, for the filter-effectiveness benches.
type Stats struct {
	Candidates int // candidate pairs generated from prefixes
	Pruned     int // candidates dropped by positional/suffix filters
	Verified   int // candidates verified exactly
	Results    int
}

// JoinJaccard finds all pairs of sets with Jaccard ≥ t using the selected
// prefix-filter variant. Inputs are treated as sets (multiplicities must
// be 1; use ExpandMultisets + JoinRuzicka for multisets).
func JoinJaccard(sets []multiset.Multiset, t float64, variant Variant) ([]records.Pair, Stats) {
	var stats Stats
	if t <= 0 || t > 1 {
		// Prefix filtering degenerates at t = 0 (prefix = whole set); fall
		// back to the naive join for correctness.
		out := Naive(sets, similarity.Jaccard{}, t)
		stats.Results = len(out)
		return out, stats
	}
	recs := Tokenize(sets)
	order := make([]int, len(recs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ra, rb := recs[order[a]], recs[order[b]]
		if len(ra.tokens) != len(rb.tokens) {
			return len(ra.tokens) < len(rb.tokens)
		}
		return ra.id < rb.id
	})

	type posting struct {
		rec int // index into recs
		pos int // token position in the record
	}
	index := make(map[token][]posting)
	var out []records.Pair

	for _, xi := range order {
		x := recs[xi]
		sx := len(x.tokens)
		if sx == 0 {
			continue
		}
		px := prefixLen(sx, t)
		type cand struct {
			ovl  int // overlap accumulated within the prefixes
			xLas int // last matched prefix position in x
			yLas int // last matched prefix position in y
			dead bool
		}
		cands := make(map[int]*cand)
		minSize := ceilF(t * float64(sx))
		for i := 0; i < px; i++ {
			w := x.tokens[i]
			for _, p := range index[w] {
				y := recs[p.rec]
				sy := len(y.tokens)
				if sy < minSize {
					continue // size filter
				}
				c, seen := cands[p.rec]
				if !seen {
					c = &cand{}
					cands[p.rec] = c
					stats.Candidates++
				}
				if c.dead {
					continue
				}
				if variant >= VariantPPJoin {
					// Positional filter: tokens before these positions can
					// no longer contribute to the overlap.
					alpha := overlapThreshold(sx, sy, t)
					ubound := c.ovl + 1 + minInt(sx-i-1, sy-p.pos-1)
					if ubound < alpha {
						c.dead = true
						stats.Pruned++
						continue
					}
				}
				c.ovl++
				c.xLas, c.yLas = i, p.pos
			}
		}
		for yi, c := range cands {
			if c.dead {
				continue
			}
			y := recs[yi]
			sy := len(y.tokens)
			alpha := overlapThreshold(sx, sy, t)
			if variant >= VariantPPJoinPlus {
				// Suffix filter on the tokens after the last prefix match.
				xs := x.tokens[c.xLas+1:]
				ys := y.tokens[c.yLas+1:]
				hmax := sx + sy - 2*alpha - (c.xLas + c.yLas + 2 - 2*c.ovl)
				if hmax < 0 || suffixFilter(xs, ys, hmax, 1) > hmax {
					stats.Pruned++
					continue
				}
			}
			stats.Verified++
			o := overlap(x.tokens, y.tokens)
			if o < alpha {
				continue
			}
			sim := jaccardOf(o, sx, sy)
			if sim+1e-12 >= t {
				out = append(out, records.Pair{A: x.id, B: y.id, Sim: sim}.Canonical())
			}
		}
		for i := 0; i < px; i++ {
			index[x.tokens[i]] = append(index[x.tokens[i]], posting{rec: xi, pos: i})
		}
	}
	records.SortPairs(out)
	stats.Results = len(out)
	return out, stats
}

// JoinRuzicka joins multisets under Ruzicka by expanding them to sets and
// running the Jaccard join (the identities coincide).
func JoinRuzicka(sets []multiset.Multiset, t float64, variant Variant) ([]records.Pair, Stats) {
	return JoinJaccard(ExpandMultisets(sets), t, variant)
}

const suffixFilterMaxDepth = 3

// suffixFilter lower-bounds the Hamming distance between two sorted token
// suffixes by recursive partitioning (Xiao et al., WWW'08). It never
// underestimates beyond the true Hamming distance's lower bound, so
// pruning with it preserves exactness (candidates that pass are still
// verified).
func suffixFilter(x, y []token, hmax, depth int) int {
	if len(x) == 0 || len(y) == 0 {
		return len(x) + len(y)
	}
	d := len(x) - len(y)
	if d < 0 {
		d = -d
	}
	if depth > suffixFilterMaxDepth {
		return d
	}
	if d > hmax {
		return d
	}
	mid := y[len(y)/2]
	yl, yr := splitAround(y, mid)
	xl, xr := splitAround(x, mid)
	found := 0
	if idx := sort.Search(len(x), func(i int) bool { return x[i] >= mid }); idx < len(x) && x[idx] == mid {
		found = 1
	}
	// y's mid token always exists in y.
	diff := func(a, b int) int {
		if a > b {
			return a - b
		}
		return b - a
	}
	h := diff(len(xl), len(yl)) + diff(len(xr), len(yr)) + (1 - found)
	if h > hmax {
		return h
	}
	hl := suffixFilter(xl, yl, hmax-diff(len(xr), len(yr))-(1-found), depth+1)
	h = hl + diff(len(xr), len(yr)) + (1 - found)
	if h > hmax {
		return h
	}
	hr := suffixFilter(xr, yr, hmax-hl-(1-found), depth+1)
	return hl + hr + (1 - found)
}

// splitAround partitions a sorted token slice into (< mid, > mid).
func splitAround(s []token, mid token) (left, right []token) {
	lo := sort.Search(len(s), func(i int) bool { return s[i] >= mid })
	hi := sort.Search(len(s), func(i int) bool { return s[i] > mid })
	return s[:lo], s[hi:]
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
