package ppjoin

import (
	"math/rand"
	"sort"
	"testing"

	"vsmartjoin/internal/multiset"
	"vsmartjoin/internal/similarity"
)

// oracleKNN recomputes one set's k-nearest list the slow, obvious way:
// every pairwise distance, full sort under the canonical (distance,
// ID) order, truncate.
func oracleKNN(sets []multiset.Multiset, i, k int, m similarity.Measure) []Neighbor {
	var out []Neighbor
	for j, s := range sets {
		if j == i {
			continue
		}
		sim := m.Sim(similarity.UniOf(sets[i]), similarity.UniOf(s), similarity.ConjOf(sets[i], s))
		out = append(out, Neighbor{ID: s.ID, Dist: 1 - sim})
	}
	sort.Slice(out, func(a, b int) bool { return worseNeighbor(out[b], out[a]) })
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func neighborsEqual(a, b []Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Dist != b[i].Dist {
			return false
		}
	}
	return true
}

// TestKNNBruteMatchesOracle gates the bounded-insert kernel against the
// sort-everything oracle — in particular the distance-tie ID ordering
// (duplicate multisets) and non-overlapping pairs sitting at exactly 1.
func TestKNNBruteMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	sets := randomMultisets(rng, 30, 12, 5, 3)
	// Duplicates of set 0 create maximal tie groups; a disjoint set
	// sits at distance exactly 1 from everything in the band.
	sets = append(sets,
		multiset.Multiset{ID: 100, Entries: sets[0].Entries},
		multiset.Multiset{ID: 101, Entries: sets[0].Entries},
		multiset.New(102, []multiset.Entry{{Elem: 9999, Count: 1}}),
	)
	m, err := similarity.ByName("jaccard")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 3, 50} {
		lists := KNNBrute(sets, m, k)
		for i := range sets {
			want := oracleKNN(sets, i, k, m)
			if !neighborsEqual(lists[i], want) {
				t.Fatalf("k=%d set %d: KNNBrute %v, oracle %v", k, sets[i].ID, lists[i], want)
			}
		}
	}
	if lists := KNNBrute(sets, m, 0); len(lists) != len(sets) {
		t.Fatal("k=0 must still return one (empty) slot per set")
	}
}

// TestKNNAgainstMatchesOracle gates the probe-side kernel: an external
// query against a member slice, with a same-ID member skipped — the
// refine phase's self-pair exclusion.
func TestKNNAgainstMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sets := randomMultisets(rng, 25, 10, 5, 3)
	m, err := similarity.ByName("ruzicka")
	if err != nil {
		t.Fatal(err)
	}
	q := sets[4] // present in members: must be excluded from its own list
	for _, k := range []int{1, 5, 50} {
		got := KNNAgainst(q, sets, m, k)
		want := oracleKNN(sets, 4, k, m)
		if !neighborsEqual(got, want) {
			t.Fatalf("k=%d: KNNAgainst %v, oracle %v", k, got, want)
		}
		for _, n := range got {
			if n.ID == q.ID {
				t.Fatalf("k=%d: query's own ID in its list", k)
			}
		}
	}
	if got := KNNAgainst(q, sets, m, 0); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
}

// TestInsertNeighborBounded pins the bounded-insert invariants directly:
// capacity k is never exceeded, the list stays sorted, and an arrival
// no better than the current worst of a full list is a no-op.
func TestInsertNeighborBounded(t *testing.T) {
	var list []Neighbor
	arrivals := []Neighbor{
		{ID: 5, Dist: 0.5}, {ID: 3, Dist: 0.2}, {ID: 9, Dist: 0.8},
		{ID: 1, Dist: 0.2}, {ID: 7, Dist: 0.1}, {ID: 2, Dist: 0.5},
	}
	for _, n := range arrivals {
		list = insertNeighbor(list, n, 3)
		if len(list) > 3 {
			t.Fatalf("list grew past k: %v", list)
		}
		for i := 1; i < len(list); i++ {
			if worseNeighbor(list[i-1], list[i]) {
				t.Fatalf("list out of order after %v: %v", n, list)
			}
		}
	}
	want := []Neighbor{{ID: 7, Dist: 0.1}, {ID: 1, Dist: 0.2}, {ID: 3, Dist: 0.2}}
	if !neighborsEqual(list, want) {
		t.Fatalf("final list %v, want %v", list, want)
	}
	if got := insertNeighbor(list, Neighbor{ID: 8, Dist: 0.9}, 3); !neighborsEqual(got, want) {
		t.Fatalf("worse-than-worst arrival mutated the list: %v", got)
	}
}
