package graph

import (
	"math/rand"
	"testing"

	"vsmartjoin/internal/multiset"
	"vsmartjoin/internal/records"
)

func TestUnionFindBasics(t *testing.T) {
	uf := NewUnionFind()
	uf.Union(1, 2)
	uf.Union(3, 4)
	if uf.Connected(1, 3) {
		t.Fatal("1 and 3 should be separate")
	}
	uf.Union(2, 3)
	if !uf.Connected(1, 4) {
		t.Fatal("1 and 4 should be connected")
	}
}

func TestComponentsSortedLargestFirst(t *testing.T) {
	uf := NewUnionFind()
	uf.Union(10, 11)
	uf.Union(1, 2)
	uf.Union(2, 3)
	uf.Add(99)
	comps := uf.Components()
	if len(comps) != 3 {
		t.Fatalf("components: %v", comps)
	}
	if len(comps[0]) != 3 || comps[0][0] != 1 {
		t.Fatalf("largest first wrong: %v", comps)
	}
	if len(comps[2]) != 1 || comps[2][0] != 99 {
		t.Fatalf("singleton wrong: %v", comps)
	}
}

func TestCommunitiesFromPairs(t *testing.T) {
	pairs := []records.Pair{
		{A: 1, B: 2}, {A: 2, B: 3}, {A: 7, B: 8},
	}
	comps := Communities(pairs)
	if len(comps) != 2 {
		t.Fatalf("components: %v", comps)
	}
	if len(comps[0]) != 3 {
		t.Fatalf("first component: %v", comps[0])
	}
}

// Union-find components must equal DFS components on random graphs.
func TestUnionFindMatchesDFS(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(30)
		var pairs []records.Pair
		adj := map[multiset.ID][]multiset.ID{}
		for e := 0; e < rng.Intn(40); e++ {
			a := multiset.ID(rng.Intn(n) + 1)
			b := multiset.ID(rng.Intn(n) + 1)
			if a == b {
				continue
			}
			pairs = append(pairs, records.Pair{A: a, B: b})
			adj[a] = append(adj[a], b)
			adj[b] = append(adj[b], a)
		}
		got := Communities(pairs)
		// DFS ground truth.
		visited := map[multiset.ID]bool{}
		var wantSizes []int
		var dfs func(multiset.ID) int
		dfs = func(v multiset.ID) int {
			visited[v] = true
			size := 1
			for _, u := range adj[v] {
				if !visited[u] {
					size += dfs(u)
				}
			}
			return size
		}
		for v := range adj {
			if !visited[v] {
				wantSizes = append(wantSizes, dfs(v))
			}
		}
		var gotNodes, wantNodes int
		for _, c := range got {
			gotNodes += len(c)
		}
		for _, s := range wantSizes {
			wantNodes += s
		}
		if len(got) != len(wantSizes) || gotNodes != wantNodes {
			t.Fatalf("trial %d: got %d comps/%d nodes, want %d/%d",
				trial, len(got), gotNodes, len(wantSizes), wantNodes)
		}
		// Every edge must be within one component.
		compOf := map[multiset.ID]int{}
		for ci, c := range got {
			for _, v := range c {
				compOf[v] = ci
			}
		}
		for _, p := range pairs {
			if compOf[p.A] != compOf[p.B] {
				t.Fatalf("trial %d: edge (%d,%d) crosses components", trial, p.A, p.B)
			}
		}
	}
}

func TestScore(t *testing.T) {
	truth := [][]multiset.ID{{1, 2, 3}, {10, 11}}
	pairs := []records.Pair{
		{A: 1, B: 2},   // true
		{A: 2, B: 3},   // true
		{A: 10, B: 11}, // true
		{A: 1, B: 10},  // false (crosses groups)
		{A: 50, B: 51}, // false (background)
	}
	m := Score(pairs, truth)
	if m.TruePairs != 3 || m.FalsePairs != 2 {
		t.Fatalf("pairs: %+v", m)
	}
	if m.Coverage != 7 {
		t.Fatalf("coverage: %d", m.Coverage)
	}
	if m.RecalledIPs != 5 || m.TruthIPs != 5 {
		t.Fatalf("recall: %+v", m)
	}
	if m.Precision != 0.6 {
		t.Fatalf("precision: %v", m.Precision)
	}
}

func TestScoreEmpty(t *testing.T) {
	m := Score(nil, nil)
	if m.Precision != 0 || m.Coverage != 0 {
		t.Fatalf("empty score: %+v", m)
	}
}
