// Package graph implements the community-discovery post-processing of the
// paper's motivating application (§1, §7.4): similar IP pairs become edges
// of a similarity graph, whose connected components are the candidate load
// balancers. It also scores discovered communities against the planted
// ground truth.
package graph

import (
	"sort"

	"vsmartjoin/internal/multiset"
	"vsmartjoin/internal/records"
)

// UnionFind is a disjoint-set forest over sparse multiset IDs with path
// compression and union by size.
type UnionFind struct {
	parent map[multiset.ID]multiset.ID
	size   map[multiset.ID]int
}

// NewUnionFind returns an empty forest.
func NewUnionFind() *UnionFind {
	return &UnionFind{
		parent: make(map[multiset.ID]multiset.ID),
		size:   make(map[multiset.ID]int),
	}
}

// Add registers an element as its own singleton component.
func (u *UnionFind) Add(x multiset.ID) {
	if _, ok := u.parent[x]; !ok {
		u.parent[x] = x
		u.size[x] = 1
	}
}

// Find returns the representative of x's component, adding x if new.
func (u *UnionFind) Find(x multiset.ID) multiset.ID {
	u.Add(x)
	root := x
	for u.parent[root] != root {
		root = u.parent[root]
	}
	for u.parent[x] != root {
		u.parent[x], x = root, u.parent[x]
	}
	return root
}

// Union merges the components of a and b.
func (u *UnionFind) Union(a, b multiset.ID) {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
}

// Connected reports whether a and b share a component.
func (u *UnionFind) Connected(a, b multiset.ID) bool {
	return u.Find(a) == u.Find(b)
}

// Components extracts all components, each sorted by ID, largest first
// (ties by smallest member).
func (u *UnionFind) Components() [][]multiset.ID {
	byRoot := make(map[multiset.ID][]multiset.ID)
	ids := make([]multiset.ID, 0, len(u.parent))
	for id := range u.parent {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		r := u.Find(id)
		byRoot[r] = append(byRoot[r], id)
	}
	out := make([][]multiset.ID, 0, len(byRoot))
	for _, members := range byRoot {
		out = append(out, members)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		return out[i][0] < out[j][0]
	})
	return out
}

// Communities clusters similar pairs into connected components — the
// paper's post-processing step. Singleton components cannot arise since
// every edge touches two nodes.
func Communities(pairs []records.Pair) [][]multiset.ID {
	uf := NewUnionFind()
	for _, p := range pairs {
		uf.Union(p.A, p.B)
	}
	return uf.Components()
}

// Metrics scores discovered pairs against planted ground-truth communities
// in the §7.4 style.
type Metrics struct {
	// Coverage is the number of distinct IPs appearing in any discovered
	// pair (the paper judges thresholds by coverage).
	Coverage int
	// TruePairs is the number of discovered pairs within one ground-truth
	// community.
	TruePairs int
	// FalsePairs is the number of discovered pairs not within any
	// ground-truth community (the paper's "false positives").
	FalsePairs int
	// Precision is TruePairs / (TruePairs + FalsePairs).
	Precision float64
	// RecalledIPs is the number of ground-truth member IPs discovered.
	RecalledIPs int
	// TruthIPs is the total number of ground-truth member IPs.
	TruthIPs int
}

// Score compares discovered pairs to ground truth.
func Score(pairs []records.Pair, truth [][]multiset.ID) Metrics {
	group := make(map[multiset.ID]int)
	var truthIPs int
	for g, members := range truth {
		truthIPs += len(members)
		for _, id := range members {
			group[id] = g + 1
		}
	}
	var m Metrics
	m.TruthIPs = truthIPs
	seen := make(map[multiset.ID]bool)
	recalled := make(map[multiset.ID]bool)
	for _, p := range pairs {
		ga, gb := group[p.A], group[p.B]
		if ga != 0 && ga == gb {
			m.TruePairs++
			recalled[p.A] = true
			recalled[p.B] = true
		} else {
			m.FalsePairs++
		}
		seen[p.A] = true
		seen[p.B] = true
	}
	m.Coverage = len(seen)
	m.RecalledIPs = len(recalled)
	if m.TruePairs+m.FalsePairs > 0 {
		m.Precision = float64(m.TruePairs) / float64(m.TruePairs+m.FalsePairs)
	}
	return m
}
