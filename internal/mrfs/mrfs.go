// Package mrfs simulates the distributed file system underneath the
// MapReduce engine (GFS/HDFS in the paper). A Dataset is an ordered list of
// partitions, each holding encoded records; partitions are the unit of map
// parallelism and byte sizes are tracked so the cluster cost model can
// charge I/O faithfully.
package mrfs

import (
	"fmt"
	"sort"
	"sync"
)

// Record is one key/value pair at rest. Sec carries the optional secondary
// key used by engines that support value-list sorting (Google MR does,
// Hadoop does not — see the paper §2).
type Record struct {
	Key []byte
	Sec []byte
	Val []byte
}

// Size reports the encoded size of the record in bytes, the quantity the
// cost model charges for I/O and shuffle traffic.
func (r Record) Size() int64 {
	return int64(len(r.Key) + len(r.Sec) + len(r.Val) + 6) // + framing overhead
}

// Dataset is a partitioned collection of records.
type Dataset struct {
	Name       string
	Partitions [][]Record
}

// NewDataset returns an empty dataset with n partitions.
func NewDataset(name string, n int) *Dataset {
	if n < 1 {
		n = 1
	}
	return &Dataset{Name: name, Partitions: make([][]Record, n)}
}

// FromRecords builds a dataset by striping records round-robin over n
// partitions, mimicking block placement of a distributed file system.
func FromRecords(name string, records []Record, n int) *Dataset {
	d := NewDataset(name, n)
	for i, r := range records {
		p := i % len(d.Partitions)
		d.Partitions[p] = append(d.Partitions[p], r)
	}
	return d
}

// Append adds a record to partition p.
func (d *Dataset) Append(p int, r Record) {
	d.Partitions[p] = append(d.Partitions[p], r)
}

// NumPartitions reports the partition count.
func (d *Dataset) NumPartitions() int { return len(d.Partitions) }

// NumRecords reports the total record count.
func (d *Dataset) NumRecords() int64 {
	var n int64
	for _, p := range d.Partitions {
		n += int64(len(p))
	}
	return n
}

// Bytes reports the total encoded size of all records.
func (d *Dataset) Bytes() int64 {
	var n int64
	for _, p := range d.Partitions {
		for _, r := range p {
			n += r.Size()
		}
	}
	return n
}

// All returns every record in partition order. The slice is freshly
// allocated; records alias the dataset's storage.
func (d *Dataset) All() []Record {
	out := make([]Record, 0, d.NumRecords())
	for _, p := range d.Partitions {
		out = append(out, p...)
	}
	return out
}

// Sorted returns all records ordered by (Key, Sec, Val) — a deterministic
// view for tests and output files.
func (d *Dataset) Sorted() []Record {
	out := d.All()
	sort.Slice(out, func(i, j int) bool { return Less(out[i], out[j]) })
	return out
}

// Less orders records by (Key, Sec, Val), byte-lexicographically.
func Less(a, b Record) bool {
	if c := compareBytes(a.Key, b.Key); c != 0 {
		return c < 0
	}
	if c := compareBytes(a.Sec, b.Sec); c != 0 {
		return c < 0
	}
	return compareBytes(a.Val, b.Val) < 0
}

func compareBytes(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

// Store is a named collection of datasets — the "file system" namespace.
// It is safe for concurrent use.
type Store struct {
	mu   sync.RWMutex
	sets map[string]*Dataset
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{sets: make(map[string]*Dataset)}
}

// Put registers (or replaces) a dataset under its name.
func (s *Store) Put(d *Dataset) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sets[d.Name] = d
}

// Get fetches a dataset by name.
func (s *Store) Get(name string) (*Dataset, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.sets[name]
	if !ok {
		return nil, fmt.Errorf("mrfs: dataset %q not found", name)
	}
	return d, nil
}

// Delete removes a dataset, freeing its space.
func (s *Store) Delete(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.sets, name)
}

// Names lists registered dataset names in sorted order.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.sets))
	for n := range s.sets {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
