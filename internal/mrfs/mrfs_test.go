package mrfs

import (
	"bytes"
	"testing"
)

func rec(k, v string) Record { return Record{Key: []byte(k), Val: []byte(v)} }

func TestFromRecordsStripes(t *testing.T) {
	recs := []Record{rec("a", "1"), rec("b", "2"), rec("c", "3"), rec("d", "4"), rec("e", "5")}
	d := FromRecords("x", recs, 2)
	if d.NumPartitions() != 2 {
		t.Fatalf("partitions: got %d want 2", d.NumPartitions())
	}
	if len(d.Partitions[0]) != 3 || len(d.Partitions[1]) != 2 {
		t.Fatalf("striping wrong: %d/%d", len(d.Partitions[0]), len(d.Partitions[1]))
	}
	if d.NumRecords() != 5 {
		t.Fatalf("NumRecords: got %d want 5", d.NumRecords())
	}
}

func TestNewDatasetMinPartitions(t *testing.T) {
	d := NewDataset("x", 0)
	if d.NumPartitions() != 1 {
		t.Fatal("should clamp to 1 partition")
	}
}

func TestBytesAccounting(t *testing.T) {
	d := NewDataset("x", 1)
	r := Record{Key: []byte("key"), Sec: []byte("s"), Val: []byte("value")}
	d.Append(0, r)
	want := int64(3 + 1 + 5 + 6)
	if got := d.Bytes(); got != want {
		t.Fatalf("Bytes: got %d want %d", got, want)
	}
	if r.Size() != want {
		t.Fatalf("Size: got %d want %d", r.Size(), want)
	}
}

func TestSortedDeterministic(t *testing.T) {
	d := NewDataset("x", 2)
	d.Append(1, rec("b", "2"))
	d.Append(0, rec("a", "1"))
	d.Append(0, rec("b", "1"))
	d.Append(1, Record{Key: []byte("a"), Sec: []byte("z"), Val: []byte("3")})
	got := d.Sorted()
	if string(got[0].Key) != "a" || string(got[0].Val) != "1" {
		t.Fatalf("order wrong: %v", got)
	}
	// a/"" < a/z
	if string(got[1].Sec) != "z" {
		t.Fatalf("secondary order wrong: %q", got[1].Sec)
	}
	if string(got[2].Key) != "b" || string(got[2].Val) != "1" {
		t.Fatalf("val tiebreak wrong: %v", got[2])
	}
}

func TestLessTotalOrder(t *testing.T) {
	a := rec("a", "")
	b := rec("ab", "")
	if !Less(a, b) || Less(b, a) {
		t.Fatal("prefix ordering wrong")
	}
	if Less(a, a) {
		t.Fatal("irreflexivity violated")
	}
}

func TestStore(t *testing.T) {
	s := NewStore()
	d := NewDataset("ds1", 1)
	s.Put(d)
	got, err := s.Get("ds1")
	if err != nil || got != d {
		t.Fatalf("Get: %v %v", got, err)
	}
	if _, err := s.Get("missing"); err == nil {
		t.Fatal("expected error")
	}
	s.Put(NewDataset("ds0", 1))
	names := s.Names()
	if len(names) != 2 || names[0] != "ds0" || names[1] != "ds1" {
		t.Fatalf("Names: %v", names)
	}
	s.Delete("ds1")
	if _, err := s.Get("ds1"); err == nil {
		t.Fatal("expected error after delete")
	}
}

func TestAllAliases(t *testing.T) {
	d := NewDataset("x", 1)
	d.Append(0, rec("k", "v"))
	all := d.All()
	if len(all) != 1 || !bytes.Equal(all[0].Key, []byte("k")) {
		t.Fatalf("All wrong: %v", all)
	}
}
