package mrfs

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"vsmartjoin/internal/codec"
	"vsmartjoin/internal/frame"
)

// segmentBytes encodes records the way SegmentWriter does — the shared
// internal/frame framing around codec payloads — for seeds.
func segmentBytes(recs []Record) []byte {
	var out []byte
	buf := codec.NewBuffer(128)
	for _, r := range recs {
		buf.Reset()
		buf.PutBytes(r.Key)
		buf.PutBytes(r.Sec)
		buf.PutBytes(r.Val)
		var err error
		if out, err = frame.Append(out, buf.Bytes()); err != nil {
			panic(err)
		}
	}
	return out
}

// FuzzSegmentRead feeds arbitrary bytes to the segment reader. Corrupt
// frames — truncated payloads, oversized length prefixes, garbage inside a
// frame — must produce errors, never panics or giant allocations, and
// whatever decodes before the corruption must round-trip exactly.
func FuzzSegmentRead(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0x7f, 0x01})                                                 // frame length far past EOF
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}) // ~2^63 frame
	f.Add(segmentBytes([]Record{
		{Key: []byte("k1"), Sec: []byte("s"), Val: []byte("v1")},
		{Key: []byte("k2"), Val: []byte("v2")},
	}))
	// A valid record followed by a truncated one.
	good := segmentBytes([]Record{{Key: []byte("key"), Val: []byte("val")}})
	f.Add(append(append([]byte{}, good...), good[:len(good)-2]...))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.seg")
		if err := os.WriteFile(path, data, 0o600); err != nil {
			t.Fatal(err)
		}
		r, err := OpenSegment(path)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		defer r.Close()
		var consumed int64
		for i := 0; ; i++ {
			rec, ok, err := r.Next()
			if err != nil {
				return // corrupt input must end in an error, which is fine
			}
			if !ok {
				// Clean EOF: every byte must have been accounted for.
				if r.Bytes() > int64(len(data)) {
					t.Fatalf("consumed %d of %d bytes", r.Bytes(), len(data))
				}
				return
			}
			if r.Bytes() <= consumed || r.Bytes() > int64(len(data)) {
				t.Fatalf("record %d byte accounting: %d after %d of %d", i, r.Bytes(), consumed, len(data))
			}
			consumed = r.Bytes()
			// Accepted records must round-trip semantically: writing the
			// record back out and re-reading it yields the same fields.
			// (Byte identity with the input is not required — the decoder
			// tolerates non-minimal varints that re-encode shorter.)
			reenc := segmentBytes([]Record{rec})
			path2 := filepath.Join(t.TempDir(), "reenc.seg")
			if err := os.WriteFile(path2, reenc, 0o600); err != nil {
				t.Fatal(err)
			}
			r2, err := OpenSegment(path2)
			if err != nil {
				t.Fatal(err)
			}
			rec2, ok2, err2 := r2.Next()
			r2.Close()
			if err2 != nil || !ok2 ||
				!bytes.Equal(rec.Key, rec2.Key) || !bytes.Equal(rec.Sec, rec2.Sec) || !bytes.Equal(rec.Val, rec2.Val) {
				t.Fatalf("record %d does not round-trip: %v %v %v", i, rec2, ok2, err2)
			}
			if i > len(data) {
				t.Fatal("more records than input bytes")
			}
		}
	})
}

// TestSegmentReaderRejectsHugeFrame pins the MaxFrameLen guard directly.
func TestSegmentReaderRejectsHugeFrame(t *testing.T) {
	path := filepath.Join(t.TempDir(), "huge.seg")
	//lint:vsmart-allow framesafety hand-crafts a raw oversized length prefix to pin the segment reader's MaxFrameLen guard
	data := binary.AppendUvarint(nil, MaxFrameLen+1)
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}
	r, err := OpenSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, ok, err := r.Next(); err == nil || ok {
		t.Fatalf("huge frame accepted: ok=%v err=%v", ok, err)
	}
}
