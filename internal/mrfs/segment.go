package mrfs

import (
	"fmt"
	"io"
	"os"

	"vsmartjoin/internal/codec"
	"vsmartjoin/internal/frame"
)

// Segment files hold one sorted run of records spilled by a map task for a
// single reduce partition. Each record is one internal/frame frame — a
// uvarint payload length, a CRC-32C, and the codec encoding of (key, sec,
// val) — the same framing the write-ahead log and snapshot files use, so
// segment sizes (and therefore the simulated spill I/O) track the framing
// the cost model charges for records at rest.

// MaxFrameLen caps a single record frame, re-exported from the shared
// framing layer: map-task spill records are tuples of at most a few
// kilobytes, far below the bound in any legitimate segment, so a larger
// length prefix can only come from a corrupt or truncated file.
const MaxFrameLen = frame.MaxFrameLen

// SegmentWriter streams records into a segment file.
type SegmentWriter struct {
	f   *os.File
	w   *frame.Writer
	buf *codec.Buffer

	records int64
}

// CreateSegment opens a new segment file at path, truncating any previous
// contents.
func CreateSegment(path string) (*SegmentWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("mrfs: create segment: %w", err)
	}
	return &SegmentWriter{f: f, w: frame.NewWriter(f), buf: codec.NewBuffer(256)}, nil
}

// Write appends one record to the segment. Callers are responsible for
// writing records in sorted order when the segment will be merged.
func (s *SegmentWriter) Write(r Record) error {
	s.buf.Reset()
	s.buf.PutBytes(r.Key)
	s.buf.PutBytes(r.Sec)
	s.buf.PutBytes(r.Val)
	if err := s.w.WriteFrame(s.buf.Bytes()); err != nil {
		return fmt.Errorf("mrfs: write segment: %w", err)
	}
	s.records++
	return nil
}

// Records reports the number of records written so far.
func (s *SegmentWriter) Records() int64 { return s.records }

// Bytes reports the number of file bytes written so far.
func (s *SegmentWriter) Bytes() int64 { return s.w.Bytes() }

// Close flushes and closes the segment file.
func (s *SegmentWriter) Close() error {
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return fmt.Errorf("mrfs: flush segment: %w", err)
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("mrfs: close segment: %w", err)
	}
	return nil
}

// SegmentReader streams records back out of a segment file.
type SegmentReader struct {
	f *os.File
	r *frame.Reader
}

// OpenSegment opens a segment file for reading.
func OpenSegment(path string) (*SegmentReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("mrfs: open segment: %w", err)
	}
	return &SegmentReader{f: f, r: frame.NewReader(f)}, nil
}

// Next decodes the next record. It returns ok=false at a clean end of
// file; the returned record's slices are freshly allocated and do not
// alias reader state. Corruption — an oversized or truncated frame, a
// checksum mismatch, a malformed payload, or trailing garbage inside a
// frame — is an error, never a panic.
func (s *SegmentReader) Next() (Record, bool, error) {
	payload, err := s.r.Next()
	if err == io.EOF {
		return Record{}, false, nil
	}
	if err != nil {
		return Record{}, false, fmt.Errorf("mrfs: read segment: %w", err)
	}
	dec := codec.NewReader(payload)
	rec := Record{Key: dec.Bytes(), Sec: dec.Bytes(), Val: dec.Bytes()}
	if dec.Err() != nil {
		return Record{}, false, fmt.Errorf("mrfs: read segment: %w", dec.Err())
	}
	if !dec.Done() {
		return Record{}, false, fmt.Errorf("mrfs: read segment: %d trailing bytes in frame", dec.Remaining())
	}
	return rec, true, nil
}

// Bytes reports the number of file bytes consumed so far.
func (s *SegmentReader) Bytes() int64 { return s.r.Bytes() }

// Close closes the underlying file.
func (s *SegmentReader) Close() error { return s.f.Close() }
