package mrfs

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"vsmartjoin/internal/codec"
)

// Segment files hold one sorted run of records spilled by a map task for a
// single reduce partition. Each record is framed as a uvarint payload
// length followed by the codec encoding of (key, sec, val), so segment
// sizes — and therefore the simulated spill I/O — track the same framing
// the cost model charges for records at rest.

// SegmentWriter streams records into a segment file.
type SegmentWriter struct {
	f   *os.File
	w   *bufio.Writer
	buf *codec.Buffer
	hdr [binary.MaxVarintLen64]byte

	records int64
	bytes   int64
}

// CreateSegment opens a new segment file at path, truncating any previous
// contents.
func CreateSegment(path string) (*SegmentWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("mrfs: create segment: %w", err)
	}
	return &SegmentWriter{f: f, w: bufio.NewWriter(f), buf: codec.NewBuffer(256)}, nil
}

// Write appends one record to the segment. Callers are responsible for
// writing records in sorted order when the segment will be merged.
func (s *SegmentWriter) Write(r Record) error {
	s.buf.Reset()
	s.buf.PutBytes(r.Key)
	s.buf.PutBytes(r.Sec)
	s.buf.PutBytes(r.Val)
	frame := s.buf.Bytes()
	if len(frame) > MaxFrameLen {
		return fmt.Errorf("mrfs: write segment: record frame %d exceeds %d", len(frame), MaxFrameLen)
	}
	hdr := binary.AppendUvarint(s.hdr[:0], uint64(len(frame)))
	if _, err := s.w.Write(hdr); err != nil {
		return fmt.Errorf("mrfs: write segment: %w", err)
	}
	if _, err := s.w.Write(frame); err != nil {
		return fmt.Errorf("mrfs: write segment: %w", err)
	}
	s.records++
	s.bytes += int64(len(hdr) + len(frame))
	return nil
}

// Records reports the number of records written so far.
func (s *SegmentWriter) Records() int64 { return s.records }

// Bytes reports the number of file bytes written so far.
func (s *SegmentWriter) Bytes() int64 { return s.bytes }

// Close flushes and closes the segment file.
func (s *SegmentWriter) Close() error {
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return fmt.Errorf("mrfs: flush segment: %w", err)
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("mrfs: close segment: %w", err)
	}
	return nil
}

// MaxFrameLen caps a single record frame. Frames are map-task spill
// records (a key, a secondary key, and a value — tuples of at most a few
// kilobytes), far below this bound in any legitimate segment; a larger
// length prefix can only come from a corrupt or truncated file, and must
// fail cleanly instead of driving a giant allocation. Writers enforce the
// same cap so no reader-rejected segment can ever be produced.
const MaxFrameLen = 1 << 24

// SegmentReader streams records back out of a segment file.
type SegmentReader struct {
	f     *os.File
	r     *bufio.Reader
	bytes int64
}

// OpenSegment opens a segment file for reading.
func OpenSegment(path string) (*SegmentReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("mrfs: open segment: %w", err)
	}
	return &SegmentReader{f: f, r: bufio.NewReader(f)}, nil
}

// Next decodes the next record. It returns ok=false at a clean end of
// file; the returned record's slices are freshly allocated and do not
// alias reader state. Corruption — an oversized or truncated frame, a
// malformed payload, or trailing garbage inside a frame — is an error,
// never a panic.
func (s *SegmentReader) Next() (Record, bool, error) {
	hdr := &countingByteReader{r: s.r}
	frameLen, err := binary.ReadUvarint(hdr)
	if err == io.EOF && hdr.n == 0 {
		return Record{}, false, nil // clean end of file; mid-varint EOF
		// arrives as io.ErrUnexpectedEOF from ReadUvarint itself
	}
	if err != nil {
		return Record{}, false, fmt.Errorf("mrfs: read segment: %w", err)
	}
	if frameLen > MaxFrameLen {
		return Record{}, false, fmt.Errorf("mrfs: read segment: corrupt frame length %d exceeds %d", frameLen, MaxFrameLen)
	}
	payload := make([]byte, frameLen)
	if _, err := io.ReadFull(s.r, payload); err != nil {
		return Record{}, false, fmt.Errorf("mrfs: read segment: truncated record: %w", err)
	}
	dec := codec.NewReader(payload)
	rec := Record{Key: dec.Bytes(), Sec: dec.Bytes(), Val: dec.Bytes()}
	if dec.Err() != nil {
		return Record{}, false, fmt.Errorf("mrfs: read segment: %w", dec.Err())
	}
	if !dec.Done() {
		return Record{}, false, fmt.Errorf("mrfs: read segment: %d trailing bytes in frame", dec.Remaining())
	}
	s.bytes += int64(hdr.n) + int64(frameLen)
	return rec, true, nil
}

// countingByteReader counts the bytes ReadUvarint consumes, so Bytes()
// stays exact even on non-minimally encoded (i.e. corrupt) length
// prefixes.
type countingByteReader struct {
	r io.ByteReader
	n int
}

func (c *countingByteReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.n++
	}
	return b, err
}

// Bytes reports the number of file bytes consumed so far.
func (s *SegmentReader) Bytes() int64 { return s.bytes }

// Close closes the underlying file.
func (s *SegmentReader) Close() error { return s.f.Close() }
