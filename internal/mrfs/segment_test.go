package mrfs

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"
)

func TestSegmentRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.seg")
	recs := []Record{
		{Key: []byte("a"), Sec: []byte("s"), Val: []byte("v1")},
		{Key: []byte("a"), Val: []byte("v2")}, // nil Sec
		{Key: []byte("bb"), Sec: []byte(""), Val: nil},
		{Key: bytes.Repeat([]byte("k"), 300), Val: bytes.Repeat([]byte("x"), 1000)},
	}
	w, err := CreateSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Records() != int64(len(recs)) {
		t.Fatalf("writer records = %d, want %d", w.Records(), len(recs))
	}
	written := w.Bytes()
	if written <= 0 {
		t.Fatal("writer tracked no bytes")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i, want := range recs {
		got, ok, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !ok {
			t.Fatalf("record %d: early EOF", i)
		}
		if !bytes.Equal(got.Key, want.Key) || !bytes.Equal(got.Sec, want.Sec) || !bytes.Equal(got.Val, want.Val) {
			t.Fatalf("record %d: got %q/%q/%q want %q/%q/%q",
				i, got.Key, got.Sec, got.Val, want.Key, want.Sec, want.Val)
		}
	}
	if _, ok, err := r.Next(); err != nil || ok {
		t.Fatalf("expected clean EOF, got ok=%v err=%v", ok, err)
	}
	if r.Bytes() != written {
		t.Fatalf("reader consumed %d bytes, writer wrote %d", r.Bytes(), written)
	}
}

func TestSegmentEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.seg")
	w, err := CreateSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, ok, err := r.Next(); err != nil || ok {
		t.Fatalf("empty segment: ok=%v err=%v", ok, err)
	}
}

func TestSegmentManyRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "many.seg")
	w, err := CreateSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	for i := 0; i < n; i++ {
		if err := w.Write(Record{
			Key: []byte(fmt.Sprintf("key-%06d", i)),
			Val: []byte(fmt.Sprintf("val-%d", i*i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < n; i++ {
		got, ok, err := r.Next()
		if err != nil || !ok {
			t.Fatalf("record %d: ok=%v err=%v", i, ok, err)
		}
		if want := fmt.Sprintf("key-%06d", i); string(got.Key) != want {
			t.Fatalf("record %d: key %q want %q", i, got.Key, want)
		}
	}
	if _, ok, _ := r.Next(); ok {
		t.Fatal("trailing records")
	}
}
