package core

import (
	"fmt"

	"vsmartjoin/internal/mr"
	"vsmartjoin/internal/mrfs"
	"vsmartjoin/internal/multiset"
	"vsmartjoin/internal/records"
	"vsmartjoin/internal/similarity"
)

// Counter names exported by the similarity phase.
const (
	CounterCandidateTuples = "sim1:candidate_tuples" // pair tuples emitted (one per shared element)
	CounterChunkedLists    = "sim1:chunked_lists"    // reduce lists that overflowed memory
	CounterChunkRecords    = "sim1:chunk_records"    // chunk-pair records emitted
	CounterOutputPairs     = "sim2:output_pairs"     // final pairs at or above threshold
	CounterBelowThreshold  = "sim2:below_threshold"  // candidate pairs filtered out
	CounterStopWords       = "prep:stop_words"       // elements dropped by preprocessing
)

// simEps absorbs float rounding in threshold comparisons so that exact
// fractions like 1/2 are kept at t = 0.5.
const simEps = 1e-12

// sim1Mapper turns joined tuples ⟨Mi, Uni(Mi), mi,k⟩ into inverted-index
// postings keyed by element: ⟨ak, (Mi, Uni(Mi), fi,k)⟩ (mapSimilarity1).
type sim1Mapper struct{}

func (sim1Mapper) Map(_ *mr.TaskContext, rec mrfs.Record, emit mr.Emitter) error {
	id, err := records.DecodeRawKey(rec.Key)
	if err != nil {
		return err
	}
	uni, entry, err := decodeJoinedVal(rec.Val)
	if err != nil {
		return err
	}
	emit.Emit(encodeElemKey(entry.Elem), encodePostingVal(indexEntry{ID: id, Uni: uni, Count: entry.Count}))
	return nil
}

// sim1Reducer scans one element's posting list and emits a candidate-pair
// tuple for every pair of multisets sharing the element
// (reduceSimilarity1). When the list does not fit in the memory budget the
// reducer switches to the paper's chunked mode: it dissects the list into T
// chunks of at most B/2 bytes and emits the T·(T+1)/2 chunk pairs for
// Similarity2 mappers to expand, rewinding the list once per chunk.
type sim1Reducer struct{}

func (sim1Reducer) Reduce(ctx *mr.TaskContext, key []byte, values *mr.Values, emit mr.Emitter) error {
	elem, err := decodeElemKey(key)
	if err != nil {
		return err
	}
	// Try the in-memory path first: buffer the whole list.
	if err := ctx.Reserve(values.Bytes()); err == nil {
		defer ctx.Release(values.Bytes())
		entries := make([]indexEntry, 0, values.Len())
		for {
			v, ok := values.Next()
			if !ok {
				break
			}
			e, err := decodePostingVal(v.Val)
			if err != nil {
				return err
			}
			entries = append(entries, e)
		}
		emitAllPairs(ctx, entries, nil, emit)
		return nil
	}
	// Chunked mode.
	ctx.Counters.Inc(CounterChunkedLists)
	return chunkedSim1(ctx, elem, values, emit)
}

// emitAllPairs emits candidate-pair tuples for every cross pair of
// left × right, or every unordered pair within left when right is nil.
func emitAllPairs(ctx *mr.TaskContext, left, right []indexEntry, emit mr.Emitter) {
	if right == nil {
		for i := 0; i < len(left); i++ {
			for j := i + 1; j < len(left); j++ {
				emitPair(ctx, left[i], left[j], emit)
			}
		}
		return
	}
	for _, a := range left {
		for _, b := range right {
			if a.ID == b.ID {
				continue
			}
			emitPair(ctx, a, b, emit)
		}
	}
}

func emitPair(ctx *mr.TaskContext, a, b indexEntry, emit mr.Emitter) {
	emit.Emit(encodePairTupleKey(a, b), encodeConjVal(conjOfCounts(a.Count, b.Count)))
	ctx.Counters.Inc(CounterCandidateTuples)
}

// chunkedSim1 implements the §4 overflow handling. Chunk boundaries are
// discovered on a first scan; then for each chunk p the list is rewound,
// chunk p is buffered (at most half the budget), and every following chunk
// q ≥ p is buffered in the other half and emitted as a ⟨p, q⟩ chunk-pair
// record flagged for the Similarity2 mappers.
func chunkedSim1(ctx *mr.TaskContext, elem multiset.Elem, values *mr.Values, emit mr.Emitter) error {
	chunkBudget := ctx.MemBudget() / 2
	if chunkBudget <= 0 {
		return fmt.Errorf("core: no memory budget for chunking element %d", elem)
	}
	// First scan: chunk boundaries as index ranges.
	type span struct{ start, end int } // postings [start, end)
	var spans []span
	var cur span
	var curBytes int64
	idx := 0
	values.Rewind()
	for {
		v, ok := values.Next()
		if !ok {
			break
		}
		sz := int64(len(v.Val)) + 6
		if curBytes > 0 && curBytes+sz > chunkBudget {
			cur.end = idx
			spans = append(spans, cur)
			cur = span{start: idx}
			curBytes = 0
		}
		curBytes += sz
		idx++
	}
	cur.end = idx
	if cur.end > cur.start {
		spans = append(spans, cur)
	}

	load := func(s span) ([]indexEntry, int64, error) {
		values.Rewind()
		var bytes int64
		out := make([]indexEntry, 0, s.end-s.start)
		for i := 0; ; i++ {
			v, ok := values.Next()
			if !ok {
				break
			}
			if i < s.start {
				continue
			}
			if i >= s.end {
				break
			}
			e, err := decodePostingVal(v.Val)
			if err != nil {
				return nil, 0, err
			}
			bytes += int64(len(v.Val)) + 6
			out = append(out, e)
		}
		return out, bytes, nil
	}

	for p := 0; p < len(spans); p++ {
		left, leftBytes, err := load(spans[p])
		if err != nil {
			return err
		}
		if err := ctx.Reserve(leftBytes); err != nil {
			return fmt.Errorf("core: chunk %d of element %d: %w", p, elem, err)
		}
		// Diagonal record ⟨p, p⟩.
		emit.Emit(encodeChunkKey(multiset.Elem(elem), p, p), encodeChunkVal(left, nil))
		ctx.Counters.Inc(CounterChunkRecords)
		// Stream the following chunks within the same scan.
		for q := p + 1; q < len(spans); q++ {
			right, rightBytes, err := load(spans[q])
			if err != nil {
				ctx.Release(leftBytes)
				return err
			}
			if err := ctx.Reserve(rightBytes); err != nil {
				ctx.Release(leftBytes)
				return fmt.Errorf("core: chunk pair (%d,%d) of element %d: %w", p, q, elem, err)
			}
			emit.Emit(encodeChunkKey(multiset.Elem(elem), p, q), encodeChunkVal(left, right))
			ctx.Counters.Inc(CounterChunkRecords)
			ctx.Release(rightBytes)
		}
		ctx.Release(leftBytes)
	}
	return nil
}

// sim2Mapper is the Similarity2 map stage: an identity map for ordinary
// candidate-pair tuples, and the chunk-pair expansion path for flagged
// records from overloaded Similarity1 reducers.
type sim2Mapper struct{}

func (sim2Mapper) Map(ctx *mr.TaskContext, rec mrfs.Record, emit mr.Emitter) error {
	if len(rec.Key) == 0 {
		return fmt.Errorf("core: empty similarity2 key")
	}
	switch rec.Key[0] {
	case tagPair:
		emit.Emit(rec.Key, rec.Val)
		return nil
	case tagChunk:
		bytes := int64(len(rec.Val))
		if err := ctx.Reserve(bytes); err != nil {
			return fmt.Errorf("core: similarity2 mapper buffering chunk pair: %w", err)
		}
		defer ctx.Release(bytes)
		left, right, err := decodeChunkVal(rec.Val)
		if err != nil {
			return err
		}
		if len(right) == 0 {
			emitAllPairs(ctx, left, nil, emit)
		} else {
			emitAllPairs(ctx, left, right, emit)
		}
		return nil
	default:
		return fmt.Errorf("core: unknown similarity2 record tag %d", rec.Key[0])
	}
}

// conjCombiner pre-aggregates the ⟨fi,k, fj,k⟩ partials of a pair to
// balance the Similarity2 reducers' load (the paper's dedicated combiner).
type conjCombiner struct{}

func (conjCombiner) Reduce(_ *mr.TaskContext, key []byte, values *mr.Values, emit mr.Emitter) error {
	var total similarity.ConjStats
	for {
		v, ok := values.Next()
		if !ok {
			break
		}
		c, err := decodeConjVal(v.Val)
		if err != nil {
			return err
		}
		total.Add(c)
	}
	emit.Emit(key, encodeConjVal(total))
	return nil
}

// sim2Reducer aggregates Conj(Mi,Mj) over all shared elements, combines it
// with the Uni(.) partials carried in the key, and emits the pair when the
// similarity reaches the threshold (reduceSimilarity2).
type sim2Reducer struct {
	measure   similarity.Measure
	threshold float64
}

func (r sim2Reducer) Reduce(ctx *mr.TaskContext, key []byte, values *mr.Values, emit mr.Emitter) error {
	pk, err := decodePairTupleKey(key)
	if err != nil {
		return err
	}
	var conj similarity.ConjStats
	for {
		v, ok := values.Next()
		if !ok {
			break
		}
		c, err := decodeConjVal(v.Val)
		if err != nil {
			return err
		}
		conj.Add(c)
	}
	sim := r.measure.Sim(pk.UniA, pk.UniB, conj)
	if sim+simEps >= r.threshold {
		emit.Emit(encodeResultKey(pk.A, pk.B), encodeResultVal(sim))
		ctx.Counters.Inc(CounterOutputPairs)
	} else {
		ctx.Counters.Inc(CounterBelowThreshold)
	}
	return nil
}

// similarity1Job builds the Similarity1 step over a joined-tuple dataset.
func similarity1Job(joined *mrfs.Dataset, numReducers int) mr.Job {
	return mr.Job{
		Name:        "similarity1",
		Input:       joined,
		Mapper:      sim1Mapper{},
		Reducer:     sim1Reducer{},
		NumReducers: numReducers,
		OutputName:  "sim1-pairs",
	}
}

// similarity2Job builds the Similarity2 step over Similarity1's output.
func similarity2Job(pairs *mrfs.Dataset, m similarity.Measure, t float64, numReducers int) mr.Job {
	return mr.Job{
		Name:        "similarity2",
		Input:       pairs,
		Mapper:      sim2Mapper{},
		Combiner:    conjCombiner{},
		Reducer:     sim2Reducer{measure: m, threshold: t},
		NumReducers: numReducers,
		OutputName:  "similar-pairs",
	}
}
