package core

import (
	"errors"
	"math/rand"
	"testing"

	"vsmartjoin/internal/mr"
	"vsmartjoin/internal/mrfs"
	"vsmartjoin/internal/multiset"
	"vsmartjoin/internal/ppjoin"
	"vsmartjoin/internal/records"
	"vsmartjoin/internal/similarity"
)

func testCluster(machines int) mr.ClusterConfig {
	return mr.NewCluster(machines, 1<<20)
}

func randomMultisets(rng *rand.Rand, n, alphabet, maxLen, maxCount int) []multiset.Multiset {
	sets := make([]multiset.Multiset, 0, n)
	for i := 0; i < n; i++ {
		l := 1 + rng.Intn(maxLen)
		entries := make([]multiset.Entry, l)
		for j := range entries {
			entries[j] = multiset.Entry{
				Elem:  multiset.Elem(rng.Intn(alphabet)),
				Count: uint32(1 + rng.Intn(maxCount)),
			}
		}
		sets = append(sets, multiset.New(multiset.ID(i+1), entries))
	}
	return sets
}

func allAlgorithms() []Algorithm { return []Algorithm{OnlineAggregation, Lookup, Sharding} }

func TestAllAlgorithmsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	measures := []similarity.Measure{
		similarity.Ruzicka{}, similarity.Jaccard{}, similarity.MultisetDice{},
		similarity.MultisetCosine{}, similarity.VectorCosine{},
	}
	for trial := 0; trial < 4; trial++ {
		sets := randomMultisets(rng, 50, 40, 10, 4)
		input := records.BuildInput("in", sets, 7)
		for _, m := range measures {
			for _, thr := range []float64{0.3, 0.6, 0.85} {
				want := ppjoin.Naive(sets, m, thr)
				for _, alg := range allAlgorithms() {
					res, err := Join(testCluster(5), input, Config{
						Measure: m, Threshold: thr, Algorithm: alg, ShardC: 5,
					})
					if err != nil {
						t.Fatalf("trial %d %s %s t=%v: %v", trial, alg, m.Name(), thr, err)
					}
					if !records.SamePairs(res.Pairs, want, 1e-9) {
						t.Fatalf("trial %d %s %s t=%v: got %d pairs want %d\ngot: %v\nwant: %v",
							trial, alg, m.Name(), thr, len(res.Pairs), len(want), res.Pairs, want)
					}
				}
			}
		}
	}
}

func TestAlgorithmsAgreeOnPairCounts(t *testing.T) {
	// The Fig 4 litmus: all algorithms produce the same number of similar
	// pairs for each threshold.
	rng := rand.New(rand.NewSource(23))
	sets := randomMultisets(rng, 80, 50, 12, 3)
	input := records.BuildInput("in", sets, 9)
	for _, thr := range []float64{0.1, 0.5, 0.9} {
		counts := map[Algorithm]int{}
		for _, alg := range allAlgorithms() {
			res, err := Join(testCluster(4), input, Config{
				Measure: similarity.Ruzicka{}, Threshold: thr, Algorithm: alg,
			})
			if err != nil {
				t.Fatal(err)
			}
			counts[alg] = len(res.Pairs)
		}
		if counts[OnlineAggregation] != counts[Lookup] || counts[Lookup] != counts[Sharding] {
			t.Fatalf("t=%v: pair counts differ: %v", thr, counts)
		}
	}
}

func TestOnlineAggregationRequiresSecondaryKeys(t *testing.T) {
	sets := randomMultisets(rand.New(rand.NewSource(1)), 10, 10, 5, 2)
	input := records.BuildInput("in", sets, 2)
	_, err := Join(testCluster(2).Hadoop(), input, Config{
		Measure: similarity.Ruzicka{}, Threshold: 0.5, Algorithm: OnlineAggregation,
	})
	if !errors.Is(err, mr.ErrSecondaryKeys) {
		t.Fatalf("want ErrSecondaryKeys, got %v", err)
	}
	// Lookup and Sharding run fine on Hadoop-compatible clusters.
	for _, alg := range []Algorithm{Lookup, Sharding} {
		if _, err := Join(testCluster(2).Hadoop(), input, Config{
			Measure: similarity.Ruzicka{}, Threshold: 0.5, Algorithm: alg,
		}); err != nil {
			t.Fatalf("%s on hadoop: %v", alg, err)
		}
	}
}

func TestLookupFailsWhenTableExceedsMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sets := randomMultisets(rng, 300, 200, 8, 2)
	input := records.BuildInput("in", sets, 4)
	cl := mr.NewCluster(4, 1500) // tiny budget: Uni table won't fit
	_, err := Join(cl, input, Config{Measure: similarity.Ruzicka{}, Threshold: 0.5, Algorithm: Lookup})
	if !errors.Is(err, mr.ErrOutOfMemory) {
		t.Fatalf("want ErrOutOfMemory, got %v", err)
	}
	// Sharding survives the same budget: its side table only holds the
	// few multisets with underlying cardinality above C.
	res, err := Join(cl, input, Config{Measure: similarity.Ruzicka{}, Threshold: 0.5, Algorithm: Sharding, ShardC: 6})
	if err != nil {
		t.Fatalf("sharding under pressure: %v", err)
	}
	want := ppjoin.Naive(sets, similarity.Ruzicka{}, 0.5)
	if !records.SamePairs(res.Pairs, want, 1e-9) {
		t.Fatalf("sharding wrong under pressure: got %d want %d", len(res.Pairs), len(want))
	}
}

func TestChunkedSimilarity1(t *testing.T) {
	// A hot element shared by many multisets forces the Similarity1
	// reduce list past the memory budget, triggering chunk-pair records.
	var sets []multiset.Multiset
	for i := 1; i <= 120; i++ {
		entries := []multiset.Entry{
			{Elem: 7, Count: 1},                          // shared hot element
			{Elem: multiset.Elem(1000 + i%11), Count: 2}, // small clusters
			{Elem: multiset.Elem(5000 + i), Count: 1},    // unique noise
		}
		sets = append(sets, multiset.New(multiset.ID(i), entries))
	}
	cl := mr.NewCluster(3, 1000) // enough for tables, too small for the hot list
	res, err := Join(cl, records.BuildInput("in", sets, 5), Config{
		Measure: similarity.Ruzicka{}, Threshold: 0.3, Algorithm: Sharding, ShardC: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SimilarityStats.Counter(CounterChunkedLists) == 0 {
		t.Fatal("expected chunked lists")
	}
	if res.SimilarityStats.Counter(CounterChunkRecords) < 3 {
		t.Fatalf("expected several chunk records, got %d", res.SimilarityStats.Counter(CounterChunkRecords))
	}
	want := ppjoin.Naive(sets, similarity.Ruzicka{}, 0.3)
	if !records.SamePairs(res.Pairs, want, 1e-9) {
		t.Fatalf("chunked join wrong: got %d want %d pairs", len(res.Pairs), len(want))
	}
}

func TestChunkedMatchesUnchunked(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sets := randomMultisets(rng, 120, 8, 5, 3) // small alphabet → long lists
	input := records.BuildInput("in", sets, 4)
	big, err := Join(mr.NewCluster(3, 1<<20), input, Config{
		Measure: similarity.Ruzicka{}, Threshold: 0.4, Algorithm: Sharding,
	})
	if err != nil {
		t.Fatal(err)
	}
	small, err := Join(mr.NewCluster(3, 400), input, Config{
		Measure: similarity.Ruzicka{}, Threshold: 0.4, Algorithm: Sharding,
	})
	if err != nil {
		t.Fatal(err)
	}
	if small.SimilarityStats.Counter(CounterChunkedLists) == 0 {
		t.Fatal("small-memory run should have chunked")
	}
	if big.SimilarityStats.Counter(CounterChunkedLists) != 0 {
		t.Fatal("large-memory run should not have chunked")
	}
	if !records.SamePairs(big.Pairs, small.Pairs, 1e-9) {
		t.Fatalf("chunked vs unchunked mismatch: %d vs %d pairs", len(big.Pairs), len(small.Pairs))
	}
}

func TestStopWordsDropHotElements(t *testing.T) {
	// Element 1 appears in every multiset; with q below the corpus size it
	// must be dropped, removing the similarity it induced.
	var sets []multiset.Multiset
	for i := 1; i <= 30; i++ {
		sets = append(sets, multiset.New(multiset.ID(i), []multiset.Entry{
			{Elem: 1, Count: 5},
			{Elem: multiset.Elem(100 + i), Count: 1},
		}))
	}
	input := records.BuildInput("in", sets, 3)
	with, err := Join(testCluster(3), input, Config{
		Measure: similarity.Ruzicka{}, Threshold: 0.3, Algorithm: Lookup,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(with.Pairs) == 0 {
		t.Fatal("hot element should create pairs")
	}
	without, err := Join(testCluster(3), input, Config{
		Measure: similarity.Ruzicka{}, Threshold: 0.3, Algorithm: Lookup, StopWordQ: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(without.Pairs) != 0 {
		t.Fatalf("stop word not dropped: %v", without.Pairs)
	}
	if without.JoiningStats.Counter(CounterStopWords) != 1 {
		t.Fatalf("stop word counter: %d", without.JoiningStats.Counter(CounterStopWords))
	}
}

func TestStopWordsKeepElementsAtQ(t *testing.T) {
	// Element shared by exactly q multisets survives.
	var sets []multiset.Multiset
	for i := 1; i <= 5; i++ {
		sets = append(sets, multiset.New(multiset.ID(i), []multiset.Entry{{Elem: 1, Count: 1}}))
	}
	input := records.BuildInput("in", sets, 2)
	res, err := Join(testCluster(2), input, Config{
		Measure: similarity.Ruzicka{}, Threshold: 0.9, Algorithm: Sharding, StopWordQ: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// All 5 multisets are identical → C(5,2) = 10 pairs at sim 1.
	if len(res.Pairs) != 10 {
		t.Fatalf("pairs: got %d want 10", len(res.Pairs))
	}
}

func TestNormalizeJob(t *testing.T) {
	// Duplicate ⟨Mi, ak⟩ tuples must merge into summed counts.
	raw := records.BuildInput("in", []multiset.Multiset{
		multiset.New(1, []multiset.Entry{{Elem: 5, Count: 2}}),
	}, 1)
	// Inject a duplicate tuple for the same (1, 5).
	raw.Append(0, raw.Partitions[0][0])
	out, _, err := mr.Run(testCluster(2), NormalizeJob(raw, 0))
	if err != nil {
		t.Fatal(err)
	}
	sets, err := records.DecodeInput(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 1 || sets[0].Count(5) != 4 {
		t.Fatalf("normalize wrong: %v", sets)
	}
}

func TestConfigValidation(t *testing.T) {
	input := records.BuildInput("in", nil, 1)
	cases := []Config{
		{}, // no measure
		{Measure: similarity.Ruzicka{}, Threshold: -0.1},
		{Measure: similarity.Ruzicka{}, Threshold: 1.5},
		{Measure: similarity.Ruzicka{}, ShardC: -1},
		{Measure: similarity.Ruzicka{}, StopWordQ: -2},
	}
	for i, cfg := range cases {
		if _, err := Join(testCluster(1), input, cfg); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
	if _, err := Join(testCluster(1), input, Config{Measure: similarity.Ruzicka{}, Algorithm: Algorithm(99)}); err == nil {
		t.Fatal("unknown algorithm should fail")
	}
}

func TestAlgorithmStrings(t *testing.T) {
	if OnlineAggregation.String() != "online-aggregation" ||
		Lookup.String() != "lookup" || Sharding.String() != "sharding" {
		t.Fatal("algorithm names wrong")
	}
	if Algorithm(42).String() == "" {
		t.Fatal("unknown algorithm should render")
	}
}

func TestShardingInsensitiveToC(t *testing.T) {
	// §7.3: results identical across C values; only cost distribution moves.
	rng := rand.New(rand.NewSource(31))
	sets := randomMultisets(rng, 60, 30, 9, 3)
	input := records.BuildInput("in", sets, 4)
	var base []records.Pair
	for i, c := range []int{1, 4, 16, 64, 4096} {
		res, err := Join(testCluster(4), input, Config{
			Measure: similarity.Ruzicka{}, Threshold: 0.5, Algorithm: Sharding, ShardC: c,
		})
		if err != nil {
			t.Fatalf("C=%d: %v", c, err)
		}
		if i == 0 {
			base = res.Pairs
			continue
		}
		if !records.SamePairs(res.Pairs, base, 1e-9) {
			t.Fatalf("C=%d changed the result", c)
		}
	}
}

func TestShardingCostShiftsWithC(t *testing.T) {
	// Fig 7 mechanics: Sharding1 output (the side table) shrinks as C
	// grows, Sharding2 does more on-the-fly aggregation.
	rng := rand.New(rand.NewSource(37))
	sets := randomMultisets(rng, 120, 60, 14, 3)
	input := records.BuildInput("in", sets, 6)
	run := func(c int) (tableRecords int64) {
		table, _, err := mr.Run(testCluster(4), sharding1Job(input, c, 0))
		if err != nil {
			t.Fatal(err)
		}
		return table.NumRecords()
	}
	small := run(2)
	large := run(12)
	if small <= large {
		t.Fatalf("table should shrink with C: C=2→%d, C=12→%d", small, large)
	}
}

func TestJoinedTuplesCarryCorrectUni(t *testing.T) {
	// White-box: every joining algorithm must attach exactly Uni(Mi) to
	// every element of Mi.
	rng := rand.New(rand.NewSource(41))
	sets := randomMultisets(rng, 25, 15, 6, 4)
	input := records.BuildInput("in", sets, 3)
	wantUni := map[multiset.ID]similarity.UniStats{}
	for _, s := range sets {
		wantUni[s.ID] = similarity.UniOf(s)
	}

	// Online-Aggregation and Sharding produce joined datasets directly.
	oaOut, _, err := mr.Run(testCluster(3), onlineAggregationJob(input, 0))
	if err != nil {
		t.Fatal(err)
	}
	verifyJoined(t, "online-aggregation", oaOut.All(), wantUni)

	table, _, err := mr.Run(testCluster(3), sharding1Job(input, 4, 0))
	if err != nil {
		t.Fatal(err)
	}
	shOut, _, err := mr.Run(testCluster(3), sharding2Job(input, table, 0))
	if err != nil {
		t.Fatal(err)
	}
	verifyJoined(t, "sharding", shOut.All(), wantUni)
}

func verifyJoined(t *testing.T, name string, recs []mrfs.Record, wantUni map[multiset.ID]similarity.UniStats) {
	t.Helper()
	perID := map[multiset.ID]int{}
	for _, rec := range recs {
		id, err := records.DecodeRawKey(rec.Key)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		uni, entry, err := decodeJoinedVal(rec.Val)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if uni != wantUni[id] {
			t.Fatalf("%s: M%d uni = %+v want %+v", name, id, uni, wantUni[id])
		}
		if entry.Count == 0 {
			t.Fatalf("%s: zero count element", name)
		}
		perID[id]++
	}
	for id, want := range wantUni {
		if perID[id] != int(want.UCard) {
			t.Fatalf("%s: M%d has %d joined tuples, want %d", name, id, perID[id], want.UCard)
		}
	}
}

func TestResultStatsSplitPhases(t *testing.T) {
	sets := randomMultisets(rand.New(rand.NewSource(3)), 20, 15, 5, 2)
	input := records.BuildInput("in", sets, 2)
	res, err := Join(testCluster(2), input, Config{
		Measure: similarity.Ruzicka{}, Threshold: 0.5, Algorithm: Sharding,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.JoiningStats.Jobs) != 2 { // sharding1 + sharding2
		t.Fatalf("joining jobs: %d", len(res.JoiningStats.Jobs))
	}
	if len(res.SimilarityStats.Jobs) != 2 { // similarity1 + similarity2
		t.Fatalf("similarity jobs: %d", len(res.SimilarityStats.Jobs))
	}
	total := res.JoiningStats.TotalSeconds + res.SimilarityStats.TotalSeconds
	if res.Stats.TotalSeconds != total {
		t.Fatalf("stats not additive: %v vs %v", res.Stats.TotalSeconds, total)
	}
}

func TestJoiningStepCounts(t *testing.T) {
	// OA: 1 joining job; Lookup: 1 joining + fused; Sharding: 2 joining.
	sets := randomMultisets(rand.New(rand.NewSource(5)), 15, 12, 4, 2)
	input := records.BuildInput("in", sets, 2)
	oa, err := Join(testCluster(2), input, Config{Measure: similarity.Ruzicka{}, Threshold: 0.5, Algorithm: OnlineAggregation})
	if err != nil {
		t.Fatal(err)
	}
	lk, err := Join(testCluster(2), input, Config{Measure: similarity.Ruzicka{}, Threshold: 0.5, Algorithm: Lookup})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := Join(testCluster(2), input, Config{Measure: similarity.Ruzicka{}, Threshold: 0.5, Algorithm: Sharding})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(oa.Stats.Jobs); n != 3 {
		t.Fatalf("OA should run 3 jobs, ran %d", n)
	}
	if n := len(lk.Stats.Jobs); n != 3 {
		t.Fatalf("Lookup should run 3 jobs, ran %d", n)
	}
	if n := len(sh.Stats.Jobs); n != 4 {
		t.Fatalf("Sharding should run 4 jobs, ran %d", n)
	}
}
