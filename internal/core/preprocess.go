package core

import (
	"vsmartjoin/internal/codec"
	"vsmartjoin/internal/mr"
	"vsmartjoin/internal/mrfs"
	"vsmartjoin/internal/multiset"
	"vsmartjoin/internal/records"
)

// stopWordMapper inverts raw tuples to be keyed by element:
// ⟨Mi, mi,k⟩ → ⟨ak, (Mi, fi,k)⟩.
type stopWordMapper struct{}

func (stopWordMapper) Map(_ *mr.TaskContext, rec mrfs.Record, emit mr.Emitter) error {
	id, err := records.DecodeRawKey(rec.Key)
	if err != nil {
		return err
	}
	entry, err := records.DecodeRawVal(rec.Val)
	if err != nil {
		return err
	}
	if entry.Count == 0 {
		return nil
	}
	var b codec.Buffer
	b.PutUvarint(uint64(id))
	b.PutUint32(entry.Count)
	emit.Emit(encodeElemKey(entry.Elem), b.Clone())
	return nil
}

// stopWordReducer buffers the first q multisets of an element's list and
// re-emits the raw tuples only if the list was exhausted within q —
// elements shared by more than q multisets are "stop words" and dropped
// entirely (§4). The buffer is charged against the memory budget, so the
// preprocessing reducer's footprint is O(q), as the paper intends.
type stopWordReducer struct {
	q int
}

func (r stopWordReducer) Reduce(ctx *mr.TaskContext, key []byte, values *mr.Values, emit mr.Emitter) error {
	elem, err := decodeElemKey(key)
	if err != nil {
		return err
	}
	type pending struct {
		id    multiset.ID
		count uint32
	}
	buf := make([]pending, 0, r.q)
	var reserved int64
	defer func() { ctx.Release(reserved) }()
	exhausted := true
	for {
		v, ok := values.Next()
		if !ok {
			break
		}
		if len(buf) >= r.q {
			exhausted = false
			break
		}
		rd := codec.NewReader(v.Val)
		p := pending{id: multiset.ID(rd.Uvarint()), count: rd.Uint32()}
		if err := rd.Err(); err != nil {
			return err
		}
		sz := int64(len(v.Val)) + 6
		if err := ctx.Reserve(sz); err != nil {
			return err
		}
		reserved += sz
		buf = append(buf, p)
	}
	if !exhausted {
		ctx.Counters.Inc(CounterStopWords)
		return nil
	}
	entryVal := multiset.Entry{Elem: elem}
	for _, p := range buf {
		entryVal.Count = p.count
		emit.Emit(records.EncodeRawKey(p.id), records.EncodeRawVal(entryVal))
	}
	return nil
}

// StopWordJob builds the preprocessing step that discards elements shared
// by more than q multisets. Its output is a raw-tuple dataset.
func StopWordJob(input *mrfs.Dataset, q, numReducers int) mr.Job {
	return mr.Job{
		Name:        "stop-words",
		Input:       input,
		Mapper:      stopWordMapper{},
		Reducer:     stopWordReducer{q: q},
		NumReducers: numReducers,
		OutputName:  "filtered",
	}
}

// normalizeMapper keys each raw tuple by ⟨Mi, ak⟩ so duplicate tuples for
// the same element meet at one reducer.
type normalizeMapper struct{}

func (normalizeMapper) Map(_ *mr.TaskContext, rec mrfs.Record, emit mr.Emitter) error {
	entry, err := records.DecodeRawVal(rec.Val)
	if err != nil {
		return err
	}
	if entry.Count == 0 {
		return nil
	}
	var b codec.Buffer
	b.PutRaw(rec.Key)
	b.PutUvarint(uint64(entry.Elem))
	var v codec.Buffer
	v.PutUint32(entry.Count)
	emit.Emit(b.Clone(), v.Clone())
	return nil
}

// normalizeReducer sums duplicate multiplicities and re-emits one raw
// tuple per ⟨Mi, ak⟩.
type normalizeReducer struct{}

func (normalizeReducer) Reduce(_ *mr.TaskContext, key []byte, values *mr.Values, emit mr.Emitter) error {
	r := codec.NewReader(key)
	id := multiset.ID(r.Uvarint())
	elem := multiset.Elem(r.Uvarint())
	if err := r.Err(); err != nil {
		return err
	}
	var total uint64
	for {
		v, ok := values.Next()
		if !ok {
			break
		}
		rd := codec.NewReader(v.Val)
		total += uint64(rd.Uint32())
		if err := rd.Err(); err != nil {
			return err
		}
	}
	if total > 1<<32-1 {
		total = 1<<32 - 1
	}
	emit.Emit(records.EncodeRawKey(id), records.EncodeRawVal(multiset.Entry{Elem: elem, Count: uint32(total)}))
	return nil
}

// NormalizeJob builds the optional input-normalization step that sums
// duplicate ⟨Mi, ak⟩ tuples, establishing the joining phase's input
// contract for untrusted inputs.
func NormalizeJob(input *mrfs.Dataset, numReducers int) mr.Job {
	return mr.Job{
		Name:        "normalize",
		Input:       input,
		Mapper:      normalizeMapper{},
		Combiner:    normalizeSumCombiner{},
		Reducer:     normalizeReducer{},
		NumReducers: numReducers,
		OutputName:  "normalized",
	}
}

// normalizeSumCombiner pre-sums duplicate counts per map task.
type normalizeSumCombiner struct{}

func (normalizeSumCombiner) Reduce(_ *mr.TaskContext, key []byte, values *mr.Values, emit mr.Emitter) error {
	var total uint64
	for {
		v, ok := values.Next()
		if !ok {
			break
		}
		rd := codec.NewReader(v.Val)
		total += uint64(rd.Uint32())
		if err := rd.Err(); err != nil {
			return err
		}
	}
	if total > 1<<32-1 {
		total = 1<<32 - 1
	}
	var b codec.Buffer
	b.PutUint32(uint32(total))
	emit.Emit(key, b.Clone())
	return nil
}
