package core

import (
	"math/rand"
	"testing"

	"vsmartjoin/internal/records"
	"vsmartjoin/internal/similarity"
)

// TestCombinerAblation verifies the paper's combiner claims: disabling
// dedicated combiners changes no results but inflates the shuffle volume
// of the aggregation jobs.
func TestCombinerAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	sets := randomMultisets(rng, 80, 30, 10, 4)
	input := records.BuildInput("in", sets, 8)
	for _, alg := range allAlgorithms() {
		with, err := Join(testCluster(4), input, Config{
			Measure: similarity.Ruzicka{}, Threshold: 0.5, Algorithm: alg,
		})
		if err != nil {
			t.Fatalf("%s with combiners: %v", alg, err)
		}
		without, err := Join(testCluster(4), input, Config{
			Measure: similarity.Ruzicka{}, Threshold: 0.5, Algorithm: alg, DisableCombiners: true,
		})
		if err != nil {
			t.Fatalf("%s without combiners: %v", alg, err)
		}
		if !records.SamePairs(with.Pairs, without.Pairs, 1e-9) {
			t.Fatalf("%s: ablation changed results (%d vs %d pairs)",
				alg, len(with.Pairs), len(without.Pairs))
		}
		var withShuffle, withoutShuffle int64
		for _, j := range with.Stats.Jobs {
			withShuffle += j.ShuffleBytes
		}
		for _, j := range without.Stats.Jobs {
			withoutShuffle += j.ShuffleBytes
		}
		if withoutShuffle <= withShuffle {
			t.Fatalf("%s: combiners did not reduce shuffle (%d vs %d bytes)",
				alg, withShuffle, withoutShuffle)
		}
	}
}

// TestVectorJoin exercises the vector semantics of the framework: sparse
// non-negative vectors joined under vector cosine.
func TestVectorJoin(t *testing.T) {
	// Three "vectors": v2 = 2·v1 (cosine 1), v3 orthogonal-ish.
	sets := []multisetValue{
		{1, map[uint64]uint32{1: 1, 2: 2, 3: 3}},
		{2, map[uint64]uint32{1: 2, 2: 4, 3: 6}},
		{3, map[uint64]uint32{7: 5, 8: 5}},
		{4, map[uint64]uint32{1: 3, 7: 1}},
	}
	input := records.BuildInput("in", buildAll(sets), 2)
	res, err := Join(testCluster(2), input, Config{
		Measure: similarity.VectorCosine{}, Threshold: 0.99, Algorithm: OnlineAggregation,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 1 || res.Pairs[0].A != 1 || res.Pairs[0].B != 2 {
		t.Fatalf("parallel vectors not found: %v", res.Pairs)
	}
	if res.Pairs[0].Sim < 0.999999 {
		t.Fatalf("cosine of parallel vectors: %v", res.Pairs[0].Sim)
	}
}

// TestSetJoinJaccardBoundaryThresholds exercises t = 1 (exact duplicates
// only) and very low t.
func TestSetJoinJaccardBoundaryThresholds(t *testing.T) {
	sets := []multisetValue{
		{1, map[uint64]uint32{1: 1, 2: 1}},
		{2, map[uint64]uint32{1: 1, 2: 1}},
		{3, map[uint64]uint32{1: 1, 3: 1}},
	}
	input := records.BuildInput("in", buildAll(sets), 2)
	exact, err := Join(testCluster(2), input, Config{
		Measure: similarity.Jaccard{}, Threshold: 1, Algorithm: Sharding,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(exact.Pairs) != 1 || exact.Pairs[0].Sim != 1 {
		t.Fatalf("t=1: %v", exact.Pairs)
	}
	all, err := Join(testCluster(2), input, Config{
		Measure: similarity.Jaccard{}, Threshold: 0, Algorithm: Sharding,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every overlapping pair qualifies at t=0: (1,2), (1,3), (2,3).
	if len(all.Pairs) != 3 {
		t.Fatalf("t=0: %v", all.Pairs)
	}
}

type multisetValue struct {
	id     uint64
	counts map[uint64]uint32
}

func buildAll(vals []multisetValue) (out []msAlias) {
	for _, v := range vals {
		out = append(out, buildMS(v.id, v.counts))
	}
	return out
}
