package core

import (
	"math/rand"
	"testing"

	"vsmartjoin/internal/records"
	"vsmartjoin/internal/similarity"
)

// TestJoinSpillMatchesInMemory forces the whole multi-job pipeline through
// the spill-to-disk shuffle and asserts the pair set is identical to the
// in-memory run, for every joining algorithm.
func TestJoinSpillMatchesInMemory(t *testing.T) {
	sets := randomMultisets(rand.New(rand.NewSource(17)), 80, 25, 8, 3)
	input := records.BuildInput("in", sets, 6)
	for _, alg := range []Algorithm{OnlineAggregation, Lookup, Sharding} {
		t.Run(alg.String(), func(t *testing.T) {
			cfg := Config{Measure: similarity.Ruzicka{}, Threshold: 0.4, Algorithm: alg}
			memRes, err := Join(testCluster(4), input, cfg)
			if err != nil {
				t.Fatal(err)
			}
			spillCl := testCluster(4)
			spillCl.ShuffleBufferBytes = 512 // tiny: every job must spill
			spillRes, err := Join(spillCl, input, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !records.SamePairs(spillRes.Pairs, memRes.Pairs, 0) {
				t.Fatalf("spilled join pairs differ from in-memory pairs")
			}
			var spilled int64
			var rounds int
			for _, j := range spillRes.Stats.Jobs {
				spilled += j.SpilledBytes
				rounds += j.Spills
			}
			if spilled == 0 || rounds == 0 {
				t.Fatalf("join never spilled (cap 512B, %d jobs)", len(spillRes.Stats.Jobs))
			}
			// Spill I/O must surface in the simulated time, not disappear.
			if spillRes.Stats.TotalSeconds <= memRes.Stats.TotalSeconds {
				t.Fatalf("spill run simulated faster: %v <= %v",
					spillRes.Stats.TotalSeconds, memRes.Stats.TotalSeconds)
			}
		})
	}
}

// TestJoinSpillDeterministic repeats a spilling join and asserts identical
// pairs and simulated cost — the determinism contract holds in both
// shuffle modes.
func TestJoinSpillDeterministic(t *testing.T) {
	sets := randomMultisets(rand.New(rand.NewSource(23)), 60, 25, 8, 3)
	input := records.BuildInput("in", sets, 6)
	cl := testCluster(4)
	cl.ShuffleBufferBytes = 1024
	var firstPairs []records.Pair
	var firstSeconds float64
	for run := 0; run < 3; run++ {
		res, err := Join(cl, input, Config{
			Measure: similarity.Ruzicka{}, Threshold: 0.5, Algorithm: Sharding,
		})
		if err != nil {
			t.Fatal(err)
		}
		if run == 0 {
			firstPairs = res.Pairs
			firstSeconds = res.Stats.TotalSeconds
			continue
		}
		if !records.SamePairs(res.Pairs, firstPairs, 0) {
			t.Fatalf("run %d: pairs differ", run)
		}
		if res.Stats.TotalSeconds != firstSeconds {
			t.Fatalf("run %d: simulated time differs", run)
		}
	}
}
