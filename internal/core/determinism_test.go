package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vsmartjoin/internal/mr"
	"vsmartjoin/internal/multiset"
	"vsmartjoin/internal/ppjoin"
	"vsmartjoin/internal/records"
	"vsmartjoin/internal/similarity"
)

// TestJoinFullyDeterministic asserts byte-level and cost-level determinism
// across repeated runs — the property that makes the simulated experiments
// reproducible without median-of-5 measurements.
func TestJoinFullyDeterministic(t *testing.T) {
	sets := randomMultisets(rand.New(rand.NewSource(61)), 60, 25, 8, 3)
	input := records.BuildInput("in", sets, 6)
	var firstPairs []records.Pair
	var firstSeconds float64
	for run := 0; run < 3; run++ {
		res, err := Join(testCluster(4), input, Config{
			Measure: similarity.Ruzicka{}, Threshold: 0.5, Algorithm: Sharding,
		})
		if err != nil {
			t.Fatal(err)
		}
		if run == 0 {
			firstPairs = res.Pairs
			firstSeconds = res.Stats.TotalSeconds
			continue
		}
		if !records.SamePairs(res.Pairs, firstPairs, 0) {
			t.Fatalf("run %d: pairs differ", run)
		}
		if res.Stats.TotalSeconds != firstSeconds {
			t.Fatalf("run %d: simulated time differs: %v vs %v", run, res.Stats.TotalSeconds, firstSeconds)
		}
	}
}

// TestLargeMultiplicities exercises the varint encodings and the partial
// sums with counts near the uint32 limit.
func TestLargeMultiplicities(t *testing.T) {
	big := uint32(1<<31 - 7)
	sets := []multiset.Multiset{
		buildMS(1, map[uint64]uint32{1: big, 2: 3}),
		buildMS(2, map[uint64]uint32{1: big - 1, 2: 3}),
		buildMS(3, map[uint64]uint32{9: 1}),
	}
	input := records.BuildInput("in", sets, 2)
	res, err := Join(testCluster(2), input, Config{
		Measure: similarity.Ruzicka{}, Threshold: 0.9, Algorithm: Lookup,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := ppjoin.Naive(sets, similarity.Ruzicka{}, 0.9)
	if !records.SamePairs(res.Pairs, want, 1e-12) {
		t.Fatalf("huge counts: got %v want %v", res.Pairs, want)
	}
}

// TestQuickRandomJoinsMatchNaive is a property test: for random small
// corpora and thresholds, the distributed join equals the oracle.
func TestQuickRandomJoinsMatchNaive(t *testing.T) {
	cfg := &quick.Config{MaxCount: 12}
	f := func(seed int64, thrRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		thr := 0.2 + float64(thrRaw%70)/100.0
		sets := randomMultisets(rng, 25+rng.Intn(15), 12+rng.Intn(20), 6, 3)
		input := records.BuildInput("in", sets, 3)
		want := ppjoin.Naive(sets, similarity.Ruzicka{}, thr)
		res, err := Join(testCluster(3), input, Config{
			Measure: similarity.Ruzicka{}, Threshold: thr,
			Algorithm: Algorithm(uint64(seed) % 3),
		})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return records.SamePairs(res.Pairs, want, 1e-9)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestSingletonAndEmptyCorpus covers degenerate corpora.
func TestSingletonAndEmptyCorpus(t *testing.T) {
	one := records.BuildInput("one", []multiset.Multiset{buildMS(1, map[uint64]uint32{5: 2})}, 2)
	res, err := Join(testCluster(2), one, Config{
		Measure: similarity.Ruzicka{}, Threshold: 0.1, Algorithm: OnlineAggregation,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 0 {
		t.Fatalf("singleton corpus produced pairs: %v", res.Pairs)
	}
	empty := records.BuildInput("none", nil, 2)
	res, err = Join(testCluster(2), empty, Config{
		Measure: similarity.Ruzicka{}, Threshold: 0.1, Algorithm: Sharding,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 0 {
		t.Fatalf("empty corpus produced pairs: %v", res.Pairs)
	}
}

// TestDuplicateIDsAcrossPartitionsViaNormalize documents the input
// contract: duplicate ⟨Mi, ak⟩ tuples must be normalized first.
func TestDuplicateIDsAcrossPartitionsViaNormalize(t *testing.T) {
	raw := records.BuildInput("in", []multiset.Multiset{
		buildMS(1, map[uint64]uint32{5: 1}),
		buildMS(2, map[uint64]uint32{5: 2}),
	}, 2)
	// Duplicate tuple for (1, 5).
	raw.Append(0, raw.Partitions[0][0])
	normalized, _, err := mr.Run(testCluster(2), NormalizeJob(raw, 0))
	if err != nil {
		t.Fatal(err)
	}
	sets, err := records.DecodeInput(normalized)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 2 {
		t.Fatalf("sets: %v", sets)
	}
}
