package core

import (
	"errors"
	"fmt"

	"vsmartjoin/internal/mr"
	"vsmartjoin/internal/mrfs"
	"vsmartjoin/internal/records"
	"vsmartjoin/internal/similarity"
)

// Config parameterizes a V-SMART-Join run.
type Config struct {
	// Measure is the similarity measure (required).
	Measure similarity.Measure
	// Threshold is the similarity cut-off t in [0, 1].
	Threshold float64
	// Algorithm selects the joining-phase implementation.
	Algorithm Algorithm
	// ShardC is the Sharding split parameter C (underlying cardinality);
	// 0 selects DefaultShardC. Ignored by the other algorithms.
	ShardC int
	// StopWordQ, when positive, enables the preprocessing step that drops
	// elements shared by more than q multisets.
	StopWordQ int
	// NumReducers overrides the reduce task count (0 = cluster machines).
	NumReducers int
	// DisableCombiners turns off every dedicated combiner — an ablation
	// switch for measuring how much the paper's combiner usage saves in
	// shuffle volume and reducer balance. Results are unaffected.
	DisableCombiners bool
}

// stripCombiner clears the job's combiner when the ablation is active.
func (c Config) stripCombiner(job mr.Job) mr.Job {
	if c.DisableCombiners {
		job.Combiner = nil
	}
	return job
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Measure == nil {
		return errors.New("core: Config.Measure is required")
	}
	if c.Threshold < 0 || c.Threshold > 1 {
		return fmt.Errorf("core: threshold %v outside [0,1]", c.Threshold)
	}
	if c.ShardC < 0 {
		return fmt.Errorf("core: ShardC %d negative", c.ShardC)
	}
	if c.StopWordQ < 0 {
		return fmt.Errorf("core: StopWordQ %d negative", c.StopWordQ)
	}
	return nil
}

// Result is the outcome of a join run.
type Result struct {
	// Pairs are the similar pairs, canonically ordered and sorted.
	Pairs []records.Pair
	// Output is the raw result dataset.
	Output *mrfs.Dataset
	// JoiningStats covers preprocessing plus the joining phase;
	// SimilarityStats covers Similarity1 + Similarity2. Stats is their
	// concatenation (the end-to-end simulated run time).
	JoiningStats    mr.PipelineStats
	SimilarityStats mr.PipelineStats
	Stats           mr.PipelineStats
}

// ShardingJoining runs only the Sharding joining phase (Sharding1 +
// Sharding2) with split parameter c, returning the joined dataset and the
// per-step stats — the quantities of the paper's Fig 7 sensitivity
// analysis.
func ShardingJoining(cluster mr.ClusterConfig, input *mrfs.Dataset, c, numReducers int) (*mrfs.Dataset, mr.PipelineStats, error) {
	var ps mr.PipelineStats
	if c <= 0 {
		c = DefaultShardC
	}
	table, s1, err := mr.Run(cluster, sharding1Job(input, c, numReducers))
	if err != nil {
		return nil, ps, err
	}
	ps.Add(s1)
	joined, s2, err := mr.Run(cluster, sharding2Job(input, table, numReducers))
	if err != nil {
		return nil, ps, err
	}
	ps.Add(s2)
	return joined, ps, nil
}

// Join runs the full V-SMART-Join pipeline on a raw-tuple dataset.
func Join(cluster mr.ClusterConfig, input *mrfs.Dataset, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &Result{}
	numReducers := cfg.NumReducers

	// Optional preprocessing: discard stop words.
	if cfg.StopWordQ > 0 {
		filtered, stats, err := mr.Run(cluster, StopWordJob(input, cfg.StopWordQ, numReducers))
		if err != nil {
			return nil, err
		}
		res.JoiningStats.Add(stats)
		input = filtered
	}

	// Joining phase: produce either joined tuples or, for Lookup's fused
	// final step, Similarity1 output directly.
	var sim1Out *mrfs.Dataset
	switch cfg.Algorithm {
	case OnlineAggregation:
		joined, stats, err := mr.Run(cluster, cfg.stripCombiner(onlineAggregationJob(input, numReducers)))
		if err != nil {
			return nil, err
		}
		res.JoiningStats.Add(stats)
		pairs, s1, err := mr.Run(cluster, similarity1Job(joined, numReducers))
		if err != nil {
			return nil, err
		}
		res.SimilarityStats.Add(s1)
		sim1Out = pairs

	case Lookup:
		table, stats, err := mr.Run(cluster, cfg.stripCombiner(lookup1Job(input, numReducers)))
		if err != nil {
			return nil, err
		}
		res.JoiningStats.Add(stats)
		pairs, s1, err := mr.Run(cluster, lookup2Job(input, table, numReducers))
		if err != nil {
			return nil, err
		}
		// The fused step does the joining phase's work in its map stage
		// and Similarity1's in its reduce stage; attribute it to the
		// similarity phase as the paper's accounting does for Lookup2.
		res.SimilarityStats.Add(s1)
		sim1Out = pairs

	case Sharding:
		c := cfg.ShardC
		if c == 0 {
			c = DefaultShardC
		}
		table, s1, err := mr.Run(cluster, cfg.stripCombiner(sharding1Job(input, c, numReducers)))
		if err != nil {
			return nil, err
		}
		res.JoiningStats.Add(s1)
		joined, s2, err := mr.Run(cluster, sharding2Job(input, table, numReducers))
		if err != nil {
			return nil, err
		}
		res.JoiningStats.Add(s2)
		pairs, s3, err := mr.Run(cluster, similarity1Job(joined, numReducers))
		if err != nil {
			return nil, err
		}
		res.SimilarityStats.Add(s3)
		sim1Out = pairs

	default:
		return nil, fmt.Errorf("core: unknown algorithm %v", cfg.Algorithm)
	}

	// Similarity2: aggregate conjunctive partials and apply the measure.
	out, s2, err := mr.Run(cluster, cfg.stripCombiner(similarity2Job(sim1Out, cfg.Measure, cfg.Threshold, numReducers)))
	if err != nil {
		return nil, err
	}
	res.SimilarityStats.Add(s2)
	res.Output = out

	res.Stats.Merge(res.JoiningStats)
	res.Stats.Merge(res.SimilarityStats)

	pairs, err := records.DecodePairs(out)
	if err != nil {
		return nil, err
	}
	res.Pairs = pairs
	return res, nil
}
