// Package core implements V-SMART-Join: the two-phase MapReduce framework
// for exact all-pair similarity joins of sets, multisets, and vectors.
//
// Phase 1 (joining) turns raw input tuples ⟨Mi, mi,k⟩ into joined tuples
// ⟨Mi, Uni(Mi), mi,k⟩ using one of three algorithms: Online-Aggregation
// (one MR step, requires secondary keys), Lookup (two steps, memory-bound
// side table), or Sharding (two steps, skew-aware, parameter C).
//
// Phase 2 (similarity) is shared: Similarity1 builds an inverted index
// augmented with Uni(.) values and emits candidate pairs with conjunctive
// partials; Similarity2 aggregates the partials with combiners and applies
// the measure's F() to produce ⟨Mi, Mj, Sim(Mi,Mj)⟩ for every pair at or
// above the threshold.
package core

import (
	"fmt"

	"vsmartjoin/internal/codec"
	"vsmartjoin/internal/multiset"
	"vsmartjoin/internal/similarity"
)

// Record tags distinguishing Similarity1 output kinds. They are the first
// byte of the record key: ordinary candidate-pair tuples, and the flagged
// chunk-pair records produced by overloaded reducers (§4).
const (
	tagPair  = 0x00
	tagChunk = 0x01
)

func putUni(b *codec.Buffer, u similarity.UniStats) {
	b.PutUvarint(u.Card)
	b.PutUvarint(u.UCard)
	b.PutUvarint(u.SumSq)
}

func readUni(r *codec.Reader) similarity.UniStats {
	return similarity.UniStats{Card: r.Uvarint(), UCard: r.Uvarint(), SumSq: r.Uvarint()}
}

func putConj(b *codec.Buffer, c similarity.ConjStats) {
	b.PutUvarint(c.SumMin)
	b.PutUvarint(c.SumProd)
	b.PutUvarint(c.Common)
}

func readConj(r *codec.Reader) similarity.ConjStats {
	return similarity.ConjStats{SumMin: r.Uvarint(), SumProd: r.Uvarint(), Common: r.Uvarint()}
}

// encodeUniVal encodes a UniStats partial as a value record.
func encodeUniVal(u similarity.UniStats) []byte {
	var b codec.Buffer
	putUni(&b, u)
	return b.Clone()
}

func decodeUniVal(val []byte) (similarity.UniStats, error) {
	r := codec.NewReader(val)
	u := readUni(r)
	if err := r.Err(); err != nil {
		return similarity.UniStats{}, fmt.Errorf("core: bad uni val: %w", err)
	}
	return u, nil
}

// joined tuple ⟨Mi, Uni(Mi), mi,k⟩: key = Mi, val = Uni + elem + count.
func encodeJoinedVal(u similarity.UniStats, e multiset.Entry) []byte {
	var b codec.Buffer
	putUni(&b, u)
	b.PutUvarint(uint64(e.Elem))
	b.PutUint32(e.Count)
	return b.Clone()
}

func decodeJoinedVal(val []byte) (similarity.UniStats, multiset.Entry, error) {
	r := codec.NewReader(val)
	u := readUni(r)
	e := multiset.Entry{Elem: multiset.Elem(r.Uvarint()), Count: r.Uint32()}
	if err := r.Err(); err != nil {
		return similarity.UniStats{}, multiset.Entry{}, fmt.Errorf("core: bad joined val: %w", err)
	}
	return u, e, nil
}

// indexEntry is one posting of the inverted index built by Similarity1:
// a multiset id, its unilateral partials, and its multiplicity of the
// index element.
type indexEntry struct {
	ID    multiset.ID
	Uni   similarity.UniStats
	Count uint32
}

// encodedSize is the approximate wire size of the posting, used for
// memory budgeting when buffering reduce value lists.
func (e indexEntry) encodedSize() int64 {
	return int64(codec.UvarintLen(uint64(e.ID)) +
		codec.UvarintLen(e.Uni.Card) + codec.UvarintLen(e.Uni.UCard) + codec.UvarintLen(e.Uni.SumSq) +
		codec.UvarintLen(uint64(e.Count)) + 6)
}

// Similarity1 map output: key = ak, val = (Mi, Uni, fi,k).
func encodeElemKey(e multiset.Elem) []byte {
	var b codec.Buffer
	b.PutUvarint(uint64(e))
	return b.Clone()
}

func decodeElemKey(key []byte) (multiset.Elem, error) {
	r := codec.NewReader(key)
	e := multiset.Elem(r.Uvarint())
	if err := r.Err(); err != nil {
		return 0, fmt.Errorf("core: bad elem key: %w", err)
	}
	return e, nil
}

func encodePostingVal(e indexEntry) []byte {
	var b codec.Buffer
	b.PutUvarint(uint64(e.ID))
	putUni(&b, e.Uni)
	b.PutUint32(e.Count)
	return b.Clone()
}

func decodePostingVal(val []byte) (indexEntry, error) {
	r := codec.NewReader(val)
	e := indexEntry{ID: multiset.ID(r.Uvarint()), Uni: readUni(r), Count: r.Uint32()}
	if err := r.Err(); err != nil {
		return indexEntry{}, fmt.Errorf("core: bad posting val: %w", err)
	}
	return e, nil
}

// candidate-pair tuple: key = tag + Mi + Mj + Uni(Mi) + Uni(Mj) (canonical
// Mi < Mj), val = partial ConjStats.
func encodePairTupleKey(a, b indexEntry) []byte {
	if a.ID > b.ID {
		a, b = b, a
	}
	var buf codec.Buffer
	buf.PutByte(tagPair)
	buf.PutUvarint(uint64(a.ID))
	buf.PutUvarint(uint64(b.ID))
	putUni(&buf, a.Uni)
	putUni(&buf, b.Uni)
	return buf.Clone()
}

type pairKey struct {
	A, B       multiset.ID
	UniA, UniB similarity.UniStats
}

func decodePairTupleKey(key []byte) (pairKey, error) {
	r := codec.NewReader(key)
	if tag := r.Byte(); tag != tagPair {
		return pairKey{}, fmt.Errorf("core: pair tuple has tag %d", tag)
	}
	k := pairKey{
		A: multiset.ID(r.Uvarint()), B: multiset.ID(r.Uvarint()),
	}
	k.UniA = readUni(r)
	k.UniB = readUni(r)
	if err := r.Err(); err != nil {
		return pairKey{}, fmt.Errorf("core: bad pair key: %w", err)
	}
	return k, nil
}

func encodeConjVal(c similarity.ConjStats) []byte {
	var b codec.Buffer
	putConj(&b, c)
	return b.Clone()
}

func decodeConjVal(val []byte) (similarity.ConjStats, error) {
	r := codec.NewReader(val)
	c := readConj(r)
	if err := r.Err(); err != nil {
		return similarity.ConjStats{}, fmt.Errorf("core: bad conj val: %w", err)
	}
	return c, nil
}

// conjOfCounts is the per-element contribution to Conj(Mi, Mj).
func conjOfCounts(fi, fj uint32) similarity.ConjStats {
	var c similarity.ConjStats
	c.AccumulateConj(fi, fj)
	return c
}

// chunk-pair record: key = tag + ak + p + q (p ≤ q), val = both chunks'
// postings (right side empty when p == q).
func encodeChunkKey(elem multiset.Elem, p, q int) []byte {
	var b codec.Buffer
	b.PutByte(tagChunk)
	b.PutUvarint(uint64(elem))
	b.PutUvarint(uint64(p))
	b.PutUvarint(uint64(q))
	return b.Clone()
}

func encodeChunkVal(left, right []indexEntry) []byte {
	var b codec.Buffer
	b.PutUvarint(uint64(len(left)))
	for _, e := range left {
		b.PutUvarint(uint64(e.ID))
		putUni(&b, e.Uni)
		b.PutUint32(e.Count)
	}
	b.PutUvarint(uint64(len(right)))
	for _, e := range right {
		b.PutUvarint(uint64(e.ID))
		putUni(&b, e.Uni)
		b.PutUint32(e.Count)
	}
	return b.Clone()
}

func decodeChunkVal(val []byte) (left, right []indexEntry, err error) {
	r := codec.NewReader(val)
	readSide := func() []indexEntry {
		n := r.Uvarint()
		out := make([]indexEntry, 0, n)
		for i := uint64(0); i < n; i++ {
			out = append(out, indexEntry{ID: multiset.ID(r.Uvarint()), Uni: readUni(r), Count: r.Uint32()})
		}
		return out
	}
	left = readSide()
	right = readSide()
	if err := r.Err(); err != nil {
		return nil, nil, fmt.Errorf("core: bad chunk val: %w", err)
	}
	return left, right, nil
}

// final output pair: key = Mi + Mj (canonical), val = similarity.
func encodeResultKey(a, b multiset.ID) []byte {
	if a > b {
		a, b = b, a
	}
	var buf codec.Buffer
	buf.PutUvarint(uint64(a))
	buf.PutUvarint(uint64(b))
	return buf.Clone()
}

func encodeResultVal(sim float64) []byte {
	var b codec.Buffer
	b.PutFloat64(sim)
	return b.Clone()
}
