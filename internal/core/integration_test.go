package core

import (
	"testing"

	"vsmartjoin/internal/datagen"
	"vsmartjoin/internal/graph"
	"vsmartjoin/internal/mr"
	"vsmartjoin/internal/ppjoin"
	"vsmartjoin/internal/records"
	"vsmartjoin/internal/similarity"
)

// TestEndToEndOnGeneratedTrace runs the full pipeline on a generated
// IP–cookie trace (the realistic workload shape: planted communities +
// Zipf background + hot cookies) and validates against the sequential
// oracle, for every algorithm and two measures.
func TestEndToEndOnGeneratedTrace(t *testing.T) {
	cfg := datagen.TinyConfig()
	cfg.NumBackground = 400
	tr, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	input := records.BuildInput("trace", tr.Multisets, 16)
	for _, m := range []similarity.Measure{similarity.Ruzicka{}, similarity.MultisetCosine{}} {
		want := ppjoin.Naive(tr.Multisets, m, 0.5)
		for _, alg := range allAlgorithms() {
			res, err := Join(mr.NewCluster(8, 1<<22), input, Config{
				Measure: m, Threshold: 0.5, Algorithm: alg,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", alg, m.Name(), err)
			}
			if !records.SamePairs(res.Pairs, want, 1e-9) {
				t.Fatalf("%s/%s: got %d pairs want %d", alg, m.Name(), len(res.Pairs), len(want))
			}
		}
	}
}

// TestCommunityRecoveryOnTrace checks the §7.4 pipeline: at a moderate
// threshold the planted communities are recovered with high precision.
func TestCommunityRecoveryOnTrace(t *testing.T) {
	tr, err := datagen.Generate(datagen.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	input := records.BuildInput("trace", tr.Multisets, 16)
	res, err := Join(mr.NewCluster(8, 1<<22), input, Config{
		Measure: similarity.Ruzicka{}, Threshold: 0.5, Algorithm: Sharding,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := graph.Score(res.Pairs, tr.Communities)
	if m.Precision < 0.9 {
		t.Fatalf("precision %v < 0.9 (%d true, %d false)", m.Precision, m.TruePairs, m.FalsePairs)
	}
	if m.RecalledIPs < m.TruthIPs*8/10 {
		t.Fatalf("recalled %d of %d planted IPs", m.RecalledIPs, m.TruthIPs)
	}
}

// TestLSHStyleWorkloadChunking stresses the chunked Similarity1 path on a
// trace whose hot cookies overflow a small memory budget, cross-checking
// against an unconstrained run.
func TestTraceChunkingUnderPressure(t *testing.T) {
	cfg := datagen.TinyConfig()
	cfg.HotFraction = 0.3
	cfg.NumBackground = 300
	tr, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	input := records.BuildInput("trace", tr.Multisets, 8)
	roomy, err := Join(mr.NewCluster(4, 1<<22), input, Config{
		Measure: similarity.Ruzicka{}, Threshold: 0.4, Algorithm: Sharding,
	})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Join(mr.NewCluster(4, 800), input, Config{
		Measure: similarity.Ruzicka{}, Threshold: 0.4, Algorithm: Sharding, ShardC: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tight.SimilarityStats.Counter(CounterChunkedLists) == 0 {
		t.Fatal("expected chunking under the tight budget")
	}
	if !records.SamePairs(roomy.Pairs, tight.Pairs, 1e-9) {
		t.Fatalf("chunked results differ: %d vs %d", len(roomy.Pairs), len(tight.Pairs))
	}
}
