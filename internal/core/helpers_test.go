package core

import (
	"vsmartjoin/internal/multiset"
)

// msAlias shortens multiset.Multiset in test helpers.
type msAlias = multiset.Multiset

// buildMS constructs a multiset from an element→count map.
func buildMS(id uint64, counts map[uint64]uint32) msAlias {
	entries := make([]multiset.Entry, 0, len(counts))
	for e, c := range counts {
		entries = append(entries, multiset.Entry{Elem: multiset.Elem(e), Count: c})
	}
	return multiset.New(multiset.ID(id), entries)
}
