package core

import (
	"fmt"

	"vsmartjoin/internal/codec"
	"vsmartjoin/internal/mr"
	"vsmartjoin/internal/mrfs"
	"vsmartjoin/internal/multiset"
	"vsmartjoin/internal/records"
	"vsmartjoin/internal/similarity"
)

// Algorithm selects the joining-phase implementation (§5).
type Algorithm int

const (
	// OnlineAggregation computes Uni(Mi) and joins it to the elements in a
	// single MR step using secondary keys (unsupported on Hadoop).
	OnlineAggregation Algorithm = iota
	// Lookup computes the Mi → Uni(Mi) table in one step and joins it via
	// an in-memory side table in the next; the table must fit in memory.
	Lookup
	// Sharding splits entities by underlying cardinality: the few huge
	// ("sharded") ones are joined via a small side table, the rest are
	// aggregated in memory per reducer. Parameter C sets the split.
	Sharding
)

// String names the algorithm as in the paper.
func (a Algorithm) String() string {
	switch a {
	case OnlineAggregation:
		return "online-aggregation"
	case Lookup:
		return "lookup"
	case Sharding:
		return "sharding"
	default:
		return fmt.Sprintf("algorithm(%d)", int(a))
	}
}

// uniSingleton is the per-tuple contribution of one element to Uni(Mi).
func uniSingleton(count uint32) similarity.UniStats {
	var u similarity.UniStats
	u.AccumulateUni(count)
	return u
}

// ---------------------------------------------------------------------------
// Online-Aggregation (§5.1)
// ---------------------------------------------------------------------------

var (
	secUni  = []byte{0} // secondary key 0: Uni partials arrive first
	secElem = []byte{1} // secondary key 1: the elements follow
)

// oaMapper emits, for every raw tuple, the Uni contribution under secondary
// key 0 and the tuple itself under secondary key 1 (mapOnline-Aggregation1).
type oaMapper struct{}

func (oaMapper) Map(_ *mr.TaskContext, rec mrfs.Record, emit mr.Emitter) error {
	entry, err := records.DecodeRawVal(rec.Val)
	if err != nil {
		return err
	}
	if entry.Count == 0 {
		return nil
	}
	emit.EmitSec(rec.Key, secUni, encodeUniVal(uniSingleton(entry.Count)))
	emit.EmitSec(rec.Key, secElem, rec.Val)
	return nil
}

// oaCombiner pre-sums the secondary-key-0 Uni partials of each map task
// and passes the element tuples through unchanged.
type oaCombiner struct{}

func (oaCombiner) Reduce(_ *mr.TaskContext, key []byte, values *mr.Values, emit mr.Emitter) error {
	var uni similarity.UniStats
	sawUni := false
	for {
		v, ok := values.Next()
		if !ok {
			break
		}
		if len(v.Sec) == 1 && v.Sec[0] == 0 {
			u, err := decodeUniVal(v.Val)
			if err != nil {
				return err
			}
			uni.Add(u)
			sawUni = true
			continue
		}
		emit.EmitSec(key, secElem, v.Val)
	}
	if sawUni {
		emit.EmitSec(key, secUni, encodeUniVal(uni))
	}
	return nil
}

// oaReducer streams the value list: the sorted secondary keys deliver all
// Uni partials first, so Uni(Mi) is complete before the first element
// arrives, and joined tuples are emitted without buffering anything
// (reduceOnline-Aggregation1).
type oaReducer struct{}

func (oaReducer) Reduce(_ *mr.TaskContext, key []byte, values *mr.Values, emit mr.Emitter) error {
	var uni similarity.UniStats
	for {
		v, ok := values.Next()
		if !ok {
			break
		}
		if len(v.Sec) == 1 && v.Sec[0] == 0 {
			u, err := decodeUniVal(v.Val)
			if err != nil {
				return err
			}
			uni.Add(u)
			continue
		}
		entry, err := records.DecodeRawVal(v.Val)
		if err != nil {
			return err
		}
		emit.Emit(key, encodeJoinedVal(uni, entry))
	}
	return nil
}

// onlineAggregationJob is the single joining step of Online-Aggregation.
func onlineAggregationJob(input *mrfs.Dataset, numReducers int) mr.Job {
	return mr.Job{
		Name:              "online-aggregation",
		Input:             input,
		Mapper:            oaMapper{},
		Combiner:          oaCombiner{},
		Reducer:           oaReducer{},
		NumReducers:       numReducers,
		UsesSecondaryKeys: true,
		OutputName:        "joined",
	}
}

// ---------------------------------------------------------------------------
// Lookup (§5.2)
// ---------------------------------------------------------------------------

// uniMapper emits the Uni contribution of each raw tuple keyed by Mi
// (mapLookup1 / mapSharding1).
type uniMapper struct{}

func (uniMapper) Map(_ *mr.TaskContext, rec mrfs.Record, emit mr.Emitter) error {
	entry, err := records.DecodeRawVal(rec.Val)
	if err != nil {
		return err
	}
	if entry.Count == 0 {
		return nil
	}
	emit.Emit(rec.Key, encodeUniVal(uniSingleton(entry.Count)))
	return nil
}

// uniSumReducer sums Uni partials; shared by the Lookup1 reducer and the
// dedicated combiners of Lookup1/Sharding1.
type uniSumReducer struct{}

func (uniSumReducer) Reduce(_ *mr.TaskContext, key []byte, values *mr.Values, emit mr.Emitter) error {
	var uni similarity.UniStats
	for {
		v, ok := values.Next()
		if !ok {
			break
		}
		u, err := decodeUniVal(v.Val)
		if err != nil {
			return err
		}
		uni.Add(u)
	}
	emit.Emit(key, encodeUniVal(uni))
	return nil
}

// lookup1Job computes the Mi → Uni(Mi) table.
func lookup1Job(input *mrfs.Dataset, numReducers int) mr.Job {
	return mr.Job{
		Name:        "lookup1",
		Input:       input,
		Mapper:      uniMapper{},
		Combiner:    uniSumReducer{},
		Reducer:     uniSumReducer{},
		NumReducers: numReducers,
		OutputName:  "uni-table",
	}
}

// uniTable is an in-memory Mi → Uni(Mi) lookup built from a side input.
type uniTable map[multiset.ID]similarity.UniStats

func loadUniTable(d *mrfs.Dataset) (uniTable, error) {
	t := make(uniTable, d.NumRecords())
	for _, rec := range d.All() {
		id, err := records.DecodeRawKey(rec.Key)
		if err != nil {
			return nil, err
		}
		u, err := decodeUniVal(rec.Val)
		if err != nil {
			return nil, err
		}
		t[id] = u
	}
	return t, nil
}

// lookupSim1Mapper is the fused Lookup2 + Similarity1 map stage: it joins
// each raw tuple to Uni(Mi) through the side table and keys the output by
// element, so the Similarity1 reducer can consume it directly (§5.2).
type lookupSim1Mapper struct {
	table uniTable
}

func (m *lookupSim1Mapper) Setup(ctx *mr.TaskContext) error {
	t, err := loadUniTable(ctx.Side["uni-table"])
	if err != nil {
		return err
	}
	m.table = t
	return nil
}

func (m *lookupSim1Mapper) Map(_ *mr.TaskContext, rec mrfs.Record, emit mr.Emitter) error {
	id, err := records.DecodeRawKey(rec.Key)
	if err != nil {
		return err
	}
	entry, err := records.DecodeRawVal(rec.Val)
	if err != nil {
		return err
	}
	if entry.Count == 0 {
		return nil
	}
	uni, ok := m.table[id]
	if !ok {
		return fmt.Errorf("core: lookup miss for multiset %d", id)
	}
	emit.Emit(encodeElemKey(entry.Elem), encodePostingVal(indexEntry{ID: id, Uni: uni, Count: entry.Count}))
	return nil
}

// lookup2Job is the fused Lookup2 map + Similarity1 reduce step.
func lookup2Job(input *mrfs.Dataset, table *mrfs.Dataset, numReducers int) mr.Job {
	return mr.Job{
		Name:        "lookup2+similarity1",
		Input:       input,
		Mapper:      &lookupSim1Mapper{},
		Reducer:     sim1Reducer{},
		NumReducers: numReducers,
		SideInputs:  map[string]*mrfs.Dataset{"uni-table": table},
		OutputName:  "sim1-pairs",
	}
}

// ---------------------------------------------------------------------------
// Sharding (§5.3)
// ---------------------------------------------------------------------------

// DefaultShardC is the default underlying-cardinality split; the paper's
// sensitivity analysis found the total run time flat in C with a shallow
// minimum around 1000.
const DefaultShardC = 1024

// sharding1Reducer sums Uni partials but only emits the table entry for
// multisets whose underlying cardinality exceeds C (reduceSharding1).
type sharding1Reducer struct {
	c uint64
}

func (r sharding1Reducer) Reduce(_ *mr.TaskContext, key []byte, values *mr.Values, emit mr.Emitter) error {
	var uni similarity.UniStats
	for {
		v, ok := values.Next()
		if !ok {
			break
		}
		u, err := decodeUniVal(v.Val)
		if err != nil {
			return err
		}
		uni.Add(u)
	}
	if uni.UCard > r.c {
		emit.Emit(key, encodeUniVal(uni))
	}
	return nil
}

// sharding1Job computes the sharded-multiset Uni table.
func sharding1Job(input *mrfs.Dataset, c int, numReducers int) mr.Job {
	return mr.Job{
		Name:        "sharding1",
		Input:       input,
		Mapper:      uniMapper{},
		Combiner:    uniSumReducer{},
		Reducer:     sharding1Reducer{c: uint64(c)},
		NumReducers: numReducers,
		OutputName:  "shard-table",
	}
}

const (
	shardTagUnsharded = 0x00
	shardTagSharded   = 0x01
)

// fingerprint spreads a sharded multiset's elements over reducers; the
// paper keys sharded tuples by ⟨Mi, fingerprint(ak)⟩ to distribute the
// load randomly among all the reducers.
func fingerprint(e multiset.Elem) uint64 {
	// SplitMix64 finalizer: cheap, well-mixed, deterministic.
	x := uint64(e) + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return x & 0xffff
}

func encodeShardKey(key []byte, fp uint64, sharded bool) []byte {
	var b codec.Buffer
	b.PutRaw(key)
	if sharded {
		b.PutUvarint(fp + 1)
	} else {
		b.PutUvarint(0)
	}
	return b.Clone()
}

func decodeShardKeyID(key []byte) (multiset.ID, error) {
	r := codec.NewReader(key)
	id := multiset.ID(r.Uvarint())
	_ = r.Uvarint() // fingerprint marker
	if err := r.Err(); err != nil {
		return 0, fmt.Errorf("core: bad shard key: %w", err)
	}
	return id, nil
}

func encodeShardVal(tag byte, uni similarity.UniStats, entry multiset.Entry) []byte {
	var b codec.Buffer
	b.PutByte(tag)
	if tag == shardTagSharded {
		putUni(&b, uni)
	}
	b.PutUvarint(uint64(entry.Elem))
	b.PutUint32(entry.Count)
	return b.Clone()
}

func decodeShardVal(val []byte) (byte, similarity.UniStats, multiset.Entry, error) {
	r := codec.NewReader(val)
	tag := r.Byte()
	var uni similarity.UniStats
	if tag == shardTagSharded {
		uni = readUni(r)
	}
	entry := multiset.Entry{Elem: multiset.Elem(r.Uvarint()), Count: r.Uint32()}
	if err := r.Err(); err != nil {
		return 0, similarity.UniStats{}, multiset.Entry{}, fmt.Errorf("core: bad shard val: %w", err)
	}
	return tag, uni, entry, nil
}

// sharding2Mapper joins raw tuples against the sharded table: hits carry
// their Uni and a per-element fingerprint key (spreading one huge multiset
// over many reducers); misses are keyed ⟨Mi, −1⟩ so the whole multiset
// meets at a single reducer (mapSharding2).
type sharding2Mapper struct {
	table uniTable
}

func (m *sharding2Mapper) Setup(ctx *mr.TaskContext) error {
	t, err := loadUniTable(ctx.Side["shard-table"])
	if err != nil {
		return err
	}
	m.table = t
	return nil
}

func (m *sharding2Mapper) Map(_ *mr.TaskContext, rec mrfs.Record, emit mr.Emitter) error {
	id, err := records.DecodeRawKey(rec.Key)
	if err != nil {
		return err
	}
	entry, err := records.DecodeRawVal(rec.Val)
	if err != nil {
		return err
	}
	if entry.Count == 0 {
		return nil
	}
	if uni, ok := m.table[id]; ok {
		emit.Emit(encodeShardKey(rec.Key, fingerprint(entry.Elem), true),
			encodeShardVal(shardTagSharded, uni, entry))
	} else {
		emit.Emit(encodeShardKey(rec.Key, 0, false),
			encodeShardVal(shardTagUnsharded, similarity.UniStats{}, entry))
	}
	return nil
}

// sharding2Reducer outputs joined tuples. Sharded groups already carry
// Uni(Mi): strip the fingerprint and emit. Unsharded groups fit in memory:
// scan once to compute Uni(Mi), rewind, and emit joined tuples
// (reduceSharding2).
type sharding2Reducer struct{}

func (sharding2Reducer) Reduce(ctx *mr.TaskContext, key []byte, values *mr.Values, emit mr.Emitter) error {
	id, err := decodeShardKeyID(key)
	if err != nil {
		return err
	}
	outKey := records.EncodeRawKey(id)
	first, ok := values.Next()
	if !ok {
		return nil
	}
	tag, uni, entry, err := decodeShardVal(first.Val)
	if err != nil {
		return err
	}
	if tag == shardTagSharded {
		emit.Emit(outKey, encodeJoinedVal(uni, entry))
		for {
			v, ok := values.Next()
			if !ok {
				return nil
			}
			_, uni, entry, err := decodeShardVal(v.Val)
			if err != nil {
				return err
			}
			emit.Emit(outKey, encodeJoinedVal(uni, entry))
		}
	}
	// Unsharded: |U(Mi)| ≤ C, so the list fits in memory. Buffer it
	// (charged against the budget), computing Uni on the first pass and
	// emitting on the second.
	if err := ctx.Reserve(values.Bytes()); err != nil {
		return fmt.Errorf("core: unsharded multiset %d does not fit in memory: %w", id, err)
	}
	defer ctx.Release(values.Bytes())
	var total similarity.UniStats
	total.AccumulateUni(entry.Count)
	for {
		v, ok := values.Next()
		if !ok {
			break
		}
		_, _, e, err := decodeShardVal(v.Val)
		if err != nil {
			return err
		}
		total.AccumulateUni(e.Count)
	}
	values.Rewind()
	for {
		v, ok := values.Next()
		if !ok {
			break
		}
		_, _, e, err := decodeShardVal(v.Val)
		if err != nil {
			return err
		}
		emit.Emit(outKey, encodeJoinedVal(total, e))
	}
	return nil
}

// sharding2Job joins Uni values to elements for both shard classes.
func sharding2Job(input *mrfs.Dataset, table *mrfs.Dataset, numReducers int) mr.Job {
	return mr.Job{
		Name:        "sharding2",
		Input:       input,
		Mapper:      &sharding2Mapper{},
		Reducer:     sharding2Reducer{},
		NumReducers: numReducers,
		SideInputs:  map[string]*mrfs.Dataset{"shard-table": table},
		OutputName:  "joined",
	}
}
