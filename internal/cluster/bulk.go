package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"vsmartjoin/internal/metrics"
)

// Bulk drives an ordered batch of mutations through the cluster as one
// quorum write per touched partition: ops are grouped by owner
// partition with their relative order preserved (ops on the same
// entity always share a partition, so per-entity order survives the
// grouping), each partition's replicas receive their whole group as a
// single POST /bulk, and each group succeeds or fails at majority
// quorum independently — the returned error joins the partitions that
// missed quorum, and ops routed to other partitions are unaffected.
// Like Add, the caller context's cancellation is detached from the
// node requests (trace values still propagate) and every per-replica
// failure leaves pending repair ops behind, so partial replicas
// converge through the normal anti-entropy pass.
func (c *Cluster) Bulk(ctx context.Context, ops []BulkOp) error {
	if len(ops) == 0 {
		return nil
	}
	for _, op := range ops {
		if op.Entity == "" {
			return errors.New("cluster: empty entity name")
		}
		if op.Op != "add" && op.Op != "remove" {
			return fmt.Errorf("cluster: unknown bulk op %q", op.Op)
		}
	}
	groups := make(map[int][]BulkOp)
	for _, op := range ops {
		p := PartitionOf(op.Entity, len(c.parts))
		groups[p] = append(groups[p], op)
	}
	if len(groups) == 1 {
		for p, group := range groups {
			return c.bulkPartition(ctx, p, group)
		}
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []error
	)
	for p, group := range groups {
		wg.Add(1)
		go func(p int, group []BulkOp) {
			defer wg.Done()
			if err := c.bulkPartition(ctx, p, group); err != nil {
				mu.Lock()
				errs = append(errs, err)
				mu.Unlock()
			}
		}(p, group)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// bulkPartition is writeFn for a batch: one POST /bulk per replica of
// the partition, quorum decision as soon as it is known, and the same
// repair bookkeeping writeFn does per op — a failed replica gets every
// op of the batch queued, an acking replica gets its older pending ops
// for the batch's entities cleared, and stragglers are pessimistically
// queued then conditionally cleared when their ack drains.
func (c *Cluster) bulkPartition(callerCtx context.Context, p int, ops []BulkOp) error {
	start := metrics.Now()
	replicas := c.parts[p]
	quorum := len(replicas)/2 + 1

	pend := make([]pendingOp, len(ops))
	for i, op := range ops {
		kind := opAdd
		if op.Op == "remove" {
			kind = opRemove
		}
		pend[i] = pendingOp{op: kind, entity: op.Entity, elements: op.Elements}
	}
	// The repair queue keeps only the latest op per (node, entity), so
	// enqueueing the batch in order leaves exactly the right survivor
	// when the batch mutates one entity more than once.
	enqueueAll := func(n *node) []uint64 {
		seqs := make([]uint64, len(pend))
		for i, op := range pend {
			seqs[i] = n.enqueueRepair(op)
		}
		return seqs
	}

	type outcome struct {
		n   *node
		err error
	}
	results := make(chan outcome, len(replicas))
	// Same detachment as writeFn: quorum bookkeeping must outlive an
	// impatient caller, so node requests run under the cluster timeout.
	ctx, cancel := context.WithTimeout(context.WithoutCancel(callerCtx), c.timeout)
	req := BulkRequest{Ops: ops}
	for _, n := range replicas {
		go func(n *node) {
			results <- outcome{n: n, err: c.postJSON(ctx, n, "/bulk", req, nil)}
		}(n)
	}

	acks, remaining := 0, len(replicas)
	seen := make(map[*node]bool, len(replicas))
	var errs []error
	for remaining > 0 && acks < quorum && len(errs) <= len(replicas)-quorum {
		o := <-results
		remaining--
		seen[o.n] = true
		if o.err != nil {
			errs = append(errs, o.err)
			enqueueAll(o.n)
			continue
		}
		acks++
		for _, op := range pend {
			o.n.clearRepair(op.entity)
		}
	}
	if remaining > 0 {
		provisional := make(map[*node][]uint64, remaining)
		for _, n := range replicas {
			if !seen[n] {
				provisional[n] = enqueueAll(n)
			}
		}
		go func(remaining int) {
			defer cancel()
			for ; remaining > 0; remaining-- {
				if o := <-results; o.err == nil {
					for i, op := range pend {
						o.n.clearRepairIf(op.entity, provisional[o.n][i])
					}
				}
			}
		}(remaining)
	} else {
		cancel()
	}
	c.writeLatency.ObserveSince(start)
	if acks >= quorum {
		return nil
	}
	c.writeFails.Add(1)
	return fmt.Errorf("cluster: %w: bulk write of %d ops to partition %d got %d/%d acks (quorum %d): %w",
		ErrUnavailable, len(ops), p, acks, len(replicas), quorum, errors.Join(errs...))
}
