package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/url"
	"sort"
	"sync"
	"time"

	"vsmartjoin/internal/metrics"
)

// Match is one query result as the node daemons report it. The JSON
// field names are the daemon's wire names, so per-node responses
// decode straight into the merge.
type Match struct {
	Entity     string  `json:"entity"`
	Similarity float64 `json:"similarity"`
}

// worseMatch is the canonical public ordering (similarity descending,
// entity name ascending on ties) — the same total order
// vsmartjoin.SortMatchesByName applies, restated here because the
// internal package cannot import the root. Entity names are unique
// across the cluster (one owner partition per name), so the order is
// total and the scatter-gather merge is deterministic.
func worseMatch(a, b Match) bool {
	if a.Similarity != b.Similarity {
		return a.Similarity < b.Similarity
	}
	return a.Entity > b.Entity
}

// sortMatches orders best first.
func sortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool { return worseMatch(ms[j], ms[i]) })
}

// nodeQueryRequest is the daemon's /query body.
type nodeQueryRequest struct {
	Elements  map[string]uint32 `json:"elements,omitempty"`
	Threshold *float64          `json:"threshold,omitempty"`
	TopK      int               `json:"topk,omitempty"`
}

type nodeQueryResponse struct {
	Matches []Match `json:"matches"`
}

type nodeAddRequest struct {
	Entity   string            `json:"entity"`
	Elements map[string]uint32 `json:"elements"`
}

type nodeRemoveRequest struct {
	Entity string `json:"entity"`
}

type nodeRemoveResponse struct {
	Removed bool `json:"removed"`
}

// Add upserts an entity: the write goes to every replica of the owner
// partition in parallel and succeeds once a majority acknowledged it.
// Replicas that failed are left a pending repair op; see the package
// comment for the exact quorum semantics. ctx carries trace values
// (WithRequestID) onto the node requests; its cancellation does NOT
// abort the write — quorum bookkeeping must outlive an impatient
// caller, so node requests run under the cluster timeout alone.
func (c *Cluster) Add(ctx context.Context, entity string, elements map[string]uint32) error {
	if entity == "" {
		return errors.New("cluster: empty entity name")
	}
	return c.write(ctx, pendingOp{op: opAdd, entity: entity, elements: elements})
}

// Remove deletes an entity by name, reporting whether any acknowledging
// replica still had it. Like Add, it succeeds at majority quorum and
// ignores ctx cancellation (trace values still propagate).
func (c *Cluster) Remove(ctx context.Context, entity string) (bool, error) {
	if entity == "" {
		return false, errors.New("cluster: empty entity name")
	}
	removed, err := false, error(nil)
	err = c.writeFn(ctx, pendingOp{op: opRemove, entity: entity}, func(r nodeRemoveResponse) {
		if r.Removed {
			removed = true
		}
	})
	return removed, err
}

func (c *Cluster) write(ctx context.Context, op pendingOp) error { return c.writeFn(ctx, op, nil) }

// writeFn drives one mutation through the owner partition's replica
// set. onRemove collects per-ack /remove payloads (nil for adds). The
// per-replica outcome also maintains the repair queues: a replica that
// missed this write gets a pending op, and a replica that acknowledged
// it has any OLDER pending op for the same entity cleared — replaying
// a stale upsert after a newer one must never resurrect old state.
//
// The call returns as soon as the outcome is decided — a majority
// acked, or enough replicas failed that a majority is impossible — so
// one hung replica costs its partition nothing but a background
// goroutine: stragglers keep running on their own timeout and a
// drainer does their repair bookkeeping after the caller has moved on.
func (c *Cluster) writeFn(callerCtx context.Context, op pendingOp, onRemove func(nodeRemoveResponse)) error {
	start := metrics.Now()
	replicas := c.owner(op.entity)
	quorum := len(replicas)/2 + 1

	type outcome struct {
		n   *node
		err error
		rr  nodeRemoveResponse
	}
	results := make(chan outcome, len(replicas))
	// WithoutCancel keeps the caller's trace values on the node requests
	// while detaching its cancellation: the straggler drain below runs
	// after the caller has moved on, and a request-scoped ctx would
	// abort about-to-succeed replicas and manufacture repair work.
	ctx, cancel := context.WithTimeout(context.WithoutCancel(callerCtx), c.timeout)
	for _, n := range replicas {
		go func(n *node) {
			o := outcome{n: n}
			switch op.op {
			case opAdd:
				o.err = c.postJSON(ctx, n, "/add", nodeAddRequest{Entity: op.entity, Elements: op.elements}, nil)
			case opRemove:
				o.err = c.postJSON(ctx, n, "/remove", nodeRemoveRequest{Entity: op.entity}, &o.rr)
			}
			results <- o
		}(n)
	}

	acks, remaining := 0, len(replicas)
	seen := make(map[*node]bool, len(replicas))
	var errs []error
	for remaining > 0 && acks < quorum && len(errs) <= len(replicas)-quorum {
		o := <-results
		remaining--
		seen[o.n] = true
		if o.err != nil {
			errs = append(errs, o.err)
			o.n.enqueueRepair(op)
			continue
		}
		acks++
		o.n.clearRepair(op.entity)
		if onRemove != nil && op.op == opRemove {
			onRemove(o.rr)
		}
	}
	if remaining > 0 {
		// Stragglers: not cancelled (aborting an about-to-succeed write
		// would only manufacture repair work), and pessimistically queued
		// for repair BEFORE the call returns — the caller may immediately
		// write the same entity again, and that write's bookkeeping must
		// order after this one's. When a straggler's ack eventually
		// drains, the provisional op is cleared only if it is still the
		// queued one (a newer failed write supersedes it); a straggler
		// failure simply leaves the provisional in place. Straggler
		// outcomes no longer influence the returned error or a Remove's
		// reported bool — quorum semantics, not unanimity.
		provisional := make(map[*node]uint64, remaining)
		for _, n := range replicas {
			if !seen[n] {
				provisional[n] = n.enqueueRepair(op)
			}
		}
		go func(remaining int) {
			defer cancel()
			for ; remaining > 0; remaining-- {
				if o := <-results; o.err == nil {
					o.n.clearRepairIf(op.entity, provisional[o.n])
				}
			}
		}(remaining)
	} else {
		cancel()
	}
	c.writeLatency.ObserveSince(start)
	if acks >= quorum {
		return nil
	}
	c.writeFails.Add(1)
	return fmt.Errorf("cluster: %w: write %q got %d/%d acks (quorum %d): %w",
		ErrUnavailable, op.entity, acks, len(replicas), quorum, errors.Join(errs...))
}

// QueryThreshold scatters the query to one replica per partition and
// merges — the exact union of disjoint per-partition answers, in the
// canonical order.
func (c *Cluster) QueryThreshold(ctx context.Context, elements map[string]uint32, t float64) ([]Match, error) {
	if t != t || t < 0 || t > 1 {
		return nil, fmt.Errorf("cluster: threshold %v outside [0, 1]", t)
	}
	if len(elements) == 0 {
		// A single Index answers an empty query with no matches; the node
		// HTTP API would reject the empty body, so short-circuit to keep
		// the two surfaces identical.
		return nil, nil
	}
	req := nodeQueryRequest{Elements: elements, Threshold: &t}
	per, err := c.scatter(ctx, req)
	if err != nil {
		return nil, err
	}
	var out []Match
	for _, ms := range per {
		out = append(out, ms...)
	}
	sortMatches(out)
	return out, nil
}

// QueryTopK merges per-partition top-k lists into the global top-k.
// Every node's local top-k is exact under the same canonical total
// order, so any entity of the global top-k is necessarily inside its
// own partition's list — the classic scatter-gather k-NN merge.
func (c *Cluster) QueryTopK(ctx context.Context, elements map[string]uint32, k int) ([]Match, error) {
	if k <= 0 {
		return nil, fmt.Errorf("cluster: topk %d must be positive", k)
	}
	if len(elements) == 0 {
		return nil, nil // as QueryThreshold: an empty query has no matches
	}
	per, err := c.scatter(ctx, nodeQueryRequest{Elements: elements, TopK: k})
	if err != nil {
		return nil, err
	}
	var out []Match
	for _, ms := range per {
		out = append(out, ms...)
	}
	sortMatches(out)
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// QueryEntity answers an entity-relative threshold query: the entity's
// multiset is fetched from its owner partition (GET /entity) and
// scattered as an ordinary element query, with the entity itself
// dropped from the merge — exactly vsmartjoin.Index.QueryEntity's
// semantics, entity excluded, everything else (including perfect
// duplicates of it) retained.
func (c *Cluster) QueryEntity(ctx context.Context, entity string, t float64) ([]Match, error) {
	if t != t || t < 0 || t > 1 {
		return nil, fmt.Errorf("cluster: threshold %v outside [0, 1]", t)
	}
	elements, err := c.fetchEntity(ctx, entity)
	if err != nil {
		return nil, err
	}
	ms, err := c.QueryThreshold(ctx, elements, t)
	if err != nil {
		return nil, err
	}
	out := ms[:0]
	for _, m := range ms {
		if m.Entity != entity {
			out = append(out, m)
		}
	}
	//lint:vsmart-allow canonicalorder order-preserving filter of QueryThreshold results that sortMatches already canonicalized
	return out, nil
}

type entityResponse struct {
	Entity   string            `json:"entity"`
	Elements map[string]uint32 `json:"elements"`
}

// fetchEntity reads an entity's stored multiset from its owner
// partition, failing over across replicas. Each attempt runs under its
// own deadline — with a shared one, a hung first replica would eat the
// whole budget and turn the failover into a formality.
func (c *Cluster) fetchEntity(callerCtx context.Context, entity string) (map[string]uint32, error) {
	var errs []error
	for _, n := range c.prefer(c.owner(entity)) {
		ctx, cancel := context.WithTimeout(callerCtx, c.timeout)
		var er entityResponse
		err := c.getJSON(ctx, n, "/entity?name="+url.QueryEscape(entity), &er)
		cancel()
		if err == nil {
			return er.Elements, nil
		}
		if strings404(err) {
			return nil, fmt.Errorf("cluster: entity %q not indexed", entity)
		}
		errs = append(errs, err)
	}
	return nil, fmt.Errorf("cluster: %w: entity %q owner partition unreachable: %w",
		ErrUnavailable, entity, errors.Join(errs...))
}

// strings404 reports whether a node error is the daemon's 404 — the
// entity genuinely absent, as opposed to the node being unreachable.
func strings404(err error) bool {
	var se statusError
	return errors.As(err, &se) && se.code == 404
}

// scatter fans one query request out to every partition in parallel
// and returns the per-partition match lists. Any partition with no
// answering replica fails the whole query: a partial answer would be
// silently wrong, the one thing the differential harness exists to
// prevent.
func (c *Cluster) scatter(ctx context.Context, req nodeQueryRequest) ([][]Match, error) {
	return scatterAll(c, ctx, func(ctx context.Context, n *node) ([]Match, error) {
		var qr nodeQueryResponse
		err := c.postJSON(ctx, n, "/query", req, &qr)
		// Matches may legitimately be empty; nil keeps merges allocation-free.
		return qr.Matches, err
	})
}

// scatterAll runs one request against every partition in parallel —
// each through raceReplicas' failover and hedging — and returns the
// per-partition answers. The query kinds (/query, /knn) differ only in
// the do callback.
func scatterAll[T any](c *Cluster, ctx context.Context, do func(context.Context, *node) (T, error)) ([]T, error) {
	c.queries.Add(1)
	start := metrics.Now()
	defer c.queryLatency.ObserveSince(start)
	per := make([]T, len(c.parts))
	errs := make([]error, len(c.parts))
	var wg sync.WaitGroup
	for p := range c.parts {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			per[p], errs[p] = raceReplicas(c, ctx, p, do)
		}(p)
	}
	wg.Wait()
	var bad []error
	for p, err := range errs {
		if err != nil {
			bad = append(bad, fmt.Errorf("partition %d: %w", p, err))
		}
	}
	if len(bad) > 0 {
		return nil, fmt.Errorf("cluster: %w: %w", ErrUnavailable, errors.Join(bad...))
	}
	return per, nil
}

// prefer orders a replica row for querying: healthy replicas first (in
// round-robin rotation so load spreads), then the unhealthy ones as a
// last resort — health information is advisory and possibly stale, so
// a "down" node is still worth a final attempt before the partition is
// declared unavailable.
func (c *Cluster) prefer(replicas []*node) []*node {
	out := make([]*node, 0, len(replicas))
	rot := int(c.rr.Add(1) - 1)
	var sick []*node
	for i := range replicas {
		n := replicas[(rot+i)%len(replicas)]
		if n.isHealthy() {
			out = append(out, n)
		} else {
			sick = append(sick, n)
		}
	}
	return append(out, sick...)
}

// raceReplicas runs one partition's request: first attempt on the
// preferred replica, immediate failover on error, and a hedged second
// attempt if the current one is slow. The first successful answer
// wins; cancelling the partition context reels the losers back in.
func raceReplicas[T any](c *Cluster, callerCtx context.Context, p int, do func(context.Context, *node) (T, error)) (T, error) {
	order := c.prefer(c.parts[p])
	ctx, cancel := context.WithTimeout(callerCtx, c.timeout)
	defer cancel()

	type result struct {
		v      T
		err    error
		hedged bool // this attempt was a hedge, not the primary or a failover
	}
	results := make(chan result, len(order))
	launched := 0
	launch := func(hedged bool) {
		n := order[launched]
		launched++
		go func() {
			v, err := do(ctx, n)
			results <- result{v, err, hedged}
		}()
	}

	launch(false)
	inflight := 1
	var hedgeC <-chan time.Time
	if c.hedge >= 0 && launched < len(order) {
		timer := time.NewTimer(c.hedge)
		defer timer.Stop()
		hedgeC = timer.C
	}
	var errs []error
	for inflight > 0 {
		select {
		case r := <-results:
			inflight--
			if r.err == nil {
				if r.hedged {
					c.hedgeWins.Add(1)
				}
				return r.v, nil
			}
			errs = append(errs, r.err)
			if launched < len(order) {
				c.failovers.Add(1)
				launch(false)
				inflight++
			}
		case <-hedgeC:
			hedgeC = nil
			if launched < len(order) {
				c.hedges.Add(1)
				launch(true)
				inflight++
			}
		}
	}
	var zero T
	return zero, fmt.Errorf("no replica answered: %w", errors.Join(errs...))
}

// Snapshot asks every node to cut a durable snapshot, failing on the
// first refusal (volatile nodes answer 409). It is the operational
// fan-out of vsmartjoin.Index.Snapshot, not a consistency point: nodes
// snapshot at their own pace.
func (c *Cluster) Snapshot() error {
	ctx, cancel := context.WithTimeout(context.Background(), c.timeout)
	defer cancel()
	errs := make([]error, len(c.nodes))
	var wg sync.WaitGroup
	for i, n := range c.nodes {
		wg.Add(1)
		go func(i int, n *node) {
			defer wg.Done()
			errs[i] = c.postJSON(ctx, n, "/snapshot", struct{}{}, nil)
		}(i, n)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// NodeStatus is one node's row in Stats.
type NodeStatus struct {
	Addr          string    `json:"addr"`
	Partition     int       `json:"partition"`
	Healthy       bool      `json:"healthy"`
	LastError     string    `json:"last_error,omitempty"`
	LastChecked   time.Time `json:"last_checked"`
	Generation    uint64    `json:"generation"`
	Entities      int       `json:"entities"`
	Mutations     int64     `json:"mutations"`
	Shards        int       `json:"shards"`
	PendingRepair int       `json:"pending_repair"`
}

// Stats is the router's view of the cluster.
type Stats struct {
	Partitions int   `json:"partitions"`
	Queries    int64 `json:"queries"`
	Hedges     int64 `json:"hedges"`
	// HedgeWins counts hedged attempts whose answer beat the primary —
	// the fraction of Hedges that actually cut tail latency.
	HedgeWins  int64 `json:"hedge_wins"`
	Failovers  int64 `json:"failovers"`
	WriteFails int64 `json:"write_fails"`
	Repairs    int64 `json:"repairs"`
	// RepairBacklog is the current total of pending repair ops across
	// nodes — the live anti-entropy debt, where Repairs counts ops
	// already re-driven.
	RepairBacklog int          `json:"repair_backlog"`
	Nodes         []NodeStatus `json:"nodes"`
}

// Stats reports topology, router counters, and the latest per-node
// health the router has observed (from traffic and /readyz probes; it
// performs no network calls itself).
func (c *Cluster) Stats() Stats {
	s := Stats{
		Partitions: len(c.parts),
		Queries:    c.queries.Load(),
		Hedges:     c.hedges.Load(),
		HedgeWins:  c.hedgeWins.Load(),
		Failovers:  c.failovers.Load(),
		WriteFails: c.writeFails.Load(),
		Repairs:    c.repairs.Load(),
	}
	for _, n := range c.nodes {
		n.mu.Lock()
		s.RepairBacklog += len(n.pending)
		s.Nodes = append(s.Nodes, NodeStatus{
			Addr:          n.addr,
			Partition:     n.partition,
			Healthy:       n.healthy,
			LastError:     n.err,
			LastChecked:   n.checked,
			Generation:    n.ready.Generation,
			Entities:      n.ready.Entities,
			Mutations:     n.ready.Mutations,
			Shards:        n.ready.Shards,
			PendingRepair: len(n.pending),
		})
		n.mu.Unlock()
	}
	return s
}

// Ready reports whether the cluster can answer queries (at least one
// healthy replica per partition) and whether it can accept writes to
// every partition (a healthy majority per partition), from the
// router's current health table.
func (c *Cluster) Ready() (queries, writes bool) {
	queries, writes = true, true
	for _, row := range c.parts {
		healthy := 0
		for _, n := range row {
			if n.isHealthy() {
				healthy++
			}
		}
		if healthy == 0 {
			queries = false
		}
		if healthy < len(row)/2+1 {
			writes = false
		}
	}
	return queries, writes
}
