package cluster

import "context"

// HeaderRequestID is the trace header: the router (or any client)
// stamps each incoming request with an ID and propagates it on every
// node sub-request, so one logical query is greppable across the
// router's and every node's logs and debug payloads.
const HeaderRequestID = "X-Vsmart-Request-Id"

// ridKey is the context key carrying the request ID.
type ridKey struct{}

// WithRequestID returns a context carrying a request ID that postJSON/
// getJSON attach to every node request as HeaderRequestID.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, ridKey{}, id)
}

// RequestID extracts the request ID from ctx ("" when absent).
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(ridKey{}).(string)
	return id
}
