package cluster

import (
	"context"
	"sync"
)

// opKind is a pending mutation's kind.
type opKind uint8

const (
	opAdd opKind = iota
	opRemove
)

// pendingOp is one mutation a replica missed. The queue is keyed by
// entity and keeps only the LATEST op per (node, entity): replaying the
// newest upsert (or remove) is sufficient and replaying anything older
// would be wrong, so order within a re-drive batch does not matter.
type pendingOp struct {
	op       opKind
	entity   string
	elements map[string]uint32
	seq      uint64
}

// enqueueRepair records that this node missed (or may have missed) op,
// returning the queue sequence assigned to it. Caller-side writes
// enqueue on every per-replica failure — whether or not the write met
// quorum overall — and pessimistically for every straggler still in
// flight when the write returns at quorum, so the partition converges
// either way.
func (n *node) enqueueRepair(op pendingOp) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.pending == nil {
		n.pending = make(map[string]pendingOp)
	}
	n.seq++
	op.seq = n.seq
	n.pending[op.entity] = op
	return op.seq
}

// clearRepair drops any pending op for entity: a newer write just
// reached the node, so re-driving the old one would resurrect stale
// state.
func (n *node) clearRepair(entity string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.pending, entity)
}

// clearRepairIf drops the pending op for entity only if it is still
// the one enqueued with seq — the guard straggler bookkeeping needs,
// since by the time a straggler's ack drains, a NEWER failed write may
// have queued its own op under the same entity.
func (n *node) clearRepairIf(entity string, seq uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if cur, ok := n.pending[entity]; ok && cur.seq == seq {
		delete(n.pending, entity)
	}
}

// BulkRequest is the daemon's POST /bulk body: a batch of mutations
// applied in order. The anti-entropy pass sends it so a lagging
// replica converges in one round trip instead of one per missed
// write; internal/httpd decodes the same struct on the node side, so
// producer and consumer cannot drift apart.
type BulkRequest struct {
	Ops []BulkOp `json:"ops"`
}

// BulkOp is one mutation of a BulkRequest.
type BulkOp struct {
	Op       string            `json:"op"` // "add" | "remove"
	Entity   string            `json:"entity"`
	Elements map[string]uint32 `json:"elements,omitempty"`
}

// RepairNow is the anti-entropy pass: every node with pending repair
// ops gets them re-driven as one /bulk batch. An op is cleared only if
// it is still the one that was sent (a concurrent write may have
// superseded it mid-flight — its seq then differs and the newer op
// stays queued). Nodes that are still down keep their queue and are
// retried on the next pass. The background repair loop calls this on
// its cadence; tests call it directly for determinism.
func (c *Cluster) RepairNow(ctx context.Context) {
	var wg sync.WaitGroup
	for _, n := range c.nodes {
		n.mu.Lock()
		if len(n.pending) == 0 {
			n.mu.Unlock()
			continue
		}
		batch := make([]pendingOp, 0, len(n.pending))
		for _, op := range n.pending {
			batch = append(batch, op)
		}
		n.mu.Unlock()

		wg.Add(1)
		go func(n *node, batch []pendingOp) {
			defer wg.Done()
			req := BulkRequest{Ops: make([]BulkOp, len(batch))}
			for i, op := range batch {
				switch op.op {
				case opAdd:
					req.Ops[i] = BulkOp{Op: "add", Entity: op.entity, Elements: op.elements}
				case opRemove:
					req.Ops[i] = BulkOp{Op: "remove", Entity: op.entity}
				}
			}
			if err := c.postJSON(ctx, n, "/bulk", req, nil); err != nil {
				return // still lagging; keep the queue for the next pass
			}
			c.repairs.Add(int64(len(batch)))
			n.mu.Lock()
			for _, op := range batch {
				if cur, ok := n.pending[op.entity]; ok && cur.seq == op.seq {
					delete(n.pending, op.entity)
				}
			}
			n.mu.Unlock()
		}(n, batch)
	}
	wg.Wait()
}

// PendingRepairs reports the total queued repair ops across nodes —
// zero once anti-entropy has converged every replica.
func (c *Cluster) PendingRepairs() int {
	total := 0
	for _, n := range c.nodes {
		n.mu.Lock()
		total += len(n.pending)
		n.mu.Unlock()
	}
	return total
}
