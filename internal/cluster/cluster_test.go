package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"
)

// fakeNode is a scriptable stand-in for a vsmartjoind node: it stores
// entities in a map, answers the endpoint surface the router uses, and
// can be told to fail writes, fail everything, or hang queries — the
// partial-failure scenarios the real differential (root package) never
// produces on demand. Queries answer every stored entity with
// similarity 1, which is enough structure for the merge to be checked.
type fakeNode struct {
	mu         sync.Mutex
	ents       map[string]map[string]uint32
	mutations  int64
	failWrites bool
	down       bool
	hangQuery  bool
	bulks      int
}

func newFakeNode() *fakeNode {
	return &fakeNode{ents: make(map[string]map[string]uint32)}
}

func (f *fakeNode) set(fn func(*fakeNode)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fn(f)
}

func (f *fakeNode) bulkCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.bulks
}

func (f *fakeNode) entities() map[string]map[string]uint32 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]map[string]uint32, len(f.ents))
	for k, v := range f.ents {
		out[k] = v
	}
	return out
}

func (f *fakeNode) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	down, failWrites, hang := f.down, f.failWrites, f.hangQuery
	f.mu.Unlock()
	if down {
		http.Error(w, `{"error":"node down"}`, http.StatusInternalServerError)
		return
	}
	writeJSON := func(v any) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(v)
	}
	switch r.URL.Path {
	case "/add":
		if failWrites {
			http.Error(w, `{"error":"write refused"}`, http.StatusInternalServerError)
			return
		}
		var req nodeAddRequest
		json.NewDecoder(r.Body).Decode(&req)
		f.mu.Lock()
		f.ents[req.Entity] = req.Elements
		f.mutations++
		f.mu.Unlock()
		writeJSON(map[string]any{"entities": len(f.ents)})
	case "/remove":
		if failWrites {
			http.Error(w, `{"error":"write refused"}`, http.StatusInternalServerError)
			return
		}
		var req nodeRemoveRequest
		json.NewDecoder(r.Body).Decode(&req)
		f.mu.Lock()
		_, had := f.ents[req.Entity]
		delete(f.ents, req.Entity)
		f.mutations++
		f.mu.Unlock()
		writeJSON(map[string]any{"removed": had})
	case "/query":
		if hang {
			// Drain the body first: the net/http server only watches for a
			// client abort once the handler consumed the request, and the
			// hedge's context cancellation must be able to release this
			// handler when the test tears down.
			io.Copy(io.Discard, r.Body)
			<-r.Context().Done() // the node died mid-query: never answers
			return
		}
		f.mu.Lock()
		var ms []Match
		for name := range f.ents {
			ms = append(ms, Match{Entity: name, Similarity: 1})
		}
		f.mu.Unlock()
		sort.Slice(ms, func(i, j int) bool { return ms[i].Entity < ms[j].Entity })
		writeJSON(map[string]any{"matches": ms})
	case "/bulk":
		var req BulkRequest
		json.NewDecoder(r.Body).Decode(&req)
		f.mu.Lock()
		for _, op := range req.Ops {
			if op.Op == "add" {
				f.ents[op.Entity] = op.Elements
			} else {
				delete(f.ents, op.Entity)
			}
			f.mutations++
		}
		f.bulks++
		f.mu.Unlock()
		writeJSON(map[string]any{"applied": len(req.Ops)})
	case "/readyz":
		f.mu.Lock()
		out := Readiness{Ready: true, Measure: "ruzicka", Generation: 1,
			Entities: len(f.ents), Mutations: f.mutations, Shards: 1}
		f.mu.Unlock()
		writeJSON(out)
	case "/entity":
		name := r.URL.Query().Get("name")
		f.mu.Lock()
		elems, ok := f.ents[name]
		f.mu.Unlock()
		if !ok {
			http.Error(w, `{"error":"not indexed"}`, http.StatusNotFound)
			return
		}
		writeJSON(map[string]any{"entity": name, "elements": elems})
	default:
		http.Error(w, `{"error":"unknown path"}`, http.StatusNotFound)
	}
}

// grid spins up P×R fake nodes and a cluster over them with the
// background loops disabled (tests drive CheckNow/RepairNow
// explicitly) and hedging off unless asked for.
func grid(t *testing.T, p, r int, hedge time.Duration) ([][]*fakeNode, *Cluster) {
	t.Helper()
	nodes := make([][]*fakeNode, p)
	topo := make([][]string, p)
	for pi := 0; pi < p; pi++ {
		for ri := 0; ri < r; ri++ {
			f := newFakeNode()
			ts := httptest.NewServer(f)
			t.Cleanup(ts.Close)
			nodes[pi] = append(nodes[pi], f)
			topo[pi] = append(topo[pi], ts.URL)
		}
	}
	c, err := New(Config{
		Partitions:  topo,
		Timeout:     5 * time.Second,
		HedgeAfter:  hedge,
		HealthEvery: -1,
		RepairEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return nodes, c
}

// waitPending polls until the cluster's pending-repair count settles
// at want: writeFn returns at quorum, so straggler bookkeeping (a
// provisional repair queued synchronously, cleared when the
// straggler's ack drains) is asynchronous by design.
func waitPending(t *testing.T, c *Cluster, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		got := c.PendingRepairs()
		if got == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pending repairs = %d, want %d", got, want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPartitionOfDeterministicAndSpread(t *testing.T) {
	hits := make([]int, 8)
	for i := 0; i < 4096; i++ {
		name := fmt.Sprintf("entity-%d", i)
		p := PartitionOf(name, 8)
		if p2 := PartitionOf(name, 8); p2 != p {
			t.Fatalf("PartitionOf(%q) unstable: %d then %d", name, p, p2)
		}
		hits[p]++
	}
	for p, n := range hits {
		// A fair hash puts ~512 of 4096 names in each of 8 partitions;
		// anything outside [256, 768] would be a broken mix.
		if n < 256 || n > 768 {
			t.Fatalf("partition %d got %d/4096 names: %v", p, n, hits)
		}
	}
	if PartitionOf("anything", 1) != 0 || PartitionOf("anything", 0) != 0 {
		t.Fatal("degenerate partition counts must route to 0")
	}
}

func TestNormalizeAddr(t *testing.T) {
	for in, want := range map[string]string{
		" host:8321 ":       "http://host:8321",
		"http://host:8321/": "http://host:8321",
		"https://host":      "https://host",
		"10.0.0.7:99":       "http://10.0.0.7:99",
		"  ":                "",
	} {
		if got := normalizeAddr(in); got != want {
			t.Fatalf("normalizeAddr(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestNewRejectsBadTopologies(t *testing.T) {
	for _, bad := range [][][]string{
		{},
		{{}},
		{{"a:1"}, {}},
		{{"a:1", "a:1"}},
		{{"a:1"}, {"a:1"}},
		{{"a:1", "   "}},
	} {
		if _, err := New(Config{Partitions: bad, HealthEvery: -1, RepairEvery: -1}); err == nil {
			t.Fatalf("topology %v should be rejected", bad)
		}
	}
}

// TestWriteReplicatesAndQuorum: a healthy partition applies the write
// on every replica; with a minority failing the write still succeeds
// and the failed replica gets a pending repair op.
func TestWriteReplicatesAndQuorum(t *testing.T) {
	nodes, c := grid(t, 2, 3, -1)
	if err := c.Add(context.Background(), "e1", map[string]uint32{"x": 2}); err != nil {
		t.Fatal(err)
	}
	p := PartitionOf("e1", 2)
	// The write returns at quorum; the last replica's apply may still be
	// in flight, so poll for full replication.
	deadline := time.Now().Add(5 * time.Second)
	for ri := 0; ri < len(nodes[p]); {
		if ents := nodes[p][ri].entities(); ents["e1"] != nil {
			ri++
			continue
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica %d missed the write: %v", ri, nodes[p][ri].entities())
		}
		time.Sleep(time.Millisecond)
	}
	for ri, f := range nodes[1-p] {
		if ents := f.entities(); len(ents) != 0 {
			t.Fatalf("non-owner partition replica %d got the write: %v", ri, ents)
		}
	}

	// One of three replicas failing: quorum met, repair queued.
	nodes[p][1].set(func(f *fakeNode) { f.failWrites = true })
	if err := c.Add(context.Background(), "e2", map[string]uint32{"y": 1}); err != nil {
		t.Fatalf("write with 2/3 acks should meet quorum: %v", err)
	}
	waitPending(t, c, 1)

	// Two of three failing: quorum missed, the error says so.
	nodes[p][2].set(func(f *fakeNode) { f.failWrites = true })
	err := c.Add(context.Background(), "e3", map[string]uint32{"z": 1})
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("want quorum failure wrapping ErrUnavailable, got %v", err)
	}
	if c.Stats().WriteFails != 1 {
		t.Fatalf("write-fail counter: %+v", c.Stats())
	}
}

// TestRepairConvergesLaggingReplica is the anti-entropy cycle: writes
// miss a down replica (queued), the replica comes back, RepairNow
// re-drives them as one /bulk batch, and the replica converges — with
// the mutation counters in Stats reflecting it after a health pass.
func TestRepairConvergesLaggingReplica(t *testing.T) {
	nodes, c := grid(t, 1, 2, -1)
	lagging := nodes[0][1]
	lagging.set(func(f *fakeNode) { f.down = true })

	// Majority of 2 is 2: with one replica down every write errors, but
	// the live replica applied it and the dead one owes a repair.
	if err := c.Add(context.Background(), "e1", map[string]uint32{"x": 1}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("want quorum failure, got %v", err)
	}
	if err := c.Add(context.Background(), "e2", map[string]uint32{"y": 1}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("want quorum failure, got %v", err)
	}
	if _, err := c.Remove(context.Background(), "e2"); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("want quorum failure, got %v", err)
	}
	waitPending(t, c, 2) // the latest op per entity, lagging replica only

	// Still down: repair must not clear the queue.
	c.RepairNow(context.Background())
	waitPending(t, c, 2)

	lagging.set(func(f *fakeNode) { f.down = false })
	c.RepairNow(context.Background())
	waitPending(t, c, 0)
	if got := lagging.bulkCount(); got != 1 {
		t.Fatalf("repair should arrive as one /bulk batch, got %d", got)
	}
	want := nodes[0][0].entities()
	got := lagging.entities()
	if len(got) != len(want) || got["e1"] == nil || got["e2"] != nil {
		t.Fatalf("lagging replica did not converge: got %v want %v", got, want)
	}

	c.CheckNow(context.Background())
	st := c.Stats()
	if st.Repairs != 2 {
		t.Fatalf("repairs counter = %d, want 2", st.Repairs)
	}
	for _, n := range st.Nodes {
		if n.Entities != 1 {
			t.Fatalf("node %s entities = %d after convergence: %+v", n.Addr, n.Entities, st.Nodes)
		}
	}
}

// TestRepairNeverResurrectsStaleWrites: a newer successful write to
// the same entity must cancel the queued older one, or repair would
// roll the entity back.
func TestRepairNeverResurrectsStaleWrites(t *testing.T) {
	nodes, c := grid(t, 1, 3, -1)
	lagging := nodes[0][2]
	lagging.set(func(f *fakeNode) { f.failWrites = true })
	if err := c.Add(context.Background(), "e", map[string]uint32{"old": 1}); err != nil {
		t.Fatal(err) // 2/3 acks
	}
	waitPending(t, c, 1)
	lagging.set(func(f *fakeNode) { f.failWrites = false })
	// The newer upsert reaches all three replicas and must erase the
	// queued stale one.
	if err := c.Add(context.Background(), "e", map[string]uint32{"new": 2}); err != nil {
		t.Fatal(err)
	}
	waitPending(t, c, 0)
	c.RepairNow(context.Background())
	if got := lagging.entities()["e"]; got["new"] != 2 || got["old"] != 0 {
		t.Fatalf("entity rolled back: %v", got)
	}
}

// TestNodeDownAtStartup: a replica that was never up must not stop
// queries — the router fails over to the live replica and the answer
// is the full partition answer.
func TestNodeDownAtStartup(t *testing.T) {
	f := newFakeNode()
	live := httptest.NewServer(f)
	defer live.Close()
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // nothing ever listens here again

	c, err := New(Config{
		Partitions:  [][]string{{deadURL, live.URL}},
		Timeout:     5 * time.Second,
		HedgeAfter:  -1,
		HealthEvery: -1,
		RepairEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	f.set(func(f *fakeNode) { f.ents["e1"] = map[string]uint32{"x": 1} })

	// Depending on round-robin rotation the dead node may be tried
	// first; both orders must answer exactly.
	for i := 0; i < 4; i++ {
		ms, err := c.QueryThreshold(context.Background(), map[string]uint32{"x": 1}, 0)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if len(ms) != 1 || ms[0].Entity != "e1" {
			t.Fatalf("query %d: %v", i, ms)
		}
	}
	c.CheckNow(context.Background())
	var deadSeen bool
	for _, n := range c.Stats().Nodes {
		if n.Addr == deadURL {
			deadSeen = true
			if n.Healthy {
				t.Fatal("dead node still marked healthy after CheckNow")
			}
		}
	}
	if !deadSeen {
		t.Fatal("dead node missing from stats")
	}
	if q, w := c.Ready(); !q || w {
		t.Fatalf("Ready() = %v, %v; want queries ready, writes not (majority of 2 is 2)", q, w)
	}
}

// TestHedgeWinsWhenNodeDiesMidQuery: the preferred replica accepts the
// query and never answers; the hedge fires on the other replica and
// its (exact) answer wins well before the per-node timeout.
func TestHedgeWinsWhenNodeDiesMidQuery(t *testing.T) {
	nodes, c := grid(t, 1, 2, 5*time.Millisecond)
	for _, f := range nodes[0] {
		f.set(func(f *fakeNode) { f.ents["e1"] = map[string]uint32{"x": 1} })
	}
	// Whichever replica the rotation prefers, hang it; the other answers.
	hung := 0
	nodes[0][hung].set(func(f *fakeNode) { f.hangQuery = true })
	nodes[0][1].set(func(f *fakeNode) { f.hangQuery = false })

	start := time.Now()
	deadline := time.After(2 * time.Second)
	hedgedOnce := false
	for !hedgedOnce {
		select {
		case <-deadline:
			t.Fatal("no query was ever hedged")
		default:
		}
		ms, err := c.QueryThreshold(context.Background(), map[string]uint32{"x": 1}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) != 1 || ms[0].Entity != "e1" {
			t.Fatalf("hedged answer wrong: %v", ms)
		}
		hedgedOnce = c.Stats().Hedges > 0
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("hedged queries took %v — hedging is not working", elapsed)
	}
}

// TestAllReplicasDownFailsQuery: with every replica of a partition
// dead the query must error (never a silent partial answer), tagged
// ErrUnavailable.
func TestAllReplicasDownFailsQuery(t *testing.T) {
	nodes, c := grid(t, 2, 1, -1)
	nodes[1][0].set(func(f *fakeNode) { f.down = true })
	_, err := c.QueryThreshold(context.Background(), map[string]uint32{"x": 1}, 0)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("want ErrUnavailable, got %v", err)
	}
	if q, _ := c.Ready(); q {
		t.Fatal("cluster with a dead partition reports query-ready")
	}
}

// TestQueryEntityCrossPartition: the owner partition serves the
// multiset, every partition answers, the entity itself is excluded.
func TestQueryEntityCrossPartition(t *testing.T) {
	nodes, c := grid(t, 3, 1, -1)
	if err := c.Add(context.Background(), "probe", map[string]uint32{"x": 1}); err != nil {
		t.Fatal(err)
	}
	// Plant one twin entity per partition, bypassing routing so every
	// partition has something to answer with.
	for pi := range nodes {
		name := fmt.Sprintf("twin-%d", pi)
		nodes[pi][0].set(func(f *fakeNode) { f.ents[name] = map[string]uint32{"x": 1} })
	}
	ms, err := c.QueryEntity(context.Background(), "probe", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("want the 3 twins, got %v", ms)
	}
	for i, m := range ms {
		if want := fmt.Sprintf("twin-%d", i); m.Entity != want {
			t.Fatalf("merge order wrong at %d: %v", i, ms)
		}
	}
	if _, err := c.QueryEntity(context.Background(), "never-indexed", 0); err == nil || errors.Is(err, ErrUnavailable) {
		t.Fatalf("unknown entity should be a caller error, got %v", err)
	}
}
