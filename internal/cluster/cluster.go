// Package cluster is the multi-node serving layer: a stateless query
// router that treats N vsmartjoind processes as partitions of one
// logical similarity index. It is the network-distributed counterpart
// of internal/shard — where a shard.Set fans a query out across
// goroutines of one process, a Cluster fans it out across HTTP nodes —
// and it follows the same partition/merge structure the paper's
// sharding algorithm uses for the batch join.
//
// # Topology
//
// A cluster is a static grid of P partitions × R replicas. Every
// entity belongs to exactly one partition, chosen by hashing its NAME
// (FNV-64a folded through shard.ShardOf's splitmix64 finalizer — see
// PartitionOf), so any router instance, with no state at all, routes
// the same entity to the same partition. Each node in a partition's
// replica set holds the complete multisets of that partition's
// entities, which keeps every query exact: per-node answers are
// disjoint across partitions and their union (or top-k merge) equals
// the single-index answer.
//
// # Writes
//
// Add/Remove route to the owner partition and go to all R replicas in
// parallel. The write succeeds once a majority (R/2+1) of replicas
// acknowledge it; replicas that failed are left a pending repair op
// that the anti-entropy pass re-drives (see repair.go). A write that
// misses quorum returns an error, but — as in any quorum system — it
// may still have applied on a minority of replicas, and anti-entropy
// will complete rather than undo it: "error" means "not guaranteed
// applied", never "guaranteed not applied".
//
// # Queries
//
// QueryThreshold/QueryTopK scatter to ONE replica per partition
// (healthy replicas preferred, chosen round-robin), each attempt
// bounded by a per-node timeout. A replica that fails is immediately
// failed over to the next; a replica that is merely slow is hedged: after
// HedgeAfter the same query is fired at the next replica and the first
// answer wins. Per-partition results merge under the canonical public
// ordering (similarity descending, entity name ascending), which is a
// pure function of the stored (name, multiset) pairs — so the merged
// answer is byte-identical to a single index holding every entity,
// regardless of P, R, or which replica answered.
//
// A query needs one live replica per partition; a write needs a
// majority of the owner partition. With R=2 a single dead node
// therefore stops writes to its partition (majority of 2 is 2) while
// queries keep flowing — the deliberate, conservative default of
// majority quorums.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vsmartjoin/internal/metrics"
	"vsmartjoin/internal/multiset"
	"vsmartjoin/internal/shard"
)

// ErrUnavailable tags errors caused by unreachable or failing nodes —
// a partition with no live replica, a write that missed quorum. The
// HTTP layer maps it to 503 so load balancers can tell "cluster
// degraded" from "bad request".
var ErrUnavailable = errors.New("cluster unavailable")

// Defaults for the zero Config fields.
const (
	DefaultTimeout     = 5 * time.Second
	DefaultHedgeAfter  = 100 * time.Millisecond
	DefaultHealthEvery = 2 * time.Second
	DefaultRepairEvery = 5 * time.Second
)

// Config describes a cluster to New.
type Config struct {
	// Partitions is the topology: Partitions[p] lists the base URLs of
	// partition p's replicas (e.g. "http://10.0.0.7:8321"). A URL
	// without a scheme gets "http://". At least one partition with at
	// least one replica is required; partitions may have different
	// replica counts (each uses its own majority).
	Partitions [][]string

	// Timeout bounds every single node request (default DefaultTimeout).
	Timeout time.Duration

	// HedgeAfter is how long a query attempt may run before the same
	// query is hedged to the next replica of the partition (default
	// DefaultHedgeAfter). Negative disables hedging; failover on
	// outright errors happens regardless.
	HedgeAfter time.Duration

	// HealthEvery is the background /readyz polling cadence (default
	// DefaultHealthEvery; negative disables the loop — node health is
	// then tracked from live traffic and explicit CheckNow calls only).
	HealthEvery time.Duration

	// RepairEvery is the background anti-entropy cadence (default
	// DefaultRepairEvery; negative disables the loop — pending repair
	// ops are then only re-driven by explicit RepairNow calls).
	RepairEvery time.Duration

	// Client overrides the HTTP client. Nil builds a bounded one
	// (NewHTTPClient) sized to the node count.
	Client *http.Client
}

// node is one member: its base URL, its partition, and its latest
// observed health.
type node struct {
	addr      string
	partition int

	mu      sync.Mutex
	healthy bool // last contact succeeded (starts true: unknown ≈ worth trying)
	err     string
	checked time.Time
	ready   Readiness

	pending map[string]pendingOp // entity → op to re-drive; nil when empty
	seq     uint64               // stamps pendingOps so RepairNow only clears what it sent
}

// Readiness is one node's extended /readyz payload — the counters the
// router (and any load balancer) uses to detect stale replicas.
type Readiness struct {
	Ready      bool   `json:"ready"`
	Measure    string `json:"measure"`
	Generation uint64 `json:"generation"`
	Entities   int    `json:"entities"`
	Mutations  int64  `json:"mutations"`
	Shards     int    `json:"shards"`
}

// Cluster is the router. Construct with New; Close stops the
// background loops.
type Cluster struct {
	parts   [][]*node // [partition][replica]
	nodes   []*node   // flattened
	client  *http.Client
	timeout time.Duration
	hedge   time.Duration

	rr atomic.Uint64 // round-robin cursor for replica preference

	queries    atomic.Int64
	hedges     atomic.Int64
	hedgeWins  atomic.Int64 // hedged attempts whose answer won the race
	failovers  atomic.Int64
	writeFails atomic.Int64
	repairs    atomic.Int64

	// writeLatency times quorum writes to decision (majority acked or
	// quorum lost — stragglers keep running but no longer count);
	// queryLatency times scatter-gather queries end to end.
	writeLatency metrics.Histogram
	queryLatency metrics.Histogram

	stop   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
}

// Metrics is the full-resolution capture of the router's latency
// histograms, for the /metrics endpoint; Stats digests the same
// distributions for /stats.
type Metrics struct {
	Write metrics.Snapshot
	Query metrics.Snapshot
}

// Metrics captures the router's latency histograms.
func (c *Cluster) Metrics() Metrics {
	return Metrics{Write: c.writeLatency.Snapshot(), Query: c.queryLatency.Snapshot()}
}

// New validates the topology and starts the health and repair loops
// (unless disabled). It performs no synchronous network calls: a
// cluster whose nodes are still booting constructs fine and converges
// as probes and traffic discover them.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Partitions) == 0 {
		return nil, errors.New("cluster: no partitions")
	}
	c := &Cluster{
		timeout: cfg.Timeout,
		hedge:   cfg.HedgeAfter,
		stop:    make(chan struct{}),
	}
	if c.timeout == 0 {
		c.timeout = DefaultTimeout
	}
	if c.hedge == 0 {
		c.hedge = DefaultHedgeAfter
	}
	seen := make(map[string]bool)
	for p, replicas := range cfg.Partitions {
		if len(replicas) == 0 {
			return nil, fmt.Errorf("cluster: partition %d has no replicas", p)
		}
		row := make([]*node, 0, len(replicas))
		for _, addr := range replicas {
			addr = normalizeAddr(addr)
			if addr == "" {
				return nil, fmt.Errorf("cluster: partition %d has an empty node address", p)
			}
			if seen[addr] {
				return nil, fmt.Errorf("cluster: node %s listed twice", addr)
			}
			seen[addr] = true
			n := &node{addr: addr, partition: p, healthy: true}
			row = append(row, n)
			c.nodes = append(c.nodes, n)
		}
		c.parts = append(c.parts, row)
	}
	c.client = cfg.Client
	if c.client == nil {
		c.client = NewHTTPClient(c.timeout, len(c.nodes))
	}

	healthEvery := cfg.HealthEvery
	if healthEvery == 0 {
		healthEvery = DefaultHealthEvery
	}
	repairEvery := cfg.RepairEvery
	if repairEvery == 0 {
		repairEvery = DefaultRepairEvery
	}
	if healthEvery > 0 {
		c.wg.Add(1)
		go c.loop(healthEvery, func(ctx context.Context) { c.CheckNow(ctx) })
	}
	if repairEvery > 0 {
		c.wg.Add(1)
		go c.loop(repairEvery, func(ctx context.Context) { c.RepairNow(ctx) })
	}
	return c, nil
}

// loop runs fn every interval until Close.
func (c *Cluster) loop(every time.Duration, fn func(context.Context)) {
	defer c.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), c.timeout)
			fn(ctx)
			cancel()
		}
	}
}

// Close stops the background loops. It does not touch the nodes —
// they are independent daemons — and in-flight requests finish on
// their own timeouts. Close is idempotent.
func (c *Cluster) Close() {
	if c.closed.CompareAndSwap(false, true) {
		close(c.stop)
	}
	c.wg.Wait()
}

// Partitions reports the partition count.
func (c *Cluster) Partitions() int { return len(c.parts) }

// normalizeAddr trims whitespace and a trailing slash and defaults the
// scheme to http.
func normalizeAddr(addr string) string {
	addr = strings.TrimSpace(addr)
	addr = strings.TrimSuffix(addr, "/")
	if addr == "" {
		return ""
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return addr
}

// PartitionOf is the one write-routing function: the partition owning
// an entity name in an n-partition cluster. The name is FNV-64a hashed
// and folded through the same splitmix64 finalizer (shard.ShardOf)
// that routes entity IDs to shards inside one node, so cluster-level
// and node-level placement share their mixing function. Routing by
// name — the only identity that exists outside a node — is what lets
// any number of stateless routers agree on ownership, and what
// BuildClusterFiles relies on to carve a bulk-built corpus into
// per-node directories the router will look for entities in.
func PartitionOf(entity string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(entity))
	return shard.ShardOf(multiset.ID(h.Sum64()), n)
}

// owner returns the replica row of the partition owning entity.
func (c *Cluster) owner(entity string) []*node {
	return c.parts[PartitionOf(entity, len(c.parts))]
}

// markHealthy records the outcome of any node contact; health flows
// from live traffic as much as from the background probe, so a node
// that starts failing is deprioritized on the very next query.
func (n *node) markHealthy(err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.checked = time.Now()
	if err != nil {
		n.healthy = false
		n.err = err.Error()
		return
	}
	n.healthy = true
	n.err = ""
}

func (n *node) isHealthy() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.healthy
}
