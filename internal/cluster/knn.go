package cluster

// Scatter-gather k-nearest-neighbor queries. Each node answers /knn
// with its partition's exact local k best under the canonical
// (distance ascending, entity name ascending) order — non-overlap
// padding included, so a node list is its partition's true top k, not
// just the overlapping ones. Entity names are unique across the
// cluster (one owner partition per name), so that order is total
// globally and the merge is the classic argument: any entity of the
// global top k is necessarily inside its own partition's top k, hence
// concatenate, sort, truncate is exact.

import (
	"context"
	"fmt"
	"sort"
)

// Neighbor is one kNN result as the node daemons report it; the JSON
// field names are the daemon's wire names, so per-node responses
// decode straight into the merge.
type Neighbor struct {
	Entity   string  `json:"entity"`
	Distance float64 `json:"distance"`
}

// worseNeighbor is the canonical public kNN ordering (distance
// ascending, entity name ascending on ties), restated from the root
// package because the internal package cannot import it.
func worseNeighbor(a, b Neighbor) bool {
	if a.Distance != b.Distance {
		return a.Distance > b.Distance
	}
	return a.Entity > b.Entity
}

func sortNeighbors(ns []Neighbor) {
	sort.Slice(ns, func(i, j int) bool { return worseNeighbor(ns[j], ns[i]) })
}

// nodeKNNRequest is the daemon's /knn body. Elements has no omitempty:
// an explicitly empty map is a legal query (every entity is then a
// distance-1 neighbor) and must survive the round trip.
type nodeKNNRequest struct {
	Elements map[string]uint32 `json:"elements"`
	K        int               `json:"k"`
}

type nodeKNNResponse struct {
	Neighbors []Neighbor `json:"neighbors"`
}

// QueryKNN returns the k nearest entities across the whole cluster
// under distance 1 − similarity, nearest first — exactly the answer a
// single Index over the same entities gives, including the
// non-overlapping tail at distance 1.
func (c *Cluster) QueryKNN(ctx context.Context, elements map[string]uint32, k int) ([]Neighbor, error) {
	if k <= 0 {
		return nil, fmt.Errorf("cluster: knn k %d must be positive", k)
	}
	return c.scatterKNN(ctx, elements, k, "")
}

// QueryKNNEntity runs QueryKNN with an indexed entity as the query;
// the entity itself is excluded from its own neighbor list. The
// entity's multiset is fetched from its owner partition and scattered
// as an ordinary element query asking for k+1 per node — the one extra
// covers the slot the entity itself occupies in its owner's list.
func (c *Cluster) QueryKNNEntity(ctx context.Context, entity string, k int) ([]Neighbor, error) {
	if k <= 0 {
		return nil, fmt.Errorf("cluster: knn k %d must be positive", k)
	}
	elements, err := c.fetchEntity(ctx, entity)
	if err != nil {
		return nil, err
	}
	return c.scatterKNN(ctx, elements, k, entity)
}

// scatterKNN fans the element query out and merges. self, when
// non-empty, is dropped from the merge; every node is asked for one
// extra neighbor to cover the dropped slot.
func (c *Cluster) scatterKNN(ctx context.Context, elements map[string]uint32, k int, self string) ([]Neighbor, error) {
	ask := k
	if self != "" {
		ask++
	}
	if elements == nil {
		elements = map[string]uint32{}
	}
	req := nodeKNNRequest{Elements: elements, K: ask}
	per, err := scatterAll(c, ctx, func(ctx context.Context, n *node) ([]Neighbor, error) {
		var kr nodeKNNResponse
		err := c.postJSON(ctx, n, "/knn", req, &kr)
		//lint:vsmart-allow canonicalorder one partition's node-local reply; scatterKNN canonicalizes after merging partitions
		return kr.Neighbors, err
	})
	if err != nil {
		return nil, err
	}
	var out []Neighbor
	for _, ns := range per {
		for _, n := range ns {
			if n.Entity != self || self == "" {
				out = append(out, n)
			}
		}
	}
	sortNeighbors(out)
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}
