package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// NewHTTPClient builds the bounded client every daemon dialer should
// use instead of http.DefaultClient: an overall per-request timeout
// and a connection pool capped per host, so a burst of scatter-gather
// fan-outs reuses warm connections instead of opening one per request
// and a stuck node cannot pin goroutines forever. peers sizes the
// idle pool (how many distinct nodes the client talks to).
func NewHTTPClient(timeout time.Duration, peers int) *http.Client {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	if peers < 1 {
		peers = 1
	}
	return &http.Client{
		Timeout: timeout,
		Transport: &http.Transport{
			MaxIdleConns:          4 * peers,
			MaxIdleConnsPerHost:   4,
			MaxConnsPerHost:       64,
			IdleConnTimeout:       90 * time.Second,
			ResponseHeaderTimeout: timeout,
		},
	}
}

// errorBody is the daemon's JSON error payload.
type errorBody struct {
	Error string `json:"error"`
}

// statusError is a non-2xx node response, keeping the HTTP status so
// callers can distinguish semantic answers (a /entity 404) from node
// failures.
type statusError struct {
	code int
	msg  string
}

func (e statusError) Error() string { return e.msg }

// postJSON POSTs req as JSON to node n's path and decodes the JSON
// response into out (which may be nil). Non-2xx responses are errors
// carrying the daemon's error string. Every call updates the node's
// health from its outcome; 4xx responses are the CALLER's fault and do
// not mark the node unhealthy.
func (c *Cluster) postJSON(ctx context.Context, n *node, path string, req, out any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, n.addr+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	if rid := RequestID(ctx); rid != "" {
		httpReq.Header.Set(HeaderRequestID, rid)
	}
	return c.do(n, httpReq, out)
}

// getJSON GETs a node path and decodes the JSON response into out.
func (c *Cluster) getJSON(ctx context.Context, n *node, path string, out any) error {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, n.addr+path, nil)
	if err != nil {
		return err
	}
	if rid := RequestID(ctx); rid != "" {
		httpReq.Header.Set(HeaderRequestID, rid)
	}
	return c.do(n, httpReq, out)
}

// do runs one node request and applies the shared response handling.
func (c *Cluster) do(n *node, req *http.Request, out any) error {
	resp, err := c.client.Do(req)
	if err != nil {
		n.markHealthy(err)
		return fmt.Errorf("%s: %w", n.addr, err)
	}
	defer func() {
		// Drain so the pooled connection is reusable.
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	if resp.StatusCode/100 != 2 {
		var eb errorBody
		json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&eb)
		err := statusError{
			code: resp.StatusCode,
			msg:  fmt.Sprintf("%s %s: %s (%s)", n.addr, req.URL.Path, resp.Status, eb.Error),
		}
		if resp.StatusCode/100 == 5 {
			n.markHealthy(err)
		} else {
			// A 4xx is this router's request being wrong, not the node
			// being sick; record the contact as healthy.
			n.markHealthy(nil)
		}
		return err
	}
	n.markHealthy(nil)
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(out); err != nil {
		return fmt.Errorf("%s %s: decode response: %w", n.addr, req.URL.Path, err)
	}
	return nil
}

// CheckNow polls every node's /readyz once, in parallel, updating the
// health table the query planner prefers replicas by. The background
// health loop calls it on its cadence; tests and callers wanting a
// fresh view call it directly.
func (c *Cluster) CheckNow(ctx context.Context) {
	done := make(chan struct{}, len(c.nodes))
	for _, n := range c.nodes {
		go func(n *node) {
			defer func() { done <- struct{}{} }()
			var r Readiness
			err := c.getJSON(ctx, n, "/readyz", &r)
			if err == nil {
				n.mu.Lock()
				n.ready = r
				n.mu.Unlock()
			}
		}(n)
	}
	for range c.nodes {
		<-done
	}
}
