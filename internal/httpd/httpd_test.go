package httpd_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"vsmartjoin"
	"vsmartjoin/internal/cluster"
	"vsmartjoin/internal/httpd"
)

func newTestIndex(t *testing.T, dir string) *vsmartjoin.Index {
	t.Helper()
	ix, err := vsmartjoin.NewIndex(vsmartjoin.IndexOptions{Measure: "ruzicka", Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	return ix
}

func post(t *testing.T, c *http.Client, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := c.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && err != io.EOF {
		t.Fatalf("decode %s response: %v", url, err)
	}
	return resp, out
}

// promSample is one parsed exposition sample in document order.
type promSample struct {
	series string // name plus label block, as printed
	name   string
	value  float64
}

// parsePromText validates body against the text exposition grammar the
// scrape contract needs — HELP/TYPE preambles, known types, parseable
// sample values, histogram series only under histogram-typed families —
// and returns the samples keyed by series plus the family type table.
func parsePromText(t *testing.T, body string) (map[string]float64, map[string]string, []promSample) {
	t.Helper()
	types := make(map[string]string)
	helps := make(map[string]bool)
	samples := make(map[string]float64)
	var ordered []promSample
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			helps[name] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || (typ != "counter" && typ != "gauge" && typ != "histogram") {
				t.Fatalf("line %d: bad TYPE: %q", ln+1, line)
			}
			if !helps[name] {
				t.Fatalf("line %d: TYPE %s with no preceding HELP", ln+1, name)
			}
			types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment form: %q", ln+1, line)
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: sample without value: %q", ln+1, line)
		}
		series, valText := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valText, 64)
		if err != nil {
			t.Fatalf("line %d: bad sample value %q: %v", ln+1, valText, err)
		}
		name := series
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("line %d: unterminated label block: %q", ln+1, line)
			}
			name = name[:i]
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suffix); base != name && types[base] == "histogram" {
				family = base
			}
		}
		if types[family] == "" {
			t.Fatalf("line %d: sample %s outside any TYPE-declared family", ln+1, series)
		}
		if family != name && types[family] != "histogram" {
			t.Fatalf("line %d: histogram-suffixed sample under %s type %s", ln+1, family, types[family])
		}
		samples[series] = val
		ordered = append(ordered, promSample{series: series, name: name, value: val})
	}
	return samples, types, ordered
}

// checkHistogram asserts one family's bucket series are cumulative and
// consistent with _count.
func checkHistogram(t *testing.T, name string, samples map[string]float64, ordered []promSample) {
	t.Helper()
	last := -1.0
	infSeen := false
	for _, s := range ordered {
		if s.name != name+"_bucket" {
			continue
		}
		if s.value < last {
			t.Fatalf("%s: bucket %s value %v below predecessor %v (not cumulative)", name, s.series, s.value, last)
		}
		last = s.value
		if strings.Contains(s.series, `le="+Inf"`) {
			infSeen = true
		}
	}
	if !infSeen {
		t.Fatalf("%s: no le=\"+Inf\" bucket", name)
	}
	count, ok := samples[name+"_count"]
	if !ok || count != last {
		t.Fatalf("%s: _count %v != +Inf bucket %v", name, count, last)
	}
}

func TestNodeMetricsEndpoint(t *testing.T) {
	ix := newTestIndex(t, t.TempDir())
	ts := httptest.NewServer(httpd.NewNode(ix, httpd.Options{}))
	defer ts.Close()
	c := ts.Client()

	for i := 0; i < 4; i++ {
		body := fmt.Sprintf(`{"entity": "e%d", "elements": {"a": %d, "b": 1}}`, i, i+1)
		if resp, out := post(t, c, ts.URL+"/add", body); resp.StatusCode != http.StatusOK {
			t.Fatalf("add: %d %v", resp.StatusCode, out)
		}
	}
	// Query latency is sampled one query in eight, so run enough
	// distinct (uncacheable-as-repeat) queries that at least one is
	// guaranteed timed.
	for i := 0; i < 24; i++ {
		body := fmt.Sprintf(`{"elements": {"a": %d, "b": 1}, "threshold": 0.1}`, i+1)
		if resp, out := post(t, c, ts.URL+"/query", body); resp.StatusCode != http.StatusOK {
			t.Fatalf("query: %d %v", resp.StatusCode, out)
		}
	}

	resp, err := c.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("scrape content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples, types, ordered := parsePromText(t, string(raw))

	if samples["vsmart_entities"] != 4 {
		t.Fatalf("vsmart_entities = %v, want 4", samples["vsmart_entities"])
	}
	if samples["vsmart_queries_total"] < 24 {
		t.Fatalf("vsmart_queries_total = %v, want >= 24", samples["vsmart_queries_total"])
	}
	for _, h := range []string{
		"vsmart_query_latency_seconds",
		"vsmart_shard_merge_latency_seconds",
		"vsmart_wal_append_latency_seconds",
		"vsmart_wal_fsync_latency_seconds",
		"vsmart_wal_commit_wait_seconds",
	} {
		if types[h] != "histogram" {
			t.Fatalf("%s: type %q, want histogram", h, types[h])
		}
		checkHistogram(t, h, samples, ordered)
	}
	// 24 uncached queries at 1-in-8 sampling time at least 3; the 4
	// durable adds all land in the WAL append digest.
	if samples["vsmart_query_latency_seconds_count"] < 3 {
		t.Fatalf("query latency count = %v, want >= 3", samples["vsmart_query_latency_seconds_count"])
	}
	if samples["vsmart_wal_records_total"] < 4 {
		t.Fatalf("vsmart_wal_records_total = %v, want >= 4", samples["vsmart_wal_records_total"])
	}
	if samples["vsmart_wal_append_latency_seconds_count"] < 4 {
		t.Fatalf("wal append count = %v, want >= 4", samples["vsmart_wal_append_latency_seconds_count"])
	}
	if _, ok := samples["vsmart_http_rejected_total"]; !ok {
		t.Fatal("admission series missing from scrape")
	}
	// Planner decisions are on the scrape: one shard here, and a corpus
	// this small always plans brute.
	if v := samples[`vsmart_plan_shards{strategy="brute"}`]; v != 1 {
		t.Fatalf(`vsmart_plan_shards{strategy="brute"} = %v, want 1`, v)
	}
	if v := samples[`vsmart_plan_shards{strategy="prefix"}`]; v != 0 {
		t.Fatalf(`vsmart_plan_shards{strategy="prefix"} = %v, want 0`, v)
	}
	if v := samples[`vsmart_plan_strategy{strategy="auto"}`]; v != 1 {
		t.Fatalf(`vsmart_plan_strategy{strategy="auto"} = %v, want 1`, v)
	}
}

// TestKNNEndpoint covers /knn on a node and on a router over that node:
// elements mode, entity mode (self excluded), the empty query (legal on
// the kNN path only — every entity is then a distance-1 neighbor), and
// the request validation.
func TestKNNEndpoint(t *testing.T) {
	_, router, nodes := startCluster(t, 1)
	for i := 0; i < 4; i++ {
		body := fmt.Sprintf(`{"entity": "e%d", "elements": {"a": %d, "b": 1}}`, i, i+1)
		if resp, out := post(t, router.Client(), router.URL+"/add", body); resp.StatusCode != http.StatusOK {
			t.Fatalf("add: %d %v", resp.StatusCode, out)
		}
	}
	type knnResp struct {
		Neighbors []vsmartjoin.Neighbor `json:"neighbors"`
	}
	hc := router.Client()
	ask := func(base, body string) (int, knnResp) {
		t.Helper()
		resp, err := hc.Post(base+"/knn", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out knnResp
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode, out
	}
	for _, base := range []string{nodes[0].URL, router.URL} {
		// Elements mode: e0 holds exactly {a:1, b:1}, so it is the nearest.
		code, out := ask(base, `{"elements": {"a": 1, "b": 1}, "k": 2}`)
		if code != http.StatusOK || len(out.Neighbors) != 2 || out.Neighbors[0].Entity != "e0" || out.Neighbors[0].Distance != 0 {
			t.Fatalf("%s elements knn: %d %+v", base, code, out.Neighbors)
		}
		// Entity mode: the entity itself never appears in its own list.
		code, out = ask(base, `{"entity": "e0", "k": 10}`)
		if code != http.StatusOK || len(out.Neighbors) != 3 {
			t.Fatalf("%s entity knn: %d %+v", base, code, out.Neighbors)
		}
		for _, n := range out.Neighbors {
			if n.Entity == "e0" {
				t.Fatalf("%s entity knn returned the query entity: %+v", base, out.Neighbors)
			}
		}
		// Empty query: everything is a distance-1 neighbor, names ascending.
		code, out = ask(base, `{"k": 3}`)
		if code != http.StatusOK || len(out.Neighbors) != 3 || out.Neighbors[0] != (vsmartjoin.Neighbor{Entity: "e0", Distance: 1}) {
			t.Fatalf("%s empty knn: %d %+v", base, code, out.Neighbors)
		}
		// Validation: k is mandatory and positive; entity and elements are
		// mutually exclusive; unknown entities are the caller's error.
		for tag, body := range map[string]string{
			"no k":     `{"elements": {"a": 1}}`,
			"zero k":   `{"elements": {"a": 1}, "k": 0}`,
			"both":     `{"entity": "e0", "elements": {"a": 1}, "k": 2}`,
			"unknown":  `{"entity": "ghost", "k": 2}`,
			"bad json": `{"k": `,
		} {
			if code, _ := ask(base, body); code != http.StatusBadRequest {
				t.Fatalf("%s %s: %d, want 400", base, tag, code)
			}
		}
	}
}

// startCluster brings up n single-replica partitions plus a router.
func startCluster(t *testing.T, n int) (*vsmartjoin.Cluster, *httptest.Server, []*httptest.Server) {
	t.Helper()
	var nodes []*httptest.Server
	var topology [][]string
	for i := 0; i < n; i++ {
		ix := newTestIndex(t, "")
		ns := httptest.NewServer(httpd.NewNode(ix, httpd.Options{}))
		t.Cleanup(ns.Close)
		nodes = append(nodes, ns)
		topology = append(topology, []string{ns.URL})
	}
	c, err := vsmartjoin.NewCluster(vsmartjoin.ClusterOptions{
		Nodes:       topology,
		HedgeAfter:  -1,
		HealthEvery: -1,
		RepairEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	router := httptest.NewServer(httpd.NewRouter(c, httpd.Options{}))
	t.Cleanup(router.Close)
	return c, router, nodes
}

func TestRouterMetricsAndStats(t *testing.T) {
	_, router, _ := startCluster(t, 2)
	c := router.Client()

	for i := 0; i < 6; i++ {
		body := fmt.Sprintf(`{"entity": "e%d", "elements": {"a": %d, "b": 2}}`, i, i+1)
		if resp, out := post(t, c, router.URL+"/add", body); resp.StatusCode != http.StatusOK {
			t.Fatalf("add via router: %d %v", resp.StatusCode, out)
		}
	}
	if resp, out := post(t, c, router.URL+"/query", `{"elements": {"a": 2, "b": 2}, "threshold": 0.1}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("query via router: %d %v", resp.StatusCode, out)
	}

	resp, err := c.Get(router.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	samples, types, ordered := parsePromText(t, string(raw))
	if samples["vsmart_cluster_queries_total"] < 1 {
		t.Fatalf("cluster queries = %v", samples["vsmart_cluster_queries_total"])
	}
	for _, h := range []string{"vsmart_cluster_query_latency_seconds", "vsmart_cluster_write_latency_seconds"} {
		if types[h] != "histogram" {
			t.Fatalf("%s: type %q", h, types[h])
		}
		checkHistogram(t, h, samples, ordered)
	}
	if samples["vsmart_cluster_write_latency_seconds_count"] < 6 {
		t.Fatalf("write latency count = %v, want >= 6", samples["vsmart_cluster_write_latency_seconds_count"])
	}
	healthy := 0
	for series, v := range samples {
		if strings.HasPrefix(series, "vsmart_cluster_node_healthy{") && v == 1 {
			healthy++
		}
	}
	if healthy != 2 {
		t.Fatalf("healthy node series = %d, want 2", healthy)
	}

	// The /stats satellite: the router surfaces the full ClusterStats.
	resp, err = c.Get(router.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats vsmartjoin.ClusterStats
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Partitions != 2 || len(stats.Nodes) != 2 {
		t.Fatalf("stats topology: %+v", stats)
	}
	if stats.WriteLatency.Count < 6 || stats.WriteLatency.P99Ns <= 0 {
		t.Fatalf("stats write latency: %+v", stats.WriteLatency)
	}
	if stats.QueryLatency.Count < 1 {
		t.Fatalf("stats query latency: %+v", stats.QueryLatency)
	}
	if stats.RepairBacklog != 0 {
		t.Fatalf("repair backlog = %d against healthy nodes", stats.RepairBacklog)
	}
}

// TestAdmissionControl saturates a MaxInFlight=1 node by parking one
// request inside its handler (the body read blocks on an open pipe),
// then asserts the next request is shed with 429 + Retry-After while
// the probe and scrape endpoints keep answering.
func TestAdmissionControl(t *testing.T) {
	ix := newTestIndex(t, "")
	ts := httptest.NewServer(httpd.NewNode(ix, httpd.Options{MaxInFlight: 1}))
	defer ts.Close()
	c := ts.Client()

	pr, pw := io.Pipe()
	blocked := make(chan error, 1)
	go func() {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/add", pr)
		if err != nil {
			blocked <- err
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.Do(req)
		if err != nil {
			blocked <- err
			return
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			blocked <- fmt.Errorf("parked add finished %d", resp.StatusCode)
			return
		}
		blocked <- nil
	}()

	// Wait until the parked request holds the slot.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := c.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if strings.Contains(string(raw), "vsmart_http_in_flight_requests 1") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("parked request never acquired the limiter slot")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// At capacity: work is shed...
	resp, out := post(t, c, ts.URL+"/query", `{"elements": {"a": 1}, "threshold": 0.5}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("query at capacity: %d %v", resp.StatusCode, out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if out["error"] == "" {
		t.Fatalf("429 without JSON error body: %v", out)
	}
	// ...but probes and the scrape stay exempt.
	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		resp, err := c.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s during saturation: %d", path, resp.StatusCode)
		}
	}

	// Release the parked request and confirm it completes untouched.
	if _, err := pw.Write([]byte(`{"entity": "late", "elements": {"a": 1}}`)); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	if err := <-blocked; err != nil {
		t.Fatal(err)
	}

	// The shed request is on the scrape.
	resp2, err := c.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	samples, _, _ := parsePromText(t, string(raw))
	if samples["vsmart_http_rejected_total"] < 1 {
		t.Fatalf("rejected total = %v, want >= 1", samples["vsmart_http_rejected_total"])
	}
}

func TestRequestTracing(t *testing.T) {
	ix := newTestIndex(t, "")
	ts := httptest.NewServer(httpd.NewNode(ix, httpd.Options{}))
	defer ts.Close()
	c := ts.Client()

	if resp, out := post(t, c, ts.URL+"/add", `{"entity": "e1", "elements": {"a": 2}}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("add: %d %v", resp.StatusCode, out)
	}

	// Without an inbound ID the server assigns one and echoes it.
	resp, _ := post(t, c, ts.URL+"/query", `{"elements": {"a": 2}, "threshold": 0.5}`)
	if resp.Header.Get(cluster.HeaderRequestID) == "" {
		t.Fatal("no request ID echoed on the response")
	}

	// An inbound ID is kept, echoed, and lands in the debug block with
	// plausible stage timings.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/query",
		bytes.NewReader([]byte(`{"elements": {"a": 2}, "threshold": 0.5, "debug": true}`)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.HeaderRequestID, "trace-me-42")
	resp2, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if got := resp2.Header.Get(cluster.HeaderRequestID); got != "trace-me-42" {
		t.Fatalf("inbound request ID not echoed: %q", got)
	}
	var out struct {
		Matches []vsmartjoin.Match `json:"matches"`
		Debug   struct {
			RequestID string `json:"request_id"`
			DecodeNs  int64  `json:"decode_ns"`
			QueryNs   int64  `json:"query_ns"`
			TotalNs   int64  `json:"total_ns"`
		} `json:"debug"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Matches) != 1 || out.Matches[0].Entity != "e1" {
		t.Fatalf("debug query matches: %+v", out.Matches)
	}
	d := out.Debug
	if d.RequestID != "trace-me-42" {
		t.Fatalf("debug request_id = %q", d.RequestID)
	}
	if d.DecodeNs < 0 || d.QueryNs <= 0 || d.TotalNs < d.QueryNs {
		t.Fatalf("implausible stage timings: %+v", d)
	}

	// A plain query carries no debug block.
	resp3, plain := post(t, c, ts.URL+"/query", `{"elements": {"a": 2}, "threshold": 0.5}`)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("plain query: %d", resp3.StatusCode)
	}
	if _, ok := plain["debug"]; ok {
		t.Fatal("debug block present without debug: true")
	}
}

// TestRouterPropagatesRequestID pins the router→node trace contract:
// the ID a client sends to the router arrives on the node sub-requests.
func TestRouterPropagatesRequestID(t *testing.T) {
	ix := newTestIndex(t, "")
	seen := make(chan string, 8)
	node := httpd.NewNode(ix, httpd.Options{})
	ns := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/query" {
			seen <- r.Header.Get(cluster.HeaderRequestID)
		}
		node.ServeHTTP(w, r)
	}))
	defer ns.Close()
	c, err := vsmartjoin.NewCluster(vsmartjoin.ClusterOptions{
		Nodes:       [][]string{{ns.URL}},
		HedgeAfter:  -1,
		HealthEvery: -1,
		RepairEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	router := httptest.NewServer(httpd.NewRouter(c, httpd.Options{}))
	defer router.Close()

	req, err := http.NewRequest(http.MethodPost, router.URL+"/query",
		bytes.NewReader([]byte(`{"elements": {"a": 1}, "threshold": 0.5}`)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.HeaderRequestID, "hop-hop-7")
	resp, err := router.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query via router: %d", resp.StatusCode)
	}
	select {
	case rid := <-seen:
		if rid != "hop-hop-7" {
			t.Fatalf("node saw request ID %q, want hop-hop-7", rid)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("node never saw the scatter query")
	}
}
