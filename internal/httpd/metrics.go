package httpd

// Admission control, request tracing, and the hand-rolled Prometheus
// text exposition behind GET /metrics. No client library: the v0.0.4
// text format is a few Fprintf shapes, and internal/metrics snapshots
// carry everything a scrape needs.

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"vsmartjoin/internal/cluster"
	"vsmartjoin/internal/metrics"
)

// DefaultMaxInFlight is the default bound on concurrently served
// requests. It caps memory (each in-flight request may hold a decoded
// body up to the 8MB cap) and keeps latency bounded under overload:
// excess requests are shed immediately with 429 instead of queueing
// into a latency collapse.
const DefaultMaxInFlight = 256

// Options configures the shared behavior of both server modes.
type Options struct {
	// MaxInFlight bounds concurrently served requests; a request beyond
	// the bound is answered 429 with a Retry-After header, never queued.
	// Probes (/healthz, /readyz) and /metrics are exempt so monitoring
	// keeps working during the overload it exists to observe. 0 means
	// DefaultMaxInFlight; negative disables the limiter.
	MaxInFlight int
}

// limiter is the bounded in-flight admission gate. Acquisition is a
// non-blocking channel send: the channel's buffer IS the capacity, so
// there is no counter to reconcile and no lock on the request path.
type limiter struct {
	slots    chan struct{} // nil when unlimited
	rejected metrics.Counter
}

func newLimiter(maxInFlight int) *limiter {
	if maxInFlight == 0 {
		maxInFlight = DefaultMaxInFlight
	}
	if maxInFlight < 0 {
		return &limiter{}
	}
	return &limiter{slots: make(chan struct{}, maxInFlight)}
}

// acquire claims a slot, reporting false (and counting the rejection)
// when the server is at capacity.
func (l *limiter) acquire() bool {
	if l.slots == nil {
		return true
	}
	select {
	case l.slots <- struct{}{}:
		return true
	default:
		l.rejected.Inc()
		return false
	}
}

func (l *limiter) release() {
	if l.slots != nil {
		<-l.slots
	}
}

func (l *limiter) inFlight() int { return len(l.slots) }

// Request IDs: unique within a process run and cheap — a start-time
// epoch distinguishes processes, an atomic sequence distinguishes
// requests. A router-assigned ID arriving on the trace header is kept,
// so node-side records correlate with the router's.
var (
	reqEpoch = time.Now().UnixNano()
	reqSeq   atomic.Uint64
)

func nextRequestID() string {
	return strconv.FormatInt(reqEpoch, 36) + "-" + strconv.FormatUint(reqSeq.Add(1), 36)
}

// exemptPath reports the endpoints admission control never sheds:
// liveness and readiness probes (shedding them would turn overload
// into flapping) and the metrics scrape (which must observe overload).
func exemptPath(path string) bool {
	return path == "/healthz" || path == "/readyz" || path == "/metrics"
}

// wrap is the shared middleware of both modes: stamp a request ID
// (keeping an inbound one), echo it on the response, and apply
// admission control.
func wrap(mux http.Handler, lim *limiter) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := r.Header.Get(cluster.HeaderRequestID)
		if rid == "" {
			rid = nextRequestID()
			r.Header.Set(cluster.HeaderRequestID, rid)
		}
		w.Header().Set(cluster.HeaderRequestID, rid)
		if !exemptPath(r.URL.Path) {
			if !lim.acquire() {
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusTooManyRequests, "server at capacity (%d requests in flight)", lim.inFlight())
				return
			}
			defer lim.release()
		}
		mux.ServeHTTP(w, r)
	})
}

// ---- Prometheus text exposition (v0.0.4) ----

// promContentType is the scrape content type Prometheus expects.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

type promWriter struct{ w io.Writer }

// header emits the HELP/TYPE preamble of one metric family.
func (p promWriter) header(name, typ, help string) {
	fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p promWriter) counter(name, help string, v float64) {
	p.header(name, "counter", help)
	fmt.Fprintf(p.w, "%s %s\n", name, formatFloat(v))
}

func (p promWriter) gauge(name, help string, v float64) {
	p.header(name, "gauge", help)
	fmt.Fprintf(p.w, "%s %s\n", name, formatFloat(v))
}

// labeled emits one sample with label pairs (no preamble; call header
// once before a labeled series).
func (p promWriter) labeled(name string, labels [][2]string, v float64) {
	fmt.Fprintf(p.w, "%s{", name)
	for i, kv := range labels {
		if i > 0 {
			io.WriteString(p.w, ",")
		}
		fmt.Fprintf(p.w, "%s=%q", kv[0], escapeLabel(kv[1]))
	}
	fmt.Fprintf(p.w, "} %s\n", formatFloat(v))
}

// histogram emits a snapshot as cumulative le-buckets in seconds —
// Prometheus histogram convention — plus _sum and _count.
func (p promWriter) histogram(name, help string, s metrics.Snapshot) {
	p.header(name, "histogram", help)
	var cum uint64
	for i := 0; i < metrics.NumBuckets; i++ {
		cum += s.Buckets[i]
		le := "+Inf"
		if b := metrics.BucketBound(i); !math.IsInf(b, 1) {
			le = formatFloat(b / 1e9)
		}
		fmt.Fprintf(p.w, "%s_bucket{le=%q} %d\n", name, le, cum)
	}
	fmt.Fprintf(p.w, "%s_sum %s\n", name, formatFloat(float64(s.Sum)/1e9))
	fmt.Fprintf(p.w, "%s_count %d\n", name, s.Count)
}

// admission emits the limiter's own series — how a scrape sees the
// overload the limiter is shedding.
func (p promWriter) admission(lim *limiter) {
	p.gauge("vsmart_http_in_flight_requests", "Requests currently being served.", float64(lim.inFlight()))
	p.counter("vsmart_http_rejected_total", "Requests shed with 429 by admission control.", float64(lim.rejected.Load()))
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format
// (backslash, quote, newline). %q adds the surrounding quotes and
// escapes quote/backslash already, but turns \n into the two-character
// sequence Go-style — which happens to match Prometheus's convention —
// so only the raw newline needs normalizing first.
func escapeLabel(v string) string {
	return strings.ReplaceAll(v, "\n", " ")
}
