// Package httpd is the one HTTP server skeleton both vsmartjoind modes
// share: NewNode serves a single *vsmartjoin.Index (a cluster
// partition replica, or a standalone daemon — they are the same
// thing), NewRouter serves a *vsmartjoin.Cluster. The two handlers
// expose the same core surface (/add, /remove, /query, /snapshot,
// /healthz, /readyz, /stats) with identical request validation and
// error payloads, so a load balancer or client cannot tell a router
// from a node on the query path; nodes additionally expose the
// endpoints the router itself depends on (/bulk batched mutations for
// anti-entropy, /entity for cross-partition entity queries).
//
// Probing is split in two: GET /healthz is liveness — any 200 means
// the process is serving — while GET /readyz is readiness and carries
// the state counters (generation, entity count, mutation counter,
// shard count) that let a router or load balancer detect a stale or
// lagging replica, not just a dead one.
package httpd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"vsmartjoin"
	"vsmartjoin/internal/cluster"
)

// querier is the query surface both backends share; handleQuery is
// written against it so node and router mode validate and answer
// /query identically. The context carries the request ID (and, for the
// router backend, cancellation) down to the backend.
type querier interface {
	QueryThreshold(ctx context.Context, counts map[string]uint32, t float64) ([]vsmartjoin.Match, error)
	QueryTopK(ctx context.Context, counts map[string]uint32, k int) ([]vsmartjoin.Match, error)
	QueryEntity(ctx context.Context, entity string, t float64) ([]vsmartjoin.Match, error)
}

// NewNode wires an index to the node HTTP API.
func NewNode(ix *vsmartjoin.Index, opts Options) http.Handler {
	s := &nodeServer{ix: ix, lim: newLimiter(opts.MaxInFlight)}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /add", s.handleAdd)
	mux.HandleFunc("POST /remove", s.handleRemove)
	mux.HandleFunc("POST /query", func(w http.ResponseWriter, r *http.Request) {
		handleQuery(w, r, indexQuerier{s.ix})
	})
	mux.HandleFunc("POST /knn", func(w http.ResponseWriter, r *http.Request) {
		handleKNN(w, r, indexKNNQuerier{s.ix})
	})
	mux.HandleFunc("POST /snapshot", s.handleSnapshot)
	mux.HandleFunc("POST /bulk", s.handleBulk)
	mux.HandleFunc("GET /entity", s.handleEntity)
	mux.HandleFunc("GET /healthz", handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.ix.Stats())
	})
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return wrap(mux, s.lim)
}

// NewRouter wires a cluster client to the router HTTP API — the same
// core surface a node serves, minus the node-only endpoints, so
// clients built against one daemon talk to a cluster unchanged.
func NewRouter(c *vsmartjoin.Cluster, opts Options) http.Handler {
	s := &routerServer{c: c, lim: newLimiter(opts.MaxInFlight)}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /add", s.handleAdd)
	mux.HandleFunc("POST /remove", s.handleRemove)
	mux.HandleFunc("POST /bulk", s.handleBulk)
	mux.HandleFunc("POST /query", func(w http.ResponseWriter, r *http.Request) {
		handleQuery(w, r, clusterQuerier{s.c})
	})
	mux.HandleFunc("POST /knn", func(w http.ResponseWriter, r *http.Request) {
		handleKNN(w, r, clusterKNNQuerier{s.c})
	})
	mux.HandleFunc("POST /snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /healthz", handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.c.Stats())
	})
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return wrap(mux, s.lim)
}

// ---- shared plumbing ----

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// decodeBody parses exactly one JSON value into v with unknown fields
// rejected. Every failure is answered with a JSON error payload: 400
// for malformed, unknown-field, or trailing-garbage bodies, 413 when
// the body exceeds the size cap.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body over %d bytes", tooBig.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	// A well-formed first value followed by more input is a malformed
	// request, not something to silently ignore.
	if dec.More() {
		writeError(w, http.StatusBadRequest, "trailing data after request body")
		return false
	}
	return true
}

// handleHealthz is the liveness probe, identical for both modes: the
// handler is only registered once startup (recovery, preload, topology
// validation) finished, so any answer at all means the process is
// serving. State belongs on /readyz.
func handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"serving": true})
}

type addRequest struct {
	Entity   string            `json:"entity"`
	Elements map[string]uint32 `json:"elements"`
}

// validateAdd applies the shared add rules: an entity name, and at
// least one nonzero count — Index.Add drops zeros, and an all-zero
// body would index a permanently unmatchable empty entity.
func validateAdd(w http.ResponseWriter, req addRequest) bool {
	if req.Entity == "" {
		writeError(w, http.StatusBadRequest, "missing entity")
		return false
	}
	for _, c := range req.Elements {
		if c > 0 {
			return true
		}
	}
	writeError(w, http.StatusBadRequest, "missing elements")
	return false
}

type removeRequest struct {
	Entity string `json:"entity"`
}

type queryRequest struct {
	// Exactly one of Entity (an indexed entity name) or Elements (an
	// ad-hoc multiset) names the query.
	Entity   string            `json:"entity"`
	Elements map[string]uint32 `json:"elements"`
	// Exactly one of Threshold or TopK selects the query kind. Threshold
	// is a pointer so that an explicit 0 ("any overlap") is distinguishable
	// from absent.
	Threshold *float64 `json:"threshold"`
	TopK      int      `json:"topk"`
	// Debug asks for a trace annotation block (request ID, per-stage
	// timings) alongside the matches.
	Debug bool `json:"debug"`
}

// queryDebug is the optional trace block a Debug query gets back: the
// request ID (also on the response header, and propagated to every
// node sub-request in router mode) and per-stage wall times.
type queryDebug struct {
	RequestID string `json:"request_id"`
	DecodeNs  int64  `json:"decode_ns"`
	QueryNs   int64  `json:"query_ns"`
	TotalNs   int64  `json:"total_ns"`
}

// handleQuery validates and dispatches a /query body against either
// backend. Backend errors map to 400 (the request named an unknown
// entity, an out-of-range threshold, ...) except cluster-unavailable
// ones, which are 503: the request was fine, the deployment is not.
func handleQuery(w http.ResponseWriter, r *http.Request, q querier) {
	start := time.Now()
	var req queryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	decoded := time.Now()
	if (req.Entity == "") == (len(req.Elements) == 0) {
		writeError(w, http.StatusBadRequest, "name the query with exactly one of entity or elements")
		return
	}
	if (req.Threshold == nil) == (req.TopK == 0) {
		writeError(w, http.StatusBadRequest, "select exactly one of threshold or topk")
		return
	}
	// The wrap middleware guaranteed the header; carrying the ID in the
	// context is what makes the router's node sub-requests traceable.
	rid := r.Header.Get(cluster.HeaderRequestID)
	ctx := cluster.WithRequestID(r.Context(), rid)
	var matches []vsmartjoin.Match
	var err error
	switch {
	case req.TopK < 0:
		writeError(w, http.StatusBadRequest, "topk must be positive")
		return
	case req.TopK > 0 && req.Entity != "":
		// QueryEntity has no top-k form; reject rather than guess.
		writeError(w, http.StatusBadRequest, "topk queries take elements, not an entity")
		return
	case req.TopK > 0:
		matches, err = q.QueryTopK(ctx, req.Elements, req.TopK)
	case req.Entity != "":
		matches, err = q.QueryEntity(ctx, req.Entity, *req.Threshold)
	default:
		matches, err = q.QueryThreshold(ctx, req.Elements, *req.Threshold)
	}
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, vsmartjoin.ErrClusterUnavailable) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "%v", err)
		return
	}
	if matches == nil {
		matches = []vsmartjoin.Match{}
	}
	resp := map[string]any{"matches": matches}
	if req.Debug {
		queried := time.Now()
		resp["debug"] = queryDebug{
			RequestID: rid,
			DecodeNs:  decoded.Sub(start).Nanoseconds(),
			QueryNs:   queried.Sub(decoded).Nanoseconds(),
			TotalNs:   queried.Sub(start).Nanoseconds(),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// knnQuerier is the kNN surface both backends share, mirroring querier.
type knnQuerier interface {
	QueryKNN(ctx context.Context, counts map[string]uint32, k int) ([]vsmartjoin.Neighbor, error)
	QueryKNNEntity(ctx context.Context, entity string, k int) ([]vsmartjoin.Neighbor, error)
}

type knnRequest struct {
	// At most one of Entity (an indexed entity name) or Elements (an
	// ad-hoc multiset) names the query. Unlike /query, both may be absent:
	// an empty multiset is a legal kNN query — every entity is then a
	// distance-1 neighbor and the answer is the k smallest names.
	Entity   string            `json:"entity"`
	Elements map[string]uint32 `json:"elements"`
	K        int               `json:"k"`
}

// handleKNN validates and dispatches a /knn body against either
// backend, with handleQuery's error mapping (400 for bad requests and
// unknown entities, 503 when the cluster cannot answer).
func handleKNN(w http.ResponseWriter, r *http.Request, q knnQuerier) {
	var req knnRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Entity != "" && len(req.Elements) > 0 {
		writeError(w, http.StatusBadRequest, "name the query with at most one of entity or elements")
		return
	}
	if req.K <= 0 {
		writeError(w, http.StatusBadRequest, "k must be positive")
		return
	}
	ctx := cluster.WithRequestID(r.Context(), r.Header.Get(cluster.HeaderRequestID))
	var neighbors []vsmartjoin.Neighbor
	var err error
	if req.Entity != "" {
		neighbors, err = q.QueryKNNEntity(ctx, req.Entity, req.K)
	} else {
		neighbors, err = q.QueryKNN(ctx, req.Elements, req.K)
	}
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, vsmartjoin.ErrClusterUnavailable) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "%v", err)
		return
	}
	if neighbors == nil {
		neighbors = []vsmartjoin.Neighbor{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"neighbors": neighbors})
}

// snapshotBody enforces "optional, but well-formed if present" for the
// /snapshot endpoints.
func snapshotBody(w http.ResponseWriter, r *http.Request) bool {
	var req struct{}
	return r.ContentLength == 0 || decodeBody(w, r, &req)
}

// ---- node mode ----

type nodeServer struct {
	ix  *vsmartjoin.Index
	lim *limiter
}

// indexQuerier adapts Index to the shared querier surface (its
// QueryTopK cannot fail, the interface's can; the index is local, so
// the context's cancellation has nothing to reel in and only its trace
// values matter — which the handler reads itself).
type indexQuerier struct{ ix *vsmartjoin.Index }

func (q indexQuerier) QueryThreshold(ctx context.Context, counts map[string]uint32, t float64) ([]vsmartjoin.Match, error) {
	return q.ix.QueryThreshold(counts, t)
}

func (q indexQuerier) QueryTopK(ctx context.Context, counts map[string]uint32, k int) ([]vsmartjoin.Match, error) {
	return q.ix.QueryTopK(counts, k), nil
}

func (q indexQuerier) QueryEntity(ctx context.Context, entity string, t float64) ([]vsmartjoin.Match, error) {
	return q.ix.QueryEntity(entity, t)
}

// indexKNNQuerier adapts Index to the shared kNN surface, like
// indexQuerier (Index.QueryKNN cannot fail, the interface's can).
type indexKNNQuerier struct{ ix *vsmartjoin.Index }

func (q indexKNNQuerier) QueryKNN(ctx context.Context, counts map[string]uint32, k int) ([]vsmartjoin.Neighbor, error) {
	return q.ix.QueryKNN(counts, k), nil
}

func (q indexKNNQuerier) QueryKNNEntity(ctx context.Context, entity string, k int) ([]vsmartjoin.Neighbor, error) {
	return q.ix.QueryKNNEntity(entity, k)
}

// handleMetrics serves the node's Prometheus scrape: index size and
// funnel counters, cache traffic, and the latency histograms of every
// layer under this process (query, shard merge, WAL append/fsync).
func (s *nodeServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.ix.Stats()
	m := s.ix.Metrics()
	w.Header().Set("Content-Type", promContentType)
	p := promWriter{w}
	p.gauge("vsmart_entities", "Live indexed entities.", float64(st.Entities))
	p.gauge("vsmart_index_generation", "Highest write-ahead log generation across shards (0 = volatile).", float64(st.Generation))
	p.gauge("vsmart_index_shards", "Hash-partitioned shards in this index.", float64(st.Shards))
	p.counter("vsmart_adds_total", "Entity upserts applied.", float64(st.Adds))
	p.counter("vsmart_removes_total", "Entity removals applied.", float64(st.Removes))
	p.counter("vsmart_queries_total", "Queries answered by the inner index (cache hits excluded).", float64(st.Queries))
	p.counter("vsmart_cache_hits_total", "Result-cache hits.", float64(st.CacheHits))
	p.counter("vsmart_cache_misses_total", "Result-cache misses.", float64(st.CacheMisses))
	p.gauge("vsmart_cache_entries", "Cached query answers resident.", float64(st.CacheEntries))
	p.counter("vsmart_probes_total", "Posting-list probes.", float64(st.Probes))
	p.counter("vsmart_candidates_total", "Candidates surviving the probe.", float64(st.Candidates))
	p.counter("vsmart_length_pruned_total", "Candidates eliminated by length bounds.", float64(st.LengthPruned))
	p.counter("vsmart_verified_total", "Candidates fully verified.", float64(st.Verified))
	p.counter("vsmart_results_total", "Matches returned.", float64(st.Results))
	p.histogram("vsmart_query_latency_seconds", "Uncached query latency (probe, verify, resolve).", m.Query)
	p.histogram("vsmart_shard_merge_latency_seconds", "Cross-shard merge time of multi-shard fan-outs.", m.Merge)
	p.histogram("vsmart_wal_append_latency_seconds", "Write-ahead log append stalls.", m.WALAppend)
	p.histogram("vsmart_wal_fsync_latency_seconds", "Write-ahead log fsync stalls.", m.WALFsync)
	p.histogram("vsmart_wal_commit_wait_seconds", "Wait for the group commit covering an acknowledged mutation (DurabilitySync only).", m.WALCommitWait)
	p.counter("vsmart_wal_records_total", "Write-ahead log records appended across shards.", float64(m.WALRecords))
	p.counter("vsmart_wal_fsyncs_total", "Write-ahead log fsyncs issued across shards; the ratio to records is the amortized durability cost.", float64(m.WALFsyncs))
	p.gauge("vsmart_mutation_queue_depth", "AddAsync mutations queued behind the async appliers.", float64(st.MutationQueueDepth))
	// Planner decisions: shards per chosen strategy, all strategies
	// emitted (zeros included) so dashboards see transitions, plus the
	// configured override as an info-style gauge.
	planned := map[string]int{}
	for _, pl := range st.Plans {
		planned[pl]++
	}
	p.header("vsmart_plan_shards", "gauge", "Shards currently planned onto each query strategy.")
	for _, name := range []string{"prefix", "lsh", "brute"} {
		p.labeled("vsmart_plan_shards", [][2]string{{"strategy", name}}, float64(planned[name]))
	}
	p.header("vsmart_plan_strategy", "gauge", "Configured strategy override (1 on the active row; auto means planner-driven).")
	p.labeled("vsmart_plan_strategy", [][2]string{{"strategy", st.Strategy}}, 1)
	p.admission(s.lim)
}

func (s *nodeServer) handleAdd(w http.ResponseWriter, r *http.Request) {
	var req addRequest
	if !decodeBody(w, r, &req) || !validateAdd(w, req) {
		return
	}
	if err := s.ix.Add(req.Entity, req.Elements); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"entities": s.ix.Len()})
}

func (s *nodeServer) handleRemove(w http.ResponseWriter, r *http.Request) {
	var req removeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Entity == "" {
		writeError(w, http.StatusBadRequest, "missing entity")
		return
	}
	removed, err := s.ix.Remove(req.Entity)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"removed": removed, "entities": s.ix.Len()})
}

// handleSnapshot forces a snapshot + log truncation on a durable index;
// on a volatile one it reports 409 (there is nothing to snapshot to).
func (s *nodeServer) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if !snapshotBody(w, r) {
		return
	}
	if err := s.ix.Snapshot(); err != nil {
		// No durability dir (or a closed index) is the caller's state
		// conflict; anything else is a real server-side persistence
		// failure and must not hide among the 4xx.
		status := http.StatusInternalServerError
		if errors.Is(err, vsmartjoin.ErrNotDurable) || errors.Is(err, vsmartjoin.ErrIndexClosed) {
			status = http.StatusConflict
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"snapshot": true, "entities": s.ix.Len()})
}

// validateBulk checks every op of a bulk batch before anything is
// applied, so a malformed op cannot leave a half-applied 400. Shared
// by the node and router bulk endpoints.
func validateBulk(w http.ResponseWriter, req cluster.BulkRequest) bool {
	for i, op := range req.Ops {
		switch op.Op {
		case "add":
			if op.Entity == "" || !hasMass(op.Elements) {
				writeError(w, http.StatusBadRequest, "op %d: add needs an entity and nonzero elements", i)
				return false
			}
		case "remove":
			if op.Entity == "" {
				writeError(w, http.StatusBadRequest, "op %d: remove needs an entity", i)
				return false
			}
		default:
			writeError(w, http.StatusBadRequest, "op %d: unknown op %q", i, op.Op)
			return false
		}
	}
	return true
}

// handleBulk applies a batch of mutations in order — the sanctioned
// batched-ingest path (and the endpoint the router's anti-entropy pass
// re-drives missed writes through). The wire types live in
// internal/cluster (the sender), so the two sides share one schema.
// Consecutive same-kind ops are applied through Index.AddBatch /
// RemoveBatch, so an all-add ingest batch costs one WAL append and one
// lock acquisition per touched shard — and under DurabilitySync one
// group-committed fsync — instead of one per mutation. An internal
// failure mid-batch reports how many ops preceded the failing run
// (the failing run itself may be partially applied at shard
// granularity; re-driving the batch is safe, every op is an
// idempotent upsert or remove).
func (s *nodeServer) handleBulk(w http.ResponseWriter, r *http.Request) {
	var req cluster.BulkRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if !validateBulk(w, req) {
		return
	}
	applied := 0
	for lo := 0; lo < len(req.Ops); {
		hi := lo + 1
		for hi < len(req.Ops) && req.Ops[hi].Op == req.Ops[lo].Op {
			hi++
		}
		run := req.Ops[lo:hi]
		var err error
		if run[0].Op == "add" {
			entries := make([]vsmartjoin.BatchEntry, len(run))
			for i, op := range run {
				entries[i] = vsmartjoin.BatchEntry{Entity: op.Entity, Elements: op.Elements}
			}
			err = s.ix.AddBatch(entries)
		} else {
			names := make([]string, len(run))
			for i, op := range run {
				names[i] = op.Entity
			}
			_, err = s.ix.RemoveBatch(names)
		}
		if err != nil {
			writeError(w, http.StatusInternalServerError, "after %d applied ops: %v", applied, err)
			return
		}
		applied += len(run)
		lo = hi
	}
	writeJSON(w, http.StatusOK, map[string]any{"applied": applied, "entities": s.ix.Len()})
}

// handleEntity reports an indexed entity's current element
// multiplicities — what the router needs to scatter an entity-relative
// query to the partitions that do NOT hold the entity.
func (s *nodeServer) handleEntity(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		writeError(w, http.StatusBadRequest, "missing name parameter")
		return
	}
	counts, ok := s.ix.Elements(name)
	if !ok {
		writeError(w, http.StatusNotFound, "entity %q not indexed", name)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"entity": name, "elements": counts})
}

// handleReadyz is the node readiness probe: 200 once serving (a node
// that finished recovery is ready), with the counters a router or load
// balancer compares across replicas to detect a stale one.
func (s *nodeServer) handleReadyz(w http.ResponseWriter, r *http.Request) {
	st := s.ix.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"ready":      true,
		"measure":    st.Measure,
		"generation": st.Generation,
		"entities":   st.Entities,
		"mutations":  st.Adds + st.Removes,
		"shards":     st.Shards,
	})
}

func hasMass(elements map[string]uint32) bool {
	for _, c := range elements {
		if c > 0 {
			return true
		}
	}
	return false
}

// ---- router mode ----

type routerServer struct {
	c   *vsmartjoin.Cluster
	lim *limiter
}

// clusterQuerier adapts the cluster client's context-taking variants
// to the shared querier surface.
type clusterQuerier struct{ c *vsmartjoin.Cluster }

func (q clusterQuerier) QueryThreshold(ctx context.Context, counts map[string]uint32, t float64) ([]vsmartjoin.Match, error) {
	return q.c.QueryThresholdContext(ctx, counts, t)
}

func (q clusterQuerier) QueryTopK(ctx context.Context, counts map[string]uint32, k int) ([]vsmartjoin.Match, error) {
	return q.c.QueryTopKContext(ctx, counts, k)
}

func (q clusterQuerier) QueryEntity(ctx context.Context, entity string, t float64) ([]vsmartjoin.Match, error) {
	return q.c.QueryEntityContext(ctx, entity, t)
}

// clusterKNNQuerier adapts the cluster client's context-taking kNN
// variants to the shared surface.
type clusterKNNQuerier struct{ c *vsmartjoin.Cluster }

func (q clusterKNNQuerier) QueryKNN(ctx context.Context, counts map[string]uint32, k int) ([]vsmartjoin.Neighbor, error) {
	return q.c.QueryKNNContext(ctx, counts, k)
}

func (q clusterKNNQuerier) QueryKNNEntity(ctx context.Context, entity string, k int) ([]vsmartjoin.Neighbor, error) {
	return q.c.QueryKNNEntityContext(ctx, entity, k)
}

// traceCtx is the write-path counterpart of handleQuery's context
// plumbing: node sub-requests carry the router-assigned request ID.
func traceCtx(r *http.Request) context.Context {
	return cluster.WithRequestID(r.Context(), r.Header.Get(cluster.HeaderRequestID))
}

// handleMetrics serves the router's Prometheus scrape: scatter-gather
// and quorum-write latency, hedge/failover/repair counters, and the
// per-node health table.
func (s *routerServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.c.Stats()
	m := s.c.Metrics()
	w.Header().Set("Content-Type", promContentType)
	p := promWriter{w}
	p.gauge("vsmart_cluster_partitions", "Partitions in the cluster topology.", float64(st.Partitions))
	p.counter("vsmart_cluster_queries_total", "Scatter-gather queries routed.", float64(st.Queries))
	p.counter("vsmart_cluster_hedges_total", "Hedged query attempts fired.", float64(st.Hedges))
	p.counter("vsmart_cluster_hedge_wins_total", "Hedged attempts whose answer won the race.", float64(st.HedgeWins))
	p.counter("vsmart_cluster_failovers_total", "Query attempts failed over to another replica.", float64(st.Failovers))
	p.counter("vsmart_cluster_write_fails_total", "Writes that missed their quorum.", float64(st.WriteFails))
	p.counter("vsmart_cluster_repairs_total", "Missed writes re-driven by anti-entropy.", float64(st.Repairs))
	p.gauge("vsmart_cluster_repair_backlog", "Missed writes currently queued for anti-entropy.", float64(st.RepairBacklog))
	p.histogram("vsmart_cluster_query_latency_seconds", "Scatter-gather query latency end to end.", m.Query)
	p.histogram("vsmart_cluster_write_latency_seconds", "Quorum write latency to decision.", m.Write)
	p.header("vsmart_cluster_node_healthy", "gauge", "Per-node health as last observed by this router (1 healthy, 0 not).")
	for _, n := range st.Nodes {
		v := 0.0
		if n.Healthy {
			v = 1
		}
		p.labeled("vsmart_cluster_node_healthy", [][2]string{{"node", n.Addr}, {"partition", fmt.Sprint(n.Partition)}}, v)
	}
	p.header("vsmart_cluster_node_pending_repair", "gauge", "Missed writes queued for this node.")
	for _, n := range st.Nodes {
		p.labeled("vsmart_cluster_node_pending_repair", [][2]string{{"node", n.Addr}, {"partition", fmt.Sprint(n.Partition)}}, float64(n.PendingRepair))
	}
	p.admission(s.lim)
}

func (s *routerServer) handleAdd(w http.ResponseWriter, r *http.Request) {
	var req addRequest
	if !decodeBody(w, r, &req) || !validateAdd(w, req) {
		return
	}
	if err := s.c.AddContext(traceCtx(r), req.Entity, req.Elements); err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, vsmartjoin.ErrClusterUnavailable) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

func (s *routerServer) handleRemove(w http.ResponseWriter, r *http.Request) {
	var req removeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Entity == "" {
		writeError(w, http.StatusBadRequest, "missing entity")
		return
	}
	removed, err := s.c.RemoveContext(traceCtx(r), req.Entity)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, vsmartjoin.ErrClusterUnavailable) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"removed": removed})
}

// handleBulk is the router's batched-ingest endpoint: the same wire
// body a node's /bulk takes, driven through the cluster's partition-
// grouped quorum writes (Cluster.Bulk) — one batched request per
// touched partition's replicas instead of one quorum round per
// mutation.
func (s *routerServer) handleBulk(w http.ResponseWriter, r *http.Request) {
	var req cluster.BulkRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if !validateBulk(w, req) {
		return
	}
	muts := make([]vsmartjoin.BulkMutation, len(req.Ops))
	for i, op := range req.Ops {
		muts[i] = vsmartjoin.BulkMutation{Remove: op.Op == "remove", Entity: op.Entity, Elements: op.Elements}
	}
	if err := s.c.BulkContext(traceCtx(r), muts); err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, vsmartjoin.ErrClusterUnavailable) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"applied": len(req.Ops)})
}

func (s *routerServer) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if !snapshotBody(w, r) {
		return
	}
	if err := s.c.Snapshot(); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"snapshot": true})
}

// handleReadyz is the router readiness probe: 200 only while every
// partition has at least one healthy replica (queries exact or
// nothing), with write readiness — a healthy majority everywhere —
// reported alongside.
func (s *routerServer) handleReadyz(w http.ResponseWriter, r *http.Request) {
	queries, writes := s.c.Ready()
	status := http.StatusOK
	if !queries {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{
		"ready":       queries,
		"write_ready": writes,
		"partitions":  s.c.Stats().Partitions,
	})
}
