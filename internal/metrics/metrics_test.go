package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestBucketBoundsMonotonic(t *testing.T) {
	prev := float64(0)
	for i := 0; i < NumBuckets; i++ {
		b := BucketBound(i)
		if i == NumBuckets-1 {
			if !math.IsInf(b, 1) {
				t.Fatalf("last bucket bound = %v, want +Inf", b)
			}
			break
		}
		if b <= prev {
			t.Fatalf("bucket %d bound %v not above previous %v", i, b, prev)
		}
		prev = b
	}
	if got := BucketBound(0); got != 256 {
		t.Fatalf("first bound = %v, want 256ns", got)
	}
	// Four buckets per octave: bound(i+subOctave) must be exactly
	// double bound(i) up to rounding.
	for i := 0; i+subOctave < NumBuckets-1; i++ {
		lo, hi := BucketBound(i), BucketBound(i+subOctave)
		if ratio := hi / lo; ratio < 1.99 || ratio > 2.01 {
			t.Fatalf("bound(%d)/bound(%d) = %v, want ~2", i+subOctave, i, ratio)
		}
	}
}

func TestBucketOfBoundaries(t *testing.T) {
	// An observation exactly at a bound lands in that bucket
	// (inclusive upper bound); one past it lands in the next.
	for i := 0; i < NumBuckets-2; i++ {
		bound := uint64(BucketBound(i))
		if got := bucketOf(bound); got != i {
			t.Fatalf("bucketOf(%d) = %d, want %d (at bound)", bound, got, i)
		}
		if got := bucketOf(bound + 1); got != i+1 {
			t.Fatalf("bucketOf(%d) = %d, want %d (past bound)", bound+1, got, i+1)
		}
	}
	if got := bucketOf(0); got != 0 {
		t.Fatalf("bucketOf(0) = %d, want 0", got)
	}
	// Far past the last finite bound: the overflow bucket.
	if got := bucketOf(math.MaxUint64); got != NumBuckets-1 {
		t.Fatalf("bucketOf(max) = %d, want %d", got, NumBuckets-1)
	}
}

func TestObservePlacement(t *testing.T) {
	var h Histogram
	h.Observe(300 * time.Nanosecond) // between 256 and ~304 → bucket 1
	h.Observe(time.Millisecond)
	h.Observe(-time.Second) // clamps to 0 → bucket 0
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3", s.Count)
	}
	if s.Buckets[0] != 1 {
		t.Fatalf("clamped negative observation not in bucket 0: %v", s.Buckets)
	}
	want := bucketOf(uint64(time.Millisecond))
	if s.Buckets[want] != 1 {
		t.Fatalf("1ms observation not in bucket %d", want)
	}
	if s.Sum != uint64(300+time.Millisecond) {
		t.Fatalf("sum = %d, want %d", s.Sum, uint64(300+time.Millisecond))
	}
}

func TestQuantile(t *testing.T) {
	var h Histogram
	// 1000 observations spread uniformly over 1..1000 µs: quantiles are
	// known up to bucket resolution (half a sub-octave ≈ ±9%).
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	checks := []struct {
		q, want float64 // want in ns
	}{
		{0.5, 500e3},
		{0.99, 990e3},
		{0.999, 999e3},
	}
	for _, c := range checks {
		got := s.Quantile(c.q)
		if got < c.want*0.85 || got > c.want*1.15 {
			t.Errorf("q%g = %v ns, want within 15%% of %v", c.q, got, c.want)
		}
	}
	if got := (Snapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	// All mass in one bucket: every quantile stays inside its bounds.
	var one Histogram
	for i := 0; i < 100; i++ {
		one.Observe(10 * time.Microsecond)
	}
	os := one.Snapshot()
	b := bucketOf(uint64(10 * time.Microsecond))
	lo, hi := BucketBound(b-1), BucketBound(b)
	for _, q := range []float64{0, 0.5, 1} {
		if got := os.Quantile(q); got < lo || got > hi {
			t.Errorf("single-bucket q%g = %v outside (%v, %v]", q, got, lo, hi)
		}
	}
	// Overflow-only distribution reports the last finite bound as floor.
	var over Histogram
	over.Observe(time.Hour)
	if got := over.Snapshot().Quantile(0.5); got != BucketBound(NumBuckets-2) {
		t.Errorf("overflow quantile = %v, want last finite bound %v", got, BucketBound(NumBuckets-2))
	}
}

func TestMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 500; i++ {
		a.Observe(time.Duration(i+1) * time.Microsecond)
	}
	for i := 500; i < 1000; i++ {
		b.Observe(time.Duration(i+1) * time.Microsecond)
	}
	var whole Histogram
	for i := 0; i < 1000; i++ {
		whole.Observe(time.Duration(i+1) * time.Microsecond)
	}
	merged := a.Snapshot()
	merged.Merge(b.Snapshot())
	want := whole.Snapshot()
	if merged != want {
		t.Fatalf("merged snapshot differs from the single-histogram capture:\n%+v\n%+v", merged, want)
	}
	if merged.Count != 1000 {
		t.Fatalf("merged count = %d, want 1000", merged.Count)
	}
}

func TestConcurrentWriters(t *testing.T) {
	// Run with -race: W writers hammer one histogram (plus a counter
	// and gauge), then the totals must balance exactly.
	const writers, perWriter = 8, 2000
	var h Histogram
	var c Counter
	var g Gauge
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(time.Duration(w*1000+i) * time.Nanosecond)
				c.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != writers*perWriter {
		t.Fatalf("count = %d, want %d", s.Count, writers*perWriter)
	}
	var sum uint64
	for _, b := range s.Buckets {
		sum += b
	}
	if sum != s.Count {
		t.Fatalf("bucket sum %d != count %d", sum, s.Count)
	}
	if c.Load() != writers*perWriter {
		t.Fatalf("counter = %d, want %d", c.Load(), writers*perWriter)
	}
	if g.Load() != 0 {
		t.Fatalf("gauge = %d, want 0", g.Load())
	}
}

func TestObserveSince(t *testing.T) {
	var h Histogram
	start := Now()
	time.Sleep(2 * time.Millisecond)
	h.ObserveSince(start)
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("count = %d, want 1", s.Count)
	}
	if q := s.Quantile(0.5); q < float64(time.Millisecond) {
		t.Fatalf("observed %v ns, want >= 1ms", q)
	}
}

func BenchmarkObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i) * time.Nanosecond)
	}
}
