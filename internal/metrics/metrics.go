// Package metrics is the one runtime-observability primitive layer of
// the engine: atomic counters, gauges, and fixed-bucket latency
// histograms, built for the serving hot path.
//
// Design constraints, in order:
//
//   - Allocation-free on the hot path. Observe/Inc/Add touch only
//     atomics; no maps, no interfaces, no time formatting. The
//     zero-alloc guarantees of the query path (BenchmarkQueryThreshold,
//     BenchmarkQueryTopK at 0 allocs/op) must survive instrumentation.
//   - Lock-free and write-concurrent. Histograms are plain arrays of
//     atomic counters; any number of goroutines observe concurrently.
//     Reads (Snapshot) are not atomic across buckets — a snapshot taken
//     under concurrent writes can be off by in-flight observations,
//     which is fine for monitoring and cheap for writers.
//   - Mergeable. A Snapshot from every shard, node, or worker adds into
//     one distribution (Merge), because bucket boundaries are fixed and
//     identical everywhere — the property that lets a sharded index, a
//     cluster router, and the vsmartbench load driver share one
//     percentile pipeline.
//
// Buckets are log-spaced: four per octave (bounds grow by 2^(1/4) ≈
// 1.19), from 256ns up to ~17.6s, plus an overflow bucket. That bounds
// the relative quantile error by half a sub-octave (≈ ±9%) across the
// whole range — plenty for p50/p99/p999 monitoring — while keeping the
// histogram a fixed 1KiB of counters.
//
// Timing goes through Now/ObserveSince rather than callers touching
// time.Now directly: the hotpathmetrics analyzer (internal/lint) bans
// ad-hoc time.Now/time.Since accounting in internal/index, internal/
// shard, and internal/wal, so every hot-path duration demonstrably
// flows into a mergeable histogram instead of a one-off counter.
package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must not be negative; counters only go up).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (in-flight requests, queue
// depths); unlike a Counter it moves both ways.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Bucket geometry. Durations are measured in nanoseconds. Bucket i
// spans (Bound(i-1), Bound(i)] with Bound(i) = minBound << (i/subOctave)
// scaled by 2^((i%subOctave)/subOctave); the last bucket is +Inf.
const (
	// subOctave is the number of buckets per doubling of the bound.
	subOctave = 4
	// minExp is the exponent of the first bound: 1<<8 = 256ns. Anything
	// faster lands in bucket 0 — sub-quarter-microsecond work is below
	// what a serving latency distribution needs to resolve.
	minExp = 8
	// octaves spans 256ns << 26 ≈ 17.6s; slower observations land in
	// the +Inf overflow bucket.
	octaves = 26
	// NumBuckets is the fixed bucket count of every Histogram, overflow
	// included.
	NumBuckets = octaves*subOctave + 1
)

// bounds holds the inclusive upper bound of every finite bucket in
// nanoseconds, precomputed once so Observe is one comparison ladder
// (binary search) over a fixed array.
var bounds = func() [NumBuckets - 1]uint64 {
	var b [NumBuckets - 1]uint64
	for i := range b {
		oct, sub := i/subOctave, i%subOctave
		bound := math.Exp2(float64(minExp+oct) + float64(sub)/subOctave)
		b[i] = uint64(math.Round(bound))
	}
	return b
}()

// BucketBound reports bucket i's inclusive upper bound in nanoseconds;
// the last bucket reports +Inf. Bounds are identical across every
// histogram in the process and across processes of the same build —
// what makes snapshots mergeable across shards and nodes.
func BucketBound(i int) float64 {
	if i >= NumBuckets-1 {
		return math.Inf(1)
	}
	return float64(bounds[i])
}

// bucketOf locates the bucket for a duration of ns nanoseconds.
func bucketOf(ns uint64) int {
	// Binary search over the fixed bounds: 7 comparisons, no branches on
	// data-dependent loop lengths beyond that.
	lo, hi := 0, len(bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if ns > bounds[mid] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Histogram is a fixed-bucket latency histogram. The zero value is
// ready to use; embed it by value. All methods are safe for concurrent
// use; Observe performs three atomic adds and no allocation.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // total observed nanoseconds
	buckets [NumBuckets]atomic.Uint64
}

// Observe records one duration. Negative durations clamp to zero (a
// monotonic-clock read can regress across VM migrations; losing one
// sample to bucket 0 beats panicking).
func (h *Histogram) Observe(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.buckets[bucketOf(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Stamp is an opaque start time from Now, consumed by ObserveSince.
type Stamp struct{ t time.Time }

// Now returns a start stamp. It is the sanctioned clock read of the
// hot path: internal/index, internal/shard, and internal/wal are
// lint-banned from calling time.Now/time.Since directly, so every
// duration measured there provably ends in a Histogram.
func Now() Stamp { return Stamp{t: time.Now()} }

// ObserveSince records the time elapsed since s.
func (h *Histogram) ObserveSince(s Stamp) { h.Observe(time.Since(s.t)) }

// Snapshot returns a point-in-time copy of the distribution. Under
// concurrent writers the copy is not a consistent cut — counts may be
// off by the observations in flight — which monitoring tolerates.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Snapshot is a frozen histogram: mergeable, serializable, and the
// input to percentile extraction. The zero value is an empty
// distribution.
type Snapshot struct {
	Count   uint64             `json:"count"`
	Sum     uint64             `json:"sum_ns"`
	Buckets [NumBuckets]uint64 `json:"buckets"`
}

// Merge adds o's observations into s — the cross-shard / cross-node
// fold. Bucket boundaries are fixed and shared, so merging is
// element-wise addition and percentiles of the merged snapshot are
// exactly the percentiles of the combined observation stream (up to
// bucket resolution).
func (s *Snapshot) Merge(o Snapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Quantile returns the q-quantile (q in [0,1]) of the distribution in
// nanoseconds, interpolated log-linearly inside the winning bucket. An
// empty distribution reports 0; a quantile landing in the overflow
// bucket reports the last finite bound (a floor, not a lie: the true
// value is at least that).
func (s Snapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the wanted observation under the
	// usual nearest-rank-with-interpolation convention.
	rank := q * float64(s.Count)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum+1e-9 < rank {
			continue
		}
		lo := float64(0)
		if i > 0 {
			lo = BucketBound(i - 1)
		}
		hi := BucketBound(i)
		if math.IsInf(hi, 1) {
			return BucketBound(i - 1) // overflow: report the known floor
		}
		if lo == 0 {
			// First bucket: linear interpolation from zero.
			return hi * (rank - prev) / float64(c)
		}
		// Log-linear interpolation between the bucket's bounds.
		frac := (rank - prev) / float64(c)
		return lo * math.Exp2(frac*math.Log2(hi/lo))
	}
	return BucketBound(NumBuckets - 2)
}

// Mean returns the average observation in nanoseconds (0 when empty).
func (s Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// SizeNumBuckets is the fixed bucket count of every SizeHistogram:
// power-of-two bounds 1, 2, 4, ..., 2^31, plus an overflow bucket.
const SizeNumBuckets = 33

// SizeBucketBound reports size bucket i's inclusive upper bound; the
// last bucket reports +Inf. Like the latency bounds, they are fixed
// and shared, so size snapshots merge across shards and nodes.
func SizeBucketBound(i int) float64 {
	if i >= SizeNumBuckets-1 {
		return math.Inf(1)
	}
	return float64(uint64(1) << i)
}

// SizeHistogram is a fixed-bucket histogram of small counts — batch
// sizes, group-commit fan-in — where the latency geometry's 256-unit
// first bucket would flatten the whole distribution. Buckets double
// from 1, so sizes 1..2^31 resolve to within a factor of two. The zero
// value is ready to use; Observe is three atomic adds, no allocation.
type SizeHistogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [SizeNumBuckets]atomic.Uint64
}

// Observe records one size (0 clamps into the first bucket).
func (h *SizeHistogram) Observe(n uint64) {
	i := bits.Len64(n) // 1 -> 1, 2 -> 2, 3..4 -> 3, ...
	if i > 0 {
		i--
		if n > 1<<i { // not an exact power of two: round up a bucket
			i++
		}
	}
	if i >= SizeNumBuckets {
		i = SizeNumBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(n)
}

// Snapshot returns a point-in-time copy of the size distribution; like
// Histogram.Snapshot it is not a consistent cut under concurrent
// writers, which monitoring tolerates.
func (h *SizeHistogram) Snapshot() SizeSnapshot {
	var s SizeSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// SizeSnapshot is a frozen SizeHistogram: mergeable, serializable, and
// the input to quantile extraction. The zero value is empty.
type SizeSnapshot struct {
	Count   uint64                 `json:"count"`
	Sum     uint64                 `json:"sum"`
	Buckets [SizeNumBuckets]uint64 `json:"buckets"`
}

// Merge adds o's observations into s.
func (s *SizeSnapshot) Merge(o SizeSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Mean returns the average observed size (0 when empty).
func (s SizeSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns the q-quantile of the size distribution,
// interpolated log-linearly inside the winning bucket (the same
// convention as the latency Snapshot).
func (s SizeSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum+1e-9 < rank {
			continue
		}
		hi := SizeBucketBound(i)
		if math.IsInf(hi, 1) {
			return SizeBucketBound(i - 1)
		}
		if i == 0 {
			return hi
		}
		lo := SizeBucketBound(i - 1)
		frac := (rank - prev) / float64(c)
		return lo * math.Exp2(frac*math.Log2(hi/lo))
	}
	return SizeBucketBound(SizeNumBuckets - 2)
}
