package experiments

import (
	"strings"
	"testing"

	"vsmartjoin/internal/core"
	"vsmartjoin/internal/similarity"
)

func TestFig2and3Tiny(t *testing.T) {
	env := NewTinyEnv()
	r, err := Fig2and3(env)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Body, "Fig 2") || !strings.Contains(r.Body, "Fig 3") {
		t.Fatalf("missing sections:\n%s", r.Body)
	}
	if !strings.Contains(r.Body, "small dataset") || !strings.Contains(r.Body, "realistic dataset") {
		t.Fatalf("missing datasets:\n%s", r.Body)
	}
}

func TestThresholdSweepTiny(t *testing.T) {
	env := NewTinyEnv()
	_, input, err := env.Small()
	if err != nil {
		t.Fatal(err)
	}
	r, err := thresholdSweep(input, "tiny")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Body, "pair counts at every threshold: true") {
		t.Fatalf("algorithms disagreed:\n%s", r.Body)
	}
}

func TestFig7Tiny(t *testing.T) {
	env := NewTinyEnv()
	r, err := Fig7(env)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Body, "sharding1") || !strings.Contains(r.Body, "sharding2") {
		t.Fatalf("missing series:\n%s", r.Body)
	}
}

func TestProxyStudyTiny(t *testing.T) {
	env := NewTinyEnv()
	r, err := ProxyStudy(env)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Body, "precision") {
		t.Fatalf("missing metrics:\n%s", r.Body)
	}
}

func TestEvalTotalMonotone(t *testing.T) {
	env := NewTinyEnv()
	_, input, err := env.Small()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Join(Cluster(DefaultMachines), input, core.Config{
		Measure: similarity.Ruzicka{}, Threshold: 0.5, Algorithm: core.Sharding, NumReducers: NumReducers,
	})
	if err != nil {
		t.Fatal(err)
	}
	prev := evalTotal(res.Stats, 100)
	for _, w := range []int{200, 400, 800} {
		cur := evalTotal(res.Stats, w)
		if cur > prev+1e-9 {
			t.Fatalf("time increased with machines: w=%d %v > %v", w, cur, prev)
		}
		prev = cur
	}
}

func TestReportString(t *testing.T) {
	r := Report{ID: "x", Title: "y", Body: "z"}
	s := r.String()
	if !strings.Contains(s, "x: y") || !strings.Contains(s, "z") {
		t.Fatalf("report string: %q", s)
	}
}
