// Package experiments reproduces every figure of the paper's evaluation
// (§7) on the scaled synthetic workloads of internal/datagen. Each driver
// returns a Report whose body holds the tables and ASCII charts that
// correspond to one figure; EXPERIMENTS.md records the paper-vs-measured
// comparison.
//
// Simulated times are in scaled cluster-seconds: the datasets are ~1:2000
// of the paper's, and the cost-model coefficients are inflated by the same
// factor, so the relative shapes — who wins, by what factor, where curves
// flatten, what fails — are the reproduction targets, not absolute values.
package experiments

import (
	"fmt"
	"strings"

	"vsmartjoin/internal/core"
	"vsmartjoin/internal/datagen"
	"vsmartjoin/internal/mr"
	"vsmartjoin/internal/mrfs"
	"vsmartjoin/internal/records"
	"vsmartjoin/internal/similarity"
	"vsmartjoin/internal/stats"
)

const (
	// NumReducers fixes the task count across runs so cost profiles can be
	// re-evaluated at any machine count (tasks ≫ machines throughout the
	// 100–900 sweep).
	NumReducers = 1024
	// MemPerMachine is the scaled stand-in for the paper's 1 GB budget.
	MemPerMachine = 2 << 20
	// DefaultMachines matches the paper's Fig 4 setting.
	DefaultMachines = 500
	// Threshold used by the machine sweeps (Figs 5–6).
	SweepThreshold = 0.5
)

// CostModel returns the scaled coefficients calibrated against the
// paper's reported ratios (see DESIGN.md §1 and EXPERIMENTS.md).
func CostModel() mr.CostModel {
	return mr.CostModel{
		JobStartup:      200, // start/stop dominates at high machine counts (§7.1)
		TaskOverhead:    0.01,
		CPUPerRecord:    1e-2, // scaled ≈2000× a realistic per-record cost
		IOPerByte:       1e-3,
		NetPerByte:      1e-3,
		SideLoadPerByte: 5e-4,
		MaxTaskSeconds:  90_000, // the scheduler kill (48 h, scaled)
	}
}

// Cluster builds the simulated cluster used by all experiments.
func Cluster(machines int) mr.ClusterConfig {
	return mr.ClusterConfig{
		Machines:              machines,
		MemPerMachine:         MemPerMachine,
		SupportsSecondaryKeys: true,
		Cost:                  CostModel(),
	}
}

// Env caches the generated traces and their raw-tuple datasets across
// figure drivers.
type Env struct {
	small, realistic       *datagen.Trace
	smallIn, realisticIn   *mrfs.Dataset
	smallCfg, realisticCfg datagen.TraceConfig
}

// NewEnv returns an empty environment with the standard scaled configs.
func NewEnv() *Env {
	return &Env{smallCfg: datagen.SmallConfig(), realisticCfg: datagen.RealisticConfig()}
}

// NewTinyEnv returns an environment whose "small" and "realistic" traces
// are both tiny — used by benchmarks and smoke tests.
func NewTinyEnv() *Env {
	tiny := datagen.TinyConfig()
	big := tiny
	big.Seed++
	big.NumBackground *= 4
	big.NumProxies *= 2
	return &Env{smallCfg: tiny, realisticCfg: big}
}

// Small returns the small trace, generating it on first use.
func (e *Env) Small() (*datagen.Trace, *mrfs.Dataset, error) {
	if e.small == nil {
		tr, err := datagen.Generate(e.smallCfg)
		if err != nil {
			return nil, nil, err
		}
		e.small = tr
		e.smallIn = records.BuildInput("small", tr.Multisets, NumReducers)
	}
	return e.small, e.smallIn, nil
}

// Realistic returns the realistic trace, generating it on first use.
func (e *Env) Realistic() (*datagen.Trace, *mrfs.Dataset, error) {
	if e.realistic == nil {
		tr, err := datagen.Generate(e.realisticCfg)
		if err != nil {
			return nil, nil, err
		}
		e.realistic = tr
		e.realisticIn = records.BuildInput("realistic", tr.Multisets, NumReducers)
	}
	return e.realistic, e.realisticIn, nil
}

// Report is one reproduced figure.
type Report struct {
	ID    string
	Title string
	Body  string
}

func (r Report) String() string {
	line := strings.Repeat("=", len(r.ID)+len(r.Title)+3)
	return fmt.Sprintf("%s\n%s: %s\n%s\n%s", line, r.ID, r.Title, line, r.Body)
}

// evalTotal re-evaluates a pipeline's simulated total at machine count w.
func evalTotal(ps mr.PipelineStats, w int) float64 {
	cm := CostModel()
	var total float64
	for _, j := range ps.Jobs {
		total += j.Profile.Evaluate(w, cm).Total
	}
	return total
}

// traceStats summarizes a trace for the Fig 2–3 histograms.
func traceStats(tr *datagen.Trace) (perMultiset, perElement *stats.LogHistogram, tuples int64) {
	perMultiset = stats.NewLogHistogram()
	perElement = stats.NewLogHistogram()
	freq := make(map[uint64]int64)
	for _, m := range tr.Multisets {
		perMultiset.Add(int64(m.UnderlyingCardinality()))
		tuples += int64(m.UnderlyingCardinality())
		for _, e := range m.Entries {
			freq[uint64(e.Elem)]++
		}
	}
	for _, f := range freq {
		perElement.Add(f)
	}
	return perMultiset, perElement, tuples
}

// Fig2and3 reproduces the dataset-distribution figures: the number of
// elements per multiset (Fig 2) and multisets per element (Fig 3), for
// both scaled datasets.
func Fig2and3(env *Env) (Report, error) {
	var body strings.Builder
	for _, which := range []string{"small", "realistic"} {
		var tr *datagen.Trace
		var err error
		if which == "small" {
			tr, _, err = env.Small()
		} else {
			tr, _, err = env.Realistic()
		}
		if err != nil {
			return Report{}, err
		}
		perM, perE, tuples := traceStats(tr)
		fmt.Fprintf(&body, "--- %s dataset: %d multisets (IPs), %d elements (cookies), %d tuples ---\n",
			which, len(tr.Multisets), tr.NumElements, tuples)
		body.WriteString("Fig 2 — elements per multiset |U(Mi)| (log2 bins):\n")
		body.WriteString(perM.String())
		body.WriteString("Fig 3 — multisets per element Freq(ak) (log2 bins):\n")
		body.WriteString(perE.String())
		body.WriteString("\n")
	}
	body.WriteString("Paper: both distributions are heavily skewed; most entities are small\n" +
		"with a heavy tail of huge ones. The histograms above show the same shape.\n")
	return Report{ID: "fig2-3", Title: "Dataset distributions", Body: body.String()}, nil
}

// Fig4Row is one measurement of the threshold sweep.
type Fig4Row struct {
	Threshold float64
	Seconds   map[string]float64
	Pairs     map[string]int
}

// Fig4 reproduces the small-dataset threshold sweep on 500 machines:
// all three V-SMART-Join algorithms and VCL, t ∈ {0.1 … 0.9}.
func Fig4(env *Env) (Report, error) {
	_, input, err := env.Small()
	if err != nil {
		return Report{}, err
	}
	return thresholdSweep(input, "small dataset, 500 machines")
}

func thresholdSweep(input *mrfs.Dataset, caption string) (Report, error) {
	cluster := Cluster(DefaultMachines)
	thresholds := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	algos := []core.Algorithm{core.OnlineAggregation, core.Lookup, core.Sharding}

	rows := make([]Fig4Row, 0, len(thresholds))
	var kernelFrac []float64
	for _, t := range thresholds {
		row := Fig4Row{Threshold: t, Seconds: map[string]float64{}, Pairs: map[string]int{}}
		for _, alg := range algos {
			res, err := core.Join(cluster, input, core.Config{
				Measure: similarity.Ruzicka{}, Threshold: t, Algorithm: alg, NumReducers: NumReducers,
			})
			if err != nil {
				return Report{}, fmt.Errorf("fig4 %s t=%v: %w", alg, t, err)
			}
			row.Seconds[alg.String()] = res.Stats.TotalSeconds
			row.Pairs[alg.String()] = len(res.Pairs)
		}
		vres, err := vclJoin(cluster, input, t)
		if err != nil {
			return Report{}, fmt.Errorf("fig4 vcl t=%v: %w", t, err)
		}
		row.Seconds["vcl"] = vres.Stats.TotalSeconds
		row.Pairs["vcl"] = len(vres.Pairs)
		kernelFrac = append(kernelFrac, vres.KernelMapSeconds/vres.Stats.TotalSeconds)
		rows = append(rows, row)
	}

	names := []string{"online-aggregation", "lookup", "sharding", "vcl"}
	tbl := stats.Table{
		Title:   "Fig 4 — run time (simulated s) vs similarity threshold (" + caption + ")",
		Headers: append([]string{"t"}, append(append([]string{}, names...), "pairs", "vcl/oa")...),
	}
	series := make([]stats.Series, len(names))
	for i, n := range names {
		series[i].Name = n
	}
	agree := true
	for _, r := range rows {
		cells := []string{fmt.Sprintf("%.1f", r.Threshold)}
		for i, n := range names {
			cells = append(cells, fmt.Sprintf("%.0f", r.Seconds[n]))
			series[i].Add(r.Threshold, r.Seconds[n])
		}
		for _, n := range names[1:] {
			if r.Pairs[n] != r.Pairs[names[0]] {
				agree = false
			}
		}
		cells = append(cells, fmt.Sprintf("%d", r.Pairs[names[0]]),
			fmt.Sprintf("%.1fx", r.Seconds["vcl"]/r.Seconds["online-aggregation"]))
		tbl.AddRow(cells...)
	}

	var body strings.Builder
	body.WriteString(tbl.String())
	body.WriteString("\n")
	body.WriteString(stats.Chart(series, 64, 16))
	fmt.Fprintf(&body, "\nAll algorithms agree on pair counts at every threshold: %v\n", agree)
	fmt.Fprintf(&body, "VCL kernel-map share of VCL total: %.0f%% (t=0.1) … %.0f%% (t=0.9); paper reports >=86%%.\n",
		100*kernelFrac[0], 100*kernelFrac[len(kernelFrac)-1])
	body.WriteString("Paper: VCL 30x slower than Online-Aggregation at t=0.1 shrinking to 5x at t=0.9;\n" +
		"V-SMART-Join algorithms nearly flat in t; ordering OA < Lookup < Sharding.\n")
	return Report{ID: "fig4", Title: "Run time vs similarity threshold", Body: body.String()}, nil
}

// Fig5 reproduces the small-dataset machine sweep at t = 0.5: each
// algorithm runs once (execution is machine-count independent) and its
// cost profile is re-evaluated at W = 100 … 900.
func Fig5(env *Env) (Report, error) {
	_, input, err := env.Small()
	if err != nil {
		return Report{}, err
	}
	cluster := Cluster(DefaultMachines)
	type algRun struct {
		name  string
		stats mr.PipelineStats
	}
	var runs []algRun
	for _, alg := range []core.Algorithm{core.OnlineAggregation, core.Lookup, core.Sharding} {
		res, err := core.Join(cluster, input, core.Config{
			Measure: similarity.Ruzicka{}, Threshold: SweepThreshold, Algorithm: alg, NumReducers: NumReducers,
		})
		if err != nil {
			return Report{}, fmt.Errorf("fig5 %s: %w", alg, err)
		}
		runs = append(runs, algRun{alg.String(), res.Stats})
	}
	vres, err := vclJoin(cluster, input, SweepThreshold)
	if err != nil {
		return Report{}, fmt.Errorf("fig5 vcl: %w", err)
	}
	runs = append(runs, algRun{"vcl", vres.Stats})

	machines := []int{100, 200, 300, 400, 500, 600, 700, 800, 900}
	tbl := stats.Table{
		Title:   "Fig 5 — run time (simulated s) vs machines (small dataset, t = 0.5)",
		Headers: []string{"machines"},
	}
	series := make([]stats.Series, len(runs))
	for i, r := range runs {
		tbl.Headers = append(tbl.Headers, r.name)
		series[i].Name = r.name
	}
	totals := map[string]map[int]float64{}
	for _, w := range machines {
		cells := []string{fmt.Sprintf("%d", w)}
		for i, r := range runs {
			v := evalTotal(r.stats, w)
			cells = append(cells, fmt.Sprintf("%.0f", v))
			series[i].Add(float64(w), v)
			if totals[r.name] == nil {
				totals[r.name] = map[int]float64{}
			}
			totals[r.name][w] = v
		}
		tbl.AddRow(cells...)
	}
	var body strings.Builder
	body.WriteString(tbl.String())
	body.WriteString("\n")
	body.WriteString(stats.Chart(series, 64, 16))
	body.WriteString("\nRun-time reduction from 100 to 900 machines:\n")
	for _, r := range runs {
		drop := 100 * (1 - totals[r.name][900]/totals[r.name][100])
		fmt.Fprintf(&body, "  %-20s %.0f%%\n", r.name, drop)
	}
	body.WriteString("Paper: VCL drops only 35% (flat past 500 machines — the biggest multiset's\n" +
		"mapper bottlenecks it); Online-Aggregation drops 53% (most); Lookup drops 32%\n" +
		"(least, due to the fixed side-table load on every machine).\n")
	return Report{ID: "fig5", Title: "Run time vs machines (small)", Body: body.String()}, nil
}

// vclResult is the subset of the VCL result the reports need.
type vclResult struct {
	Pairs            []records.Pair
	Stats            mr.PipelineStats
	KernelMapSeconds float64
}

// vclJoin is a thin wrapper so experiments depend on one VCL entry point.
func vclJoin(cluster mr.ClusterConfig, input *mrfs.Dataset, t float64) (*vclResult, error) {
	res, err := vclRun(cluster, input, t, false)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Fig6 reproduces the realistic-dataset comparison: Lookup cannot load its
// table, VCL dies even with the hash-order modification, and the two
// survivors scale with the machine count, with the joining and similarity
// phases reported separately.
func Fig6(env *Env) (Report, error) {
	_, input, err := env.Realistic()
	if err != nil {
		return Report{}, err
	}
	cluster := Cluster(DefaultMachines)
	var body strings.Builder

	// Lookup: expected to fail loading the Mi → Uni(Mi) table.
	_, lerr := core.Join(cluster, input, core.Config{
		Measure: similarity.Ruzicka{}, Threshold: SweepThreshold, Algorithm: core.Lookup, NumReducers: NumReducers,
	})
	if lerr == nil {
		return Report{}, fmt.Errorf("fig6: lookup unexpectedly succeeded on the realistic dataset")
	}
	fmt.Fprintf(&body, "Lookup:   FAILED as in the paper — %v\n", lerr)

	// VCL: frequency ordering fails on memory; the hash-order modification
	// gets further but its kernel mappers exceed the scheduler deadline.
	_, verr := vclRun(cluster, input, SweepThreshold, false)
	if verr == nil {
		return Report{}, fmt.Errorf("fig6: vcl unexpectedly succeeded on the realistic dataset")
	}
	fmt.Fprintf(&body, "VCL:      FAILED as in the paper — %v\n", verr)
	_, herr := vclRun(cluster, input, SweepThreshold, true)
	if herr == nil {
		return Report{}, fmt.Errorf("fig6: hash-order vcl unexpectedly succeeded")
	}
	fmt.Fprintf(&body, "VCL+hash: FAILED as in the paper — %v\n\n", herr)

	// Survivors.
	type phase struct{ joining, sim mr.PipelineStats }
	surv := map[string]phase{}
	order := []string{"online-aggregation", "sharding"}
	for _, alg := range []core.Algorithm{core.OnlineAggregation, core.Sharding} {
		res, err := core.Join(cluster, input, core.Config{
			Measure: similarity.Ruzicka{}, Threshold: SweepThreshold, Algorithm: alg, NumReducers: NumReducers,
		})
		if err != nil {
			return Report{}, fmt.Errorf("fig6 %s: %w", alg, err)
		}
		surv[alg.String()] = phase{res.JoiningStats, res.SimilarityStats}
	}

	machines := []int{100, 200, 300, 400, 500, 600, 700, 800, 900}
	tbl := stats.Table{
		Title: "Fig 6 — run time (simulated s) vs machines (realistic dataset, t = 0.5)",
		Headers: []string{"machines", "oa-joining", "sharding-joining", "similarity-phase(oa)",
			"oa-total", "sharding-total", "sharding/oa"},
	}
	var series []stats.Series
	oaSeries, shSeries := stats.Series{Name: "online-aggregation"}, stats.Series{Name: "sharding"}
	for _, w := range machines {
		oaJoin := evalTotal(surv["online-aggregation"].joining, w)
		shJoin := evalTotal(surv["sharding"].joining, w)
		oaSim := evalTotal(surv["online-aggregation"].sim, w)
		shSim := evalTotal(surv["sharding"].sim, w)
		oaTotal, shTotal := oaJoin+oaSim, shJoin+shSim
		tbl.AddRow(fmt.Sprintf("%d", w),
			fmt.Sprintf("%.0f", oaJoin), fmt.Sprintf("%.0f", shJoin), fmt.Sprintf("%.0f", oaSim),
			fmt.Sprintf("%.0f", oaTotal), fmt.Sprintf("%.0f", shTotal),
			fmt.Sprintf("%.2fx", shTotal/oaTotal))
		oaSeries.Add(float64(w), oaTotal)
		shSeries.Add(float64(w), shTotal)
	}
	series = append(series, oaSeries, shSeries)
	body.WriteString(tbl.String())
	body.WriteString("\n")
	body.WriteString(stats.Chart(series, 64, 14))
	_ = order
	body.WriteString("\nPaper: only Online-Aggregation and Sharding finish; both keep scaling with\n" +
		"machines; the Sharding joining phase costs roughly twice Online-Aggregation's.\n")
	return Report{ID: "fig6", Title: "Run time vs machines (realistic)", Body: body.String()}, nil
}

// Fig7 reproduces the Sharding sensitivity analysis: the joining phase is
// run across C values; Sharding1 time falls with C, Sharding2 rises, and
// the total stays nearly flat.
func Fig7(env *Env) (Report, error) {
	_, input, err := env.Realistic()
	if err != nil {
		return Report{}, err
	}
	cluster := Cluster(DefaultMachines)
	tbl := stats.Table{
		Title:   "Fig 7 — Sharding joining-phase time (simulated s) vs parameter C (realistic, t = 0.5)",
		Headers: []string{"C", "sharding1", "sharding2", "total", "sharded-multisets"},
	}
	s1Series, s2Series, totSeries := stats.Series{Name: "sharding1"}, stats.Series{Name: "sharding2"}, stats.Series{Name: "total"}
	type row struct {
		c                  int
		s1, s2, total      float64
		shardedTableecords int64
	}
	var rows []row
	for c := 4; c <= 4096; c *= 2 {
		_, ps, err := core.ShardingJoining(cluster, input, c, NumReducers)
		if err != nil {
			return Report{}, fmt.Errorf("fig7 C=%d: %w", c, err)
		}
		j1, _ := ps.Job("sharding1")
		j2, _ := ps.Job("sharding2")
		r := row{c: c, s1: j1.TotalSeconds, s2: j2.TotalSeconds, total: ps.TotalSeconds,
			shardedTableecords: j1.ReduceOutRecs}
		rows = append(rows, r)
		tbl.AddRow(fmt.Sprintf("%d", c), fmt.Sprintf("%.1f", r.s1), fmt.Sprintf("%.1f", r.s2),
			fmt.Sprintf("%.1f", r.total), fmt.Sprintf("%d", r.shardedTableecords))
		s1Series.Add(float64(c), r.s1)
		s2Series.Add(float64(c), r.s2)
		totSeries.Add(float64(c), r.total)
	}
	var body strings.Builder
	body.WriteString(tbl.String())
	body.WriteString("\n")
	body.WriteString(stats.Chart([]stats.Series{s1Series, s2Series, totSeries}, 64, 14))
	minTotal, maxTotal := rows[0].total, rows[0].total
	for _, r := range rows {
		if r.total < minTotal {
			minTotal = r.total
		}
		if r.total > maxTotal {
			maxTotal = r.total
		}
	}
	fmt.Fprintf(&body, "\nTotal varies only %.0f%% across the whole C range (paper: \"stayed stable\").\n",
		100*(maxTotal-minTotal)/minTotal)
	body.WriteString("Paper: Sharding1 time decreases with C (fewer table entries output), Sharding2\n" +
		"increases (more on-the-fly aggregation), total roughly flat with a shallow minimum.\n")
	return Report{ID: "fig7", Title: "Sharding sensitivity to C", Body: body.String()}, nil
}

// ProxyStudy reproduces the §7.4 proxy-identification analysis: coverage
// and false positives per threshold, and the effect of dropping IPs with
// fewer than 50 cookie observations.
func ProxyStudy(env *Env) (Report, error) {
	tr, input, err := env.Small()
	if err != nil {
		return Report{}, err
	}
	cluster := Cluster(DefaultMachines)
	base, err := core.Join(cluster, input, core.Config{
		Measure: similarity.Ruzicka{}, Threshold: 0.1, Algorithm: core.OnlineAggregation, NumReducers: NumReducers,
	})
	if err != nil {
		return Report{}, err
	}

	var body strings.Builder
	tbl := stats.Table{
		Title:   "§7.4 — proxy identification vs threshold (all IPs)",
		Headers: []string{"t", "pairs", "coverage(IPs)", "true-pairs", "false-pairs", "precision", "communities"},
	}
	for _, t := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
		pairs := filterPairs(base.Pairs, t)
		m := graphScore(pairs, tr)
		tbl.AddRow(fmt.Sprintf("%.1f", t), fmt.Sprintf("%d", len(pairs)),
			fmt.Sprintf("%d", m.Coverage), fmt.Sprintf("%d", m.TruePairs),
			fmt.Sprintf("%d", m.FalsePairs), fmt.Sprintf("%.3f", m.Precision),
			fmt.Sprintf("%d", m.Communities))
	}
	body.WriteString(tbl.String())

	// Filter IPs with fewer than 50 cookie observations and re-join.
	var kept int
	var filtered []multisetAlias
	var totalCookies int64
	for _, m := range tr.Multisets {
		if m.Cardinality() >= 50 {
			filtered = append(filtered, m)
			kept++
			totalCookies += int64(m.UnderlyingCardinality())
		}
	}
	fin := records.BuildInput("small-filtered", filtered, NumReducers)
	fres, err := core.Join(cluster, fin, core.Config{
		Measure: similarity.Ruzicka{}, Threshold: 0.1, Algorithm: core.OnlineAggregation, NumReducers: NumReducers,
	})
	if err != nil {
		return Report{}, err
	}
	ftbl := stats.Table{
		Title:   "§7.4 — after filtering IPs with < 50 cookie observations",
		Headers: []string{"t", "pairs", "coverage(IPs)", "false-pairs", "precision"},
	}
	for _, t := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		pairs := filterPairs(fres.Pairs, t)
		m := graphScore(pairs, tr)
		ftbl.AddRow(fmt.Sprintf("%.1f", t), fmt.Sprintf("%d", len(pairs)),
			fmt.Sprintf("%d", m.Coverage), fmt.Sprintf("%d", m.FalsePairs), fmt.Sprintf("%.3f", m.Precision))
	}
	body.WriteString("\n")
	body.WriteString(ftbl.String())
	distinctCookies := countDistinctElements(filtered)
	fmt.Fprintf(&body, "\nAfter filtering: %d of %d IPs remain; %d distinct cookies — %.0fx more cookies than IPs\n",
		kept, len(tr.Multisets), distinctCookies, float64(distinctCookies)/float64(kept))
	// The Lookup table for the filtered dataset fits in memory again.
	_, lerr := core.Join(cluster, fin, core.Config{
		Measure: similarity.Ruzicka{}, Threshold: SweepThreshold, Algorithm: core.Lookup, NumReducers: NumReducers,
	})
	fmt.Fprintf(&body, "Lookup on the filtered dataset: %s\n", okOrErr(lerr))
	body.WriteString("\nPaper: t=0.1 gives the highest coverage and the most false positives;\n" +
		"filtering IPs with <50 cookies almost eliminates false positives, leaves about\n" +
		"two orders of magnitude more cookies than IPs, and lets Lookup fit its table.\n")
	return Report{ID: "proxy", Title: "Identifying proxies (§7.4)", Body: body.String()}, nil
}

func okOrErr(err error) string {
	if err == nil {
		return "SUCCEEDED (table fits after filtering, as the paper reports)"
	}
	return "failed: " + err.Error()
}

func filterPairs(pairs []records.Pair, t float64) []records.Pair {
	out := make([]records.Pair, 0, len(pairs))
	for _, p := range pairs {
		if p.Sim+1e-12 >= t {
			out = append(out, p)
		}
	}
	return out
}

func countDistinctElements(sets []multisetAlias) int {
	seen := map[uint64]struct{}{}
	for _, m := range sets {
		for _, e := range m.Entries {
			seen[uint64(e.Elem)] = struct{}{}
		}
	}
	return len(seen)
}

// RunAll executes every figure driver in order and returns the reports.
func RunAll(env *Env) ([]Report, error) {
	type driver struct {
		name string
		f    func(*Env) (Report, error)
	}
	drivers := []driver{
		{"fig2-3", Fig2and3}, {"fig4", Fig4}, {"fig5", Fig5},
		{"fig6", Fig6}, {"fig7", Fig7}, {"proxy", ProxyStudy},
	}
	var out []Report
	for _, d := range drivers {
		r, err := d.f(env)
		if err != nil {
			return out, fmt.Errorf("%s: %w", d.name, err)
		}
		out = append(out, r)
	}
	return out, nil
}
