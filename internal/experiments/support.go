package experiments

import (
	"vsmartjoin/internal/datagen"
	"vsmartjoin/internal/graph"
	"vsmartjoin/internal/mr"
	"vsmartjoin/internal/mrfs"
	"vsmartjoin/internal/multiset"
	"vsmartjoin/internal/records"
	"vsmartjoin/internal/similarity"
	"vsmartjoin/internal/vcl"
)

// multisetAlias keeps the figure drivers free of a direct multiset import
// in their signatures.
type multisetAlias = multiset.Multiset

// vclRun executes the VCL baseline with the experiment defaults.
func vclRun(cluster mr.ClusterConfig, input *mrfs.Dataset, t float64, hashOrder bool) (*vclResult, error) {
	res, err := vcl.Join(cluster, input, vcl.Config{
		Measure:     similarity.Ruzicka{},
		Threshold:   t,
		HashOrder:   hashOrder,
		NumReducers: NumReducers,
	})
	if err != nil {
		return nil, err
	}
	return &vclResult{
		Pairs:            res.Pairs,
		Stats:            res.Stats,
		KernelMapSeconds: res.KernelMapSeconds,
	}, nil
}

// proxyMetrics extends graph.Metrics with the community count.
type proxyMetrics struct {
	graph.Metrics
	Communities int
}

// graphScore runs the §7.4 post-processing: cluster the pairs, score them
// against the planted truth.
func graphScore(pairs []records.Pair, tr *datagen.Trace) proxyMetrics {
	m := graph.Score(pairs, tr.Communities)
	comps := graph.Communities(pairs)
	return proxyMetrics{Metrics: m, Communities: len(comps)}
}
