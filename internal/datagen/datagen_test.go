package datagen

import (
	"testing"

	"vsmartjoin/internal/multiset"
	"vsmartjoin/internal/similarity"
)

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Multisets) != len(b.Multisets) {
		t.Fatalf("sizes differ: %d vs %d", len(a.Multisets), len(b.Multisets))
	}
	for i := range a.Multisets {
		if !multiset.Equal(a.Multisets[i], b.Multisets[i]) {
			t.Fatalf("multiset %d differs", i)
		}
	}
}

func TestGenerateSeedChangesTrace(t *testing.T) {
	cfg := TinyConfig()
	a, _ := Generate(cfg)
	cfg.Seed++
	b, _ := Generate(cfg)
	same := len(a.Multisets) == len(b.Multisets)
	if same {
		identical := true
		for i := range a.Multisets {
			if !multiset.Equal(a.Multisets[i], b.Multisets[i]) {
				identical = false
				break
			}
		}
		if identical {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestGeneratePopulations(t *testing.T) {
	cfg := TinyConfig()
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Communities) != cfg.NumProxies {
		t.Fatalf("communities: got %d want %d", len(tr.Communities), cfg.NumProxies)
	}
	var proxyIPs int
	for _, c := range tr.Communities {
		if len(c) < cfg.ProxySizeMin || len(c) > cfg.ProxySizeMax {
			t.Fatalf("community size %d outside [%d,%d]", len(c), cfg.ProxySizeMin, cfg.ProxySizeMax)
		}
		proxyIPs += len(c)
	}
	if len(tr.Multisets) != proxyIPs+cfg.NumBackground {
		t.Fatalf("total: got %d want %d", len(tr.Multisets), proxyIPs+cfg.NumBackground)
	}
	if tr.NumElements == 0 {
		t.Fatal("no elements")
	}
	// IDs are unique and dense from 1.
	seen := map[multiset.ID]bool{}
	for _, m := range tr.Multisets {
		if seen[m.ID] {
			t.Fatalf("duplicate ID %d", m.ID)
		}
		seen[m.ID] = true
		if m.Cardinality() == 0 {
			t.Fatalf("empty multiset %d", m.ID)
		}
	}
}

func TestProxyMembersAreSimilar(t *testing.T) {
	tr, err := Generate(TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	byID := map[multiset.ID]multiset.Multiset{}
	for _, m := range tr.Multisets {
		byID[m.ID] = m
	}
	// Within a community, average pairwise Ruzicka must be clearly higher
	// than across random background pairs.
	var intra, n float64
	for _, c := range tr.Communities {
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				intra += similarity.Exact(similarity.Ruzicka{}, byID[c[i]], byID[c[j]])
				n++
			}
		}
	}
	intra /= n
	if intra < 0.5 {
		t.Fatalf("intra-community similarity too low: %v", intra)
	}
	// Background pairs: take consecutive background IPs.
	first := tr.Multisets[len(tr.Multisets)-tr.NumBackgroundCount():]
	var inter float64
	var m float64
	for i := 0; i+1 < len(first) && i < 200; i += 2 {
		inter += similarity.Exact(similarity.Ruzicka{}, first[i], first[i+1])
		m++
	}
	inter /= m
	if inter > intra/3 {
		t.Fatalf("background too similar: inter %v vs intra %v", inter, intra)
	}
}

func TestSkewedDistributions(t *testing.T) {
	// The Fig 2/3 shape check: element frequencies must be heavy-tailed —
	// most cookies rare, a few shared widely.
	tr, err := Generate(TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	freq := map[multiset.Elem]int{}
	for _, m := range tr.Multisets {
		for _, e := range m.Entries {
			freq[e.Elem]++
		}
	}
	ones, big := 0, 0
	for _, f := range freq {
		if f == 1 {
			ones++
		}
		if f >= 8 {
			big++
		}
	}
	if ones < len(freq)/3 {
		t.Fatalf("tail too light: %d/%d singletons", ones, len(freq))
	}
	if big == 0 {
		t.Fatal("no popular elements")
	}
}

func TestValidation(t *testing.T) {
	bad := []TraceConfig{
		{NumProxies: -1},
		{NumProxies: 1, ProxySizeMin: 1, ProxySizeMax: 1},
		{NumProxies: 1, ProxySizeMin: 2, ProxySizeMax: 3, PoolSizeMin: 0, PoolSizeMax: 0},
		{NumProxies: 1, ProxySizeMin: 2, ProxySizeMax: 3, PoolSizeMin: 1, PoolSizeMax: 2, PoolCoverage: 0},
		{NumBackground: 1, BackgroundAlphabet: 0},
		{NumBackground: 1, BackgroundAlphabet: 5, BackgroundZipfS: 1.0, CookiesPerIPMin: 1, CookiesPerIPMax: 2},
		{NumBackground: 1, BackgroundAlphabet: 5, BackgroundZipfS: 1.2, CookiesPerIPMin: 0, CookiesPerIPMax: 2},
		{HotFraction: 1.5},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Fatalf("case %d should fail", i)
		}
	}
}

func TestPresetConfigsGenerate(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, cfg := range []TraceConfig{TinyConfig(), SmallConfig()} {
		tr, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(tr.Multisets) == 0 {
			t.Fatal("empty trace")
		}
	}
}

// NumBackgroundCount exposes the background population size for tests.
func (t *Trace) NumBackgroundCount() int {
	var proxyIPs int
	for _, c := range t.Communities {
		proxyIPs += len(c)
	}
	return len(t.Multisets) - proxyIPs
}
