// Package datagen synthesizes the paper's workloads: IP–cookie traces
// where each IP is a multiset of the cookies observed with it. Traces are
// seeded and deterministic, with three populations:
//
//   - Proxy communities: groups of IPs (the ISP load balancers of §1) that
//     share a large cookie pool with high mutual Ruzicka similarity — the
//     planted ground truth for the §7.4 proxy-identification study.
//   - Background IPs: Zipf-skewed cookie samples, mostly dissimilar.
//   - Hot cookies: a handful of cookies observed across a large fraction
//     of all IPs, producing the heavy frequency tail of Fig 3 (and the
//     stop-word pressure on Similarity1).
//
// The element-per-multiset and multiset-per-element distributions are
// skewed like the paper's Figs 2–3.
package datagen

import (
	"fmt"
	"math/rand"

	"vsmartjoin/internal/multiset"
)

// TraceConfig parameterizes an IP–cookie trace.
type TraceConfig struct {
	Seed int64

	// Proxy communities (planted ground truth).
	NumProxies    int
	ProxySizeMin  int // IPs per proxy
	ProxySizeMax  int
	PoolSizeMin   int // cookies in a proxy's shared pool
	PoolSizeMax   int
	PoolCoverage  float64 // fraction of the pool each member observes
	ProxyMaxCount int     // max multiplicity of a proxy cookie

	// Big proxies: a handful of load balancers with vast underlying
	// cardinalities — the population the paper identifies as VCL's
	// bottleneck and the most important to discover (§7.4).
	NumBigProxies int
	BigProxySize  int // IPs per big proxy
	BigPoolSize   int // cookies in a big proxy's pool

	// Background traffic.
	NumBackground      int
	BackgroundAlphabet int     // distinct background cookies
	BackgroundZipfS    float64 // Zipf skew s (> 1)
	BackgroundZipfV    float64 // Zipf offset v (≥ 1); larger spreads the head
	CookiesPerIPMin    int
	CookiesPerIPMax    int
	BackgroundMaxCount int

	// Hot cookies (the Fig 3 heavy tail / stop words).
	HotCookies  int
	HotFraction float64 // fraction of all IPs observing each hot cookie
}

// Validate checks the configuration for generation-breaking values.
func (c TraceConfig) Validate() error {
	if c.NumProxies < 0 || c.NumBackground < 0 {
		return fmt.Errorf("datagen: negative population sizes")
	}
	if c.NumProxies > 0 {
		if c.ProxySizeMin < 2 || c.ProxySizeMax < c.ProxySizeMin {
			return fmt.Errorf("datagen: bad proxy sizes [%d,%d]", c.ProxySizeMin, c.ProxySizeMax)
		}
		if c.PoolSizeMin < 1 || c.PoolSizeMax < c.PoolSizeMin {
			return fmt.Errorf("datagen: bad pool sizes [%d,%d]", c.PoolSizeMin, c.PoolSizeMax)
		}
		if c.PoolCoverage <= 0 || c.PoolCoverage > 1 {
			return fmt.Errorf("datagen: bad pool coverage %v", c.PoolCoverage)
		}
	}
	if c.NumBackground > 0 {
		if c.BackgroundAlphabet < 1 {
			return fmt.Errorf("datagen: background alphabet %d", c.BackgroundAlphabet)
		}
		if c.BackgroundZipfS <= 1 {
			return fmt.Errorf("datagen: Zipf s must be > 1, got %v", c.BackgroundZipfS)
		}
		if c.CookiesPerIPMin < 1 || c.CookiesPerIPMax < c.CookiesPerIPMin {
			return fmt.Errorf("datagen: bad cookies-per-IP [%d,%d]", c.CookiesPerIPMin, c.CookiesPerIPMax)
		}
	}
	if c.HotFraction < 0 || c.HotFraction > 1 {
		return fmt.Errorf("datagen: bad hot fraction %v", c.HotFraction)
	}
	if c.NumBigProxies > 0 && (c.BigProxySize < 2 || c.BigPoolSize < 1) {
		return fmt.Errorf("datagen: bad big proxy shape %d×%d", c.BigProxySize, c.BigPoolSize)
	}
	return nil
}

// Trace is a generated workload with its planted ground truth.
type Trace struct {
	// Multisets are the IPs, each a multiset of cookie ids.
	Multisets []multiset.Multiset
	// Communities is the ground truth: each inner slice lists the IP ids
	// of one planted proxy.
	Communities [][]multiset.ID
	// NumElements is the number of distinct cookies in the trace.
	NumElements int
}

// Element id layout: proxies draw from disjoint pool ranges, background
// cookies sit above them, hot cookies at the very top.
const (
	poolBase       = 1 << 20
	backgroundBase = 1 << 28
	hotBase        = 1 << 30
)

// Generate builds the trace deterministically from the config seed.
func Generate(cfg TraceConfig) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr := &Trace{}
	nextID := multiset.ID(1)
	elems := make(map[multiset.Elem]struct{})

	// Proxy communities; the first NumBigProxies get the vast pools.
	for p := 0; p < cfg.NumProxies+cfg.NumBigProxies; p++ {
		var size, poolSize int
		if p < cfg.NumBigProxies {
			size = cfg.BigProxySize
			poolSize = cfg.BigPoolSize
		} else {
			size = cfg.ProxySizeMin + rng.Intn(cfg.ProxySizeMax-cfg.ProxySizeMin+1)
			poolSize = cfg.PoolSizeMin + rng.Intn(cfg.PoolSizeMax-cfg.PoolSizeMin+1)
		}
		pool := make([]multiset.Elem, poolSize)
		for i := range pool {
			pool[i] = multiset.Elem(poolBase + p*(1<<14) + i)
		}
		var community []multiset.ID
		for m := 0; m < size; m++ {
			entries := make([]multiset.Entry, 0, poolSize)
			for _, e := range pool {
				if rng.Float64() > cfg.PoolCoverage {
					continue
				}
				count := 1 + rng.Intn(maxInt(cfg.ProxyMaxCount, 1))
				entries = append(entries, multiset.Entry{Elem: e, Count: uint32(count)})
				elems[e] = struct{}{}
			}
			if len(entries) == 0 {
				// Guarantee non-empty members so every planted IP joins.
				entries = append(entries, multiset.Entry{Elem: pool[0], Count: 1})
				elems[pool[0]] = struct{}{}
			}
			tr.Multisets = append(tr.Multisets, multiset.New(nextID, entries))
			community = append(community, nextID)
			nextID++
		}
		tr.Communities = append(tr.Communities, community)
	}

	// Background IPs with Zipf-skewed cookie popularity.
	if cfg.NumBackground > 0 {
		zipf := NewZipf(rng, cfg.BackgroundZipfS, cfg.BackgroundZipfV, uint64(cfg.BackgroundAlphabet-1))
		for i := 0; i < cfg.NumBackground; i++ {
			k := cfg.CookiesPerIPMin + rng.Intn(cfg.CookiesPerIPMax-cfg.CookiesPerIPMin+1)
			counts := make(map[multiset.Elem]uint32, k)
			for j := 0; j < k; j++ {
				e := multiset.Elem(backgroundBase + zipf.Uint64())
				counts[e] += uint32(1 + rng.Intn(maxInt(cfg.BackgroundMaxCount, 1)))
				elems[e] = struct{}{}
			}
			tr.Multisets = append(tr.Multisets, multiset.FromCounts(nextID, counts))
			nextID++
		}
	}

	// Hot cookies: appended to a random fraction of every population.
	for h := 0; h < cfg.HotCookies; h++ {
		e := multiset.Elem(hotBase + h)
		for i := range tr.Multisets {
			if rng.Float64() < cfg.HotFraction {
				ms := tr.Multisets[i]
				entries := append(ms.Entries, multiset.Entry{Elem: e, Count: 1})
				tr.Multisets[i] = multiset.New(ms.ID, entries)
				elems[e] = struct{}{}
			}
		}
	}

	tr.NumElements = len(elems)
	return tr, nil
}

// SmallConfig is the scaled stand-in for the paper's small dataset
// (82M IPs × 133M cookies, scaled ≈1:2000 — see DESIGN.md §5).
func SmallConfig() TraceConfig {
	return TraceConfig{
		Seed:               1,
		NumProxies:         60,
		ProxySizeMin:       4,
		ProxySizeMax:       24,
		PoolSizeMin:        24,
		PoolSizeMax:        60,
		PoolCoverage:       0.85,
		ProxyMaxCount:      4,
		NumBigProxies:      3,
		BigProxySize:       6,
		BigPoolSize:        3000,
		NumBackground:      40_000,
		BackgroundAlphabet: 60_000,
		BackgroundZipfS:    1.4,
		BackgroundZipfV:    2500,
		CookiesPerIPMin:    1,
		CookiesPerIPMax:    12,
		BackgroundMaxCount: 3,
		HotCookies:         3,
		HotFraction:        0.0015,
	}
}

// RealisticConfig is the scaled stand-in for the paper's realistic dataset
// (454M IPs × 2.2B cookies). It is ~5.5× the small config, matching the
// paper's ratio; its Uni lookup table and its alphabet both deliberately
// exceed the scaled per-machine memory budget, and its biggest proxies
// push VCL's kernel mappers past the scheduler deadline.
func RealisticConfig() TraceConfig {
	return TraceConfig{
		Seed:               2,
		NumProxies:         200,
		ProxySizeMin:       4,
		ProxySizeMax:       24,
		PoolSizeMin:        24,
		PoolSizeMax:        80,
		PoolCoverage:       0.85,
		ProxyMaxCount:      4,
		NumBigProxies:      4,
		BigProxySize:       8,
		BigPoolSize:        6400,
		NumBackground:      220_000,
		BackgroundAlphabet: 400_000,
		BackgroundZipfS:    1.4,
		BackgroundZipfV:    20_000,
		CookiesPerIPMin:    1,
		CookiesPerIPMax:    8,
		BackgroundMaxCount: 3,
		HotCookies:         6,
		HotFraction:        0.0015,
	}
}

// TinyConfig is a fast variant for unit tests and benchmarks.
func TinyConfig() TraceConfig {
	return TraceConfig{
		Seed:               3,
		NumProxies:         8,
		ProxySizeMin:       3,
		ProxySizeMax:       8,
		PoolSizeMin:        8,
		PoolSizeMax:        20,
		PoolCoverage:       0.95,
		ProxyMaxCount:      3,
		NumBackground:      800,
		BackgroundAlphabet: 2_000,
		BackgroundZipfS:    1.4,
		BackgroundZipfV:    50,
		CookiesPerIPMin:    2,
		CookiesPerIPMax:    8,
		BackgroundMaxCount: 3,
		HotCookies:         2,
		HotFraction:        0.01,
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// NewZipf is the one Zipf sampler of the repo: rand.NewZipf with the
// offset clamped the way trace generation needs (v < 1 reads as 1, the
// smallest offset the stdlib accepts). Both the background-cookie
// population above and the serving benchmarks' skewed query-repetition
// workloads draw from it, so "zipf-skewed" means the same distribution
// in data generation and in load modeling.
func NewZipf(rng *rand.Rand, s, v float64, imax uint64) *rand.Zipf {
	if v < 1 {
		v = 1
	}
	return rand.NewZipf(rng, s, v, imax)
}

// ZipfRanks returns a deterministic sequence of n ranks drawn from
// Zipf(s, v) over [0, imax] — the query-popularity schedule of a
// skewed serving workload (a few head queries repeated constantly, a
// long tail seen once). Same seed, same schedule.
func ZipfRanks(seed int64, s, v float64, imax uint64, n int) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	zipf := NewZipf(rng, s, v, imax)
	out := make([]uint64, n)
	for i := range out {
		out[i] = zipf.Uint64()
	}
	return out
}
