// Package stats provides the histogram, table, and chart primitives used
// to render the paper's figures in a terminal: log-binned frequency
// distributions (Figs 2–3), aligned result tables, and ASCII line charts
// for run-time series (Figs 4–7).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// LogHistogram counts values into power-of-two bins: bin k holds values in
// [2^k, 2^(k+1)). It renders the log–log distribution plots of Figs 2–3.
type LogHistogram struct {
	bins  map[int]int64
	total int64
}

// NewLogHistogram returns an empty histogram.
func NewLogHistogram() *LogHistogram {
	return &LogHistogram{bins: make(map[int]int64)}
}

// Add counts one observation (values < 1 are clamped into the first bin).
func (h *LogHistogram) Add(v int64) {
	if v < 1 {
		v = 1
	}
	k := int(math.Floor(math.Log2(float64(v))))
	h.bins[k]++
	h.total++
}

// Total reports the number of observations.
func (h *LogHistogram) Total() int64 { return h.total }

// Bin is one histogram bucket.
type Bin struct {
	Lo, Hi int64 // [Lo, Hi)
	Count  int64
}

// Bins returns the non-empty buckets in ascending order.
func (h *LogHistogram) Bins() []Bin {
	ks := make([]int, 0, len(h.bins))
	for k := range h.bins {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	out := make([]Bin, len(ks))
	for i, k := range ks {
		out[i] = Bin{Lo: 1 << k, Hi: 1 << (k + 1), Count: h.bins[k]}
	}
	return out
}

// String renders the histogram as an aligned table with log-scaled bars.
func (h *LogHistogram) String() string {
	bins := h.Bins()
	var maxCount int64
	for _, b := range bins {
		if b.Count > maxCount {
			maxCount = b.Count
		}
	}
	var sb strings.Builder
	for _, b := range bins {
		bar := 0
		if b.Count > 0 && maxCount > 1 {
			bar = 1 + int(40*math.Log1p(float64(b.Count))/math.Log1p(float64(maxCount)))
		}
		fmt.Fprintf(&sb, "%12d-%-12d %10d %s\n", b.Lo, b.Hi-1, b.Count, strings.Repeat("#", bar))
	}
	return sb.String()
}

// Table is an aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, hd := range t.Headers {
		widths[i] = len(hd)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title + "\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// Point is one (x, y) observation of a series.
type Point struct {
	X, Y float64
}

// Series is a named sequence of points (one plotted line).
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.Points = append(s.Points, Point{X: x, Y: y})
}

// Chart renders series as a simple ASCII scatter chart, one rune per
// series, with a y-axis legend — enough to see the shapes of Figs 4–7.
func Chart(series []Series, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := 0.0, math.Inf(-1)
	any := false
	for _, s := range series {
		for _, p := range s.Points {
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			maxY = math.Max(maxY, p.Y)
			any = true
		}
	}
	if !any {
		return "(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = make([]rune, width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	marks := []rune{'o', '+', 'x', '*', '@', '%', '#', '&'}
	for si, s := range series {
		mark := marks[si%len(marks)]
		for _, p := range s.Points {
			c := int(math.Round((p.X - minX) / (maxX - minX) * float64(width-1)))
			r := height - 1 - int(math.Round((p.Y-minY)/(maxY-minY)*float64(height-1)))
			if r >= 0 && r < height && c >= 0 && c < width {
				if grid[r][c] != ' ' && grid[r][c] != mark {
					grid[r][c] = '?'
				} else {
					grid[r][c] = mark
				}
			}
		}
	}
	var sb strings.Builder
	for r, row := range grid {
		label := ""
		switch r {
		case 0:
			label = fmt.Sprintf("%10.1f", maxY)
		case height - 1:
			label = fmt.Sprintf("%10.1f", minY)
		default:
			label = strings.Repeat(" ", 10)
		}
		sb.WriteString(label + " |" + string(row) + "\n")
	}
	sb.WriteString(strings.Repeat(" ", 11) + "+" + strings.Repeat("-", width) + "\n")
	sb.WriteString(fmt.Sprintf("%11s %-10.1f%*s\n", "", minX, width-10, fmt.Sprintf("%.1f", maxX)))
	for si, s := range series {
		fmt.Fprintf(&sb, "%11s %c = %s\n", "", marks[si%len(marks)], s.Name)
	}
	return sb.String()
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of values using nearest-rank
// on a sorted copy.
func Quantile(values []int64, q float64) int64 {
	if len(values) == 0 {
		return 0
	}
	sorted := make([]int64, len(values))
	copy(sorted, values)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// Mean returns the arithmetic mean of values.
func Mean(values []int64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum int64
	for _, v := range values {
		sum += v
	}
	return float64(sum) / float64(len(values))
}
