package stats

import (
	"strings"
	"testing"
)

func TestLogHistogramBinning(t *testing.T) {
	h := NewLogHistogram()
	for _, v := range []int64{1, 1, 2, 3, 4, 7, 8, 1000} {
		h.Add(v)
	}
	bins := h.Bins()
	// Expected: [1,2):2  [2,4):2  [4,8):2  [8,16):1  [512,1024):1
	if len(bins) != 5 {
		t.Fatalf("bins: %v", bins)
	}
	if bins[0].Lo != 1 || bins[0].Count != 2 {
		t.Fatalf("bin0: %+v", bins[0])
	}
	if bins[4].Lo != 512 || bins[4].Count != 1 {
		t.Fatalf("bin4: %+v", bins[4])
	}
	if h.Total() != 8 {
		t.Fatalf("total: %d", h.Total())
	}
}

func TestLogHistogramClampsZero(t *testing.T) {
	h := NewLogHistogram()
	h.Add(0)
	h.Add(-5)
	bins := h.Bins()
	if len(bins) != 1 || bins[0].Lo != 1 || bins[0].Count != 2 {
		t.Fatalf("clamping wrong: %v", bins)
	}
}

func TestLogHistogramString(t *testing.T) {
	h := NewLogHistogram()
	for i := int64(1); i < 100; i++ {
		h.Add(i % 17)
	}
	s := h.String()
	if !strings.Contains(s, "#") {
		t.Fatalf("no bars: %q", s)
	}
}

func TestTableAlignment(t *testing.T) {
	tb := Table{Title: "demo", Headers: []string{"name", "value"}}
	tb.AddRow("a", "1")
	tb.AddRow("long-name", "22")
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines: %d\n%s", len(lines), s)
	}
	if !strings.HasPrefix(lines[0], "demo") {
		t.Fatalf("title missing: %q", lines[0])
	}
	// Header and rows align at the same column for field 2.
	hIdx := strings.Index(lines[1], "value")
	rIdx := strings.Index(lines[4], "22")
	if hIdx != rIdx {
		t.Fatalf("misaligned: header %d row %d\n%s", hIdx, rIdx, s)
	}
}

func TestChartRendersAllSeries(t *testing.T) {
	s1 := Series{Name: "vcl"}
	s2 := Series{Name: "online-aggregation"}
	for x := 1; x <= 9; x++ {
		s1.Add(float64(x), float64(30*x))
		s2.Add(float64(x), float64(x))
	}
	out := Chart([]Series{s1, s2}, 60, 12)
	if !strings.Contains(out, "o = vcl") || !strings.Contains(out, "+ = online-aggregation") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "o") || !strings.Contains(out, "+") {
		t.Fatalf("marks missing:\n%s", out)
	}
}

func TestChartEmpty(t *testing.T) {
	if out := Chart(nil, 40, 10); !strings.Contains(out, "no data") {
		t.Fatalf("empty chart: %q", out)
	}
}

func TestChartDegenerateRanges(t *testing.T) {
	s := Series{Name: "flat"}
	s.Add(5, 7)
	out := Chart([]Series{s}, 40, 8)
	if out == "" {
		t.Fatal("degenerate chart empty")
	}
}

func TestQuantile(t *testing.T) {
	vals := []int64{9, 1, 5, 3, 7}
	if q := Quantile(vals, 0); q != 1 {
		t.Fatalf("q0: %d", q)
	}
	if q := Quantile(vals, 0.5); q != 5 {
		t.Fatalf("q50: %d", q)
	}
	if q := Quantile(vals, 1); q != 9 {
		t.Fatalf("q100: %d", q)
	}
	if q := Quantile(nil, 0.5); q != 0 {
		t.Fatalf("empty: %d", q)
	}
	// Input must not be mutated.
	if vals[0] != 9 {
		t.Fatal("input mutated")
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]int64{2, 4, 6}); m != 4 {
		t.Fatalf("mean: %v", m)
	}
	if m := Mean(nil); m != 0 {
		t.Fatalf("empty mean: %v", m)
	}
}
