package stats

import "math/bits"

// Dist is an incremental distribution over uint64 observations that
// supports removal — the ingest-time dataset statistic the adaptive
// planner (internal/planner) reads. Observations are bucketed by bit
// length (the same log-2 scheme as LogHistogram), which is what makes
// Remove possible: a deleted entity's cardinality lands back in the
// exact bucket its Add used, so the summary tracks the live dataset
// instead of its whole mutation history. The zero value is ready to use.
//
// Bucket granularity is deliberate: the planner's decisions are cut-offs
// on orders of magnitude (tiny partition, heavy-tailed lengths), so a
// power-of-two summary is both sufficient and deterministic — no
// sampling, no decay, identical histories always produce identical
// summaries.
type Dist struct {
	buckets [65]int64 // bucket b holds values of bit length b; 0 has its own
	total   int64
	sum     int64
}

// Add records one observation.
func (d *Dist) Add(v uint64) {
	d.buckets[bits.Len64(v)]++
	d.total++
	d.sum += int64(v)
}

// Remove un-records one observation previously Added with the same
// value. Removing a value never added corrupts the summary; callers own
// that pairing (the index removes exactly the cardinality it inserted).
func (d *Dist) Remove(v uint64) {
	d.buckets[bits.Len64(v)]--
	d.total--
	d.sum -= int64(v)
}

// Count reports the number of live observations.
func (d *Dist) Count() int64 { return d.total }

// Mean reports the exact mean of the live observations (the sum is
// tracked exactly; only the shape is bucketed), or 0 when empty.
func (d *Dist) Mean() float64 {
	if d.total == 0 {
		return 0
	}
	return float64(d.sum) / float64(d.total)
}

// bucketCeil is the largest value bucket b can hold.
func bucketCeil(b int) uint64 {
	if b == 0 {
		return 0
	}
	return 1<<uint(b) - 1
}

// Quantile reports an upper bound on the q-quantile (q in [0, 1]): the
// ceiling of the first bucket whose cumulative count reaches q·total.
// Empty distributions report 0.
func (d *Dist) Quantile(q float64) uint64 {
	if d.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	need := int64(q*float64(d.total) + 0.5)
	if need < 1 {
		need = 1
	}
	var cum int64
	for b, n := range d.buckets {
		cum += n
		if cum >= need {
			return bucketCeil(b)
		}
	}
	return bucketCeil(64)
}

// Max reports an upper bound on the largest live observation (the
// ceiling of the highest non-empty bucket), or 0 when empty.
func (d *Dist) Max() uint64 {
	for b := len(d.buckets) - 1; b >= 0; b-- {
		if d.buckets[b] > 0 {
			return bucketCeil(b)
		}
	}
	return 0
}
