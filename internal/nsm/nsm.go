// Package nsm is an executable rendering of the paper's Eqn 1 — the general
// form of a Nominal Similarity Measure:
//
//	Sim(Mi,Mj) = F( Π₁ g₁(fi,k, fj,k), ..., Π_L g_L(fi,k, fj,k) )
//
// where each g_l maps a pair of multiplicities to a partial contribution,
// each Π_l aggregates those contributions over the alphabet, and F combines
// the aggregated partials into the similarity.
//
// The package also encodes the paper's §3.2 classification of g functions:
//
//   - Unilateral: the partial depends on only one operand, so it can be
//     computed by scanning only U(Mi) (or only U(Mj)).
//   - Conjunctive: the partial vanishes whenever either operand is 0, so it
//     can be computed by scanning only U(Mi ∩ Mj).
//   - Disjunctive: the partial can be nonzero when exactly one operand is 0,
//     so it needs a scan of U(Mi ∪ Mj). The framework (like the paper)
//     rejects measures that include a disjunctive partial.
//
// This package exists as a specification and classification tool: the fast
// path in internal/similarity hard-codes the partials every built-in
// measure needs, and tests prove the two agree. Building a custom Measure
// from g functions via Build is also supported.
package nsm

import (
	"errors"
	"fmt"

	"vsmartjoin/internal/multiset"
	"vsmartjoin/internal/similarity"
)

// Class is the §3.2 classification of a g function.
type Class int

const (
	// Unilateral partials scan one entity.
	Unilateral Class = iota
	// Conjunctive partials scan the intersection.
	Conjunctive
	// Disjunctive partials need the union; unsupported by the join
	// algorithms (and by every published algorithm the paper surveys).
	Disjunctive
)

func (c Class) String() string {
	switch c {
	case Unilateral:
		return "unilateral"
	case Conjunctive:
		return "conjunctive"
	case Disjunctive:
		return "disjunctive"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// GFunc is one g_l(fi,k, fj,k) term of Eqn 1. Aggregation Π_l is always Σ
// here, matching every measure in the paper.
type GFunc struct {
	Name string
	G    func(fi, fj uint32) float64
}

// Classify determines the §3.2 class of g empirically by probing it on the
// multiplicity grid [0,probe]². A function is:
//
//   - unilateral if it ignores one operand entirely,
//   - conjunctive if g(f,0) == g(0,f) == 0 for all f,
//   - disjunctive otherwise.
func Classify(g GFunc, probe uint32) Class {
	ignoresSecond, ignoresFirst := true, true
	conj := true
	for a := uint32(0); a <= probe; a++ {
		if g.G(a, 0) != 0 || g.G(0, a) != 0 {
			conj = false
		}
		for b := uint32(0); b <= probe; b++ {
			if g.G(a, b) != g.G(a, 0) {
				ignoresSecond = false
			}
			if g.G(a, b) != g.G(0, b) {
				ignoresFirst = false
			}
		}
	}
	if ignoresSecond || ignoresFirst {
		return Unilateral
	}
	if conj {
		return Conjunctive
	}
	return Disjunctive
}

// Common g functions from the paper's examples.
var (
	// GMin is min(fi, fj) — the multiset intersection contribution.
	GMin = GFunc{Name: "min", G: func(fi, fj uint32) float64 { return float64(min(fi, fj)) }}
	// GMax is max(fi, fj) — disjunctive (the paper rewrites Ruzicka to
	// avoid it).
	GMax = GFunc{Name: "max", G: func(fi, fj uint32) float64 { return float64(max(fi, fj)) }}
	// GFirst is the identity of the first operand — |Mi| contribution.
	GFirst = GFunc{Name: "first", G: func(fi, _ uint32) float64 { return float64(fi) }}
	// GSecond is the identity of the second operand — |Mj| contribution.
	GSecond = GFunc{Name: "second", G: func(_, fj uint32) float64 { return float64(fj) }}
	// GProduct is fi·fj — the dot-product contribution.
	GProduct = GFunc{Name: "product", G: func(fi, fj uint32) float64 { return float64(fi) * float64(fj) }}
	// GAbsDiff is |fi − fj| — the symmetric-difference contribution,
	// the canonical disjunctive example.
	GAbsDiff = GFunc{Name: "absdiff", G: func(fi, fj uint32) float64 {
		if fi > fj {
			return float64(fi - fj)
		}
		return float64(fj - fi)
	}}
)

// Spec is a measure in Eqn-1 form: L g functions (Σ-aggregated) and an F
// combiner over their aggregates.
type Spec struct {
	Name string
	G    []GFunc
	F    func(partials []float64) float64
}

// ErrDisjunctive is returned by Build for measures with a disjunctive g.
var ErrDisjunctive = errors.New("nsm: measure requires a disjunctive partial (union scan); unsupported by the join framework")

// Eval computes the similarity by brute force: it aggregates each g over
// the full union of elements, then applies F. It is the semantic ground
// truth for the partial-result optimizations.
func (s Spec) Eval(a, b multiset.Multiset) float64 {
	partials := make([]float64, len(s.G))
	i, j := 0, 0
	accum := func(fi, fj uint32) {
		for l, g := range s.G {
			partials[l] += g.G(fi, fj)
		}
	}
	for i < len(a.Entries) || j < len(b.Entries) {
		switch {
		case j >= len(b.Entries) || (i < len(a.Entries) && a.Entries[i].Elem < b.Entries[j].Elem):
			accum(a.Entries[i].Count, 0)
			i++
		case i >= len(a.Entries) || a.Entries[i].Elem > b.Entries[j].Elem:
			accum(0, b.Entries[j].Count)
			j++
		default:
			accum(a.Entries[i].Count, b.Entries[j].Count)
			i++
			j++
		}
	}
	return s.F(partials)
}

// Classes returns the classification of each g in the spec.
func (s Spec) Classes(probe uint32) []Class {
	out := make([]Class, len(s.G))
	for i, g := range s.G {
		out[i] = Classify(g, probe)
	}
	return out
}

// Build validates that the spec contains no disjunctive partials and wraps
// it as a similarity.Measure whose Sim evaluates the g functions from the
// generic UniStats/ConjStats partials when possible, falling back to an
// error otherwise.
//
// Build recognizes the five supported g shapes (min, product, first,
// second, and the constant-per-shared-element "common" indicator) by
// probing, so custom F combinations of the standard partials work.
func Build(s Spec) (similarity.Measure, error) {
	kinds := make([]partialKind, len(s.G))
	for i, g := range s.G {
		k, err := recognize(g)
		if err != nil {
			return nil, fmt.Errorf("g[%d] %q: %w", i, g.Name, err)
		}
		kinds[i] = k
	}
	return specMeasure{spec: s, kinds: kinds}, nil
}

type partialKind int

const (
	kindMin partialKind = iota
	kindProduct
	kindFirst
	kindSecond
	kindCommon // 1 per shared element: g(fi,fj)=1 iff fi>0 && fj>0
	kindFirstSq
	kindSecondSq
)

func recognize(g GFunc) (partialKind, error) {
	const probe = 6
	if Classify(g, probe) == Disjunctive {
		return 0, ErrDisjunctive
	}
	match := func(want func(fi, fj uint32) float64) bool {
		for a := uint32(0); a <= probe; a++ {
			for b := uint32(0); b <= probe; b++ {
				if g.G(a, b) != want(a, b) {
					return false
				}
			}
		}
		return true
	}
	switch {
	case match(func(fi, fj uint32) float64 { return float64(min(fi, fj)) }):
		return kindMin, nil
	case match(func(fi, fj uint32) float64 { return float64(fi) * float64(fj) }):
		return kindProduct, nil
	case match(func(fi, _ uint32) float64 { return float64(fi) }):
		return kindFirst, nil
	case match(func(_, fj uint32) float64 { return float64(fj) }):
		return kindSecond, nil
	case match(func(fi, _ uint32) float64 { return float64(fi) * float64(fi) }):
		return kindFirstSq, nil
	case match(func(_, fj uint32) float64 { return float64(fj) * float64(fj) }):
		return kindSecondSq, nil
	case match(func(fi, fj uint32) float64 {
		if fi > 0 && fj > 0 {
			return 1
		}
		return 0
	}):
		return kindCommon, nil
	default:
		return 0, errors.New("nsm: unrecognized g function (not expressible via generic partials)")
	}
}

type specMeasure struct {
	spec  Spec
	kinds []partialKind
}

func (m specMeasure) Name() string { return m.spec.Name }

func (m specMeasure) Sim(a, b similarity.UniStats, c similarity.ConjStats) float64 {
	partials := make([]float64, len(m.kinds))
	for i, k := range m.kinds {
		switch k {
		case kindMin:
			partials[i] = float64(c.SumMin)
		case kindProduct:
			partials[i] = float64(c.SumProd)
		case kindCommon:
			partials[i] = float64(c.Common)
		case kindFirst:
			partials[i] = float64(a.Card)
		case kindSecond:
			partials[i] = float64(b.Card)
		case kindFirstSq:
			partials[i] = float64(a.SumSq)
		case kindSecondSq:
			partials[i] = float64(b.SumSq)
		}
	}
	return m.spec.F(partials)
}

// RuzickaSpec is the paper's worked example: Ruzicka rewritten without its
// disjunctive max(·,·) as Σmin / (|Mi| + |Mj| − Σmin).
func RuzickaSpec() Spec {
	return Spec{
		Name: "ruzicka-eqn1",
		G:    []GFunc{GMin, GFirst, GSecond},
		F: func(p []float64) float64 {
			denom := p[1] + p[2] - p[0]
			if denom == 0 {
				return 0
			}
			return p[0] / denom
		},
	}
}

// NaiveRuzickaSpec is Ruzicka in its direct min/max form, which contains a
// disjunctive partial and is therefore rejected by Build (but Eval still
// works, as the ground truth).
func NaiveRuzickaSpec() Spec {
	return Spec{
		Name: "ruzicka-minmax",
		G:    []GFunc{GMin, GMax},
		F: func(p []float64) float64 {
			if p[1] == 0 {
				return 0
			}
			return p[0] / p[1]
		},
	}
}

// DiceSpec is multiset Dice in Eqn-1 form.
func DiceSpec() Spec {
	return Spec{
		Name: "dice-eqn1",
		G:    []GFunc{GMin, GFirst, GSecond},
		F: func(p []float64) float64 {
			denom := p[1] + p[2]
			if denom == 0 {
				return 0
			}
			return 2 * p[0] / denom
		},
	}
}
