package nsm

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"vsmartjoin/internal/multiset"
	"vsmartjoin/internal/similarity"
)

func randomMS(rng *rand.Rand, id multiset.ID) multiset.Multiset {
	n := rng.Intn(10)
	entries := make([]multiset.Entry, 0, n)
	for i := 0; i < n; i++ {
		entries = append(entries, multiset.Entry{
			Elem:  multiset.Elem(rng.Intn(12)),
			Count: uint32(rng.Intn(6)),
		})
	}
	return multiset.New(id, entries)
}

func TestClassification(t *testing.T) {
	cases := []struct {
		g    GFunc
		want Class
	}{
		{GMin, Conjunctive},
		{GProduct, Conjunctive},
		{GMax, Disjunctive},
		{GAbsDiff, Disjunctive},
		{GFirst, Unilateral},
		{GSecond, Unilateral},
	}
	for _, c := range cases {
		if got := Classify(c.g, 6); got != c.want {
			t.Errorf("Classify(%s) = %v, want %v", c.g.Name, got, c.want)
		}
	}
}

func TestClassStrings(t *testing.T) {
	if Unilateral.String() != "unilateral" || Conjunctive.String() != "conjunctive" ||
		Disjunctive.String() != "disjunctive" {
		t.Fatal("Class.String wrong")
	}
	if Class(42).String() == "" {
		t.Fatal("unknown class should still render")
	}
}

// The two Ruzicka formulations (min/max vs rewritten) agree on Eval.
func TestRuzickaRewriteEquivalence(t *testing.T) {
	direct := NaiveRuzickaSpec()
	rewritten := RuzickaSpec()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		a, b := randomMS(rng, 1), randomMS(rng, 2)
		d := direct.Eval(a, b)
		r := rewritten.Eval(a, b)
		if math.Abs(d-r) > 1e-12 {
			t.Fatalf("trial %d: direct %v vs rewritten %v (a=%v b=%v)", trial, d, r, a, b)
		}
	}
}

// Build rejects the min/max form (disjunctive) but accepts the rewrite.
func TestBuildRejectsDisjunctive(t *testing.T) {
	if _, err := Build(NaiveRuzickaSpec()); !errors.Is(err, ErrDisjunctive) {
		t.Fatalf("want ErrDisjunctive, got %v", err)
	}
	if _, err := Build(RuzickaSpec()); err != nil {
		t.Fatalf("rewritten Ruzicka should build: %v", err)
	}
}

// The built Eqn-1 measure agrees with the hand-optimized fast path and with
// brute-force Eval.
func TestBuiltMeasureMatchesFastPathRuzicka(t *testing.T) {
	m, err := Build(RuzickaSpec())
	if err != nil {
		t.Fatal(err)
	}
	spec := RuzickaSpec()
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 300; trial++ {
		a, b := randomMS(rng, 1), randomMS(rng, 2)
		got := similarity.Exact(m, a, b)
		fast := similarity.Exact(similarity.Ruzicka{}, a, b)
		ground := spec.Eval(a, b)
		if math.Abs(got-fast) > 1e-12 || math.Abs(got-ground) > 1e-12 {
			t.Fatalf("trial %d: built %v fast %v eval %v", trial, got, fast, ground)
		}
	}
}

func TestBuiltMeasureMatchesFastPathDice(t *testing.T) {
	m, err := Build(DiceSpec())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 300; trial++ {
		a, b := randomMS(rng, 1), randomMS(rng, 2)
		got := similarity.Exact(m, a, b)
		fast := similarity.Exact(similarity.MultisetDice{}, a, b)
		if math.Abs(got-fast) > 1e-12 {
			t.Fatalf("trial %d: built %v fast %v", trial, got, fast)
		}
	}
}

func TestSpecClasses(t *testing.T) {
	got := RuzickaSpec().Classes(6)
	want := []Class{Conjunctive, Unilateral, Unilateral}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("class %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestEvalSymmetricDifferenceSpec(t *testing.T) {
	// A disjunctive measure still evaluates by brute force; verify against
	// multiset.SymmetricDifference.
	spec := Spec{
		Name: "symdiff",
		G:    []GFunc{GAbsDiff},
		F:    func(p []float64) float64 { return p[0] },
	}
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 200; trial++ {
		a, b := randomMS(rng, 1), randomMS(rng, 2)
		got := spec.Eval(a, b)
		want := float64(multiset.SymmetricDifference(a, b))
		if got != want {
			t.Fatalf("trial %d: got %v want %v", trial, got, want)
		}
	}
}

func TestBuildUnrecognizedG(t *testing.T) {
	weird := Spec{
		Name: "weird",
		G: []GFunc{{
			Name: "min-squared",
			G:    func(fi, fj uint32) float64 { v := float64(min(fi, fj)); return v * v },
		}},
		F: func(p []float64) float64 { return p[0] },
	}
	if _, err := Build(weird); err == nil {
		t.Fatal("expected unrecognized-g error")
	}
}

func TestBuildVectorCosineFromSquares(t *testing.T) {
	spec := Spec{
		Name: "vector-cosine-eqn1",
		G: []GFunc{
			GProduct,
			{Name: "fi^2", G: func(fi, _ uint32) float64 { return float64(fi) * float64(fi) }},
			{Name: "fj^2", G: func(_, fj uint32) float64 { return float64(fj) * float64(fj) }},
		},
		F: func(p []float64) float64 {
			denom := math.Sqrt(p[1]) * math.Sqrt(p[2])
			if denom == 0 {
				return 0
			}
			return p[0] / denom
		},
	}
	m, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		a, b := randomMS(rng, 1), randomMS(rng, 2)
		got := similarity.Exact(m, a, b)
		fast := similarity.Exact(similarity.VectorCosine{}, a, b)
		if math.Abs(got-fast) > 1e-12 {
			t.Fatalf("trial %d: built %v fast %v", trial, got, fast)
		}
	}
}
