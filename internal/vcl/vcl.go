// Package vcl implements the paper's baseline: the VCL algorithm
// (Vernica, Carey, Li — SIGMOD 2010), a MapReduce adaptation of
// prefix-filtered set-similarity join, generalized to multisets through
// the expanded set representation (§6.2).
//
// The pipeline is:
//
//  1. frequency: count element frequencies (the alphabet ordering scan).
//  2. capsule: group raw tuples into whole-multiset records — VCL reads,
//     processes, and replicates entire multisets as indivisible capsules.
//  3. kernel: each mapper loads the full frequency-sorted alphabet into
//     memory, computes each multiset's prefix, and replicates the whole
//     multiset once per prefix element; each reducer computes the exact
//     similarity of every pair of capsules sharing that prefix element.
//  4. dedup: pairs are produced once per shared prefix element and
//     deduplicated in a postprocessing job.
//
// The structural inefficiencies the paper reports are faithfully present:
// the kernel map output is |Prefix(Mi)| × |U(Mi)| per multiset and cannot
// be combined away; the alphabet must fit in every mapper's memory (the
// HashOrder fallback removes the table, as the paper's modification did);
// whole multisets must fit in memory.
package vcl

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"vsmartjoin/internal/codec"
	"vsmartjoin/internal/mr"
	"vsmartjoin/internal/mrfs"
	"vsmartjoin/internal/multiset"
	"vsmartjoin/internal/records"
	"vsmartjoin/internal/similarity"
)

// Counter names exported by the VCL pipeline.
const (
	CounterReplicatedTuples = "vcl:replicated_tuples" // capsule copies emitted by the kernel map
	CounterPairsComputed    = "vcl:pairs_computed"    // pairwise similarity evaluations (pre-dedup)
	CounterDedupedPairs     = "vcl:deduped_pairs"
)

// Config parameterizes a VCL run.
type Config struct {
	// Measure must be Ruzicka (multisets, via expansion) or Jaccard
	// (underlying sets): the prefix bound is only valid for them.
	Measure similarity.Measure
	// Threshold is the similarity cut-off t.
	Threshold float64
	// HashOrder orders the alphabet by hash signature instead of
	// frequency, removing the in-memory frequency table — the paper's
	// modification for alphabets that do not fit in memory.
	HashOrder bool
	// NumReducers overrides the reduce task count (0 = cluster machines).
	NumReducers int
}

// Result is the outcome of a VCL run.
type Result struct {
	Pairs  []records.Pair
	Output *mrfs.Dataset
	Stats  mr.PipelineStats
	// KernelMapSeconds is the kernel job's map-stage simulated time — the
	// paper reports ≥86% of VCL's total run time is spent there.
	KernelMapSeconds float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Measure == nil {
		return errors.New("vcl: Config.Measure is required")
	}
	switch c.Measure.(type) {
	case similarity.Ruzicka, similarity.Jaccard:
	default:
		return fmt.Errorf("vcl: measure %q unsupported (prefix bound requires ruzicka or jaccard)", c.Measure.Name())
	}
	if c.Threshold <= 0 || c.Threshold > 1 {
		return fmt.Errorf("vcl: threshold %v outside (0,1]", c.Threshold)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Job 1: element frequencies
// ---------------------------------------------------------------------------

type freqMapper struct{}

func (freqMapper) Map(_ *mr.TaskContext, rec mrfs.Record, emit mr.Emitter) error {
	entry, err := records.DecodeRawVal(rec.Val)
	if err != nil {
		return err
	}
	if entry.Count == 0 {
		return nil
	}
	var b codec.Buffer
	b.PutUvarint(uint64(entry.Elem))
	var one codec.Buffer
	one.PutUvarint(1)
	emit.Emit(b.Clone(), one.Clone())
	return nil
}

type freqSumReducer struct{}

func (freqSumReducer) Reduce(_ *mr.TaskContext, key []byte, values *mr.Values, emit mr.Emitter) error {
	var total uint64
	for {
		v, ok := values.Next()
		if !ok {
			break
		}
		r := codec.NewReader(v.Val)
		total += r.Uvarint()
		if err := r.Err(); err != nil {
			return err
		}
	}
	var b codec.Buffer
	b.PutUvarint(total)
	emit.Emit(key, b.Clone())
	return nil
}

func frequencyJob(input *mrfs.Dataset, numReducers int) mr.Job {
	return mr.Job{
		Name:        "vcl-frequency",
		Input:       input,
		Mapper:      freqMapper{},
		Combiner:    freqSumReducer{},
		Reducer:     freqSumReducer{},
		NumReducers: numReducers,
		OutputName:  "vcl-freqs",
	}
}

// ---------------------------------------------------------------------------
// Job 2: capsules (whole multisets as single records)
// ---------------------------------------------------------------------------

func encodeCapsule(entries []multiset.Entry) []byte {
	var b codec.Buffer
	b.PutUvarint(uint64(len(entries)))
	for _, e := range entries {
		b.PutUvarint(uint64(e.Elem))
		b.PutUint32(e.Count)
	}
	return b.Clone()
}

func decodeCapsule(val []byte) ([]multiset.Entry, error) {
	r := codec.NewReader(val)
	n := r.Uvarint()
	out := make([]multiset.Entry, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, multiset.Entry{Elem: multiset.Elem(r.Uvarint()), Count: r.Uint32()})
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("vcl: bad capsule: %w", err)
	}
	return out, nil
}

// capsuleReducer buffers a whole multiset — VCL's indivisible unit — in
// memory and emits it as one record.
type capsuleReducer struct{}

func (capsuleReducer) Reduce(ctx *mr.TaskContext, key []byte, values *mr.Values, emit mr.Emitter) error {
	if err := ctx.Reserve(values.Bytes()); err != nil {
		id, _ := records.DecodeRawKey(key)
		return fmt.Errorf("vcl: multiset %d does not fit in memory as a capsule: %w", id, err)
	}
	defer ctx.Release(values.Bytes())
	entries := make([]multiset.Entry, 0, values.Len())
	for {
		v, ok := values.Next()
		if !ok {
			break
		}
		e, err := records.DecodeRawVal(v.Val)
		if err != nil {
			return err
		}
		if e.Count > 0 {
			entries = append(entries, e)
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Elem < entries[j].Elem })
	emit.Emit(key, encodeCapsule(entries))
	return nil
}

func capsuleJob(input *mrfs.Dataset, numReducers int) mr.Job {
	return mr.Job{
		Name:        "vcl-capsule",
		Input:       input,
		Mapper:      mr.IdentityMapper{},
		Reducer:     capsuleReducer{},
		NumReducers: numReducers,
		OutputName:  "vcl-capsules",
	}
}

// ---------------------------------------------------------------------------
// Job 3: kernel (prefix replication + pairwise verification)
// ---------------------------------------------------------------------------

// expandedItem is one item of a multiset's expanded set representation,
// carrying its global sort rank.
type expandedItem struct {
	elem multiset.Elem
	copy uint32
	rank uint64
}

// hashRank is the hash-signature ordering (SplitMix64 finalizer).
func hashRank(e multiset.Elem, copy uint32) uint64 {
	x := uint64(e)*0x100000001b3 + uint64(copy) + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// kernelMapper replicates each multiset capsule once per prefix element of
// its expanded set representation (mapVCL).
type kernelMapper struct {
	threshold float64
	hashOrder bool
	jaccard   bool // binarize counts (underlying sets)
	freqs     map[multiset.Elem]uint64
}

func (m *kernelMapper) Setup(ctx *mr.TaskContext) error {
	if m.hashOrder {
		return nil
	}
	// Load the full alphabet, frequency-sorted, into memory — the paper's
	// scalability bottleneck. The engine has already charged the side
	// bytes against the memory budget.
	freqDS, ok := ctx.Side["vcl-freqs"]
	if !ok {
		return errors.New("vcl: kernel mapper missing frequency side input")
	}
	m.freqs = make(map[multiset.Elem]uint64, freqDS.NumRecords())
	for _, rec := range freqDS.All() {
		r := codec.NewReader(rec.Key)
		elem := multiset.Elem(r.Uvarint())
		if err := r.Err(); err != nil {
			return err
		}
		v := codec.NewReader(rec.Val)
		m.freqs[elem] = v.Uvarint()
		if err := v.Err(); err != nil {
			return err
		}
	}
	return nil
}

func (m *kernelMapper) Map(ctx *mr.TaskContext, rec mrfs.Record, emit mr.Emitter) error {
	entries, err := decodeCapsule(rec.Val)
	if err != nil {
		return err
	}
	if m.jaccard {
		for i := range entries {
			entries[i].Count = 1
		}
	}
	// Expanded set representation, each item with its global rank.
	var items []expandedItem
	for _, e := range entries {
		for c := uint32(1); c <= e.Count; c++ {
			var rank uint64
			if m.hashOrder {
				rank = hashRank(e.Elem, c)
			} else {
				// (frequency, copy desc, elem) packed: rarer first. Copies
				// beyond the first are rarer than the element itself.
				rank = m.freqs[e.Elem]<<16 | uint64(c&0xffff)
			}
			items = append(items, expandedItem{elem: e.Elem, copy: c, rank: rank})
		}
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].rank != items[j].rank {
			return items[i].rank < items[j].rank
		}
		if items[i].elem != items[j].elem {
			return items[i].elem < items[j].elem
		}
		return items[i].copy < items[j].copy
	})
	size := len(items)
	if size == 0 {
		return nil
	}
	p := size - int(math.Ceil(m.threshold*float64(size)-1e-9)) + 1
	if p < 1 {
		p = 1
	}
	if p > size {
		p = size
	}
	for i := 0; i < p; i++ {
		var b codec.Buffer
		b.PutUvarint(uint64(items[i].elem))
		b.PutUint32(items[i].copy)
		// The whole multiset rides along with every prefix element: key
		// carries the multiset id so the reducer can reconstruct it.
		var v codec.Buffer
		v.PutRaw(rec.Key)
		v.PutByte(0)
		v.PutRaw(rec.Val)
		emit.Emit(b.Clone(), v.Clone())
		ctx.Counters.Inc(CounterReplicatedTuples)
	}
	return nil
}

// kernelReducer computes the exact similarity of every pair of capsules
// sharing a prefix element (reduceVCL). The whole list must fit in memory.
type kernelReducer struct {
	measure   similarity.Measure
	threshold float64
}

func (r kernelReducer) Reduce(ctx *mr.TaskContext, key []byte, values *mr.Values, emit mr.Emitter) error {
	if err := ctx.Reserve(values.Bytes()); err != nil {
		return fmt.Errorf("vcl: kernel reduce list does not fit in memory: %w", err)
	}
	defer ctx.Release(values.Bytes())
	type capsule struct {
		id  multiset.ID
		set multiset.Multiset
		uni similarity.UniStats
	}
	var caps []capsule
	for {
		v, ok := values.Next()
		if !ok {
			break
		}
		// Value layout: raw key bytes, 0 separator... the raw key is a
		// uvarint with no embedded zero byte except the value 0 itself;
		// decode defensively via a reader instead.
		rd := codec.NewReader(v.Val)
		id := multiset.ID(rd.Uvarint())
		if rd.Byte() != 0 {
			return errors.New("vcl: bad kernel value separator")
		}
		rest := v.Val[len(v.Val)-rd.Remaining():]
		entries, err := decodeCapsule(rest)
		if err != nil {
			return err
		}
		ms := multiset.Multiset{ID: id, Entries: entries}
		caps = append(caps, capsule{id: id, set: ms, uni: similarity.UniOf(ms)})
	}
	for i := 0; i < len(caps); i++ {
		for j := i + 1; j < len(caps); j++ {
			if caps[i].id == caps[j].id {
				continue
			}
			conj := similarity.ConjOf(caps[i].set, caps[j].set)
			sim := r.measure.Sim(caps[i].uni, caps[j].uni, conj)
			ctx.Counters.Inc(CounterPairsComputed)
			// A pairwise merge scans both capsules — work the engine
			// cannot see from record counts alone.
			ctx.ChargeCompute(1 + int64(len(caps[i].set.Entries)+len(caps[j].set.Entries))/16)
			if sim+1e-12 >= r.threshold {
				a, b := caps[i].id, caps[j].id
				if a > b {
					a, b = b, a
				}
				emit.Emit(records.EncodePairKey(a, b), records.EncodePairVal(sim))
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Job 4: dedup
// ---------------------------------------------------------------------------

type dedupReducer struct{}

func (dedupReducer) Reduce(ctx *mr.TaskContext, key []byte, values *mr.Values, emit mr.Emitter) error {
	v, ok := values.Next()
	if !ok {
		return nil
	}
	emit.Emit(key, v.Val)
	ctx.Counters.Inc(CounterDedupedPairs)
	return nil
}

func dedupJob(input *mrfs.Dataset, numReducers int) mr.Job {
	return mr.Job{
		Name:        "vcl-dedup",
		Input:       input,
		Mapper:      mr.IdentityMapper{},
		Reducer:     dedupReducer{},
		NumReducers: numReducers,
		OutputName:  "vcl-pairs",
	}
}

// Join runs the full VCL pipeline on a raw-tuple dataset.
func Join(cluster mr.ClusterConfig, input *mrfs.Dataset, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	_, isJaccard := cfg.Measure.(similarity.Jaccard)
	res := &Result{}

	var freqs *mrfs.Dataset
	if !cfg.HashOrder {
		f, stats, err := mr.Run(cluster, frequencyJob(input, cfg.NumReducers))
		if err != nil {
			return nil, err
		}
		res.Stats.Add(stats)
		freqs = f
	}

	capsules, stats, err := mr.Run(cluster, capsuleJob(input, cfg.NumReducers))
	if err != nil {
		return nil, err
	}
	res.Stats.Add(stats)

	kernel := mr.Job{
		Name:  "vcl-kernel",
		Input: capsules,
		Mapper: &kernelMapper{
			threshold: cfg.Threshold,
			hashOrder: cfg.HashOrder,
			jaccard:   isJaccard,
		},
		Reducer:     kernelReducer{measure: cfg.Measure, threshold: cfg.Threshold},
		NumReducers: cfg.NumReducers,
		OutputName:  "vcl-kernel-pairs",
	}
	if !cfg.HashOrder {
		kernel.SideInputs = map[string]*mrfs.Dataset{"vcl-freqs": freqs}
	}
	kernelOut, kstats, err := mr.Run(cluster, kernel)
	if err != nil {
		return nil, err
	}
	res.Stats.Add(kstats)
	res.KernelMapSeconds = kstats.MapSeconds + kstats.StartupSeconds

	out, dstats, err := mr.Run(cluster, dedupJob(kernelOut, cfg.NumReducers))
	if err != nil {
		return nil, err
	}
	res.Stats.Add(dstats)
	res.Output = out

	pairs, err := records.DecodePairs(out)
	if err != nil {
		return nil, err
	}
	res.Pairs = pairs
	return res, nil
}
