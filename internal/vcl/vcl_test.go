package vcl

import (
	"errors"
	"math/rand"
	"testing"

	"vsmartjoin/internal/mr"
	"vsmartjoin/internal/multiset"
	"vsmartjoin/internal/ppjoin"
	"vsmartjoin/internal/records"
	"vsmartjoin/internal/similarity"
)

func testCluster(machines int) mr.ClusterConfig {
	return mr.NewCluster(machines, 1<<20)
}

func randomMultisets(rng *rand.Rand, n, alphabet, maxLen, maxCount int) []multiset.Multiset {
	sets := make([]multiset.Multiset, 0, n)
	for i := 0; i < n; i++ {
		l := 1 + rng.Intn(maxLen)
		entries := make([]multiset.Entry, l)
		for j := range entries {
			entries[j] = multiset.Entry{
				Elem:  multiset.Elem(rng.Intn(alphabet)),
				Count: uint32(1 + rng.Intn(maxCount)),
			}
		}
		sets = append(sets, multiset.New(multiset.ID(i+1), entries))
	}
	return sets
}

func TestVCLMatchesNaiveRuzicka(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		sets := randomMultisets(rng, 50, 40, 8, 3)
		input := records.BuildInput("in", sets, 5)
		for _, thr := range []float64{0.3, 0.5, 0.8} {
			want := ppjoin.Naive(sets, similarity.Ruzicka{}, thr)
			res, err := Join(testCluster(4), input, Config{
				Measure: similarity.Ruzicka{}, Threshold: thr,
			})
			if err != nil {
				t.Fatalf("trial %d t=%v: %v", trial, thr, err)
			}
			if !records.SamePairs(res.Pairs, want, 1e-9) {
				t.Fatalf("trial %d t=%v: got %d want %d pairs\ngot: %v\nwant: %v",
					trial, thr, len(res.Pairs), len(want), res.Pairs, want)
			}
		}
	}
}

func TestVCLMatchesNaiveJaccard(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sets := randomMultisets(rng, 60, 30, 10, 4)
	input := records.BuildInput("in", sets, 4)
	for _, thr := range []float64{0.4, 0.7} {
		want := ppjoin.Naive(sets, similarity.Jaccard{}, thr)
		res, err := Join(testCluster(3), input, Config{
			Measure: similarity.Jaccard{}, Threshold: thr,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !records.SamePairs(res.Pairs, want, 1e-9) {
			t.Fatalf("t=%v: got %d want %d pairs", thr, len(res.Pairs), len(want))
		}
	}
}

func TestVCLHashOrderMatchesFrequencyOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	sets := randomMultisets(rng, 40, 25, 8, 3)
	input := records.BuildInput("in", sets, 4)
	freq, err := Join(testCluster(3), input, Config{Measure: similarity.Ruzicka{}, Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	hash, err := Join(testCluster(3), input, Config{Measure: similarity.Ruzicka{}, Threshold: 0.5, HashOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	if !records.SamePairs(freq.Pairs, hash.Pairs, 1e-9) {
		t.Fatalf("hash order changed results: %d vs %d", len(hash.Pairs), len(freq.Pairs))
	}
	// Hash order skips the frequency job.
	if len(hash.Stats.Jobs) != len(freq.Stats.Jobs)-1 {
		t.Fatalf("job counts: hash %d, freq %d", len(hash.Stats.Jobs), len(freq.Stats.Jobs))
	}
}

func TestVCLAlphabetOOMAndHashOrderFallback(t *testing.T) {
	// A huge alphabet makes the frequency table exceed mapper memory; the
	// hash-order variant has no table and survives.
	rng := rand.New(rand.NewSource(17))
	var sets []multiset.Multiset
	for i := 1; i <= 150; i++ {
		entries := make([]multiset.Entry, 6)
		for j := range entries {
			entries[j] = multiset.Entry{Elem: multiset.Elem(rng.Intn(4000)), Count: 1}
		}
		sets = append(sets, multiset.New(multiset.ID(i), entries))
	}
	input := records.BuildInput("in", sets, 4)
	cl := mr.NewCluster(4, 4000)
	_, err := Join(cl, input, Config{Measure: similarity.Ruzicka{}, Threshold: 0.5})
	if !errors.Is(err, mr.ErrOutOfMemory) {
		t.Fatalf("want ErrOutOfMemory, got %v", err)
	}
	res, err := Join(cl, input, Config{Measure: similarity.Ruzicka{}, Threshold: 0.5, HashOrder: true})
	if err != nil {
		t.Fatalf("hash order should survive: %v", err)
	}
	want := ppjoin.Naive(sets, similarity.Ruzicka{}, 0.5)
	if !records.SamePairs(res.Pairs, want, 1e-9) {
		t.Fatalf("hash order wrong: got %d want %d", len(res.Pairs), len(want))
	}
}

func TestVCLCapsuleOOM(t *testing.T) {
	// One multiset too large to buffer as a capsule kills the run — the
	// paper's "whole multisets must fit in memory" limitation.
	var entries []multiset.Entry
	for i := 0; i < 500; i++ {
		entries = append(entries, multiset.Entry{Elem: multiset.Elem(i), Count: 1})
	}
	sets := []multiset.Multiset{multiset.New(1, entries), multiset.New(2, entries[:3])}
	input := records.BuildInput("in", sets, 2)
	cl := mr.NewCluster(2, 2000)
	_, err := Join(cl, input, Config{Measure: similarity.Ruzicka{}, Threshold: 0.5, HashOrder: true})
	if !errors.Is(err, mr.ErrOutOfMemory) {
		t.Fatalf("want ErrOutOfMemory, got %v", err)
	}
}

func TestVCLReplicationGrowsAsThresholdDrops(t *testing.T) {
	// Fig 4's driver: prefixes lengthen as t falls, so the kernel map
	// replicates more.
	rng := rand.New(rand.NewSource(19))
	sets := randomMultisets(rng, 60, 40, 10, 3)
	input := records.BuildInput("in", sets, 4)
	rep := func(thr float64) int64 {
		res, err := Join(testCluster(4), input, Config{Measure: similarity.Ruzicka{}, Threshold: thr})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Counter(CounterReplicatedTuples)
	}
	low := rep(0.1)
	high := rep(0.9)
	if low <= high {
		t.Fatalf("replication should grow as t drops: t=0.1→%d t=0.9→%d", low, high)
	}
	if low < 3*high {
		t.Fatalf("expected strong threshold dependence: t=0.1→%d t=0.9→%d", low, high)
	}
}

func TestVCLDedup(t *testing.T) {
	// Two nearly identical multisets share many prefix elements → the
	// kernel computes their pair repeatedly, dedup emits it once.
	a := multiset.New(1, []multiset.Entry{
		{Elem: 1, Count: 1}, {Elem: 2, Count: 1}, {Elem: 3, Count: 1}, {Elem: 4, Count: 1}, {Elem: 5, Count: 1}})
	b := multiset.New(2, []multiset.Entry{
		{Elem: 1, Count: 1}, {Elem: 2, Count: 1}, {Elem: 3, Count: 1}, {Elem: 4, Count: 1}, {Elem: 6, Count: 1}})
	input := records.BuildInput("in", []multiset.Multiset{a, b}, 2)
	res, err := Join(testCluster(2), input, Config{Measure: similarity.Ruzicka{}, Threshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 1 {
		t.Fatalf("want 1 deduped pair, got %v", res.Pairs)
	}
	if res.Stats.Counter(CounterPairsComputed) <= 1 {
		t.Fatalf("expected redundant pair computations, got %d", res.Stats.Counter(CounterPairsComputed))
	}
}

func TestVCLConfigValidation(t *testing.T) {
	input := records.BuildInput("in", nil, 1)
	bad := []Config{
		{},
		{Measure: similarity.MultisetDice{}, Threshold: 0.5},
		{Measure: similarity.Ruzicka{}, Threshold: 0},
		{Measure: similarity.Ruzicka{}, Threshold: 1.2},
	}
	for i, cfg := range bad {
		if _, err := Join(testCluster(1), input, cfg); err == nil {
			t.Fatalf("case %d should fail validation", i)
		}
	}
}

func TestVCLKernelMapDominates(t *testing.T) {
	// The paper: ≥86% of VCL's run time is the kernel map phase. Verify
	// the kernel map is at least the largest single component on a
	// modestly skewed workload.
	rng := rand.New(rand.NewSource(23))
	var sets []multiset.Multiset
	for i := 1; i <= 200; i++ {
		l := 3 + rng.Intn(10)
		if i%40 == 0 {
			l = 120 // a few big multisets — the replication bottleneck
		}
		entries := make([]multiset.Entry, l)
		for j := range entries {
			entries[j] = multiset.Entry{Elem: multiset.Elem(rng.Intn(800)), Count: uint32(1 + rng.Intn(3))}
		}
		sets = append(sets, multiset.New(multiset.ID(i), entries))
	}
	input := records.BuildInput("in", sets, 8)
	res, err := Join(testCluster(8), input, Config{Measure: similarity.Ruzicka{}, Threshold: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if res.KernelMapSeconds <= 0 {
		t.Fatal("kernel map seconds not recorded")
	}
	kernel, ok := res.Stats.Job("vcl-kernel")
	if !ok {
		t.Fatal("kernel job stats missing")
	}
	if kernel.MapSeconds < kernel.ReduceSeconds/4 {
		t.Fatalf("kernel map unexpectedly cheap: map=%v reduce=%v", kernel.MapSeconds, kernel.ReduceSeconds)
	}
}
