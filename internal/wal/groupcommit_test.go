package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestAppendBatchRoundTrip(t *testing.T) {
	dir := t.TempDir()
	_, l := collect(t, dir, "ruzicka")
	batch := []Record{
		addRec("ip-1", Element{"a", 3}),
		addRec("ip-2", Element{"b", 1}, Element{"c", 2}),
		removeRec("ip-1"),
		addRec("ip-1", Element{"d", 7}),
	}
	if err := l.AppendBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if err := l.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(addRec("ip-3", Element{"e", 1})); err != nil {
		t.Fatal(err)
	}
	closeLog(t, l)

	want := append(append([]Record{}, batch...), addRec("ip-3", Element{"e", 1}))
	got, l2 := collect(t, dir, "ruzicka")
	defer closeLog(t, l2)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	m := l2.Metrics()
	if n := m.Records.Load(); n != 0 {
		t.Fatalf("reopened log should start Records at 0, got %d", n)
	}
}

func TestAppendBatchRejectsBadOpWithoutWriting(t *testing.T) {
	dir := t.TempDir()
	_, l := collect(t, dir, "jaccard")
	if err := l.Append(addRec("keep", Element{"x", 1})); err != nil {
		t.Fatal(err)
	}
	bad := []Record{
		addRec("drop-1", Element{"y", 1}),
		{Op: 99, Entity: "drop-2"},
	}
	if err := l.AppendBatch(bad); err == nil {
		t.Fatal("batch with bad op accepted")
	}
	closeLog(t, l)
	// All-or-nothing: the good prefix of the failed batch must not have
	// reached the file.
	got, l2 := collect(t, dir, "jaccard")
	defer closeLog(t, l2)
	if len(got) != 1 || got[0].Entity != "keep" {
		t.Fatalf("after failed batch: %+v", got)
	}
}

// TestTornBatchRecoversPrefix crashes mid-batch: the frames of one
// AppendBatch hit the disk as a contiguous stream, so a machine crash
// can shear the stream anywhere. Recovery must keep the intact prefix
// of the batch and truncate the rest.
func TestTornBatchRecoversPrefix(t *testing.T) {
	dir := t.TempDir()
	_, l := collect(t, dir, "ruzicka")
	batch := []Record{
		addRec("a", Element{"x", 1}),
		addRec("b", Element{"y", 2}),
		addRec("c", Element{"z", 3}),
	}
	if err := l.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	closeLog(t, l)

	// Shear the last record's frame: drop 2 bytes from the file tail.
	path := filepath.Join(dir, walName(1))
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-2); err != nil {
		t.Fatal(err)
	}

	got, l2 := collect(t, dir, "ruzicka")
	defer closeLog(t, l2)
	if !reflect.DeepEqual(got, batch[:2]) {
		t.Fatalf("torn batch: got %+v, want prefix %+v", got, batch[:2])
	}
}

// TestGroupCommitCoalescesFsyncs drives a sync-mode log from many
// goroutines and checks both durability bookkeeping and amortization:
// every acknowledged record must be covered by the ledger, and the
// fsync count must be far below the record count.
func TestGroupCommitCoalescesFsyncs(t *testing.T) {
	dir := t.TempDir()
	apply := func(Record) error { return nil }
	l, err := Open(dir, "ruzicka", apply, apply, WithGroupCommit(500*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	const writers, each = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				rec := addRec("e", Element{"x", uint32(w*each + i + 1)})
				if i%10 == 0 {
					if err := l.AppendBatch([]Record{rec, rec}); err != nil {
						t.Error(err)
						return
					}
					continue
				}
				if err := l.Append(rec); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	m := l.Metrics()
	records := m.Records.Load()
	fsyncs := int64(m.Fsync.Snapshot().Count)
	if records == 0 || fsyncs == 0 {
		t.Fatalf("metrics not recorded: records=%d fsyncs=%d", records, fsyncs)
	}
	// Acknowledged means covered: every append returned, so the ledger
	// must have caught up with the sequence counter.
	l.gmu.Lock()
	synced := l.synced
	l.gmu.Unlock()
	l.mu.Lock()
	seq := l.seq
	l.mu.Unlock()
	if synced != seq {
		t.Fatalf("acknowledged %d records but ledger covers %d", seq, synced)
	}
	if fsyncs*2 > records {
		t.Fatalf("group commit did not amortize: %d fsyncs for %d records", fsyncs, records)
	}
	if gc := m.GroupCommit.Snapshot(); gc.Sum != uint64(seq) {
		t.Fatalf("GroupCommit histogram covers %d records, want %d", gc.Sum, seq)
	}
	closeLog(t, l)

	got, l2 := collect(t, dir, "ruzicka")
	defer closeLog(t, l2)
	if int64(len(got)) != records {
		t.Fatalf("replayed %d records, appended %d", len(got), records)
	}
}

// TestGroupCommitCloseReleasesWaiters closes a sync-mode log while
// appenders race it; every appender must return (acknowledged durable
// or refused), never hang on the commit ledger.
func TestGroupCommitCloseReleasesWaiters(t *testing.T) {
	dir := t.TempDir()
	apply := func(Record) error { return nil }
	// A long window maximizes the chance appenders are parked waiting
	// for the committer when Close runs.
	l, err := Open(dir, "ruzicka", apply, apply, WithGroupCommit(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				// Errors are expected once Close wins the race; hanging
				// is the failure mode under test.
				if l.Append(addRec("e", Element{"x", 1})) != nil {
					return
				}
			}
		}(w)
	}
	time.Sleep(time.Millisecond)
	closeLog(t, l)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("appenders still blocked after Close")
	}
	if err := l.Append(addRec("e", Element{"x", 1})); err == nil {
		t.Fatal("append accepted after Close")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestGroupCommitSnapshotRotation checks a snapshot under group commit
// counts as a commit (the fsynced snapshot captures all appended
// records) and that appends keep flowing after rotation.
func TestGroupCommitSnapshotRotation(t *testing.T) {
	dir := t.TempDir()
	apply := func(Record) error { return nil }
	l, err := Open(dir, "ruzicka", apply, apply, WithGroupCommit(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch([]Record{addRec("a", Element{"x", 1}), addRec("b", Element{"y", 2})}); err != nil {
		t.Fatal(err)
	}
	err = l.Snapshot(func(emit func(Record) error) error {
		if err := emit(addRec("a", Element{"x", 1})); err != nil {
			return err
		}
		return emit(addRec("b", Element{"y", 2}))
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(addRec("c", Element{"z", 3})); err != nil {
		t.Fatal(err)
	}
	closeLog(t, l)

	got, l2 := collect(t, dir, "ruzicka")
	defer closeLog(t, l2)
	if len(got) != 3 || got[2].Entity != "c" {
		t.Fatalf("after rotation: %+v", got)
	}
}
