package wal

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"vsmartjoin/internal/codec"
	"vsmartjoin/internal/frame"
)

// fuzzWALBytes encodes records the way Append frames them, for seeds.
func fuzzWALBytes(recs []Record) []byte {
	var out []byte
	buf := codec.NewBuffer(128)
	for _, rec := range recs {
		buf.Reset()
		if err := encodeRecord(buf, rec); err != nil {
			panic(err)
		}
		var err error
		if out, err = frame.Append(out, buf.Bytes()); err != nil {
			panic(err)
		}
	}
	return out
}

// FuzzWALFrameDecode feeds arbitrary bytes to the WAL recovery path as a
// generation-1 log file. Whatever the bytes, Open must neither panic nor
// error (a WAL tail is allowed to be arbitrarily torn): it replays the
// intact prefix, truncates the rest, and a second Open must replay
// exactly the same records from the now-clean file — the recovery
// idempotence the crash model depends on.
func FuzzWALFrameDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0x7f, 0x01}) // frame length far past EOF
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Add(fuzzWALBytes([]Record{
		{Op: OpAdd, ID: 7, Entity: "ip-1", Elements: []Element{{"a", 3}, {"", 1}}},
		{Op: OpRemove, Entity: "ip-1"},
	}))
	// An intact record followed by a checksum-valid frame whose payload
	// does not decode (unknown op): the undecodable frame is a torn tail.
	good := fuzzWALBytes([]Record{{Op: OpAdd, ID: 1, Entity: "keep"}})
	bogus, err := frame.Append(nil, []byte{99, 1, 'x'})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(append(append([]byte{}, good...), bogus...))
	// A torn length prefix after a valid record.
	//lint:vsmart-allow framesafety seeds the corpus with a raw torn length prefix to steer the fuzzer at recovery
	f.Add(append(append([]byte{}, good...), binary.AppendUvarint(nil, 1<<20)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		//lint:vsmart-allow framesafety the fuzz target plants arbitrary bytes as a WAL file to attack recovery
		if err := os.WriteFile(filepath.Join(dir, walName(1)), data, 0o600); err != nil {
			t.Fatal(err)
		}
		var first []Record
		l, err := Open(dir, "ruzicka",
			func(Record) error { t.Fatal("no snapshot exists"); return nil },
			func(rec Record) error { first = append(first, rec); return nil })
		if err != nil {
			t.Fatalf("open over torn wal: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		// Every accepted record must re-encode: recovery feeds these back
		// through Append on the next snapshot cycle.
		for i, rec := range first {
			if rec.Op != OpAdd && rec.Op != OpRemove {
				t.Fatalf("record %d: impossible op %d", i, rec.Op)
			}
			buf := codec.NewBuffer(64)
			if err := encodeRecord(buf, rec); err != nil {
				t.Fatalf("record %d does not re-encode: %v", i, err)
			}
			back, err := decodeRecord(buf.Bytes())
			if err != nil || !reflect.DeepEqual(normalize(rec), normalize(back)) {
				t.Fatalf("record %d does not round-trip: %+v vs %+v (%v)", i, rec, back, err)
			}
		}
		// The file was truncated to its intact prefix: reopening replays
		// identical records with nothing further to drop.
		var second []Record
		l2, err := Open(dir, "ruzicka",
			func(Record) error { return nil },
			func(rec Record) error { second = append(second, rec); return nil })
		if err != nil {
			t.Fatalf("second open: %v", err)
		}
		defer closeLog(t, l2)
		if !reflect.DeepEqual(first, second) {
			t.Fatalf("recovery not idempotent:\nfirst  %+v\nsecond %+v", first, second)
		}
	})
}

// normalize maps nil and empty element slices together: the decoder
// always allocates, the encoder accepts both.
func normalize(rec Record) Record {
	if len(rec.Elements) == 0 {
		rec.Elements = nil
	}
	return rec
}
