// Package wal persists the online index: an append-only write-ahead log
// of Add/Remove records plus periodic full snapshots, so a serving
// process killed at any point restarts into exactly its prior state.
//
// On disk a log directory holds at most one generation of two files,
// "snap-<gen>" and "wal-<gen>". A snapshot is the full entity set at the
// moment it was cut; the WAL of the same generation holds every mutation
// logged since. Snapshot writes go through a temp file and an atomic
// rename, then a fresh (empty) WAL of the next generation is created and
// the previous generation is deleted — so recovery never has to reason
// about a half-written snapshot under its final name.
//
// A sharded index keeps one such directory per shard ("shard-000",
// "shard-001", ...) under its data dir; ShardDirName and CountShardDirs
// define that layout for both the serving path (vsmartjoin.Index) and
// the offline bulk builder (internal/build), which writes a generation-1
// snapshot per shard directly with WriteSnapshot so a cold start loads
// files instead of replaying per-record appends.
//
// Both files are sequences of internal/frame frames: a uvarint payload
// length, a fixed 4-byte CRC-32C of the payload, and the payload itself
// — the same framing (and the same MaxFrameLen hardening) as the
// MapReduce segment files, so a corrupt length prefix fails cleanly
// instead of driving a giant allocation.
//
// Recovery (Open) loads the newest snapshot, replays the matching WAL,
// and truncates the WAL at the first torn or corrupt frame — the
// expected shape of a crash mid-append. Corruption inside a snapshot is
// a hard error instead: snapshots are renamed into place only after an
// fsync, so a bad one means real damage the caller must see.
//
// Durability granularity: Append and AppendBatch push frames to the
// operating system on every call but by default do not fsync; Snapshot
// and Close do. A machine (not process) crash can therefore lose the
// tail of the current WAL, never a snapshot that Open has once
// returned. Opening with WithGroupCommit upgrades that: appends do not
// return until an fsync covers them, and a committer goroutine
// coalesces the fsyncs of concurrent appenders into one — the classic
// group commit, one fsync amortized over every record written since
// the previous one. A torn tail then still truncates to the last
// intact frame, but everything an append call has acknowledged is
// below that point even across a machine crash.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"vsmartjoin/internal/codec"
	"vsmartjoin/internal/frame"
	"vsmartjoin/internal/metrics"
)

// MaxFrameLen caps a single log or snapshot frame, re-exported from the
// shared framing layer: legitimate records are a name and a bag of
// elements, far below it, so a larger prefix can only be corruption.
const MaxFrameLen = frame.MaxFrameLen

// snapMagic heads every snapshot file, versioned so a future format can
// be told apart from corruption. v2 added the entity ID to every record
// (the shard-routing key of the per-shard layout).
const snapMagic = "vsmartjoin-snap-v2"

// Record operation kinds. The zero byte is reserved for the snapshot
// trailer so a truncated snapshot can never alias a record.
const (
	opTrailer byte = 0
	// OpAdd upserts Entity with Elements.
	OpAdd byte = 1
	// OpRemove deletes Entity; Elements is empty.
	OpRemove byte = 2
)

// Element is one named element of an entity with its multiplicity.
type Element struct {
	Name  string
	Count uint32
}

// Record is one logical mutation of the index: an upsert (OpAdd) or a
// deletion (OpRemove) of a named entity. Records carry element names,
// not interned IDs, so a log replays into a fresh dictionary. OpAdd
// records also carry the entity's numeric ID: shard routing is a hash
// of the ID, so recovery must reproduce the exact assignment or a
// replayed entity would land outside the shard whose log holds it.
type Record struct {
	Op       byte
	ID       uint64 // entity ID (OpAdd only; 0 on OpRemove)
	Entity   string
	Elements []Element
}

// Log is an open write-ahead log. All methods are safe for concurrent
// use, though callers replaying or snapshotting an index normally hold
// their own lock to keep the emitted records consistent.
type Log struct {
	dir     string
	measure string

	// Group-commit configuration, immutable after Open; the channels
	// exist only in group-commit mode.
	syncMode bool
	window   time.Duration
	wake     chan struct{} // capacity 1: "records await an fsync"
	quit     chan struct{} // closed to stop the committer
	done     chan struct{} // closed when the committer has exited
	stop     sync.Once

	mu      sync.Mutex
	gen     uint64
	f       *os.File // current WAL, open for append; nil after Close
	off     int64    // bytes of intact frames in f; write rollback point
	seq     uint64   // records written across all generations
	werr    error    // sticky: the WAL tail is torn and could not be rewound
	payload *codec.Buffer
	frame   []byte

	// gmu guards the group-commit ledger: synced is the highest seq a
	// successful fsync (or snapshot rotation) covers, syncErr is the
	// sticky fsync failure (cleared by rotation, like werr), closing
	// releases waiters at Close. gcond broadcasts every change. Lock
	// order: gmu may be taken while holding mu, never the reverse.
	gmu     sync.Mutex
	gcond   *sync.Cond
	synced  uint64
	syncErr error
	closing bool

	// m is all-atomic and needs no lock; it lives in its own paragraph
	// so lockscope does not fold it into mu's guard set.
	m LogMetrics
}

// LogMetrics holds the log's latency distributions. Append and fsync
// stalls are the two ways durability blocks the serving write path, so
// each gets its own histogram; both are observed via metrics.Now /
// ObserveSince (the clock reads here are the stall being measured, not
// incidental accounting).
type LogMetrics struct {
	// Append is the wall time of Log.Append/AppendBatch: encode, frame,
	// and the write(2) that pushes the frames to the operating system
	// (one observation per call, not per record).
	Append metrics.Histogram
	// Fsync is the wall time of every fsync the log issues — group
	// commits, explicit Sync calls, snapshot file syncs, and the final
	// sync in Close.
	Fsync metrics.Histogram
	// CommitWait is how long an acknowledged append waited for the
	// group commit covering it (group-commit mode only): the latency
	// cost of durability, paid outside every lock.
	CommitWait metrics.Histogram
	// Batch is the records-per-call distribution of AppendBatch — how
	// large the batches arriving at the log are.
	Batch metrics.SizeHistogram
	// GroupCommit is the records-per-fsync distribution of the
	// committer — the amortization factor group commit achieves.
	// fsyncs/mutation under load is GroupCommit.Count / Records.
	GroupCommit metrics.SizeHistogram
	// Records counts every record appended (single and batched alike),
	// the denominator of the fsyncs-per-mutation ratio.
	Records metrics.Counter
}

// Metrics exposes the log's histograms for scraping. The returned
// pointer stays valid after Close.
func (l *Log) Metrics() *LogMetrics { return &l.m }

func snapName(gen uint64) string { return fmt.Sprintf("snap-%08d", gen) }
func walName(gen uint64) string  { return fmt.Sprintf("wal-%08d", gen) }

// SnapName names the snapshot file of a generation — the file
// WriteSnapshot creates and Open loads.
func SnapName(gen uint64) string { return snapName(gen) }

// ShardDirName names shard i's log directory under a sharded data dir.
func ShardDirName(i int) string { return fmt.Sprintf("shard-%03d", i) }

// CountShardDirs inspects a data dir and reports how many contiguous
// shard directories (shard-000 .. shard-NNN) it holds: 0 for a missing
// or empty dir. A gap in the numbering, stray shard names, or a legacy
// flat layout (generation files directly in dir) are hard errors — the
// shard count IS the routing function, so a half-recognized layout must
// never be opened.
func CountShardDirs(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	seen := map[int]bool{}
	for _, ent := range entries {
		name := ent.Name()
		if strings.HasPrefix(name, "snap-") || strings.HasPrefix(name, "wal-") {
			return 0, fmt.Errorf("wal: %s holds a legacy flat-layout index (%s); rebuild it into the per-shard layout", dir, name)
		}
		if !strings.HasPrefix(name, "shard-") {
			continue
		}
		// Only the canonical zero-padded spelling counts: accepting
		// shard-0 or shard-00 here while Open reads shard-000 would
		// silently serve an empty index beside the real data.
		n, err := strconv.Atoi(name[len("shard-"):])
		if err != nil || n < 0 || name != ShardDirName(n) || !ent.IsDir() {
			return 0, fmt.Errorf("wal: %s: unrecognized shard directory %q", dir, name)
		}
		seen[n] = true
	}
	for i := 0; i < len(seen); i++ {
		if !seen[i] {
			return 0, fmt.Errorf("wal: %s: shard directories are not contiguous (missing %s)", dir, ShardDirName(i))
		}
	}
	return len(seen), nil
}

// parseGen extracts the generation from a "snap-NNNNNNNN" or
// "wal-NNNNNNNN" file name.
func parseGen(name, prefix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) {
		return 0, false
	}
	gen, err := strconv.ParseUint(name[len(prefix):], 10, 64)
	return gen, err == nil && gen > 0
}

// Option configures a Log at Open.
type Option func(*Log)

// WithGroupCommit opens the log in group-commit durability mode: every
// Append and AppendBatch blocks until an fsync covers its records, and
// a committer goroutine coalesces the fsyncs of concurrent appenders —
// after the first record of a commit lands it waits up to window for
// neighbors to pile on, then issues one fsync for all of them. A
// window of zero commits as fast as the disk acknowledges, which still
// amortizes under load (every append that arrives during an fsync
// joins the next one).
func WithGroupCommit(window time.Duration) Option {
	return func(l *Log) {
		l.syncMode = true
		if window > 0 {
			l.window = window
		}
	}
}

// Open recovers the log in dir, creating the directory if needed: it
// loads the newest snapshot (feeding every entity to applySnap), then
// replays the matching WAL (truncating a torn tail) through applyWAL,
// and returns the log ready for appends. The two callbacks let callers
// bulk-load the snapshot body — pre-sorted, all OpAdd — through a
// cheaper path than the general upsert replay. measure names the
// similarity measure of the index being persisted; a snapshot recorded
// under a different measure is refused, since replaying it would
// silently change every score.
func Open(dir, measure string, applySnap, applyWAL func(Record) error, opts ...Option) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var snaps, wals []uint64
	var stale []string
	for _, ent := range entries {
		name := ent.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			stale = append(stale, name) // interrupted snapshot write
		default:
			if gen, ok := parseGen(name, "snap-"); ok {
				snaps = append(snaps, gen)
			} else if gen, ok := parseGen(name, "wal-"); ok {
				wals = append(wals, gen)
			}
		}
	}
	gen := uint64(1)
	for _, g := range append(append([]uint64{}, snaps...), wals...) {
		if g > gen {
			gen = g
		}
	}

	l := &Log{dir: dir, measure: measure, gen: gen, payload: codec.NewBuffer(256)}
	l.gcond = sync.NewCond(&l.gmu)
	for _, opt := range opts {
		opt(l)
	}
	if _, err := os.Stat(filepath.Join(dir, snapName(gen))); err == nil {
		if err := l.loadSnapshot(filepath.Join(dir, snapName(gen)), applySnap); err != nil {
			return nil, err
		}
	}
	if err := l.replayWAL(filepath.Join(dir, walName(gen)), applyWAL); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, walName(gen)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l.f = f
	if st, err := f.Stat(); err == nil {
		l.off = st.Size() // every byte below is an intact, replayed frame
	}

	// Earlier generations are fully captured by the current one; leftover
	// temp files never made it into any generation. Best-effort cleanup.
	for _, g := range snaps {
		if g != gen {
			os.Remove(filepath.Join(dir, snapName(g)))
		}
	}
	for _, g := range wals {
		if g != gen {
			os.Remove(filepath.Join(dir, walName(g)))
		}
	}
	for _, name := range stale {
		os.Remove(filepath.Join(dir, name))
	}
	if l.syncMode {
		l.wake = make(chan struct{}, 1)
		l.quit = make(chan struct{})
		l.done = make(chan struct{})
		go l.committer()
	}
	return l, nil
}

// Dir reports the log directory.
func (l *Log) Dir() string { return l.dir }

// Gen reports the current generation number (advanced by Snapshot).
func (l *Log) Gen() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.gen
}

// encodeRecord appends rec's payload encoding to buf.
func encodeRecord(buf *codec.Buffer, rec Record) error {
	switch rec.Op {
	case OpAdd, OpRemove:
	default:
		return fmt.Errorf("wal: cannot encode op %d", rec.Op)
	}
	buf.PutByte(rec.Op)
	buf.PutString(rec.Entity)
	if rec.Op == OpAdd {
		buf.PutUvarint(rec.ID)
		buf.PutUvarint(uint64(len(rec.Elements)))
		for _, el := range rec.Elements {
			buf.PutString(el.Name)
			buf.PutUint32(el.Count)
		}
	}
	return nil
}

// decodeRecord parses one record payload.
func decodeRecord(payload []byte) (Record, error) {
	r := codec.NewReader(payload)
	rec := Record{Op: r.Byte(), Entity: r.String()}
	switch rec.Op {
	case OpAdd:
		rec.ID = r.Uvarint()
		n := r.Uvarint()
		if r.Err() == nil && n > uint64(r.Remaining()) {
			return Record{}, fmt.Errorf("wal: record claims %d elements in %d bytes", n, r.Remaining())
		}
		rec.Elements = make([]Element, 0, n)
		for i := uint64(0); i < n; i++ {
			rec.Elements = append(rec.Elements, Element{Name: r.String(), Count: r.Uint32()})
		}
	case OpRemove:
	default:
		return Record{}, fmt.Errorf("wal: unknown op %d", rec.Op)
	}
	if r.Err() != nil {
		return Record{}, fmt.Errorf("wal: corrupt record: %w", r.Err())
	}
	if !r.Done() {
		return Record{}, fmt.Errorf("wal: %d trailing bytes in record", r.Remaining())
	}
	return rec, nil
}

// loadSnapshot replays every entity of a snapshot file through apply.
// Any corruption is a hard error: snapshots are fsynced before they are
// renamed into place, so a damaged one cannot be a routine crash.
func (l *Log) loadSnapshot(path string, apply func(Record) error) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	header, off, ok := frame.Parse(data, 0)
	if !ok {
		return fmt.Errorf("wal: %s: corrupt snapshot header", path)
	}
	hr := codec.NewReader(header)
	magic, measure := hr.String(), hr.String()
	if hr.Err() != nil || !hr.Done() || magic != snapMagic {
		return fmt.Errorf("wal: %s: not a snapshot file", path)
	}
	if measure != l.measure {
		return fmt.Errorf("wal: %s: snapshot measure %q, index measure %q", path, measure, l.measure)
	}
	var count uint64
	for {
		payload, next, ok := frame.Parse(data, off)
		if !ok {
			return fmt.Errorf("wal: %s: corrupt snapshot frame at byte %d", path, off)
		}
		off = next
		if len(payload) > 0 && payload[0] == opTrailer {
			tr := codec.NewReader(payload)
			tr.Byte()
			want := tr.Uvarint()
			if tr.Err() != nil || !tr.Done() || want != count {
				return fmt.Errorf("wal: %s: snapshot trailer wants %d entities, read %d", path, want, count)
			}
			if off != len(data) {
				return fmt.Errorf("wal: %s: %d bytes after snapshot trailer", path, len(data)-off)
			}
			return nil
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return fmt.Errorf("wal: %s: %w", path, err)
		}
		if rec.Op != OpAdd {
			return fmt.Errorf("wal: %s: op %d record in snapshot", path, rec.Op)
		}
		count++
		if err := apply(rec); err != nil {
			return err
		}
	}
}

// replayWAL feeds every intact record of the WAL at path to apply and
// truncates the file at the first torn or corrupt frame — the shape a
// crash mid-append leaves behind. A missing file replays nothing.
func (l *Log) replayWAL(path string, apply func(Record) error) error {
	return frame.ReplayFile(path, func(payload []byte) error {
		rec, err := decodeRecord(payload)
		if err != nil {
			// An undecodable payload with a valid checksum: treat as torn.
			return frame.ErrTorn
		}
		return apply(rec)
	})
}

// Append logs one record. The frame reaches the operating system before
// Append returns (a process crash loses nothing); without group commit
// it is not fsynced (a machine crash can lose it; Snapshot and Close
// fsync), with WithGroupCommit it does not return until an fsync
// covers it.
//
// A failed write may leave a partial frame at the file tail; appending
// past it would strand every later record behind bytes recovery treats
// as the torn end of the log. Append therefore rewinds the file to the
// last intact frame on error, and if even that fails it poisons the
// log: further appends are refused until a successful Snapshot rotates
// to a fresh WAL file.
func (l *Log) Append(rec Record) error {
	wait, err := l.AppendDeferred(rec)
	if err != nil {
		return err
	}
	return wait()
}

// AppendDeferred is Append split at the durability boundary: it writes
// the frame (same failure and rewind discipline as Append) and returns
// a wait function that blocks until the record's durability contract is
// met — immediately satisfied without group commit, one group-committed
// fsync with it. Callers holding locks over the append can drop them
// before paying the commit wait; the wait function must be called
// exactly once and is not safe for concurrent use.
func (l *Log) AppendDeferred(rec Record) (func() error, error) {
	recs := [1]Record{rec}
	start := metrics.Now()
	l.mu.Lock()
	err := l.appendLocked(recs[:])
	seq := l.seq
	l.mu.Unlock()
	if err != nil {
		return nil, err
	}
	l.m.Append.ObserveSince(start)
	return l.commitWaiter(seq), nil
}

// commitWaiter returns the deferred half of an append: a no-op without
// group commit, otherwise a wait for the ledger to cover seq.
func (l *Log) commitWaiter(seq uint64) func() error {
	if !l.syncMode {
		return noWait
	}
	return func() error { return l.waitCommit(seq) }
}

func noWait() error { return nil }

// AppendBatch logs recs as one contiguous frame stream pushed to the
// operating system with a single write(2): after a clean return every
// record is in the log, after an error none is (the same tail-rewind
// discipline as Append — a partially written batch is truncated away,
// so recovery can never replay a prefix of a batch the caller was told
// failed). Durability matches Append: group-commit mode blocks until
// one fsync covers the whole batch, amortized with every concurrent
// appender. An empty batch is a no-op.
func (l *Log) AppendBatch(recs []Record) error {
	wait, err := l.AppendBatchDeferred(recs)
	if err != nil {
		return err
	}
	return wait()
}

// AppendBatchDeferred is AppendBatch with AppendDeferred's split
// contract: the batch is written (all or nothing) and the returned wait
// function settles its durability.
func (l *Log) AppendBatchDeferred(recs []Record) (func() error, error) {
	if len(recs) == 0 {
		return noWait, nil
	}
	start := metrics.Now()
	l.mu.Lock()
	err := l.appendLocked(recs)
	seq := l.seq
	l.mu.Unlock()
	if err != nil {
		return nil, err
	}
	l.m.Append.ObserveSince(start)
	l.m.Batch.Observe(uint64(len(recs)))
	return l.commitWaiter(seq), nil
}

// appendLocked encodes and writes recs under l.mu: all frames into one
// buffer, one write(2), rollback to the last intact frame on error.
func (l *Log) appendLocked(recs []Record) error {
	if l.f == nil {
		return errors.New("wal: log is closed")
	}
	if l.werr != nil {
		return l.werr
	}
	buf := l.frame[:0]
	for _, rec := range recs {
		l.payload.Reset()
		if err := encodeRecord(l.payload, rec); err != nil {
			return err
		}
		var err error
		buf, err = frame.Append(buf, l.payload.Bytes())
		if err != nil {
			l.frame = buf[:0]
			return fmt.Errorf("wal: %w", err)
		}
	}
	l.frame = buf[:0]
	n, err := l.f.Write(buf)
	if err != nil {
		if n > 0 {
			if terr := l.f.Truncate(l.off); terr != nil {
				l.werr = fmt.Errorf("wal: tail torn at %d and not rewindable (%v); snapshot to rotate the log", l.off, terr)
			}
		}
		return fmt.Errorf("wal: append: %w", err)
	}
	l.off += int64(n)
	l.seq += uint64(len(recs))
	l.m.Records.Add(int64(len(recs)))
	return nil
}

// waitCommit blocks until the group-commit ledger covers seq: a wake is
// sent to the committer (capacity-1 channel, so a pending wake already
// promises a future fsync) and the caller waits on gcond outside every
// lock the write path holds.
func (l *Log) waitCommit(seq uint64) error {
	select {
	case l.wake <- struct{}{}:
	default:
	}
	start := metrics.Now()
	l.gmu.Lock()
	defer l.gmu.Unlock()
	for l.synced < seq && l.syncErr == nil && !l.closing {
		l.gcond.Wait()
	}
	l.m.CommitWait.ObserveSince(start)
	if l.synced >= seq {
		return nil
	}
	if l.syncErr != nil {
		return l.syncErr
	}
	return errors.New("wal: log closed before commit")
}

// committer is the group-commit goroutine: woken by the first pending
// append, it waits up to window for neighbors to join, then issues one
// fsync covering every record written so far and releases their
// waiters. Runs only in group-commit mode; exits when quit closes.
func (l *Log) committer() {
	defer close(l.done)
	for {
		select {
		case <-l.quit:
			return
		case <-l.wake:
		}
		if l.window > 0 {
			timer := time.NewTimer(l.window)
			select {
			case <-l.quit:
				timer.Stop()
				return
			case <-timer.C:
			}
		}
		l.groupCommit()
	}
}

// groupCommit fsyncs the current WAL and advances the ledger to the
// sequence number the fsync covers. The fsync runs under l.mu so it
// cannot race a Snapshot rotation swapping the file out; appenders
// that block on l.mu meanwhile are exactly the ones the next commit
// will absorb.
func (l *Log) groupCommit() {
	l.mu.Lock()
	if l.f == nil || l.werr != nil {
		// Closed (Close's final fsync settles the ledger) or poisoned
		// (nothing new reached the file); either way nothing to sync.
		l.mu.Unlock()
		return
	}
	seq := l.seq
	l.gmu.Lock()
	prev := l.synced
	stale := l.syncErr
	l.gmu.Unlock()
	if seq <= prev || stale != nil {
		l.mu.Unlock()
		return
	}
	start := metrics.Now()
	err := l.f.Sync()
	l.m.Fsync.ObserveSince(start)
	l.mu.Unlock()

	l.gmu.Lock()
	if err != nil {
		l.syncErr = fmt.Errorf("wal: group commit: %w", err)
	} else if seq > l.synced {
		l.m.GroupCommit.Observe(seq - l.synced)
		l.synced = seq
	}
	l.gcond.Broadcast()
	l.gmu.Unlock()
}

// stopCommitter shuts the committer goroutine down (idempotent; no-op
// outside group-commit mode). Callers must not hold l.mu: the
// committer may be blocked on it.
func (l *Log) stopCommitter() {
	if !l.syncMode {
		return
	}
	l.stop.Do(func() {
		close(l.quit)
		<-l.done
	})
}

// commitTo advances the group-commit ledger to seq and clears any
// sticky fsync error — called after an operation that made every
// record up to seq durable through its own fsync (Sync, Snapshot,
// Close). Caller may hold l.mu (lock order mu → gmu).
func (l *Log) commitTo(seq uint64) {
	if !l.syncMode {
		return
	}
	l.gmu.Lock()
	if seq > l.synced {
		l.m.GroupCommit.Observe(seq - l.synced)
		l.synced = seq
	}
	l.syncErr = nil
	l.gcond.Broadcast()
	l.gmu.Unlock()
}

// Sync fsyncs the current WAL file.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("wal: log is closed")
	}
	start := metrics.Now()
	err := l.f.Sync()
	l.m.Fsync.ObserveSince(start)
	if err == nil {
		l.commitTo(l.seq)
	}
	return err
}

// writeSnapshotFile writes a complete snapshot — header, one OpAdd
// frame per record the iterator emits, trailer — to path, fsyncing
// before close. On any error the partial file is removed. fsync, when
// non-nil, records the duration of the final sync (the bulk builder's
// WriteSnapshot has no Log and passes nil).
func writeSnapshotFile(path, measure string, fsync *metrics.Histogram, iter func(emit func(Record) error) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	fail := func(err error) error {
		f.Close()
		os.Remove(path)
		return err
	}
	w := frame.NewWriter(f)
	payload := codec.NewBuffer(256)
	payload.PutString(snapMagic)
	payload.PutString(measure)
	if err := w.WriteFrame(payload.Bytes()); err != nil {
		return fail(fmt.Errorf("wal: snapshot: %w", err))
	}
	var count uint64
	err = iter(func(rec Record) error {
		if rec.Op != OpAdd {
			return fmt.Errorf("wal: snapshot records must be OpAdd, got %d", rec.Op)
		}
		payload.Reset()
		if err := encodeRecord(payload, rec); err != nil {
			return err
		}
		count++
		return w.WriteFrame(payload.Bytes())
	})
	if err != nil {
		return fail(fmt.Errorf("wal: snapshot: %w", err))
	}
	payload.Reset()
	payload.PutByte(opTrailer)
	payload.PutUvarint(count)
	if err := w.WriteFrame(payload.Bytes()); err != nil {
		return fail(fmt.Errorf("wal: snapshot: %w", err))
	}
	if err := w.Flush(); err != nil {
		return fail(fmt.Errorf("wal: snapshot: %w", err))
	}
	start := metrics.Now()
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("wal: snapshot: %w", err))
	}
	if fsync != nil {
		fsync.ObserveSince(start)
	}
	if err := f.Close(); err != nil {
		return fail(fmt.Errorf("wal: snapshot: %w", err))
	}
	return nil
}

// WriteSnapshot creates the snapshot file of generation gen in dir
// without opening a Log: the bulk builder's path for materializing a
// loadable generation directly from a batch job. It goes through the
// same temp-file + fsync + atomic-rename protocol as Log.Snapshot, so a
// file under its final name is always complete. Records must be OpAdd.
func WriteSnapshot(dir string, gen uint64, measure string, iter func(emit func(Record) error) error) error {
	if gen == 0 {
		return errors.New("wal: snapshot generation must be positive")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	tmp := filepath.Join(dir, snapName(gen)+".tmp")
	if err := writeSnapshotFile(tmp, measure, nil, iter); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapName(gen))); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	syncDir(dir)
	return nil
}

// Snapshot cuts a new generation: it writes every record the iterator
// emits (all must be OpAdd) to a temp snapshot, fsyncs and renames it
// into place, starts a fresh empty WAL, and deletes the previous
// generation. On error the log keeps its current generation and stays
// usable. The iterator runs with the log lock held; it must not call
// back into the log.
func (l *Log) Snapshot(iter func(emit func(Record) error) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("wal: log is closed")
	}
	next := l.gen + 1
	tmp := filepath.Join(l.dir, snapName(next)+".tmp")
	if err := writeSnapshotFile(tmp, l.measure, &l.m.Fsync, iter); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, snapName(next))); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", err)
	}

	nf, err := os.OpenFile(filepath.Join(l.dir, walName(next)), os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// Roll the rename back: with the new snapshot gone the old
		// generation stays authoritative and the log remains usable.
		os.Remove(filepath.Join(l.dir, snapName(next)))
		return fmt.Errorf("wal: snapshot: rotate wal: %w", err)
	}
	syncDir(l.dir)
	old := l.gen
	l.gen = next
	l.f.Close()
	l.f = nf
	l.off = 0
	l.werr = nil // a fresh WAL file clears any poisoned tail
	// The fsynced snapshot durably captures every record appended so
	// far, so the rotation is itself a commit: release group-commit
	// waiters and clear any sticky fsync error along with the old file.
	l.commitTo(l.seq)
	os.Remove(filepath.Join(l.dir, snapName(old)))
	os.Remove(filepath.Join(l.dir, walName(old)))
	return nil
}

// syncDir fsyncs a directory so renames and creates inside it are
// durable; best-effort (some filesystems refuse directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// Close fsyncs and closes the current WAL. The log is unusable after.
// In group-commit mode the final fsync settles every pending waiter
// (success releases them, failure surfaces as their commit error) and
// the committer goroutine is stopped.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.f == nil {
		l.mu.Unlock()
		l.stopCommitter()
		return nil
	}
	start := metrics.Now()
	err := l.f.Sync()
	l.m.Fsync.ObserveSince(start)
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	seq := l.seq
	l.mu.Unlock()
	if l.syncMode {
		l.gmu.Lock()
		if err == nil && seq > l.synced {
			l.m.GroupCommit.Observe(seq - l.synced)
			l.synced = seq
		}
		l.closing = true
		l.gcond.Broadcast()
		l.gmu.Unlock()
	}
	l.stopCommitter()
	if err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	return nil
}

// Files lists the current generation's file names (for tests and
// operational tooling), sorted.
func (l *Log) Files() []string {
	l.mu.Lock()
	gen := l.gen
	dir := l.dir
	l.mu.Unlock()
	var out []string
	for _, name := range []string{snapName(gen), walName(gen)} {
		if _, err := os.Stat(filepath.Join(dir, name)); err == nil {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
