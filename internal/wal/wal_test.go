package wal

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func addRec(entity string, elems ...Element) Record {
	return Record{Op: OpAdd, Entity: entity, Elements: elems}
}

func removeRec(entity string) Record { return Record{Op: OpRemove, Entity: entity} }

// collect reopens dir and returns every replayed record — snapshot body
// and WAL tail alike — in order.
func collect(t *testing.T, dir, measure string) ([]Record, *Log) {
	t.Helper()
	var got []Record
	apply := func(rec Record) error {
		got = append(got, rec)
		return nil
	}
	l, err := Open(dir, measure, apply, apply)
	if err != nil {
		t.Fatalf("open %s: %v", dir, err)
	}
	return got, l
}

// closeLog closes l and fails the test on error: Close syncs and a
// discarded Close error can hide a lost tail.
func closeLog(t testing.TB, l *Log) {
	t.Helper()
	if err := l.Close(); err != nil {
		t.Fatalf("close log: %v", err)
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	recs := []Record{
		addRec("ip-1", Element{"a", 3}, Element{"b", 1}),
		addRec("ip-2", Element{"", 2}), // empty string is a legal element name
		removeRec("ip-1"),
		addRec("ip-1", Element{"c", 7}),
	}
	_, l := collect(t, dir, "ruzicka")
	for _, rec := range recs {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	got, l2 := collect(t, dir, "ruzicka")
	defer closeLog(t, l2)
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("replay mismatch:\ngot  %+v\nwant %+v", got, recs)
	}
}

func TestAppendAfterReopenWithoutClose(t *testing.T) {
	dir := t.TempDir()
	_, l := collect(t, dir, "jaccard")
	if err := l.Append(addRec("a", Element{"x", 1})); err != nil {
		t.Fatal(err)
	}
	// Crash: the old log is abandoned, never closed. Appends reached the
	// OS synchronously, so a reopen must see them.
	got, l2 := collect(t, dir, "jaccard")
	if len(got) != 1 || got[0].Entity != "a" {
		t.Fatalf("after crash: %+v", got)
	}
	if err := l2.Append(removeRec("a")); err != nil {
		t.Fatal(err)
	}
	closeLog(t, l2)
	got, l3 := collect(t, dir, "jaccard")
	defer closeLog(t, l3)
	if len(got) != 2 || got[1].Op != OpRemove {
		t.Fatalf("after second crash: %+v", got)
	}
}

func TestSnapshotRotation(t *testing.T) {
	dir := t.TempDir()
	_, l := collect(t, dir, "ruzicka")
	for _, rec := range []Record{
		addRec("a", Element{"x", 1}),
		addRec("b", Element{"y", 2}),
		removeRec("a"),
	} {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	// Snapshot the surviving state (just "b"), then log one more record.
	state := []Record{addRec("b", Element{"y", 2})}
	if err := l.Snapshot(func(emit func(Record) error) error {
		for _, rec := range state {
			if err := emit(rec); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := l.Gen(); got != 2 {
		t.Fatalf("gen after snapshot: %d", got)
	}
	if err := l.Append(addRec("c", Element{"z", 3})); err != nil {
		t.Fatal(err)
	}
	closeLog(t, l)

	// Only the new generation's files remain.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(names) != 2 || names[0] != "snap-00000002" || names[1] != "wal-00000002" {
		t.Fatalf("dir contents: %v", names)
	}

	got, l2 := collect(t, dir, "ruzicka")
	defer closeLog(t, l2)
	want := append(append([]Record{}, state...), addRec("c", Element{"z", 3}))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay after rotation:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestTornTail simulates a crash mid-append: a partial frame at the end
// of the WAL must be dropped and truncated, and the log must keep
// accepting appends afterwards.
func TestTornTail(t *testing.T) {
	for name, tear := range map[string][]byte{
		// Length prefix only, payload never written.
		//lint:vsmart-allow framesafety hand-crafts a torn frame header to test recovery truncation
		"header-only": binary.AppendUvarint(nil, 57),
		// Full header claiming 64 bytes, then 5 bytes of payload.
		//lint:vsmart-allow framesafety hand-crafts a torn frame header to test recovery truncation
		"partial-payload": append(append(binary.AppendUvarint(nil, 64), 0xde, 0xad, 0xbe, 0xef), 1, 2, 3, 4, 5),
		// Intact frame shape but the checksum does not match the payload.
		"bad-checksum": func() []byte {
			//lint:vsmart-allow framesafety hand-crafts a checksum-mismatched frame to test recovery truncation
			b := binary.AppendUvarint(nil, 3)
			b = append(b, 0, 0, 0, 0) // wrong CRC for any payload
			return append(b, OpRemove, 1, 'x')
		}(),
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			_, l := collect(t, dir, "ruzicka")
			if err := l.Append(addRec("keep", Element{"k", 1})); err != nil {
				t.Fatal(err)
			}
			// Crash: append raw torn bytes directly to the live WAL file.
			walPath := filepath.Join(dir, walName(1))
			f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(tear); err != nil {
				t.Fatal(err)
			}
			f.Close()

			got, l2 := collect(t, dir, "ruzicka")
			if len(got) != 1 || got[0].Entity != "keep" {
				t.Fatalf("recovered %+v", got)
			}
			if err := l2.Append(addRec("after", Element{"a", 2})); err != nil {
				t.Fatal(err)
			}
			closeLog(t, l2)

			got, l3 := collect(t, dir, "ruzicka")
			defer closeLog(t, l3)
			if len(got) != 2 || got[1].Entity != "after" {
				t.Fatalf("after torn-tail truncation: %+v", got)
			}
		})
	}
}

// TestInterruptedSnapshot leaves a .tmp snapshot behind (crash before
// the rename): recovery must ignore and remove it.
func TestInterruptedSnapshot(t *testing.T) {
	dir := t.TempDir()
	_, l := collect(t, dir, "ruzicka")
	if err := l.Append(addRec("a", Element{"x", 1})); err != nil {
		t.Fatal(err)
	}
	closeLog(t, l)
	tmp := filepath.Join(dir, snapName(2)+".tmp")
	if err := os.WriteFile(tmp, []byte("half a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, l2 := collect(t, dir, "ruzicka")
	defer closeLog(t, l2)
	if len(got) != 1 || got[0].Entity != "a" {
		t.Fatalf("recovered %+v", got)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stale tmp survived: %v", err)
	}
}

// TestCorruptSnapshotIsHardError: damage under the final snapshot name
// cannot be a routine crash, so Open must refuse rather than silently
// serve a partial dataset.
func TestCorruptSnapshotIsHardError(t *testing.T) {
	dir := t.TempDir()
	_, l := collect(t, dir, "ruzicka")
	if err := l.Append(addRec("a", Element{"x", 1})); err != nil {
		t.Fatal(err)
	}
	if err := l.Snapshot(func(emit func(Record) error) error {
		return emit(addRec("a", Element{"x", 1}))
	}); err != nil {
		t.Fatal(err)
	}
	closeLog(t, l)

	path := filepath.Join(dir, snapName(2))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func([]byte) []byte{
		"truncated":    func(b []byte) []byte { return b[:len(b)-3] }, // loses the trailer
		"flipped-byte": func(b []byte) []byte { c := append([]byte{}, b...); c[len(c)/2] ^= 0xff; return c },
	} {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
				t.Fatal(err)
			}
			nop := func(Record) error { return nil }
			_, err := Open(dir, "ruzicka", nop, nop)
			if err == nil {
				t.Fatal("corrupt snapshot should fail Open")
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestMeasureMismatch(t *testing.T) {
	dir := t.TempDir()
	_, l := collect(t, dir, "ruzicka")
	if err := l.Append(addRec("a", Element{"x", 1})); err != nil {
		t.Fatal(err)
	}
	if err := l.Snapshot(func(emit func(Record) error) error {
		return emit(addRec("a", Element{"x", 1}))
	}); err != nil {
		t.Fatal(err)
	}
	closeLog(t, l)
	nop := func(Record) error { return nil }
	_, err := Open(dir, "jaccard", nop, nop)
	if err == nil || !strings.Contains(err.Error(), "measure") {
		t.Fatalf("measure mismatch should fail: %v", err)
	}
}

// TestOversizedFrameLength: a length prefix past MaxFrameLen in the WAL
// is corruption and must truncate cleanly, never allocate gigabytes.
func TestOversizedFrameLength(t *testing.T) {
	dir := t.TempDir()
	_, l := collect(t, dir, "ruzicka")
	if err := l.Append(addRec("keep", Element{"k", 1})); err != nil {
		t.Fatal(err)
	}
	closeLog(t, l)
	//lint:vsmart-allow framesafety test corrupts the live WAL in place to prove recovery rejects oversized prefixes
	f, err := os.OpenFile(filepath.Join(dir, walName(1)), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	//lint:vsmart-allow framesafety writes a raw oversized length prefix to pin the MaxFrameLen recovery guard
	f.Write(binary.AppendUvarint(nil, MaxFrameLen+1))
	f.Close()
	got, l2 := collect(t, dir, "ruzicka")
	defer closeLog(t, l2)
	if len(got) != 1 || got[0].Entity != "keep" {
		t.Fatalf("recovered %+v", got)
	}
}

func TestAppendRejectsBadOp(t *testing.T) {
	dir := t.TempDir()
	_, l := collect(t, dir, "ruzicka")
	defer closeLog(t, l)
	if err := l.Append(Record{Op: 99, Entity: "x"}); err == nil {
		t.Fatal("unknown op should fail to encode")
	}
	if err := l.Snapshot(func(emit func(Record) error) error {
		return emit(removeRec("x"))
	}); err == nil {
		t.Fatal("snapshot must reject non-Add records")
	}
	// The failed snapshot must leave the log usable at its old generation.
	if got := l.Gen(); got != 1 {
		t.Fatalf("gen after failed snapshot: %d", got)
	}
	if err := l.Append(addRec("y", Element{"e", 1})); err != nil {
		t.Fatal(err)
	}
}

func TestClosedLog(t *testing.T) {
	dir := t.TempDir()
	_, l := collect(t, dir, "ruzicka")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if err := l.Append(addRec("x")); err == nil {
		t.Fatal("append after close should fail")
	}
	if err := l.Snapshot(func(func(Record) error) error { return nil }); err == nil {
		t.Fatal("snapshot after close should fail")
	}
}

// TestCountShardDirs pins the layout recognizer: canonical names only,
// contiguity enforced, legacy flat layouts refused.
func TestCountShardDirs(t *testing.T) {
	if n, err := CountShardDirs(filepath.Join(t.TempDir(), "absent")); n != 0 || err != nil {
		t.Fatalf("missing dir: %d %v", n, err)
	}
	dir := t.TempDir()
	if n, err := CountShardDirs(dir); n != 0 || err != nil {
		t.Fatalf("empty dir: %d %v", n, err)
	}
	for i := 0; i < 3; i++ {
		if err := os.Mkdir(filepath.Join(dir, ShardDirName(i)), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := CountShardDirs(dir); n != 3 || err != nil {
		t.Fatalf("3 shards: %d %v", n, err)
	}
	// Non-canonical spellings must be hard errors, not silently skipped:
	// Open would read only the zero-padded names and serve nothing.
	for _, bad := range []string{"shard-3x", "shard-03", "shard-+4"} {
		if err := os.Mkdir(filepath.Join(dir, bad), 0o755); err != nil {
			t.Fatal(err)
		}
		if _, err := CountShardDirs(dir); err == nil {
			t.Fatalf("%s accepted", bad)
		}
		os.Remove(filepath.Join(dir, bad))
	}
	// A gap in the numbering is a hard error.
	if err := os.Mkdir(filepath.Join(dir, ShardDirName(4)), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := CountShardDirs(dir); err == nil {
		t.Fatal("gap in shard numbering accepted")
	}
	os.Remove(filepath.Join(dir, ShardDirName(4)))
	// Legacy flat layout: generation files directly in the dir.
	legacy := t.TempDir()
	//lint:vsmart-allow framesafety test plants a bogus legacy snap file by hand to prove CountShardDirs rejects the flat layout
	if err := os.WriteFile(filepath.Join(legacy, snapName(1)), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := CountShardDirs(legacy); err == nil {
		t.Fatal("legacy layout accepted")
	}
}
