// Package planner chooses, per index partition, which candidate-
// generation strategy the online index runs its queries through — the
// adaptive selection step of "Adaptive MapReduce Similarity Joins"
// (arXiv:1804.05615) transplanted onto the serving path. One global
// algorithm is the wrong answer for skewed data: a partition of a few
// dozen entities is served fastest by a straight scan, a partition
// dominated by a stop-word element defeats prefix filtering (its
// posting list IS the partition), and everything in between wants the
// prefix-filter inverted index. The planner reads ingest-time dataset
// statistics (internal/stats.Dist summaries maintained by the index on
// every mutation) and returns one of three strategies; every strategy
// produces exactly the same answers — they are candidate-generation
// plans, not approximations — so the choice is purely a cost decision
// and the differential gates hold regardless of what it picks.
//
// Decisions are deterministic functions of the partition statistics:
// identical mutation histories always yield identical plans, on every
// shard of every deployment shape.
package planner

import "fmt"

// Strategy is one candidate-generation plan for a partition.
type Strategy uint8

const (
	// Auto defers to the planner's statistics-driven decision; it is the
	// IndexOptions.Strategy default and never appears as a decision.
	Auto Strategy = iota
	// Prefix is the inverted-index prefix-filter probe (internal/index's
	// original path): posting lists in decreasing-multiplicity order,
	// residual and length bounds pruning candidates.
	Prefix
	// LSH seeds top-k and kNN queries from MinHash band buckets
	// (internal/lsh) before sweeping the remainder under the established
	// floor — exact, but the floor arrives from O(bands) bucket lookups
	// instead of a skewed posting list.
	LSH
	// Brute scans every entity of the partition, length-filtered only —
	// optimal when the partition is small enough that probe setup
	// dominates.
	Brute
)

// String reports the canonical lowercase name used by IndexOptions,
// /stats, and /metrics labels.
func (s Strategy) String() string {
	switch s {
	case Auto:
		return "auto"
	case Prefix:
		return "prefix"
	case LSH:
		return "lsh"
	case Brute:
		return "brute"
	default:
		return fmt.Sprintf("strategy(%d)", uint8(s))
	}
}

// Parse maps a canonical name (as accepted by IndexOptions.Strategy)
// back to its Strategy. The empty string is Auto.
func Parse(name string) (Strategy, error) {
	switch name {
	case "", "auto":
		return Auto, nil
	case "prefix":
		return Prefix, nil
	case "lsh":
		return LSH, nil
	case "brute":
		return Brute, nil
	default:
		return Auto, fmt.Errorf("planner: unknown strategy %q (want auto, prefix, lsh, or brute)", name)
	}
}

// PartitionStats is the ingest-time statistical summary of one index
// partition the planner decides from. The index maintains every field
// incrementally under its write lock, so reading them costs nothing and
// the decision can be re-evaluated on each mutation.
type PartitionStats struct {
	// Entities is the live entity count; Elements the number of distinct
	// alphabet elements with a posting list; Postings the live posting
	// entries (tombstones excluded).
	Entities int
	Elements int
	Postings int

	// MaxPostingLen is the length of the longest posting list, stale
	// entries included — the numerator of the token-frequency skew: a
	// list approaching the partition size means some element is a
	// stop word and probing it degenerates to a scan.
	MaxPostingLen int

	// CardMean, CardP90, and CardMax summarize the multiset-length
	// (cardinality) distribution of the live entities; the quantile and
	// max are power-of-two bucket ceilings (stats.Dist).
	CardMean float64
	CardP90  uint64
	CardMax  uint64
}

// TokenSkew is the frequency of the hottest element relative to a
// uniform spread of the postings over the alphabet: max posting length
// divided by mean posting length. 1 means perfectly uniform; values
// near Entities mean one element touches everything.
func (ps PartitionStats) TokenSkew() float64 {
	if ps.Elements == 0 || ps.Postings == 0 {
		return 0
	}
	mean := float64(ps.Postings) / float64(ps.Elements)
	return float64(ps.MaxPostingLen) / mean
}

// Planner decides a partition's strategy from its statistics. Decide
// must be a pure function of ps — the determinism the differential
// suite and the cluster's reproducibility guarantees rest on.
type Planner interface {
	Decide(ps PartitionStats) Strategy
}

// Fixed is a Planner that always answers itself — the implementation
// behind the IndexOptions.Strategy override.
type Fixed Strategy

// Decide implements Planner.
func (f Fixed) Decide(PartitionStats) Strategy { return Strategy(f) }

// Default thresholds; see Heuristic.
const (
	// DefaultBruteCutoff is the partition size at or below which a
	// straight scan wins: the probe's sort + dedup setup costs more than
	// length-filtering this many candidates outright.
	DefaultBruteCutoff = 64
	// DefaultLSHMinEntities gates the LSH strategy: below this the
	// signature computation per query costs more than any posting list
	// it avoids, however skewed.
	DefaultLSHMinEntities = 128
	// DefaultLSHHotFraction is the stop-word test: when the longest
	// posting list covers at least this fraction of the partition's
	// entities, prefix probing degenerates to a scan of that list and
	// bucket-seeded floors win.
	DefaultLSHHotFraction = 0.5
)

// Heuristic is the default statistics-driven Planner:
//
//   - Entities ≤ BruteCutoff            → Brute
//   - hottest element covers ≥ HotFraction of the entities
//     and Entities ≥ LSHMinEntities     → LSH
//   - otherwise                         → Prefix
//
// Zero-valued fields fall back to the Default* constants, so the zero
// Heuristic is usable.
type Heuristic struct {
	BruteCutoff    int
	LSHMinEntities int
	LSHHotFraction float64
}

// Decide implements Planner.
func (h Heuristic) Decide(ps PartitionStats) Strategy {
	brute := h.BruteCutoff
	if brute == 0 {
		brute = DefaultBruteCutoff
	}
	lshMin := h.LSHMinEntities
	if lshMin == 0 {
		lshMin = DefaultLSHMinEntities
	}
	hot := h.LSHHotFraction
	if hot == 0 {
		hot = DefaultLSHHotFraction
	}
	if ps.Entities <= brute {
		return Brute
	}
	if ps.Entities >= lshMin && float64(ps.MaxPostingLen) >= hot*float64(ps.Entities) {
		return LSH
	}
	return Prefix
}
