package planner

import (
	"math"
	"testing"
)

// TestStrategyStringParse pins the wire names round-tripping: the
// strings here are API surface (IndexOptions.Strategy, /stats JSON,
// /metrics labels) and must never drift.
func TestStrategyStringParse(t *testing.T) {
	names := map[Strategy]string{
		Auto:   "auto",
		Prefix: "prefix",
		LSH:    "lsh",
		Brute:  "brute",
	}
	for s, want := range names {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
		back, err := Parse(want)
		if err != nil || back != s {
			t.Errorf("Parse(%q) = %v, %v; want %v", want, back, err, s)
		}
	}
	if s, err := Parse(""); err != nil || s != Auto {
		t.Errorf("Parse(\"\") = %v, %v; want Auto", s, err)
	}
	if _, err := Parse("fastest"); err == nil {
		t.Error("Parse accepted an unknown strategy name")
	}
	if got := Strategy(99).String(); got != "strategy(99)" {
		t.Errorf("out-of-range String() = %q", got)
	}
}

func TestFixedIgnoresStats(t *testing.T) {
	huge := PartitionStats{Entities: 1 << 20, Elements: 2, Postings: 1 << 21, MaxPostingLen: 1 << 20}
	for _, s := range []Strategy{Prefix, LSH, Brute} {
		if got := Fixed(s).Decide(huge); got != s {
			t.Errorf("Fixed(%v).Decide = %v", s, got)
		}
		if got := Fixed(s).Decide(PartitionStats{}); got != s {
			t.Errorf("Fixed(%v).Decide(zero) = %v", s, got)
		}
	}
}

func TestTokenSkew(t *testing.T) {
	cases := []struct {
		name string
		ps   PartitionStats
		want float64
	}{
		{"empty", PartitionStats{}, 0},
		{"no postings", PartitionStats{Elements: 5}, 0},
		{"uniform", PartitionStats{Elements: 10, Postings: 100, MaxPostingLen: 10}, 1},
		{"stopword", PartitionStats{Entities: 100, Elements: 50, Postings: 200, MaxPostingLen: 100}, 25},
	}
	for _, tc := range cases {
		if got := tc.ps.TokenSkew(); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: TokenSkew = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestHeuristicDecide walks the decision surface: the cutoffs, their
// exact boundaries (≤ for brute, ≥ for both LSH gates), and the
// zero-value fallbacks to the Default* constants.
func TestHeuristicDecide(t *testing.T) {
	// hot builds stats whose hottest posting list covers frac of n.
	hot := func(n int, frac float64) PartitionStats {
		return PartitionStats{
			Entities: n, Elements: n, Postings: 4 * n,
			MaxPostingLen: int(frac * float64(n)),
		}
	}
	zero := Heuristic{}
	cases := []struct {
		name string
		h    Heuristic
		ps   PartitionStats
		want Strategy
	}{
		{"empty partition", zero, PartitionStats{}, Brute},
		{"at brute cutoff", zero, hot(DefaultBruteCutoff, 0.1), Brute},
		{"just above brute cutoff", zero, hot(DefaultBruteCutoff+1, 0.1), Prefix},
		{"uniform large", zero, hot(10000, 0.01), Prefix},
		{"hot but too small for lsh", zero, hot(DefaultLSHMinEntities-1, 0.9), Prefix},
		{"hot at lsh floor", zero, hot(DefaultLSHMinEntities, 0.9), LSH},
		{"exactly at hot fraction", zero, hot(1000, DefaultLSHHotFraction), LSH},
		{"just under hot fraction", zero, hot(1000, 0.499), Prefix},
		{"custom cutoffs", Heuristic{BruteCutoff: 10, LSHMinEntities: 20, LSHHotFraction: 0.25},
			hot(21, 0.3), LSH},
		{"custom brute", Heuristic{BruteCutoff: 500}, hot(499, 0.9), Brute},
	}
	for _, tc := range cases {
		if got := tc.h.Decide(tc.ps); got != tc.want {
			t.Errorf("%s: Decide(%+v) = %v, want %v", tc.name, tc.ps, got, tc.want)
		}
	}
}

// TestHeuristicDeterminism pins the purity contract Decide documents:
// identical statistics must always yield identical plans.
func TestHeuristicDeterminism(t *testing.T) {
	h := Heuristic{}
	for n := 0; n < 4096; n += 17 {
		ps := PartitionStats{
			Entities: n, Elements: 1 + n/3, Postings: 4 * n,
			MaxPostingLen: n / 2, CardMean: 8, CardP90: 16, CardMax: 64,
		}
		first := h.Decide(ps)
		for i := 0; i < 3; i++ {
			if got := h.Decide(ps); got != first {
				t.Fatalf("Decide(%+v) flapped: %v then %v", ps, first, got)
			}
		}
	}
}
