package lsh

import (
	"fmt"
	"sort"

	"vsmartjoin/internal/codec"
	"vsmartjoin/internal/mr"
	"vsmartjoin/internal/mrfs"
	"vsmartjoin/internal/multiset"
	"vsmartjoin/internal/records"
	"vsmartjoin/internal/similarity"
)

// MRJoin is the distributed adaptation of the MinHash join that the paper
// leaves as out of scope (§6.1, §7): two MapReduce steps on the same
// simulated cluster as the exact algorithms.
//
// Step 1 (signature/banding): the mapper consumes whole-multiset capsules,
// computes the MinHash signature, and emits one tuple per band keyed by
// the band bucket hash; the reducer emits candidate pairs per bucket.
// Step 2 (verify): candidates are deduplicated and either estimated from
// signatures or verified exactly against the capsule data via a side
// input.
//
// Like its sequential counterpart it is approximate: pairs that collide in
// no band are lost. It exists as the recall/efficiency baseline for the
// exact V-SMART-Join algorithms.
func MRJoin(cluster mr.ClusterConfig, input *mrfs.Dataset, cfg Config) ([]records.Pair, mr.PipelineStats, error) {
	var ps mr.PipelineStats
	if err := cfg.Validate(); err != nil {
		return nil, ps, err
	}
	numReducers := input.NumPartitions()

	// Step 0: assemble whole multisets (the LSH mapper needs full entities,
	// sharing VCL's capsule limitation).
	capsules, cstats, err := mr.Run(cluster, capsuleJob(input, numReducers))
	if err != nil {
		return nil, ps, err
	}
	ps.Add(cstats)

	// Step 1: band → candidate pairs.
	bandJob := mr.Job{
		Name:        "lsh-band",
		Input:       capsules,
		Mapper:      &bandMapper{cfg: cfg},
		Reducer:     bandReducer{},
		NumReducers: numReducers,
		OutputName:  "lsh-candidates",
	}
	cands, bstats, err := mr.Run(cluster, bandJob)
	if err != nil {
		return nil, ps, err
	}
	ps.Add(bstats)

	// Step 2: dedup + verify/estimate.
	verifyJob := mr.Job{
		Name:        "lsh-verify",
		Input:       cands,
		Mapper:      mr.IdentityMapper{},
		Reducer:     &verifyReducer{cfg: cfg},
		NumReducers: numReducers,
		SideInputs:  map[string]*mrfs.Dataset{"capsules": capsules},
		// The verifier looks entities up from the side table in its reduce
		// stage.
		SideInputsAtReduce: true,
		OutputName:         "lsh-pairs",
	}
	out, vstats, err := mr.Run(cluster, verifyJob)
	if err != nil {
		return nil, ps, err
	}
	ps.Add(vstats)

	pairs, err := records.DecodePairs(out)
	if err != nil {
		return nil, ps, err
	}
	return pairs, ps, nil
}

// capsuleJob groups raw tuples into whole multisets (one record each).
func capsuleJob(input *mrfs.Dataset, numReducers int) mr.Job {
	return mr.Job{
		Name:        "lsh-capsule",
		Input:       input,
		Mapper:      mr.IdentityMapper{},
		Reducer:     lshCapsuleReducer{},
		NumReducers: numReducers,
		OutputName:  "lsh-capsules",
	}
}

type lshCapsuleReducer struct{}

func (lshCapsuleReducer) Reduce(ctx *mr.TaskContext, key []byte, values *mr.Values, emit mr.Emitter) error {
	if err := ctx.Reserve(values.Bytes()); err != nil {
		return fmt.Errorf("lsh: multiset does not fit in memory as a capsule: %w", err)
	}
	defer ctx.Release(values.Bytes())
	entries := make([]multiset.Entry, 0, values.Len())
	for {
		v, ok := values.Next()
		if !ok {
			break
		}
		e, err := records.DecodeRawVal(v.Val)
		if err != nil {
			return err
		}
		if e.Count > 0 {
			entries = append(entries, e)
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Elem < entries[j].Elem })
	var b codec.Buffer
	b.PutUvarint(uint64(len(entries)))
	for _, e := range entries {
		b.PutUvarint(uint64(e.Elem))
		b.PutUint32(e.Count)
	}
	emit.Emit(key, b.Clone())
	return nil
}

func decodeLSHCapsule(val []byte) ([]multiset.Entry, error) {
	r := codec.NewReader(val)
	n := r.Uvarint()
	out := make([]multiset.Entry, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, multiset.Entry{Elem: multiset.Elem(r.Uvarint()), Count: r.Uint32()})
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("lsh: bad capsule: %w", err)
	}
	return out, nil
}

// bandMapper computes signatures and emits one record per band.
type bandMapper struct {
	cfg    Config
	hasher *MinHasher
}

func (m *bandMapper) Setup(_ *mr.TaskContext) error {
	m.hasher = NewMinHasher(m.cfg.Bands*m.cfg.Rows, m.cfg.Seed)
	return nil
}

func (m *bandMapper) Map(_ *mr.TaskContext, rec mrfs.Record, emit mr.Emitter) error {
	id, err := records.DecodeRawKey(rec.Key)
	if err != nil {
		return err
	}
	entries, err := decodeLSHCapsule(rec.Val)
	if err != nil {
		return err
	}
	ms := multiset.Multiset{ID: id, Entries: entries}
	if ms.Cardinality() == 0 {
		return nil
	}
	sig := m.hasher.Signature(ms)
	for band := 0; band < m.cfg.Bands; band++ {
		h := uint64(band) + 0x9e3779b97f4a7c15
		for r := 0; r < m.cfg.Rows; r++ {
			h = splitmix(h ^ sig[band*m.cfg.Rows+r])
		}
		var key codec.Buffer
		key.PutUvarint(uint64(band))
		key.PutUvarint(h)
		var val codec.Buffer
		val.PutUvarint(uint64(id))
		for _, s := range sig {
			val.PutUvarint(s)
		}
		emit.Emit(key.Clone(), val.Clone())
	}
	return nil
}

// bandReducer emits every pair of entities sharing a band bucket, with
// their signature agreement as the estimate.
type bandReducer struct{}

func (bandReducer) Reduce(ctx *mr.TaskContext, _ []byte, values *mr.Values, emit mr.Emitter) error {
	if err := ctx.Reserve(values.Bytes()); err != nil {
		return fmt.Errorf("lsh: band bucket does not fit in memory: %w", err)
	}
	defer ctx.Release(values.Bytes())
	type member struct {
		id  multiset.ID
		sig []uint64
	}
	var members []member
	for {
		v, ok := values.Next()
		if !ok {
			break
		}
		r := codec.NewReader(v.Val)
		mb := member{id: multiset.ID(r.Uvarint())}
		for r.Remaining() > 0 {
			mb.sig = append(mb.sig, r.Uvarint())
		}
		if err := r.Err(); err != nil {
			return err
		}
		members = append(members, mb)
	}
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			if members[i].id == members[j].id {
				continue
			}
			est := Estimate(members[i].sig, members[j].sig)
			a, b := members[i].id, members[j].id
			if a > b {
				a, b = b, a
			}
			emit.Emit(records.EncodePairKey(a, b), records.EncodePairVal(est))
		}
	}
	return nil
}

// verifyReducer deduplicates candidates and applies the threshold, either
// on the signature estimate or on the exact Ruzicka similarity computed
// from the capsule side table.
type verifyReducer struct {
	cfg  Config
	sets map[multiset.ID]multiset.Multiset
}

func (r *verifyReducer) Setup(ctx *mr.TaskContext) error {
	if !r.cfg.Verify {
		return nil
	}
	caps := ctx.Side["capsules"]
	r.sets = make(map[multiset.ID]multiset.Multiset, caps.NumRecords())
	for _, rec := range caps.All() {
		id, err := records.DecodeRawKey(rec.Key)
		if err != nil {
			return err
		}
		entries, err := decodeLSHCapsule(rec.Val)
		if err != nil {
			return err
		}
		r.sets[id] = multiset.Multiset{ID: id, Entries: entries}
	}
	return nil
}

func (r *verifyReducer) Reduce(_ *mr.TaskContext, key []byte, values *mr.Values, emit mr.Emitter) error {
	v, ok := values.Next()
	if !ok {
		return nil
	}
	rec, err := records.DecodePair(mrfs.Record{Key: key, Val: v.Val})
	if err != nil {
		return err
	}
	sim := rec.Sim
	if r.cfg.Verify {
		a, okA := r.sets[rec.A]
		b, okB := r.sets[rec.B]
		if !okA || !okB {
			return fmt.Errorf("lsh: capsule missing for pair (%d,%d)", rec.A, rec.B)
		}
		sim = similarity.Exact(similarity.Ruzicka{}, a, b)
	}
	if sim+1e-12 >= r.cfg.Threshold {
		emit.Emit(key, records.EncodePairVal(sim))
	}
	return nil
}
