package lsh

import (
	"math"
	"math/bits"

	"vsmartjoin/internal/multiset"
	"vsmartjoin/internal/similarity"
)

// SimHash implements Charikar's rounding-based similarity estimation (the
// paper's [9], §6.1): each entity is summarized by a b-bit fingerprint of
// random-hyperplane signs, and the fraction of agreeing bits estimates the
// angular (cosine) similarity. Unlike MinHash it respects multiplicities
// natively — the property Henzinger found made it more accurate than
// shingle MinHash on near-duplicate detection (the paper's footnote 7).
type SimHash struct {
	bitsN int
	seed  uint64
}

// NewSimHash returns an estimator with b fingerprint bits (b ≤ 64·k is
// handled by concatenating words; here b is capped at 256).
func NewSimHash(b int, seed uint64) *SimHash {
	if b < 1 {
		b = 1
	}
	if b > 256 {
		b = 256
	}
	return &SimHash{bitsN: b, seed: seed}
}

// Bits reports the fingerprint length in bits.
func (s *SimHash) Bits() int { return s.bitsN }

// Fingerprint computes the b-bit fingerprint of a multiset: for each bit,
// elements vote with ±multiplicity according to a hash sign; the bit is
// the sign of the weighted sum.
func (s *SimHash) Fingerprint(m multiset.Multiset) []uint64 {
	words := (s.bitsN + 63) / 64
	sums := make([]int64, s.bitsN)
	for _, e := range m.Entries {
		h := splitmix(uint64(e.Elem) ^ s.seed)
		for b := 0; b < s.bitsN; b++ {
			if b%64 == 0 && b > 0 {
				h = splitmix(h)
			}
			if h>>(uint(b)%64)&1 == 1 {
				sums[b] += int64(e.Count)
			} else {
				sums[b] -= int64(e.Count)
			}
		}
	}
	fp := make([]uint64, words)
	for b, v := range sums {
		if v > 0 {
			fp[b/64] |= 1 << (uint(b) % 64)
		}
	}
	return fp
}

// EstimateAngular returns the estimated angular similarity
// 1 − θ/π ∈ [0, 1] from two fingerprints: the fraction of agreeing bits.
func (s *SimHash) EstimateAngular(a, b []uint64) float64 {
	if len(a) != len(b) || s.bitsN == 0 {
		return 0
	}
	agree := 0
	counted := 0
	for w := range a {
		x := a[w] ^ b[w]
		width := 64
		if remaining := s.bitsN - w*64; remaining < 64 {
			width = remaining
			x &= (1 << uint(remaining)) - 1
		}
		agree += width - bits.OnesCount64(x)
		counted += width
	}
	return float64(agree) / float64(counted)
}

// CosineOf converts an angular-similarity estimate into the cosine it
// implies: cos(π·(1−est)), clamped to [−1, 1].
func CosineOf(est float64) float64 {
	c := math.Cos(math.Pi * (1 - est))
	if c < -1 {
		c = -1
	}
	if c > 1 {
		c = 1
	}
	return c
}

// TrueAngular computes the exact angular similarity 1 − θ/π of two
// multisets under vector cosine — the quantity SimHash estimates.
func TrueAngular(a, b multiset.Multiset) float64 {
	cos := similarity.Exact(similarity.VectorCosine{}, a, b)
	if cos > 1 {
		cos = 1
	}
	if cos < 0 {
		cos = 0
	}
	return 1 - math.Acos(cos)/math.Pi
}
