package lsh

import (
	"math/rand"
	"testing"

	"vsmartjoin/internal/mr"
	"vsmartjoin/internal/ppjoin"
	"vsmartjoin/internal/records"
	"vsmartjoin/internal/similarity"
)

func TestMRJoinMatchesSequentialLSH(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	sets := randomMultisets(rng, 100, 30, 8, 3)
	cfg := Config{Bands: 16, Rows: 4, Seed: 5, Threshold: 0.7, Verify: true}
	seq, _, err := Join(sets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	input := records.BuildInput("in", sets, 6)
	dist, stats, err := MRJoin(mr.NewCluster(4, 1<<22), input, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !records.SamePairs(dist, seq, 1e-9) {
		t.Fatalf("distributed LSH diverges from sequential: %d vs %d pairs", len(dist), len(seq))
	}
	if len(stats.Jobs) != 3 {
		t.Fatalf("jobs: %d", len(stats.Jobs))
	}
}

func TestMRJoinRecallAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	sets := randomMultisets(rng, 120, 40, 10, 3)
	truth := ppjoin.Naive(sets, similarity.Ruzicka{}, 0.7)
	input := records.BuildInput("in", sets, 6)
	dist, _, err := MRJoin(mr.NewCluster(4, 1<<22), input, Config{
		Bands: 16, Rows: 4, Seed: 3, Threshold: 0.7, Verify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r := Recall(dist, truth); r < 0.9 {
		t.Fatalf("recall %v < 0.9", r)
	}
	// Verified mode: no false positives.
	type key struct{ a, b uint64 }
	tm := map[key]bool{}
	for _, p := range truth {
		tm[key{uint64(p.A), uint64(p.B)}] = true
	}
	for _, p := range dist {
		if !tm[key{uint64(p.A), uint64(p.B)}] {
			t.Fatalf("false positive %v", p)
		}
	}
}

func TestMRJoinEstimateMode(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	sets := randomMultisets(rng, 60, 20, 6, 3)
	input := records.BuildInput("in", sets, 4)
	dist, _, err := MRJoin(mr.NewCluster(4, 1<<22), input, Config{
		Bands: 8, Rows: 4, Seed: 3, Threshold: 0.6,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range dist {
		if p.Sim < 0.6-1e-9 || p.Sim > 1 {
			t.Fatalf("estimate out of range: %v", p)
		}
	}
}

func TestMRJoinValidation(t *testing.T) {
	input := records.BuildInput("in", nil, 1)
	if _, _, err := MRJoin(mr.NewCluster(1, 1<<20), input, Config{}); err == nil {
		t.Fatal("invalid config should fail")
	}
}
