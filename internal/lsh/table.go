package lsh

import "vsmartjoin/internal/multiset"

// This file is the narrow interface the adaptive planner calls: an
// incremental banded MinHash table the online index (internal/index)
// maintains for partitions whose statistics favor the LSH strategy.
// Where Join is the batch, whole-dataset baseline, a Table indexes live
// entities one at a time and answers per-query bucket lookups — the
// candidate-generation half only. Verification stays with the caller,
// which is what keeps the strategy exact: bucket collisions merely seed
// a top-k/kNN floor early, and the caller sweeps every remaining entity
// under that floor.

// SignatureInto computes the MinHash signature of a multiset into sig
// (reused when its capacity suffices) — the allocation-free form the
// index's pooled query scratch calls; Signature remains the allocating
// convenience.
func (m *MinHasher) SignatureInto(ms multiset.Multiset, sig []uint64) []uint64 {
	if cap(sig) < len(m.seeds) {
		sig = make([]uint64, len(m.seeds))
	}
	sig = sig[:len(m.seeds)]
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	for _, e := range ms.Entries {
		for c := uint32(1); c <= e.Count; c++ {
			for i, seed := range m.seeds {
				if h := hashItem(seed, e.Elem, c); h < sig[i] {
					sig[i] = h
				}
			}
		}
	}
	return sig
}

// bandKey folds one band of a signature into its bucket key. Join and
// Table share it, so the batch baseline and the incremental table
// always agree on which signatures collide.
func bandKey(band, rows int, sig []uint64) uint64 {
	h := uint64(band) + 0x9e3779b97f4a7c15
	for r := 0; r < rows; r++ {
		h = splitmix(h ^ sig[band*rows+r])
	}
	return h
}

// Table is an incremental banded MinHash index over live entities,
// keyed by entity ID. It is not concurrency-safe; the owning index
// serializes mutations and lookups under its own lock (lookups are
// read-only and may share a read lock).
type Table struct {
	hasher  *MinHasher
	bands   int
	rows    int
	buckets []map[uint64][]uint64 // per band: bucket key → entity IDs
	sigs    map[uint64][]uint64   // entity ID → stored signature
}

// NewTable returns an empty table with the given banding (bands·rows
// hash functions derived from seed; both clamped to at least 1).
func NewTable(bands, rows int, seed uint64) *Table {
	if bands < 1 {
		bands = 1
	}
	if rows < 1 {
		rows = 1
	}
	t := &Table{
		hasher:  NewMinHasher(bands*rows, seed),
		bands:   bands,
		rows:    rows,
		buckets: make([]map[uint64][]uint64, bands),
		sigs:    make(map[uint64][]uint64),
	}
	for i := range t.buckets {
		t.buckets[i] = make(map[uint64][]uint64)
	}
	return t
}

// Hasher exposes the table's hash family so callers can compute query
// signatures with SignatureInto.
func (t *Table) Hasher() *MinHasher { return t.hasher }

// Bands reports the band count.
func (t *Table) Bands() int { return t.bands }

// Len reports the number of indexed entities.
func (t *Table) Len() int { return len(t.sigs) }

// Add indexes an entity, replacing any previous signature under the
// same ID. Empty multisets are dropped (they can collide with anything
// but overlap with nothing, exactly as Join skips them).
func (t *Table) Add(id uint64, ms multiset.Multiset) {
	t.Remove(id)
	if len(ms.Entries) == 0 {
		return
	}
	sig := t.hasher.Signature(ms)
	t.sigs[id] = sig
	for band := 0; band < t.bands; band++ {
		k := bandKey(band, t.rows, sig)
		t.buckets[band][k] = append(t.buckets[band][k], id)
	}
}

// Remove drops an entity from every band bucket.
func (t *Table) Remove(id uint64) {
	sig, ok := t.sigs[id]
	if !ok {
		return
	}
	delete(t.sigs, id)
	for band := 0; band < t.bands; band++ {
		k := bandKey(band, t.rows, sig)
		members := t.buckets[band][k]
		for i, m := range members {
			if m == id {
				members[i] = members[len(members)-1]
				members = members[:len(members)-1]
				break
			}
		}
		if len(members) == 0 {
			delete(t.buckets[band], k)
		} else {
			t.buckets[band][k] = members
		}
	}
}

// Bucket returns the entity IDs colliding with the query signature in
// one band. The slice is the table's own storage — callers must not
// mutate or retain it past the next mutation (the index reads it under
// its lock and copies nothing).
func (t *Table) Bucket(band int, sig []uint64) []uint64 {
	return t.buckets[band][bandKey(band, t.rows, sig)]
}
