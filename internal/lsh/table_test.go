package lsh

import (
	"fmt"
	"math/rand"
	"testing"

	"vsmartjoin/internal/multiset"
)

func tableSet(id uint64, elems ...uint64) multiset.Multiset {
	entries := make([]multiset.Entry, len(elems))
	for i, e := range elems {
		entries[i] = multiset.Entry{Elem: multiset.Elem(e), Count: 1}
	}
	return multiset.Multiset{ID: multiset.ID(id), Entries: entries}
}

// TestTableSelfCollision pins the property the index's LSH strategy
// rests on: an indexed entity collides with its own query signature in
// every band, so the entity seeding a floor is always found.
func TestTableSelfCollision(t *testing.T) {
	tab := NewTable(8, 2, 42)
	ms := tableSet(7, 1, 2, 3, 4, 5)
	tab.Add(7, ms)
	sig := tab.Hasher().SignatureInto(ms, nil)
	for band := 0; band < tab.Bands(); band++ {
		found := false
		for _, id := range tab.Bucket(band, sig) {
			if id == 7 {
				found = true
			}
		}
		if !found {
			t.Fatalf("band %d bucket misses the entity's own ID", band)
		}
	}
}

// TestTableMatchesJoinCollisions gates the incremental table against
// the batch Join baseline: both are built from bandKey over the same
// hash family, so for identical (bands, rows, seed) the set of IDs
// colliding with a query in any band must equal the brute-force "same
// band key" computation over all stored signatures.
func TestTableMatchesJoinCollisions(t *testing.T) {
	const bands, rows, seed = 6, 3, 99
	rng := rand.New(rand.NewSource(5))
	tab := NewTable(bands, rows, seed)
	sets := make(map[uint64]multiset.Multiset)
	for id := uint64(1); id <= 40; id++ {
		elems := make([]uint64, 0, 6)
		base := uint64(rng.Intn(20))
		for j := 0; j < 6; j++ {
			elems = append(elems, (base+uint64(rng.Intn(8)))%40)
		}
		sets[id] = tableSet(id, elems...)
		tab.Add(id, sets[id])
	}
	hasher := NewMinHasher(bands*rows, seed)
	for qid, qms := range sets {
		sig := hasher.SignatureInto(qms, nil)
		for band := 0; band < bands; band++ {
			want := map[uint64]bool{}
			qk := bandKey(band, rows, sig)
			for id, ms := range sets {
				if bandKey(band, rows, hasher.Signature(ms)) == qk {
					want[id] = true
				}
			}
			got := map[uint64]bool{}
			for _, id := range tab.Bucket(band, sig) {
				got[id] = true
			}
			if len(got) != len(want) {
				t.Fatalf("query %d band %d: table bucket %v, brute force %v", qid, band, got, want)
			}
			for id := range want {
				if !got[id] {
					t.Fatalf("query %d band %d: table bucket misses %d", qid, band, id)
				}
			}
		}
	}
}

// TestTableChurn pins the mutation contract: Remove drops an entity
// from every band, Add replaces a previous signature (no stale bucket
// entries), and empty multisets are never indexed.
func TestTableChurn(t *testing.T) {
	tab := NewTable(4, 2, 7)
	a := tableSet(1, 10, 11, 12)
	b := tableSet(1, 90, 91, 92)
	tab.Add(1, a)
	tab.Add(1, b) // upsert: the signature of a must be gone
	if tab.Len() != 1 {
		t.Fatalf("Len = %d after upsert, want 1", tab.Len())
	}
	oldSig := tab.Hasher().SignatureInto(a, nil)
	for band := 0; band < tab.Bands(); band++ {
		for _, id := range tab.Bucket(band, oldSig) {
			if id == 1 && bandKey(band, 2, oldSig) != bandKey(band, 2, tab.Hasher().Signature(b)) {
				t.Fatalf("band %d still holds the pre-upsert signature", band)
			}
		}
	}
	tab.Remove(1)
	if tab.Len() != 0 {
		t.Fatalf("Len = %d after remove, want 0", tab.Len())
	}
	newSig := tab.Hasher().SignatureInto(b, nil)
	for band := 0; band < tab.Bands(); band++ {
		if ids := tab.Bucket(band, newSig); len(ids) != 0 {
			t.Fatalf("band %d bucket %v after remove", band, ids)
		}
	}
	tab.Remove(1) // removing a missing ID is a no-op, not a panic
	tab.Add(2, multiset.Multiset{ID: 2})
	if tab.Len() != 0 {
		t.Fatal("empty multiset was indexed")
	}
}

// TestTableClampsDegenerateBanding mirrors NewTable's documented
// clamping: non-positive bands/rows become 1, not a panic.
func TestTableClampsDegenerateBanding(t *testing.T) {
	tab := NewTable(0, -3, 1)
	if tab.Bands() != 1 {
		t.Fatalf("Bands = %d, want 1", tab.Bands())
	}
	tab.Add(1, tableSet(1, 5))
	sig := tab.Hasher().SignatureInto(tableSet(1, 5), nil)
	if ids := tab.Bucket(0, sig); len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("Bucket = %v, want [1]", ids)
	}
}

// TestSignatureIntoReuse pins the allocation-free form: a buffer of
// sufficient capacity is reused in place and agrees with Signature.
func TestSignatureIntoReuse(t *testing.T) {
	h := NewMinHasher(16, 3)
	ms := tableSet(1, 2, 4, 6)
	buf := make([]uint64, 0, 16)
	got := h.SignatureInto(ms, buf)
	if &got[0] != &buf[:1][0] {
		t.Fatal("SignatureInto reallocated despite sufficient capacity")
	}
	want := h.Signature(ms)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("SignatureInto = %v, Signature = %v", got, want)
	}
}
