// Package lsh implements the MinHash locality-sensitive-hashing baseline
// the paper surveys (§6.1): Broder-style resemblance estimation with
// banding for candidate generation. Multisets are handled through the
// expanded set representation, so the estimated quantity is Ruzicka (the
// generalized Jaccard), matching the paper's observation that LSH schemes
// can adopt the expansion of Chaudhuri et al.
//
// The algorithms here are sequential and approximate — exactly the
// properties that motivated the exact distributed V-SMART-Join — and serve
// as the accuracy/recall comparison baseline.
package lsh

import (
	"fmt"
	"sort"

	"vsmartjoin/internal/multiset"
	"vsmartjoin/internal/records"
	"vsmartjoin/internal/similarity"
)

// MinHasher computes k-permutation MinHash signatures.
type MinHasher struct {
	seeds []uint64
}

// NewMinHasher returns a hasher with k hash functions derived from seed.
func NewMinHasher(k int, seed uint64) *MinHasher {
	if k < 1 {
		k = 1
	}
	seeds := make([]uint64, k)
	s := seed
	for i := range seeds {
		s = splitmix(s)
		seeds[i] = s
	}
	return &MinHasher{seeds: seeds}
}

// K reports the signature length.
func (m *MinHasher) K() int { return len(m.seeds) }

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func hashItem(seed uint64, e multiset.Elem, copy uint32) uint64 {
	return splitmix(seed ^ splitmix(uint64(e)*0x100000001b3+uint64(copy)))
}

// Signature computes the MinHash signature of a multiset over its expanded
// set representation.
func (m *MinHasher) Signature(ms multiset.Multiset) []uint64 {
	sig := make([]uint64, len(m.seeds))
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	for _, e := range ms.Entries {
		for c := uint32(1); c <= e.Count; c++ {
			for i, seed := range m.seeds {
				if h := hashItem(seed, e.Elem, c); h < sig[i] {
					sig[i] = h
				}
			}
		}
	}
	return sig
}

// Estimate returns the fraction of agreeing signature positions — an
// unbiased estimator of the Ruzicka similarity.
func Estimate(a, b []uint64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	match := 0
	for i := range a {
		if a[i] == b[i] {
			match++
		}
	}
	return float64(match) / float64(len(a))
}

// Config parameterizes an approximate LSH join.
type Config struct {
	// Bands × Rows hash functions are used; candidates collide on at
	// least one band.
	Bands, Rows int
	// Seed derives the hash family.
	Seed uint64
	// Threshold is the similarity cut-off.
	Threshold float64
	// Verify recomputes the exact Ruzicka for every candidate instead of
	// using the signature estimate.
	Verify bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Bands < 1 || c.Rows < 1 {
		return fmt.Errorf("lsh: bands %d and rows %d must be positive", c.Bands, c.Rows)
	}
	if c.Threshold < 0 || c.Threshold > 1 {
		return fmt.Errorf("lsh: threshold %v outside [0,1]", c.Threshold)
	}
	return nil
}

// Stats reports the work an LSH join did.
type Stats struct {
	Candidates int // distinct colliding pairs
	Results    int
}

// Join finds pairs whose (estimated or verified) Ruzicka similarity is at
// least the threshold. It is approximate: pairs missed by every band are
// lost, and estimates carry sampling error.
func Join(sets []multiset.Multiset, cfg Config) ([]records.Pair, Stats, error) {
	var stats Stats
	if err := cfg.Validate(); err != nil {
		return nil, stats, err
	}
	hasher := NewMinHasher(cfg.Bands*cfg.Rows, cfg.Seed)
	sigs := make([][]uint64, len(sets))
	for i, s := range sets {
		sigs[i] = hasher.Signature(s)
	}
	type pairKey struct{ a, b int }
	cands := make(map[pairKey]struct{})
	for band := 0; band < cfg.Bands; band++ {
		buckets := make(map[uint64][]int)
		for i, sig := range sigs {
			if sets[i].Cardinality() == 0 {
				continue
			}
			h := bandKey(band, cfg.Rows, sig)
			buckets[h] = append(buckets[h], i)
		}
		for _, members := range buckets {
			for x := 0; x < len(members); x++ {
				for y := x + 1; y < len(members); y++ {
					a, b := members[x], members[y]
					if a > b {
						a, b = b, a
					}
					cands[pairKey{a, b}] = struct{}{}
				}
			}
		}
	}
	stats.Candidates = len(cands)
	var out []records.Pair
	for pk := range cands {
		var sim float64
		if cfg.Verify {
			sim = similarity.Exact(similarity.Ruzicka{}, sets[pk.a], sets[pk.b])
		} else {
			sim = Estimate(sigs[pk.a], sigs[pk.b])
		}
		if sim+1e-12 >= cfg.Threshold {
			out = append(out, records.Pair{A: sets[pk.a].ID, B: sets[pk.b].ID, Sim: sim}.Canonical())
		}
	}
	records.SortPairs(out)
	stats.Results = len(out)
	return out, stats, nil
}

// Recall measures the fraction of truth pairs found by approx — the
// LSH-vs-exact comparison metric.
func Recall(approx, truth []records.Pair) float64 {
	if len(truth) == 0 {
		return 1
	}
	type key struct{ a, b multiset.ID }
	found := make(map[key]struct{}, len(approx))
	for _, p := range approx {
		found[key{p.A, p.B}] = struct{}{}
	}
	hit := 0
	for _, p := range truth {
		if _, ok := found[key{p.A, p.B}]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}

// SortSignature is a test helper exposing deterministic signature ordering.
func SortSignature(sig []uint64) {
	sort.Slice(sig, func(i, j int) bool { return sig[i] < sig[j] })
}
