package lsh

import (
	"math"
	"math/rand"
	"testing"

	"vsmartjoin/internal/multiset"
)

func TestSimHashIdenticalEntities(t *testing.T) {
	m := multiset.New(1, []multiset.Entry{{Elem: 3, Count: 2}, {Elem: 9, Count: 5}})
	s := NewSimHash(128, 11)
	a := s.Fingerprint(m)
	b := s.Fingerprint(m)
	if got := s.EstimateAngular(a, b); got != 1 {
		t.Fatalf("self agreement: %v", got)
	}
}

func TestSimHashRespectsMultiplicity(t *testing.T) {
	// The paper's footnote 7: Charikar's scheme respects repeated
	// elements. Doubling all multiplicities leaves the direction (and so
	// the fingerprint) unchanged.
	m := multiset.New(1, []multiset.Entry{{Elem: 1, Count: 1}, {Elem: 2, Count: 3}, {Elem: 5, Count: 2}})
	d := multiset.New(2, []multiset.Entry{{Elem: 1, Count: 2}, {Elem: 2, Count: 6}, {Elem: 5, Count: 4}})
	s := NewSimHash(256, 13)
	if got := s.EstimateAngular(s.Fingerprint(m), s.Fingerprint(d)); got != 1 {
		t.Fatalf("scaled multiset should have identical fingerprint: %v", got)
	}
}

func TestSimHashEstimateAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	s := NewSimHash(256, 19)
	var worst float64
	for trial := 0; trial < 50; trial++ {
		a := randomMultisets(rng, 1, 12, 10, 5)[0]
		b := randomMultisets(rng, 1, 12, 10, 5)[0]
		if a.Cardinality() == 0 || b.Cardinality() == 0 {
			continue
		}
		truth := TrueAngular(a, b)
		est := s.EstimateAngular(s.Fingerprint(a), s.Fingerprint(b))
		if d := math.Abs(truth - est); d > worst {
			worst = d
		}
	}
	// 256 bits → binomial stddev ≈ 0.031; allow 5 sigma.
	if worst > 0.16 {
		t.Fatalf("worst angular error %v > 0.16", worst)
	}
}

func TestSimHashDisjointEntities(t *testing.T) {
	a := multiset.New(1, []multiset.Entry{{Elem: 1, Count: 3}})
	b := multiset.New(2, []multiset.Entry{{Elem: 1000, Count: 3}})
	s := NewSimHash(256, 23)
	est := s.EstimateAngular(s.Fingerprint(a), s.Fingerprint(b))
	// Orthogonal vectors → angular similarity 0.5 (θ = π/2).
	if math.Abs(est-0.5) > 0.12 {
		t.Fatalf("orthogonal estimate: %v want ≈0.5", est)
	}
}

func TestCosineOf(t *testing.T) {
	if got := CosineOf(1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("CosineOf(1)=%v", got)
	}
	if got := CosineOf(0.5); math.Abs(got) > 1e-12 {
		t.Fatalf("CosineOf(0.5)=%v", got)
	}
}

func TestSimHashBitsClamping(t *testing.T) {
	if NewSimHash(0, 1).Bits() != 1 {
		t.Fatal("min clamp")
	}
	if NewSimHash(1000, 1).Bits() != 256 {
		t.Fatal("max clamp")
	}
}

func TestSimHashMismatchedFingerprints(t *testing.T) {
	s := NewSimHash(64, 1)
	if got := s.EstimateAngular([]uint64{1}, []uint64{1, 2}); got != 0 {
		t.Fatalf("mismatched lengths: %v", got)
	}
}
