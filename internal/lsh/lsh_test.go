package lsh

import (
	"math"
	"math/rand"
	"testing"

	"vsmartjoin/internal/multiset"
	"vsmartjoin/internal/ppjoin"
	"vsmartjoin/internal/records"
	"vsmartjoin/internal/similarity"
)

func randomMultisets(rng *rand.Rand, n, alphabet, maxLen, maxCount int) []multiset.Multiset {
	sets := make([]multiset.Multiset, 0, n)
	for i := 0; i < n; i++ {
		l := 1 + rng.Intn(maxLen)
		entries := make([]multiset.Entry, l)
		for j := range entries {
			entries[j] = multiset.Entry{
				Elem:  multiset.Elem(rng.Intn(alphabet)),
				Count: uint32(1 + rng.Intn(maxCount)),
			}
		}
		sets = append(sets, multiset.New(multiset.ID(i+1), entries))
	}
	return sets
}

func TestSignatureDeterministic(t *testing.T) {
	m := multiset.New(1, []multiset.Entry{{Elem: 3, Count: 2}, {Elem: 9, Count: 1}})
	h := NewMinHasher(16, 42)
	a := h.Signature(m)
	b := h.Signature(m)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("signature not deterministic")
		}
	}
	h2 := NewMinHasher(16, 43)
	c := h2.Signature(m)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds gave identical signatures")
	}
}

func TestIdenticalSetsFullAgreement(t *testing.T) {
	m := multiset.New(1, []multiset.Entry{{Elem: 3, Count: 2}, {Elem: 9, Count: 1}})
	h := NewMinHasher(32, 7)
	if got := Estimate(h.Signature(m), h.Signature(m)); got != 1 {
		t.Fatalf("self estimate: %v", got)
	}
}

func TestDisjointSetsNearZero(t *testing.T) {
	a := multiset.New(1, []multiset.Entry{{Elem: 1, Count: 1}, {Elem: 2, Count: 1}})
	b := multiset.New(2, []multiset.Entry{{Elem: 100, Count: 1}, {Elem: 200, Count: 1}})
	h := NewMinHasher(64, 7)
	if got := Estimate(h.Signature(a), h.Signature(b)); got > 0.1 {
		t.Fatalf("disjoint estimate too high: %v", got)
	}
}

// The estimator is unbiased: with k=256, estimates should be within ±0.15
// of true Ruzicka on random multisets (binomial stddev ≈ 0.03).
func TestEstimateAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	h := NewMinHasher(256, 99)
	var worst float64
	for trial := 0; trial < 40; trial++ {
		sets := randomMultisets(rng, 2, 10, 8, 3)
		a, b := sets[0], sets[1]
		truth := similarity.Exact(similarity.Ruzicka{}, a, b)
		est := Estimate(h.Signature(a), h.Signature(b))
		if d := math.Abs(truth - est); d > worst {
			worst = d
		}
	}
	if worst > 0.15 {
		t.Fatalf("worst estimate error %v > 0.15", worst)
	}
}

func TestJoinVerifiedFindsSimilarPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sets := randomMultisets(rng, 120, 40, 10, 3)
	truth := ppjoin.Naive(sets, similarity.Ruzicka{}, 0.7)
	approx, stats, err := Join(sets, Config{Bands: 16, Rows: 4, Seed: 3, Threshold: 0.7, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if r := Recall(approx, truth); r < 0.9 {
		t.Fatalf("recall %v < 0.9 (found %d of %d, candidates %d)", r, len(approx), len(truth), stats.Candidates)
	}
	// Verified mode cannot produce false positives.
	truthAll := ppjoin.Naive(sets, similarity.Ruzicka{}, 0.7)
	type key struct{ a, b multiset.ID }
	tm := map[key]bool{}
	for _, p := range truthAll {
		tm[key{p.A, p.B}] = true
	}
	for _, p := range approx {
		if !tm[key{p.A, p.B}] {
			t.Fatalf("false positive %v in verified mode", p)
		}
	}
}

func TestJoinEstimateOnlyApproximates(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	sets := randomMultisets(rng, 60, 20, 8, 3)
	approx, _, err := Join(sets, Config{Bands: 8, Rows: 4, Seed: 3, Threshold: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	// Estimates are in [0,1] and pairs are canonical + sorted.
	for i, p := range approx {
		if p.Sim < 0 || p.Sim > 1 || p.A >= p.B {
			t.Fatalf("bad pair %v", p)
		}
		if i > 0 && (approx[i-1].A > p.A || (approx[i-1].A == p.A && approx[i-1].B >= p.B)) {
			t.Fatal("pairs not sorted")
		}
	}
}

func TestJoinValidation(t *testing.T) {
	bad := []Config{
		{Bands: 0, Rows: 4},
		{Bands: 4, Rows: 0},
		{Bands: 4, Rows: 4, Threshold: -0.1},
		{Bands: 4, Rows: 4, Threshold: 1.1},
	}
	for i, cfg := range bad {
		if _, _, err := Join(nil, cfg); err == nil {
			t.Fatalf("case %d should fail", i)
		}
	}
}

func TestRecall(t *testing.T) {
	a := []records.Pair{{A: 1, B: 2}, {A: 3, B: 4}}
	b := []records.Pair{{A: 1, B: 2}}
	if r := Recall(b, a); r != 0.5 {
		t.Fatalf("recall: %v", r)
	}
	if r := Recall(nil, nil); r != 1 {
		t.Fatalf("empty recall: %v", r)
	}
}
