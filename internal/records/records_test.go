package records

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vsmartjoin/internal/mrfs"
	"vsmartjoin/internal/multiset"
)

func TestRawKeyRoundTrip(t *testing.T) {
	f := func(id uint64) bool {
		got, err := DecodeRawKey(EncodeRawKey(multiset.ID(id)))
		return err == nil && got == multiset.ID(id)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRawValRoundTrip(t *testing.T) {
	f := func(elem uint64, count uint32) bool {
		e := multiset.Entry{Elem: multiset.Elem(elem), Count: count}
		got, err := DecodeRawVal(EncodeRawVal(e))
		return err == nil && got == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeRawKey(nil); err == nil {
		t.Fatal("empty key should fail")
	}
	if _, err := DecodeRawVal([]byte{0x80}); err == nil {
		t.Fatal("truncated val should fail")
	}
	if _, err := DecodePair(mrfs.Record{Key: []byte{1}, Val: nil}); err == nil {
		t.Fatal("bad pair should fail")
	}
}

func TestBuildAndDecodeInput(t *testing.T) {
	sets := []multiset.Multiset{
		multiset.New(3, []multiset.Entry{{Elem: 1, Count: 2}, {Elem: 5, Count: 1}}),
		multiset.New(1, []multiset.Entry{{Elem: 9, Count: 4}}),
	}
	d := BuildInput("in", sets, 3)
	if d.NumRecords() != 3 {
		t.Fatalf("records: %d", d.NumRecords())
	}
	back, err := DecodeInput(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].ID != 1 || back[1].ID != 3 {
		t.Fatalf("decode order: %v", back)
	}
	if !multiset.Equal(back[1], sets[0]) {
		t.Fatalf("roundtrip: %v vs %v", back[1], sets[0])
	}
}

func TestDecodeInputSumsDuplicates(t *testing.T) {
	d := mrfs.NewDataset("in", 1)
	d.Append(0, mrfs.Record{Key: EncodeRawKey(1), Val: EncodeRawVal(multiset.Entry{Elem: 7, Count: 2})})
	d.Append(0, mrfs.Record{Key: EncodeRawKey(1), Val: EncodeRawVal(multiset.Entry{Elem: 7, Count: 3})})
	back, err := DecodeInput(d)
	if err != nil {
		t.Fatal(err)
	}
	if back[0].Count(7) != 5 {
		t.Fatalf("duplicates not summed: %v", back)
	}
}

func TestPairRoundTripAndCanonical(t *testing.T) {
	rec := mrfs.Record{Key: EncodePairKey(9, 4), Val: EncodePairVal(0.75)}
	p, err := DecodePair(rec)
	if err != nil {
		t.Fatal(err)
	}
	if p.A != 9 || p.B != 4 || p.Sim != 0.75 {
		t.Fatalf("pair: %+v", p)
	}
	c := p.Canonical()
	if c.A != 4 || c.B != 9 {
		t.Fatalf("canonical: %+v", c)
	}
}

func TestDecodePairsSorts(t *testing.T) {
	d := mrfs.NewDataset("pairs", 2)
	d.Append(1, mrfs.Record{Key: EncodePairKey(5, 2), Val: EncodePairVal(0.9)})
	d.Append(0, mrfs.Record{Key: EncodePairKey(1, 3), Val: EncodePairVal(0.8)})
	ps, err := DecodePairs(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 || ps[0].A != 1 || ps[1].A != 2 {
		t.Fatalf("sorted pairs: %v", ps)
	}
}

func TestSamePairs(t *testing.T) {
	a := []Pair{{A: 1, B: 2, Sim: 0.5}, {A: 3, B: 4, Sim: 0.9}}
	b := []Pair{{A: 1, B: 2, Sim: 0.5 + 1e-12}, {A: 3, B: 4, Sim: 0.9}}
	if !SamePairs(a, b, 1e-9) {
		t.Fatal("should match within eps")
	}
	c := []Pair{{A: 1, B: 2, Sim: 0.5}, {A: 3, B: 5, Sim: 0.9}}
	if SamePairs(a, c, 1e-9) {
		t.Fatal("ids differ")
	}
	d := []Pair{{A: 1, B: 2, Sim: 0.7}, {A: 3, B: 4, Sim: 0.9}}
	if SamePairs(a, d, 1e-9) {
		t.Fatal("sims differ")
	}
	if SamePairs(a, a[:1], 1e-9) {
		t.Fatal("lengths differ")
	}
}

func TestSortPairsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ps := make([]Pair, 100)
	for i := range ps {
		ps[i] = Pair{A: multiset.ID(rng.Intn(10)), B: multiset.ID(rng.Intn(10))}
	}
	q := make([]Pair, len(ps))
	copy(q, ps)
	SortPairs(ps)
	SortPairs(q)
	for i := range ps {
		if ps[i] != q[i] {
			t.Fatal("sort not deterministic")
		}
	}
	for i := 1; i < len(ps); i++ {
		if ps[i-1].A > ps[i].A || (ps[i-1].A == ps[i].A && ps[i-1].B > ps[i].B) {
			t.Fatal("not sorted")
		}
	}
}
