// Package records defines the record formats shared by all join algorithms:
// the raw input tuples ⟨Mi, mi,k⟩ that datasets are made of, and the final
// output pairs ⟨Mi, Mj, Sim(Mi,Mj)⟩.
package records

import (
	"fmt"
	"sort"

	"vsmartjoin/internal/codec"
	"vsmartjoin/internal/mrfs"
	"vsmartjoin/internal/multiset"
)

// EncodeRawKey encodes the multiset identifier key of a raw tuple.
func EncodeRawKey(id multiset.ID) []byte {
	var b codec.Buffer
	b.PutUvarint(uint64(id))
	return b.Clone()
}

// DecodeRawKey decodes a multiset identifier key.
func DecodeRawKey(key []byte) (multiset.ID, error) {
	r := codec.NewReader(key)
	id := r.Uvarint()
	if err := r.Err(); err != nil {
		return 0, fmt.Errorf("records: bad raw key: %w", err)
	}
	return multiset.ID(id), nil
}

// EncodeRawVal encodes the ⟨ak, fi,k⟩ payload of a raw tuple.
func EncodeRawVal(e multiset.Entry) []byte {
	var b codec.Buffer
	b.PutUvarint(uint64(e.Elem))
	b.PutUint32(e.Count)
	return b.Clone()
}

// DecodeRawVal decodes a raw tuple payload.
func DecodeRawVal(val []byte) (multiset.Entry, error) {
	r := codec.NewReader(val)
	e := multiset.Entry{Elem: multiset.Elem(r.Uvarint()), Count: r.Uint32()}
	if err := r.Err(); err != nil {
		return multiset.Entry{}, fmt.Errorf("records: bad raw val: %w", err)
	}
	return e, nil
}

// BuildInput flattens multisets into a raw-tuple dataset striped over the
// given number of partitions: one record per ⟨Mi, mi,k⟩, exactly the input
// representation of the paper's joining phase.
func BuildInput(name string, sets []multiset.Multiset, partitions int) *mrfs.Dataset {
	var recs []mrfs.Record
	for _, m := range sets {
		key := EncodeRawKey(m.ID)
		for _, e := range m.Entries {
			recs = append(recs, mrfs.Record{Key: key, Val: EncodeRawVal(e)})
		}
	}
	return mrfs.FromRecords(name, recs, partitions)
}

// DecodeInput reconstructs the multisets of a raw-tuple dataset (test and
// tooling helper; duplicate ⟨Mi, ak⟩ tuples have their counts summed).
func DecodeInput(d *mrfs.Dataset) ([]multiset.Multiset, error) {
	byID := make(map[multiset.ID][]multiset.Entry)
	for _, rec := range d.All() {
		id, err := DecodeRawKey(rec.Key)
		if err != nil {
			return nil, err
		}
		e, err := DecodeRawVal(rec.Val)
		if err != nil {
			return nil, err
		}
		byID[id] = append(byID[id], e)
	}
	ids := make([]multiset.ID, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]multiset.Multiset, 0, len(ids))
	for _, id := range ids {
		out = append(out, multiset.New(id, byID[id]))
	}
	return out, nil
}

// Pair is one similar pair of the join result, canonically ordered A < B.
type Pair struct {
	A, B multiset.ID
	Sim  float64
}

// Canonical returns p with A ≤ B.
func (p Pair) Canonical() Pair {
	if p.A > p.B {
		p.A, p.B = p.B, p.A
	}
	return p
}

// EncodePairKey encodes a result pair key.
func EncodePairKey(a, b multiset.ID) []byte {
	var buf codec.Buffer
	buf.PutUvarint(uint64(a))
	buf.PutUvarint(uint64(b))
	return buf.Clone()
}

// EncodePairVal encodes a result similarity value.
func EncodePairVal(sim float64) []byte {
	var buf codec.Buffer
	buf.PutFloat64(sim)
	return buf.Clone()
}

// DecodePair decodes one result record.
func DecodePair(rec mrfs.Record) (Pair, error) {
	r := codec.NewReader(rec.Key)
	a := multiset.ID(r.Uvarint())
	b := multiset.ID(r.Uvarint())
	if err := r.Err(); err != nil {
		return Pair{}, fmt.Errorf("records: bad pair key: %w", err)
	}
	v := codec.NewReader(rec.Val)
	sim := v.Float64()
	if err := v.Err(); err != nil {
		return Pair{}, fmt.Errorf("records: bad pair val: %w", err)
	}
	return Pair{A: a, B: b, Sim: sim}, nil
}

// DecodePairs decodes and canonically sorts a result dataset.
func DecodePairs(d *mrfs.Dataset) ([]Pair, error) {
	out := make([]Pair, 0, d.NumRecords())
	for _, rec := range d.All() {
		p, err := DecodePair(rec)
		if err != nil {
			return nil, err
		}
		out = append(out, p.Canonical())
	}
	SortPairs(out)
	return out, nil
}

// SortPairs orders pairs by (A, B).
func SortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].A != ps[j].A {
			return ps[i].A < ps[j].A
		}
		return ps[i].B < ps[j].B
	})
}

// SamePairs reports whether two canonical sorted pair slices contain the
// same pairs with similarities equal within eps.
func SamePairs(a, b []Pair, eps float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].A != b[i].A || a[i].B != b[i].B {
			return false
		}
		d := a[i].Sim - b[i].Sim
		if d < -eps || d > eps {
			return false
		}
	}
	return true
}
