// Package knn implements the batch all-k-nearest-neighbors workload:
// for every entity of a dataset, its exact k nearest entities under the
// distance 1 − Sim, as a three-job MapReduce pipeline in the
// partition-and-refine style.
//
// Unlike the threshold join, kNN has no similarity cut-off to prune
// with — an entity's k-th neighbor may share nothing with it — so the
// pipeline derives its own per-entity cut-off instead:
//
//  1. knn-group partitions entities into cardinality ranges (the pivot
//     groups). The split points are fixed powers of two, so the same
//     dataset always yields the same groups on every cluster shape.
//  2. knn-bound runs the exact quadratic kernel within each group
//     (ppjoin.KNNBrute). Each entity leaves with its local k-nearest
//     list and the upper bound ub = the local k-th distance (1 when
//     the group holds fewer than k others — still a valid bound, since
//     every distance is at most 1).
//  3. knn-refine re-keys by entity and, per entity, folds in exactly
//     the foreign groups that can still matter: group g is probed only
//     when its distance lower bound distLB(e, g) ≤ ub. The lower bound
//     comes from the group's UniStats bounding box — SimUpperBound is
//     coordinate-wise unimodal in its second argument with the maximum
//     at b = a, so clamping e's own stats into the box maximizes the
//     bound over everything the group could contain. Every true
//     neighbor survives: a member at distance under the current k-th
//     distance has sim above the clamped bound's complement, so its
//     group passes the check. The reducers emit exact k-nearest lists
//     in the canonical (distance asc, ID asc) order.
//
// The online counterpart (Index.QueryKNN) answers the same question
// for one query at a time; the differential suite gates the two
// against each other.
package knn

import (
	"fmt"
	"math/bits"
	"sort"

	"vsmartjoin/internal/codec"
	"vsmartjoin/internal/mr"
	"vsmartjoin/internal/mrfs"
	"vsmartjoin/internal/multiset"
	"vsmartjoin/internal/ppjoin"
	"vsmartjoin/internal/records"
	"vsmartjoin/internal/similarity"
)

// Counter names reported by the pipeline.
const (
	// CounterGroupsProbed counts foreign groups whose members were folded
	// into some entity's list; CounterGroupsPruned counts foreign groups
	// skipped by the distance lower bound.
	CounterGroupsProbed = "knn:groups_probed"
	CounterGroupsPruned = "knn:groups_pruned"
)

// boundEps absorbs float drift when comparing a distance lower bound
// against an upper bound, erring toward probing (never toward losing a
// neighbor) — the same tolerance discipline as the online index.
const boundEps = 1e-9

// Config parameterizes AllKNN.
type Config struct {
	// Measure is the similarity measure defining the distance 1 − Sim.
	Measure similarity.Measure
	// K is the neighbor count per entity.
	K int
	// NumReducers sets the reduce task count of every job (defaults to
	// the cluster's machine count).
	NumReducers int
}

// Result is the outcome of AllKNN.
type Result struct {
	// Lists maps each entity to its exact k nearest neighbors, sorted by
	// distance ascending, ID ascending on ties. A list is shorter than k
	// only when the dataset holds fewer than k other entities.
	Lists map[multiset.ID][]ppjoin.Neighbor
	// Stats is the simulated cost of the three jobs.
	Stats mr.PipelineStats
}

// AllKNN computes every entity's exact k nearest neighbors under the
// distance 1 − Sim. Non-overlapping entities sit at distance exactly 1
// and legitimately appear in lists when fewer than k entities overlap.
func AllKNN(cluster mr.ClusterConfig, input *mrfs.Dataset, cfg Config) (*Result, error) {
	if cfg.Measure == nil {
		return nil, fmt.Errorf("knn: no measure")
	}
	if cfg.K <= 0 {
		return nil, fmt.Errorf("knn: k must be positive, got %d", cfg.K)
	}
	res := &Result{Lists: make(map[multiset.ID][]ppjoin.Neighbor)}

	groups, gstats, err := mr.Run(cluster, mr.Job{
		Name:        "knn-group",
		Input:       input,
		Mapper:      mr.IdentityMapper{},
		Reducer:     &groupReducer{},
		NumReducers: cfg.NumReducers,
		OutputName:  "knn-groups",
	})
	if err != nil {
		return nil, err
	}
	res.Stats.Add(gstats)

	probes, bstats, err := mr.Run(cluster, mr.Job{
		Name:        "knn-bound",
		Input:       groups,
		Mapper:      mr.IdentityMapper{},
		Reducer:     &boundReducer{m: cfg.Measure, k: cfg.K},
		NumReducers: cfg.NumReducers,
		OutputName:  "knn-probes",
	})
	if err != nil {
		return nil, err
	}
	res.Stats.Add(bstats)

	out, rstats, err := mr.Run(cluster, mr.Job{
		Name:        "knn-refine",
		Input:       probes,
		Mapper:      mr.IdentityMapper{},
		Reducer:     &refineReducer{m: cfg.Measure, k: cfg.K},
		NumReducers: cfg.NumReducers,
		// The refiner folds candidate groups in from the side table; the
		// shuffled probes only carry each entity's bound and local list.
		SideInputs:         map[string]*mrfs.Dataset{"knn-groups": groups},
		SideInputsAtReduce: true,
		OutputName:         "knn-lists",
	})
	if err != nil {
		return nil, err
	}
	res.Stats.Add(rstats)

	for _, rec := range out.All() {
		id, err := records.DecodeRawKey(rec.Key)
		if err != nil {
			return nil, err
		}
		list, err := decodeList(rec.Val)
		if err != nil {
			return nil, err
		}
		res.Lists[id] = list
	}
	return res, nil
}

// groupOf assigns a multiset cardinality to its pivot group: the
// power-of-two range it falls in. Fixed split points keep the grouping
// a pure function of each entity alone — no global pass, no dependence
// on cluster shape — while bounding the cardinality spread within a
// group to 2×, which is what makes the group boxes tight enough to
// prune with.
func groupOf(card uint64) uint64 { return uint64(bits.Len64(card)) }

func encodeGroupKey(g uint64) []byte {
	var b codec.Buffer
	b.PutUvarint(g)
	return b.Clone()
}

func decodeGroupKey(key []byte) (uint64, error) {
	r := codec.NewReader(key)
	g := r.Uvarint()
	if err := r.Err(); err != nil {
		return 0, fmt.Errorf("knn: bad group key: %w", err)
	}
	return g, nil
}

// Capsule value: the full multiset of one entity, carried through the
// group and probe records.
func putCapsule(b *codec.Buffer, m multiset.Multiset) {
	b.PutUvarint(uint64(m.ID))
	b.PutUvarint(uint64(len(m.Entries)))
	for _, e := range m.Entries {
		b.PutUvarint(uint64(e.Elem))
		b.PutUint32(e.Count)
	}
}

func readCapsule(r *codec.Reader) multiset.Multiset {
	id := multiset.ID(r.Uvarint())
	n := int(r.Uvarint())
	entries := make([]multiset.Entry, 0, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		entries = append(entries, multiset.Entry{Elem: multiset.Elem(r.Uvarint()), Count: r.Uint32()})
	}
	return multiset.Multiset{ID: id, Entries: entries}
}

func putList(b *codec.Buffer, list []ppjoin.Neighbor) {
	b.PutUvarint(uint64(len(list)))
	for _, n := range list {
		b.PutUvarint(uint64(n.ID))
		b.PutFloat64(n.Dist)
	}
}

func readList(r *codec.Reader) []ppjoin.Neighbor {
	n := int(r.Uvarint())
	list := make([]ppjoin.Neighbor, 0, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		list = append(list, ppjoin.Neighbor{ID: multiset.ID(r.Uvarint()), Dist: r.Float64()})
	}
	return list
}

func decodeList(val []byte) ([]ppjoin.Neighbor, error) {
	r := codec.NewReader(val)
	list := readList(r)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("knn: bad neighbor list: %w", err)
	}
	return list, nil
}

// groupReducer assembles each entity's raw ⟨Mi, mi,k⟩ tuples back into
// a multiset and re-keys it by pivot group.
type groupReducer struct{}

func (groupReducer) Reduce(_ *mr.TaskContext, key []byte, values *mr.Values, emit mr.Emitter) error {
	id, err := records.DecodeRawKey(key)
	if err != nil {
		return err
	}
	var entries []multiset.Entry
	for {
		v, ok := values.Next()
		if !ok {
			break
		}
		e, err := records.DecodeRawVal(v.Val)
		if err != nil {
			return err
		}
		entries = append(entries, e)
	}
	m := multiset.New(id, entries)
	var b codec.Buffer
	putCapsule(&b, m)
	emit.Emit(encodeGroupKey(groupOf(similarity.UniOf(m).Card)), b.Bytes())
	return nil
}

// boundReducer runs the exact quadratic kernel within one pivot group
// and emits, per member, a probe record: the member's capsule, its
// local k-nearest list, and the upper bound the refine stage prunes
// with.
type boundReducer struct {
	m similarity.Measure
	k int
}

func (r *boundReducer) Reduce(ctx *mr.TaskContext, _ []byte, values *mr.Values, emit mr.Emitter) error {
	var members []multiset.Multiset
	for {
		v, ok := values.Next()
		if !ok {
			break
		}
		cr := codec.NewReader(v.Val)
		m := readCapsule(cr)
		if err := cr.Err(); err != nil {
			return fmt.Errorf("knn: bad capsule: %w", err)
		}
		members = append(members, m)
	}
	// Sort by ID so the kernel's pair order — and with it the simulated
	// compute charge — is independent of shuffle arrival order. The lists
	// themselves are order-independent (bounded insertion under a strict
	// total order keeps exactly the k best).
	sort.Slice(members, func(i, j int) bool { return members[i].ID < members[j].ID })
	lists := ppjoin.KNNBrute(members, r.m, r.k)
	for i := range members {
		ctx.ChargeCompute(int64(len(members) / 16))
		ub := 1.0
		if len(lists[i]) == r.k {
			ub = lists[i][r.k-1].Dist
		}
		var b codec.Buffer
		b.PutFloat64(ub)
		putList(&b, lists[i])
		putCapsule(&b, members[i])
		emit.Emit(records.EncodeRawKey(members[i].ID), b.Bytes())
	}
	return nil
}

// groupBox is the UniStats bounding box of one pivot group's members.
type groupBox struct {
	lo, hi similarity.UniStats
}

// clampInto clamps each coordinate of u into the box. SimUpperBound is
// coordinate-wise unimodal in its second argument with the maximum at
// b = a (every supported measure bounds through min/max or emptiness
// tests of one coordinate), so the clamped point maximizes the bound
// over the whole box: SimUpperBound(m, u, clamp) ≥ SimUpperBound(m, u,
// v) ≥ Sim(u, v) for every member v of the group.
func clampInto(u similarity.UniStats, box groupBox) similarity.UniStats {
	return similarity.UniStats{
		Card:  clamp(u.Card, box.lo.Card, box.hi.Card),
		UCard: clamp(u.UCard, box.lo.UCard, box.hi.UCard),
		SumSq: clamp(u.SumSq, box.lo.SumSq, box.hi.SumSq),
	}
}

func clamp(v, lo, hi uint64) uint64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// refineReducer folds each entity's local list together with the
// members of every foreign group the bound cannot exclude, emitting the
// exact k-nearest list.
type refineReducer struct {
	m similarity.Measure
	k int

	members  map[uint64][]multiset.Multiset
	boxes    map[uint64]groupBox
	groupIDs []uint64 // ascending, for a deterministic probe order
}

func (r *refineReducer) Setup(ctx *mr.TaskContext) error {
	side, ok := ctx.Side["knn-groups"]
	if !ok {
		return fmt.Errorf("knn: refine reducer missing group side input")
	}
	r.members = make(map[uint64][]multiset.Multiset)
	r.boxes = make(map[uint64]groupBox)
	for _, rec := range side.All() {
		g, err := decodeGroupKey(rec.Key)
		if err != nil {
			return err
		}
		cr := codec.NewReader(rec.Val)
		m := readCapsule(cr)
		if err := cr.Err(); err != nil {
			return fmt.Errorf("knn: bad capsule: %w", err)
		}
		r.members[g] = append(r.members[g], m)
		uni := similarity.UniOf(m)
		box, seen := r.boxes[g]
		if !seen {
			box = groupBox{lo: uni, hi: uni}
		} else {
			box.lo.Card = min(box.lo.Card, uni.Card)
			box.lo.UCard = min(box.lo.UCard, uni.UCard)
			box.lo.SumSq = min(box.lo.SumSq, uni.SumSq)
			box.hi.Card = max(box.hi.Card, uni.Card)
			box.hi.UCard = max(box.hi.UCard, uni.UCard)
			box.hi.SumSq = max(box.hi.SumSq, uni.SumSq)
		}
		r.boxes[g] = box
	}
	r.groupIDs = r.groupIDs[:0]
	for g, ms := range r.members {
		sort.Slice(ms, func(i, j int) bool { return ms[i].ID < ms[j].ID })
		r.groupIDs = append(r.groupIDs, g)
	}
	sort.Slice(r.groupIDs, func(i, j int) bool { return r.groupIDs[i] < r.groupIDs[j] })
	return nil
}

func (r *refineReducer) Reduce(ctx *mr.TaskContext, key []byte, values *mr.Values, emit mr.Emitter) error {
	v, ok := values.Next()
	if !ok {
		return nil
	}
	pr := codec.NewReader(v.Val)
	ub := pr.Float64()
	acc := readList(pr)
	q := readCapsule(pr)
	if err := pr.Err(); err != nil {
		return fmt.Errorf("knn: bad probe: %w", err)
	}
	qUni := similarity.UniOf(q)
	home := groupOf(qUni.Card)
	for _, g := range r.groupIDs {
		if g == home {
			continue // the local kernel already covered it exactly
		}
		distLB := 1 - similarity.SimUpperBound(r.m, qUni, clampInto(qUni, r.boxes[g]))
		if distLB > ub+boundEps {
			ctx.Counters.Inc(CounterGroupsPruned)
			continue
		}
		ctx.Counters.Inc(CounterGroupsProbed)
		ctx.ChargeCompute(int64(len(r.members[g]) / 16))
		acc = mergeLists(acc, ppjoin.KNNAgainst(q, r.members[g], r.m, r.k), r.k)
		// The k-th distance can only shrink as groups fold in; tightening
		// the bound keeps later groups prunable against the best-so-far.
		if len(acc) == r.k && acc[r.k-1].Dist < ub {
			ub = acc[r.k-1].Dist
		}
	}
	var b codec.Buffer
	putList(&b, acc)
	emit.Emit(key, b.Bytes())
	return nil
}

// mergeLists merges two canonically sorted neighbor lists into the k
// best. The inputs come from disjoint pivot groups, so no ID appears in
// both.
func mergeLists(a, b []ppjoin.Neighbor, k int) []ppjoin.Neighbor {
	if len(b) == 0 {
		return a
	}
	out := make([]ppjoin.Neighbor, 0, min(len(a)+len(b), k))
	i, j := 0, 0
	for len(out) < k && (i < len(a) || j < len(b)) {
		switch {
		case i == len(a):
			out = append(out, b[j])
			j++
		case j == len(b):
			out = append(out, a[i])
			i++
		case worse(a[i], b[j]):
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
		}
	}
	return out
}

// worse reports whether a ranks below b in the canonical order:
// greater distance, or greater ID at equal distances.
func worse(a, b ppjoin.Neighbor) bool {
	if a.Dist != b.Dist {
		return a.Dist > b.Dist
	}
	return a.ID > b.ID
}
