package knn

import (
	"fmt"
	"math/rand"
	"testing"

	"vsmartjoin/internal/mr"
	"vsmartjoin/internal/multiset"
	"vsmartjoin/internal/ppjoin"
	"vsmartjoin/internal/records"
	"vsmartjoin/internal/similarity"
)

// randSets builds n random multisets with cardinalities spread widely
// enough to populate several pivot groups.
func randSets(rng *rand.Rand, n, alphabet, maxLen int) []multiset.Multiset {
	out := make([]multiset.Multiset, n)
	for i := range out {
		ln := 1 + rng.Intn(maxLen)
		entries := make([]multiset.Entry, 0, ln)
		for j := 0; j < ln; j++ {
			entries = append(entries, multiset.Entry{
				Elem:  multiset.Elem(rng.Intn(alphabet)),
				Count: uint32(1 + rng.Intn(4)),
			})
		}
		out[i] = multiset.New(multiset.ID(i+1), entries)
	}
	return out
}

func sameLists(t *testing.T, id multiset.ID, got, want []ppjoin.Neighbor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("entity %d: got %d neighbors, want %d\n got: %v\nwant: %v", id, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("entity %d neighbor %d: got %v, want %v", id, i, got[i], want[i])
		}
	}
}

// TestAllKNNMatchesBrute gates the three-job pipeline against the
// whole-dataset quadratic kernel: identical lists — same IDs, same
// order, bit-identical distances — for every measure family the bounds
// specialize on and for k below, at, and above the typical list length.
func TestAllKNNMatchesBrute(t *testing.T) {
	for _, name := range []string{"ruzicka", "jaccard", "dice", "cosine", "vector-cosine", "overlap"} {
		m, err := similarity.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 3, 10} {
			t.Run(fmt.Sprintf("%s/k=%d", name, k), func(t *testing.T) {
				rng := rand.New(rand.NewSource(42))
				sets := randSets(rng, 60, 40, 64)
				want := ppjoin.KNNBrute(sets, m, k)

				cluster := mr.NewCluster(4, 1<<30)
				input := records.BuildInput("knn-in", sets, 8)
				res, err := AllKNN(cluster, input, Config{Measure: m, K: k})
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Lists) != len(sets) {
					t.Fatalf("got lists for %d entities, want %d", len(res.Lists), len(sets))
				}
				for i, s := range sets {
					sameLists(t, s.ID, res.Lists[s.ID], want[i])
				}
				if got := len(res.Stats.Jobs); got != 3 {
					t.Fatalf("pipeline ran %d jobs, want 3", got)
				}
			})
		}
	}
}

// TestAllKNNHadoopIdentical proves the pipeline needs no secondary-key
// support: Hadoop-compatible clusters produce byte-identical lists.
func TestAllKNNHadoopIdentical(t *testing.T) {
	m, _ := similarity.ByName("ruzicka")
	rng := rand.New(rand.NewSource(7))
	sets := randSets(rng, 40, 30, 32)
	input := records.BuildInput("knn-in", sets, 8)

	a, err := AllKNN(mr.NewCluster(4, 1<<30), input, Config{Measure: m, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := AllKNN(mr.NewCluster(4, 1<<30).Hadoop(), input, Config{Measure: m, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sets {
		sameLists(t, s.ID, b.Lists[s.ID], a.Lists[s.ID])
	}
}

// TestAllKNNPrunesGroups pins the point of the bounds: on a dataset
// with two well-separated cardinality clusters and tight local
// neighborhoods, the refine stage must actually skip foreign groups —
// otherwise the pipeline is brute force with extra steps.
func TestAllKNNPrunesGroups(t *testing.T) {
	m, _ := similarity.ByName("ruzicka")
	var sets []multiset.Multiset
	id := multiset.ID(1)
	// Small cluster: near-identical multisets of cardinality ~8.
	for i := 0; i < 6; i++ {
		entries := []multiset.Entry{{Elem: 1, Count: 4}, {Elem: 2, Count: 3}, {Elem: multiset.Elem(3 + i%2), Count: 1}}
		sets = append(sets, multiset.New(id, entries))
		id++
	}
	// Large cluster: near-identical multisets of cardinality ~4096.
	for i := 0; i < 6; i++ {
		entries := []multiset.Entry{{Elem: 10, Count: 4000}, {Elem: 11, Count: 90}, {Elem: multiset.Elem(12 + i%2), Count: 6}}
		sets = append(sets, multiset.New(id, entries))
		id++
	}
	input := records.BuildInput("knn-in", sets, 4)
	res, err := AllKNN(mr.NewCluster(2, 1<<30), input, Config{Measure: m, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := ppjoin.KNNBrute(sets, m, 2)
	for i, s := range sets {
		sameLists(t, s.ID, res.Lists[s.ID], want[i])
	}
	pruned := res.Stats.Counter(CounterGroupsPruned)
	if pruned == 0 {
		t.Fatalf("no groups pruned on a two-cluster dataset (probed %d)", res.Stats.Counter(CounterGroupsProbed))
	}
}

// TestAllKNNRejectsBadConfig covers the argument guards.
func TestAllKNNRejectsBadConfig(t *testing.T) {
	m, _ := similarity.ByName("ruzicka")
	input := records.BuildInput("knn-in", randSets(rand.New(rand.NewSource(1)), 4, 10, 8), 2)
	if _, err := AllKNN(mr.NewCluster(2, 1<<30), input, Config{Measure: m, K: 0}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := AllKNN(mr.NewCluster(2, 1<<30), input, Config{K: 3}); err == nil {
		t.Fatal("nil measure accepted")
	}
}
