// Package lockscope enforces the lock discipline of the serving hot
// path (PR 2): in internal/index and internal/shard,
//
//   - fields guarded by a struct's mutex must only be touched while that
//     mutex is held, and
//   - exact similarity verification (similarity.Measure.Sim) must not
//     run while a mutex is held — verification outside the lock is the
//     core contract that keeps the read path lock-free.
//
// Which fields a mutex guards follows the codebase's layout convention:
// in a struct with a sync.Mutex/sync.RWMutex field, the fields of the
// same declaration paragraph following the mutex (contiguous lines,
// field doc comments included, up to the first blank line) are guarded.
// In internal/index.Index that is exactly entities, postings,
// postingCount and deadPostings; the atomic counters after the blank
// line are not.
//
// The analysis is a source-order scan of each method body, tracking
// Lock/RLock/Unlock/RUnlock calls on the receiver's mutex (a deferred
// Unlock holds to the end of the function). Methods whose name ends in
// "Locked" are, by the codebase's convention, documented as called with
// the lock held and are scanned as such. Function literals are scanned
// as NOT holding the lock — a goroutine does not inherit its spawner's
// critical section; the rare synchronous closure under a lock needs a
// suppression.
package lockscope

import (
	"go/ast"
	"go/types"
	"strings"

	"vsmartjoin/internal/lint/analysis"
)

// Analyzer is the lockscope checker.
var Analyzer = &analysis.Analyzer{
	Name: "lockscope",
	Doc:  "guarded fields need the lock held; Measure.Sim verification must run outside it",
	Run:  run,
}

// scopePkgs are the packages whose lock discipline the analyzer models.
var scopePkgs = map[string]bool{
	"vsmartjoin/internal/index": true,
	"vsmartjoin/internal/shard": true,
}

const similarityPkg = "vsmartjoin/internal/similarity"

func run(pass *analysis.Pass) error {
	base := strings.TrimSuffix(pass.Pkg.Path(), "_test")
	if !scopePkgs[base] {
		return nil
	}

	guards := collectGuards(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, guards, fd)
		}
	}
	return nil
}

// guardInfo describes one mutex-guarded struct: the mutex field and the
// set of fields it guards.
type guardInfo struct {
	mutexField *types.Var
	guarded    map[*types.Var]bool
}

// collectGuards finds every struct in the package with a sync.Mutex or
// sync.RWMutex field and derives its guarded field set from the
// declaration paragraph following the mutex.
func collectGuards(pass *analysis.Pass) map[*types.Named]*guardInfo {
	out := map[*types.Named]*guardInfo{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Defs[ts.Name]
			if !ok {
				return true
			}
			named, ok := obj.Type().(*types.Named)
			if !ok {
				return true
			}
			gi := structGuards(pass, st)
			if gi != nil {
				out[named] = gi
			}
			return true
		})
	}
	return out
}

func structGuards(pass *analysis.Pass, st *ast.StructType) *guardInfo {
	var gi *guardInfo
	collecting := false
	var prevEnd int // line the previous guarded-paragraph field ends on
	for _, field := range st.Fields.List {
		if isMutexType(pass.TypesInfo.Types[field.Type].Type) && len(field.Names) == 1 {
			if v, ok := pass.TypesInfo.Defs[field.Names[0]].(*types.Var); ok {
				gi = &guardInfo{mutexField: v, guarded: map[*types.Var]bool{}}
				collecting = true
				prevEnd = pass.Fset.Position(field.End()).Line
			}
			continue
		}
		if !collecting {
			continue
		}
		// Contiguity: the field (or its doc comment) starts on the line
		// right after the previous field — a blank line ends the
		// guarded paragraph.
		start := field.Pos()
		if field.Doc != nil {
			start = field.Doc.Pos()
		}
		if pass.Fset.Position(start).Line != prevEnd+1 {
			collecting = false
			continue
		}
		for _, name := range field.Names {
			if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
				gi.guarded[v] = true
			}
		}
		prevEnd = pass.Fset.Position(field.End()).Line
	}
	if gi == nil || len(gi.guarded) == 0 {
		return nil
	}
	return gi
}

func isMutexType(t types.Type) bool {
	return analysis.IsNamed(t, "sync", "Mutex") || analysis.IsNamed(t, "sync", "RWMutex")
}

// checkFunc scans one function body in source order.
func checkFunc(pass *analysis.Pass, guards map[*types.Named]*guardInfo, fd *ast.FuncDecl) {
	var gi *guardInfo
	var recv *types.Var
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		if v, ok := pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]].(*types.Var); ok {
			if named := analysis.NamedOf(v.Type()); named != nil {
				gi = guards[named]
				recv = v
			}
		}
	}

	s := &scanner{
		pass:     pass,
		gi:       gi,
		recv:     recv,
		funcName: fd.Name.Name,
	}
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		// Convention: the caller holds the lock for the whole body.
		s.depth = 1
	}
	s.stmt(fd.Body)
}

// scanner walks statements in source order tracking how many
// lock acquisitions on the receiver's mutex are outstanding.
type scanner struct {
	pass     *analysis.Pass
	gi       *guardInfo // nil when the receiver has no guarded fields
	recv     *types.Var
	funcName string
	depth    int
	deferred bool // a deferred Unlock pins the lock for the whole body
}

func (s *scanner) stmt(n ast.Stmt) {
	switch st := n.(type) {
	case *ast.BlockStmt:
		for _, sub := range st.List {
			s.stmt(sub)
		}
	case *ast.ExprStmt:
		if kind := s.lockCall(st.X); kind != 0 {
			s.depth += kind
			if s.depth < 0 {
				s.depth = 0
			}
			return
		}
		s.expr(st.X)
	case *ast.DeferStmt:
		if kind := s.lockCall(st.Call); kind < 0 {
			s.deferred = true
			return
		}
		s.expr(st.Call)
	case *ast.IfStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		s.expr(st.Cond)
		s.stmt(st.Body)
		if st.Else != nil {
			s.stmt(st.Else)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		if st.Cond != nil {
			s.expr(st.Cond)
		}
		if st.Post != nil {
			s.stmt(st.Post)
		}
		s.stmt(st.Body)
	case *ast.RangeStmt:
		s.expr(st.X)
		s.stmt(st.Body)
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		if st.Tag != nil {
			s.expr(st.Tag)
		}
		s.stmt(st.Body)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		s.stmt(st.Assign)
		s.stmt(st.Body)
	case *ast.SelectStmt:
		s.stmt(st.Body)
	case *ast.CaseClause:
		for _, e := range st.List {
			s.expr(e)
		}
		for _, sub := range st.Body {
			s.stmt(sub)
		}
	case *ast.CommClause:
		if st.Comm != nil {
			s.stmt(st.Comm)
		}
		for _, sub := range st.Body {
			s.stmt(sub)
		}
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			s.expr(e)
		}
		for _, e := range st.Lhs {
			s.expr(e)
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			s.expr(e)
		}
	case *ast.GoStmt:
		s.expr(st.Call)
	case *ast.DeclStmt, *ast.BranchStmt, *ast.EmptyStmt:
		if ds, ok := n.(*ast.DeclStmt); ok {
			ast.Inspect(ds, func(sub ast.Node) bool {
				if e, ok := sub.(ast.Expr); ok {
					s.expr(e)
					return false
				}
				return true
			})
		}
	case *ast.IncDecStmt:
		s.expr(st.X)
	case *ast.SendStmt:
		s.expr(st.Chan)
		s.expr(st.Value)
	case *ast.LabeledStmt:
		s.stmt(st.Stmt)
	}
}

// expr walks an expression, flagging guarded-field access outside the
// lock and Sim verification inside it. Function literals rescan with
// depth 0.
func (s *scanner) expr(n ast.Expr) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(sub ast.Node) bool {
		switch e := sub.(type) {
		case *ast.FuncLit:
			inner := &scanner{pass: s.pass, gi: s.gi, recv: s.recv, funcName: s.funcName}
			inner.stmt(e.Body)
			return false
		case *ast.CallExpr:
			if fn := analysis.Callee(s.pass.TypesInfo, e); fn != nil && s.held() {
				if analysis.IsMethod(fn, similarityPkg, "", "Sim") {
					s.pass.Reportf(e.Pos(),
						"similarity verification %s.Sim while the %s lock is held: verify outside the lock (the hot path's lock-free-read contract)",
						recvTypeName(fn), s.lockName())
				}
			}
		case *ast.SelectorExpr:
			s.checkGuardedAccess(e)
		}
		return true
	})
}

// checkGuardedAccess flags recv.field selections of guarded fields made
// without the lock.
func (s *scanner) checkGuardedAccess(sel *ast.SelectorExpr) {
	if s.gi == nil || s.held() || strings.HasSuffix(s.funcName, "Locked") {
		return
	}
	selection, ok := s.pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	v, ok := selection.Obj().(*types.Var)
	if !ok || !s.gi.guarded[v] {
		return
	}
	s.pass.Reportf(sel.Sel.Pos(),
		"access to %s-guarded field %s without the lock held", s.lockName(), v.Name())
}

func (s *scanner) held() bool { return s.depth > 0 || s.deferred }

func (s *scanner) lockName() string {
	if s.gi != nil && s.gi.mutexField != nil {
		return s.gi.mutexField.Name()
	}
	return "mu"
}

// lockCall classifies an expression as a lock (+1) or unlock (-1) call
// on the receiver's own mutex field, or 0.
func (s *scanner) lockCall(e ast.Expr) int {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return 0
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return 0
	}
	var delta int
	switch sel.Sel.Name {
	case "Lock", "RLock":
		delta = 1
	case "Unlock", "RUnlock":
		delta = -1
	default:
		return 0
	}
	// The callee must be a sync mutex method and the receiver expression
	// a field selection on the method's receiver (ix.mu.Lock()).
	fn := analysis.Callee(s.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return 0
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return 0
	}
	if id, ok := ast.Unparen(inner.X).(*ast.Ident); !ok || s.recv == nil || s.pass.TypesInfo.Uses[id] != s.recv {
		return 0
	}
	return delta
}

func recvTypeName(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	if named := analysis.NamedRecv(sig); named != nil {
		return named.Obj().Name()
	}
	return "Measure"
}
