package lockscope_test

import (
	"testing"

	"vsmartjoin/internal/lint/linttest"
	"vsmartjoin/internal/lint/lockscope"
)

func TestLockscope(t *testing.T) {
	linttest.Run(t, lockscope.Analyzer, "testdata", "vsmartjoin/internal/index")
}
