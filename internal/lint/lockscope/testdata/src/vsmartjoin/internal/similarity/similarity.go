// Package similarity is a stub at the real import path: just the
// Measure.Sim method lockscope matches by identity.
package similarity

// UniStats and ConjStats mirror the real verification inputs.
type UniStats struct{}
type ConjStats struct{}

// Measure is the stub similarity measure.
type Measure interface {
	Sim(a, b UniStats, c ConjStats) float64
}
