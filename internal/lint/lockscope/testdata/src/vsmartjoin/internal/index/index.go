// Package index exercises lockscope at an in-scope import path:
// guarded-field access with and without the lock, Sim under the lock,
// the guarded-paragraph layout convention, the Locked-suffix
// convention, goroutine non-inheritance, and the suppression contract.
package index

import (
	"sync"

	"vsmartjoin/internal/similarity"
)

type Index struct {
	measure similarity.Measure

	mu sync.RWMutex
	// entities is guarded: its doc comment keeps the paragraph contiguous.
	entities map[string]int
	postings []int

	version int // after the blank line: not guarded
}

func (ix *Index) badRead() int {
	return len(ix.entities) // want `access to mu-guarded field entities without the lock held`
}

func (ix *Index) goodRead() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.entities)
}

func (ix *Index) unguardedIsFine() int { return ix.version }

func (ix *Index) afterUnlock() int {
	ix.mu.Lock()
	n := len(ix.postings)
	ix.mu.Unlock()
	return n + len(ix.postings) // want `access to mu-guarded field postings without the lock held`
}

func (ix *Index) badSim(q, e similarity.UniStats, c similarity.ConjStats) float64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.measure.Sim(q, e, c) // want `similarity verification Measure\.Sim while the mu lock is held`
}

func (ix *Index) goodSim(q, e similarity.UniStats, c similarity.ConjStats) float64 {
	return ix.measure.Sim(q, e, c)
}

// compactLocked is, by the naming convention, called with mu held.
func (ix *Index) compactLocked() {
	ix.postings = ix.postings[:0]
}

func (ix *Index) goroutineDoesNotInherit() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	go func() {
		_ = len(ix.entities) // want `access to mu-guarded field entities without the lock held`
	}()
	_ = len(ix.entities) // the spawning goroutine still holds the lock
}

func (ix *Index) suppressedSim(q, e similarity.UniStats, c similarity.ConjStats) float64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	//lint:vsmart-allow lockscope fixture: top-k style verification deliberately under the read lock
	return ix.measure.Sim(q, e, c)
}

func (ix *Index) staleSuppression() int {
	//lint:vsmart-allow lockscope nothing below touches guarded state // want `unused //lint:vsmart-allow lockscope suppression`
	return ix.version
}
