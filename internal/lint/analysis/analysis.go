// Package analysis is the project's miniature counterpart of
// golang.org/x/tools/go/analysis: the contract between the vsmartlint
// driver (internal/lint/driver) and the individual invariant checkers
// (internal/lint/framesafety and friends).
//
// The x/tools module is deliberately not a dependency — the repo builds
// with the standard library alone — so this package redeclares the small
// slice of the analysis API the suite needs: an Analyzer with a name and
// a Run function, a Pass carrying one type-checked package, and
// Diagnostics reported at token positions. Analyzers written against it
// port to the real go/analysis framework nearly mechanically should the
// dependency ever become available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one named invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:vsmart-allow suppression comments. It must be a single
	// lowercase word.
	Name string

	// Doc is the one-paragraph description printed by vsmartlint's
	// analyzer listing.
	Doc string

	// Run inspects one package and reports findings via pass.Report.
	// A non-nil error aborts the whole lint run (reserved for internal
	// failures, not findings).
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files is the package syntax, comments included. Test files
	// (_test.go) of the same package are part of the slice; analyzers
	// that exempt tests check InTestFile.
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one finding. The driver applies suppression
	// comments afterwards; analyzers never filter their own findings.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf formats and reports one finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos lies in a _test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Callee resolves the static callee of a call expression: a package
// function, a method (concrete or interface), or nil for calls through
// function values and for type conversions.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch fn := fun.(type) {
	case *ast.Ident:
		f, _ := info.Uses[fn].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			f, _ := sel.Obj().(*types.Func)
			return f
		}
		// Qualified package function: pkg.F.
		f, _ := info.Uses[fn.Sel].(*types.Func)
		return f
	}
	return nil
}

// PkgLevel reports whether fn is a package-level function rather than a
// method.
func PkgLevel(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// IsPkgFunc reports whether fn is the package-level function pkgPath.name.
func IsPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Name() != name || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// IsMethod reports whether fn is a method named name whose receiver's
// named type (or interface) lives in pkgPath and is called recvName.
// recvName may be "" to match any receiver type in the package.
func IsMethod(fn *types.Func, pkgPath, recvName, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named := NamedRecv(sig)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != pkgPath {
		return false
	}
	return recvName == "" || named.Obj().Name() == recvName
}

// NamedRecv unwraps a method signature's receiver to its named type,
// looking through one level of pointer.
func NamedRecv(sig *types.Signature) *types.Named {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// NamedOf unwraps t to a named type, looking through pointers and
// aliases.
func NamedOf(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	named, _ := t.(*types.Named)
	return named
}

// IsNamed reports whether t (through pointers/aliases) is the named type
// pkgPath.name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	named := NamedOf(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == pkgPath && named.Obj().Name() == name
}
