// Package load type-checks Go packages for the lint suite without
// depending on golang.org/x/tools/go/packages.
//
// Real packages are discovered with `go list` and type-checked from
// source; their imports resolve through compiler export data that
// `go list -export` materializes in the build cache, so loading works
// fully offline and never re-type-checks the transitive closure. Fixture
// packages (the analyzers' testdata) live in a GOPATH-style src tree and
// are type-checked recursively from source, falling back to export data
// for standard-library imports — which lets a fixture stub a module
// package (declare a tiny `vsmartjoin/internal/wal`, say) so analyzer
// tests are hermetic.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("vsmartjoin/internal/wal"); for the
	// external test package of path P it is "P_test".
	Path      string
	Name      string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Config controls a Load call.
type Config struct {
	// Dir is the directory `go` commands run in; it must lie inside a
	// module. Empty means the current directory.
	Dir string

	// Tests includes _test.go files: in-package test files join their
	// package's syntax, external test packages (package foo_test) load
	// as their own Package entries.
	Tests bool

	// FixtureRoot, when non-empty, switches Load to fixture mode: the
	// patterns are import paths resolved under FixtureRoot/src/<path>
	// instead of `go list` patterns.
	FixtureRoot string
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Name         string
	ImportPath   string
	Dir          string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Export       string
	ForTest      string
	Error        *listErr
}

type listErr struct {
	Err string
}

// Load type-checks the packages matched by patterns.
func Load(cfg Config, patterns ...string) ([]*Package, error) {
	fset := token.NewFileSet()
	if cfg.FixtureRoot != "" {
		return loadFixtures(cfg, fset, patterns)
	}
	return loadReal(cfg, fset, patterns)
}

// goList runs `go list` with the given arguments and decodes its JSON
// package stream.
func goList(dir string, args ...string) ([]*listPkg, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportImporter resolves imports through compiler export data files,
// with an optional source-checked overlay consulted first (fixture
// stubs).
type exportImporter struct {
	overlay map[string]*types.Package
	gc      types.ImporterFrom
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	return &exportImporter{
		overlay: map[string]*types.Package{},
		gc:      importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom),
	}
}

func (ei *exportImporter) Import(path string) (*types.Package, error) {
	if p, ok := ei.overlay[path]; ok {
		return p, nil
	}
	return ei.gc.ImportFrom(path, "", 0)
}

// loadReal loads `go list` patterns: every matched package is parsed and
// type-checked from source; imports come from export data.
func loadReal(cfg Config, fset *token.FileSet, patterns []string) ([]*Package, error) {
	fields := "-json=Name,ImportPath,Dir,GoFiles,TestGoFiles,XTestGoFiles,Error"
	targets, err := goList(cfg.Dir, append([]string{"list", fields}, patterns...)...)
	if err != nil {
		return nil, err
	}
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("%s: %s", t.ImportPath, t.Error.Err)
		}
	}

	// One -deps -export walk provides export data for everything any
	// target (or its test files) imports. -test folds test-only deps in.
	depArgs := []string{"list", "-deps", "-export", "-json=ImportPath,Export,ForTest"}
	if cfg.Tests {
		depArgs = append(depArgs, "-test")
	}
	deps, err := goList(cfg.Dir, append(depArgs, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, d := range deps {
		// Skip synthesized test variants ("p [p.test]", "p.test"): the
		// plain compile's export data is the importable one.
		if d.ForTest != "" || strings.Contains(d.ImportPath, " ") || d.Export == "" {
			continue
		}
		if _, ok := exports[d.ImportPath]; !ok {
			exports[d.ImportPath] = d.Export
		}
	}
	imp := newExportImporter(fset, exports)

	var out []*Package
	for _, t := range targets {
		files := t.GoFiles
		if cfg.Tests {
			files = append(files[:len(files):len(files)], t.TestGoFiles...)
		}
		if len(files) > 0 {
			pkg, err := checkFiles(fset, imp, t.ImportPath, t.Name, absPaths(t.Dir, files))
			if err != nil {
				return nil, err
			}
			out = append(out, pkg)
		}
		if cfg.Tests && len(t.XTestGoFiles) > 0 {
			pkg, err := checkFiles(fset, imp, t.ImportPath+"_test", t.Name+"_test", absPaths(t.Dir, t.XTestGoFiles))
			if err != nil {
				return nil, err
			}
			out = append(out, pkg)
		}
	}
	return out, nil
}

func absPaths(dir string, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = filepath.Join(dir, n)
	}
	return out
}

// checkFiles parses and type-checks one package from source.
func checkFiles(fset *token.FileSet, imp types.Importer, path, name string, files []string) (*Package, error) {
	var syntax []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, af)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	return &Package{
		Path:      path,
		Name:      name,
		Fset:      fset,
		Syntax:    syntax,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// loadFixtures loads testdata packages from FixtureRoot/src/<path>.
// Imports that resolve inside the tree are type-checked from source
// (recursively); everything else resolves through export data fetched
// with one `go list` call over the union of external imports.
func loadFixtures(cfg Config, fset *token.FileSet, paths []string) ([]*Package, error) {
	src := filepath.Join(cfg.FixtureRoot, "src")

	// Discover the transitive fixture-local import closure and the
	// external (usually standard-library) imports it needs.
	parsed := map[string][]*ast.File{}
	external := map[string]bool{}
	var walk func(path string) error
	walk = func(path string) error {
		if _, ok := parsed[path]; ok {
			return nil
		}
		dir := filepath.Join(src, filepath.FromSlash(path))
		files, err := fixtureFiles(fset, dir)
		if err != nil {
			return fmt.Errorf("fixture %s: %w", path, err)
		}
		parsed[path] = files
		for _, f := range files {
			for _, spec := range f.Imports {
				ipath := strings.Trim(spec.Path.Value, `"`)
				if dirExists(filepath.Join(src, filepath.FromSlash(ipath))) {
					if err := walk(ipath); err != nil {
						return err
					}
				} else {
					external[ipath] = true
				}
			}
		}
		return nil
	}
	for _, p := range paths {
		if err := walk(p); err != nil {
			return nil, err
		}
	}

	exports := map[string]string{}
	if len(external) > 0 {
		args := []string{"list", "-deps", "-export", "-json=ImportPath,Export,ForTest"}
		for p := range external {
			args = append(args, p)
		}
		sort.Strings(args[4:])
		deps, err := goList(cfg.Dir, args...)
		if err != nil {
			return nil, err
		}
		for _, d := range deps {
			if d.ForTest == "" && !strings.Contains(d.ImportPath, " ") && d.Export != "" {
				exports[d.ImportPath] = d.Export
			}
		}
	}
	imp := newExportImporter(fset, exports)

	// Type-check fixture packages in dependency order via memoized
	// recursion; the overlay makes each freshly checked fixture
	// importable by the next.
	checked := map[string]*Package{}
	checking := map[string]bool{}
	var check func(path string) (*Package, error)
	check = func(path string) (*Package, error) {
		if p, ok := checked[path]; ok {
			return p, nil
		}
		if checking[path] {
			return nil, fmt.Errorf("fixture import cycle through %s", path)
		}
		checking[path] = true
		defer delete(checking, path)
		for _, f := range parsed[path] {
			for _, spec := range f.Imports {
				ipath := strings.Trim(spec.Path.Value, `"`)
				if _, local := parsed[ipath]; local {
					if _, err := check(ipath); err != nil {
						return nil, err
					}
				}
			}
		}
		name := ""
		if len(parsed[path]) > 0 {
			name = parsed[path][0].Name.Name
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Uses:       map[*ast.Ident]types.Object{},
			Defs:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, fset, parsed[path], info)
		if err != nil {
			return nil, fmt.Errorf("typecheck fixture %s: %v", path, err)
		}
		p := &Package{Path: path, Name: name, Fset: fset, Syntax: parsed[path], Types: tpkg, TypesInfo: info}
		checked[path] = p
		imp.overlay[path] = tpkg
		return p, nil
	}

	var out []*Package
	for _, p := range paths {
		pkg, err := check(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// fixtureFiles parses every .go file in dir, sorted by name.
func fixtureFiles(fset *token.FileSet, dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	var out []*ast.File
	for _, n := range names {
		af, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		out = append(out, af)
	}
	return out, nil
}

func dirExists(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}
