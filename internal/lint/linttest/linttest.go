// Package linttest is the analyzers' test harness, a miniature
// counterpart of golang.org/x/tools/go/analysis/analysistest built on
// the same stdlib-only loader the vsmartlint driver uses.
//
// Fixtures live in a GOPATH-style tree under <root>/src/<importpath>.
// Because the loader resolves fixture-local imports inside that tree
// first, a fixture may stub a real module package (declare a tiny
// vsmartjoin/internal/wal, say) so path-matching analyzers trigger
// without depending on the real code — the tests stay hermetic.
//
// Expected findings are declared in the fixture source with trailing
// comments of the form
//
//	l.Close() // want `error from wal\.Log\.Close discarded`
//
// Each regexp (backquoted or double-quoted, several per comment allowed)
// must be matched by exactly one finding reported on that line, and
// every finding must be claimed by an expectation. Findings include the
// driver's own "suppress" diagnostics, so fixtures also pin the
// suppression contract: honored, unused, and malformed cases.
package linttest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"vsmartjoin/internal/lint/analysis"
	"vsmartjoin/internal/lint/driver"
	"vsmartjoin/internal/lint/load"
)

// expectation is one parsed // want regexp, bound to a file and line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

// Run loads the fixture packages at the given import paths under
// root/src, applies analyzer a through the driver (suppressions
// included), and fails t unless findings and // want expectations match
// one-to-one.
func Run(t *testing.T, a *analysis.Analyzer, root string, paths ...string) {
	t.Helper()
	pkgs, err := load.Load(load.Config{FixtureRoot: root}, paths...)
	if err != nil {
		t.Fatalf("load fixtures: %v", err)
	}
	findings, err := driver.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}
	expects := collectWants(t, pkgs)
	for _, f := range findings {
		if !claim(expects, f) {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, e := range expects {
		if !e.met {
			t.Errorf("%s:%d: no finding matched %q", e.file, e.line, e.raw)
		}
	}
}

// claim marks the first open expectation on the finding's line whose
// regexp matches its message.
func claim(expects []*expectation, f driver.Finding) bool {
	for _, e := range expects {
		if !e.met && e.file == f.Pos.Filename && e.line == f.Pos.Line && e.re.MatchString(f.Message) {
			e.met = true
			return true
		}
	}
	return false
}

// wantToken pulls one backquoted or double-quoted regexp off the tail of
// a // want comment.
var wantToken = regexp.MustCompile("^\\s*(`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")")

// collectWants extracts the // want expectations from fixture comments.
func collectWants(t *testing.T, pkgs []*load.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, pkg := range pkgs {
		for _, file := range pkg.Syntax {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					idx := strings.Index(c.Text, "// want")
					if idx < 0 {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					rest := c.Text[idx+len("// want"):]
					n := 0
					for {
						m := wantToken.FindStringSubmatch(rest)
						if m == nil {
							break
						}
						rest = rest[len(m[0]):]
						tok := m[1]
						var pat string
						if tok[0] == '`' {
							pat = tok[1 : len(tok)-1]
						} else {
							var err error
							if pat, err = strconv.Unquote(tok); err != nil {
								t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, tok, err)
							}
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
						}
						out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: pat})
						n++
					}
					if n == 0 {
						t.Fatalf("%s:%d: // want with no regexp", pos.Filename, pos.Line)
					}
				}
			}
		}
	}
	return out
}
