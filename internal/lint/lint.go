// Package lint assembles the project's custom static-analysis suite:
// seven analyzers, each machine-checking an invariant that a refactor
// introduced and that go vet / staticcheck cannot see.
//
//   - framesafety (PR 4): every durable byte flows through the one
//     internal/frame framing layer — no raw length prefixes, no second
//     checksum, no direct writes to snap-*/wal-* generation files.
//   - lockscope (PR 2): mutex-guarded index state is only touched under
//     the lock, and exact similarity verification never runs inside it —
//     the lock-free-read hot-path contract.
//   - canonicalorder (PR 5): every []Match that can reach the public
//     API passes through a canonicalizer, so any topology answers
//     byte-identically.
//   - boundedclient (PR 5): every HTTP dialer uses the bounded pooled
//     cluster.NewHTTPClient — no http.Get, no http.DefaultClient, no
//     ad-hoc http.Client literals.
//   - walerr (PR 3): errors from the WAL, framing, and public mutation
//     paths — batched included — are never discarded,
//     append-before-apply durability.
//   - batchorder (PR 9): the acknowledgement channel AddAsync returns
//     is never discarded — an async mutation whose outcome nobody can
//     observe is a durability hole walerr cannot see.
//   - hotpathmetrics (PR 8): latency accounting in the hot-path
//     packages (index/shard/wal) goes through internal/metrics — no
//     ad-hoc time.Now/time.Since stopwatches dodging the shared
//     histograms.
//
// Run the suite with `go run ./cmd/vsmartlint ./...`. Deliberate
// exceptions carry a //lint:vsmart-allow <analyzer> <reason> comment on
// or directly above the flagged line; the driver errors on suppressions
// that no longer match anything, so exceptions cannot outlive the code
// that needed them.
package lint

import (
	"vsmartjoin/internal/lint/analysis"
	"vsmartjoin/internal/lint/batchorder"
	"vsmartjoin/internal/lint/boundedclient"
	"vsmartjoin/internal/lint/canonicalorder"
	"vsmartjoin/internal/lint/framesafety"
	"vsmartjoin/internal/lint/hotpathmetrics"
	"vsmartjoin/internal/lint/lockscope"
	"vsmartjoin/internal/lint/walerr"
)

// Analyzers returns the full suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		batchorder.Analyzer,
		boundedclient.Analyzer,
		canonicalorder.Analyzer,
		framesafety.Analyzer,
		hotpathmetrics.Analyzer,
		lockscope.Analyzer,
		walerr.Analyzer,
	}
}
