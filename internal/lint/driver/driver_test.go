package driver_test

import (
	"testing"

	"vsmartjoin/internal/lint/boundedclient"
	"vsmartjoin/internal/lint/linttest"
)

// TestSuppressionContract drives a real analyzer over a fixture that
// exercises every shape of //lint:vsmart-allow the driver must accept
// or reject.
func TestSuppressionContract(t *testing.T) {
	linttest.Run(t, boundedclient.Analyzer, "testdata", "supptest")
}
