// Package driver runs the lint analyzers over loaded packages and
// applies the project's suppression contract.
//
// A finding may be silenced with a comment of the form
//
//	//lint:vsmart-allow <analyzer> <reason>
//
// placed on the flagged line or on the line directly above it. The
// reason is mandatory — a suppression must say why the exception is
// sound — and every suppression must actually silence a finding of the
// named analyzer: one that no longer matches anything is itself reported
// as an error, so stale exceptions cannot linger after the code under
// them is fixed or deleted.
package driver

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"vsmartjoin/internal/lint/analysis"
	"vsmartjoin/internal/lint/load"
)

// SuppressPrefix starts a suppression comment (after the leading "//").
const SuppressPrefix = "lint:vsmart-allow"

// Finding is one reported problem: an analyzer diagnostic that survived
// suppression, or a defect in the suppressions themselves (analyzer
// "suppress").
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// suppression is one parsed //lint:vsmart-allow comment.
type suppression struct {
	analyzer string
	file     string
	line     int
	used     bool
}

// Run applies every analyzer to every package, resolves suppressions,
// and returns the surviving findings sorted by position. The error
// return is reserved for analyzer-internal failures.
func Run(pkgs []*load.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var findings []Finding
	var sups []*suppression
	for _, pkg := range pkgs {
		fset := pkg.Fset
		pkgSups, bad := collectSuppressions(fset, pkg.Syntax, known)
		sups = append(sups, pkgSups...)
		findings = append(findings, bad...)

		for _, a := range analyzers {
			var diags []analysis.Diagnostic
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range diags {
				pos := fset.Position(d.Pos)
				if s := match(pkgSups, a.Name, pos); s != nil {
					s.used = true
					continue
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
		}
	}

	for _, s := range sups {
		if !s.used {
			pos := token.Position{Filename: s.file, Line: s.line, Column: 1}
			findings = append(findings, Finding{
				Analyzer: "suppress",
				Pos:      pos,
				Message: fmt.Sprintf("unused //%s %s suppression: no %s finding on this or the next line — delete it",
					SuppressPrefix, s.analyzer, s.analyzer),
			})
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return findings, nil
}

// match finds an unexpired suppression covering a finding of analyzer at
// pos: same file, comment on the finding's line or the one above.
func match(sups []*suppression, analyzer string, pos token.Position) *suppression {
	for _, s := range sups {
		if s.analyzer == analyzer && s.file == pos.Filename && (s.line == pos.Line || s.line == pos.Line-1) {
			return s
		}
	}
	return nil
}

// collectSuppressions parses the suppression comments of a package and
// reports malformed ones (missing reason, unknown analyzer) as findings.
func collectSuppressions(fset *token.FileSet, files []*ast.File, known map[string]bool) ([]*suppression, []Finding) {
	var sups []*suppression
	var bad []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, SuppressPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(text, SuppressPrefix))
				// Fixture files append "// want ..." expectations to the
				// same comment; they are not part of the reason.
				if i := strings.Index(rest, "// want"); i >= 0 {
					rest = strings.TrimSpace(rest[:i])
				}
				name, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				switch {
				case name == "":
					bad = append(bad, Finding{Analyzer: "suppress", Pos: pos,
						Message: fmt.Sprintf("malformed suppression: want //%s <analyzer> <reason>", SuppressPrefix)})
				case !known[name]:
					bad = append(bad, Finding{Analyzer: "suppress", Pos: pos,
						Message: fmt.Sprintf("suppression names unknown analyzer %q", name)})
				case reason == "":
					bad = append(bad, Finding{Analyzer: "suppress", Pos: pos,
						Message: fmt.Sprintf("suppression of %s has no reason: say why the exception is sound", name)})
				default:
					sups = append(sups, &suppression{analyzer: name, file: pos.Filename, line: pos.Line})
				}
			}
		}
	}
	return sups, bad
}
