// Package supptest pins the driver's suppression contract: malformed
// directives, unknown analyzer names, and missing reasons are findings
// in their own right, while a well-formed suppression silences exactly
// the finding on its own or the next line.
package supptest

import "net/http"

func malformed() {
	//lint:vsmart-allow // want `malformed suppression: want //lint:vsmart-allow <analyzer> <reason>`
}

func unknown() {
	//lint:vsmart-allow nosuchanalyzer the reason does not save it // want `suppression names unknown analyzer "nosuchanalyzer"`
}

func noReason() {
	//lint:vsmart-allow boundedclient // want `suppression of boundedclient has no reason: say why the exception is sound`
}

func honored() {
	//lint:vsmart-allow boundedclient hermetic fixture call, never dialed
	_, _ = http.Get("http://a")
}

func sameLineHonored() {
	_, _ = http.Head("http://a") //lint:vsmart-allow boundedclient hermetic fixture call, never dialed
}

func unsuppressed() {
	_, _ = http.Get("http://a") // want `http\.Get uses the unbounded default client`
}
