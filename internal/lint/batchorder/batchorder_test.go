package batchorder_test

import (
	"testing"

	"vsmartjoin/internal/lint/batchorder"
	"vsmartjoin/internal/lint/linttest"
)

func TestBatchorder(t *testing.T) {
	linttest.Run(t, batchorder.Analyzer, "testdata", "batchordertest")
}
