// Package batchorder enforces the async mutation pipeline's
// acknowledgement contract (PR 9): the <-chan error returned by
// Index.AddAsync must not be discarded. AddAsync acknowledges a
// mutation only through that channel — nil once applied (and, under
// DurabilitySync, durable), or the error that rejected it — so a
// dropped channel is a write whose failure nobody can ever observe:
// walerr's discarded-error rule, one indirection later.
//
// A call "discards" when it stands alone as a statement, runs under go
// or defer (the channel has nowhere to go), or assigns the result to
// the blank identifier. Receiving from the channel inline
// (<-ix.AddAsync(...)) or binding it to a variable satisfies the
// analyzer; whether the binding is eventually read is the reader's
// code-review problem, not a shape this suite can check.
package batchorder

import (
	"go/ast"

	"vsmartjoin/internal/lint/analysis"
)

// Analyzer is the batchorder checker.
var Analyzer = &analysis.Analyzer{
	Name: "batchorder",
	Doc:  "the acknowledgement channel returned by AddAsync must not be discarded",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				report(pass, st.X, "discarded")
			case *ast.GoStmt:
				report(pass, st.Call, "discarded by go statement")
			case *ast.DeferStmt:
				report(pass, st.Call, "discarded by defer")
			case *ast.AssignStmt:
				checkBlankAssign(pass, st)
			}
			return true
		})
	}
	return nil
}

// report flags e when it is an AddAsync call whose result is unused.
func report(pass *analysis.Pass, e ast.Expr, how string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	if matchCall(pass, call) {
		pass.Reportf(call.Pos(),
			"acknowledgement channel from vsmartjoin.Index.AddAsync %s: the mutation's outcome is unobservable", how)
	}
}

// checkBlankAssign flags `_ = ix.AddAsync(...)`.
func checkBlankAssign(pass *analysis.Pass, st *ast.AssignStmt) {
	if len(st.Rhs) != 1 || len(st.Lhs) != 1 {
		return
	}
	call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
	if !ok || !matchCall(pass, call) {
		return
	}
	if id, ok := ast.Unparen(st.Lhs[0]).(*ast.Ident); ok && id.Name == "_" {
		pass.Reportf(st.Pos(),
			"acknowledgement channel from vsmartjoin.Index.AddAsync assigned to _: the mutation's outcome is unobservable")
	}
}

func matchCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	return fn.Name() == "AddAsync" && analysis.IsMethod(fn, "vsmartjoin", "Index", "AddAsync")
}
