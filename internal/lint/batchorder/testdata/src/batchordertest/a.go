// Package batchordertest exercises the batchorder analyzer: every
// discard position, the blank-identifier assignment, correctly handled
// calls, and the suppression contract.
package batchordertest

import "vsmartjoin"

func discards(ix *vsmartjoin.Index) {
	ix.AddAsync("a", nil)       // want `acknowledgement channel from vsmartjoin\.Index\.AddAsync discarded`
	go ix.AddAsync("b", nil)    // want `acknowledgement channel from vsmartjoin\.Index\.AddAsync discarded by go statement`
	defer ix.AddAsync("c", nil) // want `acknowledgement channel from vsmartjoin\.Index\.AddAsync discarded by defer`
	_ = ix.AddAsync("d", nil)   // want `acknowledgement channel from vsmartjoin\.Index\.AddAsync assigned to _`
}

func handled(ix *vsmartjoin.Index) error {
	errc := ix.AddAsync("a", nil)
	if err := <-errc; err != nil {
		return err
	}
	// Receiving inline is the tersest correct shape.
	return <-ix.AddAsync("b", nil)
}

func collected(ix *vsmartjoin.Index) error {
	acks := make([]<-chan error, 0, 4)
	for i := 0; i < 4; i++ {
		acks = append(acks, ix.AddAsync("e", nil))
	}
	for _, c := range acks {
		if err := <-c; err != nil {
			return err
		}
	}
	return nil
}

func outsideTheSet() {
	// The package-level stub shares the name but not the receiver.
	vsmartjoin.AddAsync("x")
}

func suppressed(ix *vsmartjoin.Index) {
	//lint:vsmart-allow batchorder fixture: fire-and-forget warm-up write whose failure the next read surfaces
	ix.AddAsync("warm", nil)
}

func stale() {
	//lint:vsmart-allow batchorder nothing below drops a channel // want `unused //lint:vsmart-allow batchorder suppression`
	var n int
	_ = n
}
