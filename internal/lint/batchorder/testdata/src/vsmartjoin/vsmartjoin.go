// Package vsmartjoin is a hermetic stub of the module root: just the
// async mutation surface the batchorder analyzer holds to the
// acknowledgement contract.
package vsmartjoin

// Index is the stub durable index.
type Index struct{}

// AddAsync is the stub pipelined upsert.
func (*Index) AddAsync(name string, counts map[string]uint32) <-chan error {
	return make(chan error, 1)
}

// AddAsync the package-level function is NOT the method the analyzer
// matches — callee identity includes the receiver.
func AddAsync(name string) <-chan error { return make(chan error, 1) }
