package bctest

import "net/http"

// Tests are NOT exempt: a test that dials through the default client
// can hang the suite on a stuck endpoint.
func testHelper() {
	_, _ = http.Get("http://a") // want `http\.Get uses the unbounded default client`
}
