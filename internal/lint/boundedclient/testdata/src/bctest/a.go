// Package bctest exercises boundedclient outside the cluster package:
// the pool-less convenience calls, the default client, ad-hoc literals,
// sanctioned use of an injected client, and the suppression contract.
package bctest

import (
	"io"
	"net/http"
	"net/url"
)

func rawCalls() {
	_, _ = http.Get("http://a")                     // want `http\.Get uses the unbounded default client`
	_, _ = http.Post("http://a", "text/plain", nil) // want `http\.Post uses the unbounded default client`
	_, _ = http.PostForm("http://a", url.Values{})  // want `http\.PostForm uses the unbounded default client`
	_, _ = http.Head("http://a")                    // want `http\.Head uses the unbounded default client`
}

func defaultClient(req *http.Request) {
	_, _ = http.DefaultClient.Do(req) // want `http\.DefaultClient has no timeout and no pool bounds`
}

func literal() *http.Client {
	return &http.Client{} // want `ad-hoc http\.Client literal outside cluster\.NewHTTPClient`
}

func sanctioned(c *http.Client, req *http.Request) (io.ReadCloser, error) {
	resp, err := c.Do(req) // an injected client is fine
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

func suppressed() *http.Client {
	//lint:vsmart-allow boundedclient fixture: deliberate unbounded client talking only to a local stub
	return &http.Client{}
}

func stale() {
	//lint:vsmart-allow boundedclient nothing below dials // want `unused //lint:vsmart-allow boundedclient suppression`
}
