// Package cluster stands at the real import path: NewHTTPClient is the
// one sanctioned constructor, exempt inside its own body — and only
// there.
package cluster

import (
	"net/http"
	"time"
)

// NewHTTPClient is the bounded pooled constructor.
func NewHTTPClient(timeout time.Duration, peers int) *http.Client {
	return &http.Client{
		Timeout: timeout,
		Transport: &http.Transport{
			MaxConnsPerHost: peers,
		},
	}
}

func elsewhereInCluster() *http.Client {
	return &http.Client{} // want `ad-hoc http\.Client literal outside cluster\.NewHTTPClient`
}
