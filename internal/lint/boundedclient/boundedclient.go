// Package boundedclient enforces PR 5's dialer hygiene: every HTTP call
// a daemon, router, or test makes must go through the bounded pooled
// client built by internal/cluster.NewHTTPClient — an overall timeout
// plus a capped per-host connection pool, so a stuck node can never pin
// goroutines and a scatter-gather burst reuses warm connections.
//
// Everywhere (tests included) except inside NewHTTPClient itself it
// flags:
//
//   - the pool-less convenience calls http.Get, http.Head, http.Post,
//     http.PostForm;
//   - any mention of http.DefaultClient (no timeout at all);
//   - composite literals of http.Client — a zero or ad-hoc client
//     dodges both the timeout and the pool caps.
//
// (*httptest.Server).Client() is fine: it returns the test server's
// pre-configured client, not a fresh unbounded one.
package boundedclient

import (
	"go/ast"

	"vsmartjoin/internal/lint/analysis"
)

// Analyzer is the boundedclient checker.
var Analyzer = &analysis.Analyzer{
	Name: "boundedclient",
	Doc:  "HTTP dialers must use internal/cluster.NewHTTPClient, not raw http.Client/http.Get",
	Run:  run,
}

const clusterPkg = "vsmartjoin/internal/cluster"

var rawCalls = map[string]bool{
	"Get":      true,
	"Head":     true,
	"Post":     true,
	"PostForm": true,
}

func run(pass *analysis.Pass) error {
	// Positions inside NewHTTPClient (the one sanctioned constructor)
	// are exempt.
	var allowStart, allowEnd int
	if pass.Pkg.Path() == clusterPkg {
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == "NewHTTPClient" && fd.Recv == nil {
					allowStart, allowEnd = int(fd.Pos()), int(fd.End())
				}
			}
		}
	}
	allowed := func(n ast.Node) bool {
		return allowEnd != 0 && int(n.Pos()) >= allowStart && int(n.Pos()) < allowEnd
	}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				fn := analysis.Callee(pass.TypesInfo, e)
				if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "net/http" &&
					rawCalls[fn.Name()] && analysis.PkgLevel(fn) && !allowed(n) {
					pass.Reportf(e.Pos(),
						"http.%s uses the unbounded default client: dial through cluster.NewHTTPClient (timeout + pooled connections)", fn.Name())
				}
			case *ast.SelectorExpr:
				if obj := pass.TypesInfo.Uses[e.Sel]; obj != nil && obj.Pkg() != nil &&
					obj.Pkg().Path() == "net/http" && obj.Name() == "DefaultClient" && !allowed(n) {
					pass.Reportf(e.Pos(),
						"http.DefaultClient has no timeout and no pool bounds: dial through cluster.NewHTTPClient")
				}
			case *ast.CompositeLit:
				if tv, ok := pass.TypesInfo.Types[e]; ok &&
					analysis.IsNamed(tv.Type, "net/http", "Client") && !allowed(n) {
					pass.Reportf(e.Pos(),
						"ad-hoc http.Client literal outside cluster.NewHTTPClient: the one bounded constructor keeps every dialer pooled and timed out")
				}
			}
			return true
		})
	}
	return nil
}
