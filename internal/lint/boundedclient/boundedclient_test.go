package boundedclient_test

import (
	"testing"

	"vsmartjoin/internal/lint/boundedclient"
	"vsmartjoin/internal/lint/linttest"
)

func TestBoundedclient(t *testing.T) {
	linttest.Run(t, boundedclient.Analyzer, "testdata",
		"bctest", "vsmartjoin/internal/cluster")
}
