package framesafety_test

import (
	"testing"

	"vsmartjoin/internal/lint/framesafety"
	"vsmartjoin/internal/lint/linttest"
)

func TestFramesafety(t *testing.T) {
	linttest.Run(t, framesafety.Analyzer, "testdata",
		"fstest", "vsmartjoin/internal/wal", "vsmartjoin/internal/frame")
}
