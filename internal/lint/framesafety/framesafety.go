// Package framesafety enforces the "one framing layer" invariant that
// PR 4 refactored the storage stack onto: every length-prefixed,
// checksummed byte that reaches disk flows through internal/frame.
//
// Outside that package it flags:
//
//   - raw varint length-prefix construction via encoding/binary
//     (AppendUvarint, PutUvarint, AppendVarint, PutVarint, Write) —
//     hand-rolled framing that would bypass frame's MaxFrameLen cap and
//     torn-tail recovery semantics;
//   - any use of hash/crc32 — a second checksum construction is a second
//     framing dialect waiting to diverge from frame's CRC-32C;
//   - opening snap-*/wal-* files for writing via os.Create, os.OpenFile,
//     or os.WriteFile. internal/wal owns the generation-file lifecycle
//     (its writes go through frame.Writer/Append), so its non-test files
//     are exempt; everything else — including wal's own tests, which
//     deliberately corrupt files — must carry a suppression explaining
//     itself.
//
// The file check is best-effort by construction: it matches paths whose
// expression mentions a "snap-"/"wal-" string literal or calls a
// SnapName/WalName-style helper. A path computed from a directory
// listing escapes it, which is acceptable — the check exists to stop the
// obvious regression, not to be a proof.
package framesafety

import (
	"go/ast"
	"strings"

	"vsmartjoin/internal/lint/analysis"
)

// Analyzer is the framesafety checker.
var Analyzer = &analysis.Analyzer{
	Name: "framesafety",
	Doc:  "disk framing (length prefixes, checksums, snap-*/wal-* files) must go through internal/frame",
	Run:  run,
}

const (
	framePkg = "vsmartjoin/internal/frame"
	walPkg   = "vsmartjoin/internal/wal"
)

// varintWriters are the encoding/binary functions that write the length
// prefixes frame exists to own.
var varintWriters = map[string]bool{
	"AppendUvarint": true,
	"PutUvarint":    true,
	"AppendVarint":  true,
	"PutVarint":     true,
	"Write":         true,
}

// fileWriters are the os entry points that can produce a file.
var fileWriters = map[string]bool{
	"Create":    true,
	"OpenFile":  true,
	"WriteFile": true,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == framePkg || pass.Pkg.Path() == framePkg+"_test" {
		return nil
	}
	inWal := pass.Pkg.Path() == walPkg

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "encoding/binary":
				if varintWriters[fn.Name()] && analysis.PkgLevel(fn) {
					pass.Reportf(call.Pos(),
						"raw length-prefix write binary.%s outside internal/frame: frame all on-disk records with frame.Append/frame.Writer", fn.Name())
				}
			case "hash/crc32":
				pass.Reportf(call.Pos(),
					"checksum construction crc32.%s outside internal/frame: internal/frame owns the one CRC-32C framing", fn.Name())
			case "os":
				if fileWriters[fn.Name()] && analysis.PkgLevel(fn) && !(inWal && !pass.InTestFile(call.Pos())) {
					if arg := durableFileArg(pass, call); arg != "" {
						pass.Reportf(call.Pos(),
							"direct os.%s of %s file outside internal/wal: durable generation files are written through internal/frame by internal/wal only", fn.Name(), arg)
					}
				}
			}
			return true
		})
	}
	return nil
}

// durableFileArg inspects a file-writing call's path argument (the
// first) for evidence it names a snapshot or WAL generation file:
// a string literal containing "snap-" or "wal-", or a call to a helper
// whose name contains SnapName/WalName. It returns a short description
// of the evidence, or "".
func durableFileArg(pass *analysis.Pass, call *ast.CallExpr) string {
	if len(call.Args) == 0 {
		return ""
	}
	found := ""
	ast.Inspect(call.Args[0], func(n ast.Node) bool {
		if found != "" {
			return false
		}
		switch e := n.(type) {
		case *ast.BasicLit:
			lit := strings.Trim(e.Value, "`\"")
			if strings.Contains(lit, "snap-") {
				found = "snap-*"
			} else if strings.Contains(lit, "wal-") {
				found = "wal-*"
			}
		case *ast.CallExpr:
			if fn := analysis.Callee(pass.TypesInfo, e); fn != nil {
				name := strings.ToLower(fn.Name())
				if strings.Contains(name, "snapname") {
					found = "snap-*"
				} else if strings.Contains(name, "walname") {
					found = "wal-*"
				}
			}
		}
		return true
	})
	return found
}
