// Package fstest exercises the framesafety analyzer outside the exempt
// packages: raw length prefixes, second checksums, direct generation-
// file writes, the evidence heuristic's negatives, and the suppression
// contract.
package fstest

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
)

func walName(gen int) string { return "wal-0001" }

func lengthPrefixes(b []byte, v uint64) []byte {
	b = binary.AppendUvarint(b, v) // want `raw length-prefix write binary\.AppendUvarint outside internal/frame`
	var buf bytes.Buffer
	_ = binary.Write(&buf, binary.LittleEndian, v) // want `raw length-prefix write binary\.Write outside internal/frame`
	return b
}

func readsAndMethodsAreFine(b []byte) uint64 {
	v, _ := binary.Uvarint(b)           // decoding is not framing
	binary.LittleEndian.PutUint64(b, v) // ByteOrder methods are not the varint writers
	return v
}

func checksums(p []byte) uint32 {
	t := crc32.MakeTable(crc32.Castagnoli) // want `checksum construction crc32\.MakeTable outside internal/frame`
	return crc32.Checksum(p, t)            // want `checksum construction crc32\.Checksum outside internal/frame`
}

func durableFiles() {
	_ = os.WriteFile("snap-00000001", nil, 0o644) // want `direct os\.WriteFile of snap-\* file outside internal/wal`
	f, _ := os.Create(walName(1))                 // want `direct os\.Create of wal-\* file outside internal/wal`
	_ = f
	_ = os.WriteFile("report.txt", nil, 0o644) // ordinary files are fine
}

func suppressedWrite() {
	//lint:vsmart-allow framesafety fixture: corruption injection for a recovery test
	_ = os.WriteFile("snap-00000009", nil, 0o644)
}

func staleSuppression() {
	//lint:vsmart-allow framesafety nothing here writes a frame // want `unused //lint:vsmart-allow framesafety suppression`
	_ = os.Remove("x")
}
