// Package wal stands at the real WAL's import path: its non-test files
// own the generation-file lifecycle and are exempt from the durable-file
// check.
package wal

import "os"

func snapName(gen int) string { return "snap-0001" }

func writeGen() error {
	f, err := os.Create(snapName(1)) // exempt: non-test wal code
	if err != nil {
		return err
	}
	return f.Close()
}
