package wal

import "os"

// wal's own tests are NOT exempt: deliberate corruption must carry a
// suppression, so this bare write is flagged.
func corrupt() {
	_ = os.WriteFile(snapName(1), []byte("x"), 0o644) // want `direct os\.WriteFile of snap-\* file outside internal/wal`
}
