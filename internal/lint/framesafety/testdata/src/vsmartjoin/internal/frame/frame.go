// Package frame stands at the exempt import path: the one framing layer
// may use raw varints and crc32 freely.
package frame

import (
	"encoding/binary"
	"hash/crc32"
)

func frameIt(b, payload []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(payload)))
	sum := crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli))
	b = binary.LittleEndian.AppendUint32(b, sum)
	return append(b, payload...)
}
