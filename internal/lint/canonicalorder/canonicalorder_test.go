package canonicalorder_test

import (
	"testing"

	"vsmartjoin/internal/lint/canonicalorder"
	"vsmartjoin/internal/lint/linttest"
)

func TestCanonicalorder(t *testing.T) {
	linttest.Run(t, canonicalorder.Analyzer, "testdata",
		"vsmartjoin", "vsmartjoin/internal/index", "other")
}
