// Package canonicalorder enforces PR 5's exactness guarantee: every
// match list that can reach the public API answers in the one canonical
// order (similarity descending, tie-break ascending), so a single index,
// a sharded one, and a multi-node cluster are byte-identical.
//
// In the result-bearing packages (the vsmartjoin root, internal/index,
// internal/shard, internal/cluster, internal/httpd) every function
// returning a []Match — any of the three Match types: index.Match,
// cluster.Match, vsmartjoin.Match — or a []Neighbor (the kNN result
// types: index.Neighbor, cluster.Neighbor, vsmartjoin.Neighbor; their
// canonical order is distance ascending, tie-break ascending) must
// return either
//
//   - nil or an empty literal,
//   - the direct result of another result-slice-returning call
//     (delegation: the callee is held to the same rule), or
//   - a local slice that provably passed through a canonicalizer:
//     index.SortMatches, index.MergeTopK, vsmartjoin.SortMatchesByName,
//     cluster's sortMatches — or, for neighbors, index.SortNeighbors,
//     index.MergeKNN, vsmartjoin.SortNeighborsByName, cluster's
//     sortNeighbors.
//
// The tracking is a source-order scan, not a full dataflow analysis:
// assigning a fresh literal/make/append/conversion to a variable clears
// its canonical status, a canonicalizer call or delegation assignment
// sets it, and re-slicing (out = out[:k]) preserves it. Sorting a
// sub-slice in place — SortMatches(buf[base:]), the Into query variants'
// idiom of canonicalizing only the region they appended — marks the
// underlying variable canonical too. Test files are exempt — fixtures
// and oracles build deliberately unsorted lists.
package canonicalorder

import (
	"go/ast"
	"go/types"

	"vsmartjoin/internal/lint/analysis"
)

// Analyzer is the canonicalorder checker.
var Analyzer = &analysis.Analyzer{
	Name: "canonicalorder",
	Doc:  "functions returning []Match or []Neighbor must canonicalize (SortMatches/SortNeighbors/Merge*) before returning",
	Run:  run,
}

// scopePkgs are the packages whose []Match returns feed the public API.
var scopePkgs = map[string]bool{
	"vsmartjoin":                  true,
	"vsmartjoin/internal/index":   true,
	"vsmartjoin/internal/shard":   true,
	"vsmartjoin/internal/cluster": true,
	"vsmartjoin/internal/httpd":   true,
}

// matchTypes are the (package, type name) pairs that count as a
// canonically-ordered result element — the Match family and the kNN
// Neighbor family alike.
var matchTypes = [][2]string{
	{"vsmartjoin", "Match"},
	{"vsmartjoin/internal/index", "Match"},
	{"vsmartjoin/internal/cluster", "Match"},
	{"vsmartjoin", "Neighbor"},
	{"vsmartjoin/internal/index", "Neighbor"},
	{"vsmartjoin/internal/cluster", "Neighbor"},
}

// canonicalizers sort a result-slice argument in place ([2]: pkg, name).
var canonicalizers = [][2]string{
	{"vsmartjoin", "SortMatchesByName"},
	{"vsmartjoin/internal/index", "SortMatches"},
	{"vsmartjoin/internal/cluster", "sortMatches"},
	{"vsmartjoin", "SortNeighborsByName"},
	{"vsmartjoin/internal/index", "SortNeighbors"},
	{"vsmartjoin/internal/cluster", "sortNeighbors"},
}

// canonicalProducers return an already-canonical result slice.
var canonicalProducers = [][2]string{
	{"vsmartjoin/internal/index", "MergeTopK"},
	{"vsmartjoin/internal/index", "MergeTopKInto"},
	{"vsmartjoin/internal/index", "MergeKNN"},
	{"vsmartjoin/internal/index", "MergeKNNInto"},
}

func run(pass *analysis.Pass) error {
	if !scopePkgs[pass.Pkg.Path()] {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			if !returnsMatchSlice(pass, fd) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// isMatchSlice reports whether t is []Match for one of the Match types.
func isMatchSlice(t types.Type) bool {
	sl, ok := types.Unalias(t).(*types.Slice)
	if !ok {
		return false
	}
	for _, mt := range matchTypes {
		if analysis.IsNamed(sl.Elem(), mt[0], mt[1]) {
			return true
		}
	}
	return false
}

func returnsMatchSlice(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, res := range fd.Type.Results.List {
		if tv, ok := pass.TypesInfo.Types[res.Type]; ok && isMatchSlice(tv.Type) {
			return true
		}
	}
	return false
}

// checkFunc scans one function in source order, tracking which local
// []Match variables are canonical, then validates each return.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	canonical := map[types.Object]bool{}
	info := pass.TypesInfo

	// []Match parameters start canonical: the Into query variants append
	// into a caller-owned buffer and guarantee only that the region THEY
	// append is sorted — the incoming prefix's order is the caller's
	// responsibility, and returning the buffer untouched adds nothing
	// out of order. Appending to the parameter still clears the mark, so
	// the function must re-canonicalize anything it adds.
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil && isMatchSlice(obj.Type()) {
					canonical[obj] = true
				}
			}
		}
	}

	// exprCanonical decides whether an expression may be returned as-is.
	var exprCanonical func(e ast.Expr) bool
	exprCanonical = func(e ast.Expr) bool {
		e = ast.Unparen(e)
		switch x := e.(type) {
		case *ast.Ident:
			if x.Name == "nil" {
				return true
			}
			return canonical[info.Uses[x]]
		case *ast.CallExpr:
			if tv, ok := info.Types[x.Fun]; ok && tv.IsType() {
				return false // conversion ([]Match(heap)) is not canonical
			}
			fn := analysis.Callee(info, x)
			if fn == nil {
				return false
			}
			for _, cp := range canonicalProducers {
				if fn.Pkg() != nil && fn.Pkg().Path() == cp[0] && fn.Name() == cp[1] {
					return true
				}
			}
			// Delegation: the callee returns a []Match and is held to
			// this same rule wherever it lives in the scoped packages.
			sig, ok := fn.Type().(*types.Signature)
			if !ok {
				return false
			}
			for i := 0; i < sig.Results().Len(); i++ {
				if isMatchSlice(sig.Results().At(i).Type()) {
					return true
				}
			}
			return false
		case *ast.SliceExpr:
			return exprCanonical(x.X)
		case *ast.CompositeLit:
			return len(x.Elts) == 0 // empty literal carries no order
		}
		return false
	}

	// markAssign records the effect of `lhs = rhs` on canonical state.
	markAssign := func(lhs, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil || !isMatchSlice(obj.Type()) {
			return
		}
		canonical[obj] = rhs != nil && exprCanonical(rhs)
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) == len(st.Rhs) {
				for i := range st.Lhs {
					markAssign(st.Lhs[i], st.Rhs[i])
				}
			} else if len(st.Rhs) == 1 {
				// v, err := f(): the call's canonical status applies to
				// every []Match-typed lhs.
				for _, lhs := range st.Lhs {
					markAssign(lhs, st.Rhs[0])
				}
			}
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if fn := analysis.Callee(info, call); fn != nil && fn.Pkg() != nil {
					for _, c := range canonicalizers {
						if fn.Pkg().Path() == c[0] && fn.Name() == c[1] && len(call.Args) > 0 {
							// SortMatches(buf) and SortMatches(buf[base:])
							// both canonicalize buf: the Into query
							// variants sort the region they appended in
							// place, and the unsorted prefix is the
							// caller's own (already-canonical or empty)
							// buffer contents.
							arg := ast.Unparen(call.Args[0])
							if sl, ok := arg.(*ast.SliceExpr); ok {
								arg = ast.Unparen(sl.X)
							}
							if id, ok := arg.(*ast.Ident); ok {
								if obj := info.Uses[id]; obj != nil {
									canonical[obj] = true
								}
							}
						}
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range st.Results {
				tv, ok := info.Types[res]
				if !ok || !isMatchSlice(tv.Type) {
					continue
				}
				if !exprCanonical(res) {
					kind, sorters := "Match", "SortMatches/SortMatchesByName/MergeTopK"
					if sl, ok := types.Unalias(tv.Type).(*types.Slice); ok {
						if named, ok := types.Unalias(sl.Elem()).(*types.Named); ok && named.Obj().Name() == "Neighbor" {
							kind, sorters = "Neighbor", "SortNeighbors/SortNeighborsByName/MergeKNN"
						}
					}
					pass.Reportf(res.Pos(),
						"returning a []%s that did not pass through a canonicalizer (%s): public results must be in the canonical order", kind, sorters)
				}
			}
		}
		return true
	})
}
