// Package index exercises canonicalorder's producer rule at the
// internal/index scope path.
package index

type Match struct {
	ID  uint64
	Sim float64
}

// SortMatches is the index package's canonicalizer.
func SortMatches(ms []Match) {}

// MergeTopK returns an already-canonical merge (a producer).
func MergeTopK(lists [][]Match, k int) []Match {
	var out []Match
	for _, l := range lists {
		out = append(out, l...)
	}
	SortMatches(out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func viaProducer(lists [][]Match) []Match {
	return MergeTopK(lists, 3)
}

func viaProducerLocal(lists [][]Match) []Match {
	out := MergeTopK(lists, 3)
	return out
}

func bad(in []Match) []Match {
	out := make([]Match, 0, len(in))
	out = append(out, in...)
	return out // want `did not pass through a canonicalizer`
}

// Neighbor mirrors the real index package's kNN result type.
type Neighbor struct {
	ID   uint64
	Dist float64
}

// SortNeighbors is the index package's kNN canonicalizer.
func SortNeighbors(ns []Neighbor) {}

// MergeKNN returns an already-canonical k-way merge (a producer).
func MergeKNN(k int, lists ...[]Neighbor) []Neighbor {
	var out []Neighbor
	for _, l := range lists {
		out = append(out, l...)
	}
	SortNeighbors(out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func viaKNNProducer(lists [][]Neighbor) []Neighbor {
	return MergeKNN(3, lists...)
}

func badNeighbors(in []Neighbor) []Neighbor {
	out := make([]Neighbor, 0, len(in))
	out = append(out, in...)
	return out // want `returning a \[\]Neighbor that did not pass through a canonicalizer`
}

func regionSortedNeighbors(in, buf []Neighbor) []Neighbor {
	base := len(buf)
	buf = append(buf, in...)
	SortNeighbors(buf[base:]) // region sort re-canonicalizes buf
	return buf
}
