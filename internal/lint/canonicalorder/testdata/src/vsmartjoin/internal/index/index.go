// Package index exercises canonicalorder's producer rule at the
// internal/index scope path.
package index

type Match struct {
	ID  uint64
	Sim float64
}

// SortMatches is the index package's canonicalizer.
func SortMatches(ms []Match) {}

// MergeTopK returns an already-canonical merge (a producer).
func MergeTopK(lists [][]Match, k int) []Match {
	var out []Match
	for _, l := range lists {
		out = append(out, l...)
	}
	SortMatches(out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func viaProducer(lists [][]Match) []Match {
	return MergeTopK(lists, 3)
}

func viaProducerLocal(lists [][]Match) []Match {
	out := MergeTopK(lists, 3)
	return out
}

func bad(in []Match) []Match {
	out := make([]Match, 0, len(in))
	out = append(out, in...)
	return out // want `did not pass through a canonicalizer`
}
