// Package vsmartjoin exercises canonicalorder at the root scope path:
// raw returns, conversions, canonicalized locals, delegation,
// re-slicing, and the suppression contract.
package vsmartjoin

type Match struct {
	Entity     string
	Similarity float64
}

// SortMatchesByName is the root package's canonicalizer.
func SortMatchesByName(ms []Match) {}

func bad(in []Match) []Match {
	out := append([]Match{}, in...)
	return out // want `returning a \[\]Match that did not pass through a canonicalizer`
}

func badConversion(in []Match) []Match {
	type heap []Match
	h := heap(in)
	return []Match(h) // want `did not pass through a canonicalizer`
}

func good(in []Match) []Match {
	out := append([]Match{}, in...)
	SortMatchesByName(out)
	return out
}

func nilAndEmptyAreFine(fail bool) ([]Match, error) {
	if fail {
		return nil, nil
	}
	return []Match{}, nil
}

func delegation(in []Match) []Match {
	return good(in) // the callee is held to the same rule
}

func sliced(in []Match, k int) []Match {
	out := append([]Match{}, in...)
	SortMatchesByName(out)
	if len(out) > k {
		out = out[:k] // re-slicing preserves canonical order
	}
	return out
}

func paramPassthrough(in []Match) []Match {
	return in // parameters start canonical: the caller owns the buffer's order
}

func paramAppendNeedsSort(buf []Match, m Match) []Match {
	buf = append(buf, m) // appending clears the parameter's canonical mark
	return buf           // want `did not pass through a canonicalizer`
}

func intoVariant(in, buf []Match) []Match {
	base := len(buf)
	buf = append(buf, in...)
	SortMatchesByName(buf[base:]) // region sort re-canonicalizes buf
	return buf
}

func suppressedReturn(in []Match) []Match {
	out := append([]Match{}, in...)
	//lint:vsmart-allow canonicalorder fixture: caller contractually re-sorts this copy
	return out
}

func stale() []Match {
	//lint:vsmart-allow canonicalorder nothing below returns out of order // want `unused //lint:vsmart-allow canonicalorder suppression`
	return nil
}

// Neighbor is the kNN result type; []Neighbor returns are held to the
// same canonical-order rule as []Match, with their own sorter set.
type Neighbor struct {
	Entity   string
	Distance float64
}

// SortNeighborsByName is the root package's kNN canonicalizer.
func SortNeighborsByName(ns []Neighbor) {}

func badNeighbors(in []Neighbor) []Neighbor {
	out := append([]Neighbor{}, in...)
	return out // want `returning a \[\]Neighbor that did not pass through a canonicalizer \(SortNeighbors/SortNeighborsByName/MergeKNN\)`
}

func goodNeighbors(in []Neighbor) []Neighbor {
	out := append([]Neighbor{}, in...)
	SortNeighborsByName(out)
	return out
}

func neighborDelegation(in []Neighbor) []Neighbor {
	return goodNeighbors(in) // the callee is held to the same rule
}

func neighborSliced(in []Neighbor, k int) []Neighbor {
	out := append([]Neighbor{}, in...)
	SortNeighborsByName(out)
	if len(out) > k {
		out = out[:k] // re-slicing preserves canonical order
	}
	return out
}

func neighborPadAppend(out []Neighbor, name string) []Neighbor {
	out = append(out, Neighbor{Entity: name, Distance: 1}) // appending clears the mark
	return out                                             // want `returning a \[\]Neighbor that did not pass through a canonicalizer`
}

func matchSorterDoesNotCoverNeighbors(in []Neighbor, ms []Match) []Neighbor {
	out := append([]Neighbor{}, in...)
	SortMatchesByName(ms) // sorting a different slice proves nothing about out
	return out            // want `returning a \[\]Neighbor that did not pass through a canonicalizer`
}
