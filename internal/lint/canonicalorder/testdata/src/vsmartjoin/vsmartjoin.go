// Package vsmartjoin exercises canonicalorder at the root scope path:
// raw returns, conversions, canonicalized locals, delegation,
// re-slicing, and the suppression contract.
package vsmartjoin

type Match struct {
	Entity     string
	Similarity float64
}

// SortMatchesByName is the root package's canonicalizer.
func SortMatchesByName(ms []Match) {}

func bad(in []Match) []Match {
	out := append([]Match{}, in...)
	return out // want `returning a \[\]Match that did not pass through a canonicalizer`
}

func badConversion(in []Match) []Match {
	type heap []Match
	h := heap(in)
	return []Match(h) // want `did not pass through a canonicalizer`
}

func good(in []Match) []Match {
	out := append([]Match{}, in...)
	SortMatchesByName(out)
	return out
}

func nilAndEmptyAreFine(fail bool) ([]Match, error) {
	if fail {
		return nil, nil
	}
	return []Match{}, nil
}

func delegation(in []Match) []Match {
	return good(in) // the callee is held to the same rule
}

func sliced(in []Match, k int) []Match {
	out := append([]Match{}, in...)
	SortMatchesByName(out)
	if len(out) > k {
		out = out[:k] // re-slicing preserves canonical order
	}
	return out
}

func suppressedReturn(in []Match) []Match {
	//lint:vsmart-allow canonicalorder fixture: order-preserving passthrough of already-canonical input
	return in
}

func stale() []Match {
	//lint:vsmart-allow canonicalorder nothing below returns out of order // want `unused //lint:vsmart-allow canonicalorder suppression`
	return nil
}
