package vsmartjoin

// Test files are exempt: oracles build deliberately unsorted lists.
func unsortedOracle(in []Match) []Match {
	return in
}
