// Package other sits outside the result-bearing packages: unsorted
// returns here are not canonicalorder's business.
package other

import "vsmartjoin"

func passthrough(in []vsmartjoin.Match) []vsmartjoin.Match { return in }
