// Package hotpathmetrics enforces PR 8's instrumentation discipline:
// inside the hot-path packages (internal/index, internal/shard,
// internal/wal) all latency accounting goes through internal/metrics —
// no ad-hoc time.Now/time.Since stopwatches.
//
// The rule exists because the sanctioned clock is part of the
// performance contract, not a style preference. metrics.Now returns an
// opaque Stamp and metrics.ObserveSince lands it in a fixed-bucket
// atomic histogram: zero allocations, no lock, and a grep-able seam
// every timing measurement shares. An ad-hoc time.Since feeding a
// log line or a bespoke counter dodges the histogram (so /metrics
// undercounts), invites accidental clock reads under a shard lock
// (the lockscope contract), and cannot be found when the next PR
// needs to move or merge the measurement. internal/metrics itself is
// the one place allowed to touch the raw clock.
//
// Test files are exempt: benchmarks and deadline-driven tests use the
// raw clock legitimately.
package hotpathmetrics

import (
	"go/ast"

	"vsmartjoin/internal/lint/analysis"
)

// Analyzer is the hotpathmetrics checker.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathmetrics",
	Doc:  "hot-path packages (index/shard/wal) must time through internal/metrics, not raw time.Now/time.Since",
	Run:  run,
}

// hotPkgs are the packages whose timing must flow through
// internal/metrics. The cluster router and httpd layers are not listed:
// they run off the query hot path and own request-scoped deadlines that
// legitimately read the raw clock.
var hotPkgs = map[string]bool{
	"vsmartjoin/internal/index": true,
	"vsmartjoin/internal/shard": true,
	"vsmartjoin/internal/wal":   true,
}

// banned are the raw-clock entry points an ad-hoc stopwatch starts
// from. time.Sub and friends operate on values these produce, so
// flagging the sources is enough.
var banned = map[string]string{
	"Now":   "metrics.Now",
	"Since": "metrics.ObserveSince",
}

func run(pass *analysis.Pass) error {
	if !hotPkgs[pass.Pkg.Path()] {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			want, hit := banned[fn.Name()]
			if !hit || !analysis.PkgLevel(fn) || pass.InTestFile(call.Pos()) {
				return true
			}
			pass.Reportf(call.Pos(),
				"ad-hoc time.%s in a hot-path package: instrument through %s so the measurement lands in the shared atomic histograms", fn.Name(), want)
			return true
		})
	}
	return nil
}
