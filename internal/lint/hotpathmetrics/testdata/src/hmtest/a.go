// Package hmtest sits outside the hot-path set: the raw clock is fine
// here (request deadlines, health-check cadences, log timestamps).
package hmtest

import "time"

func deadlines() time.Time {
	return time.Now().Add(5 * time.Second)
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start)
}
