// Package metrics stands at the real import path: the sanctioned clock
// the hot-path packages must time through. It is the one place allowed
// to read the raw clock.
package metrics

import "time"

// Stamp is an opaque start-time capture.
type Stamp struct{ t time.Time }

// Histogram is a stub of the fixed-bucket atomic histogram.
type Histogram struct{ count uint64 }

// Now captures the clock (sanctioned — this package owns the raw read).
func Now() Stamp { return Stamp{t: time.Now()} }

// ObserveSince records the elapsed time since s.
func (h *Histogram) ObserveSince(s Stamp) {
	_ = time.Since(s.t)
	h.count++
}
