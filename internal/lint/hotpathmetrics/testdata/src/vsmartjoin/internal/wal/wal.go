// Package wal stands at the real import path: a hot-path package where
// ad-hoc stopwatches are banned and the metrics seam is sanctioned.
package wal

import (
	"time"

	"vsmartjoin/internal/metrics"
)

// Log is a stub of the write-ahead log.
type Log struct {
	lastAppend time.Time
	append     metrics.Histogram
}

func (l *Log) adHocStopwatch() time.Duration {
	start := time.Now() // want `ad-hoc time\.Now in a hot-path package: instrument through metrics\.Now`
	doWork()
	return time.Since(start) // want `ad-hoc time\.Since in a hot-path package: instrument through metrics\.ObserveSince`
}

func (l *Log) sanctioned() {
	start := metrics.Now()
	doWork()
	l.append.ObserveSince(start)
}

func (l *Log) suppressed() {
	//lint:vsmart-allow hotpathmetrics fixture: wall-clock file mtime comparison, not a latency measurement
	l.lastAppend = time.Now()
}

// timeValuesAreFine shows only the clock reads are flagged, not every
// use of package time.
func timeValuesAreFine(d time.Duration) bool {
	return d > 5*time.Millisecond
}

func doWork() {}
