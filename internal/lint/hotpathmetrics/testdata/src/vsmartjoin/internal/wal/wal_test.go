package wal

import (
	"testing"
	"time"
)

// Test files are exempt: benchmarks and deadline-driven tests use the
// raw clock legitimately.
func TestRawClockAllowedInTests(t *testing.T) {
	start := time.Now()
	doWork()
	if time.Since(start) > time.Second {
		t.Fatal("too slow")
	}
}
