package hotpathmetrics_test

import (
	"testing"

	"vsmartjoin/internal/lint/hotpathmetrics"
	"vsmartjoin/internal/lint/linttest"
)

func TestHotpathmetrics(t *testing.T) {
	linttest.Run(t, hotpathmetrics.Analyzer, "testdata",
		"hmtest", "vsmartjoin/internal/wal", "vsmartjoin/internal/metrics")
}
