// Package walerr enforces append-before-apply durability (PR 3): the
// error results of the mutation and framing paths must never be
// discarded. A dropped wal.Append error means an acknowledged mutation
// that recovery will not replay; a dropped frame.Writer error means a
// snapshot that silently lost frames; a dropped bufio Flush means a
// truncated output file that looked fine.
//
// The must-check set, matched by callee identity:
//
//   - (internal/wal) Log.Append, Log.AppendBatch, Log.AppendDeferred,
//     Log.AppendBatchDeferred, Log.Snapshot, Log.Sync, Log.Close and
//     the package function WriteSnapshot;
//   - (internal/frame) Writer.WriteFrame, Writer.Flush, Append,
//     ReplayFile;
//   - (vsmartjoin) Index.Add, Index.AddBatch, Index.Remove,
//     Index.RemoveBatch, Index.Snapshot and Cluster.Add,
//     Cluster.AddBatch, Cluster.Bulk, Cluster.Remove, Cluster.Snapshot
//     — the public mutation surface whose errors are the durability
//     contract (AddAsync's channel-shaped twin is the batchorder
//     analyzer's job);
//   - (bufio) Writer.Flush — the classic way a CLI loses its last block
//     of output.
//
// A call "discards" when it stands alone as a statement, runs under go
// or defer (the error has nowhere to go), or assigns its error result to
// the blank identifier. Tests are NOT exempt: a test that ignores an
// Add error asserts nothing about the write it thinks it made.
package walerr

import (
	"go/ast"
	"go/types"

	"vsmartjoin/internal/lint/analysis"
)

// Analyzer is the walerr checker.
var Analyzer = &analysis.Analyzer{
	Name: "walerr",
	Doc:  "errors from WAL, frame, index-mutation, and flush paths must not be discarded",
	Run:  run,
}

// method and fn entries name the must-check set.
type callee struct {
	pkg  string // package path
	recv string // receiver type name; "" for package-level functions
	name string
}

var mustCheck = []callee{
	{"vsmartjoin/internal/wal", "Log", "Append"},
	{"vsmartjoin/internal/wal", "Log", "AppendBatch"},
	{"vsmartjoin/internal/wal", "Log", "AppendDeferred"},
	{"vsmartjoin/internal/wal", "Log", "AppendBatchDeferred"},
	{"vsmartjoin/internal/wal", "Log", "Snapshot"},
	{"vsmartjoin/internal/wal", "Log", "Sync"},
	{"vsmartjoin/internal/wal", "Log", "Close"},
	{"vsmartjoin/internal/wal", "", "WriteSnapshot"},
	{"vsmartjoin/internal/frame", "Writer", "WriteFrame"},
	{"vsmartjoin/internal/frame", "Writer", "Flush"},
	{"vsmartjoin/internal/frame", "", "Append"},
	{"vsmartjoin/internal/frame", "", "ReplayFile"},
	{"vsmartjoin", "Index", "Add"},
	{"vsmartjoin", "Index", "AddBatch"},
	{"vsmartjoin", "Index", "Remove"},
	{"vsmartjoin", "Index", "RemoveBatch"},
	{"vsmartjoin", "Index", "Snapshot"},
	{"vsmartjoin", "Cluster", "Add"},
	{"vsmartjoin", "Cluster", "AddBatch"},
	{"vsmartjoin", "Cluster", "Bulk"},
	{"vsmartjoin", "Cluster", "Remove"},
	{"vsmartjoin", "Cluster", "Snapshot"},
	{"bufio", "Writer", "Flush"},
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				report(pass, st.X, "discarded")
			case *ast.GoStmt:
				report(pass, st.Call, "discarded by go statement")
			case *ast.DeferStmt:
				report(pass, st.Call, "discarded by defer")
			case *ast.AssignStmt:
				checkBlankAssign(pass, st)
			}
			return true
		})
	}
	return nil
}

// report flags e when it is a must-check call whose results are unused.
func report(pass *analysis.Pass, e ast.Expr, how string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	if c := matchCall(pass, call); c != nil {
		pass.Reportf(call.Pos(),
			"error from %s %s: append-before-apply durability requires handling it", describe(c), how)
	}
}

// checkBlankAssign flags `_ = mustCheckCall()` and multi-assigns whose
// error position is blank (`v, _ := ix.Snapshot(...)` has no error — the
// blank check applies only when the error result itself is discarded).
func checkBlankAssign(pass *analysis.Pass, st *ast.AssignStmt) {
	if len(st.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	c := matchCall(pass, call)
	if c == nil {
		return
	}
	fn := analysis.Callee(pass.TypesInfo, call)
	sig := fn.Type().(*types.Signature)
	// Find the error results and require a non-blank identifier at each.
	for i := 0; i < sig.Results().Len(); i++ {
		if !isErrorType(sig.Results().At(i).Type()) {
			continue
		}
		var lhs ast.Expr
		if sig.Results().Len() == 1 {
			if len(st.Lhs) != 1 {
				return
			}
			lhs = st.Lhs[0]
		} else {
			if i >= len(st.Lhs) {
				return
			}
			lhs = st.Lhs[i]
		}
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
			pass.Reportf(st.Pos(),
				"error from %s assigned to _: append-before-apply durability requires handling it", describe(c))
		}
	}
}

func matchCall(pass *analysis.Pass, call *ast.CallExpr) *callee {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	for i := range mustCheck {
		c := &mustCheck[i]
		if fn.Name() != c.name || fn.Pkg().Path() != c.pkg {
			continue
		}
		if c.recv == "" {
			if analysis.PkgLevel(fn) {
				return c
			}
			continue
		}
		if analysis.IsMethod(fn, c.pkg, c.recv, c.name) {
			return c
		}
	}
	return nil
}

func describe(c *callee) string {
	if c.recv == "" {
		return pkgBase(c.pkg) + "." + c.name
	}
	return pkgBase(c.pkg) + "." + c.recv + "." + c.name
}

func pkgBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

func isErrorType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
