package walerr_test

import (
	"testing"

	"vsmartjoin/internal/lint/linttest"
	"vsmartjoin/internal/lint/walerr"
)

func TestWalerr(t *testing.T) {
	linttest.Run(t, walerr.Analyzer, "testdata", "walerrtest")
}
