// Package frame is a hermetic stub of vsmartjoin/internal/frame.
package frame

import "io"

// Writer is the stub streaming frame writer.
type Writer struct{}

func NewWriter(w io.Writer) *Writer       { return &Writer{} }
func (*Writer) WriteFrame(p []byte) error { return nil }
func (*Writer) Flush() error              { return nil }

// Append frames payload onto dst.
func Append(dst, payload []byte) ([]byte, error) { return dst, nil }

// ReplayFile replays a framed file.
func ReplayFile(path string, fn func([]byte) error) error { return nil }
