// Package wal is a hermetic stub of vsmartjoin/internal/wal: it only
// declares the shapes the walerr analyzer matches by callee identity.
package wal

// Record is one stub WAL record.
type Record struct{ Entity string }

// Log is the stub write-ahead log.
type Log struct{}

func (*Log) Append(Record) error                                { return nil }
func (*Log) AppendBatch([]Record) error                         { return nil }
func (*Log) AppendDeferred(Record) (func() error, error)        { return nil, nil }
func (*Log) AppendBatchDeferred([]Record) (func() error, error) { return nil, nil }
func (*Log) Snapshot(func(emit func(Record) error) error) error { return nil }
func (*Log) Sync() error                                        { return nil }
func (*Log) Close() error                                       { return nil }

// WriteSnapshot is the stub package-level snapshot writer.
func WriteSnapshot(path string) error { return nil }
