// Package vsmartjoin is a hermetic stub of the module root: just the
// public mutation surface the walerr analyzer holds to the durability
// contract.
package vsmartjoin

// Index is the stub durable index.
type Index struct{}

// BatchEntry is the stub AddBatch entry.
type BatchEntry struct {
	Entity   string
	Elements map[string]uint32
}

// BulkMutation is the stub mixed bulk op.
type BulkMutation struct {
	Remove   bool
	Entity   string
	Elements map[string]uint32
}

func (*Index) Add(name string, counts map[string]uint32) error { return nil }
func (*Index) AddBatch(entries []BatchEntry) error             { return nil }
func (*Index) Remove(name string) (bool, error)                { return false, nil }
func (*Index) RemoveBatch(names []string) (int, error)         { return 0, nil }
func (*Index) Snapshot() error                                 { return nil }

// Cluster is the stub multi-node client.
type Cluster struct{}

func (*Cluster) Add(name string, counts map[string]uint32) error { return nil }
func (*Cluster) AddBatch(entries []BatchEntry) error             { return nil }
func (*Cluster) Bulk(muts []BulkMutation) error                  { return nil }
func (*Cluster) Remove(name string) (bool, error)                { return false, nil }
func (*Cluster) Snapshot() error                                 { return nil }
