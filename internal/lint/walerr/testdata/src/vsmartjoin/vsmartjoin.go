// Package vsmartjoin is a hermetic stub of the module root: just the
// public mutation surface the walerr analyzer holds to the durability
// contract.
package vsmartjoin

// Index is the stub durable index.
type Index struct{}

func (*Index) Add(name string, counts map[string]uint32) error { return nil }
func (*Index) Remove(name string) (bool, error)                { return false, nil }
func (*Index) Snapshot() error                                 { return nil }

// Cluster is the stub multi-node client.
type Cluster struct{}

func (*Cluster) Add(name string, counts map[string]uint32) error { return nil }
func (*Cluster) Remove(name string) (bool, error)                { return false, nil }
func (*Cluster) Snapshot() error                                 { return nil }
