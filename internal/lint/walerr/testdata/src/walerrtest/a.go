// Package walerrtest exercises the walerr analyzer: every discard
// position, blank-identifier assignment at the error result, correctly
// handled calls, and the suppression contract.
package walerrtest

import (
	"bufio"
	"os"

	"vsmartjoin"
	"vsmartjoin/internal/frame"
	"vsmartjoin/internal/wal"
)

func discards(l *wal.Log, ix *vsmartjoin.Index, c *vsmartjoin.Cluster, w *bufio.Writer) {
	l.Append(wal.Record{}) // want `error from wal\.Log\.Append discarded`
	defer l.Close()        // want `error from wal\.Log\.Close discarded by defer`
	go l.Sync()            // want `error from wal\.Log\.Sync discarded by go statement`
	ix.Snapshot()          // want `error from vsmartjoin\.Index\.Snapshot discarded`
	c.Snapshot()           // want `error from vsmartjoin\.Cluster\.Snapshot discarded`
	wal.WriteSnapshot("x") // want `error from wal\.WriteSnapshot discarded`
	defer w.Flush()        // want `error from bufio\.Writer\.Flush discarded by defer`
}

func discardsBatch(l *wal.Log, ix *vsmartjoin.Index, c *vsmartjoin.Cluster) {
	l.AppendBatch(nil)  // want `error from wal\.Log\.AppendBatch discarded`
	ix.AddBatch(nil)    // want `error from vsmartjoin\.Index\.AddBatch discarded`
	ix.RemoveBatch(nil) // want `error from vsmartjoin\.Index\.RemoveBatch discarded`
	c.AddBatch(nil)     // want `error from vsmartjoin\.Cluster\.AddBatch discarded`
	go c.Bulk(nil)      // want `error from vsmartjoin\.Cluster\.Bulk discarded by go statement`
}

func blanks(l *wal.Log, ix *vsmartjoin.Index) {
	_ = l.Append(wal.Record{})                // want `error from wal\.Log\.Append assigned to _`
	_, _ = ix.Remove("x")                     // want `error from vsmartjoin\.Index\.Remove assigned to _`
	ok, _ := ix.Remove("y")                   // want `error from vsmartjoin\.Index\.Remove assigned to _`
	buf, _ := frame.Append(nil, []byte{})     // want `error from frame\.Append assigned to _`
	wait, _ := l.AppendDeferred(wal.Record{}) // want `error from wal\.Log\.AppendDeferred assigned to _`
	n, _ := ix.RemoveBatch([]string{"z"})     // want `error from vsmartjoin\.Index\.RemoveBatch assigned to _`
	_, _, _, _ = ok, buf, wait, n
}

func handledBatch(l *wal.Log, ix *vsmartjoin.Index) error {
	wait, err := l.AppendBatchDeferred(nil)
	if err != nil {
		return err
	}
	if err := wait(); err != nil {
		return err
	}
	if _, err := ix.RemoveBatch([]string{"a"}); err != nil {
		return err
	}
	return ix.AddBatch([]vsmartjoin.BatchEntry{{Entity: "b"}})
}

func handled(l *wal.Log, fw *frame.Writer, w *bufio.Writer) error {
	if err := l.Append(wal.Record{}); err != nil {
		return err
	}
	buf, err := frame.Append(nil, []byte("p"))
	if err != nil {
		return err
	}
	_ = buf
	if err := fw.WriteFrame([]byte("p")); err != nil {
		return err
	}
	return w.Flush()
}

func outsideTheSet(f *os.File) {
	f.Close() // os.File.Close is not in the must-check set
}

func suppressed(l *wal.Log) {
	//lint:vsmart-allow walerr fixture: cleanup on a path whose primary error is already being returned
	l.Close()
}

func stale() {
	//lint:vsmart-allow walerr nothing below discards an error // want `unused //lint:vsmart-allow walerr suppression`
	var n int
	_ = n
}
