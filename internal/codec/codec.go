// Package codec implements the compact binary encodings used for every
// record that flows through the simulated MapReduce engine.
//
// All multi-byte integers are encoded as unsigned LEB128 varints (the same
// scheme as encoding/binary's Uvarint) so that record sizes — and therefore
// the simulated I/O and shuffle costs — reflect the information content of
// the data rather than fixed-width padding. Signed integers use zigzag
// encoding. Floats are encoded as fixed 8-byte IEEE 754 bits.
//
// A Buffer is an append-only encoder; a Reader is the matching decoder.
// Both are deliberately allocation-light: Buffer appends into a reusable
// byte slice and Reader is a value type that advances an offset.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrTruncated is returned when a Reader runs out of bytes mid-value.
var ErrTruncated = errors.New("codec: truncated input")

// ErrOverflow is returned when a varint does not fit the requested width.
var ErrOverflow = errors.New("codec: varint overflows")

// Buffer is an append-only encoder. The zero value is ready to use.
type Buffer struct {
	b []byte
}

// NewBuffer returns a Buffer with the given initial capacity.
func NewBuffer(capacity int) *Buffer {
	return &Buffer{b: make([]byte, 0, capacity)}
}

// Reset truncates the buffer for reuse without releasing its storage.
func (e *Buffer) Reset() { e.b = e.b[:0] }

// Len reports the number of encoded bytes.
func (e *Buffer) Len() int { return len(e.b) }

// Bytes returns the encoded bytes. The slice aliases the buffer's storage
// and is invalidated by the next mutating call.
func (e *Buffer) Bytes() []byte { return e.b }

// Clone returns a copy of the encoded bytes that survives Reset.
func (e *Buffer) Clone() []byte {
	out := make([]byte, len(e.b))
	copy(out, e.b)
	return out
}

// PutUvarint appends v as an unsigned varint.
func (e *Buffer) PutUvarint(v uint64) {
	//lint:vsmart-allow framesafety codec encodes varints inside frame payloads; the frame length prefix and checksum stay in internal/frame
	e.b = binary.AppendUvarint(e.b, v)
}

// PutVarint appends v as a zigzag-encoded signed varint.
func (e *Buffer) PutVarint(v int64) {
	//lint:vsmart-allow framesafety codec encodes varints inside frame payloads; the frame length prefix and checksum stay in internal/frame
	e.b = binary.AppendVarint(e.b, v)
}

// PutUint32 appends v as a varint (convenience for multiplicities).
func (e *Buffer) PutUint32(v uint32) { e.PutUvarint(uint64(v)) }

// PutFloat64 appends v as 8 fixed bytes, little endian.
func (e *Buffer) PutFloat64(v float64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(v))
}

// PutBool appends a single 0/1 byte.
func (e *Buffer) PutBool(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}

// PutByte appends a single raw byte.
func (e *Buffer) PutByte(v byte) { e.b = append(e.b, v) }

// PutBytes appends a length-prefixed byte string.
func (e *Buffer) PutBytes(v []byte) {
	e.PutUvarint(uint64(len(v)))
	e.b = append(e.b, v...)
}

// PutString appends a length-prefixed string.
func (e *Buffer) PutString(v string) {
	e.PutUvarint(uint64(len(v)))
	e.b = append(e.b, v...)
}

// PutRaw appends v verbatim with no length prefix.
func (e *Buffer) PutRaw(v []byte) { e.b = append(e.b, v...) }

// Reader decodes values appended by a Buffer, in the same order.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader returns a Reader over b.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Reset repoints the reader at b and clears any error.
func (r *Reader) Reset(b []byte) {
	r.b = b
	r.off = 0
	r.err = nil
}

// Err returns the first decode error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Remaining reports the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

// Done reports whether the reader is exhausted without error.
func (r *Reader) Done() bool { return r.err == nil && r.off == len(r.b) }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Uvarint decodes an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		if n == 0 {
			r.fail(ErrTruncated)
		} else {
			r.fail(ErrOverflow)
		}
		return 0
	}
	r.off += n
	return v
}

// Varint decodes a zigzag-encoded signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		if n == 0 {
			r.fail(ErrTruncated)
		} else {
			r.fail(ErrOverflow)
		}
		return 0
	}
	r.off += n
	return v
}

// Uint32 decodes a varint and narrows it to uint32.
func (r *Reader) Uint32() uint32 {
	v := r.Uvarint()
	if v > math.MaxUint32 {
		r.fail(fmt.Errorf("%w: %d does not fit uint32", ErrOverflow, v))
		return 0
	}
	return uint32(v)
}

// Float64 decodes 8 fixed bytes into a float64.
func (r *Reader) Float64() float64 {
	if r.err != nil {
		return 0
	}
	if r.Remaining() < 8 {
		r.fail(ErrTruncated)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

// Bool decodes a single 0/1 byte.
func (r *Reader) Bool() bool {
	return r.Byte() != 0
}

// Byte decodes a single raw byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.Remaining() < 1 {
		r.fail(ErrTruncated)
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

// Bytes decodes a length-prefixed byte string. The returned slice aliases
// the reader's backing array.
func (r *Reader) Bytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if uint64(r.Remaining()) < n {
		r.fail(ErrTruncated)
		return nil
	}
	v := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return v
}

// String decodes a length-prefixed string (copies the bytes).
func (r *Reader) String() string { return string(r.Bytes()) }

// UvarintLen reports the encoded size of v without encoding it.
func UvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
