package codec

import (
	"bytes"
	"math"
	"testing"
)

// FuzzReaderDecode drives a Reader over arbitrary bytes with a fixed
// decode schema. Corrupt input must surface through Err(), never panic,
// and a reader that errored must keep returning zero values.
func FuzzReaderDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}) // max uvarint
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}) // overflowing uvarint
	f.Add([]byte{0x05, 'h', 'e', 'l', 'l', 'o', 1, 2, 3, 4, 5, 6, 7, 8})
	seed := NewBuffer(64)
	seed.PutUvarint(300)
	seed.PutVarint(-7)
	seed.PutUint32(42)
	seed.PutFloat64(3.5)
	seed.PutBool(true)
	seed.PutBytes([]byte("payload"))
	seed.PutString("tail")
	f.Add(seed.Clone())

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		_ = r.Uvarint()
		_ = r.Varint()
		_ = r.Uint32()
		_ = r.Float64()
		_ = r.Bool()
		b := r.Bytes()
		_ = r.String()
		_ = r.Byte()
		if r.Err() != nil {
			// Errored readers are sticky and must return zero values.
			if r.Uvarint() != 0 || r.Bytes() != nil || r.Byte() != 0 {
				t.Fatal("errored reader returned data")
			}
			return
		}
		if b == nil {
			// A successful Bytes() of length 0 returns an empty non-nil
			// slice view only when bytes remain; nil means it decoded a
			// zero-length string, which is fine. Nothing to assert.
			_ = b
		}
		if r.Remaining() < 0 {
			t.Fatalf("negative remaining: %d", r.Remaining())
		}
	})
}

// FuzzRoundTrip checks encode→decode identity for values carved out of the
// fuzz input, so the encoder and decoder can never drift apart.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(0), int64(0), uint32(0), 0.0, []byte(nil))
	f.Add(uint64(math.MaxUint64), int64(math.MinInt64), uint32(math.MaxUint32), math.Inf(-1), []byte("x"))
	f.Add(uint64(127), int64(-128), uint32(300), math.NaN(), bytes.Repeat([]byte{0xab}, 300))

	f.Fuzz(func(t *testing.T, u uint64, v int64, w uint32, fl float64, raw []byte) {
		var b Buffer
		b.PutUvarint(u)
		b.PutVarint(v)
		b.PutUint32(w)
		b.PutFloat64(fl)
		b.PutBytes(raw)
		b.PutBool(len(raw)%2 == 0)

		r := NewReader(b.Bytes())
		if got := r.Uvarint(); got != u {
			t.Fatalf("uvarint: %d != %d", got, u)
		}
		if got := r.Varint(); got != v {
			t.Fatalf("varint: %d != %d", got, v)
		}
		if got := r.Uint32(); got != w {
			t.Fatalf("uint32: %d != %d", got, w)
		}
		if got := r.Float64(); math.Float64bits(got) != math.Float64bits(fl) {
			t.Fatalf("float64: %v != %v", got, fl)
		}
		if got := r.Bytes(); !bytes.Equal(got, raw) {
			t.Fatalf("bytes: %x != %x", got, raw)
		}
		if got := r.Bool(); got != (len(raw)%2 == 0) {
			t.Fatalf("bool: %v", got)
		}
		if err := r.Err(); err != nil {
			t.Fatalf("round trip errored: %v", err)
		}
		if !r.Done() {
			t.Fatalf("trailing bytes: %d", r.Remaining())
		}
	})
}
