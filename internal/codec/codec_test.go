package codec

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestUvarintRoundTrip(t *testing.T) {
	vals := []uint64{0, 1, 127, 128, 255, 256, 1 << 14, 1<<14 - 1, 1 << 35, math.MaxUint64}
	var b Buffer
	for _, v := range vals {
		b.PutUvarint(v)
	}
	r := NewReader(b.Bytes())
	for i, want := range vals {
		if got := r.Uvarint(); got != want {
			t.Fatalf("value %d: got %d want %d", i, got, want)
		}
	}
	if !r.Done() {
		t.Fatalf("reader not exhausted: remaining=%d err=%v", r.Remaining(), r.Err())
	}
}

func TestVarintRoundTrip(t *testing.T) {
	vals := []int64{0, -1, 1, -64, 63, 64, -65, math.MaxInt64, math.MinInt64}
	var b Buffer
	for _, v := range vals {
		b.PutVarint(v)
	}
	r := NewReader(b.Bytes())
	for i, want := range vals {
		if got := r.Varint(); got != want {
			t.Fatalf("value %d: got %d want %d", i, got, want)
		}
	}
	if !r.Done() {
		t.Fatal("reader not exhausted")
	}
}

func TestQuickMixedRoundTrip(t *testing.T) {
	f := func(u uint64, i int64, f64 float64, s string, raw []byte, flag bool) bool {
		var b Buffer
		b.PutUvarint(u)
		b.PutVarint(i)
		b.PutFloat64(f64)
		b.PutString(s)
		b.PutBytes(raw)
		b.PutBool(flag)
		r := NewReader(b.Bytes())
		gu := r.Uvarint()
		gi := r.Varint()
		gf := r.Float64()
		gs := r.String()
		gb := r.Bytes()
		gl := r.Bool()
		if r.Err() != nil || !r.Done() {
			return false
		}
		sameF := gf == f64 || (math.IsNaN(gf) && math.IsNaN(f64))
		return gu == u && gi == i && sameF && gs == s && bytes.Equal(gb, raw) && gl == flag
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestUint32Overflow(t *testing.T) {
	var b Buffer
	b.PutUvarint(uint64(math.MaxUint32) + 1)
	r := NewReader(b.Bytes())
	_ = r.Uint32()
	if r.Err() == nil {
		t.Fatal("expected overflow error")
	}
}

func TestTruncatedErrors(t *testing.T) {
	var b Buffer
	b.PutString("hello world")
	full := b.Clone()
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		_ = r.String()
		if r.Err() == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestTruncatedFloatAndByte(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	_ = r.Float64()
	if r.Err() != ErrTruncated {
		t.Fatalf("want ErrTruncated, got %v", r.Err())
	}
	r2 := NewReader(nil)
	_ = r2.Byte()
	if r2.Err() != ErrTruncated {
		t.Fatalf("want ErrTruncated, got %v", r2.Err())
	}
}

func TestErrorSticky(t *testing.T) {
	r := NewReader(nil)
	_ = r.Uvarint()
	first := r.Err()
	if first == nil {
		t.Fatal("expected error")
	}
	_ = r.Uvarint()
	_ = r.Float64()
	if r.Err() != first {
		t.Fatal("error should be sticky")
	}
}

func TestBufferReset(t *testing.T) {
	var b Buffer
	b.PutUvarint(42)
	n := b.Len()
	b.Reset()
	if b.Len() != 0 {
		t.Fatal("reset did not clear")
	}
	b.PutUvarint(42)
	if b.Len() != n {
		t.Fatal("reset changed encoding")
	}
}

func TestUvarintLen(t *testing.T) {
	for _, v := range []uint64{0, 1, 127, 128, 1 << 21, 1 << 63, math.MaxUint64} {
		var b Buffer
		b.PutUvarint(v)
		if got := UvarintLen(v); got != b.Len() {
			t.Fatalf("UvarintLen(%d)=%d want %d", v, got, b.Len())
		}
	}
}

func TestReaderReset(t *testing.T) {
	var b Buffer
	b.PutUvarint(7)
	r := NewReader(nil)
	_ = r.Uvarint() // force error
	r.Reset(b.Bytes())
	if r.Err() != nil {
		t.Fatal("Reset should clear error")
	}
	if got := r.Uvarint(); got != 7 {
		t.Fatalf("got %d want 7", got)
	}
}

func TestPutRawNoPrefix(t *testing.T) {
	var b Buffer
	b.PutRaw([]byte{0xAA, 0xBB})
	if !bytes.Equal(b.Bytes(), []byte{0xAA, 0xBB}) {
		t.Fatalf("raw bytes mangled: %x", b.Bytes())
	}
}
