package shard

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"vsmartjoin/internal/index"
	"vsmartjoin/internal/multiset"
	"vsmartjoin/internal/similarity"
)

// randomSets synthesizes clustered multisets so every threshold bucket
// is populated (same shape as the api-level differential datasets).
func randomSets(rng *rand.Rand, n, alphabet, maxLen, maxCount int) []multiset.Multiset {
	out := make([]multiset.Multiset, n)
	for i := range out {
		l := 1 + rng.Intn(maxLen)
		entries := make([]multiset.Entry, 0, l)
		base := rng.Intn(alphabet)
		for j := 0; j < l; j++ {
			var elem int
			if j%2 == 0 {
				elem = (base + rng.Intn(4)) % alphabet
			} else {
				elem = rng.Intn(alphabet)
			}
			entries = append(entries, multiset.Entry{Elem: multiset.Elem(elem), Count: uint32(1 + rng.Intn(maxCount))})
		}
		out[i] = multiset.New(multiset.ID(i+1), entries)
	}
	return out
}

func sameMatches(t *testing.T, tag string, got, want []index.Match) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d matches, single index %d\ngot  %v\nwant %v", tag, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: match %d: got %v want %v", tag, i, got[i], want[i])
		}
	}
}

// TestDifferentialVsSingleIndex is the core exactness gate: for shard
// counts {1, 3, 8}, every threshold and top-k query must return exactly
// the single-index answer — same matches, same scores, same order.
func TestDifferentialVsSingleIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for _, measureName := range []string{"ruzicka", "jaccard", "cosine"} {
		m, err := similarity.ByName(measureName)
		if err != nil {
			t.Fatal(err)
		}
		sets := randomSets(rng, 60, 32, 9, 4)
		single := index.New(m)
		for _, s := range sets {
			single.Add(s)
		}
		for _, shards := range []int{1, 3, 8} {
			set := New(m, shards)
			for _, s := range sets {
				set.Add(s)
			}
			if set.Len() != single.Len() {
				t.Fatalf("%s/%d: len %d vs %d", measureName, shards, set.Len(), single.Len())
			}
			for qi, q := range sets {
				query := index.QueryOf(q)
				for _, thr := range []float64{0, 0.3, 0.5, 0.9} {
					tag := fmt.Sprintf("%s/shards=%d/q=%d/t=%v", measureName, shards, qi, thr)
					sameMatches(t, tag, set.QueryThreshold(query, thr), single.QueryThreshold(query, thr))
				}
				for _, k := range []int{1, 5, 100} {
					tag := fmt.Sprintf("%s/shards=%d/q=%d/k=%d", measureName, shards, qi, k)
					sameMatches(t, tag, set.QueryTopK(query, k), single.QueryTopK(query, k))
				}
			}
		}
	}
}

// TestDifferentialAfterChurn repeats the comparison after removals and
// upserts: routing must stay consistent so upserts land on the shard
// holding the old version.
func TestDifferentialAfterChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	m, err := similarity.ByName("ruzicka")
	if err != nil {
		t.Fatal(err)
	}
	sets := randomSets(rng, 50, 28, 8, 3)
	single := index.New(m)
	set := New(m, 5)
	for _, s := range sets {
		single.Add(s)
		set.Add(s)
	}
	for i, s := range sets {
		switch i % 3 {
		case 0:
			if set.Remove(s.ID) != single.Remove(s.ID) {
				t.Fatalf("remove %d disagreed", s.ID)
			}
		case 1:
			fresh := randomSets(rng, 1, 28, 8, 3)[0]
			fresh.ID = s.ID
			single.Add(fresh)
			set.Add(fresh)
		}
	}
	if set.Len() != single.Len() {
		t.Fatalf("len after churn: %d vs %d", set.Len(), single.Len())
	}
	for qi, q := range sets {
		query := index.QueryOf(q)
		tag := fmt.Sprintf("churn/q=%d", qi)
		sameMatches(t, tag, set.QueryThreshold(query, 0.3), single.QueryThreshold(query, 0.3))
		sameMatches(t, tag, set.QueryTopK(query, 7), single.QueryTopK(query, 7))
	}
	// Removing an already-removed ID stays a no-op everywhere.
	if set.Remove(sets[0].ID) {
		t.Fatal("double remove reported true")
	}
}

// TestRangeOrder: Range must yield every live entity exactly once in
// ascending ID order regardless of shard width — the WAL snapshot
// writer depends on it for deterministic snapshots.
func TestRangeOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	m, _ := similarity.ByName("ruzicka")
	sets := randomSets(rng, 40, 20, 6, 3)
	for _, shards := range []int{1, 4} {
		set := New(m, shards)
		for _, s := range sets {
			set.Add(s)
		}
		set.Remove(sets[7].ID)
		var ids []multiset.ID
		set.Range(func(got multiset.Multiset) bool {
			ids = append(ids, got.ID)
			return true
		})
		if len(ids) != len(sets)-1 {
			t.Fatalf("shards=%d: ranged %d of %d", shards, len(ids), len(sets)-1)
		}
		for i := 1; i < len(ids); i++ {
			if ids[i-1] >= ids[i] {
				t.Fatalf("shards=%d: out of order at %d: %v", shards, i, ids[i-1:i+1])
			}
		}
		// Early stop is honored.
		n := 0
		set.Range(func(multiset.Multiset) bool { n++; return n < 3 })
		if n != 3 {
			t.Fatalf("shards=%d: early stop ranged %d", shards, n)
		}
	}
}

// TestStats: sizes and mutation counters sum across shards; queries are
// counted once per fan-out, not once per shard.
func TestStats(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	m, _ := similarity.ByName("ruzicka")
	set := New(m, 4)
	sets := randomSets(rng, 30, 16, 6, 3)
	for _, s := range sets {
		set.Add(s)
	}
	set.Remove(sets[0].ID)
	set.QueryThreshold(index.QueryOf(sets[1]), 0.5)
	set.QueryTopK(index.QueryOf(sets[2]), 3)
	st := set.Stats()
	if st.Entities != 29 || st.Adds != 30 || st.Removes != 1 {
		t.Fatalf("sizes: %+v", st)
	}
	if st.Queries != 2 {
		t.Fatalf("queries counted per shard, not per fan-out: %+v", st)
	}
	if st.Probes == 0 || st.Verified == 0 {
		t.Fatalf("probe funnel empty: %+v", st)
	}
}

// TestConcurrentFanOut hammers mutations and fan-out queries together;
// run under -race this is the locking gate for the sharded path.
func TestConcurrentFanOut(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	m, _ := similarity.ByName("ruzicka")
	set := New(m, 8)
	sets := randomSets(rng, 64, 24, 8, 3)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 120; i++ {
				s := sets[(g*17+i)%len(sets)]
				switch i % 4 {
				case 0, 1:
					set.Add(s)
				case 2:
					set.QueryThreshold(index.QueryOf(s), 0.3)
					set.QueryTopK(index.QueryOf(s), 5)
				case 3:
					set.Remove(s.ID)
					set.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestShardOfDegenerateWidths pins the routing guard: a zero width used
// to panic with an integer divide by zero, and a negative width wrapped
// through uint64(n) to a mod by a huge modulus — both now route to
// shard 0, matching New's "n < 1 is treated as 1".
func TestShardOfDegenerateWidths(t *testing.T) {
	for _, n := range []int{0, -1, -64, 1} {
		for _, id := range []multiset.ID{0, 1, 42, 1 << 40} {
			if got := ShardOf(id, n); got != 0 {
				t.Fatalf("ShardOf(%d, %d) = %d, want 0", id, n, got)
			}
		}
	}
	// Sane widths stay in range and deterministic.
	for _, n := range []int{2, 7, 64} {
		for id := multiset.ID(1); id <= 200; id++ {
			got := ShardOf(id, n)
			if got < 0 || got >= n {
				t.Fatalf("ShardOf(%d, %d) = %d out of range", id, n, got)
			}
			if again := ShardOf(id, n); again != got {
				t.Fatalf("ShardOf(%d, %d) unstable: %d then %d", id, n, got, again)
			}
		}
	}
}
