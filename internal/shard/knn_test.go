package shard

import (
	"fmt"
	"math/rand"
	"testing"

	"vsmartjoin/internal/index"
	"vsmartjoin/internal/multiset"
	"vsmartjoin/internal/planner"
	"vsmartjoin/internal/similarity"
)

func sameNeighbors(t *testing.T, tag string, got, want []index.Neighbor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d neighbors, single index %d\ngot  %v\nwant %v", tag, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: neighbor %d: got %v want %v", tag, i, got[i], want[i])
		}
	}
}

// TestKNNDifferentialVsSingleIndex is the sharded kNN exactness gate:
// for shard counts {1, 3, 8} and every planner strategy, QueryKNN must
// return exactly the single-index answer — same IDs, same distances,
// same order — including after churn.
func TestKNNDifferentialVsSingleIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for _, measureName := range []string{"ruzicka", "jaccard", "cosine"} {
		m, err := similarity.ByName(measureName)
		if err != nil {
			t.Fatal(err)
		}
		sets := randomSets(rng, 60, 32, 9, 4)
		// Duplicates create distance-0 ID tie groups crossing shard
		// boundaries (IDs route to different shards).
		sets = append(sets,
			multiset.Multiset{ID: 200, Entries: sets[0].Entries},
			multiset.Multiset{ID: 201, Entries: sets[0].Entries},
		)
		single := index.New(m)
		for _, s := range sets {
			single.Add(s)
		}
		for _, strat := range []planner.Strategy{planner.Auto, planner.LSH, planner.Brute} {
			single.SetStrategy(strat)
			for _, n := range []int{1, 3, 8} {
				set := New(m, n)
				for _, s := range sets {
					set.Add(s)
				}
				set.SetStrategy(strat)
				for _, k := range []int{1, 5, 50} {
					for _, q := range sets[:20] {
						tag := fmt.Sprintf("%s strategy=%v shards=%d k=%d q=%d", measureName, strat, n, k, q.ID)
						sameNeighbors(t, tag, set.QueryKNN(index.QueryOf(q), k), single.QueryKNN(index.QueryOf(q), k))
					}
				}
				// Churn a slice of entities, then re-compare: removals must
				// vanish from lists on both sides identically.
				for _, s := range sets[10:20] {
					set.Remove(s.ID)
					single.Remove(s.ID)
				}
				for _, q := range sets[:5] {
					tag := fmt.Sprintf("%s strategy=%v shards=%d churn q=%d", measureName, strat, n, q.ID)
					sameNeighbors(t, tag, set.QueryKNN(index.QueryOf(q), 5), single.QueryKNN(index.QueryOf(q), 5))
				}
				// Restore for the next shard count.
				for _, s := range sets[10:20] {
					set.Add(s)
					single.Add(s)
				}
			}
		}
	}
}

// TestKNNIntoBufferContract pins the fan-out Into form: existing buffer
// contents survive and the appended region equals the allocating form.
func TestKNNIntoBufferContract(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, err := similarity.ByName("jaccard")
	if err != nil {
		t.Fatal(err)
	}
	sets := randomSets(rng, 30, 16, 6, 3)
	set := New(m, 4)
	for _, s := range sets {
		set.Add(s)
	}
	sentinel := index.Neighbor{ID: 999, Dist: -1}
	buf := append(make([]index.Neighbor, 0, 8), sentinel)
	out := set.QueryKNNInto(index.QueryOf(sets[3]), 5, buf)
	if out[0] != sentinel {
		t.Fatalf("buffer contents clobbered: %v", out)
	}
	sameNeighbors(t, "into", out[1:], set.QueryKNN(index.QueryOf(sets[3]), 5))
}
