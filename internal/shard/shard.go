// Package shard partitions the online index horizontally: a Set is N
// hash-partitioned internal/index.Index shards behind the same API as a
// single index. Entities are routed to shards by a mixed hash of their
// ID, mutations lock only the owning shard, and queries fan out to all
// shards in parallel and merge — per-shard RWMutexes instead of one
// global one, so writers stop serializing against the whole dataset.
//
// Partitioning by entity keeps every query exact: each shard holds the
// complete multisets of its entities, so the measure-derived pruning
// bounds apply per shard exactly as they do globally, and the union of
// per-shard threshold results (or the heap merge of per-shard top-k
// lists, via index.MergeTopK) equals the single-index answer. The
// element dictionary is intentionally NOT per shard — callers intern
// strings once (vsmartjoin.Index holds the shared multiset.Dict) and
// shards see only dense element IDs, so a fan-out costs no translation.
//
// The fan-out runs on an errgroup-style worker pool bounded by
// GOMAXPROCS: shards are claimed off an atomic counter by at most that
// many goroutines, so a 64-shard set on a 8-core box runs 8 wide
// instead of spawning 64 goroutines per query.
package shard

import (
	"runtime"
	"sync"
	"sync/atomic"

	"vsmartjoin/internal/index"
	"vsmartjoin/internal/metrics"
	"vsmartjoin/internal/multiset"
	"vsmartjoin/internal/planner"
	"vsmartjoin/internal/similarity"
)

// Set is a fixed-width collection of hash-partitioned index shards. The
// zero value is not usable; construct with New. Methods mirror
// index.Index so the two are interchangeable behind vsmartjoin.Index.
type Set struct {
	shards []*index.Index
	// queries counts fan-outs at the set level: each logical query probes
	// every shard, so summing the per-shard counters would overcount by
	// the shard width.
	queries atomic.Int64
	// scratch pools fan-out merge state (*fanScratch): per-shard result
	// buffers reused across queries so the steady-state fan-out stops
	// allocating a fresh [][]Match per call.
	scratch sync.Pool

	// merge times the cross-shard merge step of a multi-shard fan-out —
	// the concat+sort (threshold) or heap fold (top-k) that happens after
	// every shard has answered, with no shard lock held. The single-shard
	// fast path delegates straight to the shard and is not timed here.
	merge metrics.Histogram
}

// MergeSnapshot captures the fan-out merge-time distribution.
func (s *Set) MergeSnapshot() metrics.Snapshot { return s.merge.Snapshot() }

// fanScratch is the reusable per-fan-out state: one result buffer per
// shard, each handed to that shard's Into query and merged afterwards.
// Slots are written only by the worker that claimed the shard, so the
// buffers need no locking within one fan-out. kper is the Neighbor-
// typed twin for kNN fan-outs, sized lazily on the first one.
type fanScratch struct {
	per  [][]index.Match
	kper [][]index.Neighbor
}

func (s *Set) getFan() *fanScratch {
	f, _ := s.scratch.Get().(*fanScratch)
	if f == nil {
		f = &fanScratch{per: make([][]index.Match, len(s.shards))}
	}
	return f
}

func (s *Set) putFan(f *fanScratch) {
	for i := range f.per {
		f.per[i] = f.per[i][:0]
	}
	for i := range f.kper {
		f.kper[i] = f.kper[i][:0]
	}
	s.scratch.Put(f)
}

// New returns an empty set of n shards (n < 1 is treated as 1)
// verifying with the given measure.
func New(m similarity.Measure, n int) *Set {
	if n < 1 {
		n = 1
	}
	s := &Set{shards: make([]*index.Index, n)}
	for i := range s.shards {
		s.shards[i] = index.New(m)
	}
	return s
}

// Shards reports the shard width.
func (s *Set) Shards() int { return len(s.shards) }

// Measure reports the measure the shards verify with.
func (s *Set) Measure() similarity.Measure { return s.shards[0].Measure() }

// shardHash mixes an entity ID (splitmix64 finalizer) so that
// sequentially assigned IDs — the common case, vsmartjoin.Index hands
// them out from a counter — spread evenly instead of striping.
func shardHash(id multiset.ID) uint64 {
	x := uint64(id) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ShardOf is the one routing function: the shard index owning entity id
// in an n-shard set. The bulk index builder (internal/build) partitions
// with it so batch-written shard files match the shard a live Set would
// route every entity to; the per-shard durability layout depends on the
// two never disagreeing.
// A width below 2 routes everything to shard 0, matching New's "n < 1
// is treated as 1": without the guard a zero width panics on the mod
// (integer divide by zero) and a negative width wraps through uint64(n)
// to an arbitrary huge modulus.
func ShardOf(id multiset.ID, n int) int {
	if n < 2 {
		return 0
	}
	return int(shardHash(id) % uint64(n))
}

func (s *Set) shardOf(id multiset.ID) *index.Index {
	return s.shards[ShardOf(id, len(s.shards))]
}

// At returns shard i, for callers that manage per-shard concerns the
// set does not own — per-shard write-ahead logs, snapshot iteration,
// and bulk loading (vsmartjoin.Index, internal/build).
func (s *Set) At(i int) *index.Index { return s.shards[i] }

// Add upserts an entity into its owning shard. Ownership follows the
// ID, so an upsert always lands on the shard holding the old version.
func (s *Set) Add(m multiset.Multiset) { s.shardOf(m.ID).Add(m) }

// Remove deletes the entity with the given ID, reporting whether it was
// present.
func (s *Set) Remove(id multiset.ID) bool { return s.shardOf(id).Remove(id) }

// ApplyBatch applies an ordered mutation batch: ops are grouped by
// owning shard (relative order within a shard preserved — and two ops
// on the same entity always share a shard, since routing is a function
// of the ID) and each group lands in one write-lock acquisition on its
// shard via index.ApplyBatch. Equivalent to the op-at-a-time sequence
// but a hot-key storm stops convoying on the shard lock.
func (s *Set) ApplyBatch(ops []index.BatchOp) {
	if len(ops) == 0 {
		return
	}
	if len(s.shards) == 1 {
		s.shards[0].ApplyBatch(ops)
		return
	}
	per := make([][]index.BatchOp, len(s.shards))
	for _, op := range ops {
		id := op.ID
		if !op.Remove {
			id = op.Set.ID
		}
		si := ShardOf(id, len(s.shards))
		per[si] = append(per[si], op)
	}
	for si, group := range per {
		if len(group) > 0 {
			s.shards[si].ApplyBatch(group)
		}
	}
}

// Snapshot returns a copy of the entity's current multiset, or an empty
// multiset if the ID is not indexed anywhere.
func (s *Set) Snapshot(id multiset.ID) multiset.Multiset { return s.shardOf(id).Snapshot(id) }

// Len reports the number of live entities across all shards.
func (s *Set) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

// Range calls fn for every live entity across all shards in ascending
// ID order, stopping early if fn returns false. Like index.Range, the
// multisets are immutable entries the callback must not mutate, and the
// iteration is a point-in-time capture, not a frozen global view under
// concurrent mutation — callers wanting an atomic snapshot (the WAL
// snapshot writer) hold their own write-side lock.
func (s *Set) Range(fn func(m multiset.Multiset) bool) {
	if len(s.shards) == 1 {
		s.shards[0].Range(fn)
		return
	}
	// Each shard ranges in ascending ID order and IDs are unique across
	// shards (routing is a function of the ID), so a k-way head merge
	// restores the global order.
	per := make([][]multiset.Multiset, len(s.shards))
	for i, sh := range s.shards {
		sh.Range(func(m multiset.Multiset) bool {
			per[i] = append(per[i], m)
			return true
		})
	}
	heads := make([]int, len(per))
	for {
		best := -1
		for i := range per {
			if heads[i] >= len(per[i]) {
				continue
			}
			if best < 0 || per[i][heads[i]].ID < per[best][heads[best]].ID {
				best = i
			}
		}
		if best < 0 {
			return
		}
		if !fn(per[best][heads[best]]) {
			return
		}
		heads[best]++
	}
}

// fanOut runs fn(i) for every shard index i on a bounded worker pool
// and waits for all of them — the errgroup pattern minus the error,
// since shard queries cannot fail.
func (s *Set) fanOut(fn func(i int)) {
	n := len(s.shards)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// QueryThreshold fans the query out to every shard in parallel and
// merges the per-shard results under the canonical ordering. The answer
// is exactly the single-index answer: shards partition the entities, so
// the per-shard result sets are disjoint and their union is complete.
func (s *Set) QueryThreshold(q index.Query, t float64) []index.Match {
	return s.QueryThresholdInto(q, t, nil)
}

// QueryThresholdInto is QueryThreshold appending into buf instead of
// allocating the result. Per-shard results land in pooled merge buffers
// and each shard query itself runs through index.QueryThresholdInto, so
// a steady-state fan-out's only allocations are the worker goroutines.
func (s *Set) QueryThresholdInto(q index.Query, t float64, buf []index.Match) []index.Match {
	s.queries.Add(1)
	if len(s.shards) == 1 {
		return s.shards[0].QueryThresholdInto(q, t, buf)
	}
	f := s.getFan()
	s.fanOut(func(i int) { f.per[i] = s.shards[i].QueryThresholdInto(q, t, f.per[i][:0]) })
	start := metrics.Now()
	base := len(buf)
	for _, ms := range f.per {
		buf = append(buf, ms...)
	}
	s.putFan(f)
	index.SortMatches(buf[base:])
	s.merge.ObserveSince(start)
	return buf
}

// QueryTopK fans out and merges per-shard top-k lists into the global
// top-k with index.MergeTopK. Per-shard queries prune against their own
// local floor (weaker than the global one), so a sharded top-k verifies
// somewhat more candidates than a single index — the price of running
// the probe in parallel — but returns the identical result.
func (s *Set) QueryTopK(q index.Query, k int) []index.Match {
	return s.QueryTopKInto(q, k, nil)
}

// QueryTopKInto is QueryTopK appending into buf instead of allocating
// the result, with pooled per-shard merge buffers like
// QueryThresholdInto.
func (s *Set) QueryTopKInto(q index.Query, k int, buf []index.Match) []index.Match {
	s.queries.Add(1)
	if len(s.shards) == 1 {
		return s.shards[0].QueryTopKInto(q, k, buf)
	}
	f := s.getFan()
	s.fanOut(func(i int) { f.per[i] = s.shards[i].QueryTopKInto(q, k, f.per[i][:0]) })
	start := metrics.Now()
	buf = index.MergeTopKInto(k, buf, f.per...)
	s.putFan(f)
	s.merge.ObserveSince(start)
	return buf
}

// QueryKNN fans out and merges per-shard kNN lists into the global k
// nearest with index.MergeKNN — exact for the same partitioning reason
// as QueryTopK, of which it is the distance-ordered mirror.
func (s *Set) QueryKNN(q index.Query, k int) []index.Neighbor {
	return s.QueryKNNInto(q, k, nil)
}

// QueryKNNInto is QueryKNN appending into buf instead of allocating
// the result, with pooled per-shard merge buffers like the other Into
// fan-outs.
func (s *Set) QueryKNNInto(q index.Query, k int, buf []index.Neighbor) []index.Neighbor {
	s.queries.Add(1)
	if len(s.shards) == 1 {
		return s.shards[0].QueryKNNInto(q, k, buf)
	}
	f := s.getFan()
	if f.kper == nil {
		f.kper = make([][]index.Neighbor, len(s.shards))
	}
	s.fanOut(func(i int) { f.kper[i] = s.shards[i].QueryKNNInto(q, k, f.kper[i][:0]) })
	start := metrics.Now()
	buf = index.MergeKNNInto(k, buf, f.kper...)
	s.putFan(f)
	s.merge.ObserveSince(start)
	return buf
}

// SetPlanner installs a planner on every shard; each shard decides its
// own strategy from its own partition statistics, so a skewed shard
// can plan differently from its siblings.
func (s *Set) SetPlanner(p planner.Planner) {
	for _, sh := range s.shards {
		sh.SetPlanner(p)
	}
}

// SetStrategy pins every shard to one strategy (Auto clears the pin) —
// the IndexOptions.Strategy override fanned out.
func (s *Set) SetStrategy(st planner.Strategy) {
	for _, sh := range s.shards {
		sh.SetStrategy(st)
	}
}

// Plans reports each shard's current strategy, in shard order — the
// per-partition planner decisions /stats and /metrics surface.
func (s *Set) Plans() []planner.Strategy {
	out := make([]planner.Strategy, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.Plan()
	}
	return out
}

// Stats sums the per-shard counters. Queries is counted at the set
// level (one per logical fan-out); everything else — sizes, probes,
// candidates, verifications — is genuine total work across shards, so
// the pruning funnel stays comparable with a single index.
func (s *Set) Stats() index.Stats {
	var out index.Stats
	for _, sh := range s.shards {
		st := sh.Stats()
		out.Entities += st.Entities
		out.Elements += st.Elements
		out.Postings += st.Postings
		out.Adds += st.Adds
		out.Removes += st.Removes
		out.Compactions += st.Compactions
		out.Probes += st.Probes
		out.Candidates += st.Candidates
		out.LengthPruned += st.LengthPruned
		out.Verified += st.Verified
		out.Results += st.Results
	}
	out.Queries = s.queries.Load()
	return out
}
