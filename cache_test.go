package vsmartjoin

import (
	"fmt"
	"reflect"
	"testing"
)

func cacheTestIndex(t *testing.T, opts IndexOptions) *Index {
	t.Helper()
	ix, err := NewIndex(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		counts := map[string]uint32{
			fmt.Sprintf("e%d", i%7):     2,
			fmt.Sprintf("e%d", (i+1)%7): 1,
			"shared":                    3,
		}
		if err := ix.Add(fmt.Sprintf("entity-%d", i), counts); err != nil {
			t.Fatal(err)
		}
	}
	return ix
}

func TestCacheHitReturnsIdenticalResults(t *testing.T) {
	ix := cacheTestIndex(t, IndexOptions{})
	q := map[string]uint32{"e0": 2, "e1": 1, "shared": 3}

	first, err := ix.QueryThreshold(q, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	st := ix.Stats()
	if st.CacheMisses == 0 {
		t.Fatalf("first query should miss, stats %+v", st)
	}
	if st.CacheHits != 0 {
		t.Fatalf("no hit expected yet, stats %+v", st)
	}

	second, err := ix.QueryThreshold(q, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cached answer diverged:\nfirst  %v\nsecond %v", first, second)
	}
	if st := ix.Stats(); st.CacheHits != 1 {
		t.Fatalf("second identical query should hit, stats %+v", st)
	}

	// A map holding the same multiset plus zero-count noise is the same
	// canonical query, so it must hit the same entry.
	noisy := map[string]uint32{"shared": 3, "e1": 1, "e0": 2, "ignored": 0}
	third, err := ix.QueryThreshold(noisy, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, third) {
		t.Fatalf("canonicalized query diverged: %v vs %v", first, third)
	}
	if st := ix.Stats(); st.CacheHits != 2 {
		t.Fatalf("canonicalized re-query should hit, stats %+v", st)
	}

	// Different parameters are different keys.
	if _, err := ix.QueryThreshold(q, 0.5); err != nil {
		t.Fatal(err)
	}
	if st := ix.Stats(); st.CacheHits != 2 {
		t.Fatalf("different threshold must not hit, stats %+v", st)
	}
}

func TestCacheInvalidatedByMutations(t *testing.T) {
	ix := cacheTestIndex(t, IndexOptions{})
	q := map[string]uint32{"e0": 2, "e1": 1, "shared": 3}

	before, err := ix.QueryThreshold(q, 0.0)
	if err != nil {
		t.Fatal(err)
	}

	// An add must invalidate: the new entity shares elements with the
	// query and has to appear in the very next answer.
	if err := ix.Add("late-arrival", q); err != nil {
		t.Fatal(err)
	}
	after, err := ix.QueryThreshold(q, 0.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before)+1 {
		t.Fatalf("add not visible after cached query: %d -> %d results", len(before), len(after))
	}
	found := false
	for _, m := range after {
		if m.Entity == "late-arrival" {
			found = true
		}
	}
	if !found {
		t.Fatalf("late-arrival missing from post-add results %v", after)
	}

	// A remove must invalidate just the same.
	if _, err := ix.Remove("late-arrival"); err != nil {
		t.Fatal(err)
	}
	final, err := ix.QueryThreshold(q, 0.0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, final) {
		t.Fatalf("post-remove answer diverged from original:\nwant %v\ngot  %v", before, final)
	}
}

func TestCacheCoversTopKAndEntityQueries(t *testing.T) {
	ix := cacheTestIndex(t, IndexOptions{})
	q := map[string]uint32{"e0": 2, "e1": 1, "shared": 3}

	first := ix.QueryTopK(q, 5)
	second := ix.QueryTopK(q, 5)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cached top-k diverged: %v vs %v", first, second)
	}
	st := ix.Stats()
	if st.CacheHits != 1 {
		t.Fatalf("repeated top-k should hit, stats %+v", st)
	}

	e1, err := ix.QueryEntity("entity-0", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := ix.QueryEntity("entity-0", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e1, e2) {
		t.Fatalf("cached entity query diverged: %v vs %v", e1, e2)
	}
	if st := ix.Stats(); st.CacheHits != 2 {
		t.Fatalf("repeated entity query should hit, stats %+v", st)
	}
}

func TestCacheLRUBound(t *testing.T) {
	ix := cacheTestIndex(t, IndexOptions{CacheSize: 2})
	queries := []map[string]uint32{
		{"e0": 1}, {"e1": 1}, {"e2": 1},
	}
	for _, q := range queries {
		if _, err := ix.QueryThreshold(q, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	if st := ix.Stats(); st.CacheEntries != 2 {
		t.Fatalf("capacity 2 cache holds %d entries", st.CacheEntries)
	}
	// queries[0] was evicted as least-recently-used; re-querying it must
	// miss, while queries[2] is still resident.
	hitsBefore := ix.Stats().CacheHits
	if _, err := ix.QueryThreshold(queries[2], 0.5); err != nil {
		t.Fatal(err)
	}
	if st := ix.Stats(); st.CacheHits != hitsBefore+1 {
		t.Fatalf("resident entry should hit, stats %+v", st)
	}
	if _, err := ix.QueryThreshold(queries[0], 0.5); err != nil {
		t.Fatal(err)
	}
	if st := ix.Stats(); st.CacheHits != hitsBefore+1 {
		t.Fatalf("evicted entry must miss, stats %+v", st)
	}
}

func TestCacheDisabled(t *testing.T) {
	ix := cacheTestIndex(t, IndexOptions{CacheSize: -1})
	q := map[string]uint32{"e0": 2, "shared": 3}
	for i := 0; i < 3; i++ {
		if _, err := ix.QueryThreshold(q, 0.4); err != nil {
			t.Fatal(err)
		}
	}
	st := ix.Stats()
	if st.CacheHits != 0 || st.CacheMisses != 0 || st.CacheEntries != 0 {
		t.Fatalf("disabled cache reported traffic: %+v", st)
	}
}

func TestCacheHitIsACopy(t *testing.T) {
	ix := cacheTestIndex(t, IndexOptions{})
	q := map[string]uint32{"e0": 2, "e1": 1, "shared": 3}
	first, err := ix.QueryThreshold(q, 0.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 {
		t.Fatal("want results")
	}
	// Mutating a returned slice must not corrupt the cached copy.
	second, _ := ix.QueryThreshold(q, 0.0)
	second[0] = Match{Entity: "vandalized", Similarity: -1}
	third, _ := ix.QueryThreshold(q, 0.0)
	if !reflect.DeepEqual(first, third) {
		t.Fatalf("caller mutation leaked into the cache:\nwant %v\ngot  %v", first, third)
	}
}
