// Package vsmartjoin is a from-scratch Go implementation of V-SMART-Join
// (Metwally & Faloutsos, PVLDB 2012): a scalable MapReduce framework for
// exact all-pair similarity joins of sets, multisets, and vectors.
//
// The package finds every pair of entities whose similarity under a
// nominal similarity measure (Ruzicka, Jaccard, Dice, cosine, ...) meets a
// threshold. Entities are multisets — bags of elements with
// multiplicities — such as the cookies observed with an IP address, the
// shingles of a document, or the sparse coordinates of a vector.
//
// The join executes on a simulated shared-nothing MapReduce cluster that
// really runs the map/combine/shuffle/reduce pipeline in-process while
// accounting the wall-clock a cluster of the configured size would have
// spent. Three joining algorithms from the paper are provided
// (Online-Aggregation, Lookup, and Sharding), plus the VCL prefix-filter
// baseline, sequential PPJoin+ variants, and a MinHash LSH baseline in the
// internal packages.
//
// Quick start:
//
//	d := vsmartjoin.NewDataset()
//	d.Add("ip-1", map[string]uint32{"cookie-a": 3, "cookie-b": 1})
//	d.Add("ip-2", map[string]uint32{"cookie-a": 2, "cookie-b": 2})
//	d.Add("ip-3", map[string]uint32{"cookie-z": 9})
//	res, err := vsmartjoin.AllPairs(d, vsmartjoin.Options{
//		Measure:   "ruzicka",
//		Threshold: 0.5,
//	})
//	if err != nil { ... }
//	for _, p := range res.Pairs {
//		fmt.Printf("%s ~ %s: %.3f\n", p.A, p.B, p.Similarity)
//	}
//
// # Online serving
//
// AllPairs answers "find every similar pair, once"; Index answers "what
// is similar to this, right now" against a dataset that keeps changing.
// It is an incremental inverted index with measure-derived prefix and
// length filtering, safe for concurrent mutation and queries:
//
//	ix, err := vsmartjoin.NewIndex(vsmartjoin.IndexOptions{Measure: "ruzicka"})
//	ix.Add("ip-1", map[string]uint32{"cookie-a": 3, "cookie-b": 1})
//	matches, err := ix.QueryThreshold(map[string]uint32{"cookie-a": 3}, 0.5)
//	top := ix.QueryTopK(map[string]uint32{"cookie-a": 3}, 10)
//
// BuildIndex bulk-loads the same Dataset AllPairs consumes, and the two
// paths return provably consistent results (see api_diff_test.go). The
// cmd/vsmartjoind daemon serves an Index over HTTP, and examples/serving
// is a worked walkthrough.
//
// # Durability and sharding
//
// IndexOptions configures both serving-scale concerns:
//
//   - Measure fixes the similarity measure ("ruzicka" by default); a
//     durable index records it in every snapshot and refuses to reopen
//     under a different one.
//
//   - Shards hash-partitions the index by entity: mutations lock only
//     the owning shard and queries fan out to every shard in parallel,
//     merging into exactly the single-shard answer (internal/shard).
//     For a durable index the count is part of the on-disk layout (one
//     log directory per shard); Shards == 0 adopts an existing dir's
//     count.
//
//   - Dir makes the index durable: every Add/Remove is appended to the
//     owning shard's write-ahead log before it is applied, so a killed
//     process — even one dying mid-append, leaving a torn frame —
//     reopens into exactly its prior state (internal/wal).
//
//   - SnapshotEvery sets how many mutations logged to one shard trigger
//     an automatic snapshot of that shard, which truncates its log;
//     Snapshot forces one for every shard and Close writes final ones.
//
//   - Durability picks the acknowledgement contract: DurabilityOS (the
//     default) acknowledges once the WAL append reaches the OS, while
//     DurabilitySync makes every acknowledgement wait for an fsync. The
//     fsync is group-committed — one sync covers every append that
//     arrived while the previous sync was in flight — so the cost
//     amortizes over concurrent writers instead of multiplying.
//
//   - GroupCommitWindow bounds how long the committer waits to coalesce
//     more appends into one fsync (default 200µs; only meaningful under
//     DurabilitySync), and MutationQueueDepth sizes the per-queue
//     buffer behind AddAsync (default 1024).
//
// A production-shaped serving index combines them:
//
//	ix, err := vsmartjoin.NewIndex(vsmartjoin.IndexOptions{
//		Measure:       "ruzicka",
//		Shards:        8,
//		Dir:           "/var/lib/vsmartjoin",
//		SnapshotEvery: 4096,
//	})
//	if err != nil { ... }
//	defer ix.Close()
//
// # Batched and asynchronous mutations
//
// Add and Remove pay one lock acquisition and one WAL append per call.
// Under contended write load the batched surface amortizes both:
// AddBatch applies many upserts in one call — entries are coalesced
// per shard, appended to each shard's log as a single batch record,
// and applied under one lock acquisition, with last-write-wins for
// duplicate entities inside a batch — and RemoveBatch does the same
// for deletions, returning how many named entities existed. AddAsync
// enqueues a single upsert and returns an acknowledgement channel that
// delivers exactly one error (nil on success) once the mutation is
// logged and applied; mutations for the same entity are acknowledged
// in submission order. The channel must be read — the batchorder
// analyzer in internal/lint flags discarded acknowledgements:
//
//	errc := ix.AddAsync("ip-1", map[string]uint32{"cookie-a": 3})
//	if err := <-errc; err != nil { ... }
//
// Queries keep their lock-free read contract throughout: a batch
// becomes visible atomically, and under DurabilitySync it is
// acknowledged only after its group-committed fsync. IndexStats
// reports the moving parts — WALBatchSize and WALGroupCommitSize
// histograms, WALRecords/WALFsyncs counters (their ratio is the
// fsyncs-per-mutation amortization), WALCommitWait latency, and the
// current MutationQueueDepth.
//
// # Bulk building
//
// Cold-starting a large corpus through Add would write one WAL record
// per entity — a million logged appends before the first query.
// BuildIndexFiles instead runs the corpus through the batch MapReduce
// machinery (internal/build) and writes every shard's snapshot file
// directly; OpenIndex then loads the result with zero WAL records to
// replay, through a sealed bulk-load path that skips the upsert
// machinery entirely:
//
//	_, err := vsmartjoin.BuildIndexFiles(d, vsmartjoin.IndexOptions{
//		Measure: "ruzicka",
//		Shards:  8,
//		Dir:     "/var/lib/vsmartjoin",
//	})
//	if err != nil { ... }
//	ix, err := vsmartjoin.OpenIndex(vsmartjoin.IndexOptions{Dir: "/var/lib/vsmartjoin"})
//
// A bulk-built directory is indistinguishable from one the serving path
// wrote: it answers queries identically to an index built by the same
// Adds (down to tie-breaks) and accepts further durable mutations, with
// the write-ahead logs resuming on top of the built snapshots. The
// cmd/vsmartjoin -build-index flag exposes the builder on the command
// line, and cmd/vsmartjoind bootstraps through it when -load points at
// a trace and -data-dir at a directory with no index yet.
//
// # Query performance and the result cache
//
// The query hot path is allocation-free at steady state: per-query
// scratch is pooled and reused, so sustained QueryThreshold/QueryTopK
// traffic settles at zero allocations per operation inside the index
// engine (see BENCH_007.json for measured before/after numbers).
//
// On top of that, Index keeps a bounded LRU cache of complete query
// results, keyed by the measure, the canonicalized query elements, and
// the threshold or k. IndexOptions.CacheSize bounds it: 0 means the
// default of 1024 cached results, a negative value disables caching
// entirely, and any positive value is the maximum number of results
// retained. The cache is invalidated by generation: every Add or
// Remove bumps an internal generation counter and cached entries only
// answer queries at the generation they were computed under, so a
// cached answer is never stale — a mutation racing a lookup can only
// demote a hit to a recomputation. Cached results are defensive
// copies; callers may freely modify returned slices.
//
// IndexStats reports cache effectiveness alongside the engine
// counters: CacheHits and CacheMisses count lookups against the cache
// (hits return before reaching the engine, so they do not advance
// Queries or the funnel counters), and CacheEntries is the current
// resident size. The vsmartjoind daemon surfaces the same fields in
// its /stats endpoint, and its -debug-addr flag serves net/http/pprof
// on a private listener for live profiling.
//
// # kNN queries and adaptive planning
//
// The third query shape is k-nearest-neighbor under the distance
// 1 − similarity. QueryKNN returns the k nearest indexed entities to a
// query multiset, nearest first with entity names ascending on
// distance ties; QueryKNNEntity asks the same of an indexed entity's
// own elements, excluding the entity from its list. kNN has no
// similarity cut-off: entities sharing nothing with the query sit at
// distance exactly 1 and legitimately fill a list when fewer than k
// entities overlap.
//
//	ns := ix.QueryKNN(map[string]uint32{"cookie-a": 3}, 10)
//	for _, n := range ns {
//		fmt.Printf("%s at distance %.3f\n", n.Entity, n.Distance)
//	}
//
// AllKNN is the batch counterpart — every entity's exact k nearest
// lists in one simulated-cluster MapReduce run (cmd/vsmartjoin -knn on
// the command line), computed by partition-and-refine: entities group
// by cardinality, and a group is probed only when a similarity upper
// bound says it could still improve the query's k-th distance. Batch
// and online lists are byte-identical; knn_diff_test.go gates both
// against a brute-force oracle.
//
// Candidate generation is planned per partition (internal/planner):
// each shard's ingest-time statistics — entity count, token-frequency
// skew, cardinality distribution — deterministically select brute
// force (tiny partitions), the prefix-filter inverted index (the
// general case), or MinHash LSH bucket seeding (stop-word-dominated
// partitions) on every mutation. All three strategies are exact, so
// the choice is purely a cost decision. IndexOptions.Strategy pins
// every shard to one strategy ("auto", the default, defers to the
// planner; "prefix", "lsh", and "brute" override it), and
// IndexStats.Plans — mirrored by the daemon's /stats and /metrics —
// reports each shard's current decision.
//
// # Cluster serving
//
// Cluster scales the same serving surface across machines: it is a
// stateless router that treats N vsmartjoind node daemons as
// partitions of one logical index, mirroring Index's mutation and
// query API over HTTP:
//
//	c, err := vsmartjoin.NewCluster(vsmartjoin.ClusterOptions{
//		Nodes: [][]string{
//			{"http://10.0.0.1:8321", "http://10.0.0.2:8321"}, // partition 0 replicas
//			{"http://10.0.0.3:8321", "http://10.0.0.4:8321"}, // partition 1 replicas
//		},
//	})
//	if err != nil { ... }
//	defer c.Close()
//	err = c.Add("ip-1", map[string]uint32{"cookie-a": 3})
//	matches, err := c.QueryTopK(map[string]uint32{"cookie-a": 3}, 10)
//
// Entities route to partitions by a hash of their name
// (PartitionOfEntity), writes replicate to every replica of the owner
// partition and succeed at majority quorum, and queries scatter to one
// healthy replica per partition — with per-node timeouts, failover,
// and hedged retry — then merge under the canonical result ordering
// (similarity descending, entity name ascending on ties). Because that
// ordering is a pure function of the stored entities, a Cluster of any
// shape answers byte-identically to a single Index holding the same
// data; cluster_diff_test.go gates exactly that. Writes that miss a
// replica are re-driven by a background anti-entropy pass, and
// BuildClusterFiles carves a bulk-built corpus into per-node
// directories along the same routing hash. The vsmartjoind -cluster
// flag serves a Cluster over the identical HTTP surface a node
// exposes, so clients and load balancers cannot tell router from node.
//
// # Observability
//
// Every layer is instrumented through internal/metrics — atomic
// counters and fixed-bucket log-spaced latency histograms, cheap
// enough (one clock read, three atomic adds, zero allocations) that
// the query hot path stays 0 allocs/op with instrumentation on.
// IndexStats carries latency summaries (count, mean, p50/p99/p999) for
// the uncached query path, the cross-shard merge, and WAL
// append/fsync stalls; ClusterStats adds quorum-write and
// scatter-gather query latency, hedge-fired/hedge-won counts, and the
// current anti-entropy repair backlog:
//
//	st := ix.Stats()
//	fmt.Printf("p99 query: %.2fms\n", st.QueryLatency.P99Ns/1e6)
//
// The vsmartjoind daemon exposes the same data two ways: GET /stats
// (the stats structs as JSON) and GET /metrics (Prometheus text
// exposition, hand-rolled, no client dependency) on both node and
// router modes. Every request carries an X-Vsmart-Request-Id header —
// assigned if absent, echoed on the response, and propagated from the
// router to its node sub-requests (WithRequestID attaches one to a
// Cluster call's context) — and a query with "debug": true returns
// per-stage timings alongside the matches. The daemon sheds load
// predictably: -max-inflight bounds concurrently served requests, and
// beyond the bound requests are answered 429 + Retry-After instead of
// queueing (probes and the metrics scrape are exempt). cmd/vsmartbench
// is the closed-loop load harness that measures all of it end to end.
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the
// reproduction of the paper's evaluation.
package vsmartjoin
